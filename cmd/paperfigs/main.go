// Command paperfigs regenerates every figure and table of the MediaWorm
// paper's evaluation section and prints them as text tables.
//
// Usage:
//
//	paperfigs [-scale 0.2] [-seed 1] [-intervals 10] [-only fig3,table2]
//	          [-parallel 0] [-replicas 1] [-v]
//
// -scale 1.0 runs the paper's exact workload (slow: full MPEG-2 frames at
// 33 ms); the default shrinks the video time base 5× and normalizes
// reported intervals back to the 33 ms base.
//
// -parallel fans independent sweep points across worker goroutines (0 uses
// every core); output is byte-identical to a serial run for the same seed.
// -replicas R re-runs every point R times with independent derived seeds and
// reports replica means with 95% confidence half-widths (± columns).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mediaworm/internal/experiments"
	"mediaworm/internal/report"
	"mediaworm/internal/viz"
)

func main() {
	scale := flag.Float64("scale", 0.2, "video time-base scale factor (1.0 = paper-exact)")
	seed := flag.Uint64("seed", 1, "workload random seed")
	intervals := flag.Int("intervals", 10, "measured frame intervals per point")
	parallel := flag.Int("parallel", 0, "sweep worker goroutines (0 = all cores, 1 = serial); output is byte-identical either way")
	replicas := flag.Int("replicas", 1, "independent-seed runs per point, reported as mean ± 95% CI")
	only := flag.String("only", "", "comma-separated subset: fig3,fig4,fig5,table2,fig6,fig7,fig8,table3,fig9,table1,bounds; 'bounds-smoke' runs the reduced bound-soundness grid and exits nonzero on violations; ablations/extensions by id (abl-alloc,abl-endpointvc,abl-source,abl-sched,ext-gop,ext-tetra,ext-dynpart,schedzoo,scale) or 'extras' for all of them; 'schedzoo-smoke' runs the reduced scheduler-zoo grid with policing armed; 'scale-smoke' runs the reduced topology-generator grid")
	verbose := flag.Bool("v", false, "print per-point progress")
	csvDir := flag.String("csv", "", "also write each figure/table as CSV into this directory")
	svgDir := flag.String("svg", "", "also render each figure as SVG charts into this directory")
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Scale = *scale
	opt.Seed = *seed
	opt.MeasureIntervals = *intervals
	opt.Parallel = *parallel
	opt.Replicas = *replicas
	if *verbose {
		opt.Progress = func(fig, point string, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "  %s (%.1fs)\n", point, elapsed.Seconds())
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	start := time.Now()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	emit := func(fig *experiments.Figure) {
		fig.Fprint(os.Stdout)
		if *csvDir != "" {
			if _, err := report.WriteFigureFile(*csvDir, fig); err != nil {
				fail(err)
			}
		}
		if *svgDir != "" {
			if _, err := viz.WriteChartFiles(*svgDir, fig); err != nil {
				fail(err)
			}
		}
	}

	if sel("table1") {
		experiments.Table1(os.Stdout)
	}
	if sel("fig3") {
		fig, err := experiments.Fig3(opt)
		if err != nil {
			fail(err)
		}
		emit(fig)
	}
	if sel("fig4") {
		fig, err := experiments.Fig4(opt)
		if err != nil {
			fail(err)
		}
		emit(fig)
	}
	if sel("fig5") || sel("table2") {
		fig, tab, err := experiments.Fig5Table2(opt)
		if err != nil {
			fail(err)
		}
		if sel("fig5") {
			emit(fig)
		}
		if sel("table2") {
			tab.Fprint(os.Stdout)
			if *csvDir != "" {
				if _, err := report.WriteTable2File(*csvDir, tab); err != nil {
					fail(err)
				}
			}
		}
	}
	if sel("fig6") {
		fig, err := experiments.Fig6(opt)
		if err != nil {
			fail(err)
		}
		emit(fig)
	}
	if sel("fig7") {
		fig, err := experiments.Fig7(opt)
		if err != nil {
			fail(err)
		}
		emit(fig)
	}
	if sel("fig8") {
		fig, err := experiments.Fig8(opt)
		if err != nil {
			fail(err)
		}
		emit(fig)
	}
	if sel("table3") {
		tab := experiments.RunTable3(opt)
		tab.Fprint(os.Stdout)
		if *csvDir != "" {
			if _, err := report.WriteTable3File(*csvDir, tab); err != nil {
				fail(err)
			}
		}
	}
	if sel("fig9") {
		fig, err := experiments.Fig9(opt)
		if err != nil {
			fail(err)
		}
		emit(fig)
		experiments.Fig9BestEffort(fig, os.Stdout)
	}

	if sel("bounds") || want["bounds-smoke"] {
		run, label := experiments.BoundsSweep, "bounds"
		if want["bounds-smoke"] {
			run, label = experiments.BoundsSmoke, "bounds smoke"
		}
		rep, err := run(opt)
		if err != nil {
			fail(err)
		}
		rep.Fprint(os.Stdout)
		if *csvDir != "" {
			if _, err := report.WriteBoundsFile(*csvDir, rep); err != nil {
				fail(err)
			}
		}
		if v := rep.Violations(); want["bounds-smoke"] && v > 0 {
			fail(fmt.Errorf("%s: %d observed worst-case latencies above their analytic bound", label, v))
		}
	}

	// The scheduler-zoo and topology-generator smoke grids are CI gates, not
	// part of the default figure set: they run only when named, like
	// bounds-smoke.
	if want["schedzoo-smoke"] {
		fig, err := experiments.SchedZooSmoke(opt)
		if err != nil {
			fail(err)
		}
		emit(fig)
	}
	if want["scale-smoke"] {
		fig, err := experiments.ScaleSmoke(opt)
		if err != nil {
			fail(err)
		}
		emit(fig)
	}

	// Ablations and extensions (beyond the paper) run only when asked for.
	extras := []struct {
		id  string
		run func() error
	}{
		{"abl-alloc", printFig(experiments.AblationAllocator, opt, *csvDir, *svgDir)},
		{"abl-endpointvc", printFig(experiments.AblationEndpointVCs, opt, *csvDir, *svgDir)},
		{"abl-source", printFig(experiments.AblationSourcePolicy, opt, *csvDir, *svgDir)},
		{"abl-sched", printFig(experiments.AblationScheduler, opt, *csvDir, *svgDir)},
		{"schedzoo", printFig(experiments.SchedZoo, opt, *csvDir, *svgDir)},
		{"ext-gop", printFig(experiments.ExtGoP, opt, *csvDir, *svgDir)},
		{"ext-tetra", printFig(experiments.ExtTetrahedral, opt, *csvDir, *svgDir)},
		{"scale", printFig(experiments.ScaleSweep, opt, *csvDir, *svgDir)},
		{"ext-dynpart", func() error {
			res, err := experiments.ExtDynamicPartition(opt)
			if err != nil {
				return err
			}
			experiments.FprintDynPart(res, os.Stdout)
			return nil
		}},
	}
	for _, e := range extras {
		if want[e.id] || want["extras"] {
			if err := e.run(); err != nil {
				fail(err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
}

// printFig adapts a figure-producing experiment to a runner.
func printFig(f func(experiments.Options) (*experiments.Figure, error), opt experiments.Options, csvDir, svgDir string) func() error {
	return func() error {
		fig, err := f(opt)
		if err != nil {
			return err
		}
		fig.Fprint(os.Stdout)
		if csvDir != "" {
			if _, err := report.WriteFigureFile(csvDir, fig); err != nil {
				return err
			}
		}
		if svgDir != "" {
			if _, err := viz.WriteChartFiles(svgDir, fig); err != nil {
				return err
			}
		}
		return nil
	}
}
