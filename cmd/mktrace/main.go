// Command mktrace synthesizes an MPEG-2-like frame-size trace (GoP
// structure, Markov scene changes, AR(1) short-term correlation) in the
// one-size-per-line format the trace-driven VBR workload consumes.
//
//	mktrace -frames 9000 -mean 16666 -seed 7 > movie.trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mediaworm/internal/traffic"
)

func main() {
	frames := flag.Int("frames", 9000, "trace length in frames (9000 = 5 min at 30 frames/s)")
	mean := flag.Float64("mean", 16666, "mean frame size in bytes (16666 ≈ 4 Mb/s MPEG-2)")
	scene := flag.Int("scene", 90, "mean scene length in frames")
	calm := flag.Float64("calm", 0.8, "calm-scene size scale")
	action := flag.Float64("action", 1.3, "action-scene size scale")
	ar1 := flag.Float64("ar1", 0.6, "lag-1 autocorrelation of frame-size deviations")
	ar1sd := flag.Float64("ar1sd", 0.15, "stationary deviation sd (fraction of mean)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cfg := traffic.SynthTraceConfig{
		Frames:          *frames,
		MeanBytes:       *mean,
		SceneMeanFrames: *scene,
		CalmScale:       *calm,
		ActionScale:     *action,
		AR1:             *ar1,
		AR1SD:           *ar1sd,
		Seed:            *seed,
	}
	sizes, err := traffic.SynthesizeTrace(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mktrace:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	comment := fmt.Sprintf("synthetic MPEG-2 trace: %d frames, mean %.0f B, seed %d",
		*frames, *mean, *seed)
	if err := traffic.WriteTrace(w, sizes, comment); err != nil {
		fmt.Fprintln(os.Stderr, "mktrace:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "mktrace:", err)
		os.Exit(1)
	}
}
