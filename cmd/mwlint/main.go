// Command mwlint runs the repository's determinism, coverage, and
// concurrency analyzers (internal/analysis) over module packages in
// dependency order — analyzer facts flow from imported packages to their
// importers — and reports findings in the familiar file:line:col form. It
// exits 1 when any finding survives annotation filtering, 2 on load or
// usage errors — so CI can gate on it:
//
//	go run ./cmd/mwlint ./...
//
// -json emits machine-readable diagnostics instead (one object per
// finding: file/line/col/analyzer/message/suppressed), including the
// annotation-suppressed findings the text form hides; the exit code still
// reflects only unsuppressed findings.
//
// Patterns are ./... (the whole module, the default), a package directory
// like ./internal/core, or a full import path. See DESIGN.md,
// "Determinism rules & static analysis", for the rules and the
// //mw:<analyzer> annotation form that records intentional exceptions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mediaworm/internal/analysis"
)

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array (suppressed findings included)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mwlint [-list] [-only a,b] [-json] [packages]\n\npackages default to ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var chosen []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				chosen = append(chosen, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("unknown analyzer %q (try -list)", name)
		}
		suite = chosen
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := resolvePatterns(root, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	driver := analysis.NewDriver(analysis.NewLoader(root))
	fset := driver.Loader.Fset()
	findings := 0
	var all []jsonDiag
	for _, path := range paths {
		diags, err := driver.Run(suite, []string{path})
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			rel, err := filepath.Rel(wd, pos.Filename)
			if err != nil || strings.HasPrefix(rel, "..") {
				rel = pos.Filename
			}
			if *asJSON {
				all = append(all, jsonDiag{
					File: rel, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer.Name, Message: d.Message, Suppressed: d.Suppressed,
				})
			} else if !d.Suppressed {
				fmt.Printf("%s:%d:%d: %s: %s\n", rel, pos.Line, pos.Column, d.Analyzer.Name, d.Message)
			}
			if !d.Suppressed {
				findings++
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []jsonDiag{}
		}
		if err := enc.Encode(all); err != nil {
			fatalf("%v", err)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mwlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// resolvePatterns expands command-line package patterns into module import
// paths. Supported: "./..." (everything), "<dir>/..." subtrees, package
// directories relative to the working directory, and full import paths.
func resolvePatterns(root string, args []string) ([]string, error) {
	all, err := analysis.ModulePackages(root)
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(arg, "/..."):
			prefix, err := argToPath(root, strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("mwlint: no packages match %q", arg)
			}
		default:
			p, err := argToPath(root, arg)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return out, nil
}

// argToPath maps one non-wildcard argument to a module import path.
func argToPath(root, arg string) (string, error) {
	if arg == "." {
		arg = "./"
	}
	if strings.HasPrefix(arg, "./") || strings.HasPrefix(arg, "../") {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		abs := filepath.Clean(filepath.Join(wd, arg))
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("mwlint: %q is outside the module", arg)
		}
		if rel == "." {
			return analysis.ModulePath, nil
		}
		return analysis.ModulePath + "/" + filepath.ToSlash(rel), nil
	}
	return arg, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mwlint: "+format+"\n", args...)
	os.Exit(2)
}
