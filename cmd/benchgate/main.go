// Command benchgate compares a benchmark summary (scripts/bench.sh output)
// against a committed baseline and fails when allocation or memory numbers
// regress beyond tolerance. It is the CI allocation-regression gate: the
// zero-alloc contracts in internal/sim/alloc_test.go pin the engine's
// steady state exactly, while this gate watches the whole suite — router
// pipeline and full-run — for order-of-magnitude drift.
//
// Usage:
//
//	benchgate -baseline BENCH_PR10.json -current /tmp/bench.json [flags]
//
// A benchmark regresses when
//
//	current > baseline*(1+tol) + slack
//
// for its allocs/op or bytes/op. The default tolerances absorb the
// systematic gap between a -benchtime=1x smoke run (warm-up allocations
// not yet amortized) and the 1s baseline, while still catching per-flit or
// per-event allocation leaks, which shift the full-run numbers by orders
// of magnitude. ns/op is compared only when -ns-tol is set: wall-clock
// noise on shared CI runners would otherwise make the gate flaky.
//
// Benchmarks present in the baseline but missing from the current run fail
// the gate (a silently dropped benchmark is a dropped contract); new
// benchmarks in the current run pass with a note, and enter the contract
// when the baseline is next regenerated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type summary struct {
	Commit     string      `json:"commit"`
	Go         string      `json:"go"`
	CPU        string      `json:"cpu"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_PR10.json", "committed baseline summary")
		currentPath  = flag.String("current", "", "summary to check (required)")
		allocsTol    = flag.Float64("allocs-tol", 0.25, "relative allocs/op tolerance")
		allocsSlack  = flag.Float64("allocs-slack", 8, "absolute allocs/op slack (warm-up headroom)")
		bytesTol     = flag.Float64("bytes-tol", 0.25, "relative bytes/op tolerance")
		bytesSlack   = flag.Float64("bytes-slack", 1024, "absolute bytes/op slack (warm-up headroom)")
		nsTol        = flag.Float64("ns-tol", 0, "relative ns/op tolerance; 0 disables the wall-clock gate")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := read(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := read(*currentPath)
	if err != nil {
		fatal(err)
	}

	curByName := make(map[string]benchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		curByName[b.Pkg+"."+b.Name] = b
	}
	baseNames := make(map[string]bool, len(baseline.Benchmarks))

	failures := 0
	check := func(name, metric string, base, cur, tol, slack float64) {
		limit := base*(1+tol) + slack
		if cur > limit {
			failures++
			fmt.Printf("FAIL %s: %s %.4g exceeds limit %.4g (baseline %.4g, tol %.0f%% + %g)\n",
				name, metric, cur, limit, base, tol*100, slack)
			return
		}
		fmt.Printf("ok   %s: %s %.4g within limit %.4g (baseline %.4g)\n",
			name, metric, cur, limit, base)
	}

	for _, base := range baseline.Benchmarks {
		name := base.Pkg + "." + base.Name
		baseNames[name] = true
		cur, ok := curByName[name]
		if !ok {
			failures++
			fmt.Printf("FAIL %s: present in baseline %s but missing from current run\n", name, *baselinePath)
			continue
		}
		check(name, "allocs/op", base.AllocsPerOp, cur.AllocsPerOp, *allocsTol, *allocsSlack)
		check(name, "bytes/op", base.BytesPerOp, cur.BytesPerOp, *bytesTol, *bytesSlack)
		if *nsTol > 0 {
			check(name, "ns/op", base.NsPerOp, cur.NsPerOp, *nsTol, 0)
		}
	}
	for _, cur := range current.Benchmarks {
		if name := cur.Pkg + "." + cur.Name; !baseNames[name] {
			fmt.Printf("note %s: not in baseline; regenerate %s to gate it\n", name, *baselinePath)
		}
	}

	fmt.Printf("benchgate: %d benchmark(s) gated against %s (%s, %s), %d failure(s)\n",
		len(baseline.Benchmarks), *baselinePath, baseline.Commit, baseline.Benchtime, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func read(path string) (*summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var s summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: %s contains no benchmarks", path)
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
