// Command mwsweep sweeps one simulation parameter over a range and emits
// one CSV row per point — the general-purpose companion to cmd/paperfigs
// for exploring operating envelopes.
//
// Points are independent seeded simulations, so they fan out across a
// bounded worker pool (-parallel, default all cores) with rows, trace files
// and metrics files emitted in sweep order — output is byte-identical to a
// serial run. -replicas R re-runs each point under R independent derived
// seeds and appends mean ± 95% CI columns.
//
// Examples:
//
//	mwsweep -param load -from 0.5 -to 0.96 -steps 8 -mix 0.8
//	mwsweep -param mix -from 0.1 -to 1.0 -steps 10 -load 0.9
//	mwsweep -param vcs -from 4 -to 24 -steps 6 -load 0.9 -policy fifo -parallel 4 -replicas 5
//	mwsweep -param load -steps 8 -manifest sweep.manifest   # journal completed cells
//	mwsweep -param load -steps 8 -manifest sweep.manifest -resume   # redo only missing cells
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"time"

	"mediaworm"
	"mediaworm/internal/artifact"
	"mediaworm/internal/calculus"
	"mediaworm/internal/experiments"
	"mediaworm/internal/obs"
	"mediaworm/internal/prof"
	"mediaworm/internal/rng"
	"mediaworm/internal/runner"
	"mediaworm/internal/stats"
	"mediaworm/internal/traffic"
)

func main() {
	param := flag.String("param", "load", "swept parameter: load, mix, vcs, msg-flits, buffer")
	from := flag.Float64("from", 0.5, "sweep start")
	to := flag.Float64("to", 0.96, "sweep end (inclusive)")
	steps := flag.Int("steps", 6, "number of points")
	load := flag.Float64("load", 0.8, "fixed load (when not swept)")
	mix := flag.Float64("mix", 0.8, "fixed real-time share (when not swept)")
	vcs := flag.Int("vcs", 16, "fixed VCs (when not swept)")
	policy := flag.String("policy", string(mediaworm.VirtualClock), "scheduling policy")
	topo := flag.String("topology", string(mediaworm.SingleSwitch), "topology: single-switch, fat-mesh-2x2, tetrahedral, or a generator spec like mesh4x4, torus8x8 or clos8x4x8")
	lanes := flag.Int("lanes", 0, "parallel physical links per channel on generated topologies (0 = spec default)")
	scale := flag.Float64("scale", 0.2, "video time-base scale")
	intervals := flag.Int("intervals", 10, "measured frame intervals")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = all cores, 1 = serial); output is byte-identical either way")
	replicas := flag.Int("replicas", 1, "independent-seed runs per point, reported as mean ± 95% CI")
	tracePrefix := flag.String("trace-prefix", "", "write <prefix><point>.trace.json per point (enables tracing)")
	metricsPrefix := flag.String("metrics-prefix", "", "write <prefix><point>.metrics.csv per point (enables tracing)")
	traceEvents := flag.Int("trace-events", 0, "trace ring-buffer capacity in events (0 = 65536)")
	manifestPath := flag.String("manifest", "", "journal completed cells to this file (fsynced per cell)")
	resume := flag.Bool("resume", false, "reuse an existing manifest: skip journaled cells, recompute only the missing ones")
	bounds := flag.Bool("bounds", false, "append the analytic network-calculus delay bound per point (bound_ms; inf = model declines the operating point)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock limit (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts per failed cell before the sweep aborts")
	crashAfter := flag.Int("crash-after", 0, "testing hook: exit(3) after this many cells are journaled")
	profFlags := prof.Register()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *steps < 1 {
		fatal(fmt.Errorf("steps must be ≥ 1"))
	}
	reps := *replicas
	if reps < 1 {
		reps = 1
	}

	// Build the full grid up front: one config per (step, replica), replica
	// seeds derived from (seed, step, replica) so results are independent of
	// worker scheduling.
	xs := make([]float64, *steps)
	cfgs := make([]mediaworm.Config, *steps)
	for i := 0; i < *steps; i++ {
		x := *from
		if *steps > 1 {
			x += (*to - *from) * float64(i) / float64(*steps-1)
		}
		xs[i] = x
		cfg := mediaworm.DefaultConfig()
		cfg.Topology = mediaworm.Topology(*topo)
		cfg.Lanes = *lanes
		cfg.Policy = mediaworm.Policy(*policy)
		cfg.Load = *load
		cfg.RTShare = *mix
		cfg.VCs = *vcs
		cfg.Seed = *seed
		switch *param {
		case "load":
			cfg.Load = x
		case "mix":
			cfg.RTShare = x
		case "vcs":
			cfg.VCs = int(math.Round(x))
		case "msg-flits":
			cfg.MsgFlits = int(math.Round(x))
		case "buffer":
			cfg.BufferDepth = int(math.Round(x))
		default:
			fatal(fmt.Errorf("unknown parameter %q", *param))
		}
		cfg = cfg.Scale(*scale)
		cfg.Warmup = 3 * cfg.FrameInterval
		cfg.Measure = time.Duration(*intervals) * cfg.FrameInterval
		if *tracePrefix != "" || *metricsPrefix != "" {
			cfg.Trace = mediaworm.TraceConfig{Enabled: true, EventCap: *traceEvents}
		}
		cfgs[i] = cfg
	}

	type run struct {
		res   mediaworm.Result
		norm  float64 // ms normalization for this config
		trace *obs.Capture
		point string // file-name stem for trace/metrics artifacts
	}
	jobs := *steps * reps

	// The manifest journals each finished cell's figures; it is keyed by a
	// fingerprint of every grid-shaping flag so a stale or foreign journal is
	// refused instead of silently poisoning the sweep. JSON round-trips
	// float64 exactly, so a resumed sweep's CSV is byte-identical to an
	// uninterrupted one.
	var man *runner.Manifest
	if *resume && *manifestPath == "" {
		fatal(errors.New("-resume requires -manifest"))
	}
	if *manifestPath != "" {
		key := fmt.Sprintf("param=%s from=%g to=%g steps=%d load=%g mix=%g vcs=%d policy=%s topo=%s scale=%g intervals=%d seed=%d replicas=%d",
			*param, *from, *to, *steps, *load, *mix, *vcs, *policy, *topo, *scale, *intervals, *seed, reps)
		if !*resume {
			if err := os.Remove(*manifestPath); err != nil && !os.IsNotExist(err) {
				fatal(err)
			}
		}
		man, err = runner.OpenManifest(*manifestPath, key)
		if err != nil {
			fatal(err)
		}
		defer man.Close()
		if *resume && man.CountDone() > 0 {
			fmt.Fprintf(os.Stderr, "mwsweep: resuming, %d/%d cells already journaled\n", man.CountDone(), jobs)
		}
	}
	type cellRecord struct {
		Point string           `json:"point"`
		Norm  float64          `json:"norm"`
		Res   mediaworm.Result `json:"result"`
	}

	runs := make([]run, jobs)
	var sinkErr error
	recorded := 0
	_, err = runner.Map(context.Background(), jobs, runner.Options{
		Workers:     *parallel,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		// Artifact files are written from the collector in sweep order, so
		// a failing write aborts deterministically at the same point a
		// serial sweep would have. Each cell is journaled only after its
		// artifacts are safely renamed into place — a crash between the two
		// reruns the cell, never trusts torn output.
		OnDone: func(i int) {
			if sinkErr != nil {
				return
			}
			r := &runs[i]
			if r.trace != nil {
				if *tracePrefix != "" {
					sinkErr = artifact.WriteFunc(*tracePrefix+r.point+".trace.json", 0o644, func(w io.Writer) error {
						return obs.WriteChromeTrace(w, r.trace)
					})
				}
				if *metricsPrefix != "" && sinkErr == nil {
					sinkErr = artifact.WriteFunc(*metricsPrefix+r.point+".metrics.csv", 0o644, func(w io.Writer) error {
						return obs.WriteMetricsCSV(w, r.trace)
					})
				}
				r.trace = nil
				if sinkErr != nil {
					return
				}
			}
			if man == nil {
				return
			}
			if _, ok := man.Done(i); ok {
				return
			}
			res := r.res
			res.Trace = nil
			if sinkErr = man.Record(i, cellRecord{Point: r.point, Norm: r.norm, Res: res}); sinkErr != nil {
				return
			}
			recorded++
			if *crashAfter > 0 && recorded >= *crashAfter {
				fmt.Fprintf(os.Stderr, "mwsweep: -crash-after %d reached, simulating crash\n", *crashAfter)
				os.Exit(3)
			}
		},
	}, func(_ context.Context, i int) (struct{}, error) {
		if man != nil {
			if raw, ok := man.Done(i); ok {
				var rec cellRecord
				if err := json.Unmarshal(raw, &rec); err != nil {
					return struct{}{}, fmt.Errorf("manifest cell %d: %w", i, err)
				}
				runs[i] = run{res: rec.Res, norm: rec.Norm, point: rec.Point}
				return struct{}{}, nil
			}
		}
		cell, rep := i/reps, i%reps
		cfg := cfgs[cell]
		if rep > 0 {
			cfg.Seed = rng.DeriveSeed(cfg.Seed, uint64(cell), uint64(rep))
		}
		res, err := mediaworm.Run(cfg)
		if err != nil {
			return struct{}{}, err
		}
		point := fmt.Sprintf("%s-%g", *param, xs[cell])
		if rep > 0 {
			point += fmt.Sprintf("-rep%d", rep)
		}
		runs[i] = run{
			res:   res,
			norm:  33.0 / (cfg.FrameInterval.Seconds() * 1000),
			trace: res.Trace,
			point: point,
		}
		return struct{}{}, nil
	})
	if err != nil {
		var re *runner.Error
		if errors.As(err, &re) {
			fatal(fmt.Errorf("point %s=%g: %w", *param, xs[re.Index/reps], re.Err))
		}
		fatal(err)
	}
	if sinkErr != nil {
		fatal(sinkErr)
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{*param, "d_ms", "sd_ms", "be_latency_us", "be_saturated", "playout_miss_rate", "streams"}
	if *bounds {
		header = append(header, "bound_ms")
	}
	if reps > 1 {
		header = append(header, "d_ms_ci95", "sd_ms_ci95", "be_latency_us_ci95", "replicas")
	}
	if err := w.Write(header); err != nil {
		fatal(err)
	}
	for cell := 0; cell < *steps; cell++ {
		var d, sd, be, miss stats.Welford
		saturated := 0
		for rep := 0; rep < reps; rep++ {
			r := &runs[cell*reps+rep]
			d.Add(r.res.MeanDeliveryIntervalMs * r.norm)
			sd.Add(r.res.StdDevDeliveryIntervalMs * r.norm)
			be.Add(r.res.BestEffort.MeanLatencyUs)
			miss.Add(r.res.Playout.MissRate)
			if r.res.BestEffort.Saturated {
				saturated++
			}
		}
		row := []string{
			strconv.FormatFloat(xs[cell], 'g', 6, 64),
			strconv.FormatFloat(d.Mean(), 'f', 3, 64),
			strconv.FormatFloat(sd.Mean(), 'f', 4, 64),
			strconv.FormatFloat(be.Mean(), 'f', 1, 64),
			strconv.FormatBool(2*saturated >= reps),
			strconv.FormatFloat(miss.Mean(), 'f', 5, 64),
			strconv.Itoa(runs[cell*reps].res.Streams),
		}
		if *bounds {
			row = append(row, analyticBound(cfgs[cell], runs[cell*reps].norm))
		}
		if reps > 1 {
			row = append(row,
				strconv.FormatFloat(d.CI95(), 'f', 4, 64),
				strconv.FormatFloat(sd.CI95(), 'f', 4, 64),
				strconv.FormatFloat(be.CI95(), 'f', 2, 64),
				strconv.Itoa(reps),
			)
		}
		if err := w.Write(row); err != nil {
			fatal(err)
		}
	}
}

// analyticBound prices one sweep cell's worst-case end-to-end delay with the
// closed-form network-calculus model (internal/calculus) under the balanced
// placement the cell's load implies, normalized to paper-scale milliseconds.
// "inf" means the model declines the operating point rather than certify an
// unsound bound.
func analyticBound(cfg mediaworm.Config, norm float64) string {
	fat := cfg.Topology == mediaworm.FatMesh2x2
	p, err := experiments.CalculusParams(cfg, fat, cfg.Load, cfg.RTShare, traffic.PartitionVCs(cfg.VCs, cfg.RTShare))
	if err != nil {
		fatal(err)
	}
	bound, _, err := calculus.BalancedDelayBoundSec(p, cfg.Load, cfg.RTShare)
	if err != nil {
		fatal(err)
	}
	if math.IsInf(bound, 1) {
		return "inf"
	}
	return strconv.FormatFloat(bound*1e3*norm, 'f', 3, 64)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwsweep:", err)
	os.Exit(1)
}
