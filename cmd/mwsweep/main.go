// Command mwsweep sweeps one simulation parameter over a range and emits
// one CSV row per point — the general-purpose companion to cmd/paperfigs
// for exploring operating envelopes.
//
// Examples:
//
//	mwsweep -param load -from 0.5 -to 0.96 -steps 8 -mix 0.8
//	mwsweep -param mix -from 0.1 -to 1.0 -steps 10 -load 0.9
//	mwsweep -param vcs -from 4 -to 24 -steps 6 -load 0.9 -policy fifo
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"mediaworm"
	"mediaworm/internal/obs"
)

func main() {
	param := flag.String("param", "load", "swept parameter: load, mix, vcs, msg-flits, buffer")
	from := flag.Float64("from", 0.5, "sweep start")
	to := flag.Float64("to", 0.96, "sweep end (inclusive)")
	steps := flag.Int("steps", 6, "number of points")
	load := flag.Float64("load", 0.8, "fixed load (when not swept)")
	mix := flag.Float64("mix", 0.8, "fixed real-time share (when not swept)")
	vcs := flag.Int("vcs", 16, "fixed VCs (when not swept)")
	policy := flag.String("policy", string(mediaworm.VirtualClock), "scheduling policy")
	topo := flag.String("topology", string(mediaworm.SingleSwitch), "topology")
	scale := flag.Float64("scale", 0.2, "video time-base scale")
	intervals := flag.Int("intervals", 10, "measured frame intervals")
	seed := flag.Uint64("seed", 1, "random seed")
	tracePrefix := flag.String("trace-prefix", "", "write <prefix><point>.trace.json per point (enables tracing)")
	metricsPrefix := flag.String("metrics-prefix", "", "write <prefix><point>.metrics.csv per point (enables tracing)")
	traceEvents := flag.Int("trace-events", 0, "trace ring-buffer capacity in events (0 = 65536)")
	flag.Parse()

	if *steps < 1 {
		fatal(fmt.Errorf("steps must be ≥ 1"))
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{*param, "d_ms", "sd_ms", "be_latency_us", "be_saturated", "playout_miss_rate", "streams"}); err != nil {
		fatal(err)
	}

	for i := 0; i < *steps; i++ {
		x := *from
		if *steps > 1 {
			x += (*to - *from) * float64(i) / float64(*steps-1)
		}
		cfg := mediaworm.DefaultConfig()
		cfg.Topology = mediaworm.Topology(*topo)
		cfg.Policy = mediaworm.Policy(*policy)
		cfg.Load = *load
		cfg.RTShare = *mix
		cfg.VCs = *vcs
		cfg.Seed = *seed
		switch *param {
		case "load":
			cfg.Load = x
		case "mix":
			cfg.RTShare = x
		case "vcs":
			cfg.VCs = int(math.Round(x))
		case "msg-flits":
			cfg.MsgFlits = int(math.Round(x))
		case "buffer":
			cfg.BufferDepth = int(math.Round(x))
		default:
			fatal(fmt.Errorf("unknown parameter %q", *param))
		}
		cfg = cfg.Scale(*scale)
		cfg.Warmup = 3 * cfg.FrameInterval
		cfg.Measure = time.Duration(*intervals) * cfg.FrameInterval
		if *tracePrefix != "" || *metricsPrefix != "" {
			cfg.Trace = mediaworm.TraceConfig{Enabled: true, EventCap: *traceEvents}
		}
		res, err := mediaworm.Run(cfg)
		if err != nil {
			fatal(err)
		}
		if res.Trace != nil {
			point := fmt.Sprintf("%s-%g", *param, x)
			if *tracePrefix != "" {
				if err := writeFile(*tracePrefix+point+".trace.json", func(f *os.File) error {
					return obs.WriteChromeTrace(f, res.Trace)
				}); err != nil {
					fatal(err)
				}
			}
			if *metricsPrefix != "" {
				if err := writeFile(*metricsPrefix+point+".metrics.csv", func(f *os.File) error {
					return obs.WriteMetricsCSV(f, res.Trace)
				}); err != nil {
					fatal(err)
				}
			}
		}
		norm := 33.0 / (cfg.FrameInterval.Seconds() * 1000)
		if err := w.Write([]string{
			strconv.FormatFloat(x, 'g', 6, 64),
			strconv.FormatFloat(res.MeanDeliveryIntervalMs*norm, 'f', 3, 64),
			strconv.FormatFloat(res.StdDevDeliveryIntervalMs*norm, 'f', 4, 64),
			strconv.FormatFloat(res.BestEffort.MeanLatencyUs, 'f', 1, 64),
			strconv.FormatBool(res.BestEffort.Saturated),
			strconv.FormatFloat(res.Playout.MissRate, 'f', 5, 64),
			strconv.Itoa(res.Streams),
		}); err != nil {
			fatal(err)
		}
		w.Flush()
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwsweep:", err)
	os.Exit(1)
}
