// Command mwtrace inspects Chrome trace-event JSON files written by the
// observability subsystem (mwsim -trace, mwsweep -trace-prefix, or
// obs.WriteChromeTrace).
//
//	mwtrace summary run.trace.json     # event counts, span balance, time span
//	mwtrace validate run.trace.json    # structural checks; exit 1 on failure
//	mwtrace diff a.trace.json b.trace.json  # exit 1 when traces differ
package main

import (
	"fmt"
	"os"

	"mediaworm/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "summary":
		if len(os.Args) != 3 {
			usage()
		}
		tr := readTrace(os.Args[2])
		printSummary(os.Args[2], tr)
	case "validate":
		if len(os.Args) != 3 {
			usage()
		}
		tr := readTrace(os.Args[2])
		if err := tr.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "mwtrace: %s: %v\n", os.Args[2], err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (%d events)\n", os.Args[2], len(tr.TraceEvents))
	case "diff":
		if len(os.Args) != 4 {
			usage()
		}
		a := readTrace(os.Args[2])
		b := readTrace(os.Args[3])
		diffs := obs.DiffChrome(a, b)
		if len(diffs) == 0 {
			fmt.Println("traces are identical")
			return
		}
		for _, d := range diffs {
			fmt.Println(d)
		}
		os.Exit(1)
	default:
		usage()
	}
}

func readTrace(path string) *obs.ChromeTrace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := obs.ReadChromeTrace(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return tr
}

func printSummary(path string, tr *obs.ChromeTrace) {
	s := tr.Summarize()
	fmt.Printf("%s\n", path)
	fmt.Printf("  events:    %d (%d block spans)\n", s.Events, s.Spans)
	fmt.Printf("  processes: %d\n", s.Processes)
	fmt.Printf("  time span: %.3f .. %.3f us (%.3f us)\n", s.FirstTs, s.LastTs, s.LastTs-s.FirstTs)
	for i, name := range s.CountsName {
		fmt.Printf("  %-24s %d\n", name, s.Counts[i])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mwtrace summary  <trace.json>
  mwtrace validate <trace.json>
  mwtrace diff     <a.trace.json> <b.trace.json>`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwtrace:", err)
	os.Exit(1)
}
