// Command mwsim runs a single MediaWorm simulation from flags and prints
// the result as text or JSON.
//
// Examples:
//
//	mwsim -load 0.8 -mix 0.8 -policy virtual-clock
//	mwsim -topology fat-mesh-2x2 -load 0.9 -mix 0.6 -json
//	mwsim -pcs -load 0.7
//	mwsim -topology fat-mesh-2x2 -fault-mtbf 30ms -fault-mttr 2ms -retransmit
//	mwsim -fault-sweep -seed 1
//	mwsim -load 0.9 -checkpoint run.ckpt -checkpoint-every 50ms
//	mwsim -restore run.ckpt -json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

import (
	"mediaworm"
	"mediaworm/internal/artifact"
	"mediaworm/internal/experiments"
	"mediaworm/internal/obs"
	"mediaworm/internal/prof"
)

func main() {
	var (
		topology  = flag.String("topology", string(mediaworm.SingleSwitch), "single-switch, fat-mesh-2x2, tetrahedral, or a generator spec like mesh4x4, torus8x8 or clos8x4x8 (suffix c<n> = endpoints per router, l<n> = lanes per channel)")
		lanes     = flag.Int("lanes", 0, "parallel physical links per channel on generated topologies (0 = spec default)")
		ports     = flag.Int("ports", 8, "ports per router")
		vcs       = flag.Int("vcs", 16, "virtual channels per physical channel")
		policy    = flag.String("policy", string(mediaworm.VirtualClock), "fifo, round-robin, virtual-clock, wrr, drr, wf2q or sp+wrr")
		fullXbar  = flag.Bool("full-crossbar", false, "use a full (n·m × n·m) crossbar")
		load      = flag.Float64("load", 0.8, "offered input-link load (fraction of link bandwidth)")
		mix       = flag.Float64("mix", 1.0, "real-time share x/(x+y) of the load")
		class     = flag.String("class", string(mediaworm.VBR), "vbr or cbr")
		linkMbps  = flag.Float64("link-mbps", 400, "physical channel bandwidth in Mb/s")
		msgFlits  = flag.Int("msg-flits", 20, "message size in flits")
		scale     = flag.Float64("scale", 0.2, "video time-base scale (1.0 = paper-exact)")
		intervals = flag.Int("intervals", 10, "measured frame intervals")
		seed      = flag.Uint64("seed", 1, "random seed")
		pcsMode   = flag.Bool("pcs", false, "run the PCS router instead of MediaWorm")
		asJSON    = flag.Bool("json", false, "emit JSON")

		rtWeight   = flag.Int("rt-weight", 0, "per-VC weight of the real-time partition under wrr/drr/wf2q/sp+wrr (0 = 1)")
		beWeight   = flag.Int("be-weight", 0, "per-VC weight of the best-effort partition under wrr/drr/wf2q/sp+wrr (0 = 1)")
		drrQuantum = flag.Int("drr-quantum", 0, "DRR base credit in flits per weight unit (0 = 1)")

		policing  = flag.Bool("police", false, "arm the srTCM meter + WRED dropper at every source NI")
		cirFactor = flag.Float64("police-cir", 0, "committed rate as a multiple of the nominal real-time rate (0 = 1.2)")
		cbsFlits  = flag.Int("police-cbs", 0, "committed burst size in flits (0 = one nominal frame)")
		ebsFlits  = flag.Int("police-ebs", 0, "excess burst size in flits (0 = half a frame)")

		faultSweep  = flag.Bool("fault-sweep", false, "run the FaultSweep resilience experiment instead of a single simulation")
		faultMTBF   = flag.Duration("fault-mtbf", 0, "mean time between link failures (0 disables link churn)")
		faultMTTR   = flag.Duration("fault-mttr", 0, "mean time to repair a failed link")
		corruptProb = flag.Float64("corrupt-prob", 0, "per-flit corruption probability in [0,1]")
		retransmit  = flag.Bool("retransmit", false, "enable NI end-to-end retransmission")
		retxTimeout = flag.Duration("retx-timeout", 0, "retransmission timeout (0 = 2 frame intervals)")
		retxMax     = flag.Int("retx-max", 0, "max delivery attempts per message (0 = default 4)")
		watchdog    = flag.Int("watchdog", 0, "deadlock watchdog idle-cycle limit (0 = default when faults on, <0 disables)")
		wdRecover   = flag.Bool("watchdog-recover", false, "let the watchdog kill the youngest blocked worm to break deadlocks")

		tracePath     = flag.String("trace", "", "write a Chrome trace-event JSON file (enables tracing)")
		metricsPath   = flag.String("metrics", "", "write a per-port/per-VC metrics CSV file (enables tracing)")
		traceEvents   = flag.Int("trace-events", 0, "trace ring-buffer capacity in events (0 = 65536)")
		traceInterval = flag.Duration("trace-interval", 0, "metrics snapshot interval in simulated time (0 = final snapshot only)")

		ckptPath  = flag.String("checkpoint", "", "checkpoint file path (written atomically)")
		ckptEvery = flag.Duration("checkpoint-every", 0, "write a checkpoint every D of simulated time (requires -checkpoint)")
		runTo     = flag.Duration("run-to", 0, "stop at this simulated time, write a checkpoint, and exit without a result (requires -checkpoint)")
		restore   = flag.String("restore", "", "restore from a checkpoint file and run to completion (ignores config flags)")

		profFlags = prof.Register()
	)
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		s, err := mediaworm.RestoreSim(bufio.NewReader(f))
		f.Close()
		if err != nil {
			fatal(err)
		}
		res, err := s.Finish()
		if err != nil {
			fatal(err)
		}
		printResult(res, s.Config(), *asJSON)
		return
	}

	if *faultSweep {
		opt := experiments.DefaultOptions()
		opt.Scale = *scale
		opt.Seed = *seed
		opt.MeasureIntervals = *intervals
		rep, err := experiments.FaultSweep(opt)
		if err != nil {
			fatal(err)
		}
		emit(rep, *asJSON, func() { rep.Fprint(os.Stdout) })
		return
	}

	if *pcsMode {
		cfg := mediaworm.DefaultPCSConfig().Scale(*scale)
		cfg.Load = *load
		cfg.Seed = *seed
		cfg.Warmup = 3 * cfg.FrameInterval
		cfg.Measure = time.Duration(*intervals) * cfg.FrameInterval
		res, err := mediaworm.RunPCS(cfg)
		if err != nil {
			fatal(err)
		}
		emit(res, *asJSON, func() {
			fmt.Printf("PCS  load=%.2f  d=%.3f ms  σd=%.4f ms  (established %d, dropped %d)\n",
				*load, res.MeanDeliveryIntervalMs, res.StdDevDeliveryIntervalMs,
				res.Established, res.Dropped)
		})
		return
	}

	cfg := mediaworm.DefaultConfig()
	cfg.Topology = mediaworm.Topology(*topology)
	cfg.Lanes = *lanes
	cfg.Ports = *ports
	cfg.VCs = *vcs
	cfg.Policy = mediaworm.Policy(*policy)
	cfg.FullCrossbar = *fullXbar
	cfg.Load = *load
	cfg.RTShare = *mix
	cfg.Class = mediaworm.TrafficClass(*class)
	cfg.LinkBandwidthBps = *linkMbps * 1e6
	cfg.MsgFlits = *msgFlits
	cfg.Seed = *seed
	cfg.Sched = mediaworm.SchedConfig{
		RTWeight: *rtWeight,
		BEWeight: *beWeight,
		Quantum:  *drrQuantum,
	}
	cfg.Policing = mediaworm.PolicingConfig{
		Enabled:   *policing,
		CIRFactor: *cirFactor,
		CBSFlits:  *cbsFlits,
		EBSFlits:  *ebsFlits,
	}
	cfg = cfg.Scale(*scale)
	cfg.Warmup = 3 * cfg.FrameInterval
	cfg.Measure = time.Duration(*intervals) * cfg.FrameInterval
	cfg.Faults = mediaworm.FaultsConfig{
		LinkMTBF:           *faultMTBF,
		LinkMTTR:           *faultMTTR,
		FlitCorruptionProb: *corruptProb,
		Retransmit:         *retransmit,
		RetransmitTimeout:  *retxTimeout,
		MaxRetransmits:     *retxMax,
		WatchdogCycles:     *watchdog,
		WatchdogRecover:    *wdRecover,
	}
	if *tracePath != "" || *metricsPath != "" {
		cfg.Trace = mediaworm.TraceConfig{
			Enabled:         true,
			EventCap:        *traceEvents,
			MetricsInterval: *traceInterval,
		}
	}
	if *ckptEvery > 0 || *runTo > 0 {
		if *ckptPath == "" {
			fatal(errors.New("-checkpoint-every and -run-to require -checkpoint <path>"))
		}
		s, err := mediaworm.NewSim(cfg)
		if err != nil {
			fatal(err)
		}
		stop := s.End()
		if *runTo > 0 && *runTo < stop {
			stop = *runTo
		}
		if *ckptEvery > 0 {
			for t := *ckptEvery; t < stop; t += *ckptEvery {
				s.RunTo(t)
				if err := saveCheckpoint(s, *ckptPath); err != nil {
					fatal(err)
				}
			}
		}
		s.RunTo(stop)
		if *runTo > 0 {
			if err := saveCheckpoint(s, *ckptPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "mwsim: checkpoint at %v written to %s\n", s.Now(), *ckptPath)
			return
		}
		res, err := s.Finish()
		if err != nil {
			fatal(err)
		}
		printResult(res, cfg, *asJSON)
		return
	}

	res, err := mediaworm.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if res.Trace != nil {
		if *tracePath != "" {
			if err := artifact.WriteFunc(*tracePath, 0o644, func(w io.Writer) error {
				return obs.WriteChromeTrace(w, res.Trace)
			}); err != nil {
				fatal(err)
			}
		}
		if *metricsPath != "" {
			if err := artifact.WriteFunc(*metricsPath, 0o644, func(w io.Writer) error {
				return obs.WriteMetricsCSV(w, res.Trace)
			}); err != nil {
				fatal(err)
			}
		}
		res.Trace = nil // keep the JSON/text result output compact
	}
	printResult(res, cfg, *asJSON)
}

func saveCheckpoint(s *mediaworm.Sim, path string) error {
	return artifact.WriteFunc(path, 0o644, s.WriteCheckpoint)
}

func printResult(res mediaworm.Result, cfg mediaworm.Config, asJSON bool) {
	emit(res, asJSON, func() {
		norm := 33.0 / (cfg.FrameInterval.Seconds() * 1000)
		fmt.Printf("load=%.2f mix=%.0f:%.0f policy=%s vcs=%d\n",
			cfg.Load, cfg.RTShare*100, (1-cfg.RTShare)*100, cfg.Policy, cfg.VCs)
		fmt.Printf("  d = %.3f ms, σd = %.4f ms (paper scale: %.2f / %.3f), %d samples, %d streams\n",
			res.MeanDeliveryIntervalMs, res.StdDevDeliveryIntervalMs,
			res.MeanDeliveryIntervalMs*norm, res.StdDevDeliveryIntervalMs*norm,
			res.FrameIntervals, res.Streams)
		if res.BestEffort.Injected > 0 {
			sat := ""
			if res.BestEffort.Saturated {
				sat = "  SATURATED"
			}
			fmt.Printf("  best-effort: %.1f µs mean (max %.1f), %d/%d delivered%s\n",
				res.BestEffort.MeanLatencyUs, res.BestEffort.MaxLatencyUs,
				res.BestEffort.Delivered, res.BestEffort.Injected, sat)
		}
		if p := res.Policing; p.Enabled {
			fmt.Printf("  policing: %d drops (%d exceed, %d violate), delivered-frame ratio %.4f\n",
				p.Drops, p.MeterExceed, p.MeterViolate, p.DeliveredFrameRatio)
		}
		if r := res.Resilience; r.Enabled {
			fmt.Printf("  faults: %d link downs / %d ups, %d flits dropped, %d msgs killed\n",
				r.LinkDowns, r.LinkUps, r.FlitsDropped, r.MessagesKilled)
			fmt.Printf("  resilience: %d resends (%d recovered, %d abandoned), delivered-frame ratio %.4f\n",
				r.Retransmissions, r.Recovered, r.Abandoned, r.DeliveredFrameRatio)
			if r.Deadlocks > 0 {
				fmt.Printf("  deadlocks: %d detected, %d broken\n%s", r.Deadlocks, r.DeadlocksBroken, r.DeadlockReport)
			}
		}
	})
}

func emit(v any, asJSON bool, plain func()) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fatal(err)
		}
		return
	}
	plain()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwsim:", err)
	os.Exit(1)
}
