// Quickstart: simulate the paper's default 8×8 MediaWorm switch carrying an
// 80:20 mix of MPEG-2 VBR video and best-effort traffic at 80% link load,
// and print the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mediaworm"
)

func main() {
	cfg := mediaworm.DefaultConfig()
	cfg.Load = 0.8    // 80% of each 400 Mb/s input link
	cfg.RTShare = 0.8 // 80:20 VBR : best-effort

	// Shrink the video time base 5× so the example finishes in seconds;
	// drop this line to simulate full 33 ms MPEG-2 frames.
	cfg = cfg.Scale(0.2)

	res, err := mediaworm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	norm := 33.0 / (cfg.FrameInterval.Seconds() * 1000) // back to the 33 ms base
	fmt.Printf("MediaWorm 8x8, %d VCs, %s scheduling, load %.2f (mix 80:20)\n",
		cfg.VCs, cfg.Policy, cfg.Load)
	fmt.Printf("  %d VBR streams, %d frame intervals measured\n",
		res.Streams, res.FrameIntervals)
	fmt.Printf("  frame delivery interval d = %.2f ms, σd = %.3f ms (paper scale)\n",
		res.MeanDeliveryIntervalMs*norm, res.StdDevDeliveryIntervalMs*norm)
	fmt.Printf("  best-effort latency = %.1f µs over %d messages\n",
		res.BestEffort.MeanLatencyUs, res.BestEffort.Delivered)
	if res.StdDevDeliveryIntervalMs*norm < 1 {
		fmt.Println("  → jitter-free video delivery (σd ≈ 0), as in the paper's Fig. 5")
	}
}
