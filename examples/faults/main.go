// Faults: QoS under failure. Runs the 2×2 fat-mesh VBR mix while links
// fail and recover stochastically, with the resilience stack enabled —
// fault-aware rerouting around dead parallel links, NI end-to-end
// retransmission, and the deadlock watchdog in recovery mode — and shows
// how frame delivery degrades gracefully as the fault rate climbs.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"
	"time"

	"mediaworm"
)

func main() {
	fmt.Println("2×2 fat-mesh, load 0.70 at 80:20 VBR:best-effort, link churn")
	fmt.Println("MTTR fixed at 500 µs; MTBF sweeps from rare to hostile")
	fmt.Println()
	fmt.Printf("%-10s  %-5s  %-9s  %-9s  %-8s  %-18s\n",
		"MTBF", "downs", "d (ms)", "σd (ms)", "DFR", "resends (rec/aband)")

	for _, mtbf := range []time.Duration{0, 20 * time.Millisecond, 5 * time.Millisecond, 2 * time.Millisecond} {
		cfg := mediaworm.DefaultConfig().Scale(0.05)
		cfg.Topology = mediaworm.FatMesh2x2
		cfg.Load = 0.7
		cfg.RTShare = 0.8
		cfg.Warmup = 2 * cfg.FrameInterval
		cfg.Measure = 6 * cfg.FrameInterval
		cfg.Faults = mediaworm.FaultsConfig{
			Retransmit:      true,
			WatchdogRecover: true,
		}
		if mtbf > 0 {
			cfg.Faults.LinkMTBF = mtbf
			cfg.Faults.LinkMTTR = 500 * time.Microsecond
		}
		res, err := mediaworm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		norm := 33.0 / (cfg.FrameInterval.Seconds() * 1000)
		r := res.Resilience
		label := "none"
		if mtbf > 0 {
			label = mtbf.String()
		}
		fmt.Printf("%-10s  %-5d  %-9.2f  %-9.3f  %-8.4f  %d (%d/%d)\n",
			label, r.LinkDowns,
			res.MeanDeliveryIntervalMs*norm, res.StdDevDeliveryIntervalMs*norm,
			r.DeliveredFrameRatio, r.Retransmissions, r.Recovered, r.Abandoned)
		if r.Deadlocks > 0 {
			fmt.Printf("  watchdog: %d deadlocks detected, %d broken\n", r.Deadlocks, r.DeadlocksBroken)
		}
	}

	fmt.Println()
	fmt.Println("Every run is reproducible: the injector draws all fault times from")
	fmt.Println("an RNG substream of Config.Seed, so the same seed replays the same")
	fmt.Println("failures flit-for-flit. See `mwsim -fault-sweep` for the full")
	fmt.Println("closed-loop experiment with admission-controlled degradation.")
}
