// Observability: runs the paper's 8-port switch under an 80:20 VBR/CBR +
// best-effort mix with the mwtrace observability subsystem armed, then
// exports the capture as a Chrome trace-event file (open it in Perfetto or
// chrome://tracing) and a per-port/per-VC metrics CSV.
//
//	go run ./examples/observability
//	go run ./cmd/mwtrace summary observability.trace.json
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mediaworm"
	"mediaworm/internal/obs"
)

func main() {
	cfg := mediaworm.DefaultConfig().Scale(0.05)
	cfg.Load = 0.9
	cfg.RTShare = 0.8 // 80:20 real-time : best-effort, the paper's stress mix
	cfg.Class = mediaworm.VBR
	cfg.Warmup = 2 * cfg.FrameInterval
	cfg.Measure = 4 * cfg.FrameInterval
	cfg.Trace = mediaworm.TraceConfig{
		Enabled:         true,
		EventCap:        1 << 15, // keep the demo file small; oldest events age out
		MetricsInterval: 500 * time.Microsecond,
	}

	res, err := mediaworm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran load=%.2f mix=%.0f:%.0f on the %d-port switch: d=%.3f ms σd=%.4f ms\n",
		cfg.Load, cfg.RTShare*100, (1-cfg.RTShare)*100, cfg.Ports,
		res.MeanDeliveryIntervalMs, res.StdDevDeliveryIntervalMs)

	c := res.Trace
	fmt.Printf("captured %d events (%d aged out of the ring), %d snapshots\n",
		len(c.Events), c.DroppedEvents, len(c.Snapshots))

	export("observability.trace.json", func(f *os.File) error {
		return obs.WriteChromeTrace(f, c)
	})
	export("observability.metrics.csv", func(f *os.File) error {
		return obs.WriteMetricsCSV(f, c)
	})

	fmt.Println("\nnext:")
	fmt.Println("  go run ./cmd/mwtrace summary  observability.trace.json")
	fmt.Println("  go run ./cmd/mwtrace validate observability.trace.json")
	fmt.Println("  open https://ui.perfetto.dev and load observability.trace.json")
}

func export(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d KiB)\n", path, st.Size()/1024)
}
