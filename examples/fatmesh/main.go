// Fatmesh: a 16-node cluster built from four 8-port MediaWorm switches in
// the paper's 2×2 fat-mesh (two parallel physical links between adjacent
// switches, load-balanced per message). Sweeps the traffic mix at a fixed
// load, as in the paper's Fig. 9.
//
//	go run ./examples/fatmesh
package main

import (
	"fmt"
	"log"

	"mediaworm"
)

func main() {
	const load = 0.7
	fmt.Printf("2×2 fat-mesh cluster (16 endpoints), input load %.2f\n\n", load)
	fmt.Printf("%-8s  %-9s  %-9s  %-14s\n", "mix", "d (ms)", "σd (ms)", "BE latency (µs)")

	for _, mix := range []float64{0.4, 0.6, 0.8} {
		cfg := mediaworm.DefaultConfig().Scale(0.1)
		cfg.Topology = mediaworm.FatMesh2x2
		cfg.Load = load
		cfg.RTShare = mix
		cfg.Warmup = 3 * cfg.FrameInterval
		cfg.Measure = 8 * cfg.FrameInterval
		res, err := mediaworm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		norm := 33.0 / (cfg.FrameInterval.Seconds() * 1000)
		be := fmt.Sprintf("%.1f", res.BestEffort.MeanLatencyUs)
		if res.BestEffort.Saturated {
			be = "saturated"
		}
		fmt.Printf("%.0f:%-5.0f  %-9.2f  %-9.3f  %-14s\n",
			mix*100, (1-mix)*100,
			res.MeanDeliveryIntervalMs*norm, res.StdDevDeliveryIntervalMs*norm, be)
	}
	fmt.Println()
	fmt.Println("Video stays jitter-free across the mesh; best-effort latency grows")
	fmt.Println("with the video share, since Virtual Clock always serves video first.")
}
