// Admission: the admission-control strategy the paper's conclusions call
// for. Calibrates the switch's jitter-free envelope against the simulator
// itself, derives the same envelope in closed form from the network-calculus
// model (microseconds instead of simulated minutes), compares the two side
// by side, then admits video-on-demand session requests against the
// calibrated one.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"mediaworm"
	"mediaworm/internal/admission"
	"mediaworm/internal/calculus"
)

func main() {
	// Probe the simulator: σd (paper-scale ms) at a given load and mix.
	probe := func(load, rtShare float64) (float64, error) {
		cfg := mediaworm.DefaultConfig().Scale(0.05)
		cfg.Load = load
		cfg.RTShare = rtShare
		cfg.Warmup = 2 * cfg.FrameInterval
		cfg.Measure = 6 * cfg.FrameInterval
		res, err := mediaworm.Run(cfg)
		if err != nil {
			return 0, err
		}
		norm := 33.0 / (cfg.FrameInterval.Seconds() * 1000)
		return res.StdDevDeliveryIntervalMs * norm, nil
	}

	shares := []float64{0.4, 0.5, 0.8, 1.0}
	fmt.Println("calibrating the jitter-free envelope (σd budget 1.5 ms)…")
	env, err := admission.Calibrate(probe, shares, 1.5, 4)
	if err != nil {
		log.Fatal(err)
	}

	// The closed-form sibling: same envelope type, same budget, derived from
	// the network-calculus model without a single simulation.
	analytic, err := calculus.AnalyticEnvelope(calculus.DefaultParams(), shares, 1.5, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  mix          calibrated  analytic  (max safe load)")
	for _, share := range shares {
		fmt.Printf("  %3.0f%% video       %.2f      %.2f\n",
			share*100, env.MaxLoad(share), analytic.MaxLoad(share))
	}

	// At the paper's 40% real-time share operating point, the analytic
	// envelope's conservatism is the slack between the two certifications.
	const opShare = 0.4
	cal, ana := env.MaxLoad(opShare), analytic.MaxLoad(opShare)
	fmt.Printf("\nat the paper's 40%% real-time share: calibrated %.2f vs analytic %.2f (slack %.2f)\n",
		cal, ana, ana/cal)
	fmt.Println("  at mixed shares both certify nearly the full load — Virtual Clock isolates")
	fmt.Println("  the video class; at video-heavy mixes the analytic envelope grows")
	fmt.Println("  conservative: the price of a closed-form worst-case guarantee.")

	// Admit 4 Mb/s MPEG-2 sessions on one 400 Mb/s link that already
	// carries 10% best-effort control traffic.
	ctl, err := admission.NewController(env, 400e6, 4e6)
	if err != nil {
		log.Fatal(err)
	}
	ctl.SetBestEffortLoad(0.10)

	requests := 100
	for i := 0; i < requests; i++ {
		ctl.RequestStream()
	}
	fmt.Printf("\n%d session requests against one link with 10%% control traffic:\n", requests)
	fmt.Printf("  admitted %d, rejected %d (capacity %d sessions)\n",
		ctl.Admitted, ctl.Rejected, ctl.Accepted())
	fmt.Println("\nadmitted sessions stay inside the envelope, so every viewer keeps")
	fmt.Println("jitter-free 30 frames/s delivery — the paper's admission-control goal.")
}
