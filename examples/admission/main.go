// Admission: the admission-control strategy the paper's conclusions call
// for. Calibrates the switch's jitter-free envelope against the simulator
// itself, then admits video-on-demand session requests against it.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"mediaworm"
	"mediaworm/internal/admission"
)

func main() {
	// Probe the simulator: σd (paper-scale ms) at a given load and mix.
	probe := func(load, rtShare float64) (float64, error) {
		cfg := mediaworm.DefaultConfig().Scale(0.05)
		cfg.Load = load
		cfg.RTShare = rtShare
		cfg.Warmup = 2 * cfg.FrameInterval
		cfg.Measure = 6 * cfg.FrameInterval
		res, err := mediaworm.Run(cfg)
		if err != nil {
			return 0, err
		}
		norm := 33.0 / (cfg.FrameInterval.Seconds() * 1000)
		return res.StdDevDeliveryIntervalMs * norm, nil
	}

	fmt.Println("calibrating the jitter-free envelope (σd budget 1.5 ms)…")
	env, err := admission.Calibrate(probe, []float64{0.5, 0.8, 1.0}, 1.5, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, share := range []float64{0.5, 0.8, 1.0} {
		fmt.Printf("  mix %3.0f%% video → max safe load %.2f\n", share*100, env.MaxLoad(share))
	}

	// Admit 4 Mb/s MPEG-2 sessions on one 400 Mb/s link that already
	// carries 10% best-effort control traffic.
	ctl, err := admission.NewController(env, 400e6, 4e6)
	if err != nil {
		log.Fatal(err)
	}
	ctl.SetBestEffortLoad(0.10)

	requests := 100
	for i := 0; i < requests; i++ {
		ctl.RequestStream()
	}
	fmt.Printf("\n%d session requests against one link with 10%% control traffic:\n", requests)
	fmt.Printf("  admitted %d, rejected %d (capacity %d sessions)\n",
		ctl.Admitted, ctl.Rejected, ctl.Accepted())
	fmt.Println("\nadmitted sessions stay inside the envelope, so every viewer keeps")
	fmt.Println("jitter-free 30 frames/s delivery — the paper's admission-control goal.")
}
