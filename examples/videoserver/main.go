// Videoserver: the paper's motivating scenario — a cluster video server
// pushing MPEG-2 streams alongside control (best-effort) traffic. Compares
// a conventional FIFO-scheduled wormhole router against MediaWorm's Virtual
// Clock at increasing load, reproducing the Fig. 3 effect programmatically.
//
//	go run ./examples/videoserver
package main

import (
	"fmt"
	"log"

	"mediaworm"
)

func main() {
	fmt.Println("video server on an 8-port switch, 80:20 VBR:best-effort")
	fmt.Println()
	fmt.Printf("%-6s  %-22s  %-22s\n", "load", "FIFO router", "MediaWorm (VirtualClock)")
	fmt.Printf("%-6s  %-11s %-10s  %-11s %-10s\n", "", "d (ms)", "σd (ms)", "d (ms)", "σd (ms)")

	for _, load := range []float64{0.6, 0.8, 0.9, 0.96} {
		row := fmt.Sprintf("%-6.2f", load)
		for _, policy := range []mediaworm.Policy{mediaworm.FIFO, mediaworm.VirtualClock} {
			cfg := mediaworm.DefaultConfig().Scale(0.1)
			cfg.Policy = policy
			cfg.Load = load
			cfg.RTShare = 0.8
			cfg.Warmup = 3 * cfg.FrameInterval
			cfg.Measure = 8 * cfg.FrameInterval
			res, err := mediaworm.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			norm := 33.0 / (cfg.FrameInterval.Seconds() * 1000)
			row += fmt.Sprintf("  %-11.2f %-10.3f",
				res.MeanDeliveryIntervalMs*norm, res.StdDevDeliveryIntervalMs*norm)
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("FIFO jitters once the link load passes ~0.8; Virtual Clock keeps the")
	fmt.Println("30 frames/s cadence (σd ≈ 0) to ~0.96 — the paper's headline result.")
}
