// Tracedriven: feed the fabric with trace-driven VBR — here a synthesized
// MPEG-2 trace (GoP structure, Markov scene changes, AR(1) correlation),
// the same format cmd/mktrace writes and traffic.LoadFrameTrace reads for
// real recorded traces. Compares the trace's burstier jitter against the
// paper's memoryless normal-draw model at the same mean rate.
//
//	go run ./examples/tracedriven
package main

import (
	"fmt"
	"log"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/stats"
	"mediaworm/internal/topology"
	"mediaworm/internal/traffic"
)

const (
	frameBytes = 3333.0 // 0.2× scaled MPEG-2 frames (≈4 Mb/s streams)
	interval   = 6600 * sim.Microsecond
	load       = 0.85
	streamsPer = 21 // ≈ load × 100 / 4 per node
)

func run(useTrace bool) (d, sd float64) {
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, core.Config{
		Ports: 8, VCs: 16, RTVCs: 16,
		BufferDepth: 20, StageDepth: 4,
		Policy: sched.VirtualClock, Period: 80,
	})
	if err != nil {
		log.Fatal(err)
	}
	warmup := 3 * interval
	stop := warmup + 12*interval
	it := stats.NewIntervalTracker(warmup)
	for _, s := range net.Sinks {
		s.OnFrame = func(stream, frame int, at sim.Time) { it.Observe(stream, at) }
	}

	// One shared synthesized movie; each stream replays it from a random
	// offset, like a video server fanning out the same asset.
	trace, err := traffic.SynthesizeTrace(traffic.DefaultSynthTrace(3600, frameBytes))
	if err != nil {
		log.Fatal(err)
	}

	var ids uint64
	id := 0
	for node := 0; node < net.Endpoints(); node++ {
		src := rng.NewStream(42, fmt.Sprintf("node-%d", node))
		for i := 0; i < streamsPer; i++ {
			sc := traffic.StreamConfig{
				ID: id, Class: flit.VBR, Src: node,
				Dst:        pickDst(src, node, net.Endpoints()),
				InVC:       i % 16,
				DstVC:      src.Intn(16),
				FrameBytes: frameBytes, FrameBytesSD: frameBytes / 5,
				Interval: interval, MsgFlits: 20, FlitBits: 32,
				Start: sim.Time(src.Uint64n(uint64(interval))),
				Stop:  stop,
			}
			if useTrace {
				sizer, err := traffic.NewTraceSizer(trace, src.Intn(len(trace)))
				if err != nil {
					log.Fatal(err)
				}
				sc.Sizer = sizer
			}
			if _, err := traffic.StartStream(eng, net.NIs[node], sc, src.Split(uint64(i)), &ids); err != nil {
				log.Fatal(err)
			}
			id++
		}
	}
	eng.Run(stop)
	eng.Drain()
	norm := 33.0 / interval.Milliseconds()
	return it.MeanMs() * norm, it.StdDevMs() * norm
}

func pickDst(src *rng.Source, node, nodes int) int {
	d := src.Intn(nodes - 1)
	if d >= node {
		d++
	}
	return d
}

func main() {
	fmt.Printf("8×8 MediaWorm, %d VBR streams at %.0f%% load (paper-scale values)\n\n",
		streamsPer*8, load*100)
	dN, sdN := run(false)
	fmt.Printf("  normal-draw VBR (the paper's model):  d = %.2f ms, σd = %.3f ms\n", dN, sdN)
	dT, sdT := run(true)
	fmt.Printf("  trace-driven VBR (synthetic MPEG-2):  d = %.2f ms, σd = %.3f ms\n", dT, sdT)
	fmt.Println("\nScene changes and GoP structure make real traces burstier than the")
	fmt.Println("memoryless model, but Virtual Clock still holds the 33 ms cadence.")
}
