// Package viz renders experiment figures as standalone SVG line charts, so
// a reproduction run can be compared against the paper's plots visually
// without any plotting dependency.
package viz

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"mediaworm/internal/artifact"
	"mediaworm/internal/experiments"
)

// Metric selects which Point field a chart plots.
type Metric uint8

const (
	// MeanInterval plots d (ms) — the paper's left-hand panels.
	MeanInterval Metric = iota
	// StdDevInterval plots σd (ms) — the right-hand panels.
	StdDevInterval
	// BELatency plots best-effort latency (µs); saturated points are
	// clipped to the top of the chart.
	BELatency
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MeanInterval:
		return "d (ms)"
	case StdDevInterval:
		return "σd (ms)"
	case BELatency:
		return "best-effort latency (µs)"
	default:
		return fmt.Sprintf("Metric(%d)", uint8(m))
	}
}

func (m Metric) value(p experiments.Point) (float64, bool) {
	switch m {
	case MeanInterval:
		return p.DMs, true
	case StdDevInterval:
		return p.SDMs, true
	case BELatency:
		return p.BELatencyUs, !p.BESaturated
	default:
		return 0, false
	}
}

// chart geometry
const (
	width   = 640
	height  = 420
	marginL = 64
	marginR = 180 // legend gutter
	marginT = 48
	marginB = 56
)

// palette cycles across series.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Chart writes fig's metric as an SVG line chart.
func Chart(fig *experiments.Figure, metric Metric, w io.Writer) error {
	if len(fig.Series) == 0 || len(fig.Series[0].Points) == 0 {
		return fmt.Errorf("viz: empty figure %q", fig.ID)
	}
	xs, err := xValues(fig)
	if err != nil {
		return err
	}
	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		xmin = math.Min(xmin, x)
		xmax = math.Max(xmax, x)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	ymin, ymax := 0.0, 0.0
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if v, ok := metric.value(p); ok && !math.IsNaN(v) {
				ymax = math.Max(ymax, v)
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	ymax *= 1.08 // headroom

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	X := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	Y := func(y float64) float64 { return float64(height-marginB) - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s — %s</text>`+"\n",
		marginL, esc(fig.ID), esc(fig.Title))
	fmt.Fprintf(&b, `<text x="%d" y="36">%s vs %s</text>`+"\n", marginL, esc(metric.String()), esc(fig.XLabel))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		xv := xmin + (xmax-xmin)*float64(i)/4
		yv := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			X(xv), height-marginB, X(xv), height-marginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			X(xv), height-marginB+20, fmtTick(xv, fig.XIsMix))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, Y(yv), marginL, Y(yv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%.3g</text>`+"\n",
			marginL-8, Y(yv), yv)
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, esc(fig.XLabel))

	// Series.
	for si, s := range fig.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, p := range s.Points {
			v, ok := metric.value(p)
			if !ok {
				v = ymax // saturated: clip to the top
			}
			if math.IsNaN(v) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", X(xs[i]), Y(v)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, pt := range pts {
			xy := strings.Split(pt, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
		}
		// Legend entry.
		ly := marginT + 18*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+12, ly, width-marginR+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n",
			width-marginR+40, ly, esc(s.Label))
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err = io.WriteString(w, b.String())
	return err
}

// xValues extracts the sweep variable of the first series (all series share
// the same x grid by construction).
func xValues(fig *experiments.Figure) ([]float64, error) {
	pts := fig.Series[0].Points
	xs := make([]float64, len(pts))
	for i, p := range pts {
		if fig.XIsMix {
			xs[i] = p.RTShare
		} else {
			xs[i] = p.Load
		}
	}
	for _, s := range fig.Series[1:] {
		if len(s.Points) != len(pts) {
			return nil, fmt.Errorf("viz: ragged series in %q", fig.ID)
		}
	}
	return xs, nil
}

func fmtTick(v float64, mix bool) string {
	if mix {
		return fmt.Sprintf("%d%%", int(v*100+0.5))
	}
	return fmt.Sprintf("%.2f", v)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteChartFiles renders d and σd charts (and best-effort latency when the
// figure carries it) to <dir>/<id>-<suffix>.svg, returning the paths.
func WriteChartFiles(dir string, fig *experiments.Figure) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	charts := []struct {
		suffix string
		metric Metric
	}{
		{"d", MeanInterval},
		{"sd", StdDevInterval},
	}
	if hasBE(fig) {
		charts = append(charts, struct {
			suffix string
			metric Metric
		}{"be", BELatency})
	}
	var paths []string
	for _, c := range charts {
		c := c
		path := filepath.Join(dir, fig.ID+"-"+c.suffix+".svg")
		err := artifact.WriteFunc(path, 0o644, func(w io.Writer) error {
			return Chart(fig, c.metric, w)
		})
		if err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func hasBE(fig *experiments.Figure) bool {
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.BELatencyUs > 0 || p.BESaturated {
				return true
			}
		}
	}
	return false
}
