package viz

import (
	"bytes"
	"encoding/xml"
	"os"
	"strings"
	"testing"

	"mediaworm/internal/experiments"
)

func sampleFigure() *experiments.Figure {
	return &experiments.Figure{
		ID: "fig3", Title: "Virtual Clock vs FIFO", XLabel: "load",
		Series: []experiments.Series{
			{Label: "virtual-clock", Points: []experiments.Point{
				{Load: 0.6, DMs: 33, SDMs: 0.26, BELatencyUs: 5},
				{Load: 0.9, DMs: 33, SDMs: 0.27, BELatencyUs: 30},
				{Load: 0.96, DMs: 33, SDMs: 0.30, BESaturated: true},
			}},
			{Label: "fifo", Points: []experiments.Point{
				{Load: 0.6, DMs: 33, SDMs: 0.26, BELatencyUs: 6},
				{Load: 0.9, DMs: 33, SDMs: 6.1, BELatencyUs: 200},
				{Load: 0.96, DMs: 33.2, SDMs: 8.0, BESaturated: true},
			}},
		},
	}
}

func TestChartProducesValidXML(t *testing.T) {
	for _, m := range []Metric{MeanInterval, StdDevInterval, BELatency} {
		var buf bytes.Buffer
		if err := Chart(sampleFigure(), m, &buf); err != nil {
			t.Fatal(err)
		}
		// Well-formed XML with the expected structure.
		dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
		for {
			if _, err := dec.Token(); err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("metric %v: invalid XML: %v\n%s", m, err, buf.String())
			}
		}
		out := buf.String()
		for _, want := range []string{"<svg", "polyline", "virtual-clock", "fifo", "load"} {
			if !strings.Contains(out, want) {
				t.Fatalf("metric %v: missing %q", m, want)
			}
		}
		// Two series → two polylines.
		if strings.Count(out, "<polyline") != 2 {
			t.Fatalf("metric %v: %d polylines", m, strings.Count(out, "<polyline"))
		}
	}
}

func TestChartEscapesLabels(t *testing.T) {
	fig := sampleFigure()
	fig.Title = `jitter <&"test">`
	var buf bytes.Buffer
	if err := Chart(fig, MeanInterval, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `<&"`) {
		t.Fatal("labels not escaped")
	}
	if !strings.Contains(buf.String(), "&lt;&amp;&quot;") {
		t.Fatal("escaped form missing")
	}
}

func TestChartEmptyFigure(t *testing.T) {
	if err := Chart(&experiments.Figure{ID: "e"}, MeanInterval, &bytes.Buffer{}); err == nil {
		t.Fatal("empty figure accepted")
	}
}

func TestChartRaggedSeries(t *testing.T) {
	fig := sampleFigure()
	fig.Series[1].Points = fig.Series[1].Points[:1]
	if err := Chart(fig, MeanInterval, &bytes.Buffer{}); err == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestChartMixAxis(t *testing.T) {
	fig := sampleFigure()
	fig.XIsMix = true
	for i := range fig.Series {
		for j := range fig.Series[i].Points {
			fig.Series[i].Points[j].RTShare = 0.2 + 0.3*float64(j)
		}
	}
	var buf bytes.Buffer
	if err := Chart(fig, StdDevInterval, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "%") {
		t.Fatal("mix ticks should be percentages")
	}
}

func TestWriteChartFiles(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteChartFiles(dir, sampleFigure())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 { // d, sd, and be (the sample has BE data)
		t.Fatalf("paths %v", paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Fatalf("%s is not an SVG", p)
		}
	}
	// A figure without best-effort data gets two charts.
	noBE := sampleFigure()
	for i := range noBE.Series {
		for j := range noBE.Series[i].Points {
			noBE.Series[i].Points[j].BELatencyUs = 0
			noBE.Series[i].Points[j].BESaturated = false
		}
	}
	noBE.ID = "nobe"
	paths, err = WriteChartFiles(dir, noBE)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("no-BE figure wrote %d charts", len(paths))
	}
}

func TestMetricString(t *testing.T) {
	if MeanInterval.String() == "" || StdDevInterval.String() == "" || BELatency.String() == "" {
		t.Fatal("metric names empty")
	}
	if Metric(9).String() == "" {
		t.Fatal("unknown metric should stringify")
	}
}
