// Package prof wires runtime/pprof CPU and heap profiling to command-line
// flags, so the simulators can be profiled without recompiling:
//
//	mwsim -cpuprofile cpu.pb.gz -memprofile mem.pb.gz -load 0.9
//	go tool pprof cpu.pb.gz
//
// Usage in a main: register the flags before flag.Parse, then
//
//	stop, err := profFlags.Start()
//	if err != nil { fatal(err) }
//	defer stop()
//
// Profiling only observes the run; it never changes simulation results.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations parsed from the command line.
type Flags struct {
	cpu *string
	mem *string
}

// Register adds -cpuprofile and -memprofile to the default flag set. Call
// before flag.Parse.
func Register() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a pprof heap profile to this file at exit"),
	}
}

// Start begins CPU profiling if requested. The returned stop function ends
// the CPU profile and writes the heap profile; it must run before the
// process exits (defer it in main — note it is skipped on os.Exit paths,
// which only lose the profile, never simulation output).
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if *f.mem != "" {
			mf, err := os.Create(*f.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			mf.Close()
		}
	}, nil
}
