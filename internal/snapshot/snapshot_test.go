package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"mediaworm/internal/sim"
)

func buildSample(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.Begin(1)
	w.U8(7)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.Int(1234)
	w.F64(math.Pi)
	w.F64(math.NaN())
	w.Bool(true)
	w.Bool(false)
	w.Time(5 * sim.Millisecond)
	w.String("hello")
	w.Bytes([]byte{1, 2, 3})
	w.Begin(2)
	w.Int(2)
	w.End()
	w.End()
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := buildSample(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	r.Begin(1)
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 1234 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Errorf("F64 NaN = %v", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool true lost")
	}
	if got := r.Bool(); got {
		t.Error("Bool false lost")
	}
	if got := r.Time(); got != 5*sim.Millisecond {
		t.Errorf("Time = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	r.Begin(2)
	if got := r.Int(); got != 2 {
		t.Errorf("nested Int = %d", got)
	}
	r.End()
	r.End()
	if err := r.Err(); err != nil {
		t.Fatalf("Err after round trip: %v", err)
	}
}

// Byte-identical output for identical input is the package's core promise.
func TestDeterministicBytes(t *testing.T) {
	a, b := buildSample(t), buildSample(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical snapshots differ byte-wise")
	}
}

func TestFlippedByteRejected(t *testing.T) {
	data := buildSample(t)
	for _, pos := range []int{0, len(magic) + 3, len(data) / 2, len(data) - 1} {
		mut := bytes.Clone(data)
		mut[pos] ^= 0x40
		_, err := NewReader(bytes.NewReader(mut))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("flip at %d: got %v, want CorruptError", pos, err)
		}
	}
}

func TestTruncationRejected(t *testing.T) {
	data := buildSample(t)
	for _, n := range []int{0, 4, len(magic) + 1, len(data) - 1} {
		_, err := NewReader(bytes.NewReader(data[:n]))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("truncate to %d: got %v, want CorruptError", n, err)
		}
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	data := bytes.Clone(buildSample(t))
	// Patch the version field and re-seal the checksum so only the version
	// check can fire.
	binary.LittleEndian.PutUint16(data[len(magic):], Version+1)
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, castagnoli))
	_, err := NewReader(bytes.NewReader(data))
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want VersionError", err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
}

func TestSectionMismatchSticky(t *testing.T) {
	data := buildSample(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r.Begin(9) // wrong id
	if r.Err() == nil {
		t.Fatal("wrong section id accepted")
	}
	// Sticky: subsequent reads are inert zero values, first error wins.
	first := r.Err()
	_ = r.U64()
	_ = r.String()
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestOverReadWithinSectionFails(t *testing.T) {
	w := NewWriter()
	w.Begin(3)
	w.U8(1)
	w.End()
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Begin(3)
	_ = r.U64() // 8 bytes from a 1-byte section
	if r.Err() == nil {
		t.Fatal("read past section end accepted")
	}
	if !strings.Contains(r.Err().Error(), "truncated") {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestUnderReadSectionFails(t *testing.T) {
	data := buildSample(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r.Begin(1)
	_ = r.U8()
	r.End() // most of section 1 unread
	if r.Err() == nil {
		t.Fatal("End with unread payload accepted")
	}
}

func TestUnbalancedFlushFails(t *testing.T) {
	w := NewWriter()
	w.Begin(1)
	var buf bytes.Buffer
	if err := w.Flush(&buf); err == nil {
		t.Fatal("Flush with open section accepted")
	}
}

func TestImplausibleLengthRejected(t *testing.T) {
	w := NewWriter()
	w.Begin(1)
	w.I64(1 << 40) // claims a collection far larger than the file
	w.End()
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Begin(1)
	if n := r.Len(); n != 0 || r.Err() == nil {
		t.Fatalf("Len accepted implausible count: n=%d err=%v", n, r.Err())
	}
}
