// Package snapshot implements the versioned, checksummed binary container
// that checkpoint files are built from. The encoding is deliberately dumb:
// fixed-width little-endian primitives, length-prefixed byte strings, and
// explicit section frames. Dumb is a feature — byte-identical output for
// identical simulator state is the whole point, so there is no varint
// compression, no reflection, and no map iteration anywhere in this
// package.
//
// A snapshot file is laid out as
//
//	magic   8 bytes  "MWSNAP\x00\x01"
//	version u16      container version (this package)
//	body    sections ...
//	crc     u32      CRC-32 (Castagnoli) over magic+version+body
//
// Each section is
//
//	id      u16
//	length  u32      byte length of the payload that follows
//
// so a reader can verify it consumed exactly the bytes the writer framed,
// and a mismatch is reported against the section name rather than as a
// bad value ten fields later.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"mediaworm/internal/sim"
)

// Version is the container version. Bump it when the framing itself (not a
// section payload) changes shape. v2: NI sections gained policing counters
// and an optional policer state block.
const Version uint16 = 2

// magic identifies a MediaWorm snapshot. The trailing \x00\x01 keeps text
// tools from mistaking the file for ASCII.
var magic = [8]byte{'M', 'W', 'S', 'N', 'A', 'P', 0x00, 0x01}

// castagnoli is the CRC-32C table used for the trailing checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a snapshot that fails structural validation: bad
// magic, checksum mismatch, truncation, or section framing that does not
// add up. Offset is the byte position the problem was detected at.
type CorruptError struct {
	Offset int
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: corrupt at byte %d: %s", e.Offset, e.Reason)
}

// VersionError reports a structurally sound snapshot written by an
// incompatible encoder version.
type VersionError struct {
	Got, Want uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: version %d, this build reads version %d", e.Got, e.Want)
}

// InvariantError reports a snapshot that decoded cleanly but describes a
// state violating a simulator invariant (flit conservation, buffer
// capacity, calendar integrity). Restoring such a state would corrupt the
// run, so restore fails fast instead.
type InvariantError struct {
	Invariant string
	Detail    string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("snapshot: invariant %q violated: %s", e.Invariant, e.Detail)
}

// NotSnapshottableError reports a simulator feature that the checkpoint
// format does not cover yet; checkpointing is refused up front rather than
// silently dropping state.
type NotSnapshottableError struct {
	Feature string
}

func (e *NotSnapshottableError) Error() string {
	return fmt.Sprintf("snapshot: %s is not snapshottable", e.Feature)
}

// Writer accumulates a snapshot body in memory and emits the framed,
// checksummed file in one Flush. All writes are infallible until Flush.
type Writer struct {
	buf []byte
	// secStart stacks the offsets of open section length fields.
	secStart []int
	secID    []uint16
}

// NewWriter starts a snapshot with the magic and container version already
// written.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, magic[:]...)
	w.U16(Version)
	return w
}

// Begin opens a section. Sections may nest; every Begin must be matched by
// an End before Flush.
func (w *Writer) Begin(id uint16) {
	w.U16(id)
	w.secID = append(w.secID, id)
	w.secStart = append(w.secStart, len(w.buf))
	w.U32(0) // length, patched by End
}

// End closes the innermost open section, patching its length field.
func (w *Writer) End() {
	n := len(w.secStart)
	if n == 0 {
		panic("snapshot: End without Begin")
	}
	start := w.secStart[n-1]
	w.secStart = w.secStart[:n-1]
	w.secID = w.secID[:n-1]
	binary.LittleEndian.PutUint32(w.buf[start:], uint32(len(w.buf)-start-4))
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes the IEEE-754 bit pattern of v, so NaN payloads and signed
// zeros round-trip exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Time writes a sim.Time tick count.
func (w *Writer) Time(t sim.Time) { w.I64(int64(t)) }

// Bytes writes a u32 length prefix followed by the raw bytes.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String writes s as length-prefixed bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Flush appends the CRC-32C trailer and writes the whole snapshot to out.
// It fails if any section is still open.
func (w *Writer) Flush(out io.Writer) error {
	if len(w.secStart) != 0 {
		return fmt.Errorf("snapshot: Flush with section %d still open", w.secID[len(w.secID)-1])
	}
	sum := crc32.Checksum(w.buf, castagnoli)
	full := binary.LittleEndian.AppendUint32(w.buf, sum)
	_, err := out.Write(full)
	// Keep the writer reusable for a second Flush of the same bytes.
	w.buf = full[:len(full)-4]
	return err
}

// Reader decodes a snapshot produced by Writer. Errors are sticky: after
// the first failure every read returns the zero value, and Err reports the
// original cause, so decode code can read a whole section and check once.
type Reader struct {
	data []byte
	off  int
	err  error
	// secEnd stacks the end offsets of open sections.
	secEnd []int
	secID  []uint16
}

// NewReader slurps the snapshot, verifies magic, checksum, and version,
// and positions the reader at the first section.
func NewReader(r io.Reader) (*Reader, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(data) < len(magic)+2+4 {
		return nil, &CorruptError{Offset: len(data), Reason: "truncated: shorter than header+trailer"}
	}
	for i, b := range magic {
		if data[i] != b {
			return nil, &CorruptError{Offset: i, Reason: "bad magic: not a MediaWorm snapshot"}
		}
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, &CorruptError{
			Offset: len(body),
			Reason: fmt.Sprintf("checksum mismatch: computed %08x, stored %08x", got, want),
		}
	}
	if v := binary.LittleEndian.Uint16(data[len(magic):]); v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	return &Reader{data: body, off: len(magic) + 2}, nil
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(reason string) {
	if r.err == nil {
		r.err = &CorruptError{Offset: r.off, Reason: reason}
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	limit := len(r.data)
	if k := len(r.secEnd); k > 0 {
		limit = r.secEnd[k-1]
	}
	if r.off+n > limit {
		r.fail(fmt.Sprintf("truncated: need %d bytes, %d left in frame", n, limit-r.off))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// Begin opens the next section and verifies its id.
func (r *Reader) Begin(id uint16) {
	got := r.U16()
	length := r.U32()
	if r.err != nil {
		return
	}
	if got != id {
		r.fail(fmt.Sprintf("section %d expected, found %d", id, got))
		return
	}
	end := r.off + int(length)
	limit := len(r.data)
	if k := len(r.secEnd); k > 0 {
		limit = r.secEnd[k-1]
	}
	if end > limit {
		r.fail(fmt.Sprintf("section %d overruns its frame", id))
		return
	}
	r.secEnd = append(r.secEnd, end)
	r.secID = append(r.secID, id)
}

// End closes the innermost section, verifying the payload was consumed
// exactly.
func (r *Reader) End() {
	if r.err != nil {
		return
	}
	n := len(r.secEnd)
	if n == 0 {
		r.fail("End without Begin")
		return
	}
	end, id := r.secEnd[n-1], r.secID[n-1]
	r.secEnd = r.secEnd[:n-1]
	r.secID = r.secID[:n-1]
	if r.off != end {
		r.fail(fmt.Sprintf("section %d: %d bytes left unread", id, end-r.off))
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 and narrows it to int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads an IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte and rejects anything but 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bool byte not 0 or 1")
		return false
	}
}

// Time reads a sim.Time tick count.
func (r *Reader) Time() sim.Time { return sim.Time(r.I64()) }

// Bytes reads a length-prefixed byte string.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Len counts the elements of a collection read: it rejects negative or
// absurd counts (beyond the bytes remaining) before the caller allocates.
func (r *Reader) Len() int {
	n := r.I64()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > int64(len(r.data)-r.off) {
		r.fail(fmt.Sprintf("implausible collection length %d", n))
		return 0
	}
	return int(n)
}
