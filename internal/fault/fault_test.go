package fault_test

import (
	"testing"

	"mediaworm/internal/core"
	"mediaworm/internal/fault"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/topology"
)

const period = 80 * sim.Nanosecond

func fatMesh(t *testing.T) (*sim.Engine, *topology.Net) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := topology.FatMesh2x2(eng, core.Config{
		Ports:       8,
		VCs:         4,
		RTVCs:       0,
		BufferDepth: 8,
		StageDepth:  4,
		Policy:      sched.VirtualClock,
		Period:      period,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

// meshLink adapts a topology transit link to a fault.Link.
func meshLink(net *topology.Net, l topology.TransitLink) fault.Link {
	return fault.Link{
		A: net.Routers[l.A], APort: l.APort,
		B: net.Routers[l.B], BPort: l.BPort,
	}
}

// xLinks returns the two parallel links between switches a and b.
func linksBetween(net *topology.Net, a, b int) []fault.Link {
	var out []fault.Link
	for _, l := range net.TransitLinks() {
		if l.A == a && l.B == b {
			out = append(out, meshLink(net, l))
		}
	}
	return out
}

// beMsg builds a best-effort message of n flits from src to dst.
func beMsg(id uint64, src, dst, n int) *flit.Message {
	return &flit.Message{
		ID:          id,
		StreamID:    -1,
		Class:       flit.BestEffort,
		MsgsInFrame: 1,
		Flits:       n,
		Vtick:       sim.Forever,
		Src:         src,
		Dst:         dst,
		DstVC:       0,
	}
}

// injectStream schedules count messages from src to dst, one every gap.
func injectStream(eng *sim.Engine, net *topology.Net, src, dst, count, flits int, gap sim.Time) {
	for i := 0; i < count; i++ {
		msg := beMsg(uint64(1000+i), src, dst, flits)
		at := sim.Time(i) * gap
		eng.At(at, func() {
			msg.Injected = eng.Now()
			net.NIs[src].Inject(0, msg)
		})
	}
}

// TestOutageReroutesAroundDeadLinks kills BOTH parallel X links between
// switches 0 and 1 mid-run. The fault-aware route must send traffic the long
// way (Y to switch 2, X to switch 3, Y to switch 1), and the retransmitter
// must resend whatever the outage killed in flight: every message is
// eventually delivered.
func TestOutageReroutesAroundDeadLinks(t *testing.T) {
	eng, net := fatMesh(t)
	rt := network.NewRetransmitter(net.Fabric, 500*sim.Microsecond, 8)
	inj := fault.NewInjector(eng, net.Fabric, nil)

	// 100-flit messages every 5 µs: each takes ~8 µs on the wire, so the
	// X links are busy continuously and the outage is guaranteed to catch
	// worms in flight.
	const count = 40
	injectStream(eng, net, 0, 5, count, 100, 5*sim.Microsecond) // node 0 (sw 0) → node 5 (sw 1)
	for _, l := range linksBetween(net, 0, 1) {
		inj.OutageAt(50*sim.Microsecond, 250*sim.Microsecond, l)
	}
	eng.Run(5 * sim.Millisecond)
	eng.Drain()

	if got := net.Sinks[5].MessagesReceived; got != count {
		t.Errorf("delivered %d messages, want %d", got, count)
	}
	if rt.Abandoned != 0 {
		t.Errorf("Abandoned = %d, want 0 (outage ends, reroute exists)", rt.Abandoned)
	}
	if net.Fabric.DroppedFlits() == 0 {
		t.Error("outage dropped nothing — fault did not land")
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatalf("fabric did not drain: %v", err)
	}
	if inj.LinkDowns != 2 || inj.LinkUps != 2 {
		t.Errorf("LinkDowns/Ups = %d/%d, want 2/2", inj.LinkDowns, inj.LinkUps)
	}
}

// TestPermanentPartitionAbandons severs every link out of switch 0 for good:
// messages can never be delivered, so after MaxAttempts the retransmitter
// gives up and the fabric still drains cleanly.
func TestPermanentPartitionAbandons(t *testing.T) {
	eng, net := fatMesh(t)
	rt := network.NewRetransmitter(net.Fabric, 20*sim.Microsecond, 3)
	inj := fault.NewInjector(eng, net.Fabric, nil)

	for _, l := range linksBetween(net, 0, 1) {
		inj.LinkDownAt(0, l)
	}
	for _, l := range linksBetween(net, 0, 2) {
		inj.LinkDownAt(0, l)
	}
	injectStream(eng, net, 0, 5, 3, 20, sim.Microsecond)
	eng.Run(5 * sim.Millisecond)
	eng.Drain()

	if rt.Abandoned != 3 {
		t.Errorf("Abandoned = %d, want 3", rt.Abandoned)
	}
	if rt.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", rt.Pending())
	}
	if got := net.Sinks[5].MessagesReceived; got != 0 {
		t.Errorf("delivered %d messages across a full partition", got)
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatalf("fabric did not drain: %v", err)
	}
	if net.LiveTransitLinks() != 4 {
		t.Errorf("LiveTransitLinks = %d, want 4", net.LiveTransitLinks())
	}
}

// TestCorruptionRecovered arms per-flit corruption; every corrupted message
// is killed, retransmitted, and eventually delivered.
func TestCorruptionRecovered(t *testing.T) {
	eng, net := fatMesh(t)
	rt := network.NewRetransmitter(net.Fabric, 100*sim.Microsecond, 10)
	inj := fault.NewInjector(eng, net.Fabric, rng.NewStream(7, "fault"))
	inj.CorruptFlits(0.002)

	const count = 30
	injectStream(eng, net, 0, 5, count, 20, 10*sim.Microsecond)
	eng.Run(20 * sim.Millisecond)
	eng.Drain()

	if got := net.Sinks[5].MessagesReceived; got != count {
		t.Errorf("delivered %d messages, want %d", got, count)
	}
	killed := uint64(0)
	for _, r := range net.Routers {
		killed += r.Stats().MessagesKilled
	}
	if killed == 0 {
		t.Error("corruption at 0.2%/flit over 600 flits killed nothing")
	}
	if rt.Recovered == 0 {
		t.Error("no message recovered by retransmission")
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatalf("fabric did not drain: %v", err)
	}
}

// TestStallFreezesPortWithoutLoss stalls the only live path's output port:
// flits wait (StallCycles counts up), nothing is dropped, and traffic
// completes once the stall lifts.
func TestStallFreezesPortWithoutLoss(t *testing.T) {
	eng, net := fatMesh(t)
	inj := fault.NewInjector(eng, net.Fabric, nil)

	injectStream(eng, net, 0, 5, 10, 20, sim.Microsecond)
	inj.StallAt(2*sim.Microsecond, 100*sim.Microsecond, net.Routers[1], 1)
	eng.Run(5 * sim.Millisecond)
	eng.Drain()

	if got := net.Sinks[5].MessagesReceived; got != 10 {
		t.Errorf("delivered %d messages, want 10", got)
	}
	if net.Fabric.DroppedFlits() != 0 {
		t.Errorf("stall dropped %d flits, want 0", net.Fabric.DroppedFlits())
	}
	ps := net.Routers[1].PortStats(1)
	if ps.StallCycles == 0 {
		t.Error("no stall cycles recorded on the frozen port")
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatalf("fabric did not drain: %v", err)
	}
}

// churnRun drives stochastic link churn over steady traffic and returns a
// signature of everything that happened.
func churnRun(t *testing.T, seed uint64) [6]uint64 {
	t.Helper()
	eng, net := fatMesh(t)
	rt := network.NewRetransmitter(net.Fabric, 200*sim.Microsecond, 8)
	inj := fault.NewInjector(eng, net.Fabric, rng.NewStream(seed, "fault"))
	for _, l := range net.TransitLinks() {
		inj.Churn(meshLink(net, l), 300*sim.Microsecond, 60*sim.Microsecond, 2*sim.Millisecond)
	}
	for src := 0; src < 4; src++ {
		injectStream(eng, net, src*4, (src*4+10)%16, 50, 20, 20*sim.Microsecond)
	}
	eng.Run(20 * sim.Millisecond)
	eng.Drain()
	var delivered uint64
	for _, s := range net.Sinks {
		delivered += s.MessagesReceived
	}
	return [6]uint64{
		delivered,
		net.Fabric.DroppedFlits(),
		rt.Retransmissions,
		rt.Abandoned,
		inj.LinkDowns,
		inj.LinkUps,
	}
}

// TestChurnIsSeedDeterministic: the same seed must reproduce the exact fault
// trace and simulation, byte for byte; a different seed must not.
func TestChurnIsSeedDeterministic(t *testing.T) {
	a := churnRun(t, 42)
	b := churnRun(t, 42)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a[4] == 0 {
		t.Fatalf("churn produced no link faults: %v", a)
	}
	c := churnRun(t, 43)
	if a == c {
		t.Errorf("different seeds produced identical runs: %v", a)
	}
}

// TestRemotePartitionKillsInsteadOfPanicking partitions the destination
// switch away using only links that are remote to the source switch: the
// source router's own links stay up, yet the fault-aware route finds no
// path. The router must kill the message (unroutable) — a regression test
// for liveRoute panicking on empty candidates from a locally-healthy
// router — and retransmission must abandon it cleanly.
func TestRemotePartitionKillsInsteadOfPanicking(t *testing.T) {
	eng, net := fatMesh(t)
	rt := network.NewRetransmitter(net.Fabric, 20*sim.Microsecond, 3)
	inj := fault.NewInjector(eng, net.Fabric, nil)

	// Sever switch 3 from the mesh: links 1↔3 and 2↔3 (remote to switch 0).
	for _, pair := range [][2]int{{1, 3}, {2, 3}} {
		for _, l := range linksBetween(net, pair[0], pair[1]) {
			inj.LinkDownAt(0, l)
		}
	}
	const count = 3
	injectStream(eng, net, 0, 15, count, 20, 10*sim.Microsecond) // node 0 (sw 0) → node 15 (sw 3)
	eng.Run(2 * sim.Millisecond)
	eng.Drain()

	if rt.Abandoned != count {
		t.Errorf("Abandoned = %d, want %d", rt.Abandoned, count)
	}
	if got := net.Sinks[15].MessagesReceived; got != 0 {
		t.Errorf("delivered %d messages across a partition", got)
	}
	var killed uint64
	for _, r := range net.Fabric.Routers {
		killed += r.Stats().MessagesKilled
	}
	if killed == 0 {
		t.Error("no router killed the unroutable messages")
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatalf("fabric did not drain: %v", err)
	}
}
