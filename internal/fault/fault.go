// Package fault injects link and router failures into a MediaWorm fabric.
// Faults are either scheduled (an exact instant, for scripted scenarios and
// tests) or stochastic (exponential up/down churn driven by a dedicated RNG
// substream), and both ride the sim engine's event calendar, so every fault
// scenario is exactly reproducible from a seed: same seed, same fault trace,
// same simulation — byte for byte.
//
// The injector only breaks things. Recovery is owned by the layers the
// faults land on: routers reap dead worms and reroute (core, topology), NIs
// retransmit lost messages (network.Retransmitter), and the admission
// controller sheds load (admission.Controller.SetCapacityScale).
package fault

import (
	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/obs"
	"mediaworm/internal/rng"
	"mediaworm/internal/sim"
)

// Link is one bidirectional channel between two routers: A's output APort
// feeds B, and B's output BPort feeds A. Taking a Link down severs both
// directions, the way a cut cable would.
type Link struct {
	A     *core.Router
	APort int
	B     *core.Router
	BPort int
}

// Injector schedules faults against one fabric.
type Injector struct {
	engine *sim.Engine
	fab    *network.Fabric
	src    *rng.Source
	splits uint64

	// LinkDowns and LinkUps count bidirectional link transitions (a Link
	// going down is one LinkDown, not two).
	LinkDowns, LinkUps uint64
	// Stalls counts port-stall intervals begun.
	Stalls uint64

	// OnFault, if set, observes every state change for tracing: kind is
	// "link-down", "link-up", "stall", or "unstall".
	OnFault func(at sim.Time, kind string, router, port int)

	// Tracer, if set, records every fault transition as an obs.EvFault
	// event (Cause link-down or stalled; Arg 1 = onset, 0 = lift).
	Tracer *obs.Tracer
}

// NewInjector creates an injector for the fabric. src seeds the stochastic
// faults; derive it as rng.NewStream(seed, "fault") so fault draws never
// perturb traffic draws. A nil src is fine for purely scheduled scenarios.
func NewInjector(engine *sim.Engine, fab *network.Fabric, src *rng.Source) *Injector {
	if engine == nil || fab == nil {
		panic("fault: nil engine or fabric")
	}
	return &Injector{engine: engine, fab: fab, src: src}
}

// split hands out child RNG streams so each stochastic process (one per
// churned link, one per corrupting router) is independent: adding one never
// shifts another's draws.
func (in *Injector) split() *rng.Source {
	if in.src == nil {
		panic("fault: stochastic faults need an RNG source")
	}
	in.splits++
	return in.src.Split(in.splits)
}

func (in *Injector) note(kind string, r *core.Router, port int) {
	if in.OnFault != nil {
		in.OnFault(in.engine.Now(), kind, r.ID(), port)
	}
	if in.Tracer != nil {
		cause, onset := obs.CauseLinkDown, int64(1)
		switch kind {
		case "link-down":
		case "link-up":
			onset = 0
		case "stall":
			cause = obs.CauseStalled
		case "unstall":
			cause, onset = obs.CauseStalled, 0
		}
		in.Tracer.Emit(obs.Event{At: in.engine.Now(), Kind: obs.EvFault,
			Cause: cause, Router: int16(r.ID()), Port: int16(port), VC: -1,
			Arg: onset})
	}
}

// downLink severs both directions now.
func (in *Injector) downLink(l Link) {
	l.A.SetLinkUp(l.APort, false)
	l.B.SetLinkUp(l.BPort, false)
	in.LinkDowns++
	in.note("link-down", l.A, l.APort)
	// The kill may leave worms to unravel; make sure the driver runs.
	in.fab.Wake()
}

// upLink restores both directions now.
func (in *Injector) upLink(l Link) {
	l.A.SetLinkUp(l.APort, true)
	l.B.SetLinkUp(l.BPort, true)
	in.LinkUps++
	in.note("link-up", l.A, l.APort)
	in.fab.Wake()
}

// LinkDownAt schedules the bidirectional link to fail at the given instant.
// Flits in flight on the link are dropped, their messages killed, and the
// buffers they held reclaimed as the dead worms unravel.
func (in *Injector) LinkDownAt(at sim.Time, l Link) {
	in.engine.At(at, func() { in.downLink(l) })
}

// LinkUpAt schedules the bidirectional link to recover at the given instant.
func (in *Injector) LinkUpAt(at sim.Time, l Link) {
	in.engine.At(at, func() { in.upLink(l) })
}

// OutageAt schedules a link outage covering [at, at+duration).
func (in *Injector) OutageAt(at, duration sim.Time, l Link) {
	if duration <= 0 {
		panic("fault: non-positive outage duration")
	}
	in.LinkDownAt(at, l)
	in.LinkUpAt(at+duration, l)
}

// StallAt freezes a router output port for [at, at+duration): the port
// transmits nothing but, unlike a dead link, loses nothing — flits wait.
// A long enough stall on a loaded fabric is the cheapest way to trip the
// progress watchdog in tests.
func (in *Injector) StallAt(at, duration sim.Time, r *core.Router, port int) {
	if duration <= 0 {
		panic("fault: non-positive stall duration")
	}
	in.engine.At(at, func() {
		r.SetPortStalled(port, true)
		in.Stalls++
		in.note("stall", r, port)
	})
	in.engine.At(at+duration, func() {
		r.SetPortStalled(port, false)
		in.note("unstall", r, port)
		in.fab.Wake()
	})
}

// Churn runs stochastic fail/repair cycles on the link until the horizon:
// up-times are exponential with mean mtbf, down-times exponential with mean
// mttr. Each churned link gets its own RNG substream. No fault is scheduled
// at or beyond until, so a bounded run always terminates.
func (in *Injector) Churn(l Link, mtbf, mttr, until sim.Time) {
	if mtbf <= 0 || mttr <= 0 {
		panic("fault: non-positive MTBF or MTTR")
	}
	src := in.split()
	draw := func(mean sim.Time) sim.Time {
		d := sim.Time(src.Exp(float64(mean)))
		if d < 1 {
			d = 1
		}
		return d
	}
	var fail, repair func()
	now := in.engine.Now()
	fail = func() {
		in.downLink(l)
		if at := in.engine.Now() + draw(mttr); at < until {
			in.engine.At(at, repair)
		}
	}
	repair = func() {
		in.upLink(l)
		if at := in.engine.Now() + draw(mtbf); at < until {
			in.engine.At(at, fail)
		}
	}
	if at := now + draw(mtbf); at < until {
		in.engine.At(at, fail)
	}
}

// CorruptFlits arms per-flit corruption on every router in the fabric: each
// transmitted flit is independently corrupted (and its whole message killed)
// with the given probability. Each router draws from its own substream.
// Probability 0 disarms.
func (in *Injector) CorruptFlits(prob float64) {
	if prob < 0 || prob > 1 {
		panic("fault: corruption probability outside [0, 1]")
	}
	for _, r := range in.fab.Routers {
		if prob == 0 {
			r.SetCorruption(nil)
			continue
		}
		src := in.split()
		r.SetCorruption(func(int, flit.Flit) bool {
			return src.Float64() < prob
		})
	}
}
