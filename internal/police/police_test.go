package police

import (
	"bytes"
	"testing"

	"mediaworm/internal/rng"
	"mediaworm/internal/sim"
	"mediaworm/internal/snapshot"
)

func TestColorString(t *testing.T) {
	for c, want := range map[Color]string{Green: "green", Yellow: "yellow", Red: "red"} {
		if c.String() != want {
			t.Fatalf("%v", c)
		}
	}
	if Color(9).String() == "" {
		t.Fatal("unknown color should stringify")
	}
}

func TestMeterColorsByBurst(t *testing.T) {
	// 1000 flits/s, CBS 10, EBS 5: an instantaneous burst of 17 unit frames
	// colors the first 10 green, the next 5 yellow, the rest red.
	m := NewMeter(MeterConfig{CIR: 1000, CBS: 10, EBS: 5})
	var got [NumColors]int
	for i := 0; i < 17; i++ {
		got[m.Color(0, 1)]++
	}
	if got[Green] != 10 || got[Yellow] != 5 || got[Red] != 2 {
		t.Fatalf("burst colors %v, want [10 5 2]", got)
	}
}

func TestMeterRefillsAtCIR(t *testing.T) {
	m := NewMeter(MeterConfig{CIR: 1000, CBS: 10, EBS: 5})
	for i := 0; i < 15; i++ {
		m.Color(0, 1) // drain both buckets
	}
	if c := m.Color(0, 1); c != Red {
		t.Fatalf("drained meter colored %v, want red", c)
	}
	// 1000 flits/s × 5 ms = 5 flits earned back into the committed bucket.
	now := 5 * sim.Time(sim.Second) / 1000
	for i := 0; i < 5; i++ {
		if c := m.Color(now, 1); c != Green {
			t.Fatalf("frame %d after refill colored %v, want green", i, c)
		}
	}
	if c := m.Color(now, 1); c == Green {
		t.Fatal("meter earned more than CIR×elapsed")
	}
}

func TestMeterCommittedOverflowSpillsToExcess(t *testing.T) {
	m := NewMeter(MeterConfig{CIR: 1000, CBS: 10, EBS: 5})
	for i := 0; i < 15; i++ {
		m.Color(0, 1)
	}
	// A long idle period earns far more than CBS: the committed bucket caps
	// at 10 and the spill refills the excess bucket up to 5 — no unbounded
	// banking.
	now := sim.Time(sim.Second)
	tc, te := func() (float64, float64) { m.refill(now); return m.Tokens() }()
	if tc != 10 || te != 5 {
		t.Fatalf("buckets after idle = (%v, %v), want (10, 5)", tc, te)
	}
}

func TestMeterOversizeFrameViolates(t *testing.T) {
	m := NewMeter(MeterConfig{CIR: 1000, CBS: 4, EBS: 2})
	if c := m.Color(0, 5); c != Red {
		t.Fatalf("frame larger than both buckets colored %v, want red", c)
	}
	// Red consumed nothing: a conforming frame still finds a full bucket.
	if c := m.Color(0, 4); c != Green {
		t.Fatal("red frame consumed tokens")
	}
}

func TestDropProfileRamp(t *testing.T) {
	p := DropProfile{MinFlits: 10, MaxFlits: 30, MaxProb: 0.5}
	if p.drop(5) != 0 {
		t.Fatal("dropped below MinFlits")
	}
	if p.drop(30) != 1 || p.drop(100) != 1 {
		t.Fatal("not certain at MaxFlits")
	}
	if got := p.drop(20); got != 0.25 {
		t.Fatalf("midpoint probability %v, want 0.25", got)
	}
	if (DropProfile{}).drop(1e9) != 0 {
		t.Fatal("zero profile must never drop")
	}
}

// wredConfig is a precedence-ordered WRED provisioning: red drops earliest
// and hardest, yellow in between, green most tolerant.
func wredConfig() DropperConfig {
	return DropperConfig{
		Profiles: [NumColors]DropProfile{
			Green:  {MinFlits: 60, MaxFlits: 120, MaxProb: 0.1},
			Yellow: {MinFlits: 30, MaxFlits: 80, MaxProb: 0.5},
			Red:    {MinFlits: 10, MaxFlits: 40, MaxProb: 1.0},
		},
		WeightExp: 2,
	}
}

func TestDropperPrecedenceOrdering(t *testing.T) {
	// At every backlog level, observed drop rates must order red ≥ yellow ≥
	// green (that is what per-class drop precedence means).
	for _, backlog := range []int{0, 20, 50, 90, 200} {
		rates := make([]float64, NumColors)
		for c := 0; c < NumColors; c++ {
			d := NewDropper(wredConfig(), rng.NewStream(7, "police-test").Split(uint64(c)))
			for i := 0; i < 64; i++ {
				d.Drop(Color(c), backlog) // converge the EWMA
			}
			drops := 0
			const trials = 2000
			for i := 0; i < trials; i++ {
				if d.Drop(Color(c), backlog) {
					drops++
				}
			}
			rates[c] = float64(drops) / trials
		}
		if rates[Red] < rates[Yellow] || rates[Yellow] < rates[Green] {
			t.Fatalf("backlog %d: drop rates g=%.3f y=%.3f r=%.3f violate precedence",
				backlog, rates[Green], rates[Yellow], rates[Red])
		}
	}
}

func TestDropperEWMASmoothsBursts(t *testing.T) {
	d := NewDropper(wredConfig(), rng.NewStream(7, "police-test"))
	// One instantaneous spike must not swing the average to the spike.
	d.Drop(Green, 0)
	d.Drop(Green, 1000)
	if d.Avg() >= 1000 || d.Avg() <= 0 {
		t.Fatalf("EWMA %v did not smooth the spike", d.Avg())
	}
}

func TestDropperDeterministic(t *testing.T) {
	run := func() []bool {
		d := NewDropper(wredConfig(), rng.NewStream(42, "police"))
		out := make([]bool, 500)
		for i := range out {
			out[i] = d.Drop(Color(i%NumColors), 25+i%60)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decision %d diverged across identical seeded runs", i)
		}
	}
}

func TestPolicerChain(t *testing.T) {
	src := rng.NewStream(1, "police")
	p := NewPolicer(MeterConfig{CIR: 1000, CBS: 4, EBS: 2}, wredConfig(), src)
	// Conforming frame over an empty NI: green, admitted.
	color, drop := p.Admit(0, 1, 0)
	if color != Green || drop {
		t.Fatalf("conforming frame: %v drop=%v", color, drop)
	}
	// Violating burst over a saturated NI: red and certainly dropped once
	// the average clears the red profile's MaxFlits.
	for i := 0; i < 64; i++ {
		p.Dropper.Drop(Red, 500)
	}
	color, drop = p.Admit(0, 100, 500)
	if color != Red || !drop {
		t.Fatalf("violating frame over saturated NI: %v drop=%v, want red drop", color, drop)
	}
}

func TestPolicerSnapshotRoundTrip(t *testing.T) {
	mk := func() *Policer {
		return NewPolicer(MeterConfig{CIR: 5000, CBS: 8, EBS: 4}, wredConfig(), rng.NewStream(9, "police"))
	}
	live := mk()
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now += 123456
		live.Admit(now, 1+i%3, i%70)
	}

	var buf bytes.Buffer
	w := snapshot.NewWriter()
	live.EncodeState(w)
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := snapshot.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored := mk()
	if err := restored.RestoreState(r); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 200; i++ {
		now += 77777
		c1, d1 := live.Admit(now, 1+i%3, i%70)
		c2, d2 := restored.Admit(now, 1+i%3, i%70)
		if c1 != c2 || d1 != d2 {
			t.Fatalf("decision %d diverged after restore: (%v,%v) vs (%v,%v)", i, c1, d1, c2, d2)
		}
	}
}
