package police

import "mediaworm/internal/snapshot"

// Checkpoint encoding. Config is rebuilt from the run configuration, so
// only dynamic state is encoded: the meter's bucket levels and refill
// instant, and the dropper's EWMA average plus its rng stream position —
// exactly what a mid-run restore needs to continue policing identically.

// EncodeState writes the meter's dynamic state.
func (m *Meter) EncodeState(w *snapshot.Writer) {
	w.F64(m.tc)
	w.F64(m.te)
	w.Time(m.last)
}

// RestoreState overwrites the meter's dynamic state from r.
func (m *Meter) RestoreState(r *snapshot.Reader) error {
	m.tc = r.F64()
	m.te = r.F64()
	m.last = r.Time()
	return r.Err()
}

// EncodeState writes the dropper's dynamic state.
func (d *Dropper) EncodeState(w *snapshot.Writer) {
	w.F64(d.avg)
	d.src.EncodeState(w)
}

// RestoreState overwrites the dropper's dynamic state from r.
func (d *Dropper) RestoreState(r *snapshot.Reader) error {
	d.avg = r.F64()
	return d.src.RestoreState(r)
}

// EncodeState writes the policer chain's dynamic state.
func (p *Policer) EncodeState(w *snapshot.Writer) {
	p.Meter.EncodeState(w)
	p.Dropper.EncodeState(w)
}

// RestoreState overwrites the policer chain's dynamic state from r.
func (p *Policer) RestoreState(r *snapshot.Reader) error {
	if err := p.Meter.RestoreState(r); err != nil {
		return err
	}
	return p.Dropper.RestoreState(r)
}
