// Package police implements QoS admission policing for the source network
// interface: an srTCM-style single-rate three-color token-bucket meter
// (RFC 2697 shape, in flit currency) and a RED-style early dropper with
// per-color drop precedence (WRED). Together they form the meter→dropper
// chain of production ingress pipelines: the meter colors each frame by its
// conformance to the provisioned rate, and the dropper discards
// probabilistically — earlier and harder for worse colors — before the
// frame ever occupies a virtual channel.
//
// All state is deterministic: token refill is pure arithmetic on simulated
// time and the dropper draws from a seeded rng.Source stream, so identical
// runs police identically.
package police

import (
	"fmt"

	"mediaworm/internal/rng"
	"mediaworm/internal/sim"
)

// Color is a frame's conformance level after metering.
type Color uint8

const (
	// Green frames conform to the committed rate (within CBS).
	Green Color = iota
	// Yellow frames exceed the committed rate but fit the excess burst
	// (within EBS) — degraded drop precedence.
	Yellow
	// Red frames violate both burst allowances — dropped first.
	Red
	// NumColors sizes per-color tables.
	NumColors = int(Red) + 1
)

// String implements fmt.Stringer.
func (c Color) String() string {
	switch c {
	case Green:
		return "green"
	case Yellow:
		return "yellow"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("Color(%d)", uint8(c))
	}
}

// MeterConfig provisions a single-rate three-color meter in flit currency
// (the NI admits whole frames of known flit length; flits, not bytes, are
// the unit the fabric schedules).
type MeterConfig struct {
	// CIR is the committed information rate in flits per second.
	CIR float64
	// CBS is the committed burst size in flits (green bucket depth).
	CBS int
	// EBS is the excess burst size in flits (yellow bucket depth).
	EBS int
}

// Meter is the srTCM token-bucket state: the committed bucket fills at CIR
// up to CBS; overflow spills into the excess bucket up to EBS. A frame is
// colored green if the committed bucket covers it, yellow if the excess
// bucket does, red otherwise; red frames consume no tokens.
type Meter struct {
	cfg    MeterConfig //mw:snapcover — static provisioning, rebuilt from run config at construction
	tc, te float64     // committed and excess tokens, in flits
	last   sim.Time
}

// NewMeter returns a meter with both buckets full (a fresh connection may
// burst its full allowance).
func NewMeter(cfg MeterConfig) *Meter {
	return &Meter{cfg: cfg, tc: float64(cfg.CBS), te: float64(cfg.EBS)}
}

// Color meters one frame of the given flit length arriving at now.
func (m *Meter) Color(now sim.Time, flits int) Color {
	m.refill(now)
	need := float64(flits)
	if need <= m.tc {
		m.tc -= need
		return Green
	}
	if need <= m.te {
		m.te -= need
		return Yellow
	}
	return Red
}

// refill advances the buckets to now: committed tokens accrue at CIR and
// overflow spills into the excess bucket (RFC 2697 token sharing).
func (m *Meter) refill(now sim.Time) {
	if now <= m.last {
		return
	}
	earned := m.cfg.CIR * (now - m.last).Seconds()
	m.last = now
	m.tc += earned
	if spill := m.tc - float64(m.cfg.CBS); spill > 0 {
		m.tc = float64(m.cfg.CBS)
		m.te += spill
		if m.te > float64(m.cfg.EBS) {
			m.te = float64(m.cfg.EBS)
		}
	}
}

// Tokens reports the current bucket levels (for tests and instrumentation).
func (m *Meter) Tokens() (tc, te float64) { return m.tc, m.te }

// DropProfile is one color's RED curve: no drops below MinFlits of average
// backlog, certain drop at or above MaxFlits, and a linear ramp to MaxProb
// in between.
type DropProfile struct {
	MinFlits, MaxFlits int
	MaxProb            float64
}

// drop returns the drop probability for an average backlog of avg flits.
func (p DropProfile) drop(avg float64) float64 {
	if p.MaxFlits <= 0 || avg < float64(p.MinFlits) {
		return 0
	}
	if avg >= float64(p.MaxFlits) {
		return 1
	}
	ramp := (avg - float64(p.MinFlits)) / float64(p.MaxFlits-p.MinFlits)
	return p.MaxProb * ramp
}

// DropperConfig provisions the WRED stage: one profile per color and the
// EWMA weight exponent for the average-queue estimator.
type DropperConfig struct {
	// Profiles holds the per-color RED curves, indexed by Color. Drop
	// precedence ordering (red drops no later than yellow, yellow no later
	// than green) is the caller's provisioning responsibility; the
	// conformance battery checks it.
	Profiles [NumColors]DropProfile
	// WeightExp is the EWMA weight exponent n: avg ← avg + (q − avg)/2ⁿ.
	// Non-positive means 4 (weight 1/16).
	WeightExp int
}

// Dropper is the RED state: an EWMA of the instantaneous backlog and a
// deterministic uniform stream for the drop coin flips.
type Dropper struct {
	cfg DropperConfig //mw:snapcover — static provisioning, rebuilt from run config at construction
	avg float64
	src *rng.Source
}

// NewDropper returns a dropper drawing coin flips from src (one seeded
// stream per NI keeps drops deterministic and independent across nodes).
func NewDropper(cfg DropperConfig, src *rng.Source) *Dropper {
	if cfg.WeightExp <= 0 {
		cfg.WeightExp = 4
	}
	return &Dropper{cfg: cfg, src: src}
}

// Drop updates the average-queue estimate with the instantaneous backlog
// (in flits) and decides the fate of one frame of the given color.
func (d *Dropper) Drop(color Color, backlogFlits int) bool {
	w := 1.0 / float64(uint64(1)<<uint(d.cfg.WeightExp))
	d.avg += (float64(backlogFlits) - d.avg) * w
	p := d.cfg.Profiles[color].drop(d.avg)
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return d.src.Float64() < p
}

// Avg reports the current average-queue estimate (for tests).
func (d *Dropper) Avg() float64 { return d.avg }

// Policer chains a meter and a dropper at one injection point.
type Policer struct {
	Meter   *Meter
	Dropper *Dropper
}

// NewPolicer builds the meter→dropper chain for one NI.
func NewPolicer(mc MeterConfig, dc DropperConfig, src *rng.Source) *Policer {
	return &Policer{Meter: NewMeter(mc), Dropper: NewDropper(dc, src)}
}

// Admit polices one frame of the given flit length arriving at now against
// a backlog of backlogFlits already queued at the NI. It returns the
// meter's color and whether the frame must be dropped before injection.
func (p *Policer) Admit(now sim.Time, flits, backlogFlits int) (Color, bool) {
	color := p.Meter.Color(now, flits)
	return color, p.Dropper.Drop(color, backlogFlits)
}
