package admission

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEnvelopeValidation(t *testing.T) {
	if _, err := NewEnvelope(nil); err == nil {
		t.Fatal("empty envelope accepted")
	}
	bad := [][]EnvelopePoint{
		{{RTShare: -0.1, MaxLoad: 0.8}},
		{{RTShare: 0.5, MaxLoad: 0}},
		{{RTShare: 0.5, MaxLoad: 1.2}},
		{{RTShare: 1.1, MaxLoad: 0.8}},
	}
	for i, ps := range bad {
		if _, err := NewEnvelope(ps); err == nil {
			t.Fatalf("bad envelope %d accepted", i)
		}
	}
}

func TestEnvelopeInterpolation(t *testing.T) {
	env, err := NewEnvelope([]EnvelopePoint{
		{RTShare: 1.0, MaxLoad: 0.70}, // deliberately unsorted
		{RTShare: 0.2, MaxLoad: 0.90},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ share, want float64 }{
		{0.0, 0.90}, // clamped low
		{0.2, 0.90}, // exact
		{0.6, 0.80}, // midpoint
		{1.0, 0.70}, // exact
	}
	for _, c := range cases {
		if got := env.MaxLoad(c.share); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("MaxLoad(%v) = %v, want %v", c.share, got, c.want)
		}
	}
}

func TestDefaultEnvelopeMonotone(t *testing.T) {
	env := DefaultEnvelope()
	prev := 2.0
	for share := 0.0; share <= 1.0; share += 0.05 {
		got := env.MaxLoad(share)
		if got > prev+1e-9 {
			t.Fatalf("envelope not non-increasing at share %.2f", share)
		}
		if got < 0.5 || got > 1 {
			t.Fatalf("implausible envelope value %v", got)
		}
		prev = got
	}
}

// Property: interpolation stays within the bounding points' loads.
func TestPropertyInterpolationBounded(t *testing.T) {
	env := DefaultEnvelope()
	f := func(raw uint8) bool {
		share := float64(raw) / 255
		l := env.MaxLoad(share)
		return l >= 0.70-1e-9 && l <= 0.85+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateBinarySearch(t *testing.T) {
	// Synthetic fabric: jitter explodes above a known per-share knee.
	knee := map[float64]float64{0.5: 0.82, 1.0: 0.71}
	probe := func(load, share float64) (float64, error) {
		if load > knee[share] {
			return 10, nil
		}
		return 0.1, nil
	}
	env, err := Calibrate(probe, []float64{0.5, 1.0}, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := env.MaxLoad(0.5); math.Abs(got-0.82) > 0.01 {
		t.Fatalf("calibrated knee at share 0.5 = %v, want ≈0.82", got)
	}
	if got := env.MaxLoad(1.0); math.Abs(got-0.71) > 0.01 {
		t.Fatalf("calibrated knee at share 1.0 = %v, want ≈0.71", got)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil, nil, 1, 5); err == nil {
		t.Fatal("no shares accepted")
	}
	boom := func(load, share float64) (float64, error) { return 0, fmt.Errorf("boom") }
	if _, err := Calibrate(boom, []float64{0.5}, 1, 3); err == nil {
		t.Fatal("probe error swallowed")
	}
}

func TestCalibrateValidatesParams(t *testing.T) {
	quiet := func(load, share float64) (float64, error) { return 0, nil }
	for _, tc := range []struct {
		name   string
		budget float64
		steps  int
		param  string
	}{
		{"zero steps", 1.0, 0, "steps"},
		{"negative steps", 1.0, -3, "steps"},
		{"zero budget", 0, 5, "jitterBudgetMs"},
		{"negative budget", -1.5, 5, "jitterBudgetMs"},
	} {
		_, err := Calibrate(quiet, []float64{0.5}, tc.budget, tc.steps)
		var ipe *InvalidParamError
		if !errors.As(err, &ipe) {
			t.Fatalf("%s: err = %v, want *InvalidParamError", tc.name, err)
		}
		if ipe.Param != tc.param {
			t.Fatalf("%s: flagged param %q, want %q", tc.name, ipe.Param, tc.param)
		}
	}
}

func TestCalibrateRejectsNonMonotoneEnvelope(t *testing.T) {
	// A probe whose knee RISES with the real-time share: physically
	// impossible, so Calibrate must name the offending pair.
	knee := map[float64]float64{0.5: 0.60, 1.0: 0.90}
	probe := func(load, share float64) (float64, error) {
		if load > knee[share] {
			return 10, nil
		}
		return 0.1, nil
	}
	_, err := Calibrate(probe, []float64{0.5, 1.0}, 1.0, 10)
	var me *MonotonicityError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MonotonicityError", err)
	}
	if me.A.RTShare != 0.5 || me.B.RTShare != 1.0 {
		t.Fatalf("offending pair %+v → %+v, want shares 0.5 → 1.0", me.A, me.B)
	}
	if me.B.MaxLoad <= me.A.MaxLoad {
		t.Fatalf("reported pair is not rising: %+v → %+v", me.A, me.B)
	}
	if msg := err.Error(); !strings.Contains(msg, "0.50") || !strings.Contains(msg, "1.00") {
		t.Fatalf("error %q does not name the offending shares", msg)
	}
	// Flat-within-quantization envelopes stay accepted: both shares share
	// one knee, so bisection lands on the same load.
	flat := func(load, share float64) (float64, error) {
		if load > 0.8 {
			return 10, nil
		}
		return 0.1, nil
	}
	if _, err := Calibrate(flat, []float64{0.5, 1.0}, 1.0, 10); err != nil {
		t.Fatalf("flat envelope rejected: %v", err)
	}
}

func TestEnvelopePointsAccessor(t *testing.T) {
	env := DefaultEnvelope()
	pts := env.Points()
	if len(pts) != 4 {
		t.Fatalf("Points() = %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RTShare <= pts[i-1].RTShare {
			t.Fatalf("points not ascending: %v", pts)
		}
	}
	pts[0].MaxLoad = 0 // a copy: mutating it must not corrupt the envelope
	if env.MaxLoad(0) == 0 {
		t.Fatal("Points() aliases envelope internals")
	}
}

func TestControllerAdmitsUpToEnvelope(t *testing.T) {
	// 400 Mb/s link, 4 Mb/s streams, pure real-time: envelope 0.70 → 70.
	c, err := NewController(DefaultEnvelope(), 400e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for c.RequestStream() {
		admitted++
		if admitted > 1000 {
			t.Fatal("controller never refuses")
		}
	}
	if admitted != 70 {
		t.Fatalf("admitted %d pure-RT streams, want 70 (0.70 × 100)", admitted)
	}
	if c.Accepted() != 70 || c.Admitted != 70 || c.Rejected != 1 {
		t.Fatalf("counters: %d/%d/%d", c.Accepted(), c.Admitted, c.Rejected)
	}
}

func TestControllerRespectsBestEffortLoad(t *testing.T) {
	c, err := NewController(DefaultEnvelope(), 400e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBestEffortLoad(0.4)
	// With 40% best-effort standing load, the mix at admission is richer in
	// best-effort, so the envelope allows more total load but less RT.
	cap1 := c.Capacity()
	if cap1 <= 0 || cap1 >= 70 {
		t.Fatalf("capacity with BE load = %d, want within (0, 70)", cap1)
	}
	for i := 0; i < cap1; i++ {
		if !c.RequestStream() {
			t.Fatalf("stream %d refused below capacity", i)
		}
	}
	if c.RequestStream() {
		t.Fatal("stream admitted beyond capacity")
	}
}

func TestControllerRelease(t *testing.T) {
	c, _ := NewController(DefaultEnvelope(), 400e6, 4e6)
	for c.RequestStream() {
	}
	n := c.Accepted()
	c.Release()
	if c.Accepted() != n-1 {
		t.Fatal("release did not free a slot")
	}
	if !c.RequestStream() {
		t.Fatal("freed slot not admittable")
	}
}

func TestControllerReleaseEmptyPanics(t *testing.T) {
	c, _ := NewController(DefaultEnvelope(), 400e6, 4e6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Release()
}

func TestControllerValidation(t *testing.T) {
	env := DefaultEnvelope()
	if _, err := NewController(nil, 400e6, 4e6); err == nil {
		t.Fatal("nil envelope accepted")
	}
	if _, err := NewController(env, 0, 4e6); err == nil {
		t.Fatal("zero link accepted")
	}
	if _, err := NewController(env, 400e6, 500e6); err == nil {
		t.Fatal("stream faster than link accepted")
	}
}

func TestSetBestEffortLoadPanics(t *testing.T) {
	c, _ := NewController(DefaultEnvelope(), 400e6, 4e6)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.SetBestEffortLoad(1.5)
}

func TestGracefulDegradationShedsBestEffortFirst(t *testing.T) {
	c, err := NewController(DefaultEnvelope(), 400e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBestEffortLoad(0.2)
	// Fill to the envelope boundary so any capacity loss needs action.
	admitted := 0
	for id := 0; c.AdmitStream(id, 0); id++ {
		admitted++
	}
	if admitted == 0 {
		t.Fatal("no streams admitted at nominal capacity")
	}
	// A mild capacity loss must be absorbed entirely by shedding elastic
	// best-effort load, with no stream revoked.
	if revoked := c.SetCapacityScale(0.95); len(revoked) != 0 {
		t.Fatalf("mild degradation revoked streams: %v", revoked)
	}
	if c.BestEffortShed() <= 0 {
		t.Fatal("mild degradation shed no best-effort load")
	}
	if c.Accepted() != admitted {
		t.Fatalf("accepted dropped to %d without revocation", c.Accepted())
	}
}

func TestGracefulDegradationRevokesLowestPriorityNewestFirst(t *testing.T) {
	c, err := NewController(DefaultEnvelope(), 400e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	// ids 0..19 at priority 1, ids 20..39 at priority 0 (20..39 newest).
	for id := 0; id < 20; id++ {
		if !c.AdmitStream(id, 1) {
			t.Fatalf("stream %d rejected", id)
		}
	}
	for id := 20; id < 40; id++ {
		if !c.AdmitStream(id, 0) {
			t.Fatalf("stream %d rejected", id)
		}
	}
	revoked := c.SetCapacityScale(0.5)
	if len(revoked) == 0 {
		t.Fatal("halving capacity revoked nothing")
	}
	for i, id := range revoked {
		if id < 20 {
			t.Fatalf("priority-1 stream %d revoked while priority-0 streams remain", id)
		}
		if i > 0 && id >= revoked[i-1] {
			t.Fatalf("revocation order not newest-first: %v", revoked)
		}
	}
	if got := c.Revoked; got != len(revoked) {
		t.Fatalf("Revoked counter %d != %d revocations", got, len(revoked))
	}
	if !c.fits(c.accepted) {
		t.Fatal("envelope still violated after revocation")
	}

	// Recovery: restored capacity un-sheds best-effort and re-opens room
	// for at least the revoked streams.
	if rev := c.SetCapacityScale(1); len(rev) != 0 {
		t.Fatalf("restoring capacity revoked streams: %v", rev)
	}
	if c.BestEffortShed() != 0 {
		t.Fatalf("best-effort still shed %.3f at full capacity", c.BestEffortShed())
	}
	readmitted := 0
	for _, id := range revoked {
		if c.AdmitStream(id, 0) {
			readmitted++
		}
	}
	if readmitted != len(revoked) {
		t.Fatalf("only %d of %d revoked streams re-admitted at full capacity",
			readmitted, len(revoked))
	}
}

func TestSetCapacityScaleValidation(t *testing.T) {
	c, err := NewController(DefaultEnvelope(), 400e6, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetCapacityScale(%v) did not panic", bad)
				}
			}()
			c.SetCapacityScale(bad)
		}()
	}
}
