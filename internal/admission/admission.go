// Package admission implements the admission-control strategy the paper's
// conclusions call for (§5.7, §6): given the measured jitter-free operating
// envelope of a MediaWorm fabric — the maximum input-link load, per traffic
// mix, at which VBR/CBR delivery stays jitter-free and best-effort latency
// acceptable — admit or reject new video streams so the envelope is never
// exceeded.
//
// The envelope can be supplied from known results (the paper's 0.7–0.8
// guidance) or calibrated against the simulator itself with Calibrate.
package admission

import (
	"fmt"
	"sort"
)

// EnvelopePoint states the maximum safe load when the real-time share of
// traffic is RTShare.
type EnvelopePoint struct {
	RTShare float64
	MaxLoad float64
}

// Envelope is a piecewise-linear jitter-free operating boundary over the
// real-time share of the offered load.
type Envelope struct {
	points []EnvelopePoint
}

// NewEnvelope builds an envelope from points; they are sorted by RTShare.
// At least one point is required, and shares/loads must lie in [0, 1].
func NewEnvelope(points []EnvelopePoint) (*Envelope, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("admission: empty envelope")
	}
	ps := append([]EnvelopePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].RTShare < ps[j].RTShare })
	for _, p := range ps {
		if p.RTShare < 0 || p.RTShare > 1 || p.MaxLoad <= 0 || p.MaxLoad > 1 {
			return nil, fmt.Errorf("admission: invalid envelope point %+v", p)
		}
	}
	return &Envelope{points: ps}, nil
}

// DefaultEnvelope encodes the paper's single-switch findings: jitter-free
// delivery up to 70–80% of physical channel bandwidth, with more headroom
// when the real-time share is small.
func DefaultEnvelope() *Envelope {
	env, err := NewEnvelope([]EnvelopePoint{
		{RTShare: 0.2, MaxLoad: 0.85},
		{RTShare: 0.5, MaxLoad: 0.80},
		{RTShare: 0.8, MaxLoad: 0.75},
		{RTShare: 1.0, MaxLoad: 0.70},
	})
	if err != nil {
		panic(err)
	}
	return env
}

// MaxLoad returns the interpolated maximum safe load at the given real-time
// share, clamped to the envelope's end points.
func (e *Envelope) MaxLoad(rtShare float64) float64 {
	ps := e.points
	if rtShare <= ps[0].RTShare {
		return ps[0].MaxLoad
	}
	last := ps[len(ps)-1]
	if rtShare >= last.RTShare {
		return last.MaxLoad
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].RTShare >= rtShare })
	a, b := ps[i-1], ps[i]
	frac := (rtShare - a.RTShare) / (b.RTShare - a.RTShare)
	return a.MaxLoad + frac*(b.MaxLoad-a.MaxLoad)
}

// Points returns a copy of the envelope's calibration points in ascending
// RTShare order — the raw material for rendering, goldens, and side-by-side
// envelope comparisons.
func (e *Envelope) Points() []EnvelopePoint {
	return append([]EnvelopePoint(nil), e.points...)
}

// ProbeFunc measures the delivery-interval standard deviation (paper-scale
// milliseconds) of a fabric at the given load and real-time share. The
// experiment harness provides one backed by the simulator; internal/calculus
// provides a closed-form one backed by network-calculus bounds.
type ProbeFunc func(load, rtShare float64) (sdMs float64, err error)

// InvalidParamError reports a Calibrate parameter outside its domain.
type InvalidParamError struct {
	Param string
	Value float64
}

func (e *InvalidParamError) Error() string {
	return fmt.Sprintf("admission: %s must be positive, got %g", e.Param, e.Value)
}

// MonotonicityError reports a calibrated envelope whose MaxLoad increases
// with RTShare — physically impossible for a fabric where real-time traffic
// is the harder class to serve, so it flags a broken or noisy probe. A and B
// are the offending pair of points (A.RTShare < B.RTShare but
// A.MaxLoad < B.MaxLoad).
type MonotonicityError struct {
	A, B EnvelopePoint
}

func (e *MonotonicityError) Error() string {
	return fmt.Sprintf(
		"admission: calibrated envelope is not monotone: MaxLoad %.4f at RTShare %.2f rises to %.4f at RTShare %.2f",
		e.A.MaxLoad, e.A.RTShare, e.B.MaxLoad, e.B.RTShare)
}

// Calibrate builds an envelope empirically: for each real-time share it
// binary-searches the highest load whose σd stays below jitterBudgetMs.
// steps controls the bisection depth (5 gives ~0.01 load resolution) and
// must be positive, as must jitterBudgetMs; violations return
// *InvalidParamError. The calibrated MaxLoad must be non-increasing in
// RTShare (more real-time traffic never raises the safe load); a violating
// pair of points returns *MonotonicityError naming them.
func Calibrate(probe ProbeFunc, shares []float64, jitterBudgetMs float64, steps int) (*Envelope, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("admission: no shares to calibrate")
	}
	if steps <= 0 {
		return nil, &InvalidParamError{Param: "steps", Value: float64(steps)}
	}
	if jitterBudgetMs <= 0 {
		return nil, &InvalidParamError{Param: "jitterBudgetMs", Value: jitterBudgetMs}
	}
	var points []EnvelopePoint
	for _, share := range shares {
		lo, hi := 0.4, 1.0
		for s := 0; s < steps; s++ {
			mid := (lo + hi) / 2
			sd, err := probe(mid, share)
			if err != nil {
				return nil, fmt.Errorf("admission: probe(%.2f, %.2f): %w", mid, share, err)
			}
			if sd <= jitterBudgetMs {
				lo = mid
			} else {
				hi = mid
			}
		}
		points = append(points, EnvelopePoint{RTShare: share, MaxLoad: lo})
	}
	env, err := NewEnvelope(points)
	if err != nil {
		return nil, err
	}
	// Bisection quantizes loads to (hi−lo)/2^steps; treat sub-quantum
	// wobble as flat rather than rising.
	tol := 0.6 / float64(int64(1)<<uint(min(steps, 62)))
	for i := 1; i < len(env.points); i++ {
		a, b := env.points[i-1], env.points[i]
		if b.MaxLoad > a.MaxLoad+tol/2 {
			return nil, &MonotonicityError{A: a, B: b}
		}
	}
	return env, nil
}

// Controller admits streams against an envelope. It tracks the accepted
// real-time bandwidth and the standing best-effort load on the most loaded
// link (a conservative single-link model, matching the paper's per-link
// load accounting).
type Controller struct {
	env *Envelope
	// LinkBps is the physical channel bandwidth; StreamBps the per-stream
	// bandwidth (4 Mb/s MPEG-2 in the paper).
	linkBps   float64
	streamBps float64

	accepted int
	beLoad   float64

	// scale is the fraction of nominal capacity currently available
	// (1 when the fabric is healthy; SetCapacityScale lowers it on faults).
	scale float64
	// beShed is the fraction of the standing best-effort load currently
	// shed to keep the envelope satisfied under degraded capacity.
	beShed float64
	// streams holds identity records for streams admitted via AdmitStream,
	// in admission order, so degradation can pick revocation victims.
	streams []streamRecord
	seq     int

	// Admitted and Rejected count decisions; Revoked counts streams
	// forcibly released by capacity degradation.
	Admitted, Rejected, Revoked int
}

// streamRecord identifies one admitted stream for revocation ordering.
type streamRecord struct {
	id       int
	priority int
	seq      int // admission order; higher = newer
}

// NewController builds a controller for one link.
func NewController(env *Envelope, linkBps, streamBps float64) (*Controller, error) {
	if env == nil || linkBps <= 0 || streamBps <= 0 || streamBps > linkBps {
		return nil, fmt.Errorf("admission: invalid controller parameters")
	}
	return &Controller{env: env, linkBps: linkBps, streamBps: streamBps, scale: 1}, nil
}

// SetBestEffortLoad records the standing best-effort load (fraction of link
// bandwidth). It panics if outside [0, 1].
func (c *Controller) SetBestEffortLoad(l float64) {
	if l < 0 || l > 1 {
		panic("admission: best-effort load out of range")
	}
	c.beLoad = l
}

// Accepted returns the number of currently admitted streams.
func (c *Controller) Accepted() int { return c.accepted }

// Load returns the projected total load on the degraded link with n admitted
// streams: fixed bandwidths become larger fractions as capacity shrinks.
func (c *Controller) load(n int) (total, rtShare float64) {
	rt := float64(n) * c.streamBps / (c.linkBps * c.scale)
	total = rt + (c.beLoad-c.beShed)/c.scale
	if total <= 0 {
		return 0, 0
	}
	return total, rt / total
}

// fits reports whether n admitted streams (plus the standing best-effort
// load) stay inside the envelope at the current capacity.
func (c *Controller) fits(n int) bool {
	total, share := c.load(n)
	return total <= c.env.MaxLoad(share)
}

// RequestStream decides whether one more stream fits inside the envelope.
// Admitted streams count against the link until Release.
func (c *Controller) RequestStream() bool {
	total, share := c.load(c.accepted + 1)
	if total > c.env.MaxLoad(share) {
		c.Rejected++
		return false
	}
	c.accepted++
	c.Admitted++
	return true
}

// Release returns one admitted stream's bandwidth. It panics if no stream
// is admitted.
func (c *Controller) Release() {
	if c.accepted == 0 {
		panic("admission: release without an admitted stream")
	}
	c.accepted--
}

// Capacity returns the maximum number of streams admissible from the
// current state (without mutating it).
func (c *Controller) Capacity() int {
	n := c.accepted
	for {
		total, share := c.load(n + 1)
		if total > c.env.MaxLoad(share) {
			return n
		}
		n++
	}
}

// AdmitStream is RequestStream with an identity: the admitted stream is
// recorded (with its priority) so capacity degradation can revoke it later.
// Higher priority survives longer; ties are broken newest-first.
func (c *Controller) AdmitStream(id, priority int) bool {
	if !c.fits(c.accepted + 1) {
		c.Rejected++
		return false
	}
	c.accepted++
	c.Admitted++
	c.seq++
	c.streams = append(c.streams, streamRecord{id: id, priority: priority, seq: c.seq})
	return true
}

// ReleaseStream returns an AdmitStream-admitted stream's bandwidth. It
// panics on an unknown id.
func (c *Controller) ReleaseStream(id int) {
	for i := range c.streams {
		if c.streams[i].id == id {
			c.streams = append(c.streams[:i], c.streams[i+1:]...)
			c.accepted--
			return
		}
	}
	panic("admission: release of unknown stream")
}

// CapacityScale returns the current effective-capacity fraction.
func (c *Controller) CapacityScale() float64 { return c.scale }

// BestEffortShed returns the fraction of link bandwidth of standing
// best-effort load currently shed by degradation.
func (c *Controller) BestEffortShed() float64 { return c.beShed }

// SetCapacityScale records that only the given fraction of nominal link
// capacity is available (e.g. live transit links / total transit links) and
// restores the envelope by graceful degradation: standing best-effort load
// is shed first (it is elastic), and only if that is not enough are admitted
// streams revoked — lowest priority first, newest first within a priority.
// It returns the IDs of the revoked streams, in revocation order. Raising
// the scale un-sheds best-effort load automatically; revoked streams stay
// revoked until the caller re-admits them against the recovered Capacity.
func (c *Controller) SetCapacityScale(scale float64) (revoked []int) {
	if scale <= 0 || scale > 1 {
		panic("admission: capacity scale outside (0, 1]")
	}
	c.scale = scale
	c.beShed = 0
	if c.fits(c.accepted) {
		return nil
	}
	if c.beLoad > 0 {
		// Shed the least best-effort load that restores the envelope
		// (bisection: fits is monotone in beShed).
		lo, hi := 0.0, c.beLoad
		c.beShed = hi
		if c.fits(c.accepted) {
			for i := 0; i < 40; i++ {
				mid := (lo + hi) / 2
				c.beShed = mid
				if c.fits(c.accepted) {
					hi = mid
				} else {
					lo = mid
				}
			}
			c.beShed = hi
			return nil
		}
		// Even zero best-effort is not enough; keep it all shed.
	}
	for !c.fits(c.accepted) && len(c.streams) > 0 {
		victim := 0
		for i := 1; i < len(c.streams); i++ {
			v, w := c.streams[i], c.streams[victim]
			if v.priority < w.priority || (v.priority == w.priority && v.seq > w.seq) {
				victim = i
			}
		}
		revoked = append(revoked, c.streams[victim].id)
		c.streams = append(c.streams[:victim], c.streams[victim+1:]...)
		c.accepted--
		c.Revoked++
	}
	// Revocation is quantized, so it may overshoot: un-shed whatever
	// best-effort load fits again.
	if c.beLoad > 0 && c.fits(c.accepted) {
		lo, hi := 0.0, c.beShed
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			c.beShed = mid
			if c.fits(c.accepted) {
				hi = mid
			} else {
				lo = mid
			}
		}
		c.beShed = hi
	}
	return revoked
}
