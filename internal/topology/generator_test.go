package topology

import (
	"fmt"
	"testing"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"single-switch", "fat-mesh-2x2", "tetrahedral",
		"mesh4x4", "mesh2x3x4", "torus8x8", "torus4x4c2",
		"mesh4x4l2", "torus16x16l2", "torus5x3c1l3",
		"clos8x4", "clos8x4x16", "clos4x2l2",
	}
	for _, name := range cases {
		s, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", name, err)
		}
		if got := s.String(); got != name {
			t.Fatalf("ParseSpec(%q).String() = %q", name, got)
		}
	}
	// Canonicalization: an explicit default suffix renders without it.
	s, err := ParseSpec("torus8x8c4l1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "torus8x8" {
		t.Fatalf("torus8x8c4l1 canonicalizes to %q", got)
	}
	if s, err := ParseSpec("clos8x4x4"); err != nil || s.String() != "clos8x4" {
		t.Fatalf("clos8x4x4 → %v, %v", s, err)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, name := range []string{
		"", "ring8", "mesh", "meshx", "mesh4x", "mesh4y4", "mesh1x4",
		"torus4x4c0", "torus4x4l0", "clos8", "clos8x4x2x1", "clos8x4c2",
		"clos1x4", "mesh4x4cx",
	} {
		if _, err := ParseSpec(name); err == nil {
			t.Errorf("ParseSpec(%q) accepted", name)
		}
	}
}

// specUnderTest is the shared property-test grid: every generated kind,
// multiple dimensionality, odd radixes, concentration and lane variants.
func specsUnderTest(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, name := range []string{
		"mesh4x4", "mesh2x3x4", "mesh3x3c2l2",
		"torus4x4", "torus5x3", "torus2x2x2c1", "torus4x4c2l2",
		"clos4x2", "clos4x2x8", "clos3x3l2",
	} {
		s, err := ParseSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// linkEnds maps each directed transit-port occupancy (router, port) to the
// (router, port) at the other end of the physical link, from the Net's
// TransitLinks inventory.
type portID struct{ router, port int }

func linkEnds(t *testing.T, net *Net) map[portID]portID {
	t.Helper()
	ends := make(map[portID]portID, 2*len(net.TransitLinks()))
	for _, l := range net.TransitLinks() {
		a, b := portID{l.A, l.APort}, portID{l.B, l.BPort}
		if _, dup := ends[a]; dup {
			t.Fatalf("transit inventory lists port %v twice", a)
		}
		if _, dup := ends[b]; dup {
			t.Fatalf("transit inventory lists port %v twice", b)
		}
		ends[a], ends[b] = b, a
	}
	return ends
}

func buildSpec(t *testing.T, spec Spec) *Net {
	t.Helper()
	cfg := base()
	cfg.Ports = 0 // Build sets the port plan
	net, err := Build(sim.NewEngine(), spec, cfg)
	if err != nil {
		t.Fatalf("Build(%s): %v", spec, err)
	}
	return net
}

func TestGeneratedShapeAndAnalyticLinkCount(t *testing.T) {
	for _, spec := range specsUnderTest(t) {
		net := buildSpec(t, spec)
		if got, want := len(net.Routers), spec.Routers(); got != want {
			t.Fatalf("%s: %d routers, want %d", spec, got, want)
		}
		if got, want := net.Endpoints(), spec.Endpoints(0); got != want {
			t.Fatalf("%s: %d endpoints, want %d", spec, got, want)
		}
		if got, want := len(net.TransitLinks()), spec.AnalyticTransitLinks(); got != want {
			t.Fatalf("%s: transit inventory has %d links, analytic count %d", spec, got, want)
		}
		// Every inventoried port must be a transit port on a live router,
		// and the two directions must be consistent (linkEnds also rejects
		// double-booked ports).
		ends := linkEnds(t, net)
		for a, b := range ends {
			if ends[b] != a {
				t.Fatalf("%s: link %v↔%v not symmetric", spec, a, b)
			}
		}
	}
}

// followRoute walks a message from srcEp to dstEp by repeatedly invoking the
// builder's routing function and crossing the first candidate link, checking
// at every hop that all candidates are lanes of one physical channel (or the
// single delivery port). It returns the router-to-router hop count.
func followRoute(t *testing.T, net *Net, spec Spec, ends map[portID]portID, srcEp, dstEp int) int {
	t.Helper()
	msg := &flit.Message{Src: srcEp, Dst: dstEp}
	at, hops := routerOfEndpoint(net, spec, srcEp), 0
	dstRouter := routerOfEndpoint(net, spec, dstEp)
	for {
		cfg := net.Routers[at].Config()
		ports := cfg.Route(at, msg, nil)
		if len(ports) == 0 {
			t.Fatalf("%s: no route at router %d for %d→%d", spec, at, srcEp, dstEp)
		}
		if at == dstRouter {
			want := localPortOfEndpoint(net, spec, dstEp)
			if len(ports) != 1 || ports[0] != want {
				t.Fatalf("%s: delivery at router %d for ep %d routes %v, want [%d]",
					spec, at, dstEp, ports, want)
			}
			return hops
		}
		// All candidates must be lanes of channels that exist in the
		// transit inventory.
		next, ok := ends[portID{at, ports[0]}]
		if !ok {
			t.Fatalf("%s: router %d offers port %d with no link (%d→%d)",
				spec, at, ports[0], srcEp, dstEp)
		}
		for _, p := range ports[1:] {
			if _, ok := ends[portID{at, p}]; !ok {
				t.Fatalf("%s: router %d candidate port %d has no link", spec, at, p)
			}
		}
		at = next.router
		hops++
		if hops > 64 {
			t.Fatalf("%s: routing loop %d→%d", spec, srcEp, dstEp)
		}
	}
}

func routerOfEndpoint(net *Net, spec Spec, ep int) int {
	if spec.Kind == KindClos {
		return ep / spec.Down
	}
	return ep / spec.Concentration
}

func localPortOfEndpoint(net *Net, spec Spec, ep int) int {
	if spec.Kind == KindClos {
		return ep % spec.Down
	}
	return ep % spec.Concentration
}

// shortestHops is the analytic minimal router-to-router distance.
func shortestHops(spec Spec, srcR, dstR int) int {
	if spec.Kind == KindClos {
		if srcR == dstR {
			return 0
		}
		return 2 // leaf → spine → leaf
	}
	g := newGrid(spec)
	total := 0
	for d, k := range spec.Dims {
		c, tc := g.coord(srcR, d), g.coord(dstR, d)
		dist := c - tc
		if dist < 0 {
			dist = -dist
		}
		if g.torus && k-dist < dist {
			dist = k - dist
		}
		total += dist
	}
	return total
}

func TestGeneratedRoutesConnectAndAreMinimal(t *testing.T) {
	for _, spec := range specsUnderTest(t) {
		net := buildSpec(t, spec)
		ends := linkEnds(t, net)
		eps := net.Endpoints()
		for src := 0; src < eps; src++ {
			for dst := 0; dst < eps; dst++ {
				hops := followRoute(t, net, spec, ends, src, dst)
				want := shortestHops(spec,
					routerOfEndpoint(net, spec, src), routerOfEndpoint(net, spec, dst))
				if hops != want {
					t.Fatalf("%s: route %d→%d takes %d hops, shortest is %d",
						spec, src, dst, hops, want)
				}
			}
		}
	}
}

// chanNode is a directed-channel node of the channel dependency graph: the
// physical channel leaving `router` through `port`, restricted to the VC
// half `half` (0 = pre-dateline / only half, 1 = post-dateline).
type chanNode struct{ router, port, half int }

func hasCycle(adj map[chanNode][]chanNode) (bool, []chanNode) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[chanNode]int, len(adj))
	var stack []chanNode
	var visit func(n chanNode) bool
	visit = func(n chanNode) bool {
		color[n] = grey
		stack = append(stack, n)
		for _, m := range adj[n] {
			switch color[m] {
			case grey:
				stack = append(stack, m)
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for n := range adj {
		if color[n] == white && visit(n) {
			return true, stack
		}
	}
	return false, nil
}

// TestGeneratedRoutingDeadlockFree builds the channel dependency graph each
// spec's routing induces — every (src, dst) walk contributes an edge from
// each channel to its successor, with torus channels split into dateline
// halves exactly as the builder's VCSel partitions the VCs — and asserts it
// is acyclic. An acyclic CDG is the classical sufficient condition for
// wormhole deadlock freedom (Dally–Seitz), which is what the dateline
// scheme buys on the wraparound rings.
func TestGeneratedRoutingDeadlockFree(t *testing.T) {
	for _, spec := range specsUnderTest(t) {
		net := buildSpec(t, spec)
		ends := linkEnds(t, net)
		cfgOf := func(r int) core.Config { return net.Routers[r].Config() }
		adj := map[chanNode][]chanNode{}
		addEdge := func(a, b chanNode) {
			adj[a] = append(adj[a], b)
		}
		eps := net.Endpoints()
		for src := 0; src < eps; src++ {
			for dst := 0; dst < eps; dst++ {
				msg := &flit.Message{Src: src, Dst: dst}
				at := routerOfEndpoint(net, spec, src)
				dstR := routerOfEndpoint(net, spec, dst)
				prev := chanNode{router: -1}
				for at != dstR {
					cfg := cfgOf(at)
					ports := cfg.Route(at, msg, nil)
					// Each candidate channel the router may claim becomes a
					// CDG successor of the channel the worm occupies.
					var chosen chanNode
					for i, p := range ports {
						half := 0
						if cfg.VCSel != nil {
							lo, _ := cfg.VCSel(at, p, msg, 0, 2)
							half = lo // [0,1) pre-dateline, [1,2) post
						}
						n := chanNode{at, p, half}
						if i == 0 {
							chosen = n
						}
						if prev.router >= 0 {
							addEdge(prev, n)
						}
					}
					prev = chosen
					at = ends[portID{at, chosen.port}].router
				}
			}
		}
		if cyclic, path := hasCycle(adj); cyclic {
			t.Fatalf("%s: channel dependency cycle: %v", spec, path)
		}
	}
}

// TestTorusWithoutDatelineWouldCycle is the negative control for the CDG
// test: collapsing the dateline halves (as routing without VC dating would)
// must produce a cyclic dependency graph on every torus ring, proving the
// acyclicity above is the dateline's doing rather than an artifact of the
// test's construction.
func TestTorusWithoutDatelineWouldCycle(t *testing.T) {
	spec, err := ParseSpec("torus4x4")
	if err != nil {
		t.Fatal(err)
	}
	net := buildSpec(t, spec)
	ends := linkEnds(t, net)
	adj := map[chanNode][]chanNode{}
	eps := net.Endpoints()
	for src := 0; src < eps; src++ {
		for dst := 0; dst < eps; dst++ {
			msg := &flit.Message{Src: src, Dst: dst}
			at := routerOfEndpoint(net, spec, src)
			dstR := routerOfEndpoint(net, spec, dst)
			prev := chanNode{router: -1}
			for at != dstR {
				ports := net.Routers[at].Config().Route(at, msg, nil)
				n := chanNode{at, ports[0], 0} // dateline halves collapsed
				if prev.router >= 0 {
					adj[prev] = append(adj[prev], n)
				}
				prev = n
				at = ends[portID{at, ports[0]}].router
			}
		}
	}
	if cyclic, _ := hasCycle(adj); !cyclic {
		t.Fatal("torus CDG with collapsed VC classes is acyclic; negative control broken")
	}
}

func TestBuildRejectsInvalidSpecs(t *testing.T) {
	eng := sim.NewEngine()
	// Torus with a single-VC class partition cannot host dateline classes.
	spec, err := ParseSpec("torus4x4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := base()
	cfg.VCs, cfg.RTVCs = 3, 1
	if _, err := Build(eng, spec, cfg); err == nil {
		t.Fatal("torus with 1-VC real-time partition accepted")
	}
	// The same config is fine for a mesh (no dateline needed).
	mesh, err := ParseSpec("mesh4x4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(eng, mesh, cfg); err != nil {
		t.Fatalf("mesh rejects 1-VC partition: %v", err)
	}
	if err := (Spec{Kind: KindMesh, Dims: []int{1, 4}}).Validate(); err == nil {
		t.Fatal("radix-1 dimension accepted")
	}
	if err := (Spec{Kind: KindClos, Leaves: 1, Spines: 2}).Validate(); err == nil {
		t.Fatal("single-leaf clos accepted")
	}
}

func TestBuildDelegatesLegacyKinds(t *testing.T) {
	for _, tc := range []struct {
		name              string
		routers, endpoint int
	}{
		{"single-switch", 1, 8},
		{"fat-mesh-2x2", 4, 16},
		{"tetrahedral", 4, 16},
	} {
		spec, err := ParseSpec(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		net, err := Build(sim.NewEngine(), spec, base())
		if err != nil {
			t.Fatalf("Build(%s): %v", tc.name, err)
		}
		if len(net.Routers) != tc.routers || net.Endpoints() != tc.endpoint {
			t.Fatalf("%s: %d routers / %d endpoints, want %d / %d",
				tc.name, len(net.Routers), net.Endpoints(), tc.routers, tc.endpoint)
		}
	}
}

func TestGeneratedEndToEnd(t *testing.T) {
	for _, name := range []string{"mesh4x4", "torus4x4", "clos4x2", "mesh2x2l2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := ParseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.NewEngine()
			net, err := Build(eng, spec, base())
			if err != nil {
				t.Fatal(err)
			}
			// Corner-to-corner (maximum distance) message must arrive intact.
			src, dst := 0, net.Endpoints()-1
			delivered := -1
			net.Sinks[dst].OnMessage = func(m *flit.Message, at sim.Time) {
				delivered = m.Dst
			}
			m := &flit.Message{
				ID: 1, StreamID: 1, Class: flit.VBR, MsgsInFrame: 1,
				Flits: 20, Vtick: 100, Src: src, Dst: dst, DstVC: 0,
			}
			net.NIs[src].Inject(0, m)
			eng.Drain()
			if delivered != dst {
				t.Fatalf("message not delivered to endpoint %d", dst)
			}
			if err := net.Fabric.CheckDrained(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGeneratedFabricSharesArena asserts the generated routers carve from
// one arena rather than allocating privately: every router's VC tables must
// live inside the shared slabs.
func TestGeneratedFabricSharesArena(t *testing.T) {
	spec, err := ParseSpec("torus4x4")
	if err != nil {
		t.Fatal(err)
	}
	net := buildSpec(t, spec)
	for i, r := range net.Routers {
		if !r.UsesArena() {
			t.Fatalf("router %d allocated outside the shared arena", i)
		}
	}
}

func ExampleParseSpec() {
	s, _ := ParseSpec("torus8x8l2")
	fmt.Println(s.Kind, s.Dims, s.Lanes, s.Routers(), s.AnalyticTransitLinks())
	// Output: torus [8 8] 2 64 256
}
