// Package topology builds the paper's network configurations: the 8-port
// single switch most experiments use, and the 4-switch (2×2) fat-mesh of
// §3.4/§5.7, where each pair of adjacent switches is joined by two parallel
// physical links ("fat" links) and messages pick the less-loaded one.
package topology

import (
	"fmt"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/sim"
)

// Net is a wired fabric plus its endpoint handles, indexed by endpoint id.
type Net struct {
	Fabric  *network.Fabric
	Routers []*core.Router
	NIs     []*network.NI
	Sinks   []*network.Sink

	transit []TransitLink
}

// TransitLink is one bidirectional switch-to-switch channel: switch A's
// port APort wired to switch B's port BPort (and back). The fault injector
// uses this inventory to pick fault targets, and experiments use its length
// to convert dead links into a capacity fraction.
type TransitLink struct {
	A, B         int // switch indices
	APort, BPort int
}

// TransitLinks returns the switch-to-switch link inventory (empty for a
// single switch).
func (n *Net) TransitLinks() []TransitLink { return n.transit }

// LiveTransitLinks counts transit links whose both directions are up.
func (n *Net) LiveTransitLinks() int {
	live := 0
	for _, l := range n.transit {
		if n.Routers[l.A].LinkUp(l.APort) && n.Routers[l.B].LinkUp(l.BPort) {
			live++
		}
	}
	return live
}

// Endpoints returns the number of endpoint nodes.
func (n *Net) Endpoints() int { return len(n.NIs) }

// SingleSwitch builds one router with base.Ports endpoint nodes, node i on
// port i — the configuration of the paper's §5.1–§5.6 experiments.
// base.ID and base.Route are overwritten.
func SingleSwitch(engine *sim.Engine, base core.Config) (*Net, error) {
	base.ID = 0
	base.Route = func(_ int, msg *flit.Message, buf []int) []int {
		return append(buf, msg.Dst)
	}
	r, err := core.New(base)
	if err != nil {
		return nil, err
	}
	f := network.NewFabric(engine, base.Period)
	f.AddRouter(r)
	net := &Net{Fabric: f, Routers: []*core.Router{r}}
	for p := 0; p < base.Ports; p++ {
		ni, sink := f.AttachEndpoint(r, p, p)
		net.NIs = append(net.NIs, ni)
		net.Sinks = append(net.Sinks, sink)
	}
	return net, nil
}

// Tetrahedral port plan (Horst's TNet topology, §3.4): four switches fully
// connected, one hop between any pair.
//
//	ports 0–3: endpoints (node = 4*switch + port)
//	ports 4–6: direct links to the other three switches, in ascending
//	           switch-id order
//	port  7:   unused
const (
	tetraEndpoints = 4
	tetraSwitches  = 4
	tetraNodes     = tetraSwitches * tetraEndpoints
)

// tetraPort returns the port on switch s that reaches switch t (s != t).
func tetraPort(s, t int) int {
	rank := 0
	for o := 0; o < tetraSwitches; o++ {
		if o == s {
			continue
		}
		if o == t {
			return tetraEndpoints + rank
		}
		rank++
	}
	panic("topology: tetraPort with s == t")
}

// tetraRoute delivers locally or crosses the single direct link.
func tetraRoute(routerID int, msg *flit.Message, buf []int) []int {
	dstSw := msg.Dst / tetraEndpoints
	if dstSw == routerID {
		return append(buf, msg.Dst%tetraEndpoints)
	}
	return append(buf, tetraPort(routerID, dstSw))
}

// Tetrahedral builds the fully connected 4-switch cluster with 16 endpoints
// (the tetrahedral interconnect of Horst's TNet, which the paper's §3.4
// lists alongside fat meshes). Every switch pair is one hop apart, so
// deterministic routing is trivially deadlock-free. base.Ports must be 8
// (or zero); base.ID and base.Route are overwritten.
func Tetrahedral(engine *sim.Engine, base core.Config) (*Net, error) {
	if base.Ports == 0 {
		base.Ports = 8
	}
	if base.Ports != 8 {
		return nil, fmt.Errorf("topology: tetrahedral needs 8-port routers, got %d", base.Ports)
	}
	base.Route = tetraRoute
	f := network.NewFabric(engine, base.Period)
	net := &Net{Fabric: f}
	routers := make([]*core.Router, tetraSwitches)
	for s := 0; s < tetraSwitches; s++ {
		cfg := base
		cfg.ID = s
		r, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		routers[s] = r
		f.AddRouter(r)
	}
	net.Routers = routers
	for ep := 0; ep < tetraNodes; ep++ {
		ni, sink := f.AttachEndpoint(routers[ep/tetraEndpoints], ep%tetraEndpoints, ep)
		net.NIs = append(net.NIs, ni)
		net.Sinks = append(net.Sinks, sink)
	}
	for s := 0; s < tetraSwitches; s++ {
		for t := s + 1; t < tetraSwitches; t++ {
			f.Link(routers[s], tetraPort(s, t), routers[t], tetraPort(t, s))
			f.Link(routers[t], tetraPort(t, s), routers[s], tetraPort(s, t))
			net.transit = append(net.transit, TransitLink{
				A: s, B: t, APort: tetraPort(s, t), BPort: tetraPort(t, s),
			})
		}
	}
	// Port 7 of every switch is unused; terminate it so a buggy route
	// there fails loudly rather than dereferencing a nil consumer.
	for s := 0; s < tetraSwitches; s++ {
		routers[s].Connect(7, network.DeadEnd{}, true)
	}
	return net, nil
}

// Fat-mesh port plan for each 8-port switch:
//
//	ports 0–3: endpoints (node = 4*switch + port)
//	ports 4–5: two parallel links to the X neighbour
//	ports 6–7: two parallel links to the Y neighbour
const (
	fmEndpoints  = 4
	fmXPortA     = 4
	fmXPortB     = 5
	fmYPortA     = 6
	fmYPortB     = 7
	fmSwitches   = 4
	fmTotalNodes = fmSwitches * fmEndpoints
)

// FatMeshEndpointLocation maps a fat-mesh endpoint id to its switch and port.
func FatMeshEndpointLocation(ep int) (sw, port int) {
	return ep / fmEndpoints, ep % fmEndpoints
}

// FatMeshSwitchPath returns the switch sequence a fault-free message
// traverses from srcSw to dstSw under the deterministic XY routing of
// fatMeshRoute, source and destination switches included. The analytic
// model (internal/calculus) composes per-hop service curves along exactly
// this path; each interior step crosses one fat (two-parallel-link) channel.
func FatMeshSwitchPath(srcSw, dstSw int) []int {
	path := []int{srcSw}
	at := srcSw
	if dstSw%2 != at%2 { // correct X first (flip the x coordinate)
		at ^= 1
		path = append(path, at)
	}
	if dstSw != at { // then Y
		at ^= 2
		path = append(path, at)
	}
	return path
}

// fatMeshRoute is deterministic XY routing over the 2×2 mesh. Switch s sits
// at (s%2, s/2). A message not yet at its destination switch first corrects
// X (via the two parallel X ports), then Y. Both parallel ports are returned
// so the router can pick the less-loaded (§3.4).
func fatMeshRoute(routerID int, msg *flit.Message, buf []int) []int {
	dstSw, dstPort := FatMeshEndpointLocation(msg.Dst)
	if dstSw == routerID {
		return append(buf, dstPort)
	}
	if dstSw%2 != routerID%2 {
		return append(buf, fmXPortA, fmXPortB)
	}
	return append(buf, fmYPortA, fmYPortB)
}

// fmPorts returns the two parallel ports on switch s that reach switch t,
// or nil when the switches are not adjacent (the 2×2 diagonal).
func fmPorts(s, t int) []int {
	switch {
	case t == s^1: // X neighbour (flip the x coordinate)
		return []int{fmXPortA, fmXPortB}
	case t == s^2: // Y neighbour (flip the y coordinate)
		return []int{fmYPortA, fmYPortB}
	default:
		return nil
	}
}

// fatMeshFaultRoute wraps the static XY route with global link-health
// awareness. While every transit link is up it returns exactly the static
// candidate set (bit-identical fault-free behaviour). When links are dead it
// BFSes the 2×2 switch graph over live links and steers toward the next hop
// of a shortest live path — a *global* detour, because a local fallback
// ("X is dead, try Y") can bounce a message between two switches forever.
// The detours mix X-then-Y with Y-then-X segments, so routing under faults
// is no longer provably deadlock-free: that is exactly the regime the
// network-layer progress watchdog exists for.
func fatMeshFaultRoute(routers []*core.Router) core.RoutingFunc {
	degraded := func() bool {
		for _, r := range routers {
			for _, p := range [...]int{fmXPortA, fmXPortB, fmYPortA, fmYPortB} {
				if !r.LinkUp(p) {
					return true
				}
			}
		}
		return false
	}
	// alive reports whether any parallel link from s to t is up (directed:
	// only s's output ports matter for s's routing decision).
	alive := func(s, t int) bool {
		for _, p := range fmPorts(s, t) {
			if routers[s].LinkUp(p) {
				return true
			}
		}
		return false
	}
	return func(routerID int, msg *flit.Message, buf []int) []int {
		dstSw, dstPort := FatMeshEndpointLocation(msg.Dst)
		if dstSw == routerID {
			return append(buf, dstPort)
		}
		if !degraded() {
			return fatMeshRoute(routerID, msg, buf)
		}
		// BFS from dstSw backwards over live directed edges, so dist[s] is
		// the live-hop distance from s to the destination switch.
		const inf = fmSwitches + 1
		var dist [fmSwitches]int
		for i := range dist {
			dist[i] = inf
		}
		dist[dstSw] = 0
		queue := [fmSwitches]int{dstSw}
		head, tail := 0, 1
		for head < tail {
			t := queue[head]
			head++
			for s := 0; s < fmSwitches; s++ {
				if dist[s] == inf && alive(s, t) {
					dist[s] = dist[t] + 1
					queue[tail] = s
					tail++
				}
			}
		}
		if dist[routerID] == inf {
			return nil // unreachable: the router kills the message
		}
		// Steer to the neighbour on a shortest live path (ascending switch
		// id breaks ties deterministically), returning its live ports so
		// the router still load-balances across a surviving parallel pair.
		for t := 0; t < fmSwitches; t++ {
			if fmPorts(routerID, t) == nil || dist[t] != dist[routerID]-1 || !alive(routerID, t) {
				continue
			}
			for _, p := range fmPorts(routerID, t) {
				if routers[routerID].LinkUp(p) {
					buf = append(buf, p)
				}
			}
			return buf
		}
		return nil
	}
}

// FatMesh2x2 builds the paper's 4-switch fat-mesh from 8-port routers with
// 16 endpoints. base.Ports must be 8 (or zero, in which case it is set);
// base.ID and base.Route are overwritten.
func FatMesh2x2(engine *sim.Engine, base core.Config) (*Net, error) {
	if base.Ports == 0 {
		base.Ports = 8
	}
	if base.Ports != 8 {
		return nil, fmt.Errorf("topology: fat-mesh needs 8-port routers, got %d", base.Ports)
	}
	f := network.NewFabric(engine, base.Period)
	net := &Net{Fabric: f}
	routers := make([]*core.Router, fmSwitches)
	// The routing closure reads live link health off the routers it is about
	// to be installed on; the slice is filled before any routing happens.
	base.Route = fatMeshFaultRoute(routers)
	for s := 0; s < fmSwitches; s++ {
		cfg := base
		cfg.ID = s
		r, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		routers[s] = r
		f.AddRouter(r)
	}
	net.Routers = routers
	for ep := 0; ep < fmTotalNodes; ep++ {
		sw, port := FatMeshEndpointLocation(ep)
		ni, sink := f.AttachEndpoint(routers[sw], port, ep)
		net.NIs = append(net.NIs, ni)
		net.Sinks = append(net.Sinks, sink)
	}
	// Wire the fat links, both directions. X pairs: (0,1) and (2,3);
	// Y pairs: (0,2) and (1,3).
	pairs := []struct {
		a, b   int
		pa, pb int
	}{
		{0, 1, fmXPortA, fmXPortA}, {0, 1, fmXPortB, fmXPortB},
		{2, 3, fmXPortA, fmXPortA}, {2, 3, fmXPortB, fmXPortB},
		{0, 2, fmYPortA, fmYPortA}, {0, 2, fmYPortB, fmYPortB},
		{1, 3, fmYPortA, fmYPortA}, {1, 3, fmYPortB, fmYPortB},
	}
	for _, pr := range pairs {
		f.Link(routers[pr.a], pr.pa, routers[pr.b], pr.pb)
		f.Link(routers[pr.b], pr.pb, routers[pr.a], pr.pa)
		net.transit = append(net.transit, TransitLink{
			A: pr.a, B: pr.b, APort: pr.pa, BPort: pr.pb,
		})
	}
	return net, nil
}
