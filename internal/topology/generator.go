package topology

// The parameterized topology generator: k-ary n-meshes and tori under
// deterministic dimension-order routing (tori deadlock-free via dateline VC
// classes), and leaf-spine Clos fabrics under up/down routing — all with
// multi-lane ("fat") physical channels generalizing the 2×2 fat-mesh's
// duplicated links, and all carving router state from one shared
// struct-of-arrays arena so a 256-router torus is a handful of large
// allocations. See DESIGN.md §18.

import (
	"fmt"
	"strconv"
	"strings"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/sim"
)

// Kind enumerates the buildable fabric shapes.
type Kind uint8

const (
	// KindSingleSwitch is the paper's 8-port switch (§5.1–§5.6).
	KindSingleSwitch Kind = iota
	// KindFatMesh2x2 is the paper's 4-switch fat-mesh (§3.4/§5.7).
	KindFatMesh2x2
	// KindTetrahedral is the fully connected 4-switch TNet cluster.
	KindTetrahedral
	// KindMesh is a k-ary n-mesh under dimension-order routing.
	KindMesh
	// KindTorus is a k-ary n-torus under dimension-order routing with
	// dateline VC classes on the wraparound rings.
	KindTorus
	// KindClos is a two-level leaf-spine Clos (folded three-stage Clos /
	// 2-level fat-tree) under deadlock-free up/down routing.
	KindClos
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSingleSwitch:
		return "single-switch"
	case KindFatMesh2x2:
		return "fat-mesh-2x2"
	case KindTetrahedral:
		return "tetrahedral"
	case KindMesh:
		return "mesh"
	case KindTorus:
		return "torus"
	case KindClos:
		return "clos"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Spec parameterizes a fabric. The zero values of the optional fields mean
// "default": Lanes 1, Concentration 4, Down = Spines.
type Spec struct {
	Kind Kind
	// Dims is the per-dimension radix of a mesh/torus: {4, 4} is a 4×4.
	Dims []int
	// Lanes is the number of parallel physical links per channel — the
	// fat-link width. Routing returns every lane and the router picks the
	// least-loaded, generalizing the fat-mesh's duplicated channels.
	Lanes int
	// Concentration is the number of endpoints per mesh/torus router.
	Concentration int
	// Leaves, Spines, Down shape a Clos: Leaves leaf switches each with
	// Down endpoints, fully connected to Spines spine switches.
	Leaves, Spines, Down int
}

const defaultConcentration = 4

// normalized returns the spec with defaults filled in.
func (s Spec) normalized() Spec {
	if s.Lanes == 0 {
		s.Lanes = 1
	}
	if s.Concentration == 0 {
		s.Concentration = defaultConcentration
	}
	if s.Kind == KindClos && s.Down == 0 {
		s.Down = s.Spines
	}
	return s
}

// String renders the spec in the canonical form ParseSpec accepts:
// "mesh4x4", "torus8x8", "clos8x4x8", with "c<n>" appended for a
// non-default concentration and "l<n>" for multi-lane links.
func (s Spec) String() string {
	s = s.normalized()
	var b strings.Builder
	switch s.Kind {
	case KindMesh, KindTorus:
		b.WriteString(s.Kind.String())
		for i, k := range s.Dims {
			if i > 0 {
				b.WriteByte('x')
			}
			fmt.Fprintf(&b, "%d", k)
		}
		if s.Concentration != defaultConcentration {
			fmt.Fprintf(&b, "c%d", s.Concentration)
		}
	case KindClos:
		fmt.Fprintf(&b, "clos%dx%d", s.Leaves, s.Spines)
		if s.Down != s.Spines {
			fmt.Fprintf(&b, "x%d", s.Down)
		}
	default:
		return s.Kind.String()
	}
	if s.Lanes != 1 {
		fmt.Fprintf(&b, "l%d", s.Lanes)
	}
	return b.String()
}

// ParseSpec parses a topology name: the legacy fixed names ("single-switch",
// "fat-mesh-2x2", "tetrahedral") or a generator spec — "mesh<k>x<k>…",
// "torus<k>x<k>…", "clos<leaves>x<spines>[x<down>]", each optionally
// suffixed with "c<n>" (mesh/torus endpoints per router, default 4) and
// "l<n>" (lanes per channel, default 1). Examples: "mesh4x4", "torus8x8c2",
// "clos8x4x8", "torus16x16l2".
func ParseSpec(name string) (Spec, error) {
	switch name {
	case "single-switch":
		return Spec{Kind: KindSingleSwitch}.normalized(), nil
	case "fat-mesh-2x2":
		return Spec{Kind: KindFatMesh2x2}.normalized(), nil
	case "tetrahedral":
		return Spec{Kind: KindTetrahedral}.normalized(), nil
	}
	var s Spec
	rest := ""
	switch {
	case strings.HasPrefix(name, "mesh"):
		s.Kind, rest = KindMesh, name[len("mesh"):]
	case strings.HasPrefix(name, "torus"):
		s.Kind, rest = KindTorus, name[len("torus"):]
	case strings.HasPrefix(name, "clos"):
		s.Kind, rest = KindClos, name[len("clos"):]
	default:
		return Spec{}, fmt.Errorf("topology: unknown topology %q", name)
	}
	if i := strings.IndexByte(rest, 'l'); i >= 0 {
		lanes, err := strconv.Atoi(rest[i+1:])
		if err != nil || lanes < 1 {
			return Spec{}, fmt.Errorf("topology: bad lane suffix in %q", name)
		}
		s.Lanes, rest = lanes, rest[:i]
	}
	if i := strings.IndexByte(rest, 'c'); i >= 0 {
		if s.Kind == KindClos {
			return Spec{}, fmt.Errorf("topology: %q: clos takes no concentration suffix", name)
		}
		conc, err := strconv.Atoi(rest[i+1:])
		if err != nil || conc < 1 {
			return Spec{}, fmt.Errorf("topology: bad concentration suffix in %q", name)
		}
		s.Concentration, rest = conc, rest[:i]
	}
	var dims []int
	for _, part := range strings.Split(rest, "x") {
		k, err := strconv.Atoi(part)
		if err != nil {
			return Spec{}, fmt.Errorf("topology: bad dimension %q in %q", part, name)
		}
		dims = append(dims, k)
	}
	if s.Kind == KindClos {
		switch len(dims) {
		case 2:
			s.Leaves, s.Spines = dims[0], dims[1]
		case 3:
			s.Leaves, s.Spines, s.Down = dims[0], dims[1], dims[2]
		default:
			return Spec{}, fmt.Errorf("topology: clos wants <leaves>x<spines>[x<down>], got %q", name)
		}
	} else {
		s.Dims = dims
	}
	s = s.normalized()
	return s, s.Validate()
}

// Validate checks the spec's shape (not the router config it will be
// combined with; Build checks the combination).
func (s Spec) Validate() error {
	s = s.normalized()
	if s.Lanes < 1 {
		return fmt.Errorf("topology: lanes = %d", s.Lanes)
	}
	switch s.Kind {
	case KindSingleSwitch, KindFatMesh2x2, KindTetrahedral:
		return nil
	case KindMesh, KindTorus:
		if len(s.Dims) == 0 {
			return fmt.Errorf("topology: %s needs at least one dimension", s.Kind)
		}
		for _, k := range s.Dims {
			if k < 2 {
				return fmt.Errorf("topology: %s dimension radix %d < 2", s.Kind, k)
			}
		}
		if s.Concentration < 1 {
			return fmt.Errorf("topology: concentration = %d", s.Concentration)
		}
		return nil
	case KindClos:
		if s.Leaves < 2 || s.Spines < 1 || s.Down < 1 {
			return fmt.Errorf("topology: clos %dx%dx%d needs ≥2 leaves, ≥1 spine, ≥1 endpoint per leaf",
				s.Leaves, s.Spines, s.Down)
		}
		return nil
	default:
		return fmt.Errorf("topology: unknown kind %d", s.Kind)
	}
}

// Routers returns the fabric's router count.
func (s Spec) Routers() int {
	s = s.normalized()
	switch s.Kind {
	case KindSingleSwitch:
		return 1
	case KindFatMesh2x2, KindTetrahedral:
		return 4
	case KindMesh, KindTorus:
		n := 1
		for _, k := range s.Dims {
			n *= k
		}
		return n
	case KindClos:
		return s.Leaves + s.Spines
	}
	return 0
}

// Endpoints returns the fabric's endpoint count. The single switch takes
// its port count from the router config, so it needs the base ports.
func (s Spec) Endpoints(basePorts int) int {
	s = s.normalized()
	switch s.Kind {
	case KindSingleSwitch:
		return basePorts
	case KindFatMesh2x2, KindTetrahedral:
		return 16
	case KindMesh, KindTorus:
		return s.Routers() * s.Concentration
	case KindClos:
		return s.Leaves * s.Down
	}
	return 0
}

// AnalyticTransitLinks is the closed-form switch-to-switch link count the
// TransitLinks inventory must match: lanes × directed-channel pairs. A mesh
// dimension of radix k contributes (k−1) neighbour pairs per row; a torus
// dimension contributes k (the wrap closes the ring); a Clos connects every
// leaf to every spine.
func (s Spec) AnalyticTransitLinks() int {
	s = s.normalized()
	switch s.Kind {
	case KindSingleSwitch:
		return 0
	case KindFatMesh2x2:
		return 8
	case KindTetrahedral:
		return 6
	case KindMesh, KindTorus:
		routers := s.Routers()
		total := 0
		for _, k := range s.Dims {
			per := routers / k * (k - 1) // neighbour pairs in this dimension
			if s.Kind == KindTorus {
				per = routers // the wrap link closes each of the routers/k rings
			}
			total += per
		}
		return total * s.Lanes
	case KindClos:
		return s.Leaves * s.Spines * s.Lanes
	}
	return 0
}

// grid is the port/coordinate geometry of a mesh or torus: router index =
// Σ coord[d]·stride[d] with dimension 0 fastest, endpoints on the first
// Concentration ports, then per dimension a plus-direction and a
// minus-direction lane group.
type grid struct {
	dims    []int
	stride  []int
	conc    int
	lanes   int
	torus   bool
	routers int
}

func newGrid(s Spec) *grid {
	g := &grid{dims: s.Dims, conc: s.Concentration, lanes: s.Lanes, torus: s.Kind == KindTorus}
	g.stride = make([]int, len(s.Dims))
	g.routers = 1
	for d, k := range s.Dims {
		g.stride[d] = g.routers
		g.routers *= k
	}
	return g
}

// ports is the router port count: concentration + 2 directions per
// dimension, lanes wide.
func (g *grid) ports() int { return g.conc + 2*len(g.dims)*g.lanes }

// coord extracts the router's coordinate in dimension d.
func (g *grid) coord(router, d int) int { return router / g.stride[d] % g.dims[d] }

// port returns the first lane's port for dimension d, direction dir
// (0 = plus, 1 = minus); lanes are consecutive.
func (g *grid) port(d, dir int) int { return g.conc + (2*d+dir)*g.lanes }

// routerOf maps an endpoint to its router and local port.
func (g *grid) routerOf(ep int) (router, port int) { return ep / g.conc, ep % g.conc }

// step decides the dimension-order move at router toward dstRouter: the
// first dimension (lowest index first) whose coordinate differs, and the
// direction to move. done reports arrival.
func (g *grid) step(router, dstRouter int) (d, dir int, done bool) {
	for d := range g.dims {
		c, t, k := g.coord(router, d), g.coord(dstRouter, d), g.dims[d]
		if c == t {
			continue
		}
		if !g.torus {
			if t > c {
				return d, 0, false
			}
			return d, 1, false
		}
		// Torus: the shorter way around; ties (k even, distance k/2) go
		// plus, deterministically.
		fwd := (t - c + k) % k
		if fwd <= k-fwd {
			return d, 0, false
		}
		return d, 1, false
	}
	return 0, 0, true
}

// gridRoute is deterministic dimension-order routing: correct dimension 0,
// then 1, …; at the destination router, deliver on the endpoint port. All
// lanes of the chosen channel are returned so the router picks the
// least-loaded (§3.4).
func (g *grid) gridRoute(routerID int, msg *flit.Message, buf []int) []int {
	dstRouter, dstPort := g.routerOf(msg.Dst)
	d, dir, done := g.step(routerID, dstRouter)
	if done {
		return append(buf, dstPort)
	}
	p := g.port(d, dir)
	for l := 0; l < g.lanes; l++ {
		buf = append(buf, p+l)
	}
	return buf
}

// datelineSel is the torus deadlock-freedom hook (core.VCSelFunc): each
// class partition is split into a pre-dateline and a post-dateline half,
// and a ring channel's half is a pure function of the router coordinate c,
// the message's source coordinate s in the ring's dimension, and the travel
// direction — under dimension-order routing a message's coordinate in
// dimension d stays at its source's until d is corrected, so "has the worm
// crossed the wrap link" needs no per-message state. Plus-direction channel
// c→c+1 is post-dateline iff it is the wrap itself (c = k−1) or lies past
// it (c < s); minus-direction c→c−1 mirrors. Within each half the channel
// dependency chain is strictly monotone, so no cycle survives.
func (g *grid) datelineSel(routerID, outPort int, msg *flit.Message, lo, hi int) (int, int) {
	if outPort < g.conc || hi-lo < 2 {
		return lo, hi // endpoint port, or a partition too narrow to split
	}
	rel := outPort - g.conc
	d := rel / (2 * g.lanes)
	dir := rel / g.lanes % 2
	c := g.coord(routerID, d)
	srcRouter, _ := g.routerOf(msg.Src)
	s := g.coord(srcRouter, d)
	k := g.dims[d]
	var post bool
	if dir == 0 {
		post = c == k-1 || c < s
	} else {
		post = c == 0 || c > s
	}
	mid := lo + (hi-lo)/2
	if post {
		return mid, hi
	}
	return lo, mid
}

// closGeom is the leaf-spine geometry: leaves are routers [0, L), spines
// [L, L+S). A leaf's ports are its Down endpoints then S uplink lane
// groups; a spine's ports are L downlink lane groups.
type closGeom struct {
	leaves, spines, down, lanes int
}

// leafUp returns the first lane's uplink port on a leaf toward spine sp.
func (c *closGeom) leafUp(sp int) int { return c.down + sp*c.lanes }

// spineDown returns the first lane's downlink port on a spine toward leaf l.
func (c *closGeom) spineDown(l int) int { return l * c.lanes }

// closRoute is up/down routing: a leaf delivers locally or offers every
// spine uplink lane (the router load-balances over all of them — the Clos
// generalization of the fat-link pick); a spine has exactly one leaf group
// down. Up channels precede down channels in every path, so the channel
// dependency graph is acyclic and the routing deadlock-free with no VC
// dating.
func (c *closGeom) closRoute(routerID int, msg *flit.Message, buf []int) []int {
	dstLeaf, dstPort := msg.Dst/c.down, msg.Dst%c.down
	if routerID >= c.leaves { // spine: down to the destination leaf
		p := c.spineDown(dstLeaf)
		for l := 0; l < c.lanes; l++ {
			buf = append(buf, p+l)
		}
		return buf
	}
	if routerID == dstLeaf {
		return append(buf, dstPort)
	}
	for sp := 0; sp < c.spines; sp++ { // up: any spine, any lane
		p := c.leafUp(sp)
		for l := 0; l < c.lanes; l++ {
			buf = append(buf, p+l)
		}
	}
	return buf
}

// Build constructs the fabric spec describes, wiring base-configured
// routers (base.ID, Ports, Route, VCSel and Arena are overwritten as the
// spec demands) into a Net. The legacy kinds delegate to their dedicated
// constructors, so the paper configurations are byte-identical through
// Build. Generated fabrics carve all router state from one shared
// struct-of-arrays arena.
func Build(engine *sim.Engine, spec Spec, base core.Config) (*Net, error) {
	spec = spec.normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case KindSingleSwitch:
		return SingleSwitch(engine, base)
	case KindFatMesh2x2:
		return FatMesh2x2(engine, base)
	case KindTetrahedral:
		return Tetrahedral(engine, base)
	case KindMesh, KindTorus:
		return buildGrid(engine, spec, base)
	case KindClos:
		return buildClos(engine, spec, base)
	}
	return nil, fmt.Errorf("topology: unknown kind %d", spec.Kind)
}

// classPartitions returns the sizes of the non-empty VC class partitions.
func classPartitions(cfg core.Config) []int {
	var parts []int
	if cfg.RTVCs > 0 {
		parts = append(parts, cfg.RTVCs)
	}
	if cfg.VCs-cfg.RTVCs > 0 {
		parts = append(parts, cfg.VCs-cfg.RTVCs)
	}
	return parts
}

func buildGrid(engine *sim.Engine, spec Spec, base core.Config) (*Net, error) {
	g := newGrid(spec)
	base.Ports = g.ports()
	if base.Ports > 127 {
		return nil, fmt.Errorf("topology: %s needs %d-port routers (max 127)", spec, base.Ports)
	}
	base.Route = g.gridRoute
	base.VCSel = nil
	if g.torus {
		// Dateline deadlock freedom needs ≥2 VCs in every class partition
		// that transit traffic can use.
		for _, p := range classPartitions(base) {
			if p < 2 {
				return nil, fmt.Errorf(
					"topology: torus needs ≥2 VCs per class partition for dateline routing (VCs %d, RTVCs %d)",
					base.VCs, base.RTVCs)
			}
		}
		base.VCSel = g.datelineSel
	}
	base.Arena = core.NewArena(g.routers, base)
	f := network.NewFabric(engine, base.Period)
	f.ReserveEndpoints(g.routers*g.conc, base.VCs)
	net := &Net{Fabric: f}
	routers := make([]*core.Router, g.routers)
	for r := 0; r < g.routers; r++ {
		cfg := base
		cfg.ID = r
		rt, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		routers[r] = rt
		f.AddRouter(rt)
	}
	net.Routers = routers
	for ep := 0; ep < g.routers*g.conc; ep++ {
		r, port := g.routerOf(ep)
		ni, sink := f.AttachEndpoint(routers[r], port, ep)
		net.NIs = append(net.NIs, ni)
		net.Sinks = append(net.Sinks, sink)
	}
	// Wire each router's plus side; the neighbour's minus side is the other
	// end. A mesh row's last router has no plus neighbour; a torus wraps.
	for r := 0; r < g.routers; r++ {
		for d := range g.dims {
			c, k := g.coord(r, d), g.dims[d]
			if c == k-1 && !g.torus {
				continue
			}
			nb := r + g.stride[d]
			if c == k-1 {
				nb = r - (k-1)*g.stride[d] // wrap
			}
			for l := 0; l < g.lanes; l++ {
				pa, pb := g.port(d, 0)+l, g.port(d, 1)+l
				f.Link(routers[r], pa, routers[nb], pb)
				f.Link(routers[nb], pb, routers[r], pa)
				net.transit = append(net.transit, TransitLink{A: r, B: nb, APort: pa, BPort: pb})
			}
		}
	}
	return net, nil
}

func buildClos(engine *sim.Engine, spec Spec, base core.Config) (*Net, error) {
	c := &closGeom{leaves: spec.Leaves, spines: spec.Spines, down: spec.Down, lanes: spec.Lanes}
	leafPorts := c.down + c.spines*c.lanes
	spinePorts := c.leaves * c.lanes
	if leafPorts > 127 || spinePorts > 127 {
		return nil, fmt.Errorf("topology: %s needs %d-port leaves / %d-port spines (max 127)",
			spec, leafPorts, spinePorts)
	}
	base.Route = c.closRoute
	base.VCSel = nil
	// Size the shared arena for the larger router shape; the smaller one
	// carves less and the slack stays unused.
	arenaCfg := base
	arenaCfg.Ports = max(leafPorts, spinePorts)
	base.Arena = core.NewArena(c.leaves+c.spines, arenaCfg)
	f := network.NewFabric(engine, base.Period)
	f.ReserveEndpoints(c.leaves*c.down, base.VCs)
	net := &Net{Fabric: f}
	routers := make([]*core.Router, c.leaves+c.spines)
	for r := range routers {
		cfg := base
		cfg.ID = r
		cfg.Ports = leafPorts
		if r >= c.leaves {
			cfg.Ports = spinePorts
		}
		rt, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		routers[r] = rt
		f.AddRouter(rt)
	}
	net.Routers = routers
	for ep := 0; ep < c.leaves*c.down; ep++ {
		ni, sink := f.AttachEndpoint(routers[ep/c.down], ep%c.down, ep)
		net.NIs = append(net.NIs, ni)
		net.Sinks = append(net.Sinks, sink)
	}
	for leaf := 0; leaf < c.leaves; leaf++ {
		for sp := 0; sp < c.spines; sp++ {
			for l := 0; l < c.lanes; l++ {
				pa, pb := c.leafUp(sp)+l, c.spineDown(leaf)+l
				spine := c.leaves + sp
				f.Link(routers[leaf], pa, routers[spine], pb)
				f.Link(routers[spine], pb, routers[leaf], pa)
				net.transit = append(net.transit, TransitLink{A: leaf, B: spine, APort: pa, BPort: pb})
			}
		}
	}
	return net, nil
}
