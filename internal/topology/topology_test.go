package topology

import (
	"testing"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

func base() core.Config {
	return core.Config{
		Ports: 8, VCs: 4, RTVCs: 2,
		BufferDepth: 20, StageDepth: 4,
		Policy: sched.VirtualClock, Period: 80,
	}
}

func TestSingleSwitchShape(t *testing.T) {
	eng := sim.NewEngine()
	net, err := SingleSwitch(eng, base())
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Routers) != 1 {
		t.Fatalf("routers %d", len(net.Routers))
	}
	if net.Endpoints() != 8 || len(net.Sinks) != 8 {
		t.Fatalf("endpoints %d sinks %d", net.Endpoints(), len(net.Sinks))
	}
	for i, ni := range net.NIs {
		if ni.Node != i {
			t.Fatalf("NI %d has node %d", i, ni.Node)
		}
	}
	// Routing: direct to the destination port.
	cfg := net.Routers[0].Config()
	for dst := 0; dst < 8; dst++ {
		ports := cfg.Route(0, &flit.Message{Dst: dst}, nil)
		if len(ports) != 1 || ports[0] != dst {
			t.Fatalf("route to %d = %v", dst, ports)
		}
	}
}

func TestSingleSwitchPropagatesConfigError(t *testing.T) {
	eng := sim.NewEngine()
	bad := base()
	bad.VCs = 0
	if _, err := SingleSwitch(eng, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFatMeshShape(t *testing.T) {
	eng := sim.NewEngine()
	net, err := FatMesh2x2(eng, base())
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Routers) != 4 {
		t.Fatalf("routers %d, want 4", len(net.Routers))
	}
	if net.Endpoints() != 16 {
		t.Fatalf("endpoints %d, want 16", net.Endpoints())
	}
	for ep := 0; ep < 16; ep++ {
		sw, port := FatMeshEndpointLocation(ep)
		if sw != ep/4 || port != ep%4 {
			t.Fatalf("endpoint %d at (%d,%d)", ep, sw, port)
		}
	}
}

func TestFatMeshRejectsWrongPorts(t *testing.T) {
	eng := sim.NewEngine()
	bad := base()
	bad.Ports = 6
	if _, err := FatMesh2x2(eng, bad); err == nil {
		t.Fatal("6-port fat mesh accepted")
	}
	zero := base()
	zero.Ports = 0 // defaulted to 8
	if _, err := FatMesh2x2(eng, zero); err != nil {
		t.Fatalf("zero ports should default to 8: %v", err)
	}
}

func TestFatMeshRouting(t *testing.T) {
	// Switch layout: 0 (0,0), 1 (1,0), 2 (0,1), 3 (1,1).
	cases := []struct {
		router int
		dstEp  int
		want   []int
	}{
		{0, 2, []int{2}},     // local delivery on port 2
		{0, 5, []int{4, 5}},  // 0→1: X fat pair
		{0, 9, []int{6, 7}},  // 0→2: Y fat pair
		{0, 13, []int{4, 5}}, // 0→3 diagonal: X first
		{1, 14, []int{6, 7}}, // 1→3: Y
		{3, 1, []int{4, 5}},  // 3→0 diagonal: X first
		{2, 8, []int{0}},     // local
		{1, 4, []int{0}},     // local port 0
	}
	for _, c := range cases {
		got := fatMeshRoute(c.router, &flit.Message{Dst: c.dstEp}, nil)
		if len(got) != len(c.want) {
			t.Fatalf("route(%d → ep%d) = %v, want %v", c.router, c.dstEp, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("route(%d → ep%d) = %v, want %v", c.router, c.dstEp, got, c.want)
			}
		}
	}
}

func TestFatMeshRoutingConverges(t *testing.T) {
	// Property: following the first candidate port from any switch reaches
	// the destination in at most two hops (XY on a 2×2 mesh).
	for src := 0; src < 4; src++ {
		for ep := 0; ep < 16; ep++ {
			at := src
			hops := 0
			for {
				ports := fatMeshRoute(at, &flit.Message{Dst: ep}, nil)
				if len(ports) == 1 && ports[0] < fmEndpoints {
					break // delivered
				}
				hops++
				if hops > 2 {
					t.Fatalf("routing loop from switch %d to endpoint %d", src, ep)
				}
				// Move to the neighbour the fat pair reaches.
				if ports[0] == fmXPortA {
					at = at ^ 1 // flip X
				} else {
					at = at ^ 2 // flip Y
				}
			}
		}
	}
}

func TestFatMeshEndToEnd(t *testing.T) {
	// A message from endpoint 0 (switch 0) to endpoint 15 (switch 3) must
	// traverse two fat links and arrive intact.
	eng := sim.NewEngine()
	net, err := FatMesh2x2(eng, base())
	if err != nil {
		t.Fatal(err)
	}
	var deliveredAt sim.Time
	var deliveredTo int
	for i, s := range net.Sinks {
		i := i
		s.OnMessage = func(m *flit.Message, at sim.Time) {
			deliveredAt = at
			deliveredTo = i
		}
	}
	m := &flit.Message{
		ID: 1, StreamID: 1, Class: flit.VBR, MsgsInFrame: 1,
		Flits: 20, Vtick: 100, Src: 0, Dst: 15, DstVC: 0, Injected: 0,
	}
	net.NIs[0].Inject(0, m)
	eng.Drain()
	if deliveredTo != 15 {
		t.Fatalf("message delivered to %d, want 15", deliveredTo)
	}
	// Three hops (switch 0 → 1 → 3 → endpoint): ≥ 20 flits + 3×pipeline.
	if deliveredAt < 30*80 {
		t.Fatalf("multi-hop delivery implausibly fast: %v", deliveredAt)
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestTetrahedralShape(t *testing.T) {
	eng := sim.NewEngine()
	net, err := Tetrahedral(eng, base())
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Routers) != 4 || net.Endpoints() != 16 {
		t.Fatalf("routers %d endpoints %d", len(net.Routers), net.Endpoints())
	}
	bad := base()
	bad.Ports = 6
	if _, err := Tetrahedral(eng, bad); err == nil {
		t.Fatal("6-port tetrahedral accepted")
	}
}

func TestTetraPortSymmetry(t *testing.T) {
	// Every ordered pair maps to a transit port in [4,7); the mapping is a
	// bijection per switch.
	for s := 0; s < 4; s++ {
		seen := map[int]bool{}
		for d := 0; d < 4; d++ {
			if d == s {
				continue
			}
			p := tetraPort(s, d)
			if p < 4 || p > 6 {
				t.Fatalf("tetraPort(%d,%d) = %d", s, d, p)
			}
			if seen[p] {
				t.Fatalf("switch %d reuses port %d", s, p)
			}
			seen[p] = true
		}
	}
}

func TestTetrahedralRoutingIsOneHop(t *testing.T) {
	for sw := 0; sw < 4; sw++ {
		for ep := 0; ep < 16; ep++ {
			ports := tetraRoute(sw, &flit.Message{Dst: ep}, nil)
			if len(ports) != 1 {
				t.Fatalf("route(%d, ep%d) = %v", sw, ep, ports)
			}
			if ep/4 == sw {
				if ports[0] != ep%4 {
					t.Fatalf("local route(%d, ep%d) = %v", sw, ep, ports)
				}
				continue
			}
			// One transit hop, then local delivery.
			next := tetraRoute(nextTetraSwitch(sw, ports[0]), &flit.Message{Dst: ep}, nil)
			if len(next) != 1 || next[0] != ep%4 {
				t.Fatalf("second hop from %d to ep%d = %v", sw, ep, next)
			}
		}
	}
}

// nextTetraSwitch inverts tetraPort for the test.
func nextTetraSwitch(s, port int) int {
	rank := port - 4
	for o := 0; o < 4; o++ {
		if o == s {
			continue
		}
		if rank == 0 {
			return o
		}
		rank--
	}
	panic("bad port")
}

func TestTetrahedralEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	net, err := Tetrahedral(eng, base())
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[int]int{}
	for i, s := range net.Sinks {
		i := i
		s.OnMessage = func(m *flit.Message, at sim.Time) { delivered[i]++ }
	}
	// One message from every endpoint to the "opposite" endpoint.
	for ep := 0; ep < 16; ep++ {
		m := &flit.Message{
			ID: uint64(ep + 1), StreamID: ep, Class: flit.VBR, MsgsInFrame: 1,
			Flits: 20, Vtick: 100, Src: ep, Dst: 15 - ep, DstVC: 0, Injected: 0,
		}
		net.NIs[ep].Inject(0, m)
	}
	eng.Drain()
	for ep := 0; ep < 16; ep++ {
		if delivered[ep] != 1 {
			t.Fatalf("endpoint %d received %d messages", ep, delivered[ep])
		}
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestFatMeshBidirectionalLinks(t *testing.T) {
	// Reverse direction of the previous test: 15 → 0.
	eng := sim.NewEngine()
	net, err := FatMesh2x2(eng, base())
	if err != nil {
		t.Fatal(err)
	}
	done := false
	net.Sinks[0].OnMessage = func(m *flit.Message, at sim.Time) { done = true }
	m := &flit.Message{
		ID: 1, StreamID: 1, Class: flit.BestEffort, MsgsInFrame: 1,
		Flits: 20, Vtick: sim.Forever, Src: 15, Dst: 0, DstVC: 2, Injected: 0,
	}
	net.NIs[15].Inject(2, m)
	eng.Drain()
	if !done {
		t.Fatal("reverse-direction message not delivered")
	}
}

func TestFatMeshSwitchPathMatchesRouting(t *testing.T) {
	// Property: for every endpoint pair, following fatMeshRoute's first
	// candidate hop by hop visits exactly FatMeshSwitchPath's switches.
	portToSwitch := func(sw, port int) int {
		switch port {
		case fmXPortA, fmXPortB:
			return sw ^ 1
		case fmYPortA, fmYPortB:
			return sw ^ 2
		}
		return -1 // endpoint port: delivered
	}
	for src := 0; src < fmTotalNodes; src++ {
		for dst := 0; dst < fmTotalNodes; dst++ {
			if src == dst {
				continue
			}
			srcSw, _ := FatMeshEndpointLocation(src)
			dstSw, _ := FatMeshEndpointLocation(dst)
			want := FatMeshSwitchPath(srcSw, dstSw)
			var got []int
			at := srcSw
			for {
				got = append(got, at)
				ports := fatMeshRoute(at, &flit.Message{Dst: dst}, nil)
				next := portToSwitch(at, ports[0])
				if next < 0 {
					break
				}
				at = next
			}
			if len(got) != len(want) {
				t.Fatalf("path(%d→%d) = %v, want %v", src, dst, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("path(%d→%d) = %v, want %v", src, dst, got, want)
				}
			}
			if got[len(got)-1] != dstSw {
				t.Fatalf("path(%d→%d) ends at switch %d, want %d", src, dst, got[len(got)-1], dstSw)
			}
		}
	}
}
