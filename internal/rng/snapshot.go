package rng

import "mediaworm/internal/snapshot"

// State is a Source's complete serializable state: the xoshiro256** words
// plus the cached Box–Muller variate. The cache matters for determinism —
// dropping it would shift every subsequent Normal draw by one variate.
type State struct {
	S        [4]uint64
	Gauss    float64
	HasGauss bool
}

// State captures the stream's current state for a checkpoint.
func (r *Source) State() State {
	return State{S: r.s, Gauss: r.gauss, HasGauss: r.hasGauss}
}

// SetState overwrites the stream's state from a checkpoint. The all-zero
// xoshiro state is unreachable from New, so a snapshot carrying one is
// corrupt; SetState leaves the source untouched and reports false.
func (r *Source) SetState(st State) bool {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return false
	}
	r.s = st.S
	r.gauss = st.Gauss
	r.hasGauss = st.HasGauss
	return true
}

// EncodeState writes the source's complete state — the four xoshiro words
// then the Box–Muller cache — in the fixed wire order checkpoints rely on.
func (r *Source) EncodeState(w *snapshot.Writer) {
	st := r.State()
	for _, v := range st.S {
		w.U64(v)
	}
	w.F64(st.Gauss)
	w.Bool(st.HasGauss)
}

// RestoreState reads the wire form EncodeState writes and overwrites the
// source, rejecting the unreachable all-zero xoshiro state as corrupt.
func (r *Source) RestoreState(rd *snapshot.Reader) error {
	var st State
	for i := range st.S {
		st.S[i] = rd.U64()
	}
	st.Gauss = rd.F64()
	st.HasGauss = rd.Bool()
	if err := rd.Err(); err != nil {
		return err
	}
	if !r.SetState(st) {
		return &snapshot.InvariantError{
			Invariant: "rng-state",
			Detail:    "all-zero xoshiro state",
		}
	}
	return nil
}
