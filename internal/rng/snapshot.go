package rng

// State is a Source's complete serializable state: the xoshiro256** words
// plus the cached Box–Muller variate. The cache matters for determinism —
// dropping it would shift every subsequent Normal draw by one variate.
type State struct {
	S        [4]uint64
	Gauss    float64
	HasGauss bool
}

// State captures the stream's current state for a checkpoint.
func (r *Source) State() State {
	return State{S: r.s, Gauss: r.gauss, HasGauss: r.hasGauss}
}

// SetState overwrites the stream's state from a checkpoint. The all-zero
// xoshiro state is unreachable from New, so a snapshot carrying one is
// corrupt; SetState leaves the source untouched and reports false.
func (r *Source) SetState(st State) bool {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return false
	}
	r.s = st.S
	r.gauss = st.Gauss
	r.hasGauss = st.HasGauss
	return true
}
