// Package rng provides deterministic, splittable random-number streams and
// the distributions the MediaWorm workload model needs (uniform, normal,
// exponential). It replaces the random streams of the CSIM simulation library
// the original paper used.
//
// Every simulation component draws from its own named substream derived from
// a single master seed, so adding a new consumer never perturbs the draws seen
// by existing ones — experiment results stay reproducible run to run and
// stable under code evolution.
package rng

import "math"

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used both to seed streams and as the whitening finalizer.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashString folds a label into a 64-bit value (FNV-1a).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Source is a deterministic pseudo-random stream. It implements an
// xoshiro256** generator seeded via SplitMix64, giving high-quality,
// fast, allocation-free draws.
type Source struct {
	s [4]uint64
	// cached second normal variate from the Box–Muller pair
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded from seed.
func New(seed uint64) *Source {
	src := &Source{}
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return src
}

// NewStream derives an independent substream from a master seed and a label.
// Identical (seed, label) pairs always yield identical streams.
func NewStream(seed uint64, label string) *Source {
	return New(seed ^ hashString(label))
}

// DeriveSeed deterministically derives an independent seed from a master
// seed and a coordinate vector — typically (sweep point index, replica
// index). Each coordinate is folded through SplitMix64, so derived seeds are
// decorrelated from the master and from each other, and the result depends
// only on the inputs: a parallel sweep derives the identical seed for a
// point no matter which worker goroutine runs it.
func DeriveSeed(seed uint64, coords ...uint64) uint64 {
	s := seed
	out := splitmix64(&s)
	for _, c := range coords {
		s = out ^ (c + 0x9e3779b97f4a7c15)
		out = splitmix64(&s)
	}
	return out
}

// Split derives a child stream from this stream's identity without consuming
// draws from the parent. The child is indexed so siblings are independent.
func (r *Source) Split(index uint64) *Source {
	mix := r.s[0] ^ r.s[3]
	sm := mix + index*0x9e3779b97f4a7c15
	return New(splitmix64(&sm))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n { // accept unless in the biased tail
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Normal returns a draw from Normal(mean, stddev) via Box–Muller, caching the
// pair's second variate.
func (r *Source) Normal(mean, stddev float64) float64 {
	if r.hasGauss {
		r.hasGauss = false
		return mean + stddev*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return mean + stddev*u*f
}

// Exp returns an exponential draw with the given mean (= 1/rate).
// It panics if mean <= 0.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
