package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestNewStreamLabelIndependence(t *testing.T) {
	a := NewStream(7, "traffic")
	b := NewStream(7, "topology")
	c := NewStream(7, "traffic")
	if a.Uint64() != c.Uint64() {
		t.Fatal("same (seed,label) must give identical streams")
	}
	a2 := NewStream(7, "traffic")
	if a2.Uint64() == b.Uint64() {
		t.Fatal("distinct labels should give distinct first draws (overwhelmingly)")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c0 := parent.Split(0)
	c1 := parent.Split(1)
	if c0.Uint64() == c1.Uint64() {
		t.Fatal("sibling splits should differ")
	}
	// Splitting must not consume parent draws.
	p1 := New(99)
	_ = p1.Split(5)
	p2 := New(99)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split consumed parent state")
	}
}

func TestZeroStateAvoided(t *testing.T) {
	// Find no seed trivially; instead assert the constructor guard directly.
	s := New(0)
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		t.Fatal("all-zero xoshiro state")
	}
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("generator appears stuck at zero")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(7)
	const mean, sd, n = 16666.0, 3333.0, 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 50 {
		t.Fatalf("normal mean %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 50 {
		t.Fatalf("normal sd %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(8)
	const mean, n = 33.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-mean) > 0.5 {
		t.Fatalf("exp mean %v, want ~%v", got, mean)
	}
}

func TestExpPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 5, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(10)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(16666, 3333)
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("identical inputs derived different seeds")
	}
	// Distinct coordinates and distinct masters must give distinct seeds
	// across a dense grid (collisions in 64 bits over 2k draws would signal
	// a broken mix, not bad luck).
	seen := map[uint64][2]uint64{}
	for seed := uint64(1); seed <= 2; seed++ {
		for point := uint64(0); point < 32; point++ {
			for rep := uint64(0); rep < 32; rep++ {
				d := DeriveSeed(seed, point, rep)
				if prev, dup := seen[d]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v both derive %#x",
						seed, point, rep, prev, d)
				}
				seen[d] = [2]uint64{point, rep}
				if d == seed {
					t.Fatalf("derived seed equals master at (%d,%d,%d)", seed, point, rep)
				}
			}
		}
	}
	// Coordinate order matters: (a, b) and (b, a) are different points.
	if DeriveSeed(7, 1, 2) == DeriveSeed(7, 2, 1) {
		t.Fatal("coordinate order did not change the derived seed")
	}
	// The empty coordinate vector still whitens the master.
	if DeriveSeed(7) == 7 {
		t.Fatal("bare derivation returned the master seed unchanged")
	}
}
