// Package report renders experiment results to machine-readable CSV and to
// a human-readable Markdown report, so regenerated figures can be diffed,
// plotted, and committed alongside EXPERIMENTS.md.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mediaworm/internal/artifact"
	"mediaworm/internal/experiments"
)

// FigureCSV writes one row per (series, x) point with the figure's metrics.
func FigureCSV(fig *experiments.Figure, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"series", xColumn(fig), "d_ms", "sd_ms", "be_latency_us", "be_saturated", "samples"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			row := []string{
				s.Label,
				xValue(fig, p),
				formatF(p.DMs),
				formatF(p.SDMs),
				formatF(p.BELatencyUs),
				strconv.FormatBool(p.BESaturated),
				strconv.FormatUint(p.Samples, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func xColumn(fig *experiments.Figure) string {
	if fig.XIsMix {
		return "rt_share"
	}
	return "load"
}

func xValue(fig *experiments.Figure, p experiments.Point) string {
	if fig.XIsMix {
		return formatF(p.RTShare)
	}
	return formatF(p.Load)
}

func formatF(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Table2CSV writes the best-effort latency grid.
func Table2CSV(tab *experiments.Table2, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"rt_share"}
	for _, l := range tab.Loads {
		header = append(header, "load_"+strconv.FormatFloat(l, 'g', 3, 64))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, mix := range tab.Mixes {
		row := []string{formatF(mix)}
		for _, p := range tab.Cells[i] {
			if p.BESaturated {
				row = append(row, "sat")
			} else {
				row = append(row, formatF(p.BELatencyUs))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table3CSV writes the PCS admission columns.
func Table3CSV(tab *experiments.Table3, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"load", "attempts", "established", "dropped"}); err != nil {
		return err
	}
	for i, r := range tab.Rows {
		if err := cw.Write([]string{
			formatF(tab.Loads[i]),
			strconv.Itoa(r.Attempts),
			strconv.Itoa(r.Established),
			strconv.Itoa(r.Dropped),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// BoundsCSV writes one row per bound-versus-observed grid cell. Infinite
// bounds (cells the analytic model declines to certify) render as "inf".
func BoundsCSV(rep *experiments.BoundsReport, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"fabric", "load", "rt_share", "streams", "certified", "compared",
		"violations", "worst_bound_ms", "worst_observed_ms", "median_slack",
		"max_backlog_kbits",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range rep.Cells {
		bound := "inf"
		if c.Certified > 0 {
			bound = formatF(c.WorstBoundMs)
		}
		backlog := "inf"
		if !math.IsInf(c.MaxBacklogKbits, 1) {
			backlog = formatF(c.MaxBacklogKbits)
		}
		row := []string{
			c.Fabric,
			formatF(c.Load),
			formatF(c.RTShare),
			strconv.Itoa(c.Streams),
			strconv.Itoa(c.Certified),
			strconv.Itoa(c.Compared),
			strconv.Itoa(c.Violations),
			bound,
			formatF(c.WorstObservedMs),
			formatF(c.MedianSlack),
			backlog,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBoundsFile renders a bounds report to <dir>/bounds.csv.
func WriteBoundsFile(dir string, rep *experiments.BoundsReport) (string, error) {
	return writeFile(dir, "bounds", func(w io.Writer) error { return BoundsCSV(rep, w) })
}

// WriteFigureFile renders a figure to <dir>/<id>.csv.
func WriteFigureFile(dir string, fig *experiments.Figure) (string, error) {
	return writeFile(dir, fig.ID, func(w io.Writer) error { return FigureCSV(fig, w) })
}

// WriteTable2File renders Table 2 to <dir>/table2.csv.
func WriteTable2File(dir string, tab *experiments.Table2) (string, error) {
	return writeFile(dir, "table2", func(w io.Writer) error { return Table2CSV(tab, w) })
}

// WriteTable3File renders Table 3 to <dir>/table3.csv.
func WriteTable3File(dir string, tab *experiments.Table3) (string, error) {
	return writeFile(dir, "table3", func(w io.Writer) error { return Table3CSV(tab, w) })
}

func writeFile(dir, id string, render func(io.Writer) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, id+".csv")
	if err := artifact.WriteFunc(path, 0o644, render); err != nil {
		return "", fmt.Errorf("report: rendering %s: %w", id, err)
	}
	return path, nil
}

// Markdown renders a figure as a GitHub-flavored Markdown table.
func Markdown(fig *experiments.Figure, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", fig.ID, fig.Title); err != nil {
		return err
	}
	if len(fig.Series) == 0 {
		_, err := fmt.Fprintln(w, "_(empty)_")
		return err
	}
	header := []string{fig.XLabel}
	for _, s := range fig.Series {
		header = append(header, s.Label+" d (ms)", s.Label+" σd (ms)")
	}
	writeMDRow(w, header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	writeMDRow(w, sep)
	for i := range fig.Series[0].Points {
		row := []string{xLabelValue(fig, fig.Series[0].Points[i])}
		for _, s := range fig.Series {
			p := s.Points[i]
			row = append(row, fmt.Sprintf("%.2f", p.DMs), fmt.Sprintf("%.3f", p.SDMs))
		}
		writeMDRow(w, row)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func xLabelValue(fig *experiments.Figure, p experiments.Point) string {
	if fig.XIsMix {
		return fmt.Sprintf("%d:%d", int(p.RTShare*100+0.5), int((1-p.RTShare)*100+0.5))
	}
	return fmt.Sprintf("%.2f", p.Load)
}

func writeMDRow(w io.Writer, cells []string) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
}
