package report

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mediaworm"
	"mediaworm/internal/experiments"
)

func sampleFigure() *experiments.Figure {
	return &experiments.Figure{
		ID: "figX", Title: "sample", XLabel: "load",
		Series: []experiments.Series{
			{Label: "a", Points: []experiments.Point{
				{Load: 0.6, RTShare: 0.8, DMs: 33, SDMs: 0.25, BELatencyUs: 10, Samples: 100},
				{Load: 0.9, RTShare: 0.8, DMs: 33.2, SDMs: 5.5, BESaturated: true, Samples: 90},
			}},
			{Label: "b", Points: []experiments.Point{
				{Load: 0.6, RTShare: 0.8, DMs: 33, SDMs: 0.26, Samples: 100},
				{Load: 0.9, RTShare: 0.8, DMs: 34, SDMs: 8.0, Samples: 80},
			}},
		},
	}
}

func TestFigureCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := FigureCSV(sampleFigure(), &buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // header + 2 series × 2 points
		t.Fatalf("rows %d, want 5", len(rows))
	}
	if rows[0][0] != "series" || rows[0][1] != "load" {
		t.Fatalf("header %v", rows[0])
	}
	if rows[2][5] != "true" {
		t.Fatalf("saturation flag not serialized: %v", rows[2])
	}
	if rows[3][0] != "b" {
		t.Fatalf("series label lost: %v", rows[3])
	}
}

func TestFigureCSVMixAxis(t *testing.T) {
	fig := sampleFigure()
	fig.XIsMix = true
	var buf bytes.Buffer
	if err := FigureCSV(fig, &buf); err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(&buf).ReadAll()
	if rows[0][1] != "rt_share" {
		t.Fatalf("mix axis header %v", rows[0])
	}
	if rows[1][1] != "0.8" {
		t.Fatalf("mix value %v", rows[1])
	}
}

func TestTable2CSV(t *testing.T) {
	tab := &experiments.Table2{
		Mixes: []float64{0.2, 0.9},
		Loads: []float64{0.6, 0.9},
		Cells: [][]experiments.Point{
			{{BELatencyUs: 5}, {BELatencyUs: 40}},
			{{BELatencyUs: 9}, {BESaturated: true}},
		},
	}
	var buf bytes.Buffer
	if err := Table2CSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(&buf).ReadAll()
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[2][2] != "sat" {
		t.Fatalf("saturated cell %v", rows[2])
	}
}

func TestTable3CSV(t *testing.T) {
	tab := &experiments.Table3{
		Loads: []float64{0.5},
		Rows:  []mediaworm.PCSResult{{Attempts: 10, Established: 7, Dropped: 3}},
	}
	var buf bytes.Buffer
	if err := Table3CSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "10,7,3") {
		t.Fatalf("table3 csv:\n%s", out)
	}
}

func TestWriteFigureFile(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteFigureFile(dir, sampleFigure())
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "figX.csv" {
		t.Fatalf("path %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,load") {
		t.Fatalf("file contents: %s", data)
	}
	// Nested directory creation.
	if _, err := WriteFigureFile(filepath.Join(dir, "a/b"), sampleFigure()); err != nil {
		t.Fatal(err)
	}
}

func TestMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := Markdown(sampleFigure(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### figX: sample", "| load |", "| 0.60 |", "| --- |", "8.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	empty := &experiments.Figure{ID: "e", Title: "none"}
	buf.Reset()
	if err := Markdown(empty, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "_(empty)_") {
		t.Fatal("empty figure")
	}
}

func TestMarkdownMixAxis(t *testing.T) {
	fig := sampleFigure()
	fig.XIsMix = true
	var buf bytes.Buffer
	if err := Markdown(fig, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| 80:20 |") {
		t.Fatalf("mix row missing:\n%s", buf.String())
	}
}
