// Package traffic generates the paper's workload (§4.2): MPEG-2-like VBR
// streams (frame size ~ Normal(16666 B, 3333 B), 33 ms inter-frame interval,
// ≈4 Mbps), CBR streams (constant frame size), and best-effort traffic
// (fixed-size messages at a constant injection rate to uniformly random
// destinations), mixed in a configurable x:y proportion with statically
// partitioned virtual channels.
package traffic

import (
	"fmt"
	"math"

	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/rng"
	"mediaworm/internal/sim"
	"mediaworm/internal/topology"
)

// StreamConfig describes one real-time video stream.
type StreamConfig struct {
	ID    int
	Class flit.Class // CBR or VBR
	// Src and Dst are endpoint ids; InVC and DstVC the stream's VC choices
	// at the source link and the destination link.
	Src, Dst     int
	InVC, DstVC  int
	FrameBytes   float64  // mean frame size (16666 B in the paper)
	FrameBytesSD float64  // 0 for CBR
	Interval     sim.Time // inter-frame interval (33 ms)
	MsgFlits     int      // wire flits per message, header included
	FlitBits     int
	// Start is the stream's phase offset; frames are emitted at
	// Start, Start+Interval, … until Stop.
	Start, Stop sim.Time
	// Sizer overrides the frame-size model; nil selects the paper's
	// Normal(FrameBytes, FrameBytesSD) draws.
	Sizer FrameSizer
}

// PayloadFlitsPerMsg returns the payload capacity of one message: the header
// flit carries routing and Vtick information, the rest carry data. A
// one-flit message still moves (degenerate) payload, matching the paper's
// observation that one header per 20-flit message costs 5% of the stream
// bandwidth.
func (c *StreamConfig) PayloadFlitsPerMsg() int {
	if c.MsgFlits <= 1 {
		return 1
	}
	return c.MsgFlits - 1
}

// WireFlits returns the on-wire flit count of a frame of the given byte
// size under the config's segmentation: payload flits plus one header per
// message.
func (c *StreamConfig) WireFlits(bytes float64) int {
	payload := flit.FlitsForBytes(int(math.Round(bytes)), c.FlitBits)
	if payload < 1 {
		payload = 1
	}
	perMsg := c.PayloadFlitsPerMsg()
	msgs := (payload + perMsg - 1) / perMsg
	if c.MsgFlits > 1 {
		return payload + msgs
	}
	return payload
}

// NominalBitsPerSec returns the stream's payload bandwidth (the paper's
// "4 Mbps"), excluding header overhead.
func (c *StreamConfig) NominalBitsPerSec() float64 {
	return c.FrameBytes * 8 / c.Interval.Seconds()
}

// Stream drives one video stream's injection events.
type Stream struct {
	cfg   StreamConfig //mw:snapcover — run-immutable stream parameters; restore rebuilds streams from the embedded config
	ni    *network.NI  //mw:snapcover — injection wiring, rebuilt by Apply
	eng   *sim.Engine  //mw:snapcover — engine handle; the clock serializes in secClock
	rnd   *rng.Source
	ids   *uint64 //mw:snapcover — shared message-id counter, serialized once by Workload
	frame int

	// FramesInjected counts emitted frames (for tests).
	FramesInjected int

	// OnEmit, if set, observes every emitted frame (delivered-frame
	// accounting in the resilience experiments).
	OnEmit func(stream, frame int) //mw:snapcover — observer callback, rewired by NewSim on restore

	// revoked pauses emission (admission-controlled QoS degradation);
	// parked records that the self-scheduling emit chain has died and
	// Resume must restart it.
	revoked bool
	parked  bool

	emitFn   func()    //mw:snapcover — cached method value, recreated by Apply
	emitEv   sim.Event //mw:snapcover — calendar key serialized by encodeEvent; re-armed via ScheduleRestored
	injectFn func()    //mw:snapcover — cached method value, recreated by Apply
	// pending holds segmented messages whose injection events have not fired
	// yet, oldest first. Injection events are scheduled in increasing
	// (time, sequence) order, so they pop front-first; keeping them listed
	// (instead of captured in per-message closures) is what lets a
	// checkpoint serialize in-flight frames.
	pending []pendingInject
}

// pendingInject is one scheduled-but-not-yet-fired message injection.
type pendingInject struct {
	msg *flit.Message
	ev  sim.Event //mw:snapcover — calendar key serialized by encodeEvent; re-armed via ScheduleRestored
}

// ID returns the stream's identifier.
func (s *Stream) ID() int { return s.cfg.ID }

// Src and Dst return the stream's endpoint ids — the route the analytic
// admission model prices.
func (s *Stream) Src() int { return s.cfg.Src }

// Dst returns the stream's destination endpoint id.
func (s *Stream) Dst() int { return s.cfg.Dst }

// Revoked reports whether the stream is currently revoked.
func (s *Stream) Revoked() bool { return s.revoked }

// Revoke pauses frame emission from the next frame boundary on — the
// admission controller's graceful-degradation lever. Frames already
// segmented keep injecting; nothing new is scheduled.
func (s *Stream) Revoke() { s.revoked = true }

// Resume re-admits a revoked stream: emission restarts one inter-frame
// interval from now (a fresh phase, as if the stream had just been set up).
func (s *Stream) Resume() {
	if !s.revoked {
		return
	}
	s.revoked = false
	if s.parked {
		s.parked = false
		s.emitEv = s.eng.At(s.eng.Now()+s.cfg.Interval, s.emitFn)
	}
}

// StartStream wires a stream to its source NI and schedules its first frame.
// ids is the shared message-id counter.
func StartStream(eng *sim.Engine, ni *network.NI, cfg StreamConfig, rnd *rng.Source, ids *uint64) (*Stream, error) {
	if cfg.MsgFlits < 1 || cfg.FlitBits <= 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("traffic: invalid stream config %+v", cfg)
	}
	if !cfg.Class.RealTime() {
		return nil, fmt.Errorf("traffic: stream class must be real-time, got %v", cfg.Class)
	}
	s := &Stream{cfg: cfg, ni: ni, eng: eng, rnd: rnd, ids: ids}
	if s.cfg.Sizer == nil {
		s.cfg.Sizer = &NormalSizer{Mean: cfg.FrameBytes, SD: cfg.FrameBytesSD, Rand: rnd}
	}
	s.emitFn = s.emitFrame
	s.injectFn = s.injectHead
	s.emitEv = eng.At(cfg.Start, s.emitFn)
	return s, nil
}

// injectHead injects the oldest pending message. Injection events fire in
// the order they were scheduled, so the front of the queue is always the
// message whose event is firing.
func (s *Stream) injectHead() {
	p := s.pending[0]
	n := copy(s.pending, s.pending[1:])
	s.pending[n] = pendingInject{}
	s.pending = s.pending[:n]
	p.msg.Injected = s.eng.Now()
	s.ni.Inject(s.cfg.InVC, p.msg)
}

// emitFrame draws the frame size, segments it into messages, and schedules
// their injections evenly across the inter-frame interval (§4.2.1).
func (s *Stream) emitFrame() {
	now := s.eng.Now()
	if now >= s.cfg.Stop {
		return
	}
	if s.revoked {
		s.parked = true
		return
	}
	bytes := s.cfg.Sizer.NextFrameBytes()
	minBytes := float64(s.cfg.FlitBits) / 8
	if bytes < minBytes {
		bytes = minBytes
	}
	payloadFlits := flit.FlitsForBytes(int(math.Round(bytes)), s.cfg.FlitBits)
	perMsg := s.cfg.PayloadFlitsPerMsg()
	msgs := (payloadFlits + perMsg - 1) / perMsg
	// Wire flits include one header per message; Vtick is the stream's
	// requested inter-flit service time at its instantaneous rate.
	wireFlits := payloadFlits
	if s.cfg.MsgFlits > 1 {
		wireFlits += msgs
	}
	vtick := sim.Time(int64(s.cfg.Interval) / int64(wireFlits))
	// A connection's virtual clock never runs slower than its subscribed
	// nominal rate — the paper's timestamps reflect connection bandwidth
	// (§3.3), not instantaneous frame size. Without the floor, an
	// unusually small frame would request an arbitrarily slow clock and
	// its flits could stall behind cross traffic for an unbounded stamp
	// skew; with it, the skew is capped at MsgFlits nominal ticks, which
	// is what internal/calculus prices as the Virtual Clock pacing term.
	// Larger-than-nominal frames keep their faster instantaneous clock.
	if nom := sim.Time(int64(s.cfg.Interval) / int64(s.cfg.WireFlits(s.cfg.FrameBytes))); vtick > nom {
		vtick = nom
	}
	if vtick < 1 {
		vtick = 1
	}
	spacing := sim.Time(int64(s.cfg.Interval) / int64(msgs))
	frame := s.frame
	remaining := payloadFlits
	for k := 0; k < msgs; k++ {
		pay := perMsg
		if pay > remaining {
			pay = remaining
		}
		remaining -= pay
		fl := pay
		if s.cfg.MsgFlits > 1 {
			fl++ // header
		}
		*s.ids++
		m := &flit.Message{
			ID:          *s.ids,
			StreamID:    s.cfg.ID,
			Class:       s.cfg.Class,
			FrameSeq:    frame,
			MsgSeq:      k,
			MsgsInFrame: msgs,
			Flits:       fl,
			Vtick:       vtick,
			Src:         s.cfg.Src,
			Dst:         s.cfg.Dst,
			DstVC:       s.cfg.DstVC,
		}
		at := now + sim.Time(k)*spacing
		s.pending = append(s.pending, pendingInject{msg: m, ev: s.eng.At(at, s.injectFn)})
	}
	s.FramesInjected++
	if s.OnEmit != nil {
		s.OnEmit(s.cfg.ID, frame)
	}
	s.frame++
	s.emitEv = s.eng.Reschedule(s.emitEv, now+s.cfg.Interval)
}

// Partition exposes a live virtual-channel split for dynamically
// partitioned fabrics (the paper's §6 direction): real-time traffic uses
// VCs [0, RTVCs), best-effort [RTVCs, VCs).
type Partition interface {
	RTVCs() int
	VCs() int
}

// BestEffortConfig describes one node's best-effort source (§4.2.2):
// fixed-length messages at a constant injection rate, destination and VCs
// uniform over the best-effort partition.
type BestEffortConfig struct {
	Node        int
	Nodes       int      // total endpoints (for destination choice)
	Interval    sim.Time // time between message injections
	MsgFlits    int
	VCLo, VCHi  int // static best-effort VC partition [VCLo, VCHi)
	Start, Stop sim.Time
	// Partition, if set, overrides VCLo/VCHi with the live best-effort
	// range per message (dynamic partitioning).
	Partition Partition
}

// BestEffortSource injects best-effort messages on a fixed cadence.
type BestEffortSource struct {
	cfg BestEffortConfig //mw:snapcover — run-immutable source parameters; restore rebuilds sources from the embedded config
	ni  *network.NI      //mw:snapcover — injection wiring, rebuilt by Apply
	eng *sim.Engine      //mw:snapcover — engine handle; the clock serializes in secClock
	rnd *rng.Source
	ids *uint64 //mw:snapcover — shared message-id counter, serialized once by Workload

	emitFn func()    //mw:snapcover — cached method value, recreated by StartBestEffort
	emitEv sim.Event //mw:snapcover — calendar key serialized by encodeEvent; re-armed via ScheduleRestored

	// OnInject, if set, observes each injection (for load accounting).
	OnInject func(m *flit.Message) //mw:snapcover — observer callback, rewired by NewSim on restore
	// Injected counts messages emitted.
	Injected uint64
}

// StartBestEffort wires a best-effort source and schedules its first message.
func StartBestEffort(eng *sim.Engine, ni *network.NI, cfg BestEffortConfig, rnd *rng.Source, ids *uint64) (*BestEffortSource, error) {
	if cfg.Interval <= 0 || cfg.MsgFlits < 1 || cfg.Nodes < 2 ||
		(cfg.Partition == nil && cfg.VCHi <= cfg.VCLo) {
		return nil, fmt.Errorf("traffic: invalid best-effort config %+v", cfg)
	}
	b := &BestEffortSource{cfg: cfg, ni: ni, eng: eng, rnd: rnd, ids: ids}
	b.emitFn = b.emit
	b.emitEv = eng.At(cfg.Start, b.emitFn)
	return b, nil
}

func (b *BestEffortSource) emit() {
	now := b.eng.Now()
	if now >= b.cfg.Stop {
		return
	}
	dst := b.rnd.Intn(b.cfg.Nodes - 1)
	if dst >= b.cfg.Node {
		dst++ // uniform over all nodes except self
	}
	lo, hi := b.cfg.VCLo, b.cfg.VCHi
	if p := b.cfg.Partition; p != nil {
		lo, hi = p.RTVCs(), p.VCs()
		if lo >= hi { // partition momentarily all-real-time: hold one VC
			lo = hi - 1
		}
	}
	vcs := hi - lo
	inVC := lo + b.rnd.Intn(vcs)
	dstVC := lo + b.rnd.Intn(vcs)
	*b.ids++
	m := &flit.Message{
		ID:          *b.ids,
		StreamID:    -1 - b.cfg.Node,
		Class:       flit.BestEffort,
		MsgsInFrame: 1,
		Flits:       b.cfg.MsgFlits,
		Vtick:       sim.Forever,
		Src:         b.cfg.Node,
		Dst:         dst,
		DstVC:       dstVC,
		Injected:    now,
	}
	b.Injected++
	if b.OnInject != nil {
		b.OnInject(m)
	}
	b.ni.Inject(inVC, m)
	b.emitEv = b.eng.Reschedule(b.emitEv, now+b.cfg.Interval)
}

// MixConfig describes a full §4.2.3 workload over a topology: total input
// load as a fraction of link bandwidth, split x:y between real-time and
// best-effort traffic, with the VC partition in the same proportion.
type MixConfig struct {
	// Load is the offered input-link load in (0, 1+] as a fraction of the
	// physical channel bandwidth.
	Load float64
	// RTShare is x/(x+y): the real-time fraction of the load.
	RTShare float64
	// Class is the real-time class to generate (VBR or CBR).
	Class flit.Class
	// LinkBitsPerSec is the physical channel bandwidth.
	LinkBitsPerSec float64
	// FlitBits and MsgFlits shape messages (32 bits, 20 flits by default).
	FlitBits, MsgFlits int
	// FrameBytes/FrameBytesSD/Interval shape frames.
	FrameBytes, FrameBytesSD float64
	Interval                 sim.Time
	// VCs and RTVCs mirror the router configuration.
	VCs, RTVCs int
	// Start and Stop bound generation; phased workloads (ApplyPhases) use
	// several MixConfigs over disjoint windows.
	Start, Stop sim.Time
	// Seed drives all workload randomness.
	Seed uint64
	// Partition, if set, gives best-effort sources the live VC split
	// (dynamic partitioning); RTVCs still assigns real-time stream VCs at
	// setup time.
	Partition Partition
	// GoP switches VBR frame sizes from independent normal draws to the
	// MPEG Group-of-Pictures model (DefaultGoP over FrameBytes), each
	// stream at a random pattern phase. Ignored for CBR.
	GoP bool
}

// StreamsPerNode returns the per-node real-time stream count implied by the
// load and mix: round(Load·RTShare·LinkBW / nominal stream bandwidth).
func (m *MixConfig) StreamsPerNode() int {
	nominal := m.FrameBytes * 8 / m.Interval.Seconds()
	return int(math.Round(m.Load * m.RTShare * m.LinkBitsPerSec / nominal))
}

// BestEffortInterval returns the injection interval that makes best-effort
// traffic consume Load·(1−RTShare) of the link.
func (m *MixConfig) BestEffortInterval() sim.Time {
	beLoad := m.Load * (1 - m.RTShare)
	if beLoad <= 0 {
		return 0
	}
	msgsPerSec := beLoad * m.LinkBitsPerSec / float64(m.MsgFlits*m.FlitBits)
	return sim.Time(math.Round(1e9 / msgsPerSec))
}

// Workload is an instantiated mix over a topology.
type Workload struct {
	Streams      []*Stream
	BESources    []*BestEffortSource
	msgIDs       uint64
	nextStreamID int
}

// Apply instantiates cfg over every endpoint of net. Real-time streams are
// balanced over the real-time VC partition at the source (the paper's
// "6 streams per VC" accounting); destinations and destination VCs are
// uniform random (§4.2.1). Stagger phases spread frame starts uniformly
// over one interval.
func Apply(eng *sim.Engine, net *topology.Net, cfg MixConfig) (*Workload, error) {
	w := &Workload{}
	if err := w.apply(eng, net, cfg); err != nil {
		return nil, err
	}
	return w, nil
}

// ApplyPhases instantiates several mixes over disjoint time windows — the
// "dynamic mixes" of the paper's §6. Each phase's [Start, Stop) bounds its
// generation; stream and message identifiers stay unique across phases.
func ApplyPhases(eng *sim.Engine, net *topology.Net, phases []MixConfig) (*Workload, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("traffic: no phases")
	}
	w := &Workload{}
	for i, cfg := range phases {
		if err := w.apply(eng, net, cfg); err != nil {
			return nil, fmt.Errorf("traffic: phase %d: %w", i, err)
		}
	}
	return w, nil
}

func (w *Workload) apply(eng *sim.Engine, net *topology.Net, cfg MixConfig) error {
	if cfg.RTVCs < 0 || cfg.RTVCs > cfg.VCs {
		return fmt.Errorf("traffic: RTVCs %d out of range", cfg.RTVCs)
	}
	if cfg.Stop <= cfg.Start {
		return fmt.Errorf("traffic: empty window [%d, %d)", cfg.Start, cfg.Stop)
	}
	nodes := net.Endpoints()
	if nodes < 2 {
		return fmt.Errorf("traffic: need at least 2 endpoints")
	}
	perNode := cfg.StreamsPerNode()
	if perNode > 0 && cfg.RTVCs == 0 {
		return fmt.Errorf("traffic: real-time load with no real-time VCs")
	}
	for node := 0; node < nodes; node++ {
		src := rng.NewStream(cfg.Seed, fmt.Sprintf("rt-node-%d-at-%d", node, cfg.Start))
		for i := 0; i < perNode; i++ {
			dst := src.Intn(nodes - 1)
			if dst >= node {
				dst++
			}
			sc := StreamConfig{
				ID:           w.nextStreamID,
				Class:        cfg.Class,
				Src:          node,
				Dst:          dst,
				InVC:         i % cfg.RTVCs,
				DstVC:        src.Intn(cfg.RTVCs),
				FrameBytes:   cfg.FrameBytes,
				FrameBytesSD: cfg.FrameBytesSD,
				Interval:     cfg.Interval,
				MsgFlits:     cfg.MsgFlits,
				FlitBits:     cfg.FlitBits,
				Start:        cfg.Start + sim.Time(src.Uint64n(uint64(cfg.Interval))),
				Stop:         cfg.Stop,
			}
			if cfg.Class == flit.CBR {
				sc.FrameBytesSD = 0
			}
			streamRnd := src.Split(uint64(i))
			if cfg.GoP && cfg.Class == flit.VBR {
				sizer, err := NewGoPSizer(DefaultGoP(cfg.FrameBytes), streamRnd)
				if err != nil {
					return err
				}
				sc.Sizer = sizer
			}
			st, err := StartStream(eng, net.NIs[node], sc, streamRnd, &w.msgIDs)
			if err != nil {
				return err
			}
			w.Streams = append(w.Streams, st)
			w.nextStreamID++
		}
	}
	beInterval := cfg.BestEffortInterval()
	if beInterval > 0 {
		if cfg.Partition == nil && cfg.RTVCs >= cfg.VCs {
			return fmt.Errorf("traffic: best-effort load with no best-effort VCs")
		}
		for node := 0; node < nodes; node++ {
			src := rng.NewStream(cfg.Seed, fmt.Sprintf("be-node-%d-at-%d", node, cfg.Start))
			bc := BestEffortConfig{
				Node:      node,
				Nodes:     nodes,
				Interval:  beInterval,
				MsgFlits:  cfg.MsgFlits,
				VCLo:      cfg.RTVCs,
				VCHi:      cfg.VCs,
				Start:     cfg.Start + sim.Time(src.Uint64n(uint64(beInterval))),
				Stop:      cfg.Stop,
				Partition: cfg.Partition,
			}
			be, err := StartBestEffort(eng, net.NIs[node], bc, src, &w.msgIDs)
			if err != nil {
				return err
			}
			w.BESources = append(w.BESources, be)
		}
	}
	return nil
}

// PartitionVCs splits vcs in the x:y proportion, guaranteeing at least one
// VC to each class that carries load (§4.2.3).
func PartitionVCs(vcs int, rtShare float64) (rtVCs int) {
	rtVCs = int(math.Round(float64(vcs) * rtShare))
	if rtShare > 0 && rtVCs == 0 {
		rtVCs = 1
	}
	if rtShare < 1 && rtVCs == vcs {
		rtVCs = vcs - 1
	}
	return rtVCs
}
