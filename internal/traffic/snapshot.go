package traffic

import (
	"fmt"

	"mediaworm/internal/flit"
	"mediaworm/internal/rng"
	"mediaworm/internal/sim"
	"mediaworm/internal/snapshot"
)

// Checkpoint support. Generator structure (stream configs, GoP size tables,
// cadences) is rebuilt from the run configuration; a snapshot carries the
// mutable state: rng substreams, sizer positions, frame counters, the emit
// events' calendar keys, and the per-stream pending-injection queues. A
// restored generator is first disarmed (its setup-time emit events
// cancelled) and then re-armed at the checkpointed calendar keys.

// Sizer kind tags on the wire.
const (
	sizerNormal = iota
	sizerGoP
	sizerTrace
)

func encodeRng(w *snapshot.Writer, src *rng.Source) {
	src.EncodeState(w)
}

func restoreRng(r *snapshot.Reader, src *rng.Source, what string) error {
	if err := src.RestoreState(r); err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	return nil
}

// encodeEvent writes an event handle as (scheduled, at, seq). Stopped or
// parked generators have no live emit event, so "unscheduled" is a valid
// state, not an error.
func encodeEvent(w *snapshot.Writer, eng *sim.Engine, ev sim.Event) {
	at, seq, ok := eng.EventKey(ev)
	w.Bool(ok)
	if ok {
		w.Time(at)
		w.U64(seq)
	}
}

func (s *Stream) encodeSizer(w *snapshot.Writer) error {
	switch sz := s.cfg.Sizer.(type) {
	case *NormalSizer:
		w.U8(sizerNormal)
		encodeRng(w, sz.Rand)
	case *GoPSizer:
		w.U8(sizerGoP)
		w.Int(sz.pos)
		encodeRng(w, sz.rnd)
	case *TraceSizer:
		w.U8(sizerTrace)
		w.Int(sz.pos)
	default:
		return &snapshot.NotSnapshottableError{Feature: fmt.Sprintf("frame sizer %T", s.cfg.Sizer)}
	}
	return nil
}

func (s *Stream) restoreSizer(r *snapshot.Reader) error {
	kind := r.U8()
	if err := r.Err(); err != nil {
		return err
	}
	mismatch := func(want string) error {
		return &snapshot.InvariantError{
			Invariant: "sizer-kind",
			Detail:    fmt.Sprintf("stream %d: snapshot has %s sizer, rebuilt %T", s.cfg.ID, want, s.cfg.Sizer),
		}
	}
	switch kind {
	case sizerNormal:
		sz, ok := s.cfg.Sizer.(*NormalSizer)
		if !ok {
			return mismatch("normal")
		}
		return restoreRng(r, sz.Rand, fmt.Sprintf("stream %d sizer", s.cfg.ID))
	case sizerGoP:
		sz, ok := s.cfg.Sizer.(*GoPSizer)
		if !ok {
			return mismatch("GoP")
		}
		pos := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if pos < 0 || pos >= len(sz.sizes) {
			return &snapshot.InvariantError{
				Invariant: "sizer-phase",
				Detail:    fmt.Sprintf("stream %d: GoP position %d of %d", s.cfg.ID, pos, len(sz.sizes)),
			}
		}
		sz.pos = pos
		return restoreRng(r, sz.rnd, fmt.Sprintf("stream %d sizer", s.cfg.ID))
	case sizerTrace:
		sz, ok := s.cfg.Sizer.(*TraceSizer)
		if !ok {
			return mismatch("trace")
		}
		pos := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if pos < 0 || pos >= len(sz.sizes) {
			return &snapshot.InvariantError{
				Invariant: "sizer-phase",
				Detail:    fmt.Sprintf("stream %d: trace position %d of %d", s.cfg.ID, pos, len(sz.sizes)),
			}
		}
		sz.pos = pos
		return nil
	default:
		return &snapshot.InvariantError{
			Invariant: "sizer-kind",
			Detail:    fmt.Sprintf("stream %d: unknown sizer tag %d", s.cfg.ID, kind),
		}
	}
}

// Disarm cancels the setup-time emit event so the calendar is empty before a
// restore re-arms events at their checkpointed keys.
func (s *Stream) Disarm() {
	s.eng.Cancel(s.emitEv)
	s.emitEv = sim.Event{}
}

// CollectMessages registers the stream's segmented-but-uninjected messages.
func (s *Stream) CollectMessages(tbl *flit.MsgTable) {
	for i := range s.pending {
		tbl.Add(s.pending[i].msg)
	}
}

// EncodeState writes the stream's mutable state. Messages must already be
// collected into tbl.
func (s *Stream) EncodeState(w *snapshot.Writer, tbl *flit.MsgTable) error {
	encodeRng(w, s.rnd)
	if err := s.encodeSizer(w); err != nil {
		return err
	}
	w.Int(s.frame)
	w.Int(s.FramesInjected)
	w.Bool(s.revoked)
	w.Bool(s.parked)
	encodeEvent(w, s.eng, s.emitEv)
	w.Int(len(s.pending))
	for i := range s.pending {
		p := &s.pending[i]
		at, seq, ok := s.eng.EventKey(p.ev)
		if !ok {
			return &snapshot.InvariantError{
				Invariant: "pending-injection",
				Detail:    fmt.Sprintf("stream %d: pending message %d without a live event", s.cfg.ID, p.msg.ID),
			}
		}
		w.U64(tbl.Ref(p.msg))
		w.Time(at)
		w.U64(seq)
	}
	return tbl.Err()
}

// RestoreState overwrites the stream's mutable state, re-arming the emit
// event and the pending injections at their checkpointed calendar keys.
// Disarm must have been called first.
func (s *Stream) RestoreState(r *snapshot.Reader, tbl *flit.MsgTable) error {
	if err := restoreRng(r, s.rnd, fmt.Sprintf("stream %d", s.cfg.ID)); err != nil {
		return err
	}
	if err := s.restoreSizer(r); err != nil {
		return err
	}
	s.frame = r.Int()
	s.FramesInjected = r.Int()
	s.revoked = r.Bool()
	s.parked = r.Bool()
	if scheduled := r.Bool(); scheduled {
		at := r.Time()
		seq := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		s.emitEv = s.eng.ScheduleRestored(at, seq, s.emitFn)
	}
	n := r.Len()
	s.pending = s.pending[:0]
	var prevAt sim.Time
	var prevSeq uint64
	for i := 0; i < n; i++ {
		m, err := tbl.Get(r.U64())
		if err != nil {
			return err
		}
		at := r.Time()
		seq := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if m == nil {
			return &snapshot.InvariantError{
				Invariant: "pending-injection",
				Detail:    fmt.Sprintf("stream %d: nil pending message", s.cfg.ID),
			}
		}
		// The queue pops front-first when its events fire, so the keys must
		// be strictly increasing in (time, sequence) order.
		if i > 0 && (at < prevAt || (at == prevAt && seq <= prevSeq)) {
			return &snapshot.InvariantError{
				Invariant: "pending-injection",
				Detail:    fmt.Sprintf("stream %d: pending entry %d out of calendar order", s.cfg.ID, i),
			}
		}
		prevAt, prevSeq = at, seq
		s.pending = append(s.pending, pendingInject{msg: m, ev: s.eng.ScheduleRestored(at, seq, s.injectFn)})
	}
	return r.Err()
}

// Disarm cancels the setup-time emit event so the calendar is empty before a
// restore re-arms events at their checkpointed keys.
func (b *BestEffortSource) Disarm() {
	b.eng.Cancel(b.emitEv)
	b.emitEv = sim.Event{}
}

// EncodeState writes the source's mutable state.
func (b *BestEffortSource) EncodeState(w *snapshot.Writer) {
	encodeRng(w, b.rnd)
	w.U64(b.Injected)
	encodeEvent(w, b.eng, b.emitEv)
}

// RestoreState overwrites the source's mutable state, re-arming the emit
// event at its checkpointed calendar key. Disarm must have been called first.
func (b *BestEffortSource) RestoreState(r *snapshot.Reader) error {
	if err := restoreRng(r, b.rnd, fmt.Sprintf("best-effort node %d", b.cfg.Node)); err != nil {
		return err
	}
	b.Injected = r.U64()
	if scheduled := r.Bool(); scheduled {
		at := r.Time()
		seq := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		b.emitEv = b.eng.ScheduleRestored(at, seq, b.emitFn)
	}
	return r.Err()
}

// Disarm cancels every generator's setup-time emit event.
func (w *Workload) Disarm() {
	for _, s := range w.Streams {
		s.Disarm()
	}
	for _, b := range w.BESources {
		b.Disarm()
	}
}

// CollectMessages registers every pending (segmented-but-uninjected) message.
func (w *Workload) CollectMessages(tbl *flit.MsgTable) {
	for _, s := range w.Streams {
		s.CollectMessages(tbl)
	}
}

// EncodeState writes the workload's mutable state: the shared message-id
// counter and every generator's state.
func (w *Workload) EncodeState(sw *snapshot.Writer, tbl *flit.MsgTable) error {
	sw.U64(w.msgIDs)
	sw.Int(w.nextStreamID)
	sw.Int(len(w.Streams))
	for _, s := range w.Streams {
		if err := s.EncodeState(sw, tbl); err != nil {
			return err
		}
	}
	sw.Int(len(w.BESources))
	for _, b := range w.BESources {
		b.EncodeState(sw)
	}
	return nil
}

// RestoreState overwrites the workload's mutable state. The workload must
// have been rebuilt from the same configuration (same generator counts) and
// disarmed.
func (w *Workload) RestoreState(r *snapshot.Reader, tbl *flit.MsgTable) error {
	w.msgIDs = r.U64()
	nextStreamID := r.Int()
	nStreams := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nextStreamID != w.nextStreamID || nStreams != len(w.Streams) {
		return &snapshot.InvariantError{
			Invariant: "workload-shape",
			Detail: fmt.Sprintf("snapshot has %d streams (next id %d), rebuilt %d (next id %d)",
				nStreams, nextStreamID, len(w.Streams), w.nextStreamID),
		}
	}
	for _, s := range w.Streams {
		if err := s.RestoreState(r, tbl); err != nil {
			return err
		}
	}
	nBE := r.Len()
	if err := r.Err(); err != nil {
		return err
	}
	if nBE != len(w.BESources) {
		return &snapshot.InvariantError{
			Invariant: "workload-shape",
			Detail:    fmt.Sprintf("snapshot has %d best-effort sources, rebuilt %d", nBE, len(w.BESources)),
		}
	}
	for _, b := range w.BESources {
		if err := b.RestoreState(r); err != nil {
			return err
		}
	}
	return r.Err()
}
