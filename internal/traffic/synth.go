package traffic

import (
	"fmt"
	"io"
	"math"

	"mediaworm/internal/rng"
)

// SynthTraceConfig drives the synthetic MPEG-2 frame-size trace generator:
// a GoP-structured stream whose activity level is modulated by a two-state
// Markov scene process (calm/action) with AR(1)-correlated short-term
// variation — the standard shape of measured MPEG traces, for use with
// TraceSizer when no real trace is at hand.
type SynthTraceConfig struct {
	// Frames is the trace length.
	Frames int
	// MeanBytes is the long-run mean frame size (16666 B for the paper's
	// 4 Mb/s streams).
	MeanBytes float64
	// GoP shapes the I/P/B structure; zero-valued fields default to
	// DefaultGoP(MeanBytes) with no per-frame noise of its own.
	GoP GoPConfig
	// SceneMeanFrames is the average scene length; scenes alternate
	// between calm (scale CalmScale) and action (scale ActionScale).
	SceneMeanFrames        int
	CalmScale, ActionScale float64
	// AR1 is the lag-1 autocorrelation of the per-frame deviation;
	// AR1SD its stationary standard deviation as a fraction of the mean.
	AR1, AR1SD float64
	// Seed drives the generator.
	Seed uint64
}

// DefaultSynthTrace returns a plausible MPEG-2 parameterization.
func DefaultSynthTrace(frames int, meanBytes float64) SynthTraceConfig {
	return SynthTraceConfig{
		Frames:          frames,
		MeanBytes:       meanBytes,
		SceneMeanFrames: 90, // ~3 s scenes at 30 frames/s
		CalmScale:       0.8,
		ActionScale:     1.3,
		AR1:             0.6,
		AR1SD:           0.15,
		Seed:            1,
	}
}

func (c *SynthTraceConfig) validate() error {
	switch {
	case c.Frames <= 0:
		return fmt.Errorf("traffic: synth trace needs frames > 0")
	case c.MeanBytes <= 0:
		return fmt.Errorf("traffic: synth trace mean %v", c.MeanBytes)
	case c.SceneMeanFrames <= 0:
		return fmt.Errorf("traffic: scene length %d", c.SceneMeanFrames)
	case c.CalmScale <= 0 || c.ActionScale <= 0:
		return fmt.Errorf("traffic: scene scales %v/%v", c.CalmScale, c.ActionScale)
	case c.AR1 < 0 || c.AR1 >= 1:
		return fmt.Errorf("traffic: AR1 %v out of [0,1)", c.AR1)
	case c.AR1SD < 0:
		return fmt.Errorf("traffic: AR1SD %v", c.AR1SD)
	}
	return nil
}

// SynthesizeTrace generates the frame sizes.
func SynthesizeTrace(cfg SynthTraceConfig) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gop := cfg.GoP
	if gop.Pattern == "" {
		gop = DefaultGoP(cfg.MeanBytes)
		gop.NoiseSD = 0 // noise comes from the AR(1) process here
	}
	rnd := rng.New(cfg.Seed)
	sizer, err := NewGoPSizer(gop, rnd)
	if err != nil {
		return nil, err
	}
	// Normalize the two scene scales so their time-average is 1 and the
	// long-run mean stays MeanBytes.
	norm := (cfg.CalmScale + cfg.ActionScale) / 2
	calm := cfg.CalmScale / norm
	action := cfg.ActionScale / norm

	// AR(1) deviation with stationary sd = AR1SD: innovation sd follows.
	innovSD := cfg.AR1SD * math.Sqrt(1-cfg.AR1*cfg.AR1)

	sizes := make([]float64, cfg.Frames)
	inAction := rnd.Float64() < 0.5
	dev := 0.0
	pSwitch := 1.0 / float64(cfg.SceneMeanFrames)
	minBytes := cfg.MeanBytes / 50
	for i := range sizes {
		if rnd.Float64() < pSwitch {
			inAction = !inAction
		}
		scale := calm
		if inAction {
			scale = action
		}
		if innovSD > 0 {
			dev = cfg.AR1*dev + rnd.Normal(0, innovSD)
		}
		v := sizer.NextFrameBytes() * scale * (1 + dev)
		if v < minBytes {
			v = minBytes
		}
		sizes[i] = v
	}
	return sizes, nil
}

// WriteTrace writes sizes in the LoadFrameTrace format (one size per line)
// with a descriptive header comment.
func WriteTrace(w io.Writer, sizes []float64, comment string) error {
	if comment != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", comment); err != nil {
			return err
		}
	}
	for _, s := range sizes {
		if _, err := fmt.Fprintf(w, "%.0f\n", s); err != nil {
			return err
		}
	}
	return nil
}
