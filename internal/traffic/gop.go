package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mediaworm/internal/rng"
)

// FrameSizer produces successive frame sizes in bytes for one stream. The
// default VBR model draws each frame independently from a normal
// distribution (§4.2.1); richer models — MPEG Group-of-Pictures structure,
// or recorded traces — implement this interface.
type FrameSizer interface {
	NextFrameBytes() float64
}

// NormalSizer is the paper's §4.2.1 model: independent draws from
// Normal(Mean, SD), truncated below at one flit by the stream layer.
type NormalSizer struct {
	Mean, SD float64
	Rand     *rng.Source
}

// NextFrameBytes implements FrameSizer.
func (s *NormalSizer) NextFrameBytes() float64 {
	if s.SD <= 0 {
		return s.Mean
	}
	return s.Rand.Normal(s.Mean, s.SD)
}

// GoPConfig describes an MPEG Group-of-Pictures frame-size model: a
// repeating I/P/B pattern whose per-type mean sizes are derived from the
// overall stream mean, plus per-frame normal noise. This is the structured
// VBR the paper's MPEG-2 workload abstracts away — useful for studying how
// frame-type burstiness (large periodic I frames) affects jitter.
type GoPConfig struct {
	// Pattern is the frame-type sequence, e.g. "IBBPBBPBBPBB" (the common
	// MPEG-2 N=12, M=3 GoP). Only 'I', 'P' and 'B' are allowed.
	Pattern string
	// MeanBytes is the stream's overall mean frame size; per-type means
	// are scaled so the pattern averages to it.
	MeanBytes float64
	// IRatio, PRatio, BRatio weight the frame types (typical MPEG-2 is
	// about 5:3:1).
	IRatio, PRatio, BRatio float64
	// NoiseSD is the per-frame normal noise standard deviation as a
	// fraction of the frame's type mean.
	NoiseSD float64
}

// DefaultGoP returns the common MPEG-2 N=12/M=3 structure scaled to the
// paper's 16666-byte mean with 20% per-frame noise.
func DefaultGoP(meanBytes float64) GoPConfig {
	return GoPConfig{
		Pattern:   "IBBPBBPBBPBB",
		MeanBytes: meanBytes,
		IRatio:    5, PRatio: 3, BRatio: 1,
		NoiseSD: 0.2,
	}
}

// GoPSizer emits frame sizes following a GoP pattern.
type GoPSizer struct {
	sizes []float64 // per position in the pattern
	noise float64
	pos   int
	rnd   *rng.Source
}

// NewGoPSizer validates cfg and builds a sizer. Streams should start at
// random pattern phases (pass a per-stream rng) so I frames do not
// synchronize across the workload.
func NewGoPSizer(cfg GoPConfig, rnd *rng.Source) (*GoPSizer, error) {
	if cfg.Pattern == "" || cfg.MeanBytes <= 0 {
		return nil, fmt.Errorf("traffic: invalid GoP config %+v", cfg)
	}
	if cfg.IRatio <= 0 || cfg.PRatio <= 0 || cfg.BRatio <= 0 {
		return nil, fmt.Errorf("traffic: GoP ratios must be positive")
	}
	weights := make([]float64, len(cfg.Pattern))
	total := 0.0
	for i, c := range cfg.Pattern {
		switch c {
		case 'I':
			weights[i] = cfg.IRatio
		case 'P':
			weights[i] = cfg.PRatio
		case 'B':
			weights[i] = cfg.BRatio
		default:
			return nil, fmt.Errorf("traffic: GoP pattern char %q", c)
		}
		total += weights[i]
	}
	scale := cfg.MeanBytes * float64(len(cfg.Pattern)) / total
	sizes := make([]float64, len(weights))
	for i, w := range weights {
		sizes[i] = w * scale
	}
	s := &GoPSizer{sizes: sizes, noise: cfg.NoiseSD, rnd: rnd}
	s.pos = rnd.Intn(len(sizes)) // random phase
	return s, nil
}

// NextFrameBytes implements FrameSizer.
func (s *GoPSizer) NextFrameBytes() float64 {
	base := s.sizes[s.pos]
	s.pos = (s.pos + 1) % len(s.sizes)
	if s.noise <= 0 {
		return base
	}
	return s.rnd.Normal(base, s.noise*base)
}

// TraceSizer replays recorded frame sizes, cycling when exhausted — the
// trace-driven mode for real MPEG-2 frame-size logs.
type TraceSizer struct {
	sizes []float64
	pos   int
}

// NewTraceSizer starts replay at offset phase (mod the trace length).
func NewTraceSizer(sizes []float64, phase int) (*TraceSizer, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("traffic: empty frame trace")
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("traffic: non-positive trace frame %d", i)
		}
	}
	return &TraceSizer{sizes: sizes, pos: ((phase % len(sizes)) + len(sizes)) % len(sizes)}, nil
}

// NextFrameBytes implements FrameSizer.
func (t *TraceSizer) NextFrameBytes() float64 {
	s := t.sizes[t.pos]
	t.pos = (t.pos + 1) % len(t.sizes)
	return s
}

// LoadFrameTrace parses a frame-size trace: one frame size in bytes per
// line; blank lines and lines starting with '#' are skipped.
func LoadFrameTrace(r io.Reader) ([]float64, error) {
	var sizes []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("traffic: trace line %d: %q", line, text)
		}
		sizes = append(sizes, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("traffic: empty frame trace")
	}
	return sizes, nil
}
