package traffic

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mediaworm/internal/rng"
)

func TestNormalSizer(t *testing.T) {
	s := &NormalSizer{Mean: 1000, SD: 0}
	for i := 0; i < 5; i++ {
		if s.NextFrameBytes() != 1000 {
			t.Fatal("SD=0 must be constant")
		}
	}
	s = &NormalSizer{Mean: 1000, SD: 100, Rand: rng.New(1)}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += s.NextFrameBytes()
	}
	if math.Abs(sum/n-1000) > 5 {
		t.Fatalf("mean %v", sum/n)
	}
}

func TestGoPSizerMeanAndStructure(t *testing.T) {
	cfg := DefaultGoP(16666)
	cfg.NoiseSD = 0 // deterministic pattern for structural checks
	s, err := NewGoPSizer(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// One full pattern must average to the configured mean.
	n := len(cfg.Pattern)
	var sum float64
	sizes := make([]float64, n)
	for i := 0; i < n; i++ {
		sizes[i] = s.NextFrameBytes()
		sum += sizes[i]
	}
	if math.Abs(sum/float64(n)-16666) > 1e-6 {
		t.Fatalf("GoP mean %v, want 16666", sum/float64(n))
	}
	// Exactly one I frame (the largest), and the I:B ratio is 5:1.
	max, min := sizes[0], sizes[0]
	for _, v := range sizes[1:] {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if math.Abs(max/min-5) > 1e-6 {
		t.Fatalf("I:B size ratio %v, want 5", max/min)
	}
	// Pattern repeats.
	if got := s.NextFrameBytes(); math.Abs(got-sizes[0]) > 1e-9 {
		t.Fatal("pattern does not cycle")
	}
}

func TestGoPSizerRandomPhase(t *testing.T) {
	cfg := DefaultGoP(1000)
	cfg.NoiseSD = 0
	first := map[float64]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		s, err := NewGoPSizer(cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		first[math.Round(s.NextFrameBytes())] = true
	}
	if len(first) < 2 {
		t.Fatal("streams all start at the same GoP phase")
	}
}

func TestGoPSizerNoise(t *testing.T) {
	s, err := NewGoPSizer(DefaultGoP(16666), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 60000
	for i := 0; i < n; i++ {
		sum += s.NextFrameBytes()
	}
	if math.Abs(sum/n-16666)/16666 > 0.01 {
		t.Fatalf("noisy GoP mean %v, want ≈16666", sum/n)
	}
}

func TestNewGoPSizerValidation(t *testing.T) {
	bad := []GoPConfig{
		{},
		{Pattern: "IXP", MeanBytes: 100, IRatio: 1, PRatio: 1, BRatio: 1},
		{Pattern: "IPB", MeanBytes: 100, IRatio: 0, PRatio: 1, BRatio: 1},
		{Pattern: "IPB", MeanBytes: -5, IRatio: 1, PRatio: 1, BRatio: 1},
	}
	for i, cfg := range bad {
		if _, err := NewGoPSizer(cfg, rng.New(1)); err == nil {
			t.Fatalf("bad GoP config %d accepted", i)
		}
	}
}

func TestTraceSizer(t *testing.T) {
	tr, err := NewTraceSizer([]float64{10, 20, 30}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{20, 30, 10, 20}
	for i, w := range want {
		if got := tr.NextFrameBytes(); got != w {
			t.Fatalf("trace step %d = %v, want %v", i, got, w)
		}
	}
	if _, err := NewTraceSizer(nil, 0); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := NewTraceSizer([]float64{1, -2}, 0); err == nil {
		t.Fatal("negative trace frame accepted")
	}
	// Negative phases wrap.
	tr, err = NewTraceSizer([]float64{10, 20}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NextFrameBytes() != 20 {
		t.Fatal("negative phase wrap broken")
	}
}

func TestLoadFrameTrace(t *testing.T) {
	in := "# mpeg trace\n16666\n\n12000.5\n 20000 \n"
	sizes, err := LoadFrameTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 16666 || sizes[1] != 12000.5 || sizes[2] != 20000 {
		t.Fatalf("parsed %v", sizes)
	}
	if _, err := LoadFrameTrace(strings.NewReader("abc\n")); err == nil {
		t.Fatal("junk line accepted")
	}
	if _, err := LoadFrameTrace(strings.NewReader("-5\n")); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := LoadFrameTrace(strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// Property: a GoP sizer's long-run mean tracks MeanBytes for any valid
// ratios.
func TestPropertyGoPMean(t *testing.T) {
	f := func(iR, pR, bR uint8) bool {
		cfg := GoPConfig{
			Pattern:   "IBBPBBPBBPBB",
			MeanBytes: 10000,
			IRatio:    float64(iR%50) + 1,
			PRatio:    float64(pR%50) + 1,
			BRatio:    float64(bR%50) + 1,
		}
		s, err := NewGoPSizer(cfg, rng.New(uint64(iR)<<16|uint64(pR)<<8|uint64(bR)))
		if err != nil {
			return false
		}
		var sum float64
		n := len(cfg.Pattern) * 10
		for i := 0; i < n; i++ {
			sum += s.NextFrameBytes()
		}
		return math.Abs(sum/float64(n)-10000) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
