package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/rng"
	"mediaworm/internal/sim"
)

func TestSynthesizeTraceBasics(t *testing.T) {
	cfg := DefaultSynthTrace(6000, 16666)
	sizes, err := SynthesizeTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 6000 {
		t.Fatalf("frames %d", len(sizes))
	}
	var sum float64
	for _, s := range sizes {
		if s <= 0 {
			t.Fatalf("non-positive frame %v", s)
		}
		sum += s
	}
	mean := sum / float64(len(sizes))
	if math.Abs(mean-16666)/16666 > 0.15 {
		t.Fatalf("trace mean %v, want ≈16666", mean)
	}
}

func TestSynthesizeTraceHasSceneStructure(t *testing.T) {
	cfg := DefaultSynthTrace(12000, 10000)
	sizes, err := SynthesizeTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Average over GoP-length blocks to remove I/P/B structure; the scene
	// process should leave visible low-frequency variance: block means
	// spread well beyond what iid frames would give.
	block := 12
	var blockMeans []float64
	for i := 0; i+block <= len(sizes); i += block {
		var s float64
		for _, v := range sizes[i : i+block] {
			s += v
		}
		blockMeans = append(blockMeans, s/float64(block))
	}
	min, max := blockMeans[0], blockMeans[0]
	for _, m := range blockMeans {
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if max/min < 1.3 {
		t.Fatalf("no scene modulation visible: block means %.0f..%.0f", min, max)
	}
}

func TestSynthesizeTraceDeterministic(t *testing.T) {
	cfg := DefaultSynthTrace(100, 16666)
	a, _ := SynthesizeTrace(cfg)
	b, _ := SynthesizeTrace(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	cfg.Seed = 2
	c, _ := SynthesizeTrace(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSynthesizeTraceValidation(t *testing.T) {
	bad := []func(*SynthTraceConfig){
		func(c *SynthTraceConfig) { c.Frames = 0 },
		func(c *SynthTraceConfig) { c.MeanBytes = 0 },
		func(c *SynthTraceConfig) { c.SceneMeanFrames = 0 },
		func(c *SynthTraceConfig) { c.CalmScale = 0 },
		func(c *SynthTraceConfig) { c.AR1 = 1 },
		func(c *SynthTraceConfig) { c.AR1SD = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultSynthTrace(100, 1000)
		mutate(&cfg)
		if _, err := SynthesizeTrace(cfg); err == nil {
			t.Fatalf("bad synth config %d accepted", i)
		}
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	cfg := DefaultSynthTrace(50, 16666)
	sizes, err := SynthesizeTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sizes, "synthetic mpeg-2"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# synthetic mpeg-2\n") {
		t.Fatal("header comment missing")
	}
	back, err := LoadFrameTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sizes) {
		t.Fatalf("round trip %d → %d frames", len(sizes), len(back))
	}
	for i := range back {
		if math.Abs(back[i]-sizes[i]) > 0.5 { // written with %.0f
			t.Fatalf("frame %d: %v vs %v", i, back[i], sizes[i])
		}
	}
}

func TestTraceSizerDrivesStream(t *testing.T) {
	// End-to-end: a synthesized trace feeds a stream through the fabric.
	eng, net := testNet(t, 2, 4, 4)
	sizes, err := SynthesizeTrace(DefaultSynthTrace(30, 1000))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceSizer(sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	net.Sinks[1].OnFrame = func(stream, frame int, at sim.Time) { frames++ }
	var ids uint64
	if _, err := StartStream(eng, net.NIs[0], StreamConfig{
		ID: 1, Class: flit.VBR, Src: 0, Dst: 1, InVC: 0, DstVC: 0,
		FrameBytes: 1000, Interval: 200 * sim.Microsecond,
		MsgFlits: 20, FlitBits: 32, Stop: 30 * 200 * sim.Microsecond,
		Sizer: tr,
	}, rng.New(1), &ids); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if frames != 30 {
		t.Fatalf("delivered %d frames, want 30", frames)
	}
}
