package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/topology"
)

const period = 80 * sim.Nanosecond

func testNet(t *testing.T, ports, vcs, rtVCs int) (*sim.Engine, *topology.Net) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, core.Config{
		Ports: ports, VCs: vcs, RTVCs: rtVCs,
		BufferDepth: 20, StageDepth: 4,
		Policy: sched.VirtualClock, Period: period,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func TestStreamConfigHelpers(t *testing.T) {
	c := StreamConfig{FrameBytes: 16666, Interval: 33 * sim.Millisecond, MsgFlits: 20, FlitBits: 32}
	if got := c.PayloadFlitsPerMsg(); got != 19 {
		t.Fatalf("payload flits %d, want 19 (one header)", got)
	}
	bps := c.NominalBitsPerSec()
	if math.Abs(bps-4.04e6) > 0.01e6 {
		t.Fatalf("nominal rate %.0f, want ≈4.04 Mb/s", bps)
	}
	c.MsgFlits = 1
	if c.PayloadFlitsPerMsg() != 1 {
		t.Fatal("degenerate 1-flit message must carry 1 payload flit")
	}
}

func TestStreamEmitsFramesAtInterval(t *testing.T) {
	eng, net := testNet(t, 2, 4, 4)
	var ids uint64
	var msgs []*flit.Message
	// Capture injections by wrapping the sink's message callback.
	net.Sinks[1].OnMessage = func(m *flit.Message, at sim.Time) { msgs = append(msgs, m) }
	st, err := StartStream(eng, net.NIs[0], StreamConfig{
		ID: 3, Class: flit.CBR, Src: 0, Dst: 1, InVC: 1, DstVC: 2,
		FrameBytes: 1000, Interval: 500 * sim.Microsecond,
		MsgFlits: 20, FlitBits: 32,
		Start: 100 * sim.Microsecond, Stop: 3 * sim.Millisecond,
	}, rng.New(1), &ids)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(5 * sim.Millisecond)
	eng.Drain()
	// Frames at 100µs + k·500µs for k < 6 within [0, 3ms).
	if st.FramesInjected != 6 {
		t.Fatalf("injected %d frames, want 6", st.FramesInjected)
	}
	// CBR frame: 1000 B = 250 payload flits = ceil(250/19) = 14 messages.
	wantMsgs := 14 * 6
	if len(msgs) != wantMsgs {
		t.Fatalf("delivered %d messages, want %d", len(msgs), wantMsgs)
	}
	for _, m := range msgs {
		if m.Class != flit.CBR || m.StreamID != 3 || m.DstVC != 2 {
			t.Fatalf("bad message metadata: %+v", m)
		}
		if m.MsgsInFrame != 14 {
			t.Fatalf("MsgsInFrame %d, want 14", m.MsgsInFrame)
		}
		if m.Vtick <= 0 || m.Vtick == sim.Forever {
			t.Fatalf("real-time message without finite Vtick: %+v", m)
		}
	}
}

func TestStreamMessageSegmentation(t *testing.T) {
	// 1000 B = 250 flits payload: 13 messages of 19 payload (+header = 20
	// wire flits) and a final message with 3 payload (+header = 4 flits).
	eng, net := testNet(t, 2, 4, 4)
	var ids uint64
	var sizes []int
	net.Sinks[1].OnMessage = func(m *flit.Message, at sim.Time) { sizes = append(sizes, m.Flits) }
	if _, err := StartStream(eng, net.NIs[0], StreamConfig{
		ID: 1, Class: flit.CBR, Src: 0, Dst: 1, InVC: 0, DstVC: 0,
		FrameBytes: 1000, Interval: 1 * sim.Millisecond,
		MsgFlits: 20, FlitBits: 32,
		Start: 0, Stop: 500 * sim.Microsecond, // exactly one frame
	}, rng.New(1), &ids); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if len(sizes) != 14 {
		t.Fatalf("messages %d, want 14", len(sizes))
	}
	for i := 0; i < 13; i++ {
		if sizes[i] != 20 {
			t.Fatalf("message %d has %d flits, want 20", i, sizes[i])
		}
	}
	if sizes[13] != 4 {
		t.Fatalf("last message has %d flits, want 4 (3 payload + header)", sizes[13])
	}
}

func TestVBRFrameSizesVary(t *testing.T) {
	eng, net := testNet(t, 2, 4, 4)
	var ids uint64
	counts := map[int]int{} // frame -> messages
	net.Sinks[1].OnMessage = func(m *flit.Message, at sim.Time) { counts[m.FrameSeq]++ }
	if _, err := StartStream(eng, net.NIs[0], StreamConfig{
		ID: 1, Class: flit.VBR, Src: 0, Dst: 1, InVC: 0, DstVC: 0,
		FrameBytes: 2000, FrameBytesSD: 600, Interval: 500 * sim.Microsecond,
		MsgFlits: 20, FlitBits: 32,
		Start: 0, Stop: 10 * sim.Millisecond,
	}, rng.New(7), &ids); err != nil {
		t.Fatal(err)
	}
	eng.Run(12 * sim.Millisecond)
	eng.Drain()
	distinct := map[int]bool{}
	for _, n := range counts {
		distinct[n] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("VBR frame sizes barely vary: message counts %v", counts)
	}
}

func TestStartStreamValidation(t *testing.T) {
	eng, net := testNet(t, 2, 4, 4)
	var ids uint64
	bad := []StreamConfig{
		{Class: flit.VBR, MsgFlits: 0, FlitBits: 32, Interval: 1, FrameBytes: 100},
		{Class: flit.VBR, MsgFlits: 20, FlitBits: 0, Interval: 1, FrameBytes: 100},
		{Class: flit.VBR, MsgFlits: 20, FlitBits: 32, Interval: 0, FrameBytes: 100},
		{Class: flit.BestEffort, MsgFlits: 20, FlitBits: 32, Interval: 1, FrameBytes: 100},
	}
	for i, cfg := range bad {
		if _, err := StartStream(eng, net.NIs[0], cfg, rng.New(1), &ids); err == nil {
			t.Fatalf("bad stream config %d accepted", i)
		}
	}
}

func TestBestEffortSource(t *testing.T) {
	eng, net := testNet(t, 4, 4, 2)
	var ids uint64
	var got []*flit.Message
	for _, s := range net.Sinks {
		s.OnMessage = func(m *flit.Message, at sim.Time) { got = append(got, m) }
	}
	be, err := StartBestEffort(eng, net.NIs[1], BestEffortConfig{
		Node: 1, Nodes: 4, Interval: 10 * sim.Microsecond, MsgFlits: 20,
		VCLo: 2, VCHi: 4, Start: 0, Stop: 1 * sim.Millisecond,
	}, rng.New(5), &ids)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(2 * sim.Millisecond)
	eng.Drain()
	if be.Injected != 100 {
		t.Fatalf("injected %d, want 100", be.Injected)
	}
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	dsts := map[int]bool{}
	for _, m := range got {
		if m.Class != flit.BestEffort || m.Vtick != sim.Forever {
			t.Fatalf("bad best-effort message: %+v", m)
		}
		if m.Dst == 1 {
			t.Fatal("best-effort message sent to self")
		}
		if m.DstVC < 2 || m.DstVC >= 4 {
			t.Fatalf("DstVC %d outside best-effort partition [2,4)", m.DstVC)
		}
		dsts[m.Dst] = true
	}
	if len(dsts) != 3 {
		t.Fatalf("destinations not uniform over other nodes: %v", dsts)
	}
}

func TestStartBestEffortValidation(t *testing.T) {
	eng, net := testNet(t, 2, 4, 2)
	var ids uint64
	bad := []BestEffortConfig{
		{Node: 0, Nodes: 2, Interval: 0, MsgFlits: 20, VCLo: 2, VCHi: 4},
		{Node: 0, Nodes: 2, Interval: 1, MsgFlits: 0, VCLo: 2, VCHi: 4},
		{Node: 0, Nodes: 2, Interval: 1, MsgFlits: 20, VCLo: 2, VCHi: 2},
		{Node: 0, Nodes: 1, Interval: 1, MsgFlits: 20, VCLo: 2, VCHi: 4},
	}
	for i, cfg := range bad {
		if _, err := StartBestEffort(eng, net.NIs[0], cfg, rng.New(1), &ids); err == nil {
			t.Fatalf("bad best-effort config %d accepted", i)
		}
	}
}

func TestMixConfigAccounting(t *testing.T) {
	m := MixConfig{
		Load: 0.8, RTShare: 0.75,
		LinkBitsPerSec: 400e6, FlitBits: 32, MsgFlits: 20,
		FrameBytes: 16666, Interval: 33 * sim.Millisecond,
	}
	// RT load 0.6 of 400 Mb/s over ≈4.04 Mb/s streams → 59 streams.
	if got := m.StreamsPerNode(); got != 59 {
		t.Fatalf("StreamsPerNode = %d, want 59", got)
	}
	// BE load 0.2: 80 Mb/s over 640-bit messages → 125k msgs/s → 8 µs.
	if got := m.BestEffortInterval(); got != 8*sim.Microsecond {
		t.Fatalf("BestEffortInterval = %v, want 8µs", got)
	}
	m.RTShare = 1
	if m.BestEffortInterval() != 0 {
		t.Fatal("pure real-time mix should have no best-effort interval")
	}
}

func TestPartitionVCs(t *testing.T) {
	cases := []struct {
		vcs   int
		share float64
		want  int
	}{
		{16, 0.8, 13},
		{16, 0.5, 8},
		{16, 0.2, 3},
		{16, 1.0, 16},
		{16, 0.0, 0},
		{16, 0.01, 1},  // real-time load present: at least one RT VC
		{16, 0.99, 15}, // best-effort load present: at least one BE VC
		{2, 0.5, 1},
	}
	for _, c := range cases {
		if got := PartitionVCs(c.vcs, c.share); got != c.want {
			t.Fatalf("PartitionVCs(%d, %v) = %d, want %d", c.vcs, c.share, got, c.want)
		}
	}
}

// Property: the partition always leaves at least one VC for each class that
// carries load, and never exceeds the total.
func TestPropertyPartitionVCs(t *testing.T) {
	f := func(vcsRaw uint8, shareRaw uint8) bool {
		vcs := int(vcsRaw%63) + 2
		share := float64(shareRaw) / 255
		rt := PartitionVCs(vcs, share)
		if rt < 0 || rt > vcs {
			return false
		}
		if share > 0 && rt == 0 {
			return false
		}
		if share < 1 && rt == vcs {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBuildsBalancedWorkload(t *testing.T) {
	eng, net := testNet(t, 8, 16, 13)
	w, err := Apply(eng, net, MixConfig{
		Load: 0.8, RTShare: 0.8, Class: flit.VBR,
		LinkBitsPerSec: 400e6, FlitBits: 32, MsgFlits: 20,
		FrameBytes: 16666, FrameBytesSD: 3333, Interval: 33 * sim.Millisecond,
		VCs: 16, RTVCs: 13,
		Stop: 1 * sim.Millisecond, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0.64 RT load → 63 streams per node × 8 nodes.
	if len(w.Streams) != 63*8 {
		t.Fatalf("streams %d, want %d", len(w.Streams), 63*8)
	}
	if len(w.BESources) != 8 {
		t.Fatalf("best-effort sources %d, want 8", len(w.BESources))
	}
	// Input VCs balanced: stream i of a node uses VC i mod 13.
	perVC := map[int]int{}
	for i, s := range w.Streams {
		if s.cfg.Src != i/63 {
			t.Fatalf("stream %d has src %d", i, s.cfg.Src)
		}
		if s.cfg.InVC != (i%63)%13 {
			t.Fatalf("stream %d InVC %d not balanced", i, s.cfg.InVC)
		}
		if s.cfg.DstVC < 0 || s.cfg.DstVC >= 13 {
			t.Fatalf("stream DstVC %d outside RT partition", s.cfg.DstVC)
		}
		if s.cfg.Dst == s.cfg.Src {
			t.Fatal("self-addressed stream")
		}
		perVC[s.cfg.InVC]++
	}
}

func TestApplyValidation(t *testing.T) {
	eng, net := testNet(t, 8, 16, 8)
	base := MixConfig{
		Load: 0.8, RTShare: 0.5, Class: flit.VBR,
		LinkBitsPerSec: 400e6, FlitBits: 32, MsgFlits: 20,
		FrameBytes: 16666, Interval: 33 * sim.Millisecond,
		VCs: 16, RTVCs: 8, Stop: 1, Seed: 1,
	}
	bad := base
	bad.RTVCs = 17
	if _, err := Apply(eng, net, bad); err == nil {
		t.Fatal("RTVCs > VCs accepted")
	}
	bad = base
	bad.RTVCs = 0
	if _, err := Apply(eng, net, bad); err == nil {
		t.Fatal("real-time load with zero RT VCs accepted")
	}
	bad = base
	bad.RTVCs = 16
	if _, err := Apply(eng, net, bad); err == nil {
		t.Fatal("best-effort load with zero BE VCs accepted")
	}
}

func TestApplyPhases(t *testing.T) {
	eng, net := testNet(t, 8, 16, 8)
	interval := 200 * sim.Microsecond
	phase := func(share float64, rtVCs int, from, to sim.Time) MixConfig {
		return MixConfig{
			Load: 0.5, RTShare: share, Class: flit.VBR,
			LinkBitsPerSec: 400e6, FlitBits: 32, MsgFlits: 20,
			FrameBytes: 1000, Interval: interval,
			VCs: 16, RTVCs: rtVCs, Start: from, Stop: to, Seed: 3,
		}
	}
	half := 2 * sim.Millisecond
	w, err := ApplyPhases(eng, net, []MixConfig{
		phase(0.5, 8, 0, half),
		phase(1.0, 8, half, 2*half),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Streams are ≈40 Mb/s each (1000 B per 200 µs). Phase 1: 0.25 RT
	// load → round(2.5) = 3 streams/node; phase 2: 0.5 → 5.
	if len(w.Streams) != (3+5)*8 {
		t.Fatalf("streams %d, want %d", len(w.Streams), (3+5)*8)
	}
	// Stream IDs unique across phases.
	seen := map[int]bool{}
	for _, s := range w.Streams {
		if seen[s.cfg.ID] {
			t.Fatalf("duplicate stream id %d", s.cfg.ID)
		}
		seen[s.cfg.ID] = true
	}
	// Phase 2 streams start within the second window.
	late := 0
	for _, s := range w.Streams {
		if s.cfg.Start >= half {
			late++
		}
	}
	if late != 5*8 {
		t.Fatalf("phase-2 streams %d, want %d", late, 5*8)
	}
	eng.Run(2*half + 2*sim.Millisecond)
	eng.Drain()
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyPhasesValidation(t *testing.T) {
	eng, net := testNet(t, 2, 4, 2)
	if _, err := ApplyPhases(eng, net, nil); err == nil {
		t.Fatal("no phases accepted")
	}
	bad := MixConfig{
		Load: 0.5, RTShare: 1, Class: flit.VBR,
		LinkBitsPerSec: 400e6, FlitBits: 32, MsgFlits: 20,
		FrameBytes: 1000, Interval: sim.Millisecond,
		VCs: 4, RTVCs: 2, Start: 100, Stop: 100, Seed: 1,
	}
	if _, err := ApplyPhases(eng, net, []MixConfig{bad}); err == nil {
		t.Fatal("empty window accepted")
	}
}

// fixedPartition implements Partition for tests.
type fixedPartition struct{ rt, vcs int }

func (p fixedPartition) RTVCs() int { return p.rt }
func (p fixedPartition) VCs() int   { return p.vcs }

func TestBestEffortFollowsPartition(t *testing.T) {
	eng, net := testNet(t, 4, 8, 4)
	var ids uint64
	var got []*flit.Message
	for _, s := range net.Sinks {
		s.OnMessage = func(m *flit.Message, at sim.Time) { got = append(got, m) }
	}
	if _, err := StartBestEffort(eng, net.NIs[0], BestEffortConfig{
		Node: 0, Nodes: 4, Interval: 10 * sim.Microsecond, MsgFlits: 4,
		Partition: fixedPartition{rt: 6, vcs: 8},
		Start:     0, Stop: 500 * sim.Microsecond,
	}, rng.New(8), &ids); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if len(got) == 0 {
		t.Fatal("nothing delivered")
	}
	for _, m := range got {
		if m.DstVC < 6 || m.DstVC >= 8 {
			t.Fatalf("DstVC %d outside live partition [6,8)", m.DstVC)
		}
	}
}

func TestGoPMixProducesStructuredSizes(t *testing.T) {
	eng, net := testNet(t, 8, 8, 8)
	w, err := Apply(eng, net, MixConfig{
		Load: 0.3, RTShare: 1, Class: flit.VBR,
		LinkBitsPerSec: 400e6, FlitBits: 32, MsgFlits: 20,
		FrameBytes: 2000, FrameBytesSD: 400, Interval: 200 * sim.Microsecond,
		VCs: 8, RTVCs: 8, Stop: sim.Millisecond, Seed: 4, GoP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range w.Streams {
		if _, ok := s.cfg.Sizer.(*GoPSizer); !ok {
			t.Fatalf("stream %d sizer %T, want *GoPSizer", s.cfg.ID, s.cfg.Sizer)
		}
	}
	eng.Run(3 * sim.Millisecond)
	eng.Drain()
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRevokeAndResume(t *testing.T) {
	eng, net := testNet(t, 2, 4, 4)
	var ids uint64
	const interval = 500 * sim.Microsecond
	var emitted []int
	st, err := StartStream(eng, net.NIs[0], StreamConfig{
		ID: 7, Class: flit.CBR, Src: 0, Dst: 1, InVC: 1, DstVC: 2,
		FrameBytes: 1000, Interval: interval,
		MsgFlits: 20, FlitBits: 32,
		Start: 0, Stop: 10 * sim.Millisecond,
	}, rng.New(1), &ids)
	if err != nil {
		t.Fatal(err)
	}
	st.OnEmit = func(stream, frame int) { emitted = append(emitted, frame) }

	// Revoke after ~3 frames; the emit chain parks at the next boundary.
	eng.At(sim.Time(3)*interval+interval/2, func() { st.Revoke() })
	eng.Run(6 * interval)
	parkedAt := len(emitted)
	if parkedAt == 0 {
		t.Fatal("no frames emitted before revocation")
	}
	if !st.Revoked() {
		t.Fatal("stream not marked revoked")
	}

	// While revoked, nothing is emitted.
	eng.Run(8 * interval)
	if len(emitted) != parkedAt {
		t.Fatalf("revoked stream emitted %d extra frames", len(emitted)-parkedAt)
	}

	// Resume restarts emission one interval later and frames keep flowing.
	resumeAt := eng.Now()
	st.Resume()
	if st.Revoked() {
		t.Fatal("stream still revoked after Resume")
	}
	eng.Run(resumeAt + 4*interval)
	if len(emitted) <= parkedAt {
		t.Fatal("resumed stream emitted nothing")
	}

	// Resume on a non-parked stream must not double the emit chain: frame
	// counts stay consecutive (each frame observed exactly once).
	st.Resume()
	eng.Drain()
	for i, f := range emitted {
		if f != i {
			t.Fatalf("frame sequence broken at %d: %v", i, emitted[:i+1])
		}
	}
	if got := st.FramesInjected; got != len(emitted) {
		t.Fatalf("FramesInjected %d != %d observed emissions", got, len(emitted))
	}
}
