package network

import (
	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/obs"
	"mediaworm/internal/police"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// msgQueue is an unbounded FIFO of messages with amortized O(1) operations.
type msgQueue struct {
	buf  []*flit.Message
	head int
}

func (q *msgQueue) push(m *flit.Message) { q.buf = append(q.buf, m) }
func (q *msgQueue) empty() bool          { return q.head == len(q.buf) }
func (q *msgQueue) peek() *flit.Message  { return q.buf[q.head] }
func (q *msgQueue) len() int             { return len(q.buf) - q.head }

func (q *msgQueue) pop() *flit.Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return m
}

// maxVCs bounds the stack-allocated candidate array in the NI's hot path.
const maxVCs = 64

// niVC is one virtual channel's injection queue at a network interface.
type niVC struct {
	q    msgQueue
	sent int // flits of the head message already transmitted
	clk  sched.VClock
	// pending caches the Virtual Clock timestamp of the next flit.
	pendingTS   sim.Time
	havePending bool
}

// NI is a source network interface: per-VC unbounded injection queues
// multiplexed onto the node→router physical channel one flit per cycle.
// The injection link's VC multiplexer runs the same scheduling policy as the
// router (see DESIGN.md §7: the paper leaves source serialization
// unspecified; this models the upstream node's stage 5).
type NI struct {
	fab    *Fabric      //mw:snapcover — static wiring, set by newNI
	router *core.Router //mw:snapcover — static wiring, set by newNI
	port   int          //mw:snapcover — static wiring, set by newNI
	// Node is the endpoint identifier this NI injects for.
	Node int //mw:snapcover — endpoint identity, set by newNI
	vcs  []niVC
	arb  sched.Arbiter
	// cands is the arbitration scratch buffer, reused every cycle so the
	// hot path does not allocate.
	cands []sched.Candidate //mw:snapcover — per-cycle scratch

	// Stalls counts cycles where messages were queued but no flit could be
	// sent because every backlogged VC lacked router credit (link waste —
	// instrumentation for tests and capacity analysis).
	Stalls uint64
	// Sent counts transmitted flits.
	Sent uint64
	// Dropped counts flits of dead messages reaped from the injection queues
	// before transmission. The fabric reconciles it against work each cycle.
	Dropped uint64
	// RTFlits and BEFlits count injected flits per class — the offered-load
	// signal dynamic VC partitioning reads.
	RTFlits, BEFlits uint64

	// pol, if set, polices real-time injections: the srTCM meter colors each
	// message by conformance and the WRED dropper may discard it before it
	// ever occupies a virtual channel. Dropped messages never enter the
	// fabric's work ledger — their frames just never finish reassembly.
	pol *police.Policer //mw:snapcover — dynamic state encoded via police.Policer.EncodeState
	// queued tracks the flits currently waiting in the injection queues —
	// the dropper's backlog signal, maintained incrementally so Inject stays
	// O(1).
	queued int //mw:snapcover — recomputed from the restored queues
	// MeterExceed and MeterViolate count real-time messages colored yellow
	// and red by the meter; PoliceDrops counts messages the dropper
	// discarded at injection.
	MeterExceed, MeterViolate, PoliceDrops uint64

	// retx, if set, tracks injected messages for end-to-end retransmission.
	retx *Retransmitter //mw:snapcover — nil when checkpointing: fault runs refuse checkpoints

	// trc is the observability sink (nil = disabled); blocked tracks the
	// open no-credit blocking span on the injection link.
	trc     *obs.Tracer //mw:snapcover — tracing refuses checkpoints
	blocked bool        //mw:snapcover — open blocking span; tracing refuses checkpoints
}

func newNI(f *Fabric, r *core.Router, port, node int) *NI {
	cfg := r.Config()
	if cfg.VCs > maxVCs {
		panic("network: NI supports at most 64 VCs per physical channel")
	}
	ni := f.epa.grabNI()
	ni.fab, ni.router, ni.port, ni.Node = f, r, port, node
	ni.vcs = f.epa.grabVCs(cfg.VCs)
	ni.arb = sched.NewArbiter(cfg.Policy, cfg.Sched)
	ni.cands = f.epa.grabCands(cfg.VCs)
	return ni
}

// Inject queues a whole message on input VC vc at the current instant.
// The caller must have set msg.Injected, msg.Vtick and msg.Flits.
// Under policing, a real-time message may be discarded here — before it is
// queued, before it enters the work ledger — in which case its frame never
// finishes reassembly at the sink and shows up in the delivered-frame ratio.
func (n *NI) Inject(vc int, msg *flit.Message) {
	if msg.Flits <= 0 {
		panic("network: message with no flits")
	}
	if n.pol != nil && msg.Class.RealTime() {
		color, drop := n.pol.Admit(msg.Injected, msg.Flits, n.queued)
		switch color {
		case police.Green:
			// Conforming traffic passes uncounted.
		case police.Yellow:
			n.MeterExceed++
		case police.Red:
			n.MeterViolate++
		}
		if drop {
			n.PoliceDrops++
			if n.trc != nil {
				n.trc.Emit(obs.Event{At: msg.Injected, Kind: obs.EvPolice,
					Router: int16(n.router.ID()), Port: int16(n.port), VC: int16(vc),
					Msg: msg.ID, Class: msg.Class, Arg: int64(color), Seq: int32(msg.Flits)})
			}
			return
		}
	}
	if msg.Class.RealTime() {
		n.RTFlits += uint64(msg.Flits)
	} else {
		n.BEFlits += uint64(msg.Flits)
	}
	n.queued += msg.Flits
	n.vcs[vc].q.push(msg)
	if n.trc != nil {
		n.trc.Emit(obs.Event{At: msg.Injected, Kind: obs.EvInject,
			Router: int16(n.router.ID()), Port: int16(n.port), VC: int16(vc),
			Msg: msg.ID, Class: msg.Class, Arg: int64(msg.Dst), Seq: int32(msg.Flits)})
	}
	n.fab.addWork(msg.Flits)
	if n.retx != nil {
		n.retx.track(n, vc, msg)
	}
}

// SetPolicy replaces the injection link's scheduling discipline (by default
// the NI follows the router's policy). Call before traffic starts.
func (n *NI) SetPolicy(k sched.Kind) {
	n.SetPolicyParams(k, sched.Params{})
}

// SetPolicyParams replaces the injection link's scheduling discipline with
// explicit weight/tier parameters. Call before traffic starts.
func (n *NI) SetPolicyParams(k sched.Kind, p sched.Params) {
	if p.VCs == 0 {
		p.VCs = len(n.vcs)
	}
	n.arb = sched.NewArbiter(k, p)
	if n.trc != nil {
		n.wrapArb()
	}
}

// SetPolicer installs the injection-point meter→dropper chain (nil disables
// policing). Call before traffic starts.
func (n *NI) SetPolicer(p *police.Policer) { n.pol = p }

// Policer returns the installed meter→dropper chain, or nil.
func (n *NI) Policer() *police.Policer { return n.pol }

// observeArb attaches the tracer and wraps the injection multiplexer so
// its decisions are traced. Called by Fabric.SetTracer.
func (n *NI) observeArb(t *obs.Tracer) {
	n.trc = t
	n.wrapArb()
}

// wrapArb (re)wraps the current arbiter with the pick observer.
func (n *NI) wrapArb() {
	id, port := int16(n.router.ID()), int16(n.port)
	n.arb = sched.Observed(n.arb, func(w sched.Candidate, cands int) {
		n.trc.Emit(obs.Event{At: n.fab.lastTick, Kind: obs.EvPickSource,
			Router: id, Port: port, VC: int16(w.VC),
			Arg: obs.TSArg(w.TS), Seq: int32(cands)})
	})
}

// traceStall opens or closes the injection link's no-credit blocking span.
func (n *NI) traceStall(now sim.Time, stalled bool) {
	if n.trc == nil || n.blocked == stalled {
		return
	}
	n.blocked = stalled
	kind := obs.EvUnblock
	if stalled {
		kind = obs.EvBlock
	}
	n.trc.Emit(obs.Event{At: now, Kind: kind, Cause: obs.CauseNoCredit,
		Router: int16(n.router.ID()), Port: int16(n.port), VC: -1})
}

// Backlog returns the number of messages queued across all VCs.
func (n *NI) Backlog() int {
	total := 0
	for v := range n.vcs {
		total += n.vcs[v].q.len()
	}
	return total
}

// Empty reports whether all injection queues have drained.
func (n *NI) Empty() bool {
	for v := range n.vcs {
		if !n.vcs[v].q.empty() {
			return false
		}
	}
	return true
}

// reap drops dead head messages from a VC's injection queue: the flits not
// yet transmitted are counted in Dropped (the router reaps the ones already
// on the wire). Dead messages deeper in the queue are reaped lazily when
// they reach the head.
func (n *NI) reap(nv *niVC) {
	for !nv.q.empty() && nv.q.peek().Dead {
		msg := nv.q.pop()
		n.Dropped += uint64(msg.Flits - nv.sent)
		n.queued -= msg.Flits - nv.sent
		nv.sent = 0
		nv.havePending = false
	}
}

// step transmits at most one flit onto the injection link this cycle.
func (n *NI) step(now sim.Time) {
	cands := n.cands[:0]
	for v := range n.vcs {
		nv := &n.vcs[v]
		n.reap(nv)
		if nv.q.empty() || !n.router.HasCredit(n.port, v) {
			continue
		}
		head := nv.q.peek()
		if !nv.havePending {
			if nv.sent == 0 {
				nv.clk.Reset()
			}
			// All flits of a message "arrive" at this contention point at
			// the injection instant, so the clock argument is Injected.
			nv.pendingTS = nv.clk.Stamp(head.Injected, head.Vtick)
			nv.havePending = true
			if n.trc != nil {
				n.trc.Emit(obs.Event{At: now, Kind: obs.EvVCTick,
					Router: int16(n.router.ID()), Port: int16(n.port), VC: int16(v),
					Msg: head.ID, Class: head.Class, Seq: int32(nv.sent),
					Arg: obs.TSArg(nv.pendingTS)})
			}
		}
		cands = append(cands, sched.Candidate{VC: v, TS: nv.pendingTS, Enq: head.Injected, Seq: uint64(v)})
	}
	n.cands = cands
	if len(cands) == 0 {
		if !n.Empty() {
			n.Stalls++
			n.traceStall(now, true)
		} else {
			n.traceStall(now, false)
		}
		return
	}
	n.traceStall(now, false)
	n.Sent++
	w := cands[n.arb.Pick(cands)].VC
	nv := &n.vcs[w]
	msg := nv.q.peek()
	f := flit.Flit{Msg: msg, Seq: nv.sent, TS: nv.pendingTS, Enq: now + n.fab.Period}
	n.router.Deliver(n.port, w, f)
	nv.sent++
	n.queued--
	nv.havePending = false
	if nv.sent == msg.Flits {
		nv.q.pop()
		nv.sent = 0
	}
}
