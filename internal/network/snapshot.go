package network

import (
	"fmt"
	"sort"

	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
	"mediaworm/internal/snapshot"
)

// Checkpoint support for the fabric layer: NI injection queues, sink
// reassembly state, and the cycle driver. The fault/watchdog/retransmission
// subsystems are not snapshottable in format v1; the top-level checkpoint
// gate refuses configs that enable them, and Fabric.EncodeState re-checks.

// CollectMessages registers every message referenced by the fabric's
// routers and NI injection queues.
func (f *Fabric) CollectMessages(tbl *flit.MsgTable) {
	for _, r := range f.Routers {
		r.CollectMessages(tbl)
	}
	for _, ni := range f.NIs {
		for v := range ni.vcs {
			q := &ni.vcs[v].q
			for i := q.head; i < len(q.buf); i++ {
				tbl.Add(q.buf[i])
			}
		}
	}
}

// BufferedFlits counts every flit the fabric currently accounts in work:
// queued-but-unsent NI flits plus router-buffered flits. After any
// completed cycle this must equal Work() — the flit-conservation audit a
// restore runs before trusting a snapshot.
func (f *Fabric) BufferedFlits() int64 {
	var total int64
	for _, r := range f.Routers {
		total += int64(r.BufferedFlits())
	}
	for _, ni := range f.NIs {
		total += ni.pendingFlits()
	}
	return total
}

// pendingFlits counts the flits of queued messages not yet put on the wire.
func (n *NI) pendingFlits() int64 {
	var total int64
	for v := range n.vcs {
		nv := &n.vcs[v]
		for i := nv.q.head; i < len(nv.q.buf); i++ {
			total += int64(nv.q.buf[i].Flits)
		}
		total -= int64(nv.sent)
	}
	return total
}

// EncodeState writes the fabric's own mutable state (not the routers',
// which encode themselves): the work counter, the cycle driver, and the
// drop-reconciliation baselines.
func (f *Fabric) EncodeState(w *snapshot.Writer) error {
	if f.watchdogLimit > 0 {
		return &snapshot.NotSnapshottableError{Feature: "deadlock watchdog"}
	}
	if f.trc != nil {
		return &snapshot.NotSnapshottableError{Feature: "trace capture"}
	}
	w.I64(f.work)
	w.Bool(f.tickerOn)
	w.Time(f.lastTick)
	if f.tickerOn {
		at, seq, ok := f.Engine.EventKey(f.tickEv)
		if !ok {
			return &snapshot.InvariantError{Invariant: "cycle-driver", Detail: "ticker on but tick event not pending"}
		}
		w.Time(at)
		w.U64(seq)
	}
	w.Int(len(f.lastRouterDrops))
	for _, d := range f.lastRouterDrops {
		w.U64(d)
	}
	w.Int(len(f.lastNIDrops))
	for _, d := range f.lastNIDrops {
		w.U64(d)
	}
	return nil
}

// RestoreState overwrites the fabric's mutable state and re-arms the cycle
// driver at its checkpointed calendar key.
func (f *Fabric) RestoreState(r *snapshot.Reader) error {
	f.work = r.I64()
	f.tickerOn = r.Bool()
	f.lastTick = r.Time()
	if err := r.Err(); err != nil {
		return err
	}
	if f.work < 0 {
		return &snapshot.InvariantError{
			Invariant: "flit-conservation",
			Detail:    fmt.Sprintf("negative in-flight work %d", f.work),
		}
	}
	if f.tickerOn {
		at := r.Time()
		seq := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		f.tickEv = f.Engine.ScheduleRestored(at, seq, f.tickFn)
	}
	nr := r.Len()
	f.lastRouterDrops = f.lastRouterDrops[:0]
	for i := 0; i < nr; i++ {
		f.lastRouterDrops = append(f.lastRouterDrops, r.U64())
	}
	nn := r.Len()
	f.lastNIDrops = f.lastNIDrops[:0]
	for i := 0; i < nn; i++ {
		f.lastNIDrops = append(f.lastNIDrops, r.U64())
	}
	return r.Err()
}

// EncodeState writes one NI's mutable state. Messages must already be
// collected into tbl.
func (n *NI) EncodeState(w *snapshot.Writer, tbl *flit.MsgTable) error {
	if n.retx != nil {
		return &snapshot.NotSnapshottableError{Feature: "retransmission layer"}
	}
	if err := sched.EncodeArbiter(w, n.arb); err != nil {
		return err
	}
	for v := range n.vcs {
		nv := &n.vcs[v]
		w.Int(nv.q.len())
		for i := nv.q.head; i < len(nv.q.buf); i++ {
			w.U64(tbl.Ref(nv.q.buf[i]))
		}
		w.Int(nv.sent)
		sched.EncodeVClock(w, &nv.clk)
		w.Time(nv.pendingTS)
		w.Bool(nv.havePending)
	}
	w.U64(n.Stalls)
	w.U64(n.Sent)
	w.U64(n.Dropped)
	w.U64(n.RTFlits)
	w.U64(n.BEFlits)
	w.U64(n.MeterExceed)
	w.U64(n.MeterViolate)
	w.U64(n.PoliceDrops)
	w.Bool(n.pol != nil)
	if n.pol != nil {
		n.pol.EncodeState(w)
	}
	return tbl.Err()
}

// RestoreState overwrites one NI's mutable state.
func (n *NI) RestoreState(r *snapshot.Reader, tbl *flit.MsgTable) error {
	if err := sched.RestoreArbiter(r, n.arb); err != nil {
		return fmt.Errorf("NI node %d: %w", n.Node, err)
	}
	for v := range n.vcs {
		nv := &n.vcs[v]
		qlen := r.Len()
		nv.q = msgQueue{}
		for i := 0; i < qlen; i++ {
			m, err := tbl.Get(r.U64())
			if err != nil {
				return err
			}
			if m == nil {
				return &snapshot.InvariantError{
					Invariant: "injection-queue",
					Detail:    fmt.Sprintf("NI node %d vc %d: nil message in queue", n.Node, v),
				}
			}
			nv.q.push(m)
		}
		nv.sent = r.Int()
		sched.RestoreVClock(r, &nv.clk)
		nv.pendingTS = r.Time()
		nv.havePending = r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		if nv.sent < 0 || (nv.q.empty() && nv.sent != 0) ||
			(!nv.q.empty() && nv.sent >= nv.q.peek().Flits) {
			return &snapshot.InvariantError{
				Invariant: "injection-progress",
				Detail:    fmt.Sprintf("NI node %d vc %d: sent %d", n.Node, v, nv.sent),
			}
		}
	}
	n.Stalls = r.U64()
	n.Sent = r.U64()
	n.Dropped = r.U64()
	n.RTFlits = r.U64()
	n.BEFlits = r.U64()
	n.MeterExceed = r.U64()
	n.MeterViolate = r.U64()
	n.PoliceDrops = r.U64()
	policed := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if policed != (n.pol != nil) {
		return &snapshot.InvariantError{
			Invariant: "policer",
			Detail: fmt.Sprintf("NI node %d: snapshot policing=%v, live configuration policing=%v",
				n.Node, policed, n.pol != nil),
		}
	}
	if policed {
		if err := n.pol.RestoreState(r); err != nil {
			return err
		}
	}
	// The backlog signal is derived state: recompute it from the restored
	// queues rather than trusting the snapshot.
	n.queued = int(n.pendingFlits())
	return r.Err()
}

// EncodeState writes one sink's reassembly state, with the partial-frame
// map emitted in key order so the byte stream is deterministic.
func (s *Sink) EncodeState(w *snapshot.Writer) error {
	if s.retx != nil {
		return &snapshot.NotSnapshottableError{Feature: "retransmission layer"}
	}
	keys := make([]uint64, 0, len(s.frames))
	for k := range s.frames {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		w.U64(k)
		w.Int(s.frames[k])
	}
	w.U64(s.FlitsReceived)
	w.U64(s.MessagesReceived)
	return nil
}

// RestoreState overwrites one sink's reassembly state.
func (s *Sink) RestoreState(r *snapshot.Reader) error {
	n := r.Len()
	s.frames = make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		k := r.U64()
		rem := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if rem <= 0 {
			return &snapshot.InvariantError{
				Invariant: "frame-reassembly",
				Detail:    fmt.Sprintf("sink node %d: frame %#x with %d messages outstanding", s.Node, k, rem),
			}
		}
		if _, dup := s.frames[k]; dup {
			return &snapshot.InvariantError{
				Invariant: "frame-reassembly",
				Detail:    fmt.Sprintf("sink node %d: duplicate frame key %#x", s.Node, k),
			}
		}
		s.frames[k] = rem
	}
	s.FlitsReceived = r.U64()
	s.MessagesReceived = r.U64()
	return r.Err()
}
