package network_test

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/topology"
	"mediaworm/internal/traffic"
)

// capacityRun drives a single-switch mix for a fixed window and returns the
// aggregate NI sent/stall fractions and mean grant wait in cycles.
func capacityRun(t *testing.T, load, rtShare float64, spanIntervals int) (sent, stalled, grantWait float64, backlog int) {
	t.Helper()
	eng := sim.NewEngine()
	vcs := 16
	rt := traffic.PartitionVCs(vcs, rtShare)
	cfg := baseCfg(sched.VirtualClock, vcs, rt)
	net, err := topology.SingleSwitch(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := sim.Time(spanIntervals) * tInterval
	mix := traffic.MixConfig{
		Load: load, RTShare: rtShare, Class: flit.VBR,
		LinkBitsPerSec: 400e6, FlitBits: 32, MsgFlits: 20,
		FrameBytes: tFrameBytes, FrameBytesSD: tFrameBytes / 5,
		Interval: tInterval, VCs: vcs, RTVCs: rt,
		Stop: stop, Seed: 12345,
	}
	if _, err := traffic.Apply(eng, net, mix); err != nil {
		t.Fatal(err)
	}
	eng.Run(stop)
	var sentN, stallN uint64
	for _, ni := range net.NIs {
		sentN += ni.Sent
		stallN += ni.Stalls
		backlog += ni.Backlog()
	}
	cycles := float64(uint64(stop/tPeriod) * 8)
	s := net.Routers[0].Stats()
	gw := 0.0
	if s.GrantWaitCount > 0 {
		gw = float64(s.GrantWait) / float64(s.GrantWaitCount) / float64(tPeriod)
	}
	return float64(sentN) / cycles, float64(stallN) / cycles, gw, backlog
}

// These are capacity regression anchors: the switch-allocation and
// VC-sharing design (DESIGN.md §3) must keep the fabric serving ≥0.93 of
// link bandwidth under the paper's hardest stable operating points. They
// guard against reintroducing the serialization collapses found during
// development (message-granularity crossbar holds, exclusive endpoint VCs,
// greedy-only matching).

func TestCapacityPureBestEffort(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sent, _, _, backlog := capacityRun(t, 0.95, 0, 8)
	if sent < 0.93 {
		t.Fatalf("pure best-effort throughput %.3f at 0.95 offered, want ≥0.93", sent)
	}
	// The backlog must stay bounded (hundreds of messages means stable).
	if backlog > 2000 {
		t.Fatalf("backlog %d messages at 0.95 load: unstable", backlog)
	}
}

func TestCapacityMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sent, _, _, _ := capacityRun(t, 0.90, 0.5, 12)
	// Offered ≈ 0.92 wire (5% real-time header overhead on half the load);
	// the window includes the start-up ramp, so the average runs a little
	// below steady state. The pre-fix serialization collapses measured
	// ≈0.62 here.
	if sent < 0.86 {
		t.Fatalf("50:50 mixed throughput %.3f at 0.90 offered, want ≥0.86", sent)
	}
}

func TestGrantWaitStaysSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	_, _, gw, _ := capacityRun(t, 0.90, 0.5, 6)
	// Shared endpoint VCs make allocation near-immediate; a regression to
	// per-message VC holds pushes this to ~80 cycles.
	if gw > 5 {
		t.Fatalf("mean VC-allocation wait %.1f cycles, want ≤5", gw)
	}
}
