package network_test

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/topology"
)

func TestDynamicPartitionTracksMix(t *testing.T) {
	eng := sim.NewEngine()
	cfg := baseCfg(sched.VirtualClock, 16, 8)
	net, err := topology.SingleSwitch(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := 10 * sim.Millisecond
	dp := network.NewDynamicPartition(net.Fabric, 500*sim.Microsecond, stop, 8)
	if dp.RTVCs() != 8 || dp.VCs() != 16 {
		t.Fatalf("initial partition %d/%d", dp.RTVCs(), dp.VCs())
	}

	// Inject a heavily best-effort-skewed load: 1 RT message per 10 BE.
	var id uint64
	inject := func(at sim.Time, class flit.Class, vc int) {
		id++
		m := &flit.Message{
			ID: id, StreamID: int(id), Class: class, MsgsInFrame: 1,
			Flits: 20, Vtick: 8000, Dst: 1, DstVC: vc,
		}
		if class == flit.BestEffort {
			m.Vtick = sim.Forever
		}
		eng.At(at, func() {
			m.Injected = eng.Now()
			net.NIs[0].Inject(vc, m)
		})
	}
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * 20 * sim.Microsecond
		if i%10 == 0 {
			inject(at, flit.VBR, 0)
		} else {
			inject(at, flit.BestEffort, 12)
		}
	}
	eng.Run(stop)
	eng.Drain()
	if dp.Adjustments == 0 {
		t.Fatal("controller never adjusted under a skewed mix")
	}
	if dp.RTVCs() >= 8 {
		t.Fatalf("partition %d did not shrink toward the 10%% RT mix", dp.RTVCs())
	}
	if dp.RTVCs() < 1 {
		t.Fatal("MinPerClass violated")
	}
	// Routers follow the controller.
	if got := net.Routers[0].RTVCs(); got != dp.RTVCs() {
		t.Fatalf("router partition %d ≠ controller %d", got, dp.RTVCs())
	}
}

func TestDynamicPartitionStopsAtDeadline(t *testing.T) {
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, baseCfg(sched.VirtualClock, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	stop := 1 * sim.Millisecond
	network.NewDynamicPartition(net.Fabric, 100*sim.Microsecond, stop, 4)
	// The engine must drain: the controller quiesces at stop.
	end := eng.Drain()
	if end >= stop {
		t.Fatalf("controller events past the deadline: last at %v", end)
	}
}

func TestDynamicPartitionValidation(t *testing.T) {
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, baseCfg(sched.VirtualClock, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("bad initial", func() { network.NewDynamicPartition(net.Fabric, 1, 1000, 99) })
	expectPanic("bad interval", func() { network.NewDynamicPartition(net.Fabric, 0, 1000, 4) })
	empty := network.NewFabric(sim.NewEngine(), 80)
	expectPanic("empty fabric", func() { network.NewDynamicPartition(empty, 1, 1000, 0) })
}

func TestSetRTVCsBounds(t *testing.T) {
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, baseCfg(sched.VirtualClock, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	r := net.Routers[0]
	r.SetRTVCs(0)
	r.SetRTVCs(8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SetRTVCs did not panic")
		}
	}()
	r.SetRTVCs(9)
}

func TestDeadEnd(t *testing.T) {
	var d network.DeadEnd
	if d.HasCredit(0) {
		t.Fatal("dead end granted credit")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("accepting on a dead end did not panic")
		}
	}()
	d.Accept(0, flit.Flit{})
}
