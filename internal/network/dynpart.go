package network

import (
	"math"

	"mediaworm/internal/sim"
)

// DynamicPartition implements the paper's §6 direction of "dynamic mixes
// with dynamically partitioned resources": instead of the static x:y VC
// split of §4.2.3, it periodically re-divides every router's virtual
// channels in proportion to the observed real-time / best-effort offered
// load (measured at the NIs) with exponential smoothing.
//
// It also satisfies the traffic layer's Partition interface, so best-effort
// sources draw their per-message VCs from the current best-effort range.
type DynamicPartition struct {
	fab      *Fabric
	interval sim.Time
	stop     sim.Time
	// smoothing factor for the observed class rates, in (0, 1].
	alpha float64
	// MinPerClass guarantees each class keeps at least this many VCs while
	// it carries load.
	MinPerClass int

	vcs     int
	current int // current RT partition size

	tickFn func()    // cached method value so rescheduling does not allocate
	tickEv sim.Event // live tick event, rearmed in place via Reschedule

	lastRT, lastBE uint64
	rateRT, rateBE float64

	// Adjustments counts partition changes (instrumentation).
	Adjustments int
}

// NewDynamicPartition attaches a controller to the fabric, re-evaluating
// every interval until stop (the controller must quiesce for the engine to
// drain). initialRT is the starting real-time share of VCs.
func NewDynamicPartition(f *Fabric, interval, stop sim.Time, initialRT int) *DynamicPartition {
	if len(f.Routers) == 0 {
		panic("network: dynamic partition on an empty fabric")
	}
	vcs := f.Routers[0].Config().VCs
	if initialRT < 0 || initialRT > vcs {
		panic("network: initial partition out of range")
	}
	if interval <= 0 {
		panic("network: non-positive partition interval")
	}
	dp := &DynamicPartition{
		fab:         f,
		interval:    interval,
		stop:        stop,
		alpha:       0.8,
		MinPerClass: 1,
		vcs:         vcs,
		current:     initialRT,
	}
	dp.apply(initialRT)
	dp.tickFn = dp.tick
	dp.tickEv = f.Engine.After(interval, dp.tickFn)
	return dp
}

// RTVCs implements traffic.Partition.
func (dp *DynamicPartition) RTVCs() int { return dp.current }

// VCs implements traffic.Partition.
func (dp *DynamicPartition) VCs() int { return dp.vcs }

func (dp *DynamicPartition) apply(rt int) {
	for _, r := range dp.fab.Routers {
		r.SetRTVCs(rt)
	}
	dp.current = rt
}

func (dp *DynamicPartition) tick() {
	var rt, be uint64
	for _, ni := range dp.fab.NIs {
		rt += ni.RTFlits
		be += ni.BEFlits
	}
	dRT := float64(rt - dp.lastRT)
	dBE := float64(be - dp.lastBE)
	dp.lastRT, dp.lastBE = rt, be
	dp.rateRT = dp.alpha*dRT + (1-dp.alpha)*dp.rateRT
	dp.rateBE = dp.alpha*dBE + (1-dp.alpha)*dp.rateBE

	total := dp.rateRT + dp.rateBE
	if total > 0 {
		want := int(math.Round(float64(dp.vcs) * dp.rateRT / total))
		if dp.rateRT > 0 && want < dp.MinPerClass {
			want = dp.MinPerClass
		}
		if dp.rateBE > 0 && want > dp.vcs-dp.MinPerClass {
			want = dp.vcs - dp.MinPerClass
		}
		if want != dp.current {
			dp.apply(want)
			dp.Adjustments++
		}
	}
	if dp.fab.Engine.Now()+dp.interval < dp.stop {
		dp.tickEv = dp.fab.Engine.Reschedule(dp.tickEv, dp.fab.Engine.Now()+dp.interval)
	}
}
