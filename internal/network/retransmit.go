package network

import (
	"mediaworm/internal/flit"
	"mediaworm/internal/obs"
	"mediaworm/internal/sim"
)

// Retransmitter provides NI-level end-to-end message recovery: every injected
// message is tracked until its tail flit reaches the destination sink. If the
// acknowledgement does not arrive within the timeout, the in-flight attempt
// is killed (its worm unravels, reclaiming buffers and VCs) and a fresh copy
// is injected at the same NI. The timeout grows by capped exponential backoff
// per attempt, and after MaxAttempts the message is abandoned.
//
// The model is deliberately idealized — acknowledgements are free and instant
// (the simulated fabric's delivery event IS the ack) — because the object of
// study is the fabric's QoS under faults, not an ack protocol.
type Retransmitter struct {
	engine *sim.Engine

	// Timeout is the base end-to-end delivery deadline for attempt 0.
	Timeout sim.Time
	// MaxTimeout caps the exponential backoff (0 means uncapped).
	MaxTimeout sim.Time
	// MaxAttempts bounds total tries per message (first send included).
	// After MaxAttempts timeouts the message is abandoned.
	MaxAttempts int

	// Retransmissions counts resends; Abandoned counts messages given up on;
	// Recovered counts messages delivered on a retry (Attempt > 0).
	Retransmissions uint64
	Abandoned       uint64
	Recovered       uint64

	pending map[uint64]*retxState
}

// retxState tracks one in-flight message (the current attempt only).
type retxState struct {
	ni    *NI
	vc    int
	msg   *flit.Message
	timer sim.Event
}

// NewRetransmitter creates a retransmitter and attaches it to every NI and
// sink currently registered with the fabric. Call after the fabric is wired
// and before traffic starts.
func NewRetransmitter(f *Fabric, timeout sim.Time, maxAttempts int) *Retransmitter {
	if timeout <= 0 {
		panic("network: non-positive retransmission timeout")
	}
	if maxAttempts < 1 {
		panic("network: retransmitter needs at least one attempt")
	}
	rt := &Retransmitter{
		engine:      f.Engine,
		Timeout:     timeout,
		MaxTimeout:  timeout * 8,
		MaxAttempts: maxAttempts,
		pending:     make(map[uint64]*retxState),
	}
	for _, ni := range f.NIs {
		ni.retx = rt
	}
	for _, sink := range f.Sinks {
		sink.retx = rt
	}
	return rt
}

// Pending returns the number of messages awaiting acknowledgement.
func (rt *Retransmitter) Pending() int { return len(rt.pending) }

// timeoutFor returns the deadline for the given attempt number, with
// exponential backoff capped at MaxTimeout.
func (rt *Retransmitter) timeoutFor(attempt int) sim.Time {
	t := rt.Timeout
	for i := 0; i < attempt; i++ {
		t *= 2
		if rt.MaxTimeout > 0 && t >= rt.MaxTimeout {
			return rt.MaxTimeout
		}
	}
	return t
}

// track registers an injected message and arms its delivery timer. Called by
// NI.Inject for both original sends and resends (the resend path re-enters
// Inject), so an existing entry for the ID is simply rearmed.
func (rt *Retransmitter) track(ni *NI, vc int, msg *flit.Message) {
	st := rt.pending[msg.ID]
	if st == nil {
		st = &retxState{}
		rt.pending[msg.ID] = st
	}
	st.ni, st.vc, st.msg = ni, vc, msg
	if st.timer.Scheduled() {
		// Rearm in place: the pending timer's callback already captures this
		// message ID, so the resend path costs no new closure.
		st.timer = rt.engine.Reschedule(st.timer, rt.engine.Now()+rt.timeoutFor(msg.Attempt))
		return
	}
	id := msg.ID
	st.timer = rt.engine.After(rt.timeoutFor(msg.Attempt), func() { rt.expire(id) })
}

// ack records a tail delivery: the message is done, its timer cancelled.
func (rt *Retransmitter) ack(msg *flit.Message) {
	st, ok := rt.pending[msg.ID]
	if !ok || st.msg != msg {
		// Unknown, or a stale attempt's tail (cannot normally happen — dead
		// worms are reaped before transmission — but be safe).
		return
	}
	rt.engine.Cancel(st.timer)
	delete(rt.pending, msg.ID)
	if msg.Attempt > 0 {
		rt.Recovered++
	}
}

// expire fires when a message's delivery deadline passes: kill the current
// attempt so its worm unravels, and either inject a fresh copy or abandon.
func (rt *Retransmitter) expire(id uint64) {
	st, ok := rt.pending[id]
	if !ok {
		return
	}
	st.timer = sim.Event{}
	st.msg.Kill()
	trc := st.ni.trc
	if trc != nil {
		trc.Emit(obs.Event{At: rt.engine.Now(), Kind: obs.EvKill,
			Cause: obs.CauseTimeout, Router: int16(st.ni.router.ID()),
			Port: int16(st.ni.port), VC: int16(st.vc),
			Msg: st.msg.ID, Class: st.msg.Class, Seq: int32(st.msg.Attempt)})
	}
	// The kill leaves a worm to unravel; restart the cycle driver in case
	// the watchdog had stopped it.
	st.ni.fab.Wake()
	if st.msg.Attempt+1 >= rt.MaxAttempts {
		delete(rt.pending, id)
		rt.Abandoned++
		if trc != nil {
			trc.Emit(obs.Event{At: rt.engine.Now(), Kind: obs.EvAbandon,
				Router: int16(st.ni.router.ID()), Port: int16(st.ni.port),
				VC: int16(st.vc), Msg: st.msg.ID, Class: st.msg.Class,
				Seq: int32(st.msg.Attempt)})
		}
		return
	}
	rt.Retransmissions++
	if trc != nil {
		trc.Emit(obs.Event{At: rt.engine.Now(), Kind: obs.EvRetransmit,
			Router: int16(st.ni.router.ID()), Port: int16(st.ni.port),
			VC: int16(st.vc), Msg: st.msg.ID, Class: st.msg.Class,
			Seq: int32(st.msg.Attempt + 1)})
	}
	clone := *st.msg
	clone.Dead = false
	clone.Attempt++
	clone.Injected = rt.engine.Now()
	// Inject re-enters track, which rearms the timer with backoff.
	st.ni.Inject(st.vc, &clone)
}
