// Package network assembles MediaWorm routers, network interfaces (NIs),
// links and sinks into a running fabric. It owns the cycle driver: a single
// self-rescheduling engine event advances every router and NI one cycle at a
// time while any flit is in flight, and goes dormant when the fabric drains,
// so the long idle gaps between video frames cost nothing.
package network

import (
	"fmt"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/obs"
	"mediaworm/internal/sim"
)

// Fabric is a set of routers, NIs and sinks sharing one clock.
type Fabric struct {
	Engine *sim.Engine //mw:snapcover — clock serialized by the top-level secClock section
	Period sim.Time    //mw:snapcover — derived from router config at construction

	Routers []*core.Router //mw:snapcover — serialized element-wise by the secRouters checkpoint section
	NIs     []*NI          //mw:snapcover — serialized element-wise by the secNIs checkpoint section
	Sinks   []*Sink        //mw:snapcover — serialized element-wise by the secSinks checkpoint section

	work     int64 // flits currently inside the fabric (NI queues included)
	tickerOn bool
	lastTick sim.Time
	tickFn   func()    //mw:snapcover — cached method value, recreated at construction
	tickEv   sim.Event //mw:snapcover — calendar key serialized by EncodeState; re-armed via ScheduleRestored

	// links records router-to-router wiring: output (router, port) → input
	// (router, port). The watchdog follows it to chain blocked worms across
	// routers into a wait-for cycle.
	links map[linkKey]linkKey //mw:snapcover — static wiring, rebuilt by Connect

	// Fault/resilience state. Drops are reconciled against work each cycle:
	// routers and NIs count reaped flits, and the fabric subtracts the
	// deltas so injected = delivered + dropped + in-flight always holds.
	lastRouterDrops []uint64
	lastNIDrops     []uint64

	// Watchdog state (SetWatchdog). lastMotion snapshots the fabric-wide
	// progress counter; idleTicks counts cycles with work but no motion.
	watchdogLimit   int    //mw:snapcover — watchdog state; fault runs refuse checkpoints
	watchdogRecover bool   //mw:snapcover — watchdog state; fault runs refuse checkpoints
	lastMotion      uint64 //mw:snapcover — watchdog state; fault runs refuse checkpoints
	idleTicks       int    //mw:snapcover — watchdog state; fault runs refuse checkpoints

	// Deadlock is the first watchdog report (nil if it never tripped);
	// Deadlocks counts trips, DeadlocksBroken recovery kills.
	Deadlock        *DeadlockReport //mw:snapcover — deadlock reporting; fault runs refuse checkpoints
	Deadlocks       int             //mw:snapcover — deadlock reporting; fault runs refuse checkpoints
	DeadlocksBroken int             //mw:snapcover — deadlock reporting; fault runs refuse checkpoints
	// OnDeadlock, if set, observes every watchdog trip.
	OnDeadlock func(*DeadlockReport) //mw:snapcover — observer callback, rewired by the embedding run

	// trc is the observability sink (nil = tracing disabled).
	trc *obs.Tracer //mw:snapcover — tracing refuses checkpoints

	// epa, if reserved, backs NI/sink state with struct-of-arrays slabs.
	epa *EndpointArena //mw:snapcover — construction-time backing store; carving happens only in AttachEndpoint
}

type linkKey struct {
	r    *core.Router
	port int
}

// NewFabric creates an empty fabric with the given cycle period.
func NewFabric(engine *sim.Engine, period sim.Time) *Fabric {
	if period <= 0 {
		panic("network: non-positive period")
	}
	f := &Fabric{Engine: engine, Period: period, lastTick: -1, links: make(map[linkKey]linkKey)}
	f.tickFn = f.tick
	return f
}

// AddRouter registers a router with the fabric. Routers step in registration
// order each cycle, so registration order is part of the deterministic model.
func (f *Fabric) AddRouter(r *core.Router) {
	f.Routers = append(f.Routers, r)
}

// ReserveEndpoints preallocates struct-of-arrays slabs for the given number
// of endpoints (with vcs injection VCs each); subsequent AttachEndpoint
// calls carve from the slabs instead of allocating per endpoint. Call before
// the first AttachEndpoint; reserving is optional and over-attachment falls
// back to private allocations.
func (f *Fabric) ReserveEndpoints(endpoints, vcs int) {
	f.epa = NewEndpointArena(endpoints, vcs)
}

// AttachEndpoint wires endpoint node onto router r's port p: a fresh NI
// feeding the input side and a fresh Sink consuming the output side.
func (f *Fabric) AttachEndpoint(r *core.Router, port, node int) (*NI, *Sink) {
	sink := f.epa.grabSink()
	sink.fab, sink.Node, sink.router, sink.port = f, node, r.ID(), port
	r.Connect(port, sink, true)
	ni := newNI(f, r, port, node)
	f.NIs = append(f.NIs, ni)
	f.Sinks = append(f.Sinks, sink)
	return ni, sink
}

// Link connects router a's output port ap to router b's input port bp
// (one direction; call twice for a bidirectional channel).
func (f *Fabric) Link(a *core.Router, ap int, b *core.Router, bp int) {
	a.Connect(ap, &routerInput{r: b, port: bp}, false)
	f.links[linkKey{a, ap}] = linkKey{b, bp}
}

// routerInput adapts a router's input port to the core.Consumer interface.
type routerInput struct {
	r    *core.Router
	port int
}

func (ri *routerInput) HasCredit(vc int) bool      { return ri.r.HasCredit(ri.port, vc) }
func (ri *routerInput) Accept(vc int, f flit.Flit) { ri.r.Deliver(ri.port, vc, f) }

// SetTracer attaches the observability sink: NI arbitrations, injections,
// ejections and watchdog verdicts are traced, and the tracer's periodic
// metrics snapshots are driven from the fabric's cycle. Call after wiring
// (the routers already carry the tracer via their core.Config) and before
// traffic starts. A nil tracer is a no-op.
func (f *Fabric) SetTracer(t *obs.Tracer) {
	if !t.Enabled() {
		return
	}
	f.trc = t
	for _, ni := range f.NIs {
		ni.observeArb(t)
	}
}

// addWork accounts flits entering the fabric and wakes the cycle driver.
func (f *Fabric) addWork(flits int) {
	f.work += int64(flits)
	f.wake()
}

// wake (re)starts the cycle driver aligned to the next cycle boundary.
func (f *Fabric) wake() {
	if f.tickerOn {
		return
	}
	f.tickerOn = true
	now := f.Engine.Now()
	next := now - now%f.Period
	if next < now || f.lastTick == next {
		next += f.Period
	}
	f.tickEv = f.Engine.At(next, f.tickFn)
}

// Wake restarts the cycle driver if it is dormant — the fault injector calls
// it when lifting a stall or restoring a link so a watchdog-stopped fabric
// resumes.
func (f *Fabric) Wake() {
	if f.work > 0 {
		f.wake()
	}
}

// tick advances the whole fabric one cycle: routers first (in registration
// order), then NIs. Credits freed by a router's switch traversal are visible
// to NIs within the same cycle; flits put on wires arrive next cycle.
func (f *Fabric) tick() {
	now := f.Engine.Now()
	f.lastTick = now
	for _, r := range f.Routers {
		r.Step(now)
	}
	for _, ni := range f.NIs {
		ni.step(now)
	}
	f.reconcileDrops()
	f.trc.Tick(now)
	if f.watchdogLimit > 0 && f.work > 0 && f.watchdogTrip(now) {
		f.tickerOn = false
		return
	}
	if f.work > 0 {
		// Rearm the firing tick in place: same slot, same callback, no
		// allocation. A dormant fabric drops the event; wake arms a new one.
		f.tickEv = f.Engine.Reschedule(f.tickEv, now+f.Period)
	} else {
		f.tickerOn = false
	}
}

// reconcileDrops subtracts newly reaped flits (dead-message unraveling,
// corruption, unroutable kills) from the in-flight work counter. Routers and
// NIs own the drop counters; the fabric only reads the deltas, so every drop
// path shares one accounting surface.
func (f *Fabric) reconcileDrops() {
	for len(f.lastRouterDrops) < len(f.Routers) {
		f.lastRouterDrops = append(f.lastRouterDrops, 0)
	}
	for len(f.lastNIDrops) < len(f.NIs) {
		f.lastNIDrops = append(f.lastNIDrops, 0)
	}
	for i, r := range f.Routers {
		if d := r.Stats().FlitsDropped; d != f.lastRouterDrops[i] {
			f.work -= int64(d - f.lastRouterDrops[i])
			f.lastRouterDrops[i] = d
		}
	}
	for i, ni := range f.NIs {
		if d := ni.Dropped; d != f.lastNIDrops[i] {
			f.work -= int64(d - f.lastNIDrops[i])
			f.lastNIDrops[i] = d
		}
	}
	if f.work < 0 {
		panic("network: flit conservation violated (work went negative)")
	}
}

// DroppedFlits returns the total flits reaped so far across routers and NIs.
func (f *Fabric) DroppedFlits() uint64 {
	var total uint64
	for _, r := range f.Routers {
		total += r.Stats().FlitsDropped
	}
	for _, ni := range f.NIs {
		total += ni.Dropped
	}
	return total
}

// Work returns the number of flits currently inside the fabric.
func (f *Fabric) Work() int64 { return f.work }

// CheckDrained verifies the conservation invariant after a drained run:
// no work, every router quiesced, every NI empty. It returns an error
// describing the first violation.
func (f *Fabric) CheckDrained() error {
	if f.work != 0 {
		return fmt.Errorf("network: %d flits unaccounted for", f.work)
	}
	for i, r := range f.Routers {
		if !r.Quiesced() {
			return fmt.Errorf("network: router %d not quiesced", i)
		}
	}
	for i, ni := range f.NIs {
		if !ni.Empty() {
			return fmt.Errorf("network: NI %d not empty", i)
		}
	}
	return nil
}
