package network

import (
	"testing"

	"mediaworm/internal/flit"
)

// TestMsgQueueHeadCompaction exercises pop's compaction branch (head > 64
// with the live region at most half the buffer) under a push/pop pattern
// that crosses the threshold repeatedly, checking FIFO order and contents
// survive every compaction. Retransmission re-enqueues messages through
// this queue, so silent corruption here would resend the wrong worm.
func TestMsgQueueHeadCompaction(t *testing.T) {
	var q msgQueue
	mk := func(id uint64) *flit.Message { return &flit.Message{ID: id} }

	var next, popped uint64
	expect := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if q.empty() {
				t.Fatalf("queue empty before message %d", popped)
			}
			if got := q.peek(); got.ID != popped {
				t.Fatalf("peek returned id %d, want %d (head=%d, cap=%d)",
					got.ID, popped, q.head, len(q.buf))
			}
			if got := q.pop(); got.ID != popped {
				t.Fatalf("pop returned id %d, want %d", got.ID, popped)
			}
			popped++
		}
	}

	// Phase 1: drive head well past 64 while keeping the queue deep enough
	// that head*2 < len(buf) defers compaction, then drain until it fires.
	for i := 0; i < 300; i++ {
		q.push(mk(next))
		next++
	}
	expect(100) // head reaches 100 > 64; live region 200 ⇒ no compaction yet
	if q.head == 0 {
		t.Fatal("compaction fired too early: head*2 < len(buf)")
	}
	expect(60) // head reaches 150 ≥ half of 300 mid-way ⇒ compaction fires
	if len(q.buf) >= 300 {
		t.Fatalf("compaction did not fire: head=%d, len=%d", q.head, len(q.buf))
	}
	if q.len() != 140 {
		t.Fatalf("post-compaction length %d, want 140", q.len())
	}

	// Phase 2: interleave pushes with pops so the threshold is crossed
	// again with fresh tail content appended after a compaction.
	for i := 0; i < 200; i++ {
		q.push(mk(next))
		next++
		expect(1)
		if i%3 == 0 {
			q.push(mk(next))
			next++
		}
	}
	// Drain completely: every remaining message still in order.
	expect(q.len())
	if !q.empty() || q.len() != 0 {
		t.Fatalf("queue not empty after drain: len=%d", q.len())
	}
	if popped != next {
		t.Fatalf("popped %d of %d pushed messages", popped, next)
	}

	// Phase 3: reuse after full drain.
	q.push(mk(next))
	if got := q.pop(); got.ID != next {
		t.Fatalf("post-drain reuse returned id %d, want %d", got.ID, next)
	}
}
