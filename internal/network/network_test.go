package network_test

import (
	"math"
	"testing"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/stats"
	"mediaworm/internal/topology"
	"mediaworm/internal/traffic"
)

// Scaled-down workload for fast tests: 10x smaller frames and intervals keep
// the per-stream rate at ~4 Mbps while fitting many frames into a short run.
const (
	tFrameBytes = 1666.0
	tInterval   = 3300 * sim.Microsecond
	tPeriod     = 80 * sim.Nanosecond // 32-bit flits at 400 Mbps
)

func baseCfg(policy sched.Kind, vcs, rtVCs int) core.Config {
	return core.Config{
		Ports:       8,
		VCs:         vcs,
		RTVCs:       rtVCs,
		BufferDepth: 20,
		StageDepth:  4,
		Policy:      policy,
		Period:      tPeriod,
	}
}

type measured struct {
	intervals *stats.IntervalTracker
	be        *stats.BestEffort
}

// runMix builds a single-switch (or fat-mesh) net, applies the mix, runs to
// stop plus drain, and returns the measurements.
func runMix(t *testing.T, fatMesh bool, policy sched.Kind, load, rtShare float64, vcs int, stop sim.Time) (*topology.Net, measured) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := baseCfg(policy, vcs, traffic.PartitionVCs(vcs, rtShare))
	var net *topology.Net
	var err error
	if fatMesh {
		net, err = topology.FatMesh2x2(eng, cfg)
	} else {
		net, err = topology.SingleSwitch(eng, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	warmup := stop / 4
	m := measured{
		intervals: stats.NewIntervalTracker(warmup),
		be:        stats.NewBestEffort(warmup),
	}
	for _, s := range net.Sinks {
		s.OnFrame = func(stream, frame int, at sim.Time) { m.intervals.Observe(stream, at) }
		s.OnMessage = func(msg *flit.Message, at sim.Time) {
			if msg.Class == flit.BestEffort {
				m.be.Delivered(msg.Injected, at)
			}
		}
	}
	mix := traffic.MixConfig{
		Load:           load,
		RTShare:        rtShare,
		Class:          flit.VBR,
		LinkBitsPerSec: 400e6,
		FlitBits:       32,
		MsgFlits:       20,
		FrameBytes:     tFrameBytes,
		FrameBytesSD:   tFrameBytes / 5,
		Interval:       tInterval,
		VCs:            vcs,
		RTVCs:          cfg.RTVCs,
		Stop:           stop,
		Seed:           12345,
	}
	w, err := traffic.Apply(eng, net, mix)
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range w.BESources {
		be.OnInject = func(msg *flit.Message) { m.be.Injected(msg.Injected) }
	}
	eng.Run(stop + 50*sim.Millisecond)
	eng.Drain()
	return net, m
}

func TestSingleSwitchLowLoadJitterFree(t *testing.T) {
	net, m := runMix(t, false, sched.VirtualClock, 0.5, 1.0, 16, 40*tInterval)
	if m.intervals.Intervals().Count() < 100 {
		t.Fatalf("too few interval samples: %d", m.intervals.Intervals().Count())
	}
	d := m.intervals.MeanMs()
	sd := m.intervals.StdDevMs()
	wantD := tInterval.Milliseconds()
	if math.Abs(d-wantD) > 0.05*wantD {
		t.Fatalf("d = %.3f ms, want ~%.3f", d, wantD)
	}
	if sd > 0.05*wantD {
		t.Fatalf("σd = %.3f ms at 50%% load, want ~0 (jitter-free)", sd)
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatalf("conservation violated: %v", err)
	}
}

func TestSingleSwitchMixedTrafficDelivers(t *testing.T) {
	net, m := runMix(t, false, sched.VirtualClock, 0.6, 0.5, 16, 30*tInterval)
	inj, del := m.be.Counts()
	if inj == 0 {
		t.Fatal("no best-effort traffic generated")
	}
	if del == 0 {
		t.Fatal("no best-effort traffic delivered")
	}
	if m.be.Saturated(0.05) {
		t.Fatalf("best-effort saturated at 30%% BE load (injected %d delivered %d)", inj, del)
	}
	lat := m.be.MeanLatencyUs()
	if lat <= 0 || lat > 100 {
		t.Fatalf("best-effort latency %.2f µs implausible at low load", lat)
	}
	if sd := m.intervals.StdDevMs(); sd > 0.05*tInterval.Milliseconds() {
		t.Fatalf("σd = %.3f ms with best-effort present, want ~0", sd)
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockBeatsFIFOUnderOverload(t *testing.T) {
	// At very high load with a dominant real-time share, FIFO should show
	// clearly more jitter than Virtual Clock (the Fig. 3 effect).
	_, mVC := runMix(t, false, sched.VirtualClock, 0.92, 0.8, 16, 30*tInterval)
	_, mFIFO := runMix(t, false, sched.FIFO, 0.92, 0.8, 16, 30*tInterval)
	sdVC := mVC.intervals.StdDevMs()
	sdFIFO := mFIFO.intervals.StdDevMs()
	if !(sdFIFO > sdVC) {
		t.Fatalf("σd FIFO %.4f ms ≤ σd VirtualClock %.4f ms; expected FIFO worse", sdFIFO, sdVC)
	}
}

func TestDeterminism(t *testing.T) {
	_, a := runMix(t, false, sched.VirtualClock, 0.7, 0.8, 16, 20*tInterval)
	_, b := runMix(t, false, sched.VirtualClock, 0.7, 0.8, 16, 20*tInterval)
	if a.intervals.MeanMs() != b.intervals.MeanMs() ||
		a.intervals.StdDevMs() != b.intervals.StdDevMs() ||
		a.be.MeanLatencyUs() != b.be.MeanLatencyUs() {
		t.Fatalf("identical runs diverged: %v/%v vs %v/%v",
			a.intervals.MeanMs(), a.intervals.StdDevMs(),
			b.intervals.MeanMs(), b.intervals.StdDevMs())
	}
}

func TestFatMeshDelivers(t *testing.T) {
	net, m := runMix(t, true, sched.VirtualClock, 0.5, 0.6, 16, 25*tInterval)
	if m.intervals.Intervals().Count() < 100 {
		t.Fatalf("too few fat-mesh samples: %d", m.intervals.Intervals().Count())
	}
	wantD := tInterval.Milliseconds()
	if d := m.intervals.MeanMs(); math.Abs(d-wantD) > 0.1*wantD {
		t.Fatalf("fat-mesh d = %.3f ms, want ~%.3f", d, wantD)
	}
	if sd := m.intervals.StdDevMs(); sd > 0.1*wantD {
		t.Fatalf("fat-mesh σd = %.3f ms at moderate load", sd)
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
	// Cross-switch traffic must actually traverse the fat links.
	transit := uint64(0)
	for _, r := range net.Routers {
		transit += r.Stats().FlitsSwitched
	}
	sunk := uint64(0)
	for _, s := range net.Sinks {
		sunk += s.FlitsReceived
	}
	if transit <= sunk {
		t.Fatalf("switched %d ≤ sunk %d: no multi-hop traffic?", transit, sunk)
	}
}

func TestSinkFrameReassembly(t *testing.T) {
	// Direct sink test: frames complete only when all messages arrive.
	eng := sim.NewEngine()
	cfg := baseCfg(sched.FIFO, 4, 4)
	cfg.Ports = 2
	net, err := topology.SingleSwitch(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var frames []int
	net.Sinks[1].OnFrame = func(stream, frame int, at sim.Time) { frames = append(frames, frame) }
	var ids uint64
	st, err := traffic.StartStream(eng, net.NIs[0], traffic.StreamConfig{
		ID: 7, Class: flit.CBR, Src: 0, Dst: 1, InVC: 0, DstVC: 0,
		FrameBytes: 400, Interval: 100 * sim.Microsecond,
		MsgFlits: 20, FlitBits: 32,
		Start: 0, Stop: 1 * sim.Millisecond,
	}, rng.New(1), &ids)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(2 * sim.Millisecond)
	eng.Drain()
	if st.FramesInjected != 10 {
		t.Fatalf("injected %d frames, want 10", st.FramesInjected)
	}
	if len(frames) != 10 {
		t.Fatalf("delivered %d frames, want 10", len(frames))
	}
	for i, f := range frames {
		if f != i {
			t.Fatalf("frames out of order: %v", frames)
		}
	}
	if net.Sinks[1].PendingFrames() != 0 {
		t.Fatal("partial frames left behind")
	}
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkConservation(t *testing.T) {
	// Every injected flit must be sunk exactly once.
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, baseCfg(sched.VirtualClock, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	var ids uint64
	for n := 0; n < 8; n++ {
		if _, err := traffic.StartStream(eng, net.NIs[n], traffic.StreamConfig{
			ID: n, Class: flit.VBR, Src: n, Dst: (n + 3) % 8, InVC: n % 8, DstVC: n % 8,
			FrameBytes: 800, FrameBytesSD: 100, Interval: 200 * sim.Microsecond,
			MsgFlits: 20, FlitBits: 32, Start: sim.Time(n) * sim.Microsecond,
			Stop: 2 * sim.Millisecond,
		}, rng.New(uint64(n)), &ids); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run(5 * sim.Millisecond)
	eng.Drain()
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
	totalSunk := uint64(0)
	for _, s := range net.Sinks {
		totalSunk += s.FlitsReceived
	}
	if totalSunk == 0 {
		t.Fatal("nothing delivered")
	}
	if got := net.Routers[0].Stats().FlitsTransmitted; got != totalSunk {
		t.Fatalf("transmitted %d ≠ sunk %d", got, totalSunk)
	}
}

func TestNIBacklogAndEmpty(t *testing.T) {
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, baseCfg(sched.FIFO, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	ni := net.NIs[0]
	if !ni.Empty() || ni.Backlog() != 0 {
		t.Fatal("fresh NI not empty")
	}
	m := &flit.Message{ID: 1, Class: flit.VBR, MsgsInFrame: 1, Flits: 5, Vtick: 100, Dst: 1, Injected: 0}
	ni.Inject(0, m)
	if ni.Empty() || ni.Backlog() != 1 {
		t.Fatal("injection not visible in backlog")
	}
	eng.Drain()
	if !ni.Empty() {
		t.Fatal("NI did not drain")
	}
}

func TestInjectZeroFlitMessagePanics(t *testing.T) {
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, baseCfg(sched.FIFO, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	net.NIs[0].Inject(0, &flit.Message{})
}
