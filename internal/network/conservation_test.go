package network_test

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/sim"
)

// accounted sums the three sides of the flit-conservation ledger:
// delivered (sinks), dropped (router buffers + NI queues), in-flight
// (the fabric work counter, which includes NI backlogs).
func accounted(fab *network.Fabric, nis []*network.NI, sinks []*network.Sink) (delivered, dropped uint64, inFlight int64) {
	for _, s := range sinks {
		delivered += s.FlitsReceived
	}
	for _, r := range fab.Routers {
		dropped += r.Stats().FlitsDropped
	}
	for _, n := range nis {
		dropped += n.Dropped
	}
	return delivered, dropped, fab.Work()
}

// oneHopWorm builds a short-haul worm that cannot participate in a ring
// cycle: it needs only its local ring link plus the destination endpoint.
func oneHopWorm(id uint64, src int) *flit.Message {
	m := ringWorm(id, src)
	m.Dst = (src + 1) % 4
	return m
}

// TestFlitConservationFaultFree checks the ledger on a clean run — the
// invariant injected = delivered + dropped + in-flight must hold at every
// instant, with the dropped term identically zero.
func TestFlitConservationFaultFree(t *testing.T) {
	eng, fab, nis, sinks := buildRing(t)
	var injected uint64
	var id uint64
	for round := 0; round < 5; round++ {
		round := round
		eng.At(sim.Time(round)*3*sim.Microsecond, func() {
			for src, ni := range nis {
				id++
				m := oneHopWorm(id, src)
				ni.Inject(0, m)
				injected += uint64(m.Flits)
			}
		})
	}
	// Mid-run checkpoints: conservation is a per-cycle invariant, not just
	// a post-drain one.
	for _, at := range []sim.Time{2 * sim.Microsecond, 7 * sim.Microsecond, 11 * sim.Microsecond} {
		eng.At(at, func() {
			delivered, dropped, inFlight := accounted(fab, nis, sinks)
			if dropped != 0 {
				t.Fatalf("fault-free run dropped %d flits", dropped)
			}
			if delivered+uint64(inFlight) != injected {
				t.Fatalf("t=%v: delivered %d + in-flight %d != injected %d",
					eng.Now(), delivered, inFlight, injected)
			}
		})
	}
	eng.Drain()
	if err := fab.CheckDrained(); err != nil {
		t.Fatal(err)
	}
	delivered, dropped, inFlight := accounted(fab, nis, sinks)
	if dropped != 0 || inFlight != 0 {
		t.Fatalf("post-drain: dropped=%d in-flight=%d, want 0/0", dropped, inFlight)
	}
	if delivered != injected {
		t.Fatalf("delivered %d of %d injected flits", delivered, injected)
	}
}

// TestFlitConservationWithKilledWorm kills a message mid-flight and checks
// the same ledger balances through the drop path, with the routers'
// per-port drop counters agreeing with their totals.
func TestFlitConservationWithKilledWorm(t *testing.T) {
	eng, fab, nis, sinks := buildRing(t)
	victim := oneHopWorm(1, 0)
	survivor := oneHopWorm(2, 2)
	nis[0].Inject(0, victim)
	nis[2].Inject(0, survivor)
	injected := uint64(victim.Flits + survivor.Flits)

	// Let the victim's header advance into the fabric, then kill it while
	// flits sit in both the NI queue and router buffers.
	eng.At(500*sim.Nanosecond, func() {
		if victim.Dead {
			t.Fatal("victim dead before kill")
		}
		victim.Kill()
		fab.Wake()
	})
	eng.Drain()
	if err := fab.CheckDrained(); err != nil {
		t.Fatal(err)
	}
	delivered, dropped, inFlight := accounted(fab, nis, sinks)
	if inFlight != 0 {
		t.Fatalf("in-flight %d after drain", inFlight)
	}
	if dropped == 0 {
		t.Fatal("killing a mid-flight worm dropped nothing")
	}
	if delivered+dropped != injected {
		t.Fatalf("delivered %d + dropped %d != injected %d", delivered, dropped, injected)
	}
	if delivered < uint64(survivor.Flits) {
		t.Fatalf("survivor lost flits: delivered %d < %d", delivered, survivor.Flits)
	}
	for i, r := range fab.Routers {
		var perPort uint64
		for p := 0; p < 2; p++ {
			perPort += r.PortStats(p).FlitsDropped
		}
		if perPort != r.Stats().FlitsDropped {
			t.Fatalf("router %d: per-port drops %d != total %d",
				i, perPort, r.Stats().FlitsDropped)
		}
	}
}
