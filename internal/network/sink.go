package network

import (
	"mediaworm/internal/flit"
	"mediaworm/internal/obs"
	"mediaworm/internal/sim"
)

// Sink is an endpoint's receive side. It consumes one flit per cycle from
// the router's output link (it always has credit, like the paper's endpoint
// model), reassembles frames, and reports deliveries to the measurement
// layer.
type Sink struct {
	fab *Fabric //mw:snapcover — static wiring, set at construction
	// Node is the endpoint identifier.
	Node int //mw:snapcover — endpoint identity, set at construction
	// router/port locate the output port feeding this sink, for tracing.
	router, port int //mw:snapcover — static trace coordinates, set at construction
	// frames maps (stream, frame) to the number of messages still missing.
	frames map[uint64]int

	// retx, if set, is acknowledged on every tail arrival so the
	// retransmission layer can cancel the message's timeout.
	retx *Retransmitter //mw:snapcover — nil when checkpointing: fault runs refuse checkpoints

	// OnFrame, if set, is called when the last flit of a frame's last
	// outstanding message arrives: the paper's frame delivery instant.
	OnFrame func(stream, frame int, t sim.Time) //mw:snapcover — observer callback, rewired by NewSim on restore
	// OnMessage, if set, is called on every completed message (tail
	// arrival), real-time and best-effort alike.
	OnMessage func(m *flit.Message, t sim.Time) //mw:snapcover — observer callback, rewired by NewSim on restore

	// FlitsReceived counts all flits consumed.
	FlitsReceived uint64
	// MessagesReceived counts completed messages.
	MessagesReceived uint64
}

func frameKey(stream, frame int) uint64 {
	return uint64(uint32(stream))<<32 | uint64(uint32(frame))
}

// HasCredit implements core.Consumer: the endpoint always accepts.
func (s *Sink) HasCredit(int) bool { return true }

// Accept implements core.Consumer.
func (s *Sink) Accept(vc int, f flit.Flit) {
	s.fab.work--
	s.FlitsReceived++
	if !f.IsTail() {
		return
	}
	s.MessagesReceived++
	m := f.Msg
	t := f.Enq // arrival instant at the endpoint
	if s.fab.trc != nil {
		// Stamp with the fabric tick during which the tail crossed the link,
		// not the (future) arrival instant t: per-lane timestamps must stay
		// non-decreasing in emission order, and other same-tick events share
		// this port's lane. The true end-to-end latency rides in Arg.
		s.fab.trc.Emit(obs.Event{At: s.fab.lastTick, Kind: obs.EvEject,
			Router: int16(s.router), Port: int16(s.port), VC: int16(vc),
			Msg: m.ID, Class: m.Class, Seq: int32(m.FrameSeq),
			Arg: int64(t - m.Injected)})
	}
	if s.retx != nil {
		s.retx.ack(m)
	}
	if s.OnMessage != nil {
		s.OnMessage(m, t)
	}
	if !m.Class.RealTime() {
		return
	}
	key := frameKey(m.StreamID, m.FrameSeq)
	rem, ok := s.frames[key]
	if !ok {
		rem = m.MsgsInFrame
	}
	rem--
	if rem == 0 {
		delete(s.frames, key)
		if s.OnFrame != nil {
			s.OnFrame(m.StreamID, m.FrameSeq, t)
		}
		return
	}
	if s.frames == nil {
		// Lazy: most endpoints of a large fabric never reassemble a frame,
		// and the restore path builds its own map.
		s.frames = make(map[uint64]int)
	}
	s.frames[key] = rem
}

// PendingFrames returns the number of partially delivered frames.
func (s *Sink) PendingFrames() int { return len(s.frames) }

// DeadEnd terminates an intentionally unused output port: it never grants
// credit, and receiving a flit anyway panics, so wiring bugs fail loudly.
type DeadEnd struct{}

// HasCredit implements core.Consumer.
func (DeadEnd) HasCredit(int) bool { return false }

// Accept implements core.Consumer.
func (DeadEnd) Accept(int, flit.Flit) { panic("network: flit on an unused port") }
