package network_test

import (
	"strings"
	"testing"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// buildRing wires 4 two-port routers into a unidirectional ring with a
// single virtual channel: port 0 is the endpoint, port 1 the ring link to
// the next router. With every node sending a long worm two hops clockwise,
// each worm holds its local ring link while waiting for the next one — the
// textbook wormhole deadlock the watchdog must detect.
func buildRing(t *testing.T) (*sim.Engine, *network.Fabric, []*network.NI, []*network.Sink) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := core.Config{
		Ports:       2,
		VCs:         1,
		RTVCs:       0,
		BufferDepth: 4,
		StageDepth:  2,
		Policy:      sched.VirtualClock,
		Period:      10 * sim.Nanosecond,
		Route: func(routerID int, msg *flit.Message, buf []int) []int {
			if msg.Dst == routerID {
				return append(buf, 0)
			}
			return append(buf, 1)
		},
	}
	fab := network.NewFabric(eng, cfg.Period)
	routers := make([]*core.Router, 4)
	for i := range routers {
		c := cfg
		c.ID = i
		r, err := core.New(c)
		if err != nil {
			t.Fatal(err)
		}
		routers[i] = r
		fab.AddRouter(r)
	}
	var nis []*network.NI
	var sinks []*network.Sink
	for i, r := range routers {
		ni, sink := fab.AttachEndpoint(r, 0, i)
		nis = append(nis, ni)
		sinks = append(sinks, sink)
	}
	for i := range routers {
		fab.Link(routers[i], 1, routers[(i+1)%4], 1)
	}
	return eng, fab, nis, sinks
}

// ringWorm builds a 64-flit best-effort message from node src two hops
// clockwise. 64 flits far exceed the per-hop buffering (4 + 2), so no worm's
// tail can clear a router while its header is blocked.
func ringWorm(id uint64, src int) *flit.Message {
	return &flit.Message{
		ID:          id,
		StreamID:    -1,
		Class:       flit.BestEffort,
		MsgsInFrame: 1,
		Flits:       64,
		Vtick:       sim.Forever,
		Src:         src,
		Dst:         (src + 2) % 4,
	}
}

func TestWatchdogDetectsRingDeadlock(t *testing.T) {
	eng, fab, nis, _ := buildRing(t)
	fab.SetWatchdog(200, false)
	for i, ni := range nis {
		ni.Inject(0, ringWorm(uint64(i+1), i))
	}
	eng.Run(1 * sim.Millisecond)

	if fab.Deadlock == nil {
		t.Fatal("ring deadlock not detected")
	}
	rep := fab.Deadlock
	if len(rep.Cycle) == 0 {
		t.Fatalf("watchdog found no wait-for cycle: %v", rep)
	}
	// The full cycle alternates each worm's granted hop with its blocked
	// hop: 4 worms x 2 entries.
	if len(rep.Cycle) != 8 {
		t.Errorf("cycle has %d entries, want 8: %v", len(rep.Cycle), rep)
	}
	seen := map[uint64]bool{}
	for _, e := range rep.Cycle {
		seen[e.Msg.ID] = true
	}
	if len(seen) != 4 {
		t.Errorf("cycle involves %d worms, want all 4: %v", len(seen), rep)
	}
	if !strings.Contains(rep.String(), "cycle:") {
		t.Errorf("report does not render the cycle: %s", rep)
	}
	// Without recovery the driver stops with the deadlocked flits still in
	// the fabric — the run returns instead of hanging.
	if fab.Work() == 0 {
		t.Error("deadlocked fabric reported no in-flight work")
	}
}

func TestWatchdogRecoveryUnblocksRing(t *testing.T) {
	eng, fab, nis, sinks := buildRing(t)
	fab.SetWatchdog(200, true)
	for i, ni := range nis {
		ni.Inject(0, ringWorm(uint64(i+1), i))
	}
	eng.Run(10 * sim.Millisecond)

	if fab.DeadlocksBroken == 0 {
		t.Fatal("recovery watchdog broke no deadlock")
	}
	if fab.Deadlock.Victim != 4 {
		t.Errorf("victim = msg %d, want the youngest (4)", fab.Deadlock.Victim)
	}
	if err := fab.CheckDrained(); err != nil {
		t.Fatalf("fabric did not drain after recovery: %v", err)
	}
	var received, dropped uint64
	for _, s := range sinks {
		received += s.FlitsReceived
	}
	dropped = fab.DroppedFlits()
	if received+dropped != 4*64 {
		t.Errorf("conservation: received %d + dropped %d != injected %d",
			received, dropped, 4*64)
	}
	if received != 3*64 {
		t.Errorf("received %d flits, want 3 surviving worms (192)", received)
	}
}

func TestWatchdogRecoveryWithRetransmitDeliversAll(t *testing.T) {
	eng, fab, nis, sinks := buildRing(t)
	fab.SetWatchdog(200, true)
	rt := network.NewRetransmitter(fab, 50*sim.Microsecond, 5)
	for i, ni := range nis {
		ni.Inject(0, ringWorm(uint64(i+1), i))
	}
	eng.Run(10 * sim.Millisecond)
	eng.Drain()

	if fab.DeadlocksBroken == 0 {
		t.Fatal("recovery watchdog broke no deadlock")
	}
	if rt.Recovered != 1 {
		t.Errorf("Recovered = %d, want 1 (the deadlock victim resent)", rt.Recovered)
	}
	if rt.Abandoned != 0 || rt.Pending() != 0 {
		t.Errorf("Abandoned = %d, Pending = %d, want 0/0", rt.Abandoned, rt.Pending())
	}
	var msgs uint64
	for _, s := range sinks {
		msgs += s.MessagesReceived
	}
	if msgs != 4 {
		t.Errorf("delivered %d messages, want all 4", msgs)
	}
	if err := fab.CheckDrained(); err != nil {
		t.Fatalf("fabric did not drain: %v", err)
	}
}
