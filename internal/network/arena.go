package network

import "mediaworm/internal/sched"

// EndpointArena is the NI/sink counterpart of core.Arena: a struct-of-arrays
// backing store for endpoint state. A fabric builder reserves one arena for
// all of its endpoints and AttachEndpoint carves each NI, sink, per-VC
// injection-queue table and arbitration scratch buffer as contiguous
// subslices, so a thousand-endpoint torus costs four allocations instead of
// thousands. Like core.Arena, an exhausted (or absent) arena degrades to
// private per-endpoint allocations rather than failing. See DESIGN.md §18.
//
// An arena is single-goroutine, like the fabric it backs.
type EndpointArena struct {
	nis   []NI              // backing slab; the fabric serializes its views
	sinks []Sink            // backing slab; the fabric serializes its views
	vcs   []niVC            // backing slab; the owning NIs serialize their views
	cands []sched.Candidate // backing slab; per-cycle scratch, never snapshotted
}

// NewEndpointArena preallocates slabs for `endpoints` endpoints whose
// injection interfaces run `vcs` virtual channels each.
func NewEndpointArena(endpoints, vcs int) *EndpointArena {
	if endpoints < 1 {
		endpoints = 1
	}
	return &EndpointArena{
		nis:   make([]NI, 0, endpoints),
		sinks: make([]Sink, 0, endpoints),
		vcs:   make([]niVC, 0, endpoints*vcs),
		cands: make([]sched.Candidate, 0, endpoints*vcs),
	}
}

func (a *EndpointArena) grabNI() *NI {
	if a == nil || len(a.nis) == cap(a.nis) {
		return &NI{}
	}
	a.nis = a.nis[:len(a.nis)+1]
	return &a.nis[len(a.nis)-1]
}

func (a *EndpointArena) grabSink() *Sink {
	if a == nil || len(a.sinks) == cap(a.sinks) {
		return &Sink{}
	}
	a.sinks = a.sinks[:len(a.sinks)+1]
	return &a.sinks[len(a.sinks)-1]
}

func (a *EndpointArena) grabVCs(n int) []niVC {
	if a == nil || len(a.vcs)+n > cap(a.vcs) {
		return make([]niVC, n)
	}
	off := len(a.vcs)
	a.vcs = a.vcs[:off+n]
	return a.vcs[off : off+n : off+n]
}

// grabCands carves a zero-length candidate buffer with capacity n.
func (a *EndpointArena) grabCands(n int) []sched.Candidate {
	if a == nil || len(a.cands)+n > cap(a.cands) {
		return make([]sched.Candidate, 0, n)
	}
	off := len(a.cands)
	a.cands = a.cands[:off+n]
	return a.cands[off : off : off+n]
}
