package network_test

import (
	"testing"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/topology"
)

func tinyNet(t *testing.T) (*sim.Engine, *topology.Net) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := topology.SingleSwitch(eng, core.Config{
		Ports: 2, VCs: 2, RTVCs: 1,
		BufferDepth: 20, StageDepth: 4,
		Policy: sched.VirtualClock, Period: tPeriod,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func mkMsg(id uint64, dst int, flits int) *flit.Message {
	return &flit.Message{
		ID: id, StreamID: int(id), Class: flit.VBR, MsgsInFrame: 1,
		Flits: flits, Vtick: 100, Dst: dst, DstVC: 0,
	}
}

func TestFabricSleepsWhenIdle(t *testing.T) {
	eng, net := tinyNet(t)
	// With no traffic the fabric schedules nothing.
	if eng.Pending() != 0 {
		t.Fatalf("idle fabric has %d pending events", eng.Pending())
	}
	m := mkMsg(1, 1, 4)
	m.Injected = 0
	net.NIs[0].Inject(0, m)
	if eng.Pending() == 0 {
		t.Fatal("injection did not wake the ticker")
	}
	eng.Drain()
	if net.Fabric.Work() != 0 {
		t.Fatalf("work %d after drain", net.Fabric.Work())
	}
	// Idle again after the drain: ticker must have stopped, so the total
	// processed events is bounded by flits × pipeline, not by wall time.
	processed := eng.Processed()
	if processed == 0 || processed > 200 {
		t.Fatalf("processed %d events for one 4-flit message", processed)
	}
}

func TestFabricTickAlignment(t *testing.T) {
	eng, net := tinyNet(t)
	// Inject off-cycle: at t = 130 ns (cycles are multiples of 80 ns).
	m := mkMsg(1, 1, 1)
	eng.At(130, func() {
		m.Injected = eng.Now()
		net.NIs[0].Inject(0, m)
	})
	var arrival sim.Time
	net.Sinks[1].OnMessage = func(_ *flit.Message, at sim.Time) { arrival = at }
	eng.Drain()
	if arrival == 0 {
		t.Fatal("message lost")
	}
	if arrival%tPeriod != 0 {
		t.Fatalf("delivery at %d not cycle-aligned", arrival)
	}
}

func TestFabricWakeAfterLongIdle(t *testing.T) {
	eng, net := tinyNet(t)
	delivered := 0
	for i := 0; i < 2; i++ {
		net.Sinks[1-i%2].OnMessage = func(*flit.Message, sim.Time) { delivered++ }
	}
	// Two bursts separated by a long gap; the ticker must stop in between
	// and restart cleanly.
	inject := func(at sim.Time, id uint64, src, dst int) {
		m := mkMsg(id, dst, 5)
		eng.At(at, func() {
			m.Injected = eng.Now()
			net.NIs[src].Inject(0, m)
		})
	}
	inject(0, 1, 0, 1)
	inject(50*sim.Millisecond, 2, 1, 0)
	eng.Drain()
	if delivered != 2 {
		t.Fatalf("delivered %d messages, want 2", delivered)
	}
	// Events processed must be far fewer than the 625k cycles the 50 ms
	// gap would cost a always-on ticker.
	if eng.Processed() > 5000 {
		t.Fatalf("idle gap was ticked through: %d events", eng.Processed())
	}
}

func TestCheckDrainedDetectsWork(t *testing.T) {
	eng, net := tinyNet(t)
	m := mkMsg(1, 1, 10)
	m.Injected = 0
	net.NIs[0].Inject(0, m)
	if err := net.Fabric.CheckDrained(); err == nil {
		t.Fatal("in-flight work not detected")
	}
	eng.Drain()
	if err := net.Fabric.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestNIPolicyOverride(t *testing.T) {
	eng, net := tinyNet(t)
	net.NIs[0].SetPolicy(sched.FIFO)
	// A best-effort message injected before a real-time one on different
	// VCs: FIFO NI serves arrival order, so BE flits go first.
	be := &flit.Message{ID: 1, Class: flit.BestEffort, MsgsInFrame: 1,
		Flits: 5, Vtick: sim.Forever, Dst: 1, DstVC: 1, Injected: 0}
	rt := mkMsg(2, 1, 5)
	var order []uint64
	net.Sinks[1].OnMessage = func(m *flit.Message, at sim.Time) { order = append(order, m.ID) }
	net.NIs[0].Inject(1, be)
	eng.At(1, func() {
		rt.Injected = 1
		net.NIs[0].Inject(0, rt)
	})
	eng.Drain()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("FIFO NI delivery order %v, want best-effort (1) first", order)
	}
	// Same scenario under Virtual Clock: the real-time message overtakes.
	eng2, net2 := tinyNet(t)
	be2 := &flit.Message{ID: 1, Class: flit.BestEffort, MsgsInFrame: 1,
		Flits: 5, Vtick: sim.Forever, Dst: 1, DstVC: 1, Injected: 0}
	rt2 := mkMsg(2, 1, 5)
	var order2 []uint64
	net2.Sinks[1].OnMessage = func(m *flit.Message, at sim.Time) { order2 = append(order2, m.ID) }
	net2.NIs[0].Inject(1, be2)
	eng2.At(1, func() {
		rt2.Injected = 1
		net2.NIs[0].Inject(0, rt2)
	})
	eng2.Drain()
	if len(order2) != 2 || order2[0] != 2 {
		t.Fatalf("Virtual Clock NI delivery order %v, want real-time (2) first", order2)
	}
}

func TestFabricRejectsBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	network.NewFabric(sim.NewEngine(), 0)
}
