package network

import (
	"fmt"
	"strings"

	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/obs"
	"mediaworm/internal/sim"
)

// The progress watchdog detects wormhole deadlock and livelock: the fabric
// holds flits, yet no flit has moved for a configured number of cycles. On a
// trip it snapshots every blocked worm, chains them through the link map
// into a wait-for cycle, and either stops the cycle driver (so the run
// returns with a report instead of hanging) or — in recovery mode — kills
// one victim message in the cycle so the remaining worms drain and the NI
// retransmission layer can resend the victim.

// DeadlockReport describes one watchdog trip.
type DeadlockReport struct {
	// At is the cycle instant the watchdog tripped; IdleCycles how long the
	// fabric had been motionless.
	At         sim.Time
	IdleCycles int
	// Blocked is every worm waiting on a switching resource at the trip.
	Blocked []core.Blocked
	// Cycle is the wait-for cycle among them, in dependency order. It is
	// empty for livelock/stall trips whose wait chains terminate at a
	// faulted resource (a dead or stalled link) rather than looping.
	Cycle []core.Blocked
	// Victim is the ID of the message killed to break the cycle (0 when
	// the watchdog is not in recovery mode or no cycle was found).
	Victim uint64
}

// String renders the report with the blocked-VC cycle, for error messages
// and logs.
func (d *DeadlockReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock watchdog tripped at t=%d after %d idle cycles: %d blocked worms",
		d.At, d.IdleCycles, len(d.Blocked))
	if len(d.Cycle) == 0 {
		b.WriteString("; no wait-for cycle (chains end at a faulted resource)")
	} else {
		b.WriteString("; cycle:")
		for _, e := range d.Cycle {
			fmt.Fprintf(&b, " [msg %d at router %d in(%d,%d) → out(%d,%d)]",
				e.Msg.ID, e.Router, e.InPort, e.InVC, e.OutPort, e.OutVC)
		}
	}
	if d.Victim != 0 {
		fmt.Fprintf(&b, "; killed msg %d to recover", d.Victim)
	}
	return b.String()
}

// SetWatchdog arms the progress watchdog: after idleCycles cycles with work
// in flight but no flit motion, the fabric records a DeadlockReport instead
// of ticking forever. With recover true it also kills the youngest message
// in the detected wait-for cycle and keeps running; otherwise the cycle
// driver stops (Wake restarts it if a fault is later lifted). idleCycles 0
// disarms the watchdog.
func (f *Fabric) SetWatchdog(idleCycles int, recover bool) {
	if idleCycles < 0 {
		panic("network: negative watchdog limit")
	}
	f.watchdogLimit = idleCycles
	f.watchdogRecover = recover
	f.idleTicks = 0
}

// motion is the fabric-wide progress counter: any flit switched,
// transmitted, injected, or reaped counts as forward progress.
func (f *Fabric) motion() uint64 {
	var total uint64
	for _, r := range f.Routers {
		s := r.Stats()
		total += s.FlitsSwitched + s.FlitsTransmitted + s.FlitsDropped
	}
	for _, ni := range f.NIs {
		total += ni.Sent + ni.Dropped
	}
	return total
}

// watchdogTrip advances the idle counter and, at the limit, records a report.
// It returns true when the cycle driver should stop rescheduling.
func (f *Fabric) watchdogTrip(now sim.Time) bool {
	m := f.motion()
	if m != f.lastMotion {
		f.lastMotion = m
		f.idleTicks = 0
		return false
	}
	f.idleTicks++
	if f.idleTicks < f.watchdogLimit {
		return false
	}
	report := f.buildDeadlockReport(now)
	f.idleTicks = 0
	f.Deadlocks++
	if f.Deadlock == nil {
		f.Deadlock = report
	}
	if f.OnDeadlock != nil {
		f.OnDeadlock(report)
	}
	if f.trc != nil {
		defer func() {
			f.trc.Emit(obs.Event{At: now, Kind: obs.EvDeadlock,
				Router: -1, Port: -1, VC: -1,
				Msg: report.Victim, Arg: int64(len(report.Blocked))})
		}()
	}
	if f.watchdogRecover && len(report.Cycle) > 0 {
		// Break the cycle: kill the youngest message in it (highest ID —
		// deterministic, and the one with the least sunk cost). The dead
		// worm unravels over the next cycles, which is motion, so the
		// driver keeps ticking.
		victim := report.Cycle[0].Msg
		for _, e := range report.Cycle[1:] {
			if e.Msg.ID > victim.ID {
				victim = e.Msg
			}
		}
		victim.Kill()
		report.Victim = victim.ID
		f.DeadlocksBroken++
		return false
	}
	// Stop the driver: the run returns (with work still accounted) instead
	// of ticking forever. A later injection or Wake resumes it.
	return true
}

// buildDeadlockReport snapshots the blocked worms and extracts a wait-for
// cycle by following each worm's blocking resource: a granted worm waits on
// the downstream input VC its output feeds; an ungranted worm waits on the
// holder of the output VC it needs.
func (f *Fabric) buildDeadlockReport(now sim.Time) *DeadlockReport {
	report := &DeadlockReport{At: now, IdleCycles: f.watchdogLimit}
	// Collect blocked worms with their owning router, indexed two ways:
	// by (router, input port, input VC) and by (router, message).
	type node struct {
		r *core.Router
		b core.Blocked
	}
	var nodes []node
	byVC := make(map[linkKey]map[int]int)                 // (router, inPort) → inVC → node index
	byMsg := make(map[*core.Router]map[*flit.Message]int) // router → head message → node index
	for _, r := range f.Routers {
		for _, b := range r.BlockedWorms() {
			idx := len(nodes)
			nodes = append(nodes, node{r, b})
			report.Blocked = append(report.Blocked, b)
			k := linkKey{r, b.InPort}
			if byVC[k] == nil {
				byVC[k] = make(map[int]int)
			}
			byVC[k][b.InVC] = idx
			if byMsg[r] == nil {
				byMsg[r] = make(map[*flit.Message]int)
			}
			byMsg[r][b.Msg] = idx
		}
	}
	succ := func(i int) int {
		n := nodes[i]
		if n.b.OutVC >= 0 {
			// Granted: waiting for space in the downstream input VC.
			dst, ok := f.links[linkKey{n.r, n.b.OutPort}]
			if !ok {
				return -1 // endpoint port: chain ends at the sink
			}
			if vcs, ok := byVC[dst]; ok {
				if j, ok := vcs[n.b.OutVC]; ok {
					return j
				}
			}
			return -1
		}
		// Ungranted: waiting for the holder of an output VC, which is a
		// worm parked at this same router.
		if n.b.Holder == nil {
			return -1
		}
		if j, ok := byMsg[n.r][n.b.Holder]; ok {
			return j
		}
		return -1
	}
	// Functional-graph cycle detection over at most one successor per node.
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int8, len(nodes))
	for start := range nodes {
		if state[start] != unvisited {
			continue
		}
		var stack []int
		i := start
		for i >= 0 && state[i] == unvisited {
			state[i] = inStack
			stack = append(stack, i)
			i = succ(i)
		}
		if i >= 0 && state[i] == inStack {
			// Found a cycle: emit it starting from i.
			at := 0
			for stack[at] != i {
				at++
			}
			for _, j := range stack[at:] {
				report.Cycle = append(report.Cycle, nodes[j].b)
			}
			for _, j := range stack {
				state[j] = done
			}
			return report
		}
		for _, j := range stack {
			state[j] = done
		}
	}
	return report
}
