// Package analysis is a self-contained static-analysis framework plus the
// mwlint analyzer suite that enforces the repository's determinism and
// exhaustiveness invariants (see DESIGN.md, "Determinism rules & static
// analysis").
//
// Every figure the reproduction emits is only comparable to the paper's
// because a run is a pure function of its Config (seed included). The
// analyzers in this package make the properties that guarantee purity
// machine-checked instead of reviewed-for:
//
//   - detlint:    no wall clock, global randomness, or environment reads in
//     simulation packages
//   - maporder:   no order-sensitive work inside range-over-map loops in
//     sim-path packages
//   - exhaustive: switches over the repo's enum types cover every constant
//     or carry an explicit default
//   - simtime:    no silent conversions between time.Duration and the
//     sim.Time tick domain
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the analyzers port to the real multichecker verbatim
// if that dependency ever becomes available; the build environment for this
// repository is offline, so the driver and loader are implemented here on
// the standard library alone (go/parser + go/types with a module-aware
// importer).
//
// An intentional exception to any rule is annotated in the source with a
// line comment of the form
//
//	//mw:<analyzer> — <justification>
//
// on the flagged line or the line above it. The driver strips suppressed
// diagnostics after the analyzer runs, so annotations are honored uniformly
// and fixtures can test them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModulePath is the import path of the module this suite analyzes. The
// loader resolves any import below it from the module root directory, and
// path-scoped analyzers match package paths against it.
const ModulePath = "mediaworm"

// An Analyzer describes one analysis: a name (used in diagnostics and in
// //mw:<name> suppression annotations), user-facing documentation, and the
// Run function applied to each package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one package to an analyzer. Files holds the package's
// syntax trees with comments; test files (*_test.go) are excluded by the
// driver — they do not feed simulation results, and determinism rules do
// not apply to them.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one finding. The driver may later drop it if the
	// source line carries a //mw:<name> annotation.
	Report func(Diagnostic)

	// exportFact/importFact are wired by the Driver; nil under the legacy
	// single-package RunAnalyzers entry point, where facts are unavailable.
	exportFact func(types.Object, Fact)
	importFact func(types.Object, Fact) bool
}

// ExportObjectFact attaches fact to obj (a package-level declaration of the
// package under analysis) for consumption when importing packages are
// analyzed later. Facts cross the package boundary serialized; see Fact.
// Outside a Driver run this is a no-op.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.exportFact != nil {
		p.exportFact(obj, fact)
	}
}

// ImportObjectFact decodes into fact the datum this same analyzer exported
// for obj while analyzing the package that declares it, reporting whether
// such a fact exists. Outside a Driver run it always reports false.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.importFact == nil {
		return false
	}
	return p.importFact(obj, fact)
}

// Reportf is a convenience wrapper formatting a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned at Pos within the Pass's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer // filled in by the driver

	// Suppressed marks a finding on an //mw:<name>-annotated line. The
	// Driver retains suppressed findings so front-ends can show them and so
	// the stale-annotation audit can tell a live exception from a dead one;
	// RunAnalyzers drops them for compatibility.
	Suppressed bool
}

// Suite returns the full mwlint analyzer suite in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{DetLint, MapOrder, Exhaustive, SimTime, SnapCover, HotPath, SharedState}
}

// annotationPrefix introduces an intentional-exception comment; the analyzer
// name follows immediately (e.g. "//mw:wallclock").
const annotationPrefix = "//mw:"

// annotationName maps an analyzer to the annotation token that suppresses
// it. DetLint uses the historical "wallclock" spelling from the issue that
// introduced it; every other analyzer is suppressed by its own name.
func annotationName(a *Analyzer) string {
	if a == DetLint {
		return "wallclock"
	}
	return a.Name
}

// An annotationSite is one //mw:<name> suppression comment: its position
// and the line it sits on (it suppresses that line and the next).
type annotationSite struct {
	pos  token.Pos
	line int
}

// annotationSites returns every //mw:<name> suppression annotation in file.
// For the hotpath analyzer, annotations inside a function's doc comment are
// excluded: there the token is the //mw:hotpath root marker (see HotPath),
// not a suppression, so it neither silences findings nor trips the
// stale-annotation audit.
func annotationSites(fset *token.FileSet, file *ast.File, name string) []annotationSite {
	want := annotationPrefix + name
	var docGroups map[*ast.CommentGroup]bool
	if name == "hotpath" {
		docGroups = make(map[*ast.CommentGroup]bool)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docGroups[fd.Doc] = true
			}
		}
	}
	var sites []annotationSite
	for _, cg := range file.Comments {
		if docGroups[cg] {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//") {
				continue
			}
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, want) {
				continue
			}
			// Require an exact token match: //mw:simtime must not also
			// suppress an analyzer named "sim".
			rest := strings.TrimPrefix(text, want)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ':' &&
				rest[0] != '-' && !strings.HasPrefix(rest, "—") {
				continue
			}
			sites = append(sites, annotationSite{pos: c.Pos(), line: fset.Position(c.Pos()).Line})
		}
	}
	return sites
}

// suppressedLines returns the set of line numbers in file on which findings
// of the named annotation are suppressed: every line holding an
// "//mw:<name>" comment, and the line after it (so an annotation can sit
// either on the flagged line or immediately above it).
func suppressedLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := make(map[int]bool)
	for _, s := range annotationSites(fset, file, name) {
		lines[s.line] = true
		lines[s.line+1] = true
	}
	return lines
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving diagnostics sorted by position. Test files are excluded from
// analysis, and diagnostics on annotated lines are dropped.
//
// This is the legacy single-package entry point: no facts cross package
// boundaries and no stale-annotation audit runs. Use a Driver for both.
func RunAnalyzers(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	files := analysisFiles(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		raw, err := runAnalyzer(a, pkg, files, nil)
		if err != nil {
			return nil, err
		}
		for _, dg := range filterAndAudit(a, pkg, files, raw, false) {
			if dg.Suppressed {
				continue
			}
			out = append(out, dg)
		}
	}
	sortDiagnostics(pkg.Fset, out)
	return out, nil
}

// inModule reports whether path names a package of this module.
func inModule(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// hasPathPrefix reports whether the package path equals prefix or is nested
// below it.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
