package analysis_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mediaworm/internal/analysis"
)

// TestSnapCoverCatchesDroppedEncoderLine is the acceptance check for the
// snapshot-completeness contract: copy the module source to a scratch
// tree, delete one real field-encode line from a production snapshot
// encoder, and snapcover must flag the now-uncovered field. The control
// run on the unmodified copy must be clean, so the finding is attributable
// to the mutation alone.
func TestSnapCoverCatchesDroppedEncoderLine(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module twice")
	}
	scratch := copyModuleSource(t)

	if diags := runSnapCoverOn(t, scratch, "mediaworm/internal/core"); len(diags) != 0 {
		t.Fatalf("control: unmodified copy produced %d findings; first: %s",
			len(diags), diags[0])
	}

	target := filepath.Join(scratch, "internal", "core", "snapshot.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	const mutation = "w.U64(r.seq)"
	mutated := strings.Replace(string(src), mutation, "", 1)
	if mutated == string(src) {
		t.Fatalf("mutation target %q not found in %s; realign the test with the encoder", mutation, target)
	}
	if err := os.WriteFile(target, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runSnapCoverOn(t, scratch, "mediaworm/internal/core")
	if len(diags) == 0 {
		t.Fatal("deleting a field-encode line from the router snapshot encoder produced no snapcover finding")
	}
	for _, msg := range diags {
		if strings.Contains(msg, "seq") && strings.Contains(msg, "not written by any snapshot encoder") {
			return
		}
	}
	t.Fatalf("no finding names the dropped field; got: %s", strings.Join(diags, "; "))
}

// runSnapCoverOn runs the snapcover analyzer over path inside root with a
// fresh fact-carrying driver and returns the unsuppressed messages.
func runSnapCoverOn(t *testing.T, root, path string) []string {
	t.Helper()
	driver := analysis.NewDriver(analysis.NewLoader(root))
	diags, err := driver.Run([]*analysis.Analyzer{analysis.SnapCover}, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		if !d.Suppressed {
			msgs = append(msgs, d.Message)
		}
	}
	return msgs
}

// copyModuleSource clones go.mod and every non-test .go file of the module
// into a temp dir, preserving layout. Fixture trees, VCS metadata, and
// test files are skipped: the analyzers exempt test files anyway, and the
// copy only needs to type-check.
func copyModuleSource(t *testing.T) string {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if name := d.Name(); name != "go.mod" &&
			(!strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go")) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}
