package analysis_test

import (
	"testing"

	"mediaworm/internal/analysis"
	"mediaworm/internal/analysis/analysistest"
)

// TestSharedStateFixture pins the sharedstate semantics on a golden
// package: writes from go statements and goroutine-shared callbacks are
// flagged, while per-shard element writes (including field writes through
// the owned index) and mutex-bracketed writes are sanctioned.
func TestSharedStateFixture(t *testing.T) {
	analysistest.Run(t, analysis.SharedState, "sharedstate", "mediaworm/internal/sharedfix")
}
