package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SharedState flags unsynchronized writes to values reachable from more
// than one goroutine — preparation for the conservative parallel-DES mode,
// where router shards run on worker goroutines and any accidental sharing
// breaks both memory safety and determinism.
//
// A function literal is goroutine-shared when it is launched by a go
// statement or passed as a callback parameter that some function hands to
// other goroutines (runner.Map's fn is the canonical case). Which
// parameters those are is itself computed and exported as a fact: a
// function that references one of its func-typed parameters inside a
// go-launched literal — or forwards it into such a parameter of another
// function — exports a sharesFact, and call sites in importing packages
// treat literal arguments at those positions as goroutine-shared.
//
// Inside a shared literal, a write to a captured variable (or through one)
// is flagged unless it uses a sanctioned idiom:
//
//   - per-shard ownership: an element write s[i] = v whose index derives
//     from the literal's own parameters, an atomic counter claim
//     (i := int(next.Add(1)) - 1), or a channel receive;
//   - sync guards: the write sits between mu.Lock() and mu.Unlock() in the
//     same block, or the written value's type carries its own sync/atomic
//     field;
//   - channel hand-off: sends are communication, not shared mutation, and
//     are never flagged.
//
// A deliberate exception is annotated //mw:sharedstate — <why safe>.
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc:  "flag unsynchronized writes to values reachable from more than one goroutine",
	Run:  runSharedState,
}

// sharesFact marks the parameter indices of a function that it hands to
// other goroutines (directly via go statements or transitively).
type sharesFact struct {
	Params []int
}

func (*sharesFact) AFact() {}

func runSharedState(pass *Pass) error {
	if !inModule(pass.Pkg.Path()) {
		return nil
	}
	ss := &sharedPass{
		pass:   pass,
		decls:  make(map[*types.Func]*ast.FuncDecl),
		shares: make(map[*types.Func]map[int]bool),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					ss.decls[obj] = fd
				}
			}
		}
	}
	ss.computeShares()
	for fn, idx := range ss.shares {
		if len(idx) == 0 {
			continue
		}
		f := &sharesFact{}
		for i := range idx {
			f.Params = append(f.Params, i)
		}
		sort.Ints(f.Params)
		pass.ExportObjectFact(fn, f)
	}
	for _, fn := range ss.sorted() {
		ss.checkFunc(fn)
	}
	return nil
}

type sharedPass struct {
	pass   *Pass
	decls  map[*types.Func]*ast.FuncDecl
	shares map[*types.Func]map[int]bool
}

func (ss *sharedPass) sorted() []*types.Func {
	fns := make([]*types.Func, 0, len(ss.decls))
	for fn := range ss.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	return fns
}

// paramIndex returns which parameter of fn the object is, or -1.
func paramIndex(fn *types.Func, obj types.Object) int {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// sharedParamIndices answers, for any module function, which parameter
// positions it shares with other goroutines: locally computed for this
// package, fact-imported for others.
func (ss *sharedPass) sharedParamIndices(fn *types.Func) map[int]bool {
	if fn.Pkg() == ss.pass.Pkg {
		return ss.shares[fn]
	}
	var f sharesFact
	if !ss.pass.ImportObjectFact(fn, &f) {
		return nil
	}
	out := make(map[int]bool, len(f.Params))
	for _, i := range f.Params {
		out[i] = true
	}
	return out
}

// computeShares runs the local fixed point: a parameter is shared if it is
// referenced inside a go-launched literal of its function, or passed in a
// shared position of any call (local or imported).
func (ss *sharedPass) computeShares() {
	for fn := range ss.decls {
		ss.shares[fn] = make(map[int]bool)
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range ss.decls {
			for idx := range ss.collectSharedParams(fn, fd) {
				if !ss.shares[fn][idx] {
					ss.shares[fn][idx] = true
					changed = true
				}
			}
		}
	}
}

func (ss *sharedPass) collectSharedParams(fn *types.Func, fd *ast.FuncDecl) map[int]bool {
	info := ss.pass.TypesInfo
	out := make(map[int]bool)

	// Parameters referenced inside go-launched literals.
	for _, lit := range goLaunchedLits(fd.Body) {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := info.Uses[id]; obj != nil {
				if i := paramIndex(fn, obj); i >= 0 {
					out[i] = true
				}
			}
			return true
		})
	}

	// Parameters forwarded into a shared position of another call.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutilCallee(info, call)
		if callee == nil {
			return true
		}
		sharedAt := ss.sharedParamIndices(callee)
		for ai, arg := range call.Args {
			if !sharedAt[ai] {
				continue
			}
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if i := paramIndex(fn, obj); i >= 0 {
						out[i] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// goLaunchedLits returns the function literals body launches directly with
// a go statement.
func goLaunchedLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		}
		return true
	})
	return lits
}

// checkFunc finds fn's goroutine-shared literals and audits their writes.
func (ss *sharedPass) checkFunc(fn *types.Func) {
	fd := ss.decls[fn]
	info := ss.pass.TypesInfo

	var shared []*ast.FuncLit
	context := make(map[*ast.FuncLit]string)
	for _, lit := range goLaunchedLits(fd.Body) {
		shared = append(shared, lit)
		context[lit] = "go statement"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutilCallee(info, call)
		if callee == nil {
			return true
		}
		sharedAt := ss.sharedParamIndices(callee)
		for ai, arg := range call.Args {
			if !sharedAt[ai] {
				continue
			}
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				shared = append(shared, lit)
				context[lit] = callee.Name() + " callback"
			}
		}
		return true
	})

	for _, lit := range shared {
		ss.checkLiteral(lit, context[lit])
	}
}

// checkLiteral audits one goroutine-shared literal for unsynchronized
// writes to captured state.
func (ss *sharedPass) checkLiteral(lit *ast.FuncLit, context string) {
	info := ss.pass.TypesInfo
	owned := ss.ownedIdents(lit)
	locked := lockedRanges(lit.Body)

	flagWrite := func(pos token.Pos, target ast.Expr) {
		root := rootIdent(target)
		if root == nil {
			return
		}
		obj, ok := info.Uses[root].(*types.Var)
		if !ok || obj.IsField() {
			return
		}
		// Free variable: declared outside the literal.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return
		}
		// Sanctioned: a write into (or into a field of) an element whose
		// index is owned by this goroutine — aux[i] = v and aux[i].field = v
		// alike. Walk the lvalue chain down to the indexed access.
		for e := ast.Unparen(target); ; {
			if sel, ok := e.(*ast.SelectorExpr); ok {
				e = ast.Unparen(sel.X)
				continue
			}
			if star, ok := e.(*ast.StarExpr); ok {
				e = ast.Unparen(star.X)
				continue
			}
			idx, ok := e.(*ast.IndexExpr)
			if !ok {
				break
			}
			if isSliceOrArray(info, idx.X) && ss.indexOwned(idx.Index, lit, owned) {
				return
			}
			e = ast.Unparen(idx.X)
		}
		// Sanctioned: between Lock and Unlock in the same block.
		for _, r := range locked {
			if pos >= r[0] && pos < r[1] {
				return
			}
		}
		// Sanctioned: the type synchronizes itself.
		if typeHasSyncGuard(obj.Type()) {
			return
		}
		ss.pass.Reportf(pos,
			"write to %q (captured by a goroutine-shared function literal via %s) is unsynchronized; hand the value off on a channel, write a per-shard element, guard with a sync primitive, or annotate //mw:sharedstate — <why safe>",
			root.Name, context)
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				flagWrite(n.Pos(), lhs)
			}
		case *ast.IncDecStmt:
			flagWrite(n.Pos(), n.X)
		}
		return true
	})
}

// ownedIdents collects locals of the literal that derive from an atomic
// counter claim or a channel receive — per-shard index sources.
func (ss *sharedPass) ownedIdents(lit *ast.FuncLit) map[types.Object]bool {
	info := ss.pass.TypesInfo
	owned := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			derived := false
			for _, rhs := range n.Rhs {
				if exprDerivesOwnership(info, rhs) {
					derived = true
				}
			}
			if !derived {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						owned[obj] = true
					}
				}
			}
		case *ast.RangeStmt:
			// for v := range ch — each value is received by one goroutine.
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && n.Key != nil {
					if id, ok := n.Key.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							owned[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	return owned
}

// exprDerivesOwnership reports whether e contains an atomic method call or
// a channel receive — a value only this goroutine can hold.
func exprDerivesOwnership(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if selObj := info.Selections[sel]; selObj != nil {
					if named, ok := derefNamed(selObj.Recv()); ok {
						if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic" {
							found = true
						}
					}
				}
			}
		}
		return true
	})
	return found
}

// indexOwned reports whether every identifier in an index expression is a
// parameter of the literal or an ownership-derived local — the per-shard
// ownership idiom.
func (ss *sharedPass) indexOwned(index ast.Expr, lit *ast.FuncLit, owned map[types.Object]bool) bool {
	info := ss.pass.TypesInfo
	sawIdent, allOwned := false, true
	litParams := make(map[types.Object]bool)
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					litParams[obj] = true
				}
			}
		}
	}
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		sawIdent = true
		if !owned[obj] && !litParams[obj] {
			allOwned = false
		}
		return true
	})
	return sawIdent && allOwned
}

// lockedRanges returns source ranges of statements bracketed by mu.Lock()
// ... mu.Unlock() at the same block level.
func lockedRanges(body *ast.BlockStmt) [][2]token.Pos {
	var ranges [][2]token.Pos
	var scan func(b *ast.BlockStmt)
	scan = func(b *ast.BlockStmt) {
		var lockPos token.Pos = token.NoPos
		for _, stmt := range b.List {
			if isLockCall(stmt, "Lock") || isLockCall(stmt, "RLock") {
				lockPos = stmt.End()
				continue
			}
			if isLockCall(stmt, "Unlock") || isLockCall(stmt, "RUnlock") {
				if lockPos.IsValid() {
					ranges = append(ranges, [2]token.Pos{lockPos, stmt.Pos()})
					lockPos = token.NoPos
				}
				continue
			}
			if inner, ok := stmt.(*ast.BlockStmt); ok {
				scan(inner)
			}
		}
		if lockPos.IsValid() {
			// Lock with a deferred Unlock: everything to the block end.
			ranges = append(ranges, [2]token.Pos{lockPos, b.End()})
		}
	}
	scan(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			scan(n.Body)
		case *ast.ForStmt:
			scan(n.Body)
		case *ast.RangeStmt:
			scan(n.Body)
		}
		return true
	})
	return ranges
}

// isLockCall matches a statement of the form x.<method>() for a mutex-like
// method name.
func isLockCall(stmt ast.Stmt, method string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == method
}

// typeHasSyncGuard reports whether t (deref) is a struct carrying its own
// synchronization — a sync or sync/atomic field.
func typeHasSyncGuard(t types.Type) bool {
	named, ok := derefNamed(t)
	if !ok {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			return typeHasSyncGuard(p.Elem())
		}
		return false
	}
	if pkg := named.Obj().Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
		return true
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if fn, ok := derefNamed(st.Field(i).Type()); ok {
			if pkg := fn.Obj().Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
				return true
			}
		}
	}
	return false
}

// derefNamed unwraps one pointer level and returns the named type, if any.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// rootIdent returns the base identifier of an lvalue chain
// (x, x.f, x[i].g, *x), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// isSliceOrArray reports whether e's type is a slice or array.
func isSliceOrArray(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
		return true
	}
	return false
}
