package analysis_test

import (
	"testing"

	"mediaworm/internal/analysis"
	"mediaworm/internal/analysis/analysistest"
)

// The sim fixture pins the flagged bodies (append, float accumulation,
// event posting, output, channel sends) and the allowed ones
// (collect-then-sort idiom, counting, integer sums, annotations, slice
// ranges).
func TestMapOrderSimPackage(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder/sim", "mediaworm/internal/sim/mapfix")
}

// Identical order-sensitive loops outside the sim-path scope are allowed.
func TestMapOrderOutsideScope(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder/outside", "mediaworm/internal/report/mapfix")
}

// The snapshot fixture pins the checkpoint encoder: feeding a
// snapshot.Writer from a range-over-map serializes map iteration order into
// the checkpoint bytes and is flagged; the sorted-keys idiom and pure
// counting pass clean.
func TestMapOrderSnapshotEncoder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder/snapshot", "mediaworm/internal/snapshot/mapfix")
}
