package analysis_test

import (
	"testing"

	"mediaworm/internal/analysis"
	"mediaworm/internal/analysis/analysistest"
)

// The sim fixture pins the flagged cases (wall clock, global rand,
// environment) plus three false-positive classes: explicit seeded sources,
// //mw:wallclock annotations, and test-file exemption (exempt_test.go calls
// time.Now with no want).
func TestDetLintSimPackage(t *testing.T) {
	analysistest.Run(t, analysis.DetLint, "detlint/sim", "mediaworm/internal/detfix")
}

// The obs fixture pins that the observability subsystem is inside detlint's
// scope: a trace event stamped from the wall clock is exactly the bug that
// would break byte-identical same-seed traces, and it must be flagged under
// the real package path.
func TestDetLintObsPackage(t *testing.T) {
	analysistest.Run(t, analysis.DetLint, "detlint/obs", "mediaworm/internal/obs")
}

// The runner fixture pins the parallel executor's contract: the worker pool
// lives inside detlint's scope, where sync/atomic/context concurrency is
// unremarkable but wall-clock reads are still flagged — a time-derived
// decision in the pool would leak goroutine scheduling into results.
func TestDetLintRunnerPackage(t *testing.T) {
	analysistest.Run(t, analysis.DetLint, "detlint/runner", "mediaworm/internal/runner")
}

// The arena fixture pins detlint on arena/free-list pool code — the
// zero-allocation engine idiom: slot recycling and generation stamps are
// deterministic and pass clean, while wall-clock slot stamps and
// randomized reuse order are flagged under the engine's real package path.
func TestDetLintArenaPackage(t *testing.T) {
	analysistest.Run(t, analysis.DetLint, "detlint/arena", "mediaworm/internal/sim")
}

// The snapshot fixture pins the checkpoint encoder: a checkpoint header
// stamped from the wall clock would make two checkpoints of identical
// simulator state differ byte for byte, and must be flagged under the real
// package path.
func TestDetLintSnapshotPackage(t *testing.T) {
	analysistest.Run(t, analysis.DetLint, "detlint/snapshot", "mediaworm/internal/snapshot")
}

// The cmd fixture pins the scope rule: command-line front-ends may read the
// wall clock and environment freely.
func TestDetLintCmdExempt(t *testing.T) {
	analysistest.Run(t, analysis.DetLint, "detlint/cmd", "mediaworm/cmd/detfix")
}

// The same front-end code under examples/ is exempt too.
func TestDetLintExamplesExempt(t *testing.T) {
	analysistest.Run(t, analysis.DetLint, "detlint/cmd", "mediaworm/examples/detfix")
}

// The calculus fixture pins detlint on analytic admission-control code:
// closed-form bound arithmetic passes clean, while wall-clock admission
// stamps and randomized tie-breaking are flagged under the calculus
// package's real path — an admission sequence must replay byte-for-byte.
func TestDetLintCalculusPackage(t *testing.T) {
	analysistest.Run(t, analysis.DetLint, "detlint/calculus", "mediaworm/internal/calculus")
}
