package analysis_test

import (
	"testing"

	"mediaworm/internal/analysis"
	"mediaworm/internal/analysis/analysistest"
)

// The mix fixture pins the three flagged conversion shapes (Duration →
// sim.Time, sim.Time → Duration, Duration → bare integer) and the allowed
// ones (.Nanoseconds(), sim unit constants, untyped constants,
// within-domain extraction, annotations).
func TestSimTimeMixFixture(t *testing.T) {
	analysistest.Run(t, analysis.SimTime, "simtime/mix", "mediaworm/internal/timefix")
}

// The resched fixture type-checks against the real engine and pins the
// Reschedule(Event, Time) deadline boundary: a Duration cast straight into
// the deadline argument is flagged, tick-domain arithmetic and explicit
// .Nanoseconds() conversions are not.
func TestSimTimeRescheduleFixture(t *testing.T) {
	analysistest.Run(t, analysis.SimTime, "simtime/resched", "mediaworm/internal/reschedfix")
}

// The obs fixture pins the Duration→tick boundary the observability
// subsystem actually has (TraceConfig.MetricsInterval → Tracer.interval):
// a silent conversion there must be flagged under the real package path.
func TestSimTimeObsFixture(t *testing.T) {
	analysistest.Run(t, analysis.SimTime, "simtime/obs", "mediaworm/internal/obs")
}

// The snapshot fixture pins the checkpoint encode/restore boundary:
// routing the engine clock through time.Duration on its way to or from the
// byte stream is flagged; the Writer.Time/Reader.Time tick-domain helpers
// pass clean.
func TestSimTimeSnapshotFixture(t *testing.T) {
	analysistest.Run(t, analysis.SimTime, "simtime/snapshot", "mediaworm/internal/snapshot/timefix")
}

// The calculus fixture pins the float-seconds ↔ tick-domain boundary of the
// analytic model: a priced bound entering the engine as a deadline must
// cross into sim.Time explicitly, never through time.Duration.
func TestSimTimeCalculusFixture(t *testing.T) {
	analysistest.Run(t, analysis.SimTime, "simtime/calculus", "mediaworm/internal/calculus")
}
