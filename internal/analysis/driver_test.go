package analysis_test

import (
	"testing"

	"mediaworm/internal/analysis"
	"mediaworm/internal/analysis/analysistest"
)

// TestStaleAnnotationAudit pins the driver's suppression audit: an
// //mw:simtime annotation on a line that produces no simtime finding must
// itself be reported, so exceptions cannot outlive what they justified.
func TestStaleAnnotationAudit(t *testing.T) {
	analysistest.Run(t, analysis.SimTime, "stale", "mediaworm/internal/stalefix")
}

// TestDriverOrderAndMemoization checks the multi-package pass structure:
// requesting one package analyzes its module dependencies first (so their
// facts exist when the importer runs), analyzes nothing twice, and the
// memoized loader does not re-type-check a dependency it already holds.
func TestDriverOrderAndMemoization(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(root)
	driver := analysis.NewDriver(loader)
	const target = "mediaworm/internal/traffic"
	if _, err := driver.Run([]*analysis.Analyzer{analysis.SnapCover}, []string{target}); err != nil {
		t.Fatal(err)
	}

	order := driver.Order()
	index := make(map[string]int, len(order))
	for i, path := range order {
		if j, dup := index[path]; dup {
			t.Errorf("package %s analyzed twice (positions %d and %d)", path, j, i)
		}
		index[path] = i
	}
	at, ok := index[target]
	if !ok {
		t.Fatalf("requested package %s missing from analysis order %v", target, order)
	}
	for _, dep := range []string{
		"mediaworm/internal/flit",
		"mediaworm/internal/sim",
		"mediaworm/internal/rng",
		"mediaworm/internal/network",
	} {
		di, ok := index[dep]
		if !ok {
			t.Errorf("dependency %s was never analyzed; facts for its types are missing", dep)
			continue
		}
		if di > at {
			t.Errorf("dependency %s analyzed after %s (positions %d > %d)", dep, target, di, at)
		}
	}

	// The run above type-checked every dependency; asking for one again
	// must come from the memo, not a fresh type-check.
	checks := loader.TypeChecks()
	for i := 0; i < 2; i++ {
		if _, err := loader.Dependency("mediaworm/internal/sim"); err != nil {
			t.Fatal(err)
		}
	}
	if got := loader.TypeChecks(); got != checks {
		t.Errorf("memoized Dependency re-type-checked: %d type-checks before, %d after", checks, got)
	}
}
