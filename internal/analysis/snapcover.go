package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SnapCover verifies checkpoint completeness: every field of every struct
// type reachable from a snapshot encoder must be written by that encoder
// (and read by the matching decoder), so adding a field to Router/NI/stream
// state without extending the checkpoint format is a build break instead of
// a silent state-loss bug.
//
// An encoder is a module function that takes a *snapshot.Writer parameter
// or calls snapshot.NewWriter; decoders take a *snapshot.Reader or call
// snapshot.NewReader. The subjects of a package's encode side are the named
// struct types of that package among all its encoders' receivers,
// parameters, and results, plus — transitively — every same-package named
// struct type reached through a covered field (the decode side is
// symmetric). A field counts as covered when, anywhere in the side's
// same-package static call closure, it is selected (x.f), named in a keyed
// composite literal, or implied by an unkeyed composite literal; a struct
// passed wholesale to encoding/json Marshal/Unmarshal is covered
// recursively, the way the JSON codec itself walks it.
//
// Cross-package state uses facts: analyzing a package exports a fact for
// each struct type its encoders reach, and a covered field whose type is a
// module struct from another package must carry such a fact from its home
// package — otherwise that state would silently vanish from checkpoints.
//
// A field that is deliberately outside the snapshot contract — scratch
// buffers, wiring rebuilt by the constructor, subsystems the checkpoint
// gate refuses — is annotated on its declaration line:
//
//	//mw:snapcover — <why this field is excluded or rebuilt on restore>
//
// Annotated fields are excluded entirely: not required to be covered, not
// recursed into, not fact-checked.
var SnapCover = &Analyzer{
	Name: "snapcover",
	Doc:  "every field of snapshotted structs must be encoded and decoded, or annotated",
	Run:  runSnapCover,
}

// snapCoveredFact marks a named struct type as reached by a snapshot
// encoder and/or decoder in its home package. Importing packages use it to
// check that a covered field's foreign type has its own coverage.
type snapCoveredFact struct {
	Encode bool
	Decode bool
}

func (*snapCoveredFact) AFact() {}

const snapshotPkgPath = ModulePath + "/internal/snapshot"

// snapCoverScoped excludes front-ends (no simulation state) and the
// snapshot container package itself (its Writer/Reader are the transport,
// not subjects).
func snapCoverScoped(path string) bool {
	if !inModule(path) {
		return false
	}
	if hasPathPrefix(path, ModulePath+"/cmd") || hasPathPrefix(path, ModulePath+"/examples") {
		return false
	}
	return path != snapshotPkgPath
}

func runSnapCover(pass *Pass) error {
	if !snapCoverScoped(pass.Pkg.Path()) {
		return nil
	}
	sc := &snapCoverPass{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		reported: make(map[string]bool),
		reached:  make(map[*types.TypeName]*snapCoveredFact),
		excluded: make(map[string]bool),
	}
	sc.indexFuncs()
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Package).Filename
		for _, site := range annotationSites(pass.Fset, file, "snapcover") {
			sc.excluded[fmt.Sprintf("%s:%d", fname, site.line)] = true
		}
	}
	var encoders, decoders []*types.Func
	for _, fn := range sc.sortedFuncs() {
		enc, dec := sc.encoderSides(fn)
		if enc {
			encoders = append(encoders, fn)
		}
		if dec {
			decoders = append(decoders, fn)
		}
	}
	sc.checkSide(encoders, true)
	sc.checkSide(decoders, false)
	// Export one merged fact per reached type, so importing packages can
	// verify their foreign-typed fields against this package's coverage.
	for tn, f := range sc.reached {
		pass.ExportObjectFact(tn, f)
	}
	return nil
}

type snapCoverPass struct {
	pass     *Pass
	decls    map[*types.Func]*ast.FuncDecl
	reported map[string]bool // dedup key: "offset\x00message"
	reached  map[*types.TypeName]*snapCoveredFact
	excluded map[string]bool // "file:line" carrying an //mw:snapcover annotation
}

// fieldExcluded reports whether fld carries an //mw:snapcover annotation:
// trailing on its own declaration line, or standalone on the line above.
// A site on the line above that is another field's line is that field's
// trailing annotation, not this one's — without the distinction, a
// trailing annotation would bleed onto the next field and silently exclude
// it too.
func (sc *snapCoverPass) fieldExcluded(fld *types.Var, fieldLines map[int]bool) bool {
	pos := sc.pass.Fset.Position(fld.Pos())
	if sc.excluded[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] {
		return true
	}
	return sc.excluded[fmt.Sprintf("%s:%d", pos.Filename, pos.Line-1)] && !fieldLines[pos.Line-1]
}

// indexFuncs records every function declaration with a body.
func (sc *snapCoverPass) indexFuncs() {
	for _, file := range sc.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := sc.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				sc.decls[obj] = fd
			}
		}
	}
}

// sortedFuncs returns the package's functions in source order, so
// diagnostics and fact merging are deterministic.
func (sc *snapCoverPass) sortedFuncs() []*types.Func {
	fns := make([]*types.Func, 0, len(sc.decls))
	for fn := range sc.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	return fns
}

// encoderSides classifies fn: does it encode to a snapshot, decode from
// one, or neither? Writer/Reader parameters identify the section encoders;
// calling snapshot.NewWriter/NewReader identifies top-level entry points
// like WriteCheckpoint that receive only an io.Writer.
func (sc *snapCoverPass) encoderSides(fn *types.Func) (enc, dec bool) {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		switch {
		case isSnapshotPtr(sig.Params().At(i).Type(), "Writer"):
			enc = true
		case isSnapshotPtr(sig.Params().At(i).Type(), "Reader"):
			dec = true
		}
	}
	if enc || dec {
		return enc, dec
	}
	ast.Inspect(sc.decls[fn].Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutilCallee(sc.pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != snapshotPkgPath {
			return true
		}
		switch callee.Name() {
		case "NewWriter":
			enc = true
		case "NewReader":
			dec = true
		}
		return true
	})
	return enc, dec
}

// isSnapshotPtr reports whether t is *snapshot.<name>.
func isSnapshotPtr(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == snapshotPkgPath && named.Obj().Name() == name
}

// typeutilCallee resolves a call's static callee, or nil for dynamic calls.
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// closureCoverage is what one encoder's same-package call closure covers.
type closureCoverage struct {
	fields    map[*types.TypeName]map[string]bool // covered fields per local struct
	wholesale map[*types.TypeName]bool            // structs serialized wholesale (JSON)
}

// checkSide runs the coverage check for one side of the contract over the
// union of the package's encoders (encode=true) or decoders (encode=false).
// Sibling encoders routinely split one package's state between them —
// EncodeFlit writes Message headers while EncodeTable writes the bodies —
// so a field is covered when any same-side closure covers it.
func (sc *snapCoverPass) checkSide(fns []*types.Func, encode bool) {
	if len(fns) == 0 {
		return
	}
	cov := sc.collectCoverage(sc.callClosure(fns))
	var roots []*types.TypeName
	rootSeen := make(map[*types.TypeName]bool)
	for _, fn := range fns {
		for _, tn := range sc.subjectRoots(fn) {
			if !rootSeen[tn] {
				rootSeen[tn] = true
				roots = append(roots, tn)
			}
		}
	}

	verb, side := "written by any snapshot encoder", "encoder"
	if !encode {
		verb, side = "read by any snapshot decoder", "decoder"
	}

	seen := make(map[*types.TypeName]bool)
	queue := roots
	for len(queue) > 0 {
		tn := queue[0]
		queue = queue[1:]
		if seen[tn] {
			continue
		}
		seen[tn] = true
		sc.markReached(tn, encode)
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		whole := cov.wholesale[tn]
		fieldLines := make(map[int]bool, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fieldLines[sc.pass.Fset.Position(st.Field(i).Pos()).Line] = true
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if sc.fieldExcluded(fld, fieldLines) {
				// Excluded from the contract: emit the (suppressed) finding
				// that keeps the annotation from auditing as stale, and stop
				// — no coverage demand, no recursion, no fact check.
				sc.report(fld.Pos(),
					"field %s.%s is excluded from the snapshot contract by annotation",
					tn.Name(), fld.Name())
				continue
			}
			covered := whole || cov.fields[tn][fld.Name()]
			if !covered {
				sc.report(fld.Pos(),
					"field %s.%s is not %s in this package — extend the checkpoint format or annotate //mw:snapcover — <why excluded>",
					tn.Name(), fld.Name(), verb)
				continue
			}
			for _, ftn := range namedStructsIn(fld.Type()) {
				if ftn.Pkg() == sc.pass.Pkg {
					if whole {
						cov.wholesale[ftn] = true
					}
					queue = append(queue, ftn)
					continue
				}
				if !inModule(ftn.Pkg().Path()) || whole {
					continue
				}
				var fact snapCoveredFact
				ok := sc.pass.ImportObjectFact(ftn, &fact)
				if !ok || (encode && !fact.Encode) || (!encode && !fact.Decode) {
					sc.report(fld.Pos(),
						"field %s.%s has type %s.%s, which no snapshot %s in its package covers — that state is lost across checkpoint/restore; cover it there or annotate //mw:snapcover — <why excluded>",
						tn.Name(), fld.Name(), ftn.Pkg().Name(), ftn.Name(), side)
				}
			}
		}
	}
}

// markReached merges one side into the per-type fact to be exported.
func (sc *snapCoverPass) markReached(tn *types.TypeName, encode bool) {
	f := sc.reached[tn]
	if f == nil {
		f = &snapCoveredFact{}
		sc.reached[tn] = f
	}
	if encode {
		f.Encode = true
	} else {
		f.Decode = true
	}
}

// subjectRoots returns the named struct types of this package among fn's
// receiver, parameters, and results — the state the encoder is responsible
// for. Foreign types are excluded: their own package's encoders carry the
// obligation (enforced via facts at the field that stores them).
func (sc *snapCoverPass) subjectRoots(fn *types.Func) []*types.TypeName {
	sig := fn.Type().(*types.Signature)
	var roots []*types.TypeName
	add := func(t types.Type) {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() != sc.pass.Pkg {
			return
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return
		}
		roots = append(roots, named.Obj())
	}
	if sig.Recv() != nil {
		add(sig.Recv().Type())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		add(sig.Params().At(i).Type())
	}
	for i := 0; i < sig.Results().Len(); i++ {
		add(sig.Results().At(i).Type())
	}
	return roots
}

// callClosure returns fns plus every same-package function statically
// reachable from them. Helpers like encodeStats extend their caller's
// coverage; the closure stops at package boundaries, where facts take over.
func (sc *snapCoverPass) callClosure(fns []*types.Func) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	seen := map[*types.Func]bool{}
	stack := append([]*types.Func(nil), fns...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		fd, ok := sc.decls[cur]
		if !ok {
			continue
		}
		out = append(out, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := typeutilCallee(sc.pass.TypesInfo, call); callee != nil {
				if _, local := sc.decls[callee]; local && !seen[callee] {
					stack = append(stack, callee)
				}
			}
			return true
		})
	}
	return out
}

// collectCoverage gathers field coverage across a call closure: selector
// expressions, composite literals, and wholesale JSON serialization.
func (sc *snapCoverPass) collectCoverage(closure []*ast.FuncDecl) *closureCoverage {
	cov := &closureCoverage{
		fields:    make(map[*types.TypeName]map[string]bool),
		wholesale: make(map[*types.TypeName]bool),
	}
	mark := func(tn *types.TypeName, field string) {
		if tn.Pkg() != sc.pass.Pkg {
			return
		}
		m := cov.fields[tn]
		if m == nil {
			m = make(map[string]bool)
			cov.fields[tn] = m
		}
		m[field] = true
	}
	for _, fd := range closure {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel := sc.pass.TypesInfo.Selections[n]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				// Walk the selection's index path so promoted fields also
				// cover the embedded hops they pass through.
				cur := localNamedStruct(sel.Recv())
				for _, idx := range sel.Index() {
					if cur == nil {
						break
					}
					st := cur.Type().Underlying().(*types.Struct)
					fld := st.Field(idx)
					mark(cur, fld.Name())
					cur = localNamedStruct(fld.Type())
				}
			case *ast.CompositeLit:
				tv, ok := sc.pass.TypesInfo.Types[ast.Expr(n)]
				if !ok {
					return true
				}
				tn := localNamedStruct(tv.Type)
				if tn == nil || tn.Pkg() != sc.pass.Pkg || len(n.Elts) == 0 {
					return true
				}
				st := tn.Type().Underlying().(*types.Struct)
				if _, keyed := n.Elts[0].(*ast.KeyValueExpr); keyed {
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								mark(tn, id.Name)
							}
						}
					}
				} else {
					for i := 0; i < st.NumFields(); i++ {
						mark(tn, st.Field(i).Name())
					}
				}
			case *ast.CallExpr:
				callee := typeutilCallee(sc.pass.TypesInfo, n)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "encoding/json" {
					return true
				}
				if callee.Name() != "Marshal" && callee.Name() != "Unmarshal" &&
					callee.Name() != "MarshalIndent" {
					return true
				}
				for _, arg := range n.Args {
					tv, ok := sc.pass.TypesInfo.Types[arg]
					if !ok {
						continue
					}
					if tn := localNamedStruct(tv.Type); tn != nil && tn.Pkg() == sc.pass.Pkg {
						cov.wholesale[tn] = true
					}
				}
			}
			return true
		})
	}
	return cov
}

// localNamedStruct unwraps pointers and returns the named struct type
// behind t, or nil.
func localNamedStruct(t types.Type) *types.TypeName {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named.Obj()
}

// namedStructsIn collects the named struct types a field of type t stores,
// looking through pointers, slices, arrays, and map keys/values. Interfaces
// are skipped: their dynamic types cannot be enumerated statically (the
// encoders type-switch over them, e.g. sched.EncodeArbiter, and refuse
// unknown cases at run time).
func namedStructsIn(t types.Type) []*types.TypeName {
	var out []*types.TypeName
	seen := make(map[types.Type]bool)
	var walk func(types.Type)
	walk = func(t types.Type) {
		if seen[t] {
			return
		}
		seen[t] = true
		switch t := t.(type) {
		case *types.Pointer:
			walk(t.Elem())
		case *types.Slice:
			walk(t.Elem())
		case *types.Array:
			walk(t.Elem())
		case *types.Map:
			walk(t.Key())
			walk(t.Elem())
		case *types.Named:
			if t.Obj().Pkg() == nil {
				return
			}
			if _, ok := t.Underlying().(*types.Struct); ok {
				out = append(out, t.Obj())
				return
			}
			walk(t.Underlying())
		}
	}
	walk(t)
	return out
}

// report emits a deduplicated diagnostic: the same field reached through
// several encoders yields one finding per distinct message.
func (sc *snapCoverPass) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d\x00%s", pos, msg)
	if sc.reported[key] {
		return
	}
	sc.reported[key] = true
	sc.pass.Report(Diagnostic{Pos: pos, Message: msg})
}
