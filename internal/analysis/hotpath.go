package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPath guards the zero-allocation engine statically. A function whose
// doc comment carries the root marker
//
//	//mw:hotpath
//
// declares a steady-state hot path (the calendar operations, the router
// pipeline tick, the arbiter picks). HotPath walks the marked functions and
// everything they transitively call within the module and flags constructs
// that allocate or may escape: composite literals taken by pointer, slice
// and map literals, make/new, append without same-function preallocation
// evidence, interface boxing at call sites, escaping closures, method
// values, fmt formatting, string concatenation and string<->[]byte
// conversions, and goroutine launches.
//
// Cross-package calls are checked through facts: every analyzed package
// exports, for each of its functions, whether the function allocates
// (directly or transitively); a hot caller in an importing package flags
// the call site. Dynamic calls — interface methods and func values — are
// skipped: mark the implementations (the arbiter Picks are) rather than
// the dispatch site.
//
// An accepted allocation (amortized warm-up growth, a cold error path) is
// annotated on its line with
//
//	//mw:hotpath — <why this allocation is acceptable>
//
// which also excludes it from the function's exported fact, so callers in
// other packages are not flagged for it; the benchmark gate still bounds
// such paths dynamically. Arguments to panic are exempt — a panicking hot
// path is already dead.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating or escaping constructs in //mw:hotpath functions and their callees",
	Run:  runHotPath,
}

// allocFact records that a function allocates, with a one-hop explanation
// chain for the diagnostic at a cross-package call site.
type allocFact struct {
	Allocates bool
	Why       string
}

func (*allocFact) AFact() {}

const hotMarker = annotationPrefix + "hotpath"

func runHotPath(pass *Pass) error {
	if !inModule(pass.Pkg.Path()) {
		return nil
	}
	hp := &hotPass{
		pass:  pass,
		funcs: make(map[*types.Func]*hotFunc),
	}
	hp.collect()
	hp.exportFacts()
	hp.reportHot()
	return nil
}

type hotFunc struct {
	decl     *ast.FuncDecl
	findings []hotFinding
	callees  []*types.Func // same-package static callees
	marked   bool          // carries the //mw:hotpath root marker
}

type hotFinding struct {
	pos        token.Pos
	msg        string
	suppressed bool // annotated: reported (as suppressed) but not exported
}

type hotPass struct {
	pass  *Pass
	funcs map[*types.Func]*hotFunc

	allocMemo map[*types.Func]*hotFinding // nil entry: does not allocate
}

// collect indexes every function declaration, then scans each body once.
// Indexing must finish before any body is scanned: recordCallees keeps only
// call edges to functions already in hp.funcs, so a single interleaved pass
// would drop edges to callees declared after their caller.
func (hp *hotPass) collect() {
	type scanItem struct {
		hf         *hotFunc
		suppressed map[int]bool
	}
	var scans []scanItem
	for _, file := range hp.pass.Files {
		suppressed := suppressedLines(hp.pass.Fset, file, "hotpath")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := hp.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			hf := &hotFunc{decl: fd, marked: hasHotMarker(fd)}
			hp.funcs[obj] = hf
			scans = append(scans, scanItem{hf, suppressed})
		}
	}
	for _, s := range scans {
		hp.scanBody(s.hf, s.suppressed)
	}
}

// hasHotMarker reports whether fd's doc comment carries //mw:hotpath.
func hasHotMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotMarker || strings.HasPrefix(text, hotMarker+" ") ||
			strings.HasPrefix(text, hotMarker+"\t") {
			return true
		}
	}
	return false
}

// scanBody records fn's allocating constructs and same-package call edges.
func (hp *hotPass) scanBody(hf *hotFunc, suppressed map[int]bool) {
	info := hp.pass.TypesInfo
	body := hf.decl.Body

	// Pre-pass: composite literals that are address-taken, function
	// literals that are immediately invoked (defer func(){...}() and
	// friends run inline and do not escape), and expressions used as the
	// Fun of a call (so method values used only for calling are not
	// closures).
	addrOf := make(map[*ast.CompositeLit]bool)
	invoked := make(map[*ast.FuncLit]bool)
	callFun := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					addrOf[cl] = true
				}
			}
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			callFun[fun] = true
			if lit, ok := fun.(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		}
		return true
	})

	flag := func(pos token.Pos, format string, args ...any) {
		hf.findings = append(hf.findings, hotFinding{
			pos:        pos,
			msg:        fmt.Sprintf(format, args...),
			suppressed: suppressed[hp.pass.Fset.Position(pos).Line],
		})
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			flag(n.Pos(), "go statement on a hot path: launching a goroutine allocates and forfeits determinism of the tick")

		case *ast.FuncLit:
			if !invoked[n] {
				flag(n.Pos(), "function literal escapes: a closure value allocates; hoist it or restructure so the literal is immediately invoked")
				return false // execution context unknown; don't scan the body
			}

		case *ast.CompositeLit:
			tv, ok := info.Types[ast.Expr(n)]
			if !ok {
				break
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				flag(n.Pos(), "slice literal allocates on every execution; hoist it to a package variable or reuse a scratch buffer")
			case *types.Map:
				flag(n.Pos(), "map literal allocates on every execution; hoist it to a package variable")
			default:
				if addrOf[n] {
					flag(n.Pos(), "composite literal taken by pointer escapes to the heap; reuse a preallocated value instead")
				}
			}

		case *ast.CallExpr:
			return hp.scanCall(hf, n, body, callFun, flag)

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						flag(n.Pos(), "string concatenation allocates; preformat outside the hot path")
					}
				}
			}

		case *ast.SelectorExpr:
			// A method value (x.M used as a value, not called) allocates a
			// bound-method closure.
			if callFun[ast.Expr(n)] {
				break
			}
			if sel := info.Selections[n]; sel != nil && sel.Kind() == types.MethodVal {
				flag(n.Pos(), "method value allocates a bound-method closure; call it directly or hoist the value")
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	hp.recordCallees(hf)
}

// scanCall handles one call expression; the return value tells ast.Inspect
// whether to descend into the call's children.
func (hp *hotPass) scanCall(hf *hotFunc, call *ast.CallExpr, body *ast.BlockStmt, callFun map[ast.Expr]bool, flag func(token.Pos, string, ...any)) bool {
	info := hp.pass.TypesInfo

	// Conversions: string <-> []byte/[]rune copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			from, okf := info.Types[call.Args[0]]
			if okf && conversionAllocates(from.Type, tv.Type) {
				flag(call.Pos(), "conversion between string and byte/rune slice copies and allocates")
			}
		}
		return true
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				// A panicking hot path is already dead; its argument (often
				// fmt.Sprintf) is exempt.
				return false
			case "new":
				flag(call.Pos(), "new(T) allocates; reuse a preallocated value")
			case "make":
				flag(call.Pos(), "make allocates on every execution; hoist the buffer and reuse it")
			case "append":
				if len(call.Args) > 0 && !hp.appendEvidence(body, call.Args[0]) {
					flag(call.Pos(), "append without preallocated-capacity evidence may grow the backing array; reslice to [:0] or make with capacity in this function")
				}
			}
			return true
		}
	}

	callee := typeutilCallee(info, call)
	if callee != nil {
		hp.checkKnownCallee(hf, call, callee, flag)
	}
	hp.checkBoxing(call, callee, flag)
	return true
}

// checkKnownCallee flags calls to stdlib allocators and to module functions
// whose exported fact says they allocate; same-package callees are handled
// by the hot-closure walk instead.
func (hp *hotPass) checkKnownCallee(hf *hotFunc, call *ast.CallExpr, callee *types.Func, flag func(token.Pos, string, ...any)) {
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	path := pkg.Path()
	switch {
	case path == hp.pass.Pkg.Path():
		return // same package: the closure walk reports at the construct
	case inModule(path):
		var fact allocFact
		if hp.pass.ImportObjectFact(callee, &fact) && fact.Allocates {
			flag(call.Pos(), "call to %s.%s allocates on a hot path: %s", pkg.Name(), callee.Name(), fact.Why)
		}
	case allocStdlib[path] != nil:
		if why, ok := allocStdlib[path][callee.Name()]; ok {
			flag(call.Pos(), "call to %s.%s %s", path, callee.Name(), why)
		}
	case path == "fmt":
		flag(call.Pos(), "call to fmt.%s allocates (formatting boxes its operands); hot paths must not format", callee.Name())
	}
}

// allocStdlib curates standard-library calls known to allocate. Absence
// means "assumed clean" — the benchmark gate backs the assumption.
var allocStdlib = map[string]map[string]string{
	"errors": {"New": "allocates a new error value"},
	"sort": {
		"Slice":       "allocates (boxes the slice and the less closure through reflection)",
		"SliceStable": "allocates (boxes the slice and the less closure through reflection)",
		"Sort":        "may allocate via the interface value",
		"Stable":      "may allocate via the interface value",
	},
	"strconv": {
		"Itoa":        "allocates the result string",
		"FormatInt":   "allocates the result string",
		"FormatUint":  "allocates the result string",
		"FormatFloat": "allocates the result string",
		"Quote":       "allocates the result string",
	},
	"strings": {
		"Join": "allocates the result string", "Split": "allocates the result slice",
		"SplitN": "allocates the result slice", "Fields": "allocates the result slice",
		"Repeat": "allocates the result string", "Replace": "allocates the result string",
		"ReplaceAll": "allocates the result string", "ToUpper": "allocates the result string",
		"ToLower": "allocates the result string", "Map": "allocates the result string",
	},
}

// checkBoxing flags non-pointer-shaped arguments passed to interface
// parameters: the conversion boxes the value on the heap.
func (hp *hotPass) checkBoxing(call *ast.CallExpr, callee *types.Func, flag func(token.Pos, string, ...any)) {
	// fmt calls are already flagged wholesale; don't double-report per arg.
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		return
	}
	tv, ok := hp.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // forwarding a []T... re-uses the slice; no per-arg boxing
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := hp.pass.TypesInfo.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		if boxingAllocates(at.Type) {
			flag(arg.Pos(), "passing %s to interface parameter boxes the value on the heap; pass a pointer or restructure", at.Type.String())
		}
	}
}

// boxingAllocates reports whether converting a value of type t to an
// interface heap-allocates: pointer-shaped types (pointers, channels,
// maps, funcs, unsafe pointers) and interfaces do not.
func boxingAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	}
	return true
}

// conversionAllocates reports whether a conversion from -> to copies into a
// fresh allocation (string <-> []byte / []rune).
func conversionAllocates(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isStr(to))
}

// appendEvidence reports whether the function shows same-function evidence
// that target's backing array is preallocated: an assignment of target to a
// reslice of itself (x = x[:0]) or to a make with explicit capacity.
func (hp *hotPass) appendEvidence(body *ast.BlockStmt, target ast.Expr) bool {
	key := exprKey(target)
	if key == "" {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if exprKey(lhs) != key || i >= len(as.Rhs) {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.SliceExpr:
				if exprKey(rhs.X) == key {
					found = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "make" && len(rhs.Args) == 3 {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// exprKey renders an Ident/Selector/Index chain as a comparable string, or
// "" for expressions outside that grammar.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := exprKey(e.X)
		idx := exprKey(e.Index)
		if base == "" {
			return ""
		}
		if idx == "" {
			idx = "?"
		}
		return base + "[" + idx + "]"
	}
	return ""
}

// recordCallees collects fn's same-package static call edges for the hot
// closure and the allocation summary.
func (hp *hotPass) recordCallees(hf *hotFunc) {
	seen := make(map[*types.Func]bool)
	ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutilCallee(hp.pass.TypesInfo, call)
		if callee == nil || seen[callee] {
			return true
		}
		if _, local := hp.funcs[callee]; local {
			seen[callee] = true
			hf.callees = append(hf.callees, callee)
		}
		return true
	})
}

// allocates returns the finding that makes fn allocating (directly or via a
// same-package callee), or nil. Cycles resolve optimistically: a cycle with
// no direct allocation does not allocate.
func (hp *hotPass) allocates(fn *types.Func, visiting map[*types.Func]bool) *hotFinding {
	if hp.allocMemo == nil {
		hp.allocMemo = make(map[*types.Func]*hotFinding)
	}
	if f, ok := hp.allocMemo[fn]; ok {
		return f
	}
	if visiting[fn] {
		return nil
	}
	visiting[fn] = true
	defer delete(visiting, fn)

	hf := hp.funcs[fn]
	if hf == nil {
		return nil
	}
	for i := range hf.findings {
		if !hf.findings[i].suppressed {
			hp.allocMemo[fn] = &hf.findings[i]
			return &hf.findings[i]
		}
	}
	for _, callee := range hf.callees {
		if f := hp.allocates(callee, visiting); f != nil {
			via := &hotFinding{
				pos: f.pos,
				msg: fmt.Sprintf("calls %s, which allocates: %s", callee.Name(), f.msg),
			}
			hp.allocMemo[fn] = via
			return via
		}
	}
	hp.allocMemo[fn] = nil
	return nil
}

// exportFacts publishes an allocFact for every allocating function, so hot
// callers in importing packages flag the call site.
func (hp *hotPass) exportFacts() {
	for fn := range hp.funcs {
		if f := hp.allocates(fn, make(map[*types.Func]bool)); f != nil {
			pos := hp.pass.Fset.Position(f.pos)
			why := fmt.Sprintf("%s (%s:%d)", f.msg, shortFile(pos.Filename), pos.Line)
			hp.pass.ExportObjectFact(fn, &allocFact{Allocates: true, Why: why})
		}
	}
}

// reportHot walks the hot closure — marked roots plus same-package callees
// — and reports every finding inside it, suppressed ones included (the
// driver marks them).
func (hp *hotPass) reportHot() {
	hot := make(map[*types.Func]bool)
	var mark func(fn *types.Func)
	mark = func(fn *types.Func) {
		if hot[fn] {
			return
		}
		hot[fn] = true
		if hf := hp.funcs[fn]; hf != nil {
			for _, callee := range hf.callees {
				mark(callee)
			}
		}
	}
	roots := make([]*types.Func, 0)
	for fn, hf := range hp.funcs {
		if hf.marked {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	for _, fn := range roots {
		mark(fn)
	}
	ordered := make([]*types.Func, 0, len(hot))
	for fn := range hot {
		ordered = append(ordered, fn)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
	for _, fn := range ordered {
		for _, f := range hp.funcs[fn].findings {
			hp.pass.Report(Diagnostic{Pos: f.pos, Message: f.msg})
		}
	}
}

// shortFile trims a path to its final element for fact messages.
func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
