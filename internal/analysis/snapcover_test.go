package analysis_test

import (
	"testing"

	"mediaworm/internal/analysis"
	"mediaworm/internal/analysis/analysistest"
)

// TestSnapCoverFixture pins the core snapcover semantics on a golden
// package: per-side union over sibling encoders, helper-call closures,
// keyed composite literals, wholesale JSON coverage, and the
// //mw:snapcover exclusion contract.
func TestSnapCoverFixture(t *testing.T) {
	analysistest.Run(t, analysis.SnapCover, "snapcover", "mediaworm/internal/snapcoverfix")
}

// TestSnapCoverFactFlow runs the exporter fixture before its importer
// through one shared driver: dep.Covered's fact must suppress a finding on
// the Good field while the fact-less dep.Uncovered is flagged.
func TestSnapCoverFactFlow(t *testing.T) {
	analysistest.RunMulti(t, analysis.SnapCover, []analysistest.Fixture{
		{Dir: "snapfacts/dep", Path: "mediaworm/internal/analysis/testdata/src/snapfacts/dep"},
		{Dir: "snapfacts/app", Path: "mediaworm/internal/analysis/testdata/src/snapfacts/app"},
	})
}

// TestSnapCoverFactFlowImplicitDeps requests only the importer: the driver
// must discover the dep fixture through the import graph and analyze it
// facts-only first, so the expectations still hold.
func TestSnapCoverFactFlowImplicitDeps(t *testing.T) {
	analysistest.RunMulti(t, analysis.SnapCover, []analysistest.Fixture{
		{Dir: "snapfacts/app", Path: "mediaworm/internal/analysis/testdata/src/snapfacts/app"},
	})
}

// The calculus fixture pins snapcover on the analytic controller shape:
// per-link aggregates and admit counters must round-trip, derived
// fixed-point caches carry the exclusion marker, and a field forgotten on
// either side is flagged.
func TestSnapCoverCalculusFixture(t *testing.T) {
	analysistest.Run(t, analysis.SnapCover, "snapcover/calculus", "mediaworm/internal/calculus")
}

// The arena fixture pins snapcover on the struct-of-arrays pool shape
// introduced with the topology generator: run state lives in views carved
// from a build-time arena, the arena hides behind one excluded field (so
// its slabs need no annotations), and a view or scalar forgotten on either
// side is still flagged.
func TestSnapCoverArenaFixture(t *testing.T) {
	analysistest.Run(t, analysis.SnapCover, "snapcover/arena", "mediaworm/internal/arenasnapfix")
}
