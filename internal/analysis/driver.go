package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Driver runs analyzers over packages in module dependency order,
// carrying analyzer facts across package boundaries: before a package is
// analyzed, every module package it imports has been analyzed (facts-only),
// so Pass.ImportObjectFact can answer questions about imported declarations.
//
// Diagnostics are produced only for the packages the caller asks about;
// dependency passes exist to populate the fact store. Unlike RunAnalyzers,
// the driver keeps suppressed diagnostics (marked Diagnostic.Suppressed) so
// front-ends can surface them, and it audits annotations: an //mw:<name>
// suppression that no longer suppresses anything is itself reported, so an
// exception cannot outlive its justification.
type Driver struct {
	Loader *Loader

	store *factStore
	done  map[string]bool // package paths whose facts are recorded
	order []string        // analysis order, for tests and debugging
}

// NewDriver returns a driver sharing the given loader (and so its memoized
// type-check results).
func NewDriver(l *Loader) *Driver {
	return &Driver{Loader: l, store: newFactStore(), done: make(map[string]bool)}
}

// Run loads each module import path, analyzes its dependencies for facts
// first, and returns the requested packages' diagnostics in input order
// (position-sorted within each package).
func (d *Driver) Run(analyzers []*Analyzer, paths []string) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, path := range paths {
		pkg, err := d.Loader.Load(path)
		if err != nil {
			return nil, err
		}
		diags, err := d.RunPackage(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	return out, nil
}

// RunPackage analyzes one already-loaded package, first ensuring facts for
// every module package it imports (transitively). The returned diagnostics
// include suppressed findings and stale-annotation audit reports.
func (d *Driver) RunPackage(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	if err := d.ensureDeps(analyzers, pkg.Types); err != nil {
		return nil, err
	}
	diags, err := d.analyze(analyzers, pkg, true)
	if err != nil {
		return nil, err
	}
	d.done[pkg.Path] = true
	return diags, nil
}

// Order returns the package paths analyzed so far, dependencies first —
// the observable evidence that facts flow in import order.
func (d *Driver) Order() []string {
	return append([]string(nil), d.order...)
}

// ensureDeps analyzes (facts-only) every module dependency of tpkg that the
// driver has not seen yet, dependencies before dependents.
func (d *Driver) ensureDeps(analyzers []*Analyzer, tpkg *types.Package) error {
	for _, imp := range tpkg.Imports() {
		path := imp.Path()
		if !inModule(path) || d.done[path] {
			continue
		}
		dep, err := d.Loader.Dependency(path)
		if err != nil {
			return err
		}
		if err := d.ensureDeps(analyzers, dep.Types); err != nil {
			return err
		}
		if _, err := d.analyze(analyzers, dep, false); err != nil {
			return err
		}
		d.done[path] = true
	}
	return nil
}

// analyze runs every analyzer over pkg. When requested is false only fact
// side effects matter and no diagnostics are produced.
func (d *Driver) analyze(analyzers []*Analyzer, pkg *Package, requested bool) ([]Diagnostic, error) {
	d.order = append(d.order, pkg.Path)
	files := analysisFiles(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		raw, err := runAnalyzer(a, pkg, files, d.store)
		if err != nil {
			return nil, err
		}
		if !requested {
			continue
		}
		out = append(out, filterAndAudit(a, pkg, files, raw, true)...)
	}
	sortDiagnostics(pkg.Fset, out)
	return out, nil
}

// analysisFiles returns pkg's non-test files: determinism and coverage
// rules do not apply to test code.
func analysisFiles(pkg *Package) []*ast.File {
	var files []*ast.File
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// runAnalyzer applies one analyzer to pkg and returns its raw diagnostics.
// When store is non-nil the pass can export and import facts through it.
func runAnalyzer(a *Analyzer, pkg *Package, files []*ast.File, store *factStore) ([]Diagnostic, error) {
	var raw []Diagnostic
	var factErr error
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d Diagnostic) { raw = append(raw, d) },
	}
	if store != nil {
		pass.exportFact = func(obj types.Object, f Fact) {
			if err := store.export(a.Name, obj, f); err != nil && factErr == nil {
				factErr = err
			}
		}
		pass.importFact = func(obj types.Object, f Fact) bool {
			return store.load(a.Name, obj, f)
		}
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	if factErr != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, factErr)
	}
	return raw, nil
}

// filterAndAudit attributes raw diagnostics to their analyzer, marks the
// ones on annotated lines as suppressed, and — when audit is set — reports
// every //mw:<name> annotation that suppresses nothing.
func filterAndAudit(a *Analyzer, pkg *Package, files []*ast.File, raw []Diagnostic, audit bool) []Diagnostic {
	name := annotationName(a)
	var out []Diagnostic
	for _, f := range files {
		fname := pkg.Fset.Position(f.Package).Filename
		sites := annotationSites(pkg.Fset, f, name)
		suppressed := make(map[int]bool, 2*len(sites))
		for _, s := range sites {
			suppressed[s.line] = true
			suppressed[s.line+1] = true
		}
		hit := make(map[int]bool)
		for _, dg := range raw {
			pos := pkg.Fset.Position(dg.Pos)
			if pos.Filename != fname {
				continue
			}
			hit[pos.Line] = true
			dg.Analyzer = a
			dg.Suppressed = suppressed[pos.Line]
			out = append(out, dg)
		}
		if !audit {
			continue
		}
		for _, s := range sites {
			if hit[s.line] || hit[s.line+1] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Message:  fmt.Sprintf("stale //mw:%s annotation: no %s finding on this line or the next — remove the annotation or restore what it justified", name, a.Name),
				Analyzer: a,
			})
		}
	}
	return out
}

// sortDiagnostics orders diagnostics by file, line, column, then analyzer
// name, so output is stable regardless of analyzer registration order.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer.Name < diags[j].Analyzer.Name
	})
}
