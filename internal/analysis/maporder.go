package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags range-over-map loops in simulation-path packages whose
// bodies do order-sensitive work: posting events on the sim calendar,
// appending to slices, accumulating floating-point sums, or writing
// output. Go randomizes map iteration order per run, so any of those leaks
// the iteration order into observable results and breaks seed
// reproducibility.
//
// The fix is the sorted-keys idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k) // collecting keys alone is order-insensitive
//	}
//	sort.Slice(keys, ...)
//	for _, k := range keys { ... order-sensitive work ... }
//
// A loop whose order-insensitivity is subtler than the analyzer can see is
// annotated //mw:maporder with the argument why.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive work inside range-over-map loops in sim-path packages",
	Run:  runMapOrder,
}

// mapOrderScope lists the packages whose execution order feeds simulation
// results; subpackages inherit the scope.
var mapOrderScope = []string{
	ModulePath + "/internal/sim",
	ModulePath + "/internal/core",
	ModulePath + "/internal/network",
	ModulePath + "/internal/sched",
	ModulePath + "/internal/stats",
	ModulePath + "/internal/snapshot",
	ModulePath + "/internal/traffic",
}

func mapOrderScoped(path string) bool {
	for _, p := range mapOrderScope {
		if hasPathPrefix(path, p) {
			return true
		}
	}
	return false
}

func runMapOrder(pass *Pass) error {
	if !mapOrderScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				why := orderSensitiveUse(pass, rng.Body)
				if why == "" {
					return true
				}
				if why == "appends to a slice" && isCollectThenSort(pass, fn, rng) {
					return true
				}
				pass.Reportf(rng.Pos(), "range over map %s %s inside the loop; map order is random per run — iterate sorted keys instead, or annotate //mw:maporder with why order cannot matter", types.ExprString(rng.X), why)
				return true
			})
		}
	}
	return nil
}

// isCollectThenSort recognizes the first half of the sorted-keys idiom: a
// loop whose whole body is `s = append(s, x)` where s is later passed to a
// sort or slices function inside the same enclosing function. Sorting makes
// the collection order irrelevant, so the loop is order-insensitive.
func isCollectThenSort(pass *Pass, enclosing ast.Node, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	slice := identObj(pass, lhs)
	if slice == nil {
		return false
	}
	// Look for sort.X(slice, …) / slices.SortX(slice, …) after the loop.
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted || n == nil {
			return !sorted
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rng.End() {
			return true
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range c.Args {
			if id, ok := arg.(*ast.Ident); ok && identObj(pass, id) == slice {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// identObj resolves an identifier to its object via either Uses or Defs.
func identObj(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// orderSensitiveUse scans a range body and names the first construct whose
// result depends on iteration order, or returns "".
func orderSensitiveUse(pass *Pass, body *ast.BlockStmt) (why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if w := orderSensitiveCall(pass, n); w != "" {
				why = w
				return false
			}
		case *ast.AssignStmt:
			// Floating-point accumulation: x += v (and friends) where x is
			// a float; float addition does not commute in rounding.
			switch n.Tok.String() {
			case "+=", "-=", "*=", "/=":
				if t, ok := pass.TypesInfo.Types[n.Lhs[0]]; ok {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						why = "accumulates a float"
						return false
					}
				}
			}
		case *ast.SendStmt:
			why = "sends on a channel"
			return false
		}
		return true
	})
	return why
}

// orderSensitiveCall classifies a call inside the loop body.
func orderSensitiveCall(pass *Pass, call *ast.CallExpr) string {
	// append grows a slice in iteration order.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			return "appends to a slice"
		}
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	// Methods on the sim engine schedule or execute events; their relative
	// order is the event calendar's tiebreak order.
	if sig != nil && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == ModulePath+"/internal/sim" && obj.Name() == "Engine" {
				return "schedules sim events (" + obj.Name() + "." + fn.Name() + ")"
			}
			// The snapshot encoder appends to the checkpoint byte stream;
			// map-ordered appends make checkpoints nondeterministic, which
			// breaks byte-identity and restore→re-checkpoint idempotence.
			if obj.Pkg() != nil && obj.Pkg().Path() == ModulePath+"/internal/snapshot" && obj.Name() == "Writer" {
				return "serializes checkpoint bytes (" + obj.Name() + "." + fn.Name() + ")"
			}
		}
		// Writers serialize in iteration order.
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return "writes output"
		}
		return ""
	}
	// Package-level print/write helpers serialize in iteration order.
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "writes output"
		}
	}
	return ""
}

// namedOf unwraps pointers to reach a named type, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
