package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
)

// A Fact is a typed datum an analyzer attaches to a package-level
// declaration so that the analysis of an importing package can consume it —
// the cross-package channel that turns per-package syntax checks into
// whole-module dataflow. The design mirrors golang.org/x/tools/go/analysis
// facts: a fact type is a pointer to a struct with exported fields, and the
// same analyzer that exported a fact imports it.
//
// Facts cross the package boundary in serialized (gob) form, never as live
// pointers. That keeps them value-typed — an analyzer cannot accidentally
// communicate through shared mutable state — and proves each fact type is
// serializable, which is what a build-cache-backed driver (the real
// golang.org/x/tools one) would require.
type Fact interface {
	// AFact marks the type as a fact. It is never called.
	AFact()
}

// factKey identifies one exported fact: facts are namespaced per analyzer,
// and attached to a declaration via its stable cross-package object key.
type factKey struct {
	analyzer string
	object   string
}

// A factStore holds the serialized facts exported so far in one driver run.
type factStore struct {
	data map[factKey][]byte
}

func newFactStore() *factStore {
	return &factStore{data: make(map[factKey][]byte)}
}

// objectKey returns a stable, cross-package identity for a package-level
// object: "pkgpath.Name" for functions, types, and variables, and
// "pkgpath.(Recv).Name" for methods. Objects without a package (builtins)
// or with non-named receivers have no key.
func objectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return obj.Pkg().Path() + ".(" + named.Obj().Name() + ")." + obj.Name(), true
		}
	}
	return obj.Pkg().Path() + "." + obj.Name(), true
}

// export serializes f and records it for (analyzer, obj), replacing any
// earlier fact the same analyzer exported for the same object.
func (s *factStore) export(analyzer string, obj types.Object, f Fact) error {
	key, ok := objectKey(obj)
	if !ok {
		return fmt.Errorf("analysis: no stable key for object %v; facts attach to package-level declarations", obj)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("analysis: encoding %s fact for %s: %w", analyzer, key, err)
	}
	s.data[factKey{analyzer, key}] = buf.Bytes()
	return nil
}

// load decodes the fact (analyzer, obj) into f, reporting whether one was
// found. f must be a pointer to the same concrete type that was exported.
func (s *factStore) load(analyzer string, obj types.Object, f Fact) bool {
	key, ok := objectKey(obj)
	if !ok {
		return false
	}
	b, ok := s.data[factKey{analyzer, key}]
	if !ok {
		return false
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(f) == nil
}
