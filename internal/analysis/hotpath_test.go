package analysis_test

import (
	"testing"

	"mediaworm/internal/analysis"
	"mediaworm/internal/analysis/analysistest"
)

// TestHotPathFixture pins the single-package hotpath semantics: the
// //mw:hotpath doc marker, transitive same-package callees, the allocating
// constructs, the reslice-to-zero append sanction, cold functions, and
// trailing suppressions.
func TestHotPathFixture(t *testing.T) {
	analysistest.Run(t, analysis.HotPath, "hotpath", "mediaworm/internal/hotpathfix")
}

// TestHotPathFactFlow checks the cross-package alloc fact: dep.Grow's
// allocation, recorded while analyzing dep, must surface at the hot call
// site in app, while the allocation-free dep.Peek stays silent.
func TestHotPathFactFlow(t *testing.T) {
	analysistest.RunMulti(t, analysis.HotPath, []analysistest.Fixture{
		{Dir: "hotfacts/dep", Path: "mediaworm/internal/analysis/testdata/src/hotfacts/dep"},
		{Dir: "hotfacts/app", Path: "mediaworm/internal/analysis/testdata/src/hotfacts/app"},
	})
}

// TestHotPathFactFlowImplicitDeps requests only the importer; the driver's
// dependency pass must supply dep's alloc facts.
func TestHotPathFactFlowImplicitDeps(t *testing.T) {
	analysistest.RunMulti(t, analysis.HotPath, []analysistest.Fixture{
		{Dir: "hotfacts/app", Path: "mediaworm/internal/analysis/testdata/src/hotfacts/app"},
	})
}

// The arena fixture pins hotpath on the arena-carving discipline behind
// the struct-of-arrays router state: the hot tick walks carved views
// allocation-free, construction-time carving stays outside the hot
// closure, and the naive per-tick scratch it replaces is flagged.
func TestHotPathArenaFixture(t *testing.T) {
	analysistest.Run(t, analysis.HotPath, "hotpath/arena", "mediaworm/internal/arenahotfix")
}
