package analysis

import (
	"go/ast"
	"go/types"
)

// SimTime polices the boundary between the two time domains the codebase
// carries: time.Duration (user-facing configuration, wall-clock reporting)
// and sim.Time (the engine's integer-nanosecond tick domain). Both are
// int64 nanoseconds, so a direct conversion compiles and is numerically
// right today — and silently wrong the day either side changes units. The
// analyzer flags direct conversions in either direction, plus conversions
// of a time.Duration to a bare integer (tick counts), and asks for the
// unit to be spelled out:
//
//	sim.Time(d)              → sim.Time(d.Nanoseconds())
//	sim.Time(time.Millisecond) → sim.Millisecond
//	time.Duration(t)         → time.Duration(t) * time.Nanosecond, or keep t in ticks
//	uint64(d)                → derive the count from d.Nanoseconds() and the tick period
//
// A deliberate crossing is annotated //mw:simtime with the reason.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "flag silent conversions between time.Duration and the sim.Time tick domain",
	Run:  runSimTime,
}

func isNamed(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func isDuration(t types.Type) bool { return isNamed(t, "time", "Duration") }
func isSimTime(t types.Type) bool {
	return isNamed(t, ModulePath+"/internal/sim", "Time")
}

func runSimTime(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			// A conversion is a call whose Fun denotes a type.
			funTV, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !funTV.IsType() {
				return true
			}
			argTV, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok {
				return true
			}
			dst, src := funTV.Type, argTV.Type
			switch {
			case isSimTime(dst) && isDuration(src):
				pass.Reportf(call.Pos(), "sim.Time(%s) converts a time.Duration straight into the tick domain; write sim.Time((%s).Nanoseconds()) or use sim unit constants (//mw:simtime to opt out)",
					types.ExprString(call.Args[0]), types.ExprString(call.Args[0]))
			case isDuration(dst) && isSimTime(src):
				pass.Reportf(call.Pos(), "time.Duration(%s) converts a sim.Time tick count straight into wall-clock units; multiply by time.Nanosecond explicitly or keep the value in ticks (//mw:simtime to opt out)",
					types.ExprString(call.Args[0]))
			case isDuration(src) && isBareInteger(dst):
				pass.Reportf(call.Pos(), "%s(%s) collapses a time.Duration into a unitless integer; use .Nanoseconds() (or .Milliseconds(), …) so the unit is explicit (//mw:simtime to opt out)",
					types.ExprString(call.Fun), types.ExprString(call.Args[0]))
			}
			return true
		})
	}
	return nil
}

// isBareInteger reports whether t is an unnamed basic integer type.
func isBareInteger(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
