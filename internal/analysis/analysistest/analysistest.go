// Package analysistest runs an analyzer over a golden fixture package and
// compares its diagnostics against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is one directory under internal/analysis/testdata/src holding a
// small Go package. Lines that must produce a diagnostic carry a trailing
// comment of the form
//
//	// want "regexp"
//
// where the quoted regexp must match the diagnostic's message. Every
// diagnostic must be wanted and every want must be matched, so fixtures pin
// both the flagged and the allowed cases. Fixtures are type-checked like
// real packages (they may import the module's own packages), and the
// analyzer sees them under a caller-chosen "as-if" import path, which is
// how path-scoped analyzers are exercised from testdata.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"mediaworm/internal/analysis"
)

// want is one expectation: a diagnostic whose message matches rx on the
// given line of the given file.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<fixture> as if its import path were asPath, runs
// the analyzer over it through a fact-carrying Driver, and reports any
// mismatch between produced diagnostics and // want expectations as test
// failures. Module packages the fixture imports are analyzed first
// (facts-only), exactly as the real driver orders them; stale-annotation
// audit findings participate in matching, so fixtures can pin them.
func Run(t *testing.T, a *analysis.Analyzer, fixture, asPath string) {
	t.Helper()
	RunMulti(t, a, []Fixture{{Dir: fixture, Path: asPath}})
}

// A Fixture names one testdata package for RunMulti: the directory under
// testdata/src and the import path the analyzer should see it under. A
// fixture that other fixtures import must use its real on-disk import path
// (mediaworm/internal/analysis/testdata/src/...), so the loader can resolve
// the import; list it before its importers.
type Fixture struct {
	Dir  string
	Path string
}

// RunMulti analyzes several fixture packages through one shared Driver and
// loader, in order. Facts exported while analyzing earlier fixtures (or
// module dependencies) are visible to later ones — this is the harness for
// cross-package fact tests.
func RunMulti(t *testing.T, a *analysis.Analyzer, fixtures []Fixture) {
	t.Helper()
	td := testdataDir(t)
	root, err := analysis.FindModuleRoot(td)
	if err != nil {
		t.Fatal(err)
	}
	driver := analysis.NewDriver(analysis.NewLoader(root))
	for _, fx := range fixtures {
		dir := filepath.Join(td, "src", filepath.FromSlash(fx.Dir))
		pkg, err := driver.Loader.LoadDir(dir, fx.Path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fx.Dir, err)
		}
		wants := collectWants(t, pkg)
		diags, err := driver.RunPackage([]*analysis.Analyzer{a}, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, fx.Dir, err)
		}
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			pos := pkg.Fset.Position(d.Pos)
			if w := matchWant(wants, pos, d.Message); w == nil {
				t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.rx)
			}
		}
	}
}

// collectWants scans the fixture's comments for // want expectations.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern, err := unquoteWant(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				rx, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pattern, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
		// Reject wants inside test files: the driver exempts them, so an
		// expectation there can never be satisfied.
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			for _, w := range wants {
				if w.file == name {
					t.Fatalf("%s: // want in a _test.go fixture file; test files are exempt from analysis", filepath.Base(name))
				}
			}
		}
	}
	return wants
}

// unquoteWant resolves the \" and \\ escapes the want-comment syntax allows.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case '"', '\\':
			b.WriteByte(s[i])
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String(), nil
}

func matchWant(wants []*want, pos token.Position, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(msg) {
			w.matched = true
			return w
		}
	}
	return nil
}

// testdataDir locates internal/analysis/testdata relative to this source
// file, so tests work regardless of the working directory.
func testdataDir(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate analysistest source file")
	}
	return filepath.Join(filepath.Dir(thisFile), "..", "testdata")
}
