// Arbiter-shaped cases mirroring internal/sched's zoo: a Pick hot root
// scanning a readiness mask, a lazily sized credit wheel behind a trailing
// suppression, and the per-call allocations a naive arbiter would make.
package hotpathfix

type picker struct {
	credit []int
	next   int
}

// Pick is the zoo's hot shape: scan candidates, rotate the cursor, allocate
// nothing.
//
//mw:hotpath
func (p *picker) Pick(ready uint64, vcs int) int {
	p.ensure(vcs)
	for i := 0; i < vcs; i++ {
		vc := (p.next + i) % vcs
		if ready&(1<<uint(vc)) != 0 && p.credit[vc] > 0 {
			p.credit[vc]--
			p.next = (vc + 1) % vcs
			return vc
		}
	}
	return -1
}

// ensure is hot transitively through Pick; its growth is a documented
// one-time sizing, so the finding is recorded as suppressed.
func (p *picker) ensure(vcs int) {
	if len(p.credit) < vcs {
		p.credit = make([]int, vcs) //mw:hotpath — one-time sizing to the VC count, amortized across the run
	}
}

// PickTrace shows the per-call allocations the zoo arbiters must avoid:
// materializing the scan order instead of rotating an index.
//
//mw:hotpath
func (p *picker) PickTrace(vcs int) []int {
	order := []int{p.next} // want "slice literal allocates on every execution"
	for i := 1; i < vcs; i++ {
		order = append(order, (p.next+i)%vcs) // want "append without preallocated-capacity evidence"
	}
	return order
}
