// Package hotpathfix exercises the hotpath analyzer: //mw:hotpath doc
// markers, the transitive same-package hot closure, allocating constructs,
// the reslice-to-zero append sanction, and trailing //mw:hotpath
// suppressions (distinct from the doc marker).
package hotpathfix

// Tick is a marked hot root.
//
//mw:hotpath
func Tick(buf []int, m map[int]int, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += step(buf, i)
	}
	scratch := make([]int, n) // want "make allocates on every execution"
	_ = scratch
	go spin() // want "go statement on a hot path"
	return total + m[0]
}

func spin() {}

// step is unmarked but hot by virtue of being called from Tick.
func step(buf []int, i int) int {
	buf = append(buf, i) // want "append without preallocated-capacity evidence"
	return buf[len(buf)-1]
}

// Reset shows the sanctioned append pattern: reslicing the same variable to
// zero length in the same function is capacity evidence.
//
//mw:hotpath
func Reset(buf []int, n int) []int {
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// Cold allocates freely: it is never reached from a marked root, so none of
// its constructs are reported.
func Cold(n int) []int {
	return make([]int, n)
}

// Seed documents a deliberate warm-up allocation with a trailing
// suppression; the driver marks the finding suppressed instead of dropping
// it, so the annotation never audits as stale.
//
//mw:hotpath
func Seed(n int) []int {
	buf := make([]int, 0, n) //mw:hotpath — warm-up allocation, amortized across the run
	return buf
}
