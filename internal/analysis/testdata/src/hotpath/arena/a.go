// Package arenahotfix pins hotpath on the arena-carving discipline behind
// the struct-of-arrays router state: the hot tick walks carved views
// allocation-free, construction-time carving (with its exhausted-slab
// fallback make) stays outside the hot closure, and the naive per-tick
// scratch the arena replaces is flagged.
package arenahotfix

// arena is the build-time backing store: one slab, carved into views.
type arena struct {
	slab []int
	off  int
}

// grab carves the next n-element view with a full slice expression, so an
// append on one view can never bleed into its neighbor. It is never
// reached from a hot root, so the exhausted-slab fallback allocates
// legally without a suppression.
func (a *arena) grab(n int) []int {
	if a.off+n > len(a.slab) {
		return make([]int, n)
	}
	v := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return v
}

// node's run state is a carved view plus a cursor.
type node struct {
	inv []int
	cur int
}

// Tick is the hot root the arena exists for: it walks the carved views in
// place and allocates nothing.
//
//mw:hotpath
func Tick(nodes []node) int {
	total := 0
	for i := range nodes {
		n := &nodes[i]
		n.cur = (n.cur + 1) % len(n.inv)
		total += n.inv[n.cur]
	}
	return total
}

// TickNaive is the shape the arena replaces: per-tick scratch growth with
// no capacity evidence.
//
//mw:hotpath
func TickNaive(nodes []node) []int {
	var order []int
	for i := range nodes {
		order = append(order, nodes[i].cur) // want "append without preallocated-capacity evidence"
	}
	return order
}

// Carve shows why carving must stay out of the hot closure: called per
// tick it would allocate every execution.
//
//mw:hotpath
func Carve(n int) []int {
	return make([]int, n) // want "make allocates on every execution"
}

// Reserve documents the one sanctioned allocation: resizing the slab
// itself, suppressed and audited rather than silently dropped.
//
//mw:hotpath
func (a *arena) Reserve(n int) {
	if cap(a.slab) < n {
		a.slab = make([]int, n) //mw:hotpath — one-time slab sizing, amortized across the run
	}
	a.off = 0
}
