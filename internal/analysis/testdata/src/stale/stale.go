// Package stalefix carries an //mw:simtime suppression on a line with no
// simtime finding: the driver's annotation audit must report it, so an
// exception cannot outlive whatever it once justified.
package stalefix

// Elapsed doubles a tick count; nothing here touches wall-clock time, so
// the trailing suppression suppresses nothing.
func Elapsed(ticks int) int {
	return ticks * 2 //mw:simtime — historical exemption // want "stale //mw:simtime annotation"
}
