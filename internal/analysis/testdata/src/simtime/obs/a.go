// Package obs (fixture) pins simtime's coverage of the observability
// subsystem: configuration crosses from the public time.Duration surface
// (TraceConfig.MetricsInterval) into the sim.Time tick domain, and a silent
// conversion at that boundary — dropping the unit on the floor — must be
// flagged in internal/obs like anywhere else.
package obs

import (
	"time"

	"mediaworm/internal/sim"
)

type options struct {
	MetricsInterval time.Duration
}

type tracer struct {
	interval sim.Time
}

func newSilent(opt options) *tracer {
	return &tracer{
		interval: sim.Time(opt.MetricsInterval), // want "converts a time.Duration straight into the tick domain"
	}
}

func newExplicit(opt options) *tracer {
	// The correct idiom spells out the unit.
	return &tracer{interval: sim.Time(opt.MetricsInterval.Nanoseconds())}
}

func exportSilent(at sim.Time) time.Duration {
	return time.Duration(at) // want "converts a sim.Time tick count straight into wall-clock units"
}
