// Package snapfix pins simtime's coverage of checkpoint encode/restore
// helpers: serializing the engine clock must stay in the sim.Time tick
// domain end to end. Collapsing ticks through time.Duration on the way to
// (or from) the byte stream silently re-types the value as wall-clock
// nanoseconds; the Writer.Time/Reader.Time helpers keep the domain.
package snapfix

import (
	"time"

	"mediaworm/internal/sim"
	"mediaworm/internal/snapshot"
)

func flaggedEncodeViaDuration(w *snapshot.Writer, now sim.Time) {
	d := time.Duration(now) // want "converts a sim.Time tick count straight into wall-clock units"
	w.I64(d.Nanoseconds())
}

func flaggedCollapsedDuration(w *snapshot.Writer, every time.Duration) {
	w.U64(uint64(every)) // want "collapses a time.Duration into a unitless integer"
}

func flaggedRestoreViaDuration(r *snapshot.Reader) sim.Time {
	d := time.Duration(r.I64())
	return sim.Time(d) // want "converts a time.Duration straight into the tick domain"
}

func allowedEncodeTicks(w *snapshot.Writer, now sim.Time) {
	// The correct idiom: the dedicated tick-domain helper.
	w.Time(now)
}

func allowedRestoreTicks(r *snapshot.Reader) sim.Time {
	return r.Time()
}
