// Package calctimefix pins simtime on the analytic-model boundary: the
// network-calculus controller prices delays in float64 seconds, and turning
// a priced bound into an engine deadline must cross into the sim.Time tick
// domain explicitly. Routing the value through time.Duration — or collapsing
// a configured Duration budget into a bare integer of implicit units — is
// exactly the silent re-typing simtime exists to catch.
package calctimefix

import (
	"time"

	"mediaworm/internal/sim"
)

// flaggedDeadlineFromDuration turns a wall-clock deadline budget straight
// into engine ticks, silently assuming Duration's nanosecond unit.
func flaggedDeadlineFromDuration(budget time.Duration) sim.Time {
	return sim.Time(budget) // want "converts a time.Duration straight into the tick domain"
}

// flaggedBoundToWallClock re-types a tick-domain bound as wall-clock units
// on its way to a report.
func flaggedBoundToWallClock(bound sim.Time) time.Duration {
	return time.Duration(bound) // want "converts a sim.Time tick count straight into wall-clock units"
}

// flaggedCollapsedBudget drops a Duration's unit on the floor.
func flaggedCollapsedBudget(budget time.Duration) uint64 {
	return uint64(budget) // want "collapses a time.Duration into a unitless integer"
}

// allowedExplicitNanoseconds is the documented idiom: name the unit at the
// crossing, then enter the tick domain from a bare integer.
func allowedExplicitNanoseconds(budget time.Duration) sim.Time {
	return sim.Time(budget.Nanoseconds())
}

// allowedSecondsArithmetic stays in float64 seconds end to end — the
// calculus package's native domain never touches time.Duration.
func allowedSecondsArithmetic(boundSec float64) sim.Time {
	return sim.Time(int64(boundSec * 1e9))
}

// allowedTickArithmetic composes bounds inside the tick domain.
func allowedTickArithmetic(a, b sim.Time) sim.Time {
	return a + b
}
