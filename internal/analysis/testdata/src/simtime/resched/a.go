// Package reschedfix exercises simtime at the Reschedule call boundary:
// the deadline argument is a sim.Time, so a caller holding a time.Duration
// is one cast away from a silent unit collapse. The fixture type-checks
// against the real engine, pinning the Reschedule(Event, Time) signature.
package reschedfix

import (
	"time"

	"mediaworm/internal/sim"
)

func flaggedRescheduleDeadline(e *sim.Engine, ev sim.Event, d time.Duration) sim.Event {
	return e.Reschedule(ev, sim.Time(d)) // want "converts a time.Duration straight into the tick domain"
}

func allowedRescheduleExplicit(e *sim.Engine, ev sim.Event, d time.Duration) sim.Event {
	return e.Reschedule(ev, e.Now()+sim.Time(d.Nanoseconds()))
}

func allowedRescheduleTickArithmetic(e *sim.Engine, ev sim.Event, period sim.Time) sim.Event {
	// Pure tick-domain arithmetic — the self-rescheduling tick idiom.
	return e.Reschedule(ev, e.Now()+period)
}

func flaggedTimeoutCollapse(deadline sim.Time) time.Duration {
	return time.Duration(deadline) // want "converts a sim.Time tick count straight into wall-clock units"
}
