// Package timefix exercises simtime: silent crossings between
// time.Duration and the sim.Time tick domain are flagged; conversions that
// spell out the unit, stay within one domain, or carry an annotation are
// not.
package timefix

import (
	"time"

	"mediaworm/internal/sim"
)

func flaggedDurationToTicks(d time.Duration) sim.Time {
	return sim.Time(d) // want "converts a time.Duration straight into the tick domain"
}

func flaggedDurationConstant() sim.Time {
	return sim.Time(time.Millisecond) // want "converts a time.Duration straight into the tick domain"
}

func flaggedTicksToDuration(t sim.Time) time.Duration {
	return time.Duration(t) // want "converts a sim.Time tick count straight into wall-clock units"
}

func flaggedUnitlessCollapse(d time.Duration) uint64 {
	return uint64(d) // want "collapses a time.Duration into a unitless integer"
}

func allowedExplicitNanoseconds(d time.Duration) sim.Time {
	return sim.Time(d.Nanoseconds())
}

func allowedSimUnits() sim.Time {
	return 5 * sim.Millisecond
}

func allowedUntypedConstant() time.Duration {
	return time.Duration(5) * time.Second
}

func allowedIntWithinDomain(t sim.Time) uint64 {
	// sim.Time is already the tick domain; extracting the count is fine.
	return uint64(t)
}

func allowedAnnotated(d time.Duration) sim.Time {
	return sim.Time(d) //mw:simtime — fixture: both domains are nanoseconds here by construction
}
