// Package enumfix exercises exhaustive on module enum types: partial
// switches without a default are flagged; full coverage, explicit defaults,
// annotated exceptions, quantity types, and foreign types are not.
package enumfix

import "time"

// Color is an iota enum: contiguous 0..n-1 values.
type Color uint8

const (
	Red Color = iota
	Green
	Blue
)

// Crimson aliases Red's value; covering either covers both.
const Crimson Color = 0

// Mode is a string enum.
type Mode string

const (
	Fast Mode = "fast"
	Slow Mode = "slow"
)

// Ticks is a quantity type: its constants are sparse units, not an
// enumeration, so switches over it are never exhaustiveness-checked.
type Ticks int64

const (
	OneTick  Ticks = 1
	Thousand Ticks = 1000
)

func flaggedMissingCase(c Color) string {
	switch c { // want "switch over Color misses Blue and has no default"
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return ""
}

func flaggedStringEnum(m Mode) int {
	switch m { // want "switch over Mode misses Slow and has no default"
	case Fast:
		return 0
	}
	return 1
}

func allowedFullCoverage(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	}
	return ""
}

func allowedAliasCoverage(c Color) string {
	// Crimson == Red, so the value set is fully covered.
	switch c {
	case Crimson:
		return "crimson"
	case Green, Blue:
		return "cool"
	}
	return ""
}

func allowedDefault(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		return "other"
	}
}

func allowedAnnotated(c Color) string {
	//mw:exhaustive — fixture: only Red needs special casing here
	switch c {
	case Red:
		return "red"
	}
	return ""
}

func allowedQuantityType(t Ticks) string {
	switch t {
	case OneTick:
		return "tick"
	}
	return ""
}

func allowedForeignEnum(m time.Month) string {
	// time.Month is not a module type; its exhaustiveness is not ours.
	switch m {
	case time.January:
		return "jan"
	}
	return ""
}

func allowedTagless(c Color) string {
	switch {
	case c == Red:
		return "red"
	}
	return ""
}
