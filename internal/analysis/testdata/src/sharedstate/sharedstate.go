// Package sharedfix exercises the sharedstate analyzer: unsynchronized
// writes to variables captured by goroutine-shared function literals, the
// per-shard element sanction (including field writes through an owned
// index), mutex bracketing, and callback-parameter sharing through a local
// runner-like function.
package sharedfix

import "sync"

type cell struct {
	n     int
	trace string
}

// forEach hands each index to fn from its own goroutine, like runner.Map:
// fn is goroutine-shared, and so is every literal passed for it.
func forEach(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Race writes a captured scalar from a go statement.
func Race() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++ // want "write to \"n\""
		close(done)
	}()
	<-done
	return n
}

// Shards writes per-shard elements and their fields through the callback's
// own index parameter: sanctioned ownership, no findings.
func Shards(n int) []cell {
	out := make([]cell, n)
	forEach(n, func(i int) {
		out[i] = cell{n: i}
		out[i].trace = "done"
	})
	return out
}

// Locked brackets the shared write with a mutex: sanctioned.
func Locked(n int) int {
	var mu sync.Mutex
	total := 0
	forEach(n, func(i int) {
		mu.Lock()
		total += i
		mu.Unlock()
	})
	return total
}

// Tally accumulates into a captured variable from the shared callback
// without synchronization: flagged, with the callee named in the message.
func Tally(n int) int {
	total := 0
	forEach(n, func(i int) {
		total += i // want "write to \"total\""
	})
	return total
}
