package detfix

import "time"

// Test files are exempt from determinism analysis: wall-clock timing in a
// benchmark or timeout guard never feeds simulation results.
func timingGuard() time.Duration {
	start := time.Now()
	return time.Since(start)
}
