// Package detfix exercises detlint inside a simulation package: ambient
// state sources are flagged, explicit constructions and annotated
// exceptions are not.
package detfix

import (
	"math/rand"
	"os"
	"time"
)

func flagged() {
	_ = time.Now()           // want "time.Now reads the wall clock"
	t := time.Unix(0, 0)     // time.Unix is pure construction: allowed
	_ = time.Since(t)        // want "time.Since reads the wall clock"
	_ = time.Until(t)        // want "time.Until reads the wall clock"
	_ = rand.Intn(3)         // want "math/rand.Intn draws from the process-global generator"
	rand.Shuffle(2, swap)    // want "math/rand.Shuffle draws from the process-global generator"
	_ = os.Getenv("SEED")    // want "os.Getenv reads the process environment"
	_, _ = os.LookupEnv("S") // want "os.LookupEnv reads the process environment"
}

func flaggedValueReference() func() time.Time {
	// Passing the function around is as ambient as calling it.
	return time.Now // want "time.Now reads the wall clock"
}

func allowedExplicitSource() int {
	// An explicitly seeded generator is the deterministic idiom.
	r := rand.New(rand.NewSource(42))
	return r.Intn(3)
}

func allowedAnnotated() time.Time {
	return time.Now() //mw:wallclock — fixture: progress reporting only, never simulation state
}

func allowedAnnotatedAbove() time.Time {
	//mw:wallclock — fixture: annotation on the preceding line also counts
	return time.Now()
}

// clock has methods shadowing the banned names; methods are never ambient.
type clock struct{}

func (clock) Now() time.Time       { return time.Unix(0, 0) }
func (clock) Getenv(string) string { return "" }

func allowedMethods(c clock) {
	_ = c.Now()
	_ = c.Getenv("SEED")
}

func swap(i, j int) {}
