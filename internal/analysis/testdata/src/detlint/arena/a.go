// Package arenafix exercises detlint on arena/free-list pool code — the
// zero-allocation engine idiom of slot recycling with generation stamps.
// The recycling machinery itself is deterministic by construction; the
// ambient-state temptations around it (stamping slots from the wall clock,
// randomizing free-list order to "avoid pathological reuse") are exactly
// what detlint must flag inside a simulation package.
package arenafix

import (
	"math/rand"
	"time"
)

type slot struct {
	fn   func()
	at   int64
	gen  uint32
	next int32
}

type pool struct {
	arena    []slot
	freeHead int32
	seq      uint64
}

func (p *pool) alloc() int32 {
	if i := p.freeHead; i >= 0 {
		p.freeHead = p.arena[i].next
		return i
	}
	p.arena = append(p.arena, slot{gen: 1})
	return int32(len(p.arena) - 1)
}

// release recycles a slot; the generation bump is the deterministic handle
// invalidation — no ambient input involved.
func (p *pool) release(i int32) {
	s := &p.arena[i]
	s.fn = nil
	s.gen++
	s.next = p.freeHead
	p.freeHead = i
}

func (p *pool) flaggedWallClockStamp(i int32) {
	p.arena[i].at = time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func (p *pool) flaggedRandomizedReuse() int32 {
	if rand.Intn(2) == 0 { // want "math/rand.Intn draws from the process-global generator"
		return p.freeHead
	}
	return p.alloc()
}

func (p *pool) allowedSeqStamp(i int32) {
	// The engine's own monotonic counter is the deterministic stamp.
	p.arena[i].at = int64(p.seq)
	p.seq++
}
