// Package snapshot (fixture) pins detlint's coverage of the checkpoint
// encoder: stamping a checkpoint header from the wall clock is the
// tempting "when was this written" feature that would make two checkpoints
// of identical simulator state differ byte for byte. Checkpoint content
// must be a pure function of simulator state.
package snapshot

import "time"

// header mirrors the real container's shape closely enough to make the
// tempting bug writable: a versioned header with room for a timestamp.
type header struct {
	Version   uint16
	WrittenAt int64
}

func flaggedStampedHeader() header {
	return header{
		Version:   1,
		WrittenAt: time.Now().UnixNano(), // want "time.Now reads the wall clock"
	}
}

func flaggedCheckpointAge(written time.Time) time.Duration {
	return time.Since(written) // want "time.Since reads the wall clock"
}

func allowedSimStamp(now int64) header {
	// The correct idiom: checkpoints carry the simulated clock, which the
	// restore path re-validates; wall-clock metadata stays out of the bytes.
	return header{Version: 1, WrittenAt: now}
}
