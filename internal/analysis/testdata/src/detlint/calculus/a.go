// Package calcdetfix exercises detlint on analytic admission-control code —
// the internal/calculus idiom: closed-form bound arithmetic is pure and
// passes clean, while the ambient-state temptations around an admission
// decision (wall-clock decision stamps, randomized tie-breaking between
// equally priced routes) are exactly what detlint must flag inside the
// calculus package, where reproducing an admission trace byte-for-byte is
// part of the determinism contract.
package calcdetfix

import (
	"math/rand"
	"time"
)

type controller struct {
	rate, burst float64
	deadline    float64
	admitted    int
	lastAdmit   time.Time
}

// admit is the pure closed-form decision: arithmetic only, nothing ambient.
func (c *controller) admit(mu, b0 float64) bool {
	bound := (c.burst + b0) / (c.rate - mu)
	if bound <= c.deadline {
		c.rate -= mu
		c.burst += b0
		c.admitted++
		return true
	}
	return false
}

// flaggedStamp records when the admission happened — wall-clock state in the
// middle of a deterministic controller.
func (c *controller) flaggedStamp() {
	c.lastAdmit = time.Now() // want "time.Now reads the wall clock"
}

// flaggedTieBreak randomizes which of two equally priced routes wins, which
// makes the admission sequence irreproducible across runs.
func flaggedTieBreak(a, b int) int {
	if rand.Intn(2) == 0 { // want "math/rand.Intn draws from the process-global generator"
		return a
	}
	return b
}

// allowedSeededPerturbation is the deterministic idiom for sensitivity
// experiments: an explicitly seeded source perturbing stream parameters.
func allowedSeededPerturbation(seed int64, mu float64) float64 {
	r := rand.New(rand.NewSource(seed))
	return mu * (1 + 0.01*r.Float64())
}

// allowedAnnotatedProgress stamps calibration progress for a human log —
// never simulation or admission state — under the documented escape hatch.
func allowedAnnotatedProgress() time.Time {
	return time.Now() //mw:wallclock — fixture: calibration progress logging only
}
