// Package obs (fixture) pins detlint's coverage of the observability
// subsystem: internal/obs is a simulation-side package, so an event stamped
// from the wall clock — the exact bug that would silently break the golden
// byte-identical-trace guarantee — must be flagged there like anywhere else
// on the simulation path.
package obs

import "time"

// Event mirrors the real package's shape closely enough to make the
// tempting bug writable: a trace record with a timestamp field.
type Event struct {
	At   int64
	Kind uint8
}

func emitStampedFromWallClock(ring []Event) {
	ring[0] = Event{
		At: time.Now().UnixNano(), // want "time.Now reads the wall clock"
	}
}

func snapshotAge(started time.Time) time.Duration {
	return time.Since(started) // want "time.Since reads the wall clock"
}

func emitStampedFromSimTime(ring []Event, now int64) {
	// The correct idiom: the caller passes the engine's simulated now.
	ring[0] = Event{At: now}
}
