// Package runnerfix exercises detlint against the parallel sweep executor's
// vocabulary: concurrency primitives (sync, sync/atomic, context) are fine —
// determinism comes from positional reassembly, not from avoiding
// goroutines — but wall clocks stay banned even here, since a time-derived
// decision inside the pool would leak scheduling order into results.
package runnerfix

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

func allowedConcurrency(ctx context.Context, n int) int {
	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	done := 0
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				mu.Lock()
				done++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return done
}

func flaggedWallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func flaggedDeadline(ctx context.Context) bool {
	d, ok := ctx.Deadline()
	if !ok {
		return false
	}
	return time.Until(d) > 0 // want "time.Until reads the wall clock"
}
