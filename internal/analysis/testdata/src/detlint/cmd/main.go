// Command-line front-ends are outside detlint's scope: progress reporting
// on a terminal is wall-clock by nature.
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	start := time.Now()
	_ = os.Getenv("NO_COLOR")
	fmt.Println(time.Since(start))
}
