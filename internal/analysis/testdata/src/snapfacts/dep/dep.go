// Package dep exports one snapshot-covered type and one uncovered type for
// the cross-package snapcover fact tests: analyzing this package must
// export a coverage fact for Covered and none for Uncovered.
package dep

import "mediaworm/internal/snapshot"

// Covered is serialized by this package on both sides.
type Covered struct {
	N int
}

// Uncovered has no encoder here: an importer storing one in snapshotted
// state would silently lose it across checkpoint/restore.
type Uncovered struct {
	M int
}

// EncodeState writes a Covered.
func (c *Covered) EncodeState(w *snapshot.Writer) { w.Int(c.N) }

// RestoreState reads a Covered back.
func (c *Covered) RestoreState(r *snapshot.Reader) { c.N = r.Int() }
