// Package app stores dep types in its own snapshotted state. dep.Covered
// carries a coverage fact from its home package; dep.Uncovered does not,
// so the field holding one is reported even though the field itself is
// written here.
package app

import (
	"mediaworm/internal/analysis/testdata/src/snapfacts/dep"
	"mediaworm/internal/snapshot"
)

// State is the encoder's root subject.
type State struct {
	Good dep.Covered
	Bad  dep.Uncovered // want "which no snapshot encoder in its package covers"
}

// EncodeState writes both fields; coverage of the foreign types is dep's
// responsibility, checked through facts.
func (s *State) EncodeState(w *snapshot.Writer) {
	s.Good.EncodeState(w)
	w.Int(s.Bad.M)
}
