// Package snapfix pins maporder's coverage of the checkpoint encoder: a
// range-over-map that feeds a snapshot.Writer serializes map iteration
// order into the checkpoint bytes, so two checkpoints of the same state
// would differ — breaking byte-identity and restore→re-checkpoint
// idempotence. The sorted-keys idiom keeps the byte stream canonical.
package snapfix

import (
	"sort"

	"mediaworm/internal/snapshot"
)

func flaggedEncodeMap(w *snapshot.Writer, m map[uint64]uint64) {
	w.Int(len(m))
	for k, v := range m { // want "range over map m serializes checkpoint bytes \\(Writer.U64\\)"
		w.U64(k)
		w.U64(v)
	}
}

func allowedSortedEncode(w *snapshot.Writer, m map[uint64]uint64) {
	keys := make([]uint64, 0, len(m))
	for k := range m { // collecting keys is order-insensitive once sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		w.U64(k)
		w.U64(m[k])
	}
}

func allowedCountOnly(w *snapshot.Writer, m map[uint64]uint64) {
	n := 0
	for range m {
		n++
	}
	w.Int(n)
}
