// Package mapfix exercises maporder inside a sim-path package: map ranges
// doing order-sensitive work are flagged; the sorted-keys idiom, pure
// counting, and annotated loops are not.
package mapfix

import (
	"fmt"
	"io"
	"sort"

	"mediaworm/internal/sim"
)

func flaggedAppend(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "range over map m appends to a slice"
		out = append(out, v)
	}
	return out
}

func flaggedFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "range over map m accumulates a float"
		sum += v
	}
	return sum
}

func flaggedEventPost(eng *sim.Engine, m map[int]func()) {
	for k, fn := range m { // want "range over map m schedules sim events"
		eng.At(sim.Time(k), fn)
	}
}

func flaggedOutput(w io.Writer, m map[string]int) {
	for k, v := range m { // want "range over map m writes output"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func flaggedSend(ch chan int, m map[int]bool) {
	for k := range m { // want "range over map m sends on a channel"
		ch <- k
	}
}

func allowedSortedKeys(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m { // collecting keys is order-insensitive once sorted below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out []string
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func allowedCounting(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func allowedIntSum(m map[int]int64) int64 {
	var sum int64
	for _, v := range m { // integer addition commutes exactly
		sum += v
	}
	return sum
}

func allowedAnnotated(m map[int]float64) float64 {
	var sum float64
	//mw:maporder — fixture: result is compared against an order-independent tolerance
	for _, v := range m {
		sum += v
	}
	return sum
}

func allowedSliceRange(eng *sim.Engine, fns []func()) {
	for i, fn := range fns { // slices iterate in index order: deterministic
		eng.At(sim.Time(i), fn)
	}
}
