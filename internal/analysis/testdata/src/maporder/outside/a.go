// Package mapout holds the same order-sensitive map ranges as the sim
// fixture but sits outside the sim-path package scope, so maporder must
// stay silent: report formatting, vizualization, and tooling may iterate
// maps however they like as long as they are not feeding the simulation.
package mapout

func appendValues(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func floatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
