// Package dep exports an allocating helper and an allocation-free one; the
// hotpath analyzer must export an alloc fact for Grow so importers' hot
// paths see through the package boundary.
package dep

// Grow allocates: append without capacity evidence.
func Grow(xs []int, v int) []int {
	return append(xs, v)
}

// Peek is allocation-free.
func Peek(xs []int) int { return xs[0] }
