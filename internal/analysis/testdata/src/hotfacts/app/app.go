// Package app marks a hot function that calls across a package boundary:
// the callee's alloc fact, exported while analyzing dep, must surface at
// the call site here.
package app

import "mediaworm/internal/analysis/testdata/src/hotfacts/dep"

// Pump is hot; dep.Grow allocates per its fact, dep.Peek does not.
//
//mw:hotpath
func Pump(xs []int) int {
	xs = dep.Grow(xs, 1) // want "call to dep.Grow allocates on a hot path"
	return dep.Peek(xs)
}
