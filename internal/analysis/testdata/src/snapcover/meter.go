// Meter-shaped cases mirroring internal/police: float bucket levels that
// must survive a checkpoint, static provisioning excluded by annotation,
// and a counter the encoder forgot.
package snapcoverfix

import "mediaworm/internal/snapshot"

// Meter mirrors a token-bucket meter: Tc/Te are live bucket levels, CIR is
// static provisioning the constructor re-derives, and Violations is a
// counter only the decode side touches.
type Meter struct {
	CIR        float64 //mw:snapcover — static provisioning, rebuilt from config on restore
	Tc         float64
	Te         float64
	Violations uint64 // want "field Meter.Violations is not written by any snapshot encoder"
}

// EncodeState persists the live bucket levels only.
func (m *Meter) EncodeState(w *snapshot.Writer) {
	w.F64(m.Tc)
	w.F64(m.Te)
}

// RestoreState reads the buckets back and drains a legacy violations word
// that the encode side no longer emits — the asymmetry the analyzer flags.
func (m *Meter) RestoreState(r *snapshot.Reader) {
	m.Tc = r.F64()
	m.Te = r.F64()
	m.Violations = r.U64()
}
