// Package arenasnapfix pins snapcover on the struct-of-arrays arena shape
// introduced with the topology generator: run state lives in views carved
// from a build-time pool, the pool itself hides behind one excluded field
// (so its slabs need no annotations of their own), and a view or scalar
// forgotten on either side is still flagged.
package arenasnapfix

import "mediaworm/internal/snapshot"

// Pool is the construction-time backing store: one allocation per slab,
// carved into per-node views while the fabric is built. It is reachable
// only through Node's excluded field, so traversal never enters it and its
// slabs carry no annotations.
type Pool struct {
	slots []int
	marks []bool
}

// Grab carves the next n-slot view out of the slab.
func (p *Pool) Grab(n int) []int {
	v := p.slots[:n:n]
	p.slots = p.slots[n:]
	return v
}

// Node's run state is a carved view plus scalars; the pool reference is
// construction-time provenance only.
type Node struct {
	view   []int
	cursor int
	seen   int     // want "field Node.seen is not written by any snapshot encoder"
	last   float64 // want "field Node.last is not read by any snapshot decoder"
	pool   *Pool   //mw:snapcover — construction-time backing store; carving happens only while the fabric is built
}

// EncodeNode covers the carved view, the cursor and last, and forgets seen.
func (n *Node) EncodeNode(w *snapshot.Writer) error {
	w.Int(len(n.view))
	for _, v := range n.view {
		w.Int(v)
	}
	w.Int(n.cursor)
	w.F64(n.last)
	return nil
}

// RestoreNode refills the view in place (the slab backing survives a
// restore), covers cursor and seen, and forgets last.
func (n *Node) RestoreNode(r *snapshot.Reader) error {
	n.view = n.view[:0]
	for i, m := 0, r.Int(); i < m; i++ {
		n.view = append(n.view, r.Int())
	}
	n.cursor = r.Int()
	n.seen = r.Int()
	return r.Err()
}
