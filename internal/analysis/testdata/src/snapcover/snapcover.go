// Package snapcoverfix exercises the snapcover analyzer: per-side coverage
// union over all encoders, helper-call closures, keyed composite literals,
// wholesale JSON serialization, and the //mw:snapcover exclusion contract.
package snapcoverfix

import (
	"encoding/json"

	"mediaworm/internal/snapshot"
)

// Inner is reached through State.In; the encode side covers it through the
// encodeInner helper, the decode side through a keyed literal (X only).
type Inner struct {
	X int
	Y int // want "field Inner.Y is not read by any snapshot decoder"
}

// Blob is serialized wholesale through encoding/json on both sides, so all
// of its fields count as covered.
type Blob struct {
	P int
	Q int
}

// State is a root subject: the receiver of an encoder and a decoder.
type State struct {
	A    int
	B    int // want "field State.B is not read by any snapshot decoder"
	C    int // want "field State.C is not written by any snapshot encoder"
	D    int //mw:snapcover — per-tick scratch, rebuilt on restore
	In   Inner
	Meta Blob
}

// EncodeState covers A and B directly, Inner through a helper, and Blob
// wholesale via JSON.
func (s *State) EncodeState(w *snapshot.Writer) error {
	w.Int(s.A)
	w.Int(s.B)
	encodeInner(w, &s.In)
	b, err := json.Marshal(s.Meta)
	if err != nil {
		return err
	}
	w.Bytes(b)
	return nil
}

func encodeInner(w *snapshot.Writer, in *Inner) {
	w.Int(in.X)
	w.Int(in.Y)
}

// RestoreState covers A and C directly, Inner.X through a keyed literal,
// and Blob wholesale via JSON.
func (s *State) RestoreState(r *snapshot.Reader) error {
	s.A = r.Int()
	s.C = r.Int()
	s.In = Inner{X: r.Int()}
	if err := json.Unmarshal(r.Bytes(), &s.Meta); err != nil {
		return err
	}
	return r.Err()
}

// Pair's encode coverage is split between two sibling encoders; the
// per-side union must see the whole type as covered.
type Pair struct {
	L int
	R int
}

// EncodeHead writes Pair.L; EncodeTail writes Pair.R.
func EncodeHead(w *snapshot.Writer, p *Pair) { w.Int(p.L) }

// EncodeTail completes the coverage EncodeHead started.
func EncodeTail(w *snapshot.Writer, p *Pair) { w.Int(p.R) }

// RestorePair reads both halves back.
func RestorePair(r *snapshot.Reader, p *Pair) {
	p.L = r.Int()
	p.R = r.Int()
}
