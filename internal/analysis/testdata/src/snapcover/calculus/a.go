// Package calcsnapfix pins snapcover on an analytic admission controller —
// the internal/calculus shape: per-link aggregates and admit/reject counters
// must round-trip through a checkpoint, derived caches are rebuilt on
// restore and carry the exclusion marker, and a forgotten field on either
// side is flagged.
package calcsnapfix

import "mediaworm/internal/snapshot"

// linkAgg is one link's admitted aggregate, reached through Model.Links.
type linkAgg struct {
	N    int
	Rate float64
	SumU float64 // want "field linkAgg.SumU is not read by any snapshot decoder"
}

// Model is a root subject: the receiver of an encoder and a decoder.
type Model struct {
	Links      []linkAgg
	Admitted   int
	Rejected   int     // want "field Model.Rejected is not written by any snapshot encoder"
	Theta      float64 //mw:snapcover — derived fixed-point cache, recomputed on restore
	ThetaDirty bool    //mw:snapcover — derived fixed-point cache, recomputed on restore
}

// EncodeModel covers Links (through a helper) and Admitted, and forgets
// Rejected.
func (m *Model) EncodeModel(w *snapshot.Writer) error {
	w.Int(len(m.Links))
	for i := range m.Links {
		encodeLink(w, &m.Links[i])
	}
	w.Int(m.Admitted)
	return nil
}

func encodeLink(w *snapshot.Writer, l *linkAgg) {
	w.Int(l.N)
	w.F64(l.Rate)
	w.F64(l.SumU)
}

// RestoreModel reads Links back through a keyed literal that forgets SumU,
// and covers both counters.
func (m *Model) RestoreModel(r *snapshot.Reader) error {
	n := r.Int()
	m.Links = m.Links[:0]
	for i := 0; i < n; i++ {
		m.Links = append(m.Links, linkAgg{N: r.Int(), Rate: r.F64()})
	}
	m.Admitted = r.Int()
	m.Rejected = r.Int()
	return r.Err()
}
