package analysis_test

import (
	"testing"

	"mediaworm/internal/analysis"
	"mediaworm/internal/analysis/analysistest"
)

// One fixture covers both polarities: partial switches over int and string
// enums are flagged; full coverage (aliases included), defaults,
// annotations, quantity types, foreign types, and tagless switches are not.
func TestExhaustiveEnumFixture(t *testing.T) {
	analysistest.Run(t, analysis.Exhaustive, "exhaustive/enum", "mediaworm/internal/enumfix")
}
