package analysis

import (
	"go/ast"
	"go/types"
)

// DetLint forbids nondeterminism sources — the wall clock, the global
// math/rand generator, and environment reads — inside simulation packages.
//
// A simulation run must be a pure function of its Config: the same seed
// must reproduce the same figures byte for byte (the guarantee CSIM's
// seeded streams gave the original paper). Wall-clock reads, global
// randomness, and environment lookups each smuggle ambient state into that
// function. Command-line front-ends (cmd/..., examples/...) are exempt —
// progress reporting on a terminal is wall-clock by nature — and an
// intentional exception inside a simulation package is annotated:
//
//	//mw:wallclock — <why this cannot leak into simulation results>
var DetLint = &Analyzer{
	Name: "detlint",
	Doc:  "forbid wall-clock, global randomness, and environment reads in simulation packages",
	Run:  runDetLint,
}

// detBanned maps package path → function name → the hazard it introduces.
var detBanned = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
	},
}

// randConstructors are the math/rand functions that merely build explicitly
// seeded generators; everything else at package level consults the global
// source and is banned.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// detLintScoped reports whether the package is a simulation package: part
// of this module and not a command-line front-end.
func detLintScoped(path string) bool {
	if !inModule(path) {
		return false
	}
	return !hasPathPrefix(path, ModulePath+"/cmd") && !hasPathPrefix(path, ModulePath+"/examples")
}

func runDetLint(pass *Pass) error {
	if !detLintScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods are fine; only package-level functions are ambient
			}
			pkgPath, name := fn.Pkg().Path(), fn.Name()
			if why, ok := detBanned[pkgPath][name]; ok {
				pass.Reportf(sel.Pos(), "%s.%s %s; simulation state must derive from Config alone — inject it, or annotate //mw:wallclock with a justification", pkgPath, name, why)
				return true
			}
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name] {
				pass.Reportf(sel.Pos(), "%s.%s draws from the process-global generator; use a seeded rng.Source so runs reproduce, or annotate //mw:wallclock with a justification", pkgPath, name)
			}
			return true
		})
	}
	return nil
}
