package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive verifies that every switch over one of the module's enum types
// (flit.Class, sched.Kind, core's VC phases, pcs.SelectMode, config
// enumerations, …) either covers every declared constant of the type or
// carries an explicit default clause. A new enum variant must force every
// dispatch site to take a position, not silently fall through.
//
// A named type counts as an enum when it is declared in this module and its
// declaring package defines at least two constants of exactly that type,
// and — for integer types — the constant values are the contiguous block
// 0..n-1 (the iota idiom). Quantity-like types with sparse constants, such
// as sim.Time with its unit constants, are deliberately not enums.
//
// A switch that is intentionally partial is annotated //mw:exhaustive with
// the reason.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "require switches over module enum types to cover every constant or declare a default",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			enum := enumConstants(tv.Type)
			if enum == nil {
				return true
			}
			covered := make(map[string]bool)
			hasDefault := false
			for _, stmt := range sw.Body.List {
				clause := stmt.(*ast.CaseClause)
				if clause.List == nil {
					hasDefault = true
					continue
				}
				for _, expr := range clause.List {
					if cv, ok := pass.TypesInfo.Types[expr]; ok && cv.Value != nil {
						covered[cv.Value.ExactString()] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, c := range enum {
				if !covered[c.Val().ExactString()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				named := namedOf(tv.Type)
				pass.Reportf(sw.Pos(), "switch over %s misses %s and has no default; cover every constant or add an explicit default (//mw:exhaustive to opt out)",
					named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// enumConstants returns the declared constants of t's enum, or nil when t
// is not an enum type of this module.
func enumConstants(t types.Type) []*types.Const {
	named := namedOf(t)
	if named == nil {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModule(obj.Pkg().Path()) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	isInt := basic.Info()&types.IsInteger != 0
	isString := basic.Info()&types.IsString != 0
	if !isInt && !isString {
		return nil
	}
	scope := obj.Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			consts = append(consts, c)
		}
	}
	if len(consts) < 2 {
		return nil
	}
	if isInt {
		// Enum iff the distinct values are the contiguous block 0..n-1.
		vals := make(map[int64]bool)
		for _, c := range consts {
			v, ok := constant.Int64Val(c.Val())
			if !ok {
				return nil
			}
			vals[v] = true
		}
		var distinct []int64
		for v := range vals {
			distinct = append(distinct, v)
		}
		sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
		for i, v := range distinct {
			if v != int64(i) {
				return nil
			}
		}
	}
	return consts
}
