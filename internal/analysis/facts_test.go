package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

// roundTripFact is a representative analyzer fact with exported fields, as
// the gob channel requires.
type roundTripFact struct {
	Why  string
	Hops int
}

func (*roundTripFact) AFact() {}

// TestFactStoreRoundTrip checks the serialization contract of the fact
// store: facts survive a gob round trip, are found through a *different*
// types.Object carrying the same stable key (the situation when a package
// is type-checked once without tests for the facts pass and again with
// tests for the requested pass), stay namespaced per analyzer, and are
// replaced on re-export.
func TestFactStoreRoundTrip(t *testing.T) {
	store := newFactStore()
	pkg := types.NewPackage("mediaworm/internal/example", "example")
	obj := types.NewVar(token.NoPos, pkg, "Exported", types.Typ[types.Int])
	if err := store.export("hotpath", obj, &roundTripFact{Why: "append grows", Hops: 2}); err != nil {
		t.Fatal(err)
	}

	other := types.NewVar(token.NoPos,
		types.NewPackage("mediaworm/internal/example", "example"),
		"Exported", types.Typ[types.Int])
	var got roundTripFact
	if !store.load("hotpath", other, &got) {
		t.Fatal("fact not found via an equivalent object from a second type-check")
	}
	if got.Why != "append grows" || got.Hops != 2 {
		t.Errorf("round-tripped fact = %+v, want {append grows 2}", got)
	}

	if store.load("snapcover", obj, &got) {
		t.Error("fact leaked across analyzer namespaces")
	}

	// Re-export replaces. Decode into a fresh value: gob omits zero fields
	// on the wire, so reusing a populated struct would keep stale fields.
	if err := store.export("hotpath", obj, &roundTripFact{Why: "updated"}); err != nil {
		t.Fatal(err)
	}
	var fresh roundTripFact
	if !store.load("hotpath", obj, &fresh) || fresh.Why != "updated" || fresh.Hops != 0 {
		t.Errorf("re-exported fact = %+v, want {updated 0}", fresh)
	}
}

// TestObjectKeyMethods pins the method key format, which must stay stable
// across type-check instances for facts on methods (EncodeState et al).
func TestObjectKeyMethods(t *testing.T) {
	pkg := types.NewPackage("p/q", "q")
	named := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "T", nil),
		types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "t", types.NewPointer(named))
	sig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "EncodeState", sig)
	key, ok := objectKey(fn)
	if !ok || key != "p/q.(T).EncodeState" {
		t.Errorf("objectKey(method) = %q, %v; want %q, true", key, ok, "p/q.(T).EncodeState")
	}

	fun := types.NewFunc(token.NoPos, pkg, "Helper",
		types.NewSignatureType(nil, nil, nil, nil, nil, false))
	key, ok = objectKey(fun)
	if !ok || key != "p/q.Helper" {
		t.Errorf("objectKey(func) = %q, %v; want %q, true", key, ok, "p/q.Helper")
	}

	if _, ok := objectKey(nil); ok {
		t.Error("objectKey(nil) reported a stable key")
	}
}
