package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package: the unit RunAnalyzers
// consumes.
type Package struct {
	Path      string // import path ("mediaworm/internal/core")
	Dir       string // directory the files were read from
	Fset      *token.FileSet
	Files     []*ast.File // all parsed files, test files included
	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader parses and type-checks packages of the module rooted at Root,
// resolving standard-library imports from source (the environment has no
// compiled package archives) and module-local imports from the tree itself.
// It memoizes, so a shared Loader type-checks each dependency once.
//
// The zero Loader is not usable; call NewLoader.
type Loader struct {
	Root string // module root directory (holds go.mod)

	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*types.Package
	deps   map[string]*Package
	checks int
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
		deps: make(map[string]*Package),
	}
}

// Fset returns the file set all loaded packages share.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// TypeChecks reports how many type-check operations this loader has run.
// Memoization tests assert on it: re-requesting a dependency must not move
// the counter.
func (l *Loader) TypeChecks() int { return l.checks }

// Import implements types.Importer so a package under type-check can resolve
// its dependencies through the same loader.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if inModule(path) {
		pkg, err := l.check(path, l.dirFor(path), false)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, ModulePath), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// Load parses and type-checks the module package with the given import
// path, including its test files.
func (l *Loader) Load(path string) (*Package, error) {
	return l.check(path, l.dirFor(path), true)
}

// Dependency returns the full loaded form — syntax trees included — of the
// module package with the given import path, excluding its test files. The
// result is memoized and shared with import resolution, so a dependency
// that was already pulled in while type-checking another package is not
// checked again; the Driver leans on this to analyze each dependency once.
func (l *Loader) Dependency(path string) (*Package, error) {
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	return l.check(path, l.dirFor(path), false)
}

// LoadDir parses and type-checks the (possibly out-of-module) package in
// dir, pretending its import path is asPath. Fixture tests use this to
// place testdata packages at analyzer-relevant paths.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.check(asPath, dir, true)
}

// check loads the package in dir under import path `path`. When withTests
// is true, in-package test files are parsed and type-checked too (external
// _test packages are skipped — they are separate packages).
func (l *Loader) check(path, dir string, withTests bool) (*Package, error) {
	l.checks++
	names, err := goFileNames(dir, withTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Drop external test packages (package foo_test): they cannot be
	// type-checked together with package foo. The package name comes from
	// the first non-test file so a lexically-early test file cannot
	// mislabel the package.
	base := files[0].Name.Name
	for i, f := range files {
		if !strings.HasSuffix(l.fset.Position(f.Package).Filename, "_test.go") {
			base = files[i].Name.Name
			break
		}
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == base || f.Name.Name+"_test" == base {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}
	if !withTests {
		// Only dependency loads (never test files) are memoized for import
		// resolution and for the Driver's facts-only dependency passes.
		l.pkgs[path] = tpkg
		l.deps[path] = pkg
	}
	return pkg, nil
}

// goFileNames lists dir's Go files in lexical order, skipping test files
// unless withTests is set.
func goFileNames(dir string, withTests bool) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !withTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ModulePackages walks the module tree under root and returns the import
// paths of every Go package, in lexical order. testdata trees, hidden
// directories, and vendored code are skipped.
func ModulePackages(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		path := ModulePath
		if rel != "." {
			path = ModulePath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != path {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
