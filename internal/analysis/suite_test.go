package analysis_test

import (
	"fmt"
	"testing"

	"mediaworm/internal/analysis"
)

// The suite must register at least the four determinism analyzers, with
// distinct names (annotation matching is by name).
func TestSuiteRegistration(t *testing.T) {
	suite := analysis.Suite()
	if len(suite) < 4 {
		t.Fatalf("suite has %d analyzers, want >= 4", len(suite))
	}
	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"detlint", "maporder", "exhaustive", "simtime"} {
		if !seen[name] {
			t.Errorf("suite missing %q", name)
		}
	}
}

// The tree itself must be clean: this is `go run ./cmd/mwlint ./...` as a
// test, so a finding fails the ordinary test run too, not just CI's
// dedicated step.
func TestModuleTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := analysis.ModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("found only %d packages, discovery is broken: %v", len(paths), paths)
	}
	loader := analysis.NewLoader(root)
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzers(analysis.Suite(), pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s: %s: %s", fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column), d.Analyzer.Name, d.Message)
		}
	}
}
