package analysis_test

import (
	"fmt"
	"testing"

	"mediaworm/internal/analysis"
)

// The suite must register the four determinism analyzers plus the three
// cross-package ones, with distinct names (annotation matching is by name).
func TestSuiteRegistration(t *testing.T) {
	suite := analysis.Suite()
	if len(suite) < 7 {
		t.Fatalf("suite has %d analyzers, want >= 7", len(suite))
	}
	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{
		"detlint", "maporder", "exhaustive", "simtime",
		"snapcover", "hotpath", "sharedstate",
	} {
		if !seen[name] {
			t.Errorf("suite missing %q", name)
		}
	}
}

// The tree itself must be clean: this is `go run ./cmd/mwlint ./...` as a
// test, so a finding fails the ordinary test run too, not just CI's
// dedicated step.
func TestModuleTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := analysis.ModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("found only %d packages, discovery is broken: %v", len(paths), paths)
	}
	driver := analysis.NewDriver(analysis.NewLoader(root))
	diags, err := driver.Run(analysis.Suite(), paths)
	if err != nil {
		t.Fatal(err)
	}
	fset := driver.Loader.Fset()
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		pos := fset.Position(d.Pos)
		t.Errorf("%s: %s: %s", fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column), d.Analyzer.Name, d.Message)
	}
}
