package flit

import (
	"fmt"
	"sort"

	"mediaworm/internal/snapshot"
)

// MsgTable maps between message pointers and their IDs for checkpointing.
// A live message is referenced from many places at once — input-VC rings,
// output staging buffers, NI queues, pending injections, and the
// recv/head/busy registers that track worm progress — and those references
// compare pointers for identity. The table serializes each message exactly
// once and lets every holder encode a reference as the message ID, so a
// restore rebuilds the same shared-pointer graph.
type MsgTable struct {
	byID map[uint64]*Message
	ids  []uint64 // insertion order; sorted on demand by IDs
	err  error
}

// NewMsgTable returns an empty table.
func NewMsgTable() *MsgTable {
	return &MsgTable{byID: make(map[uint64]*Message)}
}

// Add registers a message for encoding. nil is a no-op. Two distinct
// messages sharing an ID mean the in-memory model is corrupt; the conflict
// is latched and reported by Err.
func (t *MsgTable) Add(m *Message) {
	if m == nil {
		return
	}
	if prev, ok := t.byID[m.ID]; ok {
		if prev != m && t.err == nil {
			t.err = fmt.Errorf("flit: two live messages share ID %d", m.ID)
		}
		return
	}
	t.byID[m.ID] = m
	t.ids = append(t.ids, m.ID)
}

// Err reports an ID conflict detected by Add, if any.
func (t *MsgTable) Err() error { return t.err }

// Ref returns the wire reference for m: its ID, or 0 for nil. Message IDs
// are assigned from a counter that pre-increments before first use, so ID 0
// is never a real message.
func (t *MsgTable) Ref(m *Message) uint64 {
	if m == nil {
		return 0
	}
	if _, ok := t.byID[m.ID]; !ok && t.err == nil {
		t.err = fmt.Errorf("flit: reference to uncollected message %d", m.ID)
	}
	return m.ID
}

// Get resolves a wire reference during decode: 0 yields nil; an unknown ID
// yields an error.
func (t *MsgTable) Get(id uint64) (*Message, error) {
	if id == 0 {
		return nil, nil
	}
	m, ok := t.byID[id]
	if !ok {
		return nil, &snapshot.InvariantError{
			Invariant: "message-reference",
			Detail:    fmt.Sprintf("reference to message %d not in snapshot table", id),
		}
	}
	return m, nil
}

// Len reports the number of registered messages.
func (t *MsgTable) Len() int { return len(t.ids) }

// Encode writes every registered message, ordered by ID so the byte stream
// is independent of collection order.
func (t *MsgTable) Encode(w *snapshot.Writer) error {
	if t.err != nil {
		return t.err
	}
	sort.Slice(t.ids, func(i, j int) bool { return t.ids[i] < t.ids[j] })
	w.Int(len(t.ids))
	for _, id := range t.ids {
		m := t.byID[id]
		w.U64(m.ID)
		w.Int(m.StreamID)
		w.U8(uint8(m.Class))
		w.Int(m.FrameSeq)
		w.Int(m.MsgSeq)
		w.Int(m.MsgsInFrame)
		w.Int(m.Flits)
		w.Time(m.Vtick)
		w.Int(m.Src)
		w.Int(m.Dst)
		w.Int(m.DstVC)
		w.Time(m.Injected)
		w.Int(m.Attempt)
		w.Bool(m.Dead)
	}
	return nil
}

// DecodeMsgTable reads an encoded table, materializing one Message per
// entry; all decoded references then resolve to these shared pointers.
func DecodeMsgTable(r *snapshot.Reader) (*MsgTable, error) {
	t := NewMsgTable()
	n := r.Len()
	for i := 0; i < n; i++ {
		m := &Message{
			ID:          r.U64(),
			StreamID:    r.Int(),
			Class:       Class(r.U8()),
			FrameSeq:    r.Int(),
			MsgSeq:      r.Int(),
			MsgsInFrame: r.Int(),
			Flits:       r.Int(),
			Vtick:       r.Time(),
			Src:         r.Int(),
			Dst:         r.Int(),
			DstVC:       r.Int(),
			Injected:    r.Time(),
			Attempt:     r.Int(),
			Dead:        r.Bool(),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		if m.ID == 0 || m.Flits < 1 {
			return nil, &snapshot.InvariantError{
				Invariant: "message-record",
				Detail:    fmt.Sprintf("entry %d: id=%d flits=%d", i, m.ID, m.Flits),
			}
		}
		t.Add(m)
		if t.err != nil {
			return nil, t.err
		}
	}
	return t, nil
}

// EncodeFlit writes one buffered flit as (message ref, seq, TS, Enq).
func (t *MsgTable) EncodeFlit(w *snapshot.Writer, f Flit) {
	w.U64(t.Ref(f.Msg))
	w.Int(f.Seq)
	w.Time(f.TS)
	w.Time(f.Enq)
}

// DecodeFlit reads one buffered flit, resolving its message reference.
func (t *MsgTable) DecodeFlit(r *snapshot.Reader) (Flit, error) {
	ref := r.U64()
	f := Flit{Seq: r.Int(), TS: r.Time(), Enq: r.Time()}
	if err := r.Err(); err != nil {
		return Flit{}, err
	}
	m, err := t.Get(ref)
	if err != nil {
		return Flit{}, err
	}
	if m == nil {
		return Flit{}, &snapshot.InvariantError{Invariant: "flit-owner", Detail: "buffered flit with nil message"}
	}
	if f.Seq < 0 || f.Seq >= m.Flits {
		return Flit{}, &snapshot.InvariantError{
			Invariant: "flit-seq",
			Detail:    fmt.Sprintf("flit seq %d outside message %d's %d flits", f.Seq, m.ID, m.Flits),
		}
	}
	f.Msg = m
	return f, nil
}
