package flit

// Pool is a slab-backed free list of Messages, the message-side counterpart
// of the router core's struct-of-arrays arenas: callers that churn through
// short-lived messages (benchmarks, synthetic load drivers) draw from a Pool
// so steady-state message turnover allocates nothing. Get pops a recycled
// message or carves a fresh one from the current slab; Put returns one whose
// flits have fully drained.
//
// Recycling is the caller's responsibility to sequence: a message must not
// be Put while any buffer, request, or staging slot still references it.
// The simulation's traffic layer deliberately does not use a Pool — message
// lifetime there spans retransmission and kill paths whose last reference
// is released asynchronously — but single-owner drivers know exactly when a
// worm has drained.
//
// A Pool is single-goroutine, like the simulation core it feeds.
type Pool struct {
	slab []Message // current slab; carved front to back
	free []*Message
}

// NewPool returns a pool that pre-carves slabs of the given size (minimum 1;
// a typical driver uses its maximum in-flight message count).
func NewPool(slabSize int) *Pool {
	if slabSize < 1 {
		slabSize = 1
	}
	return &Pool{slab: make([]Message, 0, slabSize)}
}

// Get returns a zeroed message.
func (p *Pool) Get() *Message {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		*m = Message{}
		return m
	}
	if len(p.slab) == cap(p.slab) {
		p.slab = make([]Message, 0, cap(p.slab)*2)
	}
	p.slab = p.slab[:len(p.slab)+1]
	return &p.slab[len(p.slab)-1]
}

// Put recycles a message the caller guarantees is no longer referenced by
// any buffer. The message contents are cleared on the next Get.
func (p *Pool) Put(m *Message) {
	if m == nil {
		return
	}
	p.free = append(p.free, m)
}
