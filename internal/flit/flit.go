// Package flit defines the data units of the MediaWorm simulation: traffic
// classes, messages (the unit a wormhole network routes), and flits (the unit
// of flow control and bandwidth scheduling).
//
// The workload hierarchy follows §4.2 of the paper: a video *stream* emits
// *frames* every 33 ms; each frame is segmented into fixed-size *messages*;
// each message is a header flit followed by middle flits and a tail flit.
// The header carries the routing information and the message's bandwidth
// request (Vtick) for the Virtual Clock scheduler.
package flit

import (
	"fmt"

	"mediaworm/internal/sim"
)

// Class is an ATM-style traffic class (§1 of the paper).
type Class uint8

const (
	// CBR is constant-bit-rate real-time traffic (uncompressed video/audio).
	CBR Class = iota
	// VBR is variable-bit-rate real-time traffic (compressed, MPEG-2-like).
	VBR
	// BestEffort (ABR) is everything without real-time requirements.
	BestEffort
)

// RealTime reports whether the class carries a QoS requirement.
func (c Class) RealTime() bool { return c == CBR || c == VBR }

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case CBR:
		return "CBR"
	case VBR:
		return "VBR"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Message is the unit of routing. In wormhole switching each message acts as
// an independent connection: its header carries Vtick, and the router discards
// that state when the tail leaves (§3.3).
type Message struct {
	// ID is unique per simulation run (assigned by the traffic layer).
	ID uint64
	// StreamID identifies the video stream (or best-effort source) that
	// produced this message. Negative for traffic without a stream.
	StreamID int
	// Class of the payload.
	Class Class
	// FrameSeq is the frame number within the stream, MsgSeq the message
	// number within the frame, and MsgsInFrame the frame's message count.
	// A frame is delivered when all MsgsInFrame tails have reached the sink.
	FrameSeq    int
	MsgSeq      int
	MsgsInFrame int
	// Flits is the total flit count including header and tail. Always >= 1;
	// a 1-flit message's single flit is both header and tail.
	Flits int
	// Vtick is the requested inter-flit service interval in nanoseconds
	// (1 / bandwidth in flits per ns). sim.Forever marks best-effort
	// messages, which have maximum slack (§3.3).
	Vtick sim.Time
	// Src and Dst are endpoint (node) identifiers.
	Src, Dst int
	// DstVC is the virtual channel at the destination's final link, drawn at
	// stream setup from the class's VC partition (§4.2.1).
	DstVC int
	// Injected is the instant the message entered its source NI queue.
	Injected sim.Time
	// Attempt is the end-to-end transmission attempt: 0 for the original
	// injection, incremented by the NI retransmission layer on each resend.
	Attempt int
	// Dead marks a message killed by the fault/resilience layer (link
	// failure, flit corruption, retransmission timeout, or deadlock
	// recovery). Routers and NIs reap dead messages' flits from their
	// buffers instead of forwarding them, so the worm unravels and its
	// buffer space and virtual channels are reclaimed.
	Dead bool
}

// Kill marks the message dead. Killing an already-dead message is a no-op.
func (m *Message) Kill() { m.Dead = true }

// IsLastOfFrame reports whether this is the frame's final message.
func (m *Message) IsLastOfFrame() bool { return m.MsgSeq == m.MsgsInFrame-1 }

// Flit is one flow-control unit of a message. Flits are small value types so
// buffers hold them without per-flit allocation.
type Flit struct {
	// Msg is the owning message.
	Msg *Message
	// Seq is the flit index within the message: 0 is the header,
	// Msg.Flits-1 the tail.
	Seq int
	// TS is the Virtual Clock timestamp assigned on arrival at the current
	// contention point (sim.Forever for best-effort flits).
	TS sim.Time
	// Enq is the arrival instant at the current queue; it is the FIFO
	// scheduling key and the stage-1 eligibility reference.
	Enq sim.Time
}

// IsHeader reports whether f is its message's header flit.
func (f Flit) IsHeader() bool { return f.Seq == 0 }

// IsTail reports whether f is its message's tail flit.
func (f Flit) IsTail() bool { return f.Seq == f.Msg.Flits-1 }

// FlitsForBytes returns the number of flitBits-sized flits needed to carry
// payloadBytes, always at least 1 (the header).
func FlitsForBytes(payloadBytes, flitBits int) int {
	if flitBits <= 0 {
		panic("flit: non-positive flit size")
	}
	bits := payloadBytes * 8
	n := (bits + flitBits - 1) / flitBits
	if n < 1 {
		n = 1
	}
	return n
}
