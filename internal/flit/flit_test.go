package flit

import (
	"testing"
	"testing/quick"

	"mediaworm/internal/sim"
)

func TestClassRealTime(t *testing.T) {
	if !CBR.RealTime() || !VBR.RealTime() {
		t.Fatal("CBR and VBR must be real-time")
	}
	if BestEffort.RealTime() {
		t.Fatal("best-effort must not be real-time")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{CBR: "CBR", VBR: "VBR", BestEffort: "best-effort"} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class should still stringify")
	}
}

func TestHeaderTail(t *testing.T) {
	m := &Message{Flits: 20}
	h := Flit{Msg: m, Seq: 0}
	mid := Flit{Msg: m, Seq: 10}
	tail := Flit{Msg: m, Seq: 19}
	if !h.IsHeader() || h.IsTail() {
		t.Fatal("header flit misclassified")
	}
	if mid.IsHeader() || mid.IsTail() {
		t.Fatal("middle flit misclassified")
	}
	if tail.IsHeader() || !tail.IsTail() {
		t.Fatal("tail flit misclassified")
	}
}

func TestSingleFlitMessageIsHeaderAndTail(t *testing.T) {
	m := &Message{Flits: 1}
	f := Flit{Msg: m, Seq: 0}
	if !f.IsHeader() || !f.IsTail() {
		t.Fatal("1-flit message's flit must be both header and tail")
	}
}

func TestIsLastOfFrame(t *testing.T) {
	m := &Message{MsgSeq: 4, MsgsInFrame: 5}
	if !m.IsLastOfFrame() {
		t.Fatal("final message not detected")
	}
	m.MsgSeq = 3
	if m.IsLastOfFrame() {
		t.Fatal("non-final message detected as last")
	}
}

func TestFlitsForBytes(t *testing.T) {
	cases := []struct{ bytes, bits, want int }{
		{16666, 32, 4167}, // one MPEG-2 mean frame at the paper's flit size
		{4, 32, 1},
		{5, 32, 2},
		{0, 32, 1}, // at least the header
		{80, 32, 20},
	}
	for _, c := range cases {
		if got := FlitsForBytes(c.bytes, c.bits); got != c.want {
			t.Fatalf("FlitsForBytes(%d,%d) = %d, want %d", c.bytes, c.bits, got, c.want)
		}
	}
}

func TestFlitsForBytesPanicsOnBadFlitSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero flit size")
		}
	}()
	FlitsForBytes(100, 0)
}

// Property: the flit count always covers the payload and never overshoots by
// a full flit.
func TestPropertyFlitsCoverPayload(t *testing.T) {
	f := func(bytesRaw uint16, bitsRaw uint8) bool {
		bytes := int(bytesRaw)
		bits := int(bitsRaw%64) + 8
		n := FlitsForBytes(bytes, bits)
		covered := n * bits
		return covered >= bytes*8 && (n == 1 || (n-1)*bits < bytes*8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBestEffortVtickSentinel(t *testing.T) {
	m := &Message{Class: BestEffort, Vtick: sim.Forever}
	if m.Vtick != sim.Forever {
		t.Fatal("best-effort sentinel lost")
	}
}
