package calculus

import (
	"math"
	"testing"

	"mediaworm/internal/sched"
)

func mustNew(t *testing.T, p Params) *Controller {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidatesParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Nodes = 1 },
		func(p *Params) { p.Topology = FatMesh2x2; p.Nodes = 8 },
		func(p *Params) { p.LinkBandwidthBps = 0 },
		func(p *Params) { p.MsgFlits = 0 },
		func(p *Params) { p.FrameBytes = 0 },
		func(p *Params) { p.IntervalSec = 0 },
		func(p *Params) { p.BestEffortLoad = 1.5 },
		func(p *Params) { p.RTVCs = 99 }, // rejected by sched.ServiceCurve
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if _, err := New(p); err == nil {
			t.Fatalf("case %d: New accepted invalid params", i)
		}
	}
}

func TestNormalizedDefaults(t *testing.T) {
	p := DefaultParams().normalized()
	if p.SigmaFactor != 5 {
		t.Fatalf("SigmaFactor default %v, want 5", p.SigmaFactor)
	}
	if got, want := p.DeadlineSec, p.IntervalSec/2; got != want {
		t.Fatalf("DeadlineSec default %v, want %v", got, want)
	}
	// θ resolves dynamically: with nothing registered the fixed point is
	// trivial, and each registered stream raises it. A manual budget wins.
	c := mustNew(t, DefaultParams())
	if got := c.HopBudgetSec(); got != 0 {
		t.Fatalf("empty-fabric θ %v, want 0", got)
	}
	c.Register(0, 1)
	if got := c.HopBudgetSec(); got <= 0 || math.IsInf(got, 1) {
		t.Fatalf("one-stream θ %v, want finite positive", got)
	}
	manual := DefaultParams()
	manual.HopDelayBudgetSec = 1e-3
	if got := mustNew(t, manual).HopBudgetSec(); got != 1e-3 {
		t.Fatalf("manual θ %v, want 1e-3", got)
	}
}

func TestRegisterReleaseRoundTrip(t *testing.T) {
	c := mustNew(t, DefaultParams())
	pairs := [][2]int{{0, 1}, {0, 1}, {2, 5}, {7, 0}}
	for _, p := range pairs {
		c.Register(p[0], p[1])
	}
	for _, p := range pairs {
		c.Release(p[0], p[1])
	}
	for i := range c.links {
		l := &c.links[i]
		if l.n != 0 || l.rate != 0 || l.var_ != 0 || l.sumU != 0 || l.sumU2 != 0 {
			t.Fatalf("link %d not empty after release: %+v", i, *l)
		}
	}
}

// The scalar hot path must agree with the general curve algebra: per link,
// sojourn and backlog are the horizontal and vertical deviations between
// the aggregate token bucket and the rate-latency service; end to end, the
// bound is the deviation against the convolved leftover services.
func TestControllerMatchesCurveAlgebra(t *testing.T) {
	c := mustNew(t, DefaultParams())
	for src := 0; src < 8; src++ {
		for k := 0; k < 3; k++ {
			c.Register(src, (src+1+k)%8)
		}
	}
	theta := c.HopBudgetSec()
	if theta <= 0 || math.IsInf(theta, 1) {
		t.Fatalf("resolved θ %v", theta)
	}
	// The sojourn's arrival curve carries the pacing allowance as extra
	// burst (pace seconds of aggregate arrivals); the backlog's does not —
	// reordering within the class moves bits' departure order, not how
	// many are queued.
	for id := 0; id < c.NumLinks(); id++ {
		l := &c.links[id]
		paced := TokenBucket(c.aggBurst(l, theta)+c.aggRate(l)*c.pace, c.aggRate(l))
		alpha := TokenBucket(c.aggBurst(l, theta), c.aggRate(l))
		beta := RateLatency(l.baseR, l.baseT)
		if got, want := c.LinkSojournSec(id), DelayBound(paced, beta); math.Abs(got-want) > 1e-12 {
			t.Fatalf("link %d sojourn %v, curve algebra %v", id, got, want)
		}
		if got, want := c.BacklogBoundBits(id), BacklogBound(alpha, beta); math.Abs(got-want) > 1e-6 {
			t.Fatalf("link %d backlog %v, curve algebra %v", id, got, want)
		}
	}

	// End to end for stream 0→1: the bound sums the per-link horizontal
	// deviations (plus the own-serialization correction, zero on a single
	// switch where stream cap equals link rate).
	r := &c.routes[0*8+1]
	want := 0.0
	for i := 0; i < int(r.n); i++ {
		l := &c.links[r.links[i]]
		paced := TokenBucket(c.aggBurst(l, theta)+c.aggRate(l)*c.pace, c.aggRate(l))
		beta := RateLatency(l.baseR, l.baseT)
		want += DelayBound(paced, beta) + c.b0*(1/l.streamCap-1/l.baseR)
	}
	got := c.DelayBoundSec(0, 1)
	if math.IsInf(got, 1) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("e2e bound %v, curve algebra %v", got, want)
	}
}

func TestDelayBoundMonotoneInPopulation(t *testing.T) {
	c := mustNew(t, DefaultParams())
	c.Register(0, 1)
	prev := c.DelayBoundSec(0, 1)
	if math.IsInf(prev, 1) || prev <= 0 {
		t.Fatalf("single-stream bound %v", prev)
	}
	for k := 0; k < 10; k++ {
		c.Register(2+k%6, 1) // pile cross traffic onto node 1's delivery link
		d := c.DelayBoundSec(0, 1)
		if d < prev {
			t.Fatalf("bound shrank from %v to %v as cross traffic grew", prev, d)
		}
		prev = d
	}
}

func TestDelayBoundInfiniteWhenOverloaded(t *testing.T) {
	c := mustNew(t, DefaultParams())
	// 4 Mb/s nominal per stream with bursts: ~100 streams swamp a 400 Mb/s
	// delivery link.
	for k := 0; k < 100; k++ {
		c.Register(k%7, 7)
	}
	if d := c.DelayBoundSec(0, 7); !math.IsInf(d, 1) {
		t.Fatalf("overloaded bound %v, want +Inf", d)
	}
	if b := c.BacklogBoundBits(8 + 7); !math.IsInf(b, 1) {
		t.Fatalf("overloaded backlog %v, want +Inf", b)
	}
}

func TestAdmitGuardsDeadline(t *testing.T) {
	p := DefaultParams()
	c := mustNew(t, p)
	const attempts = 1600
	admitted := 0
	for k := 0; k < attempts; k++ {
		src := k % 8
		dst := (k + 1 + k/8) % 8
		if src == dst {
			dst = (dst + 1) % 8
		}
		if c.Admit(src, dst) {
			admitted++
		}
	}
	if admitted == 0 || admitted == attempts {
		t.Fatalf("admitted %d of %d, want a real admission boundary", admitted, attempts)
	}
	if c.Admitted != admitted || c.Rejected != attempts-admitted {
		t.Fatalf("counters %d/%d, want %d/%d", c.Admitted, c.Rejected, admitted, attempts-admitted)
	}
	// Rejections must have been rolled back: total registered streams on
	// injection links equals the admitted count.
	registered := 0
	for i := 0; i < 8; i++ {
		registered += c.links[i].n
	}
	if registered != admitted {
		t.Fatalf("%d streams registered after %d admissions", registered, admitted)
	}
}

func TestAdmitRollbackLeavesStateClean(t *testing.T) {
	p := DefaultParams()
	p.DeadlineSec = 1e-9 // impossible deadline: everything rejected
	c := mustNew(t, p)
	if c.Admit(0, 1) {
		t.Fatal("admitted a stream that cannot meet a 1 ns deadline")
	}
	for i := range c.links {
		if c.links[i].n != 0 {
			t.Fatalf("rollback left link %d populated", i)
		}
	}
}

func TestFatMeshRoutesAndBounds(t *testing.T) {
	p := DefaultParams()
	p.Topology = FatMesh2x2
	p.Nodes = 16
	c := mustNew(t, p)
	if got, want := c.NumLinks(), 2*16+8; got != want {
		t.Fatalf("fat-mesh links %d, want %d", got, want)
	}
	// Endpoint 0 (switch 0) to endpoint 15 (switch 3): XY route crosses an
	// X fat channel then a Y fat channel — 4 links total.
	r := &c.routes[0*16+15]
	if r.n != 4 {
		t.Fatalf("route 0→15 has %d links, want 4", r.n)
	}
	if r.links[0] != 0 || r.links[3] != 16+15 {
		t.Fatalf("route 0→15 endpoints wrong: %v", r.links[:r.n])
	}
	for i := 0; i < 4; i++ {
		if int(r.ups[i]) != i {
			t.Fatalf("upstream counts %v", r.ups[:r.n])
		}
	}
	// Same-switch route stays two links.
	if r := &c.routes[0*16+1]; r.n != 2 {
		t.Fatalf("route 0→1 has %d links, want 2", r.n)
	}
	c.Register(0, 15)
	if d := c.DelayBoundSec(0, 15); math.IsInf(d, 1) || d <= c.MinLatencySec() {
		t.Fatalf("lone fat-mesh stream bound %v (dmin %v)", d, c.MinLatencySec())
	}
}

func TestFIFOBestEffortDegradesService(t *testing.T) {
	base := DefaultParams()
	base.Policy = sched.FIFO
	base.RTVCs = 12
	quiet := mustNew(t, base)
	loaded := base
	loaded.BestEffortLoad = 0.5
	noisy := mustNew(t, loaded)
	quiet.Register(0, 1)
	noisy.Register(0, 1)
	dq, dn := quiet.DelayBoundSec(0, 1), noisy.DelayBoundSec(0, 1)
	if !(dn > dq) {
		t.Fatalf("FIFO bound with BE cross %v not above quiet %v", dn, dq)
	}

	// VirtualClock isolates best-effort: the same BE load must not move
	// the bound at all.
	vcBase := DefaultParams()
	vcQuiet := mustNew(t, vcBase)
	vcLoadedP := vcBase
	vcLoadedP.BestEffortLoad = 0.5
	vcNoisy := mustNew(t, vcLoadedP)
	vcQuiet.Register(0, 1)
	vcNoisy.Register(0, 1)
	if a, b := vcQuiet.DelayBoundSec(0, 1), vcNoisy.DelayBoundSec(0, 1); a != b {
		t.Fatalf("VirtualClock bound moved with BE load: %v vs %v", a, b)
	}
}

func TestMaxBacklogBits(t *testing.T) {
	c := mustNew(t, DefaultParams())
	for k := 0; k < 6; k++ {
		c.Register(k, 7) // converge on node 7's delivery link
	}
	bits, id := c.MaxBacklogBits()
	if id != 8+7 {
		t.Fatalf("max backlog at link %d, want delivery link %d", id, 8+7)
	}
	if bits <= 0 || math.IsInf(bits, 1) {
		t.Fatalf("backlog bound %v", bits)
	}
}
