package calculus

import (
	"math"

	"mediaworm/internal/admission"
	"mediaworm/internal/traffic"
)

// paperIntervalSec is the paper's 33 ms frame interval; probe results are
// renormalized to it so scaled-down parameter sets report paper-scale
// milliseconds, matching the simulator-backed probe in
// internal/experiments.
const paperIntervalSec = 0.033

// AnalyticProbe returns an admission.ProbeFunc backed by the closed-form
// model instead of the simulator: for a given (load, rtShare) it builds a
// Controller with the implied VC partition and best-effort cross load,
// registers the implied per-node stream population with balanced
// destinations, and reports the worst analytic delay bound in excess of the
// uncontended latency, in paper-scale milliseconds.
//
// The reported figure bounds the full delivery-delay spread, which
// dominates the delivery-interval standard deviation the simulator probe
// measures — so an envelope calibrated from this probe is conservative
// against the same jitter budget. A probe point whose bound is +Inf
// (unstable or θ-violating fabric) reports a huge finite jitter so
// admission.Calibrate's bisection backs off rather than erroring.
func AnalyticProbe(p Params) admission.ProbeFunc {
	return func(load, rtShare float64) (float64, error) {
		worst, dmin, err := BalancedDelayBoundSec(p, load, rtShare)
		if err != nil {
			return 0, err
		}
		if math.IsInf(worst, 1) {
			return 1e9, nil
		}
		jitter := worst - dmin
		if jitter < 0 {
			jitter = 0
		}
		return jitter * 1e3 * paperIntervalSec / p.IntervalSec, nil
	}
}

// BalancedDelayBoundSec prices one operating point in closed form: it builds
// a Controller with the VC partition and best-effort cross load the
// (load, rtShare) mix implies, registers the implied per-node real-time
// population with balanced destinations, and returns the worst end-to-end
// delay bound over the registered routes plus the fabric's uncontended
// latency floor. The bound is +Inf when the model declines the operating
// point (unstable or past the burst-inflation fixed point). CLIs use this
// one-call form to annotate simulated sweep rows with their analytic
// counterpart.
func BalancedDelayBoundSec(p Params, load, rtShare float64) (worst, dmin float64, err error) {
	q := p
	q.RTVCs = traffic.PartitionVCs(p.VCs, rtShare)
	q.BestEffortLoad = load * (1 - rtShare)
	c, err := New(q)
	if err != nil {
		return 0, 0, err
	}
	nominal := p.FrameBytes * 8 / p.IntervalSec
	perNode := int(math.Round(load * rtShare * p.LinkBandwidthBps / nominal))
	return c.registerBalanced(perNode), c.dmin, nil
}

// registerBalanced admits perNode streams at every node with round-robin
// destination placement (node i's k-th stream targets i+1+k mod the rest),
// loading every injection and delivery link equally, and returns the worst
// delay bound over the registered routes.
func (c *Controller) registerBalanced(perNode int) (worst float64) {
	n := c.p.Nodes
	for src := 0; src < n; src++ {
		for k := 0; k < perNode; k++ {
			c.Register(src, (src+1+k%(n-1))%n)
		}
	}
	distinct := perNode
	if distinct > n-1 {
		distinct = n - 1
	}
	for src := 0; src < n; src++ {
		for k := 0; k < distinct; k++ {
			if d := c.DelayBoundSec(src, (src+1+k)%n); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// AnalyticEnvelope calibrates a jitter-free operating envelope purely from
// the network-calculus model — no simulation — by running the standard
// admission.Calibrate bisection against AnalyticProbe. It is the
// closed-form sibling of admission.DefaultEnvelope (paper numbers) and a
// simulator-backed Calibrate: same type, same admission.Controller
// compatibility, derived in microseconds instead of simulated hours.
func AnalyticEnvelope(p Params, shares []float64, jitterBudgetMs float64, steps int) (*admission.Envelope, error) {
	return admission.Calibrate(AnalyticProbe(p), shares, jitterBudgetMs, steps)
}
