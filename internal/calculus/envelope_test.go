package calculus

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestAnalyticProbeBehaviour(t *testing.T) {
	probe := AnalyticProbe(DefaultParams())
	light, err := probe(0.4, 0.5)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	heavy, err := probe(0.96, 1.0)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if light < 0 || math.IsInf(light, 1) {
		t.Fatalf("light-load jitter %v", light)
	}
	if heavy <= light {
		t.Fatalf("jitter bound not increasing with load: %v at 0.4 vs %v at 0.96", light, heavy)
	}
}

func TestAnalyticProbeMonotoneInLoad(t *testing.T) {
	probe := AnalyticProbe(DefaultParams())
	for _, share := range []float64{0.5, 0.8, 1.0} {
		prev := -1.0
		for _, load := range []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.96} {
			sd, err := probe(load, share)
			if err != nil {
				t.Fatalf("probe(%v, %v): %v", load, share, err)
			}
			if sd < prev {
				t.Fatalf("share %v: jitter bound fell from %v to %v at load %v", share, prev, sd, load)
			}
			prev = sd
		}
	}
}

func TestAnalyticEnvelope(t *testing.T) {
	env, err := AnalyticEnvelope(DefaultParams(), []float64{0.5, 0.8, 1.0}, 1.5, 6)
	if err != nil {
		t.Fatalf("AnalyticEnvelope: %v", err)
	}
	pts := env.Points()
	if len(pts) != 3 {
		t.Fatalf("envelope has %d points, want 3", len(pts))
	}
	for _, p := range pts {
		if p.MaxLoad <= 0.4 || p.MaxLoad > 1 {
			t.Fatalf("calibrated MaxLoad %v at share %v outside the searched range", p.MaxLoad, p.RTShare)
		}
	}
	// Calibrate already enforces monotonicity; spot-check anyway.
	for i := 1; i < len(pts); i++ {
		if pts[i].MaxLoad > pts[i-1].MaxLoad+1e-9 {
			t.Fatalf("envelope not monotone: %+v", pts)
		}
	}
}

// TestAnalyticEnvelopeGolden pins the exact rendered bytes of the analytic
// envelope for the paper's Table 1 configuration. The model is pure float64
// arithmetic with exactly-rounded math.Sqrt, so the output is deterministic
// across platforms; an unintentional change to curve algebra, service
// modeling, or burst accounting shows up as a byte diff here. Refresh with
// `go test ./internal/calculus -run Golden -update` after an intentional
// model change.
func TestAnalyticEnvelopeGolden(t *testing.T) {
	env, err := AnalyticEnvelope(DefaultParams(), []float64{0.2, 0.4, 0.5, 0.6, 0.8, 0.9, 1.0}, 1.5, 8)
	if err != nil {
		t.Fatalf("AnalyticEnvelope: %v", err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# AnalyticEnvelope, Table 1 single switch, budget 1.5 ms, 8 bisection steps\n")
	fmt.Fprintf(&buf, "rt_share,max_load\n")
	for _, p := range env.Points() {
		fmt.Fprintf(&buf, "%.2f,%.6f\n", p.RTShare, p.MaxLoad)
	}
	path := filepath.Join("testdata", "envelope.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("analytic envelope drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// The admission hot path must not allocate: a controller embedded in a
// long-running admission loop may be consulted per stream arrival.
func TestAdmitZeroAllocs(t *testing.T) {
	c, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Admit(n%8, (n+1)%8) {
			c.Release(n%8, (n+1)%8)
		}
		n++
	})
	if allocs != 0 {
		t.Fatalf("Admit/Release allocates %v per op, want 0", allocs)
	}
}

func BenchmarkAnalyticAdmit(b *testing.B) {
	c, err := New(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % 8
		dst := (i + 1 + i/8%7) % 8
		if src == dst {
			dst = (dst + 1) % 8
		}
		if c.Admit(src, dst) {
			c.Release(src, dst)
		}
	}
}

func BenchmarkAnalyticDelayBound(b *testing.B) {
	c, err := New(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	for src := 0; src < 8; src++ {
		for k := 0; k < 3; k++ {
			c.Register(src, (src+1+k)%8)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.DelayBoundSec(i%8, (i%8+1)%8)
	}
}
