package calculus

import (
	"fmt"
	"math"

	"mediaworm/internal/core"
	"mediaworm/internal/sched"
	"mediaworm/internal/topology"
)

// Topology selects the fabric shape the analytic model composes routes over.
type Topology uint8

const (
	// SingleSwitch is one router with Params.Nodes endpoint ports.
	SingleSwitch Topology = iota
	// FatMesh2x2 is the paper's 4-switch fat-mesh with 16 endpoints and
	// XY routing; each fat channel (two parallel links) is modeled as one
	// double-rate server whose per-stream rate stays capped at one link.
	FatMesh2x2
)

// Params captures the slice of a simulator configuration the analytic model
// needs, in plain numbers so the package stays free of the simulator.
type Params struct {
	Topology Topology
	// Nodes is the endpoint count (8 for the paper's single switch, 16 for
	// the fat-mesh).
	Nodes int
	// LinkBandwidthBps and FlitBits set the cycle time; MsgFlits the
	// wormhole message size (header included).
	LinkBandwidthBps float64
	FlitBits         int
	MsgFlits         int
	// VCs and RTVCs give the virtual-channel partition; Policy the
	// scheduling discipline at the contention points.
	VCs, RTVCs int
	Policy     sched.Kind
	// RTWeight, BEWeight and Quantum parameterize the weighted disciplines
	// (WRR/DRR/WF²Q+/SP+WRR): the per-VC weight of the real-time and
	// best-effort partitions and the DRR quantum, all defaulting to 1 when
	// zero. Ignored by FIFO/RoundRobin/VirtualClock.
	RTWeight, BEWeight, Quantum int
	// FrameBytes, FrameBytesSD and IntervalSec shape the per-stream video
	// arrival process (16666 B ± 3333 B every 33 ms in the paper).
	FrameBytes, FrameBytesSD float64
	IntervalSec              float64
	// BestEffortLoad is the standing best-effort load per source, as a
	// fraction of link bandwidth. Under FIFO it is cross traffic; under
	// RoundRobin and VirtualClock the discipline isolates it.
	BestEffortLoad float64
	// SigmaFactor is the effective-envelope quantile k: a stream's rate
	// envelope is mean + k·σ, and a link aggregate pools as
	// Σmean + k·√(Σσ²). The paper's VBR frames are normal draws with
	// unbounded support, so absolute worst-case envelopes do not exist;
	// k = 5 (the default when 0) puts a single-frame exceedance below
	// 3·10⁻⁷. See DESIGN.md §16.
	SigmaFactor float64
	// HopDelayBudgetSec is θ, the per-link sojourn budget that closes the
	// burst-propagation recursion: a stream's burst at a link with u
	// upstream hops is inflated by u·θ worth of its arrival envelope,
	// which is a valid envelope as long as every link's aggregate sojourn
	// stays ≤ θ — and the model reports +Inf whenever that check fails, so
	// the bound is never silently optimistic. Smaller θ tightens the
	// bounds but certifies less load. 0 (the default) resolves θ to the
	// self-consistent fixed point: every link's sojourn is affine in θ,
	// h(θ) = a + s·θ with slope s < 1 on feasible links, so the smallest
	// sound budget is θ* = max over populated links of a/(1−s),
	// recomputed as streams come and go (HopBudgetSec reports it). Set a
	// positive value only to pin the trade-off by hand.
	HopDelayBudgetSec float64
	// DeadlineSec is the end-to-end delay bound a stream must meet to be
	// admitted by Admit. 0 selects IntervalSec/2.
	DeadlineSec float64
}

// DefaultParams mirrors the paper's Table 1 single-switch configuration:
// 8 ports, 400 Mb/s links, 32-bit flits, 20-flit messages, 16 VCs with a
// 12:4 real-time split, Virtual Clock scheduling, and the 16666 B ± 3333 B
// per 33 ms VBR video workload.
func DefaultParams() Params {
	return Params{
		Topology:         SingleSwitch,
		Nodes:            8,
		LinkBandwidthBps: 400e6,
		FlitBits:         32,
		MsgFlits:         20,
		VCs:              16,
		RTVCs:            12,
		Policy:           sched.VirtualClock,
		FrameBytes:       16666,
		FrameBytesSD:     3333,
		IntervalSec:      0.033,
	}
}

func (p Params) normalized() Params {
	if p.SigmaFactor == 0 {
		p.SigmaFactor = 5
	}
	if p.DeadlineSec == 0 {
		p.DeadlineSec = p.IntervalSec / 2
	}
	return p
}

func (p Params) validate() error {
	switch {
	case p.Nodes < 2:
		return fmt.Errorf("calculus: need at least 2 nodes, got %d", p.Nodes)
	case p.Topology == FatMesh2x2 && p.Nodes != 16:
		return fmt.Errorf("calculus: fat-mesh model needs 16 nodes, got %d", p.Nodes)
	case p.LinkBandwidthBps <= 0 || p.FlitBits <= 0 || p.MsgFlits < 1:
		return fmt.Errorf("calculus: invalid link/flit parameters")
	case p.FrameBytes <= 0 || p.FrameBytesSD < 0 || p.IntervalSec <= 0:
		return fmt.Errorf("calculus: invalid frame parameters")
	case p.BestEffortLoad < 0 || p.BestEffortLoad > 1:
		return fmt.Errorf("calculus: best-effort load %v outside [0, 1]", p.BestEffortLoad)
	case p.SigmaFactor < 0 || p.HopDelayBudgetSec < 0 || p.DeadlineSec < 0:
		return fmt.Errorf("calculus: negative envelope parameters")
	case p.RTWeight < 0 || p.BEWeight < 0 || p.Quantum < 0:
		return fmt.Errorf("calculus: negative scheduler parameters")
	}
	return nil
}

// maxHops bounds route length: injection, X transit, Y transit, delivery.
const maxHops = 4

// routeEntry is one precomputed source→destination route: the link ids the
// stream crosses and, per link, how many links precede it on the route (the
// burst-inflation hop count).
type routeEntry struct {
	links [maxHops]int32
	ups   [maxHops]uint8
	n     uint8
}

// link is one modeled unidirectional server plus the admitted real-time
// aggregate flowing through it.
type link struct {
	// baseR and baseT are the rate-latency service left for real-time
	// traffic after the scheduling discipline and (under FIFO) the standing
	// best-effort cross traffic: baseR in bits/s, baseT in seconds.
	baseR, baseT float64
	// streamCap caps a single stream's service rate: one physical link,
	// even on a double-rate fat channel.
	streamCap float64

	// Admitted aggregate: stream count, Σ mean rate, Σ rate variance, and
	// the θ-independent burst-inflation moments — Σ upstream-hop counts
	// and Σ squared hop counts. The pooled burst at budget θ is
	// n·b0 + θ·(μ·sumU + k·σ·√sumU2).
	n     int
	rate  float64
	var_  float64
	sumU  float64
	sumU2 float64
}

// Controller is the incremental analytic admission controller: it keeps
// per-link arrival aggregates for every admitted stream and answers
// admit/reject in O(route length) — constant for a fixed topology — with
// zero allocations. It is the closed-form counterpart of the simulator
// probe behind admission.Calibrate.
//
// The controller is not safe for concurrent use.
type Controller struct {
	p     Params
	svc   sched.ServiceModel
	cycle float64 // seconds per flit transmission

	// Per-stream arrival parameters (every stream shares Params' shape):
	// mean and σ of the wire-bit rate, and the entry burst (one message
	// dumped into the NI at once).
	mu, sigma, b0 float64
	// pace is the scheduling discipline's intra-class reordering window in
	// seconds: how far a message's service eligibility can lag its arrival
	// relative to FIFO order within the real-time class. Zero for FIFO
	// (exact FIFO within class); (MsgFlits−1) nominal Vticks for
	// VirtualClock (stamp skew across a message, with the traffic layer's
	// nominal-rate clock floor); one message at the per-VC fair share for
	// RoundRobin. A link's sojourn bound charges pace worth of extra
	// aggregate arrivals: h = T + (B + r_agg·pace)/R.
	pace float64
	// theta caches the resolved per-link sojourn budget; thetaDirty marks
	// it stale after Register/Release. Manual budgets (HopDelayBudgetSec
	// > 0) bypass the cache entirely.
	theta      float64
	thetaDirty bool

	links  []link
	routes []routeEntry // Nodes×Nodes, row-major

	// dmin is the uncontended end-to-end latency of one message (pipeline
	// + serialization), the baseline for jitter estimates.
	dmin float64

	// Admitted and Rejected count Admit decisions.
	Admitted, Rejected int
}

// New builds the analytic model of a fabric. All curves and aggregates are
// preallocated here; admission-time operations allocate nothing.
func New(p Params) (*Controller, error) {
	p = p.normalized()
	if err := p.validate(); err != nil {
		return nil, err
	}
	svc, err := sched.ServiceCurve(p.Policy, sched.ServiceConfig{
		VCs: p.VCs, RTVCs: p.RTVCs,
		RTWeight: p.RTWeight, BEWeight: p.BEWeight, Quantum: p.Quantum,
	})
	if err != nil {
		return nil, err
	}
	c := &Controller{p: p, svc: svc}
	c.cycle = float64(p.FlitBits) / p.LinkBandwidthBps

	// Arrival envelope of one stream (§4.2.1 workload): frames of
	// Normal(FrameBytes, FrameBytesSD) bytes every IntervalSec, segmented
	// into MsgFlits-flit messages spread evenly over the interval, one
	// header flit per message.
	hdr := 1.0
	if p.MsgFlits > 1 {
		hdr = float64(p.MsgFlits) / float64(p.MsgFlits-1)
	}
	c.mu = p.FrameBytes * 8 * hdr / p.IntervalSec
	c.sigma = p.FrameBytesSD * 8 * hdr / p.IntervalSec
	c.b0 = float64(p.MsgFlits * p.FlitBits)
	switch p.Policy {
	case sched.VirtualClock:
		// Nominal Vtick = IntervalSec / wire flits of a mean frame; the
		// traffic layer floors every connection's clock at this rate.
		nomWire := math.Ceil(p.FrameBytes*8/float64(p.FlitBits)) * hdr
		c.pace = float64(p.MsgFlits-1) * p.IntervalSec / nomWire
	case sched.RoundRobin:
		c.pace = float64(p.MsgFlits*p.FlitBits) * float64(p.VCs) / p.LinkBandwidthBps
	case sched.WRR, sched.DRR:
		// A message can sit out one full rotation of the wheel before its
		// VC's next turn; a DRR turn is quantum messages long.
		q := 1.0
		if p.Policy == sched.DRR && p.Quantum > 1 {
			q = float64(p.Quantum)
		}
		c.pace = q * float64(p.MsgFlits*p.FlitBits) * float64(p.VCs) / p.LinkBandwidthBps
	case sched.WF2Q:
		// WF²Q+ stays within two packets of the fluid GPS reference, so the
		// intra-class reordering window is two message serializations.
		c.pace = 2 * float64(p.MsgFlits*p.FlitBits) / p.LinkBandwidthBps
	case sched.SPWRR:
		// The real-time tier preempts best-effort outright; the window is
		// one WRR rotation over the real-time VCs alone.
		c.pace = float64(p.MsgFlits*p.FlitBits) * float64(p.RTVCs) / p.LinkBandwidthBps
	case sched.FIFO:
		// FIFO serves the class in arrival order: no reordering window.
	}
	c.thetaDirty = true

	if err := c.buildTopology(); err != nil {
		return nil, err
	}
	c.applyBestEffort()
	return c, nil
}

// Params returns the normalized model parameters.
func (c *Controller) Params() Params { return c.p }

// NumLinks returns the number of modeled unidirectional links.
func (c *Controller) NumLinks() int { return len(c.links) }

// MinLatencySec returns the uncontended end-to-end latency of one message:
// the floor every delay bound sits on.
func (c *Controller) MinLatencySec() float64 { return c.dmin }

// HopBudgetSec returns the per-link sojourn budget θ in force: the manual
// HopDelayBudgetSec when set, otherwise the self-consistent fixed point for
// the currently registered streams (+Inf when no fixed point exists — some
// populated link's burst-inflation slope has reached 1).
func (c *Controller) HopBudgetSec() float64 { return c.thetaSec() }

// buildTopology lays out the link inventory and the route table.
//
// Link id space: [0, Nodes) injection links (NI → router), [Nodes, 2·Nodes)
// delivery links (router → node), then for the fat-mesh the eight directed
// fat channels in fmPairs order.
func (c *Controller) buildTopology() error {
	n := c.p.Nodes
	nLinks := 2 * n
	if c.p.Topology == FatMesh2x2 {
		nLinks += len(fmPairs)
	}
	c.links = make([]link, nLinks)
	C := c.p.LinkBandwidthBps

	// Scheduling latency: the configured discipline arbitrates at two
	// policy contention points per hop (crossbar input multiplexer and
	// output link multiplexer), so the worst-case scheduling latency
	// applies twice per link.
	schedT := 2 * c.svc.LatencyFlits * c.cycle
	for i := range c.links {
		l := &c.links[i]
		l.streamCap = C
		switch {
		case i < n: // injection: feeds a router — full header pipeline
			l.baseR = c.svc.Share * C
			l.baseT = schedT + float64(core.HeaderPipelineCycles)*c.cycle
		case i < 2*n: // delivery: router output to the sink
			l.baseR = c.svc.Share * C
			l.baseT = schedT + c.cycle
		default: // fat channel: two parallel links, one double-rate server
			l.baseR = c.svc.Share * 2 * C
			l.baseT = schedT + float64(core.HeaderPipelineCycles)*c.cycle
		}
	}

	c.routes = make([]routeEntry, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			r := &c.routes[src*n+dst]
			add := func(link int) {
				r.links[r.n] = int32(link)
				r.ups[r.n] = r.n
				r.n++
			}
			add(src) // injection
			if c.p.Topology == FatMesh2x2 {
				srcSw, _ := topology.FatMeshEndpointLocation(src)
				dstSw, _ := topology.FatMeshEndpointLocation(dst)
				path := topology.FatMeshSwitchPath(srcSw, dstSw)
				for i := 1; i < len(path); i++ {
					add(2*n + fmPairIndex(path[i-1], path[i]))
				}
			}
			add(n + dst) // delivery
		}
	}

	// Uncontended latency: serialization of one message plus the header
	// pipeline of every router on the longest route and one delivery cycle.
	routers := 1
	if c.p.Topology == FatMesh2x2 {
		routers = 3 // XY worst case: source, X neighbour, destination switch
	}
	c.dmin = float64(c.p.MsgFlits)*c.cycle +
		float64(routers*core.HeaderPipelineCycles)*c.cycle + c.cycle
	return nil
}

// fmPairs enumerates the directed fat channels of the 2×2 mesh in a fixed
// order; fmPairIndex inverts it.
var fmPairs = [8][2]int{
	{0, 1}, {1, 0}, {2, 3}, {3, 2}, // X channels
	{0, 2}, {2, 0}, {1, 3}, {3, 1}, // Y channels
}

func fmPairIndex(a, b int) int {
	for i, p := range fmPairs {
		if p[0] == a && p[1] == b {
			return i
		}
	}
	panic("calculus: switches not fat-mesh adjacent")
}

// applyBestEffort folds the standing best-effort load into the base service
// curves. Under FIFO best-effort flits share the queue, so every link's
// service turns into the leftover after the expected best-effort cross
// traffic (uniform random destinations, §4.2.2); RoundRobin and
// VirtualClock isolate best-effort by construction (sched.ServiceCurve),
// so their base curves already account for it.
func (c *Controller) applyBestEffort() {
	if !c.svc.CrossBestEffort || c.p.BestEffortLoad == 0 {
		return
	}
	n := c.p.Nodes
	beC := c.p.BestEffortLoad * c.p.LinkBandwidthBps
	msgBits := float64(c.p.MsgFlits * c.p.FlitBits)
	rate := make([]float64, len(c.links))
	srcs := make([]int, len(c.links)) // sources whose routes cross the link
	var seen []int32
	for src := 0; src < n; src++ {
		seen = seen[:0]
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			r := &c.routes[src*n+dst]
			for i := 0; i < int(r.n); i++ {
				l := r.links[i]
				rate[l] += beC / float64(n-1)
				fresh := true
				for _, s := range seen {
					if s == l {
						fresh = false
						break
					}
				}
				if fresh {
					seen = append(seen, l)
					srcs[l]++
				}
			}
		}
	}
	for i := range c.links {
		l := &c.links[i]
		// Leftover service after a token-bucket cross flow (r, b):
		// rate R−r, latency (R·T + b)/(R−r).
		r, b := rate[i], float64(srcs[i])*msgBits
		if r >= l.baseR {
			l.baseR, l.baseT = 0, math.Inf(1)
			continue
		}
		l.baseT = (l.baseR*l.baseT + b) / (l.baseR - r)
		l.baseR -= r
	}
}
