package calculus

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func curvesEqual(a, b Curve, xs []float64) bool {
	for _, x := range xs {
		av, bv := a.Eval(x), b.Eval(x)
		if math.Abs(av-bv) > 1e-6*(1+math.Abs(av)) {
			return false
		}
	}
	return math.Abs(a.Rate()-b.Rate()) <= 1e-9*(1+a.Rate())
}

// sampleXs covers the knot span of every operand plus the affine tails.
func sampleXs(cs ...Curve) []float64 {
	far := 1.0
	var xs []float64
	for _, c := range cs {
		for _, k := range c.Knots() {
			xs = append(xs, k.X)
			if k.X > far {
				far = k.X
			}
		}
	}
	for f := 0.0; f <= 3.0; f += 0.25 {
		xs = append(xs, far*f+0.1*f)
	}
	xs = append(xs, 3*far+7)
	return xs
}

// convexCurve is a random convex piecewise-linear curve for testing/quick:
// a rate-latency-like shape with up to four knots of increasing slope.
type convexCurve struct{ C Curve }

// Generate implements quick.Generator.
func (convexCurve) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(4)
	x, y := 0.0, float64(r.Intn(3)) // convex curves may start above 0
	knots := []Knot{{x, y}}
	slope := float64(r.Intn(3)) // non-decreasing slopes keep it convex
	for i := 0; i < n; i++ {
		dx := 0.25 + r.Float64()*2
		x += dx
		y += slope * dx
		knots = append(knots, Knot{x, y})
		slope += r.Float64() * 2
	}
	rate := slope + r.Float64()*2
	c, err := NewCurve(knots, rate)
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(convexCurve{c})
}

// TestConvolveCommutative checks a ⊗ b = b ⊗ a on random convex
// piecewise-linear curves.
func TestConvolveCommutative(t *testing.T) {
	prop := func(a, b convexCurve) bool {
		ab := a.C.Convolve(b.C)
		ba := b.C.Convolve(a.C)
		return curvesEqual(ab, ba, sampleXs(a.C, b.C, ab))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestConvolveAssociative checks (a ⊗ b) ⊗ c = a ⊗ (b ⊗ c) on random convex
// piecewise-linear curves.
func TestConvolveAssociative(t *testing.T) {
	prop := func(a, b, c convexCurve) bool {
		l := a.C.Convolve(b.C).Convolve(c.C)
		r := a.C.Convolve(b.C.Convolve(c.C))
		return curvesEqual(l, r, sampleXs(a.C, b.C, c.C, l))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestConvolveMatchesDefinition cross-checks the slope-merge construction
// against the defining infimum evaluated by brute force on a grid.
func TestConvolveMatchesDefinition(t *testing.T) {
	prop := func(a, b convexCurve) bool {
		conv := a.C.Convolve(b.C)
		for _, x := range sampleXs(a.C, b.C, conv) {
			inf := math.Inf(1)
			const steps = 400
			for i := 0; i <= steps; i++ {
				s := x * float64(i) / steps
				if v := a.C.Eval(s) + b.C.Eval(x-s); v < inf {
					inf = v
				}
			}
			got := conv.Eval(x)
			// The grid infimum is an upper bound on the true infimum, so the
			// exact result must sit at or below it, and close on a fine grid.
			if got > inf+1e-9*(1+inf) || inf-got > 0.1*(1+inf) {
				t.Logf("x=%v got=%v grid-inf=%v a=%v b=%v", x, got, inf, a.C, b.C)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRateLatencyConvolution(t *testing.T) {
	// β1 ⊗ β2 for rate-latency curves is RateLatency(min R, T1+T2).
	b1 := RateLatency(100, 2)
	b2 := RateLatency(40, 3)
	got := b1.Convolve(b2)
	want := RateLatency(40, 5)
	if !curvesEqual(got, want, sampleXs(got, want)) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestDelayAndBacklogBoundTokenBucketRateLatency(t *testing.T) {
	// The textbook pair: α = b + r·t through β = R(t−T)⁺ gives
	// delay ≤ T + b/R and backlog ≤ b + r·T.
	alpha := TokenBucket(8, 2)
	beta := RateLatency(4, 3)
	if d, want := DelayBound(alpha, beta), 3+8.0/4; math.Abs(d-want) > 1e-9 {
		t.Fatalf("delay bound %v, want %v", d, want)
	}
	if v, want := BacklogBound(alpha, beta), 8+2*3.0; math.Abs(v-want) > 1e-9 {
		t.Fatalf("backlog bound %v, want %v", v, want)
	}
}

func TestDelayBoundUnstable(t *testing.T) {
	if d := DelayBound(TokenBucket(1, 10), RateLatency(5, 0)); !math.IsInf(d, 1) {
		t.Fatalf("overloaded server delay bound = %v, want +Inf", d)
	}
	if v := BacklogBound(TokenBucket(1, 10), RateLatency(5, 0)); !math.IsInf(v, 1) {
		t.Fatalf("overloaded server backlog bound = %v, want +Inf", v)
	}
}

func TestDeconvolveTokenBucket(t *testing.T) {
	// Output burstiness through a rate-latency server: b' = b + r·T.
	out := TokenBucket(8, 2).Deconvolve(4, 3)
	if got, want := out.Burst(), 8+2*3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("output burst %v, want %v", got, want)
	}
	if got := out.Rate(); got != 2 {
		t.Fatalf("output rate %v, want 2", got)
	}
	// An unstable server has no finite output envelope.
	if out := TokenBucket(1, 10).Deconvolve(5, 1); !math.IsInf(out.Burst(), 1) {
		t.Fatalf("unstable deconvolution burst = %v, want +Inf", out.Burst())
	}
}

func TestAddAndMin(t *testing.T) {
	a := TokenBucket(5, 1)
	b := TokenBucket(1, 3)
	sum := a.Add(b)
	if got, want := sum.Eval(2), (5+2.0)+(1+6.0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Add eval %v, want %v", got, want)
	}
	m := a.Min(b)
	// b is below until the crossing at t = 2, then a.
	for _, tc := range []struct{ x, want float64 }{
		{0, 1}, {1, 4}, {2, 7}, {3, 8}, {10, 15},
	} {
		if got := m.Eval(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Min(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNewCurveRejectsBadShapes(t *testing.T) {
	if _, err := NewCurve([]Knot{{1, 0}}, 1); err == nil {
		t.Fatal("accepted a curve not starting at 0")
	}
	if _, err := NewCurve([]Knot{{0, 0}, {1, 2}, {1, 3}}, 1); err == nil {
		t.Fatal("accepted duplicate X knots")
	}
	if _, err := NewCurve([]Knot{{0, 3}, {1, 2}}, 1); err == nil {
		t.Fatal("accepted decreasing Y")
	}
	if _, err := NewCurve([]Knot{{0, 0}}, -1); err == nil {
		t.Fatal("accepted a negative rate")
	}
}

func TestEvalInverseRoundTrip(t *testing.T) {
	c := RateLatency(7, 2)
	for _, y := range []float64{0, 1, 5, 100} {
		x := c.inverse(y)
		if got := c.Eval(x); got+1e-9 < y {
			t.Fatalf("Eval(inverse(%v)) = %v < %v", y, got, y)
		}
	}
	flat := TokenBucket(3, 0)
	if x := flat.inverse(4); !math.IsInf(x, 1) {
		t.Fatalf("inverse beyond a flat curve = %v, want +Inf", x)
	}
}
