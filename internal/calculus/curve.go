// Package calculus computes closed-form worst-case delay and backlog bounds
// for MediaWorm fabrics using deterministic network calculus (Cruz; Le Boudec
// & Thiran), the framework Farhi & Gaujal apply to wormhole routing and
// Nikolić & Indrusiak tighten for priority-preemptive NoC arbitration (see
// PAPERS.md). Traffic is abstracted into arrival curves α (an upper envelope
// on the bits a stream may emit in any window), routers and links into
// service curves β (a lower envelope on the bits a contention point must
// serve), and the two compose by min-plus algebra:
//
//	delay bound   = horizontal deviation h(α, β)
//	backlog bound = vertical deviation   v(α, β)
//	end-to-end β  = β₁ ⊗ β₂ ⊗ … (min-plus convolution along the route)
//
// Everything in this package is pure float64 arithmetic — no simulation, no
// randomness, no clock — so an admission decision is O(route length) with
// zero allocations, which is what lets AnalyticEnvelope sit beside the
// simulator-backed Calibrate as an O(1) admission oracle.
package calculus

import (
	"fmt"
	"math"
	"strings"
)

// Knot is one breakpoint of a piecewise-linear curve.
type Knot struct {
	X, Y float64
}

// Curve is a non-decreasing piecewise-linear function on [0, ∞): knots with
// strictly increasing X (the first at X = 0) joined by line segments, and a
// final slope Rate beyond the last knot. The zero value is the constant 0.
//
// Arrival curves are concave (token buckets: a burst then a rate), service
// curves convex (rate-latency: a latency then a rate); the algebra below is
// exact on those shapes.
type Curve struct {
	knots []Knot
	rate  float64
}

// NewCurve builds a curve from knots and a final rate, normalizing away
// collinear interior knots. Knots must have strictly increasing X starting
// at 0, non-decreasing Y, and the final rate must be non-negative.
func NewCurve(knots []Knot, rate float64) (Curve, error) {
	if len(knots) == 0 || knots[0].X != 0 {
		return Curve{}, fmt.Errorf("calculus: curve must start at x = 0")
	}
	if rate < 0 || math.IsNaN(rate) {
		return Curve{}, fmt.Errorf("calculus: negative final rate %v", rate)
	}
	for i, k := range knots {
		if math.IsNaN(k.X) || math.IsNaN(k.Y) || k.Y < 0 {
			return Curve{}, fmt.Errorf("calculus: invalid knot %+v", k)
		}
		if i > 0 && (k.X <= knots[i-1].X || k.Y < knots[i-1].Y) {
			return Curve{}, fmt.Errorf("calculus: knots not increasing at %+v", k)
		}
	}
	c := Curve{knots: append([]Knot(nil), knots...), rate: rate}
	c.normalize()
	return c, nil
}

// normalize drops interior knots that lie on the segment through their
// neighbours, so equal functions share one representation.
func (c *Curve) normalize() {
	out := c.knots[:1]
	for i := 1; i < len(c.knots); i++ {
		k := c.knots[i]
		// Slope into k from the last kept knot, and out of k.
		prev := out[len(out)-1]
		in := (k.Y - prev.Y) / (k.X - prev.X)
		var outSlope float64
		if i+1 < len(c.knots) {
			n := c.knots[i+1]
			outSlope = (n.Y - k.Y) / (n.X - k.X)
		} else {
			outSlope = c.rate
		}
		if math.Abs(in-outSlope) <= 1e-12*(1+math.Abs(in)) {
			continue // collinear: k carries no information
		}
		out = append(out, k)
	}
	c.knots = out
}

// Zero returns the constant-zero curve.
func Zero() Curve { return Curve{knots: []Knot{{0, 0}}} }

// TokenBucket returns the arrival curve α(t) = burst + rate·t (with
// α(0) = burst: the whole burst may appear instantaneously).
func TokenBucket(burst, rate float64) Curve {
	return Curve{knots: []Knot{{0, burst}}, rate: rate}
}

// RateLatency returns the service curve β(t) = rate·max(0, t − latency).
func RateLatency(rate, latency float64) Curve {
	if latency <= 0 {
		return Curve{knots: []Knot{{0, 0}}, rate: rate}
	}
	return Curve{knots: []Knot{{0, 0}, {latency, 0}}, rate: rate}
}

// Rate returns the curve's long-run slope.
func (c Curve) Rate() float64 { return c.rate }

// Burst returns c(0): the instantaneous jump at the origin.
func (c Curve) Burst() float64 {
	if len(c.knots) == 0 {
		return 0
	}
	return c.knots[0].Y
}

// Knots returns a copy of the curve's breakpoints.
func (c Curve) Knots() []Knot { return append([]Knot(nil), c.knots...) }

// Eval returns c(x) for x ≥ 0.
func (c Curve) Eval(x float64) float64 {
	if len(c.knots) == 0 {
		return 0
	}
	last := c.knots[len(c.knots)-1]
	if x >= last.X {
		return last.Y + c.rate*(x-last.X)
	}
	// Walk the (short) knot list; curves in this package have ≤ a handful
	// of breakpoints.
	for i := len(c.knots) - 1; i >= 0; i-- {
		k := c.knots[i]
		if x >= k.X {
			n := c.knots[i+1]
			return k.Y + (n.Y-k.Y)/(n.X-k.X)*(x-k.X)
		}
	}
	return c.knots[0].Y // x < 0 is out of domain; clamp
}

// inverse returns the earliest x with c(x) ≥ y, or +Inf when y is never
// reached (final rate 0 below y).
func (c Curve) inverse(y float64) float64 {
	if len(c.knots) == 0 {
		if y <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	if y <= c.knots[0].Y {
		return 0
	}
	for i := 1; i < len(c.knots); i++ {
		k := c.knots[i]
		if y <= k.Y {
			p := c.knots[i-1]
			return p.X + (y-p.Y)/((k.Y-p.Y)/(k.X-p.X))
		}
	}
	last := c.knots[len(c.knots)-1]
	if c.rate == 0 {
		return math.Inf(1)
	}
	return last.X + (y-last.Y)/c.rate
}

// mergedXs appends to dst the union of both curves' knot X values, sorted,
// without duplicates.
func mergedXs(dst []float64, a, b Curve) []float64 {
	i, j := 0, 0
	for i < len(a.knots) || j < len(b.knots) {
		var x float64
		switch {
		case i == len(a.knots):
			x = b.knots[j].X
			j++
		case j == len(b.knots):
			x = a.knots[i].X
			i++
		case a.knots[i].X < b.knots[j].X:
			x = a.knots[i].X
			i++
		case a.knots[i].X > b.knots[j].X:
			x = b.knots[j].X
			j++
		default:
			x = a.knots[i].X
			i++
			j++
		}
		if len(dst) == 0 || x > dst[len(dst)-1] {
			dst = append(dst, x)
		}
	}
	return dst
}

// Add returns the pointwise sum a + b.
func (c Curve) Add(o Curve) Curve {
	xs := mergedXs(nil, c, o)
	knots := make([]Knot, len(xs))
	for i, x := range xs {
		knots[i] = Knot{x, c.Eval(x) + o.Eval(x)}
	}
	return Curve{knots: knots, rate: c.rate + o.rate}
}

// Min returns the pointwise minimum min(a, b), adding knots where the curves
// cross inside a segment.
func (c Curve) Min(o Curve) Curve {
	xs := mergedXs(nil, c, o)
	// Between consecutive sample points both curves are affine, so they
	// cross at most once per interval; find those crossings.
	var cross []float64
	sample := func(x float64) (float64, float64) { return c.Eval(x), o.Eval(x) }
	for i := 0; i < len(xs); i++ {
		x0 := xs[i]
		var x1 float64
		if i+1 < len(xs) {
			x1 = xs[i+1]
		} else {
			// Beyond the last knot both are affine forever; a final crossing
			// exists when the difference changes sign at infinity.
			d0 := c.Eval(x0) - o.Eval(x0)
			dr := c.rate - o.rate
			if d0 != 0 && dr != 0 && (d0 < 0) != (dr < 0) {
				cross = append(cross, x0-d0/dr)
			}
			break
		}
		a0, b0 := sample(x0)
		a1, b1 := sample(x1)
		d0, d1 := a0-b0, a1-b1
		if d0 != 0 && d1 != 0 && (d0 < 0) != (d1 < 0) {
			cross = append(cross, x0+(x1-x0)*d0/(d0-d1))
		}
	}
	all := append(append([]float64(nil), xs...), cross...)
	sortFloats(all)
	out := make([]Knot, 0, len(all))
	for _, x := range all {
		if len(out) > 0 && x <= out[len(out)-1].X {
			continue
		}
		av, bv := sample(x)
		out = append(out, Knot{x, math.Min(av, bv)})
	}
	r := math.Min(c.rate, o.rate)
	// If the curves still cross after the last sample the larger-rate one is
	// above; min rate is correct. When rates are equal the lower offset wins,
	// also correct.
	res := Curve{knots: out, rate: r}
	res.normalize()
	return res
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// IsConvex reports whether segment slopes are non-decreasing (a service-curve
// shape: rate-latency curves and their convolutions).
func (c Curve) IsConvex() bool {
	prev := math.Inf(-1)
	for i := 1; i < len(c.knots); i++ {
		s := (c.knots[i].Y - c.knots[i-1].Y) / (c.knots[i].X - c.knots[i-1].X)
		if s < prev-1e-12 {
			return false
		}
		prev = s
	}
	return c.rate >= prev-1e-12
}

// Convolve returns the min-plus convolution (c ⊗ o)(t) = inf over s of
// c(s) + o(t−s), exactly, for convex curves: the result starts at
// c(0) + o(0) and takes segments from both operands in ascending slope
// order (the classic convex slope merge). It panics if either operand is
// not convex — the package only convolves service curves, which are.
func (c Curve) Convolve(o Curve) Curve {
	if !c.IsConvex() || !o.IsConvex() {
		panic("calculus: Convolve requires convex operands")
	}
	type seg struct {
		slope, length float64 // length +Inf for the final ray
	}
	segments := func(k Curve) []seg {
		var ss []seg
		for i := 1; i < len(k.knots); i++ {
			ss = append(ss, seg{
				slope:  (k.knots[i].Y - k.knots[i-1].Y) / (k.knots[i].X - k.knots[i-1].X),
				length: k.knots[i].X - k.knots[i-1].X,
			})
		}
		ss = append(ss, seg{slope: k.rate, length: math.Inf(1)})
		return ss
	}
	sa, sb := segments(c), segments(o)
	x, y := 0.0, c.Burst()+o.Burst()
	knots := []Knot{{x, y}}
	i, j := 0, 0
	var rate float64
	for {
		var s seg
		switch {
		case i == len(sa) && j == len(sb):
			s = seg{} // unreachable: final rays are infinite
		case i == len(sa):
			s = sb[j]
			j++
		case j == len(sb):
			s = sa[i]
			i++
		case sa[i].slope <= sb[j].slope:
			s = sa[i]
			i++
		default:
			s = sb[j]
			j++
		}
		if math.IsInf(s.length, 1) {
			rate = s.slope
			break
		}
		x += s.length
		y += s.slope * s.length
		knots = append(knots, Knot{x, y})
	}
	res := Curve{knots: knots, rate: rate}
	res.normalize()
	return res
}

// Deconvolve returns the min-plus deconvolution (c ⊘ β)(t) = sup over u of
// c(t+u) − β(u) for a concave arrival curve c and a rate-latency service
// curve β = RateLatency(R, T): the arrival envelope of the output flow of a
// server offering β to input c. It requires c.Rate() ≤ R (a stable server);
// otherwise the output is unbounded and the all-∞ curve is represented by a
// token bucket with infinite burst.
func (c Curve) Deconvolve(rate, latency float64) Curve {
	if c.rate > rate {
		return TokenBucket(math.Inf(1), c.rate)
	}
	// For concave c and β = R(t−T)⁺ the supremum splits at the point x*
	// where c's slope falls to R (x* = 0 for a stable token bucket):
	//
	//	t ≥ x* − T :  attained at u = T      → c(t + T)   (shift left by T)
	//	t < x* − T :  attained at t + u = x* → c(x*) − R(x* − T − t)
	//
	// With c a token bucket this is the textbook b + r·T + r·t output burst
	// (slope r ≤ R everywhere, so only the shift term remains).
	xStar := 0.0
	for i := range c.knots {
		var out float64
		if i+1 < len(c.knots) {
			out = (c.knots[i+1].Y - c.knots[i].Y) / (c.knots[i+1].X - c.knots[i].X)
		} else {
			out = c.rate
		}
		if out > rate {
			if i+1 < len(c.knots) {
				xStar = c.knots[i+1].X
			}
		}
	}
	// Shifted tail: d(t) = c(t + T) for t ≥ max(0, x* − T).
	lo := math.Max(0, xStar-latency)
	knots := []Knot{{lo, c.Eval(lo + latency)}}
	for _, k := range c.knots {
		if k.X-latency > lo {
			knots = append(knots, Knot{k.X - latency, k.Y})
		}
	}
	// Head: a slope-R ramp from (0, c(x*) − R(x* − T)) into the tail.
	if lo > 0 {
		knots = append([]Knot{{0, knots[0].Y - rate*lo}}, knots...)
	}
	res := Curve{knots: knots, rate: c.rate}
	res.normalize()
	return res
}

// DelayBound returns the horizontal deviation h(α, β): the worst-case delay
// of a flow with arrival curve α through a server with service curve β
// (FIFO per aggregate). It is +Inf when α's long-run rate exceeds β's.
func DelayBound(alpha, beta Curve) float64 {
	if alpha.rate > beta.rate {
		return math.Inf(1)
	}
	// For concave α and convex β the deviation t ↦ β⁻¹(α(t)) − t is concave,
	// so its maximum is at a breakpoint of its derivative: a knot of α, or a
	// point where α(t) crosses one of β's knot levels. Beyond the last of
	// those both curves are affine and the deviation is non-increasing, so a
	// final affine sample closes the candidate set exactly.
	far := 0.0
	cands := make([]float64, 0, len(alpha.knots)+len(beta.knots)+1)
	for _, k := range alpha.knots {
		cands = append(cands, k.X)
		if k.X > far {
			far = k.X
		}
	}
	for _, k := range beta.knots {
		t := alpha.inverse(k.Y)
		if !math.IsInf(t, 1) {
			cands = append(cands, t)
			if t > far {
				far = t
			}
		}
	}
	cands = append(cands, far+1)
	d := 0.0
	for _, t := range cands {
		dev := beta.inverse(alpha.Eval(t)) - t
		if dev > d {
			d = dev
		}
	}
	return d
}

// BacklogBound returns the vertical deviation v(α, β): the worst-case
// backlog of a flow with arrival curve α through a server with service
// curve β. It is +Inf when α's long-run rate exceeds β's.
func BacklogBound(alpha, beta Curve) float64 {
	if alpha.rate > beta.rate {
		return math.Inf(1)
	}
	far := 0.0
	cands := make([]float64, 0, len(alpha.knots)+len(beta.knots)+1)
	for _, k := range alpha.knots {
		cands = append(cands, k.X)
		if k.X > far {
			far = k.X
		}
	}
	for _, k := range beta.knots {
		cands = append(cands, k.X)
		if k.X > far {
			far = k.X
		}
	}
	cands = append(cands, far+1)
	v := 0.0
	for _, t := range cands {
		dev := alpha.Eval(t) - beta.Eval(t)
		if dev > v {
			v = dev
		}
	}
	return v
}

// String renders the curve compactly for goldens and errors.
func (c Curve) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range c.knots {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "(%.6g,%.6g)", k.X, k.Y)
	}
	fmt.Fprintf(&b, " r=%.6g}", c.rate)
	return b.String()
}
