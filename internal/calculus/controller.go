package calculus

import "math"

// This file is the admission hot path: Register, Release, DelayBoundSec and
// Admit run in O(route length + links) — both constant for a fixed topology —
// using closed-form token-bucket/rate-latency arithmetic instead of Curve
// values, so they perform zero heap allocations. curve.go carries the general
// piecewise-linear algebra; TestControllerMatchesCurveAlgebra pins the two
// against each other.
//
// The delay model is the aggregate-scheduling bound of Charny & Le Boudec:
// every link serves its real-time aggregate with a rate-latency curve
// β = R(t−T)⁺, so any real-time bit leaves within h = T + B/R of arrival,
// where B is the aggregate's pooled burst. A stream's end-to-end bound sums
// h over its route. Burst inflation across hops — traffic gets burstier
// after queueing upstream — is closed with the per-link budget θ: a stream's
// burst contribution at its u-th link is inflated by u·θ worth of its
// arrival envelope, which is a valid envelope whenever every link's h stays
// within θ. Since h is affine in θ (h = a + s·θ, slope s < 1 on feasible
// links), the model resolves θ to the smallest sound budget — the fixed
// point θ* = max over populated links of a/(1−s) — and returns +Inf the
// moment no fixed point exists, so the reported bound is always sound,
// never silently optimistic.

// Register adds a stream src→dst to every link aggregate on its route. It
// does not check admissibility; use Admit for the guarded variant.
//
//mw:hotpath Register
func (c *Controller) Register(src, dst int) {
	r := &c.routes[src*c.p.Nodes+dst]
	for i := 0; i < int(r.n); i++ {
		l := &c.links[r.links[i]]
		u := float64(r.ups[i])
		l.n++
		l.rate += c.mu
		l.var_ += c.sigma * c.sigma
		l.sumU += u
		l.sumU2 += u * u
	}
	c.thetaDirty = true
}

// Release removes a previously registered stream src→dst.
//
//mw:hotpath Release
func (c *Controller) Release(src, dst int) {
	r := &c.routes[src*c.p.Nodes+dst]
	for i := 0; i < int(r.n); i++ {
		l := &c.links[r.links[i]]
		u := float64(r.ups[i])
		l.n--
		l.rate -= c.mu
		l.var_ -= c.sigma * c.sigma
		l.sumU -= u
		l.sumU2 -= u * u
		if l.n == 0 { // sweep float dust so empty means exactly empty
			l.rate, l.var_, l.sumU, l.sumU2 = 0, 0, 0, 0
		}
	}
	c.thetaDirty = true
}

// aggRate is the effective (σ²-pooled) rate envelope of a link's admitted
// aggregate: Σμ + k·√(Σσ²).
func (c *Controller) aggRate(l *link) float64 {
	return l.rate + c.p.SigmaFactor*math.Sqrt(pos(l.var_))
}

// aggBurst is the effective pooled burst of a link's aggregate at budget θ:
// the entry bursts plus θ worth of pooled upstream inflation,
// n·b0 + θ·(μ·ΣU + k·σ·√(ΣU²)).
func (c *Controller) aggBurst(l *link, theta float64) float64 {
	b := float64(l.n) * c.b0
	if s := c.inflRate(l); s > 0 {
		b += theta * s
	}
	return b
}

// inflRate is the pooled burst-inflation rate of a link's aggregate — the
// bits of extra burst per second of upstream sojourn budget.
func (c *Controller) inflRate(l *link) float64 {
	return c.mu*l.sumU + c.p.SigmaFactor*c.sigma*math.Sqrt(pos(l.sumU2))
}

func pos(v float64) float64 {
	if v < 0 { // accumulated float dust from Release
		return 0
	}
	return v
}

// sojournAt is h(θ) = T + (B(θ) + r_agg·pace)/R for the link's current
// aggregate — the FIFO-aggregate horizontal deviation plus the scheduling
// discipline's intra-class reordering allowance — or +Inf when the
// aggregate's effective rate reaches the service rate.
func (c *Controller) sojournAt(l *link, theta float64) float64 {
	if l.n == 0 {
		return l.baseT
	}
	r := c.aggRate(l)
	if r >= l.baseR {
		return math.Inf(1)
	}
	return l.baseT + (c.aggBurst(l, theta)+r*c.pace)/l.baseR
}

// thetaSec resolves the per-link sojourn budget θ: the manual override when
// Params.HopDelayBudgetSec is positive, otherwise the cached self-consistent
// fixed point θ* = max over populated links of a/(1−s), where a is the
// link's θ-free sojourn T + (n·b0 + r_agg·pace)/R and s its inflation slope
// inflRate/R. +Inf when some populated link is unstable or has s ≥ 1.
//
//mw:hotpath thetaSec
func (c *Controller) thetaSec() float64 {
	if c.p.HopDelayBudgetSec > 0 {
		return c.p.HopDelayBudgetSec
	}
	if !c.thetaDirty {
		return c.theta
	}
	theta := 0.0
	for i := range c.links {
		l := &c.links[i]
		if l.n == 0 {
			continue
		}
		r := c.aggRate(l)
		s := c.inflRate(l) / l.baseR
		if r >= l.baseR || s >= 1 {
			theta = math.Inf(1)
			break
		}
		a := l.baseT + (float64(l.n)*c.b0+r*c.pace)/l.baseR
		if fp := a / (1 - s); fp > theta {
			theta = fp
		}
	}
	c.theta, c.thetaDirty = theta, false
	return theta
}

// LinkSojournSec bounds the sojourn of any real-time bit through link id —
// the horizontal deviation between the link's aggregate token-bucket
// envelope and its rate-latency service at the resolved budget θ. It
// returns +Inf when the aggregate's effective rate reaches the service rate
// (unstable link) or when no sound θ exists.
//
//mw:hotpath LinkSojournSec
func (c *Controller) LinkSojournSec(id int) float64 {
	l := &c.links[id]
	if l.n == 0 {
		return l.baseT
	}
	theta := c.thetaSec()
	if math.IsInf(theta, 1) {
		return theta
	}
	return c.sojournAt(l, theta)
}

// BacklogBoundBits bounds the real-time backlog queued at link id in bits:
// the vertical deviation v(α, β) = B + r_agg·T for a stable link, +Inf
// otherwise.
//
//mw:hotpath BacklogBoundBits
func (c *Controller) BacklogBoundBits(id int) float64 {
	l := &c.links[id]
	if l.n == 0 {
		return 0
	}
	r := c.aggRate(l)
	if r >= l.baseR {
		return math.Inf(1)
	}
	theta := c.thetaSec()
	if math.IsInf(theta, 1) && c.inflRate(l) > 0 {
		return theta
	}
	return c.aggBurst(l, theta) + r*l.baseT
}

// DelayBoundSec bounds the end-to-end message delay of a stream src→dst
// under the current link aggregates, in seconds:
//
//	D ≤ Σ over route [ hℓ + b₀·(1/C − 1/Rℓ) ]
//
// where hℓ = Tℓ + Bℓ/Rℓ is the per-link aggregate sojourn and the second
// term restores the tagged message's own serialization on fat channels,
// whose aggregate drains at 2C but whose individual messages still cross
// one physical link at C. The bound degrades to +Inf as soon as any link on
// the route is unstable or violates the θ budget that justifies the burst
// inflation — with the default self-consistent θ the budget holds on every
// populated link by construction, and a manual budget is checked per link —
// so the bound is always sound, never silently optimistic.
//
// The bound reflects whatever is currently registered: call it after
// Register (as Admit does) to price a stream including its own load, or on
// its own to price a hypothetical message through the present traffic.
//
//mw:hotpath DelayBoundSec
func (c *Controller) DelayBoundSec(src, dst int) float64 {
	r := &c.routes[src*c.p.Nodes+dst]
	if r.n == 0 {
		return math.Inf(1) // src == dst: no route to price
	}
	theta := c.thetaSec()
	if math.IsInf(theta, 1) {
		return theta
	}
	manual := c.p.HopDelayBudgetSec > 0
	d := 0.0
	for i := 0; i < int(r.n); i++ {
		l := &c.links[r.links[i]]
		h := c.sojournAt(l, theta)
		if math.IsInf(h, 1) || (manual && h > theta) {
			return math.Inf(1)
		}
		d += h + c.b0*(1/l.streamCap-1/l.baseR)
	}
	return d
}

// Admit registers a stream src→dst if its analytic end-to-end delay bound
// meets DeadlineSec, and rolls the registration back otherwise. It returns
// whether the stream was admitted and updates the Admitted/Rejected
// counters. O(1) and allocation-free.
//
//mw:hotpath Admit
func (c *Controller) Admit(src, dst int) bool {
	c.Register(src, dst)
	if c.DelayBoundSec(src, dst) <= c.p.DeadlineSec {
		c.Admitted++
		return true
	}
	c.Release(src, dst)
	c.Rejected++
	return false
}

// MaxBacklogBits returns the largest per-link backlog bound across the
// fabric and the link id attaining it.
func (c *Controller) MaxBacklogBits() (bits float64, linkID int) {
	for i := range c.links {
		if b := c.BacklogBoundBits(i); b > bits {
			bits, linkID = b, i
		}
	}
	return bits, linkID
}
