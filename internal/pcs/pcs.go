// Package pcs implements the pipelined-circuit-switched (PCS) router the
// paper compares MediaWorm against (§3.5, §5.6, Table 3).
//
// PCS is connection-oriented: before any data moves, a probe reserves one
// dedicated virtual channel on every link of the (deterministic, minimal,
// non-backtracking) path. With no adaptivity, a probe that lands on a busy
// VC is NACKed and the connection is dropped — drops happen only at stream
// setup. Established streams inject flit groups at the stream rate and each
// link's bandwidth is scheduled by Virtual Clock using the connection's
// negotiated Vtick (the connection-oriented form of the algorithm, with
// persistent per-connection clocks — unlike MediaWorm, where each message
// acts as a transient connection).
//
// The model is a single n-port switch, as in the paper's Fig. 8/Table 3
// setup: contention occurs on the source injection link and on the output
// link; the switch adds a fixed pipeline latency in between.
package pcs

import (
	"fmt"

	"mediaworm/internal/flit"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// Config parameterizes a PCS switch.
type Config struct {
	// Ports and VCs mirror the paper's 8×8 switch with 24 VCs per physical
	// channel at 100 Mbps.
	Ports, VCs int
	// Period is the flit cycle time (flit size / link bandwidth).
	Period sim.Time
	// PipeLatency is the switch traversal latency in cycles.
	PipeLatency int
}

func (c *Config) validate() error {
	switch {
	case c.Ports <= 0, c.VCs <= 0, c.Period <= 0, c.PipeLatency < 0:
		return fmt.Errorf("pcs: invalid config %+v", *c)
	}
	return nil
}

// group is a burst of flits injected together (the paper's "logically
// grouped" frame flits).
type group struct {
	injected sim.Time
	flits    int
	sent     int
	// lastOfFrame marks the frame's final group; the frame is delivered
	// when this group's final flit reaches the sink.
	lastOfFrame bool
}

// pipeFlit is a flit inside or beyond the switch pipeline.
type pipeFlit struct {
	readyAt sim.Time // when it reaches the output link multiplexer
	ts      sim.Time // Virtual Clock stamp at the output link
	last    bool     // final flit of its frame
}

// flitQueue is an amortized O(1) FIFO of pipeFlits.
type flitQueue struct {
	buf  []pipeFlit
	head int
}

func (q *flitQueue) push(f pipeFlit) { q.buf = append(q.buf, f) }
func (q *flitQueue) empty() bool     { return q.head == len(q.buf) }
func (q *flitQueue) peek() pipeFlit  { return q.buf[q.head] }
func (q *flitQueue) pop() pipeFlit {
	f := q.buf[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return f
}

// Conn is an established PCS connection: one VC on the input link, one on
// the output link, and the stream's negotiated Vtick.
type Conn struct {
	ID          int
	Src, Dst    int
	InVC, OutVC int
	Vtick       sim.Time
	groups      []group
	ghead       int
	inClk       sched.VClock
	outClk      sched.VClock
	pendingTS   sim.Time
	havePending bool
	pipe        flitQueue
	// FlitsDelivered counts flits that reached the sink.
	FlitsDelivered uint64
}

func (c *Conn) groupsEmpty() bool { return c.ghead == len(c.groups) }

func (c *Conn) popGroupIfDone() {
	g := &c.groups[c.ghead]
	if g.sent == g.flits {
		c.ghead++
		if c.ghead > 64 && c.ghead*2 >= len(c.groups) {
			n := copy(c.groups, c.groups[c.ghead:])
			c.groups = c.groups[:n]
			c.ghead = 0
		}
	}
}

// Switch is a single PCS switch plus its endpoint links.
type Switch struct {
	cfg     Config
	eng     *sim.Engine
	inBusy  [][]*Conn // [port][vc] connection holding the input-link VC
	outBusy [][]*Conn
	conns   []*Conn
	// byIn and byOut list established connections per port for the link
	// multiplexers.
	byIn  [][]*Conn
	byOut [][]*Conn

	// OnFrame is called when a connection's frame is fully delivered.
	OnFrame func(connID int, t sim.Time)

	work     int64
	tickerOn bool
	lastTick sim.Time
	tickFn   func()
	tickEv   sim.Event // live tick event, rearmed in place via Reschedule

	// Attempts / Established / Dropped count connection setup outcomes.
	Attempts, Established, Dropped int
}

// NewSwitch builds an empty PCS switch.
func NewSwitch(eng *sim.Engine, cfg Config) (*Switch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Switch{cfg: cfg, eng: eng, lastTick: -1}
	s.inBusy = make([][]*Conn, cfg.Ports)
	s.outBusy = make([][]*Conn, cfg.Ports)
	s.byIn = make([][]*Conn, cfg.Ports)
	s.byOut = make([][]*Conn, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		s.inBusy[p] = make([]*Conn, cfg.VCs)
		s.outBusy[p] = make([]*Conn, cfg.VCs)
	}
	s.tickFn = s.tick
	return s, nil
}

// Config returns the switch configuration.
func (s *Switch) Config() Config { return s.cfg }

// Conns returns the established connections.
func (s *Switch) Conns() []*Conn { return s.conns }

// SelectMode chooses how a probe picks virtual channels.
type SelectMode uint8

const (
	// RandomVC draws the input and output VC uniformly at random and drops
	// the connection if either is busy — the blind, non-backtracking probe
	// that reproduces Table 3's high drop rates (see DESIGN.md §7).
	RandomVC SelectMode = iota
	// SearchVC takes the lowest free VC on each side, dropping only when a
	// side is exhausted. Used to provision target loads for Fig. 8.
	SearchVC
)

// Establish attempts to set up src→dst. It returns the connection, or nil
// if the probe was dropped. vtick is the stream's negotiated rate.
func (s *Switch) Establish(src, dst int, vtick sim.Time, mode SelectMode, rnd *rng.Source) *Conn {
	s.Attempts++
	var in, out int
	switch mode {
	case RandomVC:
		in = rnd.Intn(s.cfg.VCs)
		out = rnd.Intn(s.cfg.VCs)
		if s.inBusy[src][in] != nil || s.outBusy[dst][out] != nil {
			s.Dropped++
			return nil
		}
	case SearchVC:
		in, out = -1, -1
		for v := 0; v < s.cfg.VCs; v++ {
			if in < 0 && s.inBusy[src][v] == nil {
				in = v
			}
			if out < 0 && s.outBusy[dst][v] == nil {
				out = v
			}
		}
		if in < 0 || out < 0 {
			s.Dropped++
			return nil
		}
	default:
		panic("pcs: unknown select mode")
	}
	c := &Conn{ID: len(s.conns), Src: src, Dst: dst, InVC: in, OutVC: out, Vtick: vtick}
	s.inBusy[src][in] = c
	s.outBusy[dst][out] = c
	s.byIn[src] = append(s.byIn[src], c)
	s.byOut[dst] = append(s.byOut[dst], c)
	s.conns = append(s.conns, c)
	s.Established++
	return c
}

// InjectGroup queues a flit group on an established circuit at the current
// instant.
func (s *Switch) InjectGroup(c *Conn, flits int, lastOfFrame bool) {
	if flits <= 0 {
		panic("pcs: empty group")
	}
	c.groups = append(c.groups, group{injected: s.eng.Now(), flits: flits, lastOfFrame: lastOfFrame})
	s.work += int64(flits)
	s.wake()
}

func (s *Switch) wake() {
	if s.tickerOn {
		return
	}
	s.tickerOn = true
	now := s.eng.Now()
	next := now - now%s.cfg.Period
	if next < now || s.lastTick == next {
		next += s.cfg.Period
	}
	s.tickEv = s.eng.At(next, s.tickFn)
}

// tick advances one cycle: each input link forwards one flit into the
// pipeline (Virtual Clock across that port's connections), then each output
// link delivers one ready flit (Virtual Clock again).
func (s *Switch) tick() {
	now := s.eng.Now()
	s.lastTick = now
	pipeDelay := sim.Time(s.cfg.PipeLatency) * s.cfg.Period
	for p := 0; p < s.cfg.Ports; p++ {
		// Input link multiplexer.
		var best *Conn
		for _, c := range s.byIn[p] {
			if c.groupsEmpty() {
				continue
			}
			if !c.havePending {
				g := &c.groups[c.ghead]
				c.pendingTS = c.inClk.Stamp(g.injected, c.Vtick)
				c.havePending = true
			}
			if best == nil || c.pendingTS < best.pendingTS {
				best = c
			}
		}
		if best != nil {
			g := &best.groups[best.ghead]
			readyAt := now + pipeDelay
			outTS := best.outClk.Stamp(readyAt, best.Vtick)
			g.sent++
			last := g.lastOfFrame && g.sent == g.flits
			best.pipe.push(pipeFlit{readyAt: readyAt, ts: outTS, last: last})
			best.havePending = false
			best.popGroupIfDone()
		}
	}
	for p := 0; p < s.cfg.Ports; p++ {
		// Output link multiplexer.
		var best *Conn
		var bestTS sim.Time
		for _, c := range s.byOut[p] {
			if c.pipe.empty() {
				continue
			}
			head := c.pipe.peek()
			if head.readyAt >= now {
				continue
			}
			if best == nil || head.ts < bestTS {
				best, bestTS = c, head.ts
			}
		}
		if best != nil {
			f := best.pipe.pop()
			best.FlitsDelivered++
			s.work--
			if f.last && s.OnFrame != nil {
				s.OnFrame(best.ID, now+s.cfg.Period)
			}
		}
	}
	if s.work > 0 {
		s.tickEv = s.eng.Reschedule(s.tickEv, now+s.cfg.Period)
	} else {
		s.tickerOn = false
	}
}

// Work returns the number of flits inside the switch.
func (s *Switch) Work() int64 { return s.work }

// AdmissionResult summarizes a Table 3-style connection admission run.
type AdmissionResult struct {
	TargetLoad  float64
	Attempts    int
	Established int
	Dropped     int
}

// SimulateAdmission reproduces Table 3: connection requests arrive one at a
// time (source uniform, destination uniform excluding the source) and are
// admitted per mode until the established connections carry targetLoad of
// the aggregate link bandwidth or the attempt budget (capFactor × target
// count) is exhausted. connsPerLink is the per-port stream capacity
// (25 four-Mbps streams on a 100 Mbps link). Established connections
// persist, as in the paper's fill-up run.
func SimulateAdmission(ports, vcs int, connsPerLink, targetLoad float64, mode SelectMode, capFactor int, rnd *rng.Source) AdmissionResult {
	target := int(targetLoad * connsPerLink * float64(ports))
	if target < 0 {
		target = 0
	}
	eng := sim.NewEngine()
	sw, err := NewSwitch(eng, Config{Ports: ports, VCs: vcs, Period: 1, PipeLatency: 1})
	if err != nil {
		panic(err)
	}
	budget := capFactor * target
	for sw.Established < target && sw.Attempts < budget {
		src := rnd.Intn(ports)
		dst := rnd.Intn(ports - 1)
		if dst >= src {
			dst++
		}
		sw.Establish(src, dst, 1, mode, rnd)
	}
	return AdmissionResult{
		TargetLoad:  targetLoad,
		Attempts:    sw.Attempts,
		Established: sw.Established,
		Dropped:     sw.Dropped,
	}
}

// ProvisionLoad establishes (with SearchVC) enough 4 Mbps-style connections
// to carry load on every input link, destinations uniform, and returns them.
// Used by the Fig. 8 data-plane comparison.
func (s *Switch) ProvisionLoad(load, connsPerLink float64, vtick sim.Time, rnd *rng.Source) []*Conn {
	perPort := int(load*connsPerLink + 0.5)
	var out []*Conn
	for p := 0; p < s.cfg.Ports; p++ {
		for i := 0; i < perPort; i++ {
			// Retry destinations until a free output VC is found; SearchVC
			// only fails when the port is exhausted.
			var c *Conn
			for try := 0; try < 4*s.cfg.Ports && c == nil; try++ {
				dst := rnd.Intn(s.cfg.Ports - 1)
				if dst >= p {
					dst++
				}
				c = s.Establish(p, dst, vtick, SearchVC, rnd)
			}
			if c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}

// VBRSource drives MPEG-2-like frames over an established circuit:
// frame flits are segmented into groups injected evenly across the
// inter-frame interval (§4.2.1's PCS variant).
type VBRSource struct {
	sw   *Switch
	conn *Conn
	rnd  *rng.Source

	FrameBytes   float64
	FrameBytesSD float64
	Interval     sim.Time
	GroupFlits   int
	FlitBits     int
	Stop         sim.Time
}

// StartVBR begins frame generation at start.
func StartVBR(sw *Switch, conn *Conn, src *VBRSource, start sim.Time) *VBRSource {
	src.sw = sw
	src.conn = conn
	sw.eng.At(start, src.emit)
	return src
}

func (v *VBRSource) emit() {
	now := v.sw.eng.Now()
	if now >= v.Stop {
		return
	}
	bytes := v.FrameBytes
	if v.FrameBytesSD > 0 {
		bytes = v.rnd.Normal(v.FrameBytes, v.FrameBytesSD)
	}
	if bytes < float64(v.FlitBits)/8 {
		bytes = float64(v.FlitBits) / 8
	}
	flits := flit.FlitsForBytes(int(bytes), v.FlitBits)
	groups := (flits + v.GroupFlits - 1) / v.GroupFlits
	spacing := sim.Time(int64(v.Interval) / int64(groups))
	remaining := flits
	for k := 0; k < groups; k++ {
		n := v.GroupFlits
		if n > remaining {
			n = remaining
		}
		remaining -= n
		last := k == groups-1
		size := n
		v.sw.eng.At(now+sim.Time(k)*spacing, func() {
			v.sw.InjectGroup(v.conn, size, last)
		})
	}
	v.sw.eng.At(now+v.Interval, v.emit)
}

// SetRand assigns the randomness source (split from the workload seed).
func (v *VBRSource) SetRand(r *rng.Source) { v.rnd = r }
