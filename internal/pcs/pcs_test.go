package pcs

import (
	"testing"

	"mediaworm/internal/rng"
	"mediaworm/internal/sim"
	"mediaworm/internal/stats"
)

const period = 320 * sim.Nanosecond // 32-bit flits at 100 Mbps

func newSwitch(t *testing.T, eng *sim.Engine) *Switch {
	t.Helper()
	s, err := NewSwitch(eng, Config{Ports: 8, VCs: 24, Period: period, PipeLatency: 5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	for _, cfg := range []Config{
		{Ports: 0, VCs: 24, Period: period},
		{Ports: 8, VCs: 0, Period: period},
		{Ports: 8, VCs: 24, Period: 0},
		{Ports: 8, VCs: 24, Period: period, PipeLatency: -1},
	} {
		if _, err := NewSwitch(eng, cfg); err == nil {
			t.Fatalf("accepted bad config %+v", cfg)
		}
	}
}

func TestEstablishSearchAllocatesDistinctVCs(t *testing.T) {
	eng := sim.NewEngine()
	s := newSwitch(t, eng)
	rnd := rng.New(1)
	seen := map[int]bool{}
	for i := 0; i < 24; i++ {
		c := s.Establish(0, 1, 1000, SearchVC, rnd)
		if c == nil {
			t.Fatalf("search dropped with free VCs at %d", i)
		}
		if seen[c.InVC] {
			t.Fatalf("input VC %d double-allocated", c.InVC)
		}
		seen[c.InVC] = true
	}
	// 25th connection on the same pair must drop: both sides exhausted.
	if c := s.Establish(0, 1, 1000, SearchVC, rnd); c != nil {
		t.Fatal("established past VC capacity")
	}
	if s.Attempts != 25 || s.Established != 24 || s.Dropped != 1 {
		t.Fatalf("counters %d/%d/%d", s.Attempts, s.Established, s.Dropped)
	}
}

func TestEstablishRandomDropsOnBusyVC(t *testing.T) {
	eng := sim.NewEngine()
	s := newSwitch(t, eng)
	rnd := rng.New(2)
	// Fill every VC between 0→1 via search.
	for i := 0; i < 24; i++ {
		s.Establish(0, 1, 1000, SearchVC, rnd)
	}
	// Any random attempt on the same pair must drop.
	if c := s.Establish(0, 1, 1000, RandomVC, rnd); c != nil {
		t.Fatal("random probe succeeded on a fully busy pair")
	}
}

func TestSingleConnectionDeliversFrames(t *testing.T) {
	eng := sim.NewEngine()
	s := newSwitch(t, eng)
	rnd := rng.New(3)
	conn := s.Establish(0, 1, 8000, SearchVC, rnd)
	if conn == nil {
		t.Fatal("establish failed")
	}
	var frames []sim.Time
	s.OnFrame = func(id int, at sim.Time) {
		if id != conn.ID {
			t.Fatalf("frame on wrong connection %d", id)
		}
		frames = append(frames, at)
	}
	interval := 1 * sim.Millisecond
	StartVBR(s, conn, &VBRSource{
		FrameBytes: 500, FrameBytesSD: 0, Interval: interval,
		GroupFlits: 20, FlitBits: 32, Stop: 10 * interval,
	}, 0).SetRand(rnd)
	eng.Run(20 * interval)
	eng.Drain()
	if len(frames) != 10 {
		t.Fatalf("delivered %d frames, want 10", len(frames))
	}
	// Jitter-free: intervals exactly the frame interval.
	for i := 1; i < len(frames); i++ {
		if got := frames[i] - frames[i-1]; got != interval {
			t.Fatalf("interval %d = %v, want %v", i, got, interval)
		}
	}
	if s.Work() != 0 {
		t.Fatalf("work left: %d", s.Work())
	}
	if conn.FlitsDelivered == 0 {
		t.Fatal("no flits delivered")
	}
}

func TestLinkSharingIsRateProportional(t *testing.T) {
	// Two connections into the same output port with 4:1 rates: when both
	// are continuously backlogged, Virtual Clock shares the output link in
	// that ratio.
	eng := sim.NewEngine()
	s := newSwitch(t, eng)
	rnd := rng.New(4)
	// Vticks of 400 and 1600 ns request 0.8 and 0.2 of the 320 ns/flit
	// link — together exactly its capacity, so the 4:1 split is feasible.
	fast := s.Establish(0, 2, 400, SearchVC, rnd)
	slow := s.Establish(1, 2, 1600, SearchVC, rnd)
	// One huge group each, injected at t=0: permanent backlog.
	s.InjectGroup(fast, 4000, true)
	s.InjectGroup(slow, 4000, true)
	eng.Run(500 * period)
	if fast.FlitsDelivered == 0 || slow.FlitsDelivered == 0 {
		t.Fatal("starvation")
	}
	ratio := float64(fast.FlitsDelivered) / float64(slow.FlitsDelivered)
	if ratio < 3.0 || ratio > 5.0 {
		t.Fatalf("delivery ratio %.2f (fast %d, slow %d), want ~4",
			ratio, fast.FlitsDelivered, slow.FlitsDelivered)
	}
}

func TestProvisionLoad(t *testing.T) {
	eng := sim.NewEngine()
	s := newSwitch(t, eng)
	conns := s.ProvisionLoad(0.8, 25, 8000, rng.New(5))
	want := 8 * 20 // 0.8 × 25 per port × 8 ports
	if len(conns) != want {
		t.Fatalf("provisioned %d connections, want %d", len(conns), want)
	}
	// Per-port input VC occupancy is exactly 20.
	for p := 0; p < 8; p++ {
		busy := 0
		for v := 0; v < 24; v++ {
			if s.inBusy[p][v] != nil {
				busy++
			}
		}
		if busy != 20 {
			t.Fatalf("port %d has %d busy input VCs, want 20", p, busy)
		}
	}
}

func TestSimulateAdmissionShape(t *testing.T) {
	// Table 3's qualitative shape: established tracks capacity×load;
	// attempts and the drop fraction grow with load.
	loads := []float64{0.4, 0.6, 0.8, 0.9}
	var prev AdmissionResult
	for i, load := range loads {
		res := SimulateAdmission(8, 24, 25, load, RandomVC, 6, rng.New(42))
		if res.Attempts != res.Established+res.Dropped {
			t.Fatalf("attempt accounting broken: %+v", res)
		}
		target := int(load * 25 * 8)
		if res.Established > target {
			t.Fatalf("established %d beyond target %d", res.Established, target)
		}
		if load <= 0.8 && res.Established < target*9/10 {
			t.Fatalf("load %.2f: established %d far below target %d", load, res.Established, target)
		}
		dropFrac := float64(res.Dropped) / float64(res.Attempts)
		if dropFrac < 0.2 || dropFrac > 0.95 {
			t.Fatalf("load %.2f: drop fraction %.2f implausible", load, dropFrac)
		}
		if i > 0 && res.Attempts <= prev.Attempts {
			t.Fatalf("attempts did not grow with load: %d then %d", prev.Attempts, res.Attempts)
		}
		prev = res
	}
}

func TestSimulateAdmissionAroundPaperAnchor(t *testing.T) {
	// The paper states ~60% of requests are turned down at a load of 0.7.
	res := SimulateAdmission(8, 24, 25, 0.7, RandomVC, 6, rng.New(7))
	frac := float64(res.Dropped) / float64(res.Attempts)
	if frac < 0.4 || frac > 0.8 {
		t.Fatalf("drop fraction at 0.7 load = %.2f, want roughly 0.6", frac)
	}
}

func flitBitsFrameFlits(bytes float64, bits int) int {
	n := int(bytes*8) / bits
	if n < 1 {
		n = 1
	}
	return n
}

func TestInjectOnEmptyGroupPanics(t *testing.T) {
	eng := sim.NewEngine()
	s := newSwitch(t, eng)
	c := s.Establish(0, 1, 100, SearchVC, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.InjectGroup(c, 0, true)
}

func TestIntervalStatsIntegration(t *testing.T) {
	// Several provisioned connections at moderate load deliver with low
	// pooled jitter.
	eng := sim.NewEngine()
	s := newSwitch(t, eng)
	rnd := rng.New(9)
	interval := 1 * sim.Millisecond
	conns := s.ProvisionLoad(0.5, 25, 0, rnd)
	it := stats.NewIntervalTracker(2 * interval)
	s.OnFrame = func(id int, at sim.Time) { it.Observe(id, at) }
	for i, c := range conns {
		frameBytes := 500.0
		frameFlits := flitBitsFrameFlits(frameBytes, 32)
		c.Vtick = sim.Time(int64(interval) / int64(frameFlits))
		StartVBR(s, c, &VBRSource{
			FrameBytes: frameBytes, FrameBytesSD: 0, Interval: interval,
			GroupFlits: 20, FlitBits: 32, Stop: 20 * interval,
		}, sim.Time(i)*sim.Microsecond).SetRand(rnd.Split(uint64(i)))
	}
	eng.Run(25 * interval)
	eng.Drain()
	if it.Intervals().Count() < 100 {
		t.Fatalf("too few samples: %d", it.Intervals().Count())
	}
	if sd := it.StdDevMs(); sd > 0.02*interval.Milliseconds() {
		t.Fatalf("PCS σd = %.4f ms at 50%% load, want ~0", sd)
	}
}

func TestPipelineLatency(t *testing.T) {
	// A single flit group on an idle switch: first flit leaves the input
	// link one cycle after injection alignment, crosses the pipeline in
	// PipeLatency cycles, and is transmitted the cycle after it is ready.
	eng := sim.NewEngine()
	s, err := NewSwitch(eng, Config{Ports: 2, VCs: 2, Period: period, PipeLatency: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Establish(0, 1, 1000, SearchVC, rng.New(1))
	var deliveredAt sim.Time
	s.OnFrame = func(id int, at sim.Time) { deliveredAt = at }
	s.InjectGroup(c, 1, true)
	eng.Drain()
	// Injection at t=0: input mux at cycle 0, ready at cycle 5, output mux
	// at cycle 6, arrival stamp one period later.
	want := 7 * period
	if deliveredAt != want {
		t.Fatalf("single-flit latency %v, want %v", deliveredAt, want)
	}
}

func TestWorkConservationPCS(t *testing.T) {
	eng := sim.NewEngine()
	s, err := NewSwitch(eng, Config{Ports: 4, VCs: 8, Period: period, PipeLatency: 3})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rng.New(2)
	var conns []*Conn
	for i := 0; i < 10; i++ {
		src := rnd.Intn(4)
		dst := rnd.Intn(3)
		if dst >= src {
			dst++
		}
		if c := s.Establish(src, dst, sim.Time(500+rnd.Intn(2000)), SearchVC, rnd); c != nil {
			conns = append(conns, c)
		}
	}
	total := uint64(0)
	for _, c := range conns {
		n := 1 + rnd.Intn(100)
		s.InjectGroup(c, n, true)
		total += uint64(n)
	}
	eng.Drain()
	var delivered uint64
	for _, c := range conns {
		delivered += c.FlitsDelivered
	}
	if delivered != total {
		t.Fatalf("delivered %d flits of %d injected", delivered, total)
	}
	if s.Work() != 0 {
		t.Fatalf("work %d after drain", s.Work())
	}
}
