package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fastOpt is small enough for CI while preserving every qualitative shape.
func fastOpt() Options {
	return Options{Scale: 0.05, WarmupIntervals: 2, MeasureIntervals: 6, Seed: 1}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Scale <= 0 || o.WarmupIntervals <= 0 || o.MeasureIntervals <= 0 || o.Seed == 0 {
		t.Fatalf("normalized options invalid: %+v", o)
	}
	o = Options{Scale: 2}.normalized()
	if o.Scale != 0.2 {
		t.Fatalf("out-of-range scale not reset: %v", o.Scale)
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig, err := Fig3(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series %d", len(fig.Series))
	}
	vc, fifo := fig.Series[0], fig.Series[1]
	if vc.Label != "virtual-clock" || fifo.Label != "fifo" {
		t.Fatalf("labels %q %q", vc.Label, fifo.Label)
	}
	// Identical d ≈ 33 ms at low load for both.
	if math.Abs(vc.Points[0].DMs-33) > 1 || math.Abs(fifo.Points[0].DMs-33) > 1 {
		t.Fatalf("low-load d: %v / %v", vc.Points[0].DMs, fifo.Points[0].DMs)
	}
	// The paper's headline: at the highest load FIFO jitters, Virtual Clock
	// does not (beyond the intrinsic VBR floor).
	last := len(Fig3Loads) - 1
	if !(fifo.Points[last].SDMs > 2*vc.Points[last].SDMs) {
		t.Fatalf("FIFO σd %.3f not clearly worse than Virtual Clock %.3f at load %.2f",
			fifo.Points[last].SDMs, vc.Points[last].SDMs, Fig3Loads[last])
	}
	// Virtual Clock jitter-free through 0.9 (σd below ~1 ms paper scale).
	for i, p := range vc.Points[:last] {
		if p.SDMs > 1.5 {
			t.Fatalf("Virtual Clock σd %.3f at load %.2f", p.SDMs, Fig3Loads[i])
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig, err := Fig4(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	vbr, cbr := fig.Series[0], fig.Series[1]
	// Both jitter-free to 0.8; CBR never worse than VBR by more than noise
	// (CBR's constant frames remove the frame-size variance).
	for i := 0; i < 3; i++ { // loads 0.6, 0.7, 0.8
		if vbr.Points[i].SDMs > 1.5 || cbr.Points[i].SDMs > 1.0 {
			t.Fatalf("jitter at load %.2f: VBR %.3f CBR %.3f",
				Fig3Loads[i], vbr.Points[i].SDMs, cbr.Points[i].SDMs)
		}
		if cbr.Points[i].SDMs > vbr.Points[i].SDMs+0.2 {
			t.Fatalf("CBR worse than VBR at %.2f", Fig3Loads[i])
		}
	}
}

func TestFig5Table2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig, tab, err := Fig5Table2(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(Table2Loads) {
		t.Fatalf("fig5 series %d", len(fig.Series))
	}
	// No jitter for any mix at loads ≤ 0.8 (paper: "up to an input load of
	// 0.80 there is no jitter regardless of the mix").
	for li, load := range Table2Loads[:3] {
		for mi := range Fig5Mixes {
			if sd := fig.Series[li].Points[mi].SDMs; sd > 1.5 {
				t.Fatalf("σd %.3f at load %.2f mix %.2f", sd, load, Fig5Mixes[mi])
			}
		}
	}
	// Table 2: latency grows with load along each mix row (until
	// saturation), and grows with the real-time share at fixed load.
	for mi := range tab.Mixes {
		row := tab.Cells[mi]
		for li := 1; li < len(row); li++ {
			if row[li].BESaturated || row[li-1].BESaturated {
				continue
			}
			if row[li].BELatencyUs < row[li-1].BELatencyUs*0.8 {
				t.Fatalf("mix %v: latency fell from %.1f to %.1f between loads %.2f→%.2f",
					tab.Mixes[mi], row[li-1].BELatencyUs, row[li].BELatencyUs,
					tab.Loads[li-1], tab.Loads[li])
			}
		}
	}
	// At load 0.6 the real-time share ordering holds: 90:10 costs
	// best-effort more than 20:80.
	lo20 := tab.Cells[0][0].BELatencyUs
	lo90 := tab.Cells[len(tab.Mixes)-1][0].BELatencyUs
	if lo90 <= lo20 {
		t.Fatalf("RT-share ordering broken at load 0.6: %.1f (90:10) ≤ %.1f (20:80)", lo90, lo20)
	}
	// The highest-load, RT-dominant corner saturates as in the paper.
	corner := tab.Cells[len(tab.Mixes)-1][len(tab.Loads)-1]
	if !corner.BESaturated {
		t.Fatalf("90:10 at 0.96 load did not saturate (%.1f µs)", corner.BELatencyUs)
	}
}

func TestTable3Shape(t *testing.T) {
	tab := RunTable3(DefaultOptions())
	if len(tab.Rows) != len(Table3Loads) {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		if r.Attempts != r.Established+r.Dropped {
			t.Fatalf("row %d accounting: %+v", i, r)
		}
		target := int(Table3Loads[i] * 200)
		if r.Established > target {
			t.Fatalf("row %d established %d > target %d", i, r.Established, target)
		}
		if i > 0 && r.Attempts <= tab.Rows[i-1].Attempts {
			t.Fatalf("attempts not increasing at row %d", i)
		}
	}
	// Paper anchor: ~60% turned down at 0.74 load (row index 4).
	frac := float64(tab.Rows[4].Dropped) / float64(tab.Rows[4].Attempts)
	if frac < 0.45 || frac > 0.85 {
		t.Fatalf("drop fraction at 0.74 = %.2f", frac)
	}
}

func TestFigurePrinting(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "test", XLabel: "load",
		Series: []Series{
			{Label: "a", Points: []Point{{Load: 0.5, DMs: 33, SDMs: 0.1}}},
			{Label: "b", Points: []Point{{Load: 0.5, DMs: 34, SDMs: 2.5}}},
		},
		Notes: "hello",
	}
	var buf bytes.Buffer
	fig.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "a d(ms)", "b σd(ms)", "0.50", "33.00", "2.500", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	empty := &Figure{ID: "e", Title: "none"}
	buf.Reset()
	empty.Fprint(&buf)
	if !strings.Contains(buf.String(), "(empty)") {
		t.Fatal("empty figure not handled")
	}
}

func TestTable1Prints(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	for _, want := range []string{"8 x 8", "32 bits", "20 flits", "400 Mbps"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table1 missing %q:\n%s", want, buf.String())
		}
	}
}

func TestMixFormatting(t *testing.T) {
	if got := fmtX(Point{RTShare: 0.8}, true); got != "80:20" {
		t.Fatalf("mix format %q", got)
	}
	if got := fmtX(Point{Load: 0.96}, false); got != "0.96" {
		t.Fatalf("load format %q", got)
	}
}

func TestExtensionsAndAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := fastOpt()

	gop, err := ExtGoP(opt)
	if err != nil {
		t.Fatal(err)
	}
	// GoP's periodic I frames must raise the jitter floor vs normal VBR.
	if gop.Series[1].Points[0].SDMs <= gop.Series[0].Points[0].SDMs {
		t.Fatalf("GoP σd %.3f not above normal %.3f at low load",
			gop.Series[1].Points[0].SDMs, gop.Series[0].Points[0].SDMs)
	}

	tetra, err := ExtTetrahedral(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tetra.Series {
		for _, p := range s.Points {
			if p.Samples == 0 {
				t.Fatalf("empty tetra point %+v", p)
			}
			if p.SDMs > 2 {
				t.Fatalf("%s jitter %.3f at load %.2f", s.Label, p.SDMs, p.Load)
			}
		}
	}

	dyn, err := ExtDynamicPartition(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 2 {
		t.Fatalf("variants %d", len(dyn))
	}
	if dyn[1].Adjustments == 0 {
		t.Fatal("dynamic controller never adjusted")
	}
	if dyn[1].FinalRTVCs == dyn[1].InitialRTVCs {
		t.Fatal("partition never moved")
	}

	alloc, err := AblationAllocator(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Two iterations must never be worse for best-effort where both are
	// unsaturated; at the highest load the 1-iteration fabric saturates
	// first or is slower.
	one, two := alloc.Series[0], alloc.Series[1]
	last := len(one.Points) - 1
	if !one.Points[last].BESaturated && two.Points[last].BESaturated {
		t.Fatal("augmented allocator saturated before the greedy one")
	}
}

func TestAblationSchedulerOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fig, err := AblationScheduler(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// At the highest load Virtual Clock keeps video jitter below both
	// rate-agnostic schedulers.
	vc := fig.Series[0].Points[len(AblationLoads)-1].SDMs
	rr := fig.Series[1].Points[len(AblationLoads)-1].SDMs
	fifo := fig.Series[2].Points[len(AblationLoads)-1].SDMs
	if vc >= rr || vc >= fifo {
		t.Fatalf("Virtual Clock σd %.3f not below round-robin %.3f / FIFO %.3f", vc, rr, fifo)
	}
}
