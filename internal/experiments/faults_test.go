package experiments

import "testing"

// fast fidelity for the fault tests: small time base, short window.
func faultTestOptions(seed uint64) Options {
	return Options{Scale: 0.05, WarmupIntervals: 2, MeasureIntervals: 6, Seed: seed}
}

// TestFaultPointSeedDeterminism is the reproducibility acceptance check:
// the same seed must give a byte-identical point, including every fault
// event and every resilience counter; a different seed must not.
func TestFaultPointSeedDeterminism(t *testing.T) {
	run := func(seed uint64) FaultPoint {
		p, err := runFaultPoint(faultTestOptions(seed), 2)
		if err != nil {
			t.Fatalf("runFaultPoint: %v", err)
		}
		return p
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.LinkDowns == 0 {
		t.Fatalf("no link faults landed at rate 2: %+v", a)
	}
	if c := run(8); c == a {
		t.Fatalf("different seed produced identical point: %+v", c)
	}
}

// TestFaultPointHealthyBaseline pins the zero-rate point: no faults, no
// drops, no retransmissions, and every emitted frame delivered.
func TestFaultPointHealthyBaseline(t *testing.T) {
	p, err := runFaultPoint(faultTestOptions(1), 0)
	if err != nil {
		t.Fatalf("runFaultPoint: %v", err)
	}
	if p.LinkDowns != 0 || p.FlitsDropped != 0 || p.Retransmissions != 0 {
		t.Fatalf("healthy baseline saw faults: %+v", p)
	}
	if p.DeliveredFrameRatio != 1 {
		t.Fatalf("healthy baseline lost frames: ratio %v", p.DeliveredFrameRatio)
	}
}

// TestFaultPointDegradesGracefully checks the closed loop at a hostile
// fault rate: frames are lost but the run still completes, drains, and
// delivers the bulk of the offered traffic.
func TestFaultPointDegradesGracefully(t *testing.T) {
	p, err := runFaultPoint(faultTestOptions(3), 4)
	if err != nil {
		t.Fatalf("runFaultPoint: %v", err)
	}
	if p.LinkDowns == 0 {
		t.Fatalf("rate 4 produced no faults: %+v", p)
	}
	if p.DeliveredFrameRatio <= 0.5 || p.DeliveredFrameRatio > 1 {
		t.Fatalf("delivered-frame ratio out of range: %+v", p)
	}
}
