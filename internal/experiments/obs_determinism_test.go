package experiments

import (
	"bytes"
	"testing"
	"time"

	"mediaworm"
	"mediaworm/internal/obs"
)

// traceSweep runs the miniSweep points with tracing armed and serializes
// every point's Chrome trace into one buffer, in sweep order.
func traceSweep(t *testing.T, opt Options) []byte {
	t.Helper()
	var out bytes.Buffer
	opt.TraceSink = func(point string, capture *obs.Capture) {
		out.WriteString(point)
		out.WriteByte('\n')
		if err := obs.WriteChromeTrace(&out, capture); err != nil {
			t.Fatalf("%s: %v", point, err)
		}
	}
	miniSweep(t, opt)
	return out.Bytes()
}

// TestChromeTraceDeterminism is the observability subsystem's golden test:
// two sweeps from one seed must export byte-identical Chrome traces. The
// trace records every scheduling decision and flit movement, so this is a
// far finer-grained determinism probe than the aggregate figures — a single
// reordered arbitration anywhere shows up as a byte diff.
func TestChromeTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := Options{
		Scale: 0.05, WarmupIntervals: 1, MeasureIntervals: 4, Seed: 7,
		Clock: func() time.Time { return time.Unix(0, 0) },
		Trace: mediaworm.TraceConfig{Enabled: true, EventCap: 1 << 14,
			MetricsInterval: 500 * time.Microsecond},
	}
	run1 := traceSweep(t, opt)
	run2 := traceSweep(t, opt)
	if len(run1) == 0 {
		t.Fatal("tracing produced no output; TraceSink never fired")
	}
	if !bytes.Equal(run1, run2) {
		// Locate the first differing byte for a useful failure message.
		n := len(run1)
		if len(run2) < n {
			n = len(run2)
		}
		i := 0
		for i < n && run1[i] == run2[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		hi := i + 80
		if hi > n {
			hi = n
		}
		t.Fatalf("same seed, traces differ at byte %d (lens %d vs %d):\nrun1: …%s…\nrun2: …%s…",
			i, len(run1), len(run2), run1[lo:hi], run2[lo:hi])
	}

	// Every exported trace must also parse back and pass structural
	// validation — determinism of an invalid artifact would be hollow.
	valOpt := opt
	captures := 0
	valOpt.TraceSink = func(point string, capture *obs.Capture) {
		captures++
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, capture); err != nil {
			t.Fatalf("%s: write: %v", point, err)
		}
		tr, err := obs.ReadChromeTrace(&buf)
		if err != nil {
			t.Fatalf("%s: parse back: %v", point, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", point, err)
		}
		if len(capture.Snapshots) < 2 {
			t.Fatalf("%s: %d snapshots; MetricsInterval is not ticking", point, len(capture.Snapshots))
		}
	}
	miniSweep(t, valOpt)
	if captures != 4 {
		t.Fatalf("validated %d captures, want 4 (2 policies × 2 loads)", captures)
	}
}
