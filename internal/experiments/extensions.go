package experiments

import (
	"context"
	"fmt"
	"io"

	"mediaworm"
	"mediaworm/internal/core"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/runner"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/stats"
	"mediaworm/internal/topology"
	"mediaworm/internal/traffic"
)

// Extension experiments beyond the paper's evaluation, along its §6 future
// directions: structured MPEG GoP traffic, the tetrahedral cluster, and
// dynamic VC partitioning under a shifting mix.

// ExtGoP compares the paper's normal-draw VBR against MPEG
// Group-of-Pictures structured VBR (periodic large I frames).
func ExtGoP(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "ext-gop",
		Title:  "Extension: normal-draw VBR vs MPEG GoP VBR (100:0)",
		XLabel: "load",
		Notes:  "GoP = IBBPBBPBBPBB pattern, 5:3:1 I:P:B sizes, random per-stream phase",
	}
	models := []mediaworm.VBRModel{mediaworm.VBRNormal, mediaworm.VBRGoP}
	loads := []float64{0.60, 0.80, 0.90}
	var cfgs []mediaworm.Config
	for _, model := range models {
		for _, load := range loads {
			cfg := baseConfig(opt)
			cfg.Load = load
			cfg.RTShare = 1.0
			cfg.VBRModel = model
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("ext-gop: %w", err)
	}
	for i, model := range models {
		fig.Series = append(fig.Series, Series{
			Label:  string(model),
			Points: pts[i*len(loads) : (i+1)*len(loads)],
		})
	}
	return fig, nil
}

// ExtTetrahedral compares the paper's 2×2 fat-mesh with the tetrahedral
// (fully connected) 4-switch cluster of §3.4 at an 80:20 mix.
func ExtTetrahedral(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "ext-tetra",
		Title:  "Extension: fat-mesh vs tetrahedral cluster (80:20 mix)",
		XLabel: "load",
	}
	topos := []mediaworm.Topology{mediaworm.FatMesh2x2, mediaworm.Tetrahedral}
	loads := []float64{0.60, 0.70, 0.80}
	var cfgs []mediaworm.Config
	for _, topo := range topos {
		for _, load := range loads {
			cfg := baseConfig(opt)
			cfg.Topology = topo
			cfg.Load = load
			cfg.RTShare = 0.8
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("ext-tetra: %w", err)
	}
	for i, topo := range topos {
		fig.Series = append(fig.Series, Series{
			Label:  string(topo),
			Points: pts[i*len(loads) : (i+1)*len(loads)],
		})
	}
	return fig, nil
}

// DynPartResult reports the shifting-mix experiment: the workload's
// real-time share jumps mid-run, and a statically partitioned fabric is
// compared with a dynamically repartitioned one (§6).
type DynPartResult struct {
	Variant   string
	DMs, SDMs float64
	// Phase1/Phase2 split the best-effort metrics at the mix shift, since
	// the two phases stress opposite sides of the partition.
	Phase1BEUs, Phase2BEUs   float64
	Phase1BESat, Phase2BESat bool
	Adjustments              int
	FinalRTVCs, InitialRTVCs int
}

// ExtDynamicPartition runs the shifting-mix workload (20:80 then 70:30 at
// the same total load) under a static 50:50 VC split and under the dynamic
// partition controller, and reports both. The two variants are independent
// closed-loop simulations and run through the shared worker pool.
func ExtDynamicPartition(opt Options) ([]DynPartResult, error) {
	opt = opt.normalized()
	return runner.Map(context.Background(), 2,
		runner.Options{Workers: opt.Parallel},
		func(_ context.Context, i int) (DynPartResult, error) {
			return runShiftingMix(opt, i == 1)
		})
}

func runShiftingMix(opt Options, dynamic bool) (DynPartResult, error) {
	base := baseConfig(opt)
	const load = 0.85
	eng := sim.NewEngine()
	vcs := base.VCs
	staticRT := vcs / 2 // a 50:50 compromise split
	rcfg := coreConfigFrom(base, staticRT)
	net, err := topology.SingleSwitch(eng, rcfg)
	if err != nil {
		return DynPartResult{}, err
	}

	warmup := sim.Time(base.Warmup.Nanoseconds())
	stop := warmup + sim.Time(base.Measure.Nanoseconds())
	half := stop / 2
	intervals := stats.NewIntervalTracker(warmup)
	// Per-phase best-effort accounting: phase 2's tracker warms up at the
	// mix shift so transition traffic lands in the right bucket.
	be1 := stats.NewBestEffort(warmup)
	be2 := stats.NewBestEffort(half)
	beFor := func(t sim.Time) *stats.BestEffort {
		if t < half {
			return be1
		}
		return be2
	}
	for _, s := range net.Sinks {
		s.OnFrame = func(stream, frame int, at sim.Time) { intervals.Observe(stream, at) }
		s.OnMessage = func(m *flit.Message, at sim.Time) {
			if m.Class == flit.BestEffort {
				beFor(m.Injected).Delivered(m.Injected, at)
			}
		}
	}

	res := DynPartResult{Variant: "static 50:50 split", InitialRTVCs: staticRT, FinalRTVCs: staticRT}
	var dp *network.DynamicPartition
	var part traffic.Partition
	if dynamic {
		dp = network.NewDynamicPartition(net.Fabric, sim.Time(base.FrameInterval.Nanoseconds())/4, stop, staticRT)
		part = dp
		res.Variant = "dynamic partition"
	}

	interval := sim.Time(base.FrameInterval.Nanoseconds())
	mix := func(rtShare float64, rtVCs int, from, to sim.Time) traffic.MixConfig {
		return traffic.MixConfig{
			Load: load, RTShare: rtShare, Class: flit.VBR,
			LinkBitsPerSec: base.LinkBandwidthBps,
			FlitBits:       base.FlitBits, MsgFlits: base.MsgFlits,
			FrameBytes: base.FrameBytes, FrameBytesSD: base.FrameBytesSD,
			Interval: interval, VCs: vcs, RTVCs: rtVCs,
			Start: from, Stop: to, Seed: opt.Seed, Partition: part,
		}
	}
	// Static fabric: streams must live inside the fixed boundary. Dynamic:
	// streams use each phase's natural split — the controller converges the
	// routers and best-effort sources to it.
	rt1, rt2 := staticRT, staticRT
	if dynamic {
		rt1 = traffic.PartitionVCs(vcs, 0.2)
		rt2 = traffic.PartitionVCs(vcs, 0.7)
	}
	w, err := traffic.ApplyPhases(eng, net, []traffic.MixConfig{
		mix(0.2, rt1, 0, half),
		mix(0.7, rt2, half, stop),
	})
	if err != nil {
		return DynPartResult{}, err
	}
	for _, src := range w.BESources {
		src.OnInject = func(m *flit.Message) { beFor(m.Injected).Injected(m.Injected) }
	}
	// Snapshot phase 1's backlog at the shift, phase 2's at stop.
	var sat1 bool
	eng.At(half, func() {
		inj, del := be1.Counts()
		sat1 = saturated(inj, del)
	})
	eng.Run(stop)
	inj2, del2 := be2.Counts()
	sat2 := saturated(inj2, del2)
	eng.Drain()
	if err := net.Fabric.CheckDrained(); err != nil {
		return DynPartResult{}, err
	}

	res.DMs = intervals.MeanMs() * paperIntervalMs / (base.FrameInterval.Seconds() * 1000)
	res.SDMs = intervals.StdDevMs() * paperIntervalMs / (base.FrameInterval.Seconds() * 1000)
	res.Phase1BEUs = be1.MeanLatencyUs()
	res.Phase2BEUs = be2.MeanLatencyUs()
	res.Phase1BESat = sat1
	res.Phase2BESat = sat2
	if dp != nil {
		res.Adjustments = dp.Adjustments
		res.FinalRTVCs = dp.RTVCs()
	}
	return res, nil
}

// saturated is the Table 2 "Sat." criterion over a backlog snapshot.
func saturated(injected, delivered uint64) bool {
	backlog := float64(injected) - float64(delivered)
	return injected > 0 && backlog > 0.05*float64(injected) && backlog > 50
}

// coreConfigFrom converts the public config to a router config with a given
// partition.
func coreConfigFrom(cfg mediaworm.Config, rtVCs int) core.Config {
	return core.Config{
		Ports:       cfg.Ports,
		VCs:         cfg.VCs,
		RTVCs:       rtVCs,
		BufferDepth: cfg.BufferDepth,
		StageDepth:  cfg.StageDepth,
		Policy:      sched.VirtualClock,
		Period:      sim.Time(cfg.CyclePeriod().Nanoseconds()),
	}
}

// FprintDynPart renders the shifting-mix comparison.
func FprintDynPart(results []DynPartResult, w io.Writer) {
	fmt.Fprintln(w, "== ext-dynpart: shifting mix (20:80 → 70:30 at load 0.85) ==")
	rows := [][]string{{"variant", "d(ms)", "σd(ms)", "BE ph1 (µs)", "BE ph2 (µs)", "adjustments", "final RT VCs"}}
	cell := func(us float64, sat bool) string {
		if sat {
			return "Sat."
		}
		return fmt.Sprintf("%.1f", us)
	}
	for _, r := range results {
		rows = append(rows, []string{
			r.Variant,
			fmt.Sprintf("%.2f", r.DMs),
			fmt.Sprintf("%.3f", r.SDMs),
			cell(r.Phase1BEUs, r.Phase1BESat),
			cell(r.Phase2BEUs, r.Phase2BESat),
			fmt.Sprintf("%d", r.Adjustments),
			fmt.Sprintf("%d", r.FinalRTVCs),
		})
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}
