package experiments

import (
	"fmt"

	"mediaworm"
)

// Ablation studies for the modeling decisions DESIGN.md §3 calls out. Each
// isolates one design choice of the MediaWorm model and shows its effect on
// the paper's operating points.

// AblationLoads are the high-load points where the design choices matter.
var AblationLoads = []float64{0.80, 0.90, 0.96}

// AblationAllocator compares one allocator iteration (greedy matching)
// against two (one-step augmentation) on a mixed 50:50 workload — the
// second iteration is what sustains the paper's 0.9+ operating points.
func AblationAllocator(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "abl-alloc",
		Title:  "Ablation: switch-allocator iterations (50:50 mix)",
		XLabel: "load",
		ShowBE: true,
	}
	for _, iters := range []int{1, 2} {
		s := Series{Label: fmt.Sprintf("%d-iter", iters)}
		for _, load := range AblationLoads {
			cfg := baseConfig(opt)
			cfg.Load = load
			cfg.RTShare = 0.5
			cfg.AllocatorIterations = iters
			p, err := runPoint(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("abl-alloc %d iters load %v: %w", iters, load, err)
			}
			s.Points = append(s.Points, p)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationEndpointVCs compares shared endpoint output VCs (the paper's
// multiple-connections-per-VC model) against exclusive per-message
// ownership, which exhausts the VC pool at high load.
func AblationEndpointVCs(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "abl-endpointvc",
		Title:  "Ablation: shared vs exclusive endpoint output VCs (50:50 mix)",
		XLabel: "load",
		ShowBE: true,
	}
	for _, exclusive := range []bool{false, true} {
		label := "shared"
		if exclusive {
			label = "exclusive"
		}
		s := Series{Label: label}
		for _, load := range AblationLoads {
			cfg := baseConfig(opt)
			cfg.Load = load
			cfg.RTShare = 0.5
			cfg.ExclusiveEndpointVCs = exclusive
			p, err := runPoint(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("abl-endpointvc %s load %v: %w", label, load, err)
			}
			s.Points = append(s.Points, p)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationSourcePolicy keeps Virtual Clock inside the router but varies the
// source NI's injection-link scheduler — the serialization point the paper
// leaves unspecified (DESIGN.md §7).
func AblationSourcePolicy(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "abl-source",
		Title:  "Ablation: source NI scheduling (router uses Virtual Clock, 80:20 mix)",
		XLabel: "load",
		ShowBE: true,
	}
	for _, src := range []mediaworm.Policy{mediaworm.VirtualClock, mediaworm.FIFO} {
		s := Series{Label: "NI " + string(src)}
		for _, load := range AblationLoads {
			cfg := baseConfig(opt)
			cfg.Load = load
			cfg.RTShare = 0.8
			cfg.SourcePolicy = src
			p, err := runPoint(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("abl-source %s load %v: %w", src, load, err)
			}
			s.Points = append(s.Points, p)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationScheduler adds the round-robin scheduler the paper mentions as a
// "rate agnostic" alternative to FIFO, alongside both paper policies.
func AblationScheduler(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "abl-sched",
		Title:  "Ablation: scheduling discipline (80:20 mix)",
		XLabel: "load",
		ShowBE: true,
	}
	for _, policy := range []mediaworm.Policy{mediaworm.VirtualClock, mediaworm.RoundRobin, mediaworm.FIFO} {
		s := Series{Label: string(policy)}
		for _, load := range AblationLoads {
			cfg := baseConfig(opt)
			cfg.Load = load
			cfg.RTShare = 0.8
			cfg.Policy = policy
			p, err := runPoint(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("abl-sched %s load %v: %w", policy, load, err)
			}
			s.Points = append(s.Points, p)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
