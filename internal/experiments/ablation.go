package experiments

import (
	"fmt"

	"mediaworm"
)

// Ablation studies for the modeling decisions DESIGN.md §3 calls out. Each
// isolates one design choice of the MediaWorm model and shows its effect on
// the paper's operating points.

// AblationLoads are the high-load points where the design choices matter.
var AblationLoads = []float64{0.80, 0.90, 0.96}

// ablationSweep runs one variant per series over AblationLoads through the
// shared grid executor; mutate customizes the config per variant index.
func ablationSweep(opt Options, fig *Figure, labels []string, mutate func(cfg *mediaworm.Config, variant int)) (*Figure, error) {
	opt = opt.normalized()
	var cfgs []mediaworm.Config
	for v := range labels {
		for _, load := range AblationLoads {
			cfg := baseConfig(opt)
			cfg.Load = load
			mutate(&cfg, v)
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", fig.ID, err)
	}
	for v, label := range labels {
		fig.Series = append(fig.Series, Series{
			Label:  label,
			Points: pts[v*len(AblationLoads) : (v+1)*len(AblationLoads)],
		})
	}
	return fig, nil
}

// AblationAllocator compares one allocator iteration (greedy matching)
// against two (one-step augmentation) on a mixed 50:50 workload — the
// second iteration is what sustains the paper's 0.9+ operating points.
func AblationAllocator(opt Options) (*Figure, error) {
	fig := &Figure{
		ID:     "abl-alloc",
		Title:  "Ablation: switch-allocator iterations (50:50 mix)",
		XLabel: "load",
		ShowBE: true,
	}
	iters := []int{1, 2}
	return ablationSweep(opt, fig, []string{"1-iter", "2-iter"}, func(cfg *mediaworm.Config, v int) {
		cfg.RTShare = 0.5
		cfg.AllocatorIterations = iters[v]
	})
}

// AblationEndpointVCs compares shared endpoint output VCs (the paper's
// multiple-connections-per-VC model) against exclusive per-message
// ownership, which exhausts the VC pool at high load.
func AblationEndpointVCs(opt Options) (*Figure, error) {
	fig := &Figure{
		ID:     "abl-endpointvc",
		Title:  "Ablation: shared vs exclusive endpoint output VCs (50:50 mix)",
		XLabel: "load",
		ShowBE: true,
	}
	return ablationSweep(opt, fig, []string{"shared", "exclusive"}, func(cfg *mediaworm.Config, v int) {
		cfg.RTShare = 0.5
		cfg.ExclusiveEndpointVCs = v == 1
	})
}

// AblationSourcePolicy keeps Virtual Clock inside the router but varies the
// source NI's injection-link scheduler — the serialization point the paper
// leaves unspecified (DESIGN.md §7).
func AblationSourcePolicy(opt Options) (*Figure, error) {
	fig := &Figure{
		ID:     "abl-source",
		Title:  "Ablation: source NI scheduling (router uses Virtual Clock, 80:20 mix)",
		XLabel: "load",
		ShowBE: true,
	}
	policies := []mediaworm.Policy{mediaworm.VirtualClock, mediaworm.FIFO}
	labels := make([]string, len(policies))
	for i, p := range policies {
		labels[i] = "NI " + string(p)
	}
	return ablationSweep(opt, fig, labels, func(cfg *mediaworm.Config, v int) {
		cfg.RTShare = 0.8
		cfg.SourcePolicy = policies[v]
	})
}

// AblationScheduler adds the round-robin scheduler the paper mentions as a
// "rate agnostic" alternative to FIFO, alongside both paper policies.
func AblationScheduler(opt Options) (*Figure, error) {
	fig := &Figure{
		ID:     "abl-sched",
		Title:  "Ablation: scheduling discipline (80:20 mix)",
		XLabel: "load",
		ShowBE: true,
	}
	policies := []mediaworm.Policy{mediaworm.VirtualClock, mediaworm.RoundRobin, mediaworm.FIFO}
	labels := make([]string, len(policies))
	for i, p := range policies {
		labels[i] = string(p)
	}
	return ablationSweep(opt, fig, labels, func(cfg *mediaworm.Config, v int) {
		cfg.RTShare = 0.8
		cfg.Policy = policies[v]
	})
}
