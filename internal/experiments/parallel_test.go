package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mediaworm"
	"mediaworm/internal/obs"
	"mediaworm/internal/rng"
	"mediaworm/internal/stats"
)

// These tests pin the tentpole guarantee of the parallel sweep executor:
// running any figure at Options.Parallel = N is byte-identical to running it
// serially — results, rendered tables, progress lines and trace exports all
// come out in grid order regardless of worker interleaving.

// goldenOpt is the shared configuration of the golden comparisons; the
// pinned clock makes even the elapsed-time side of progress identical.
func goldenOpt(parallel int) Options {
	return Options{
		Scale: 0.05, WarmupIntervals: 1, MeasureIntervals: 3, Seed: 7,
		Parallel: parallel,
		Clock:    func() time.Time { return time.Unix(0, 0) },
	}
}

// renderFig3Table2 runs the two figures the paper's CI golden check uses and
// returns their full-precision state plus rendered output.
func renderFig3Table2(t *testing.T, opt Options) (string, []byte) {
	t.Helper()
	fig3, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	fig5, tab2, err := Fig5Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	fig3.Fprint(&out)
	fig5.Fprint(&out)
	tab2.Fprint(&out)
	return fmt.Sprintf("%+v\n%+v\n%+v", fig3, fig5, tab2), out.Bytes()
}

// TestParallelSweepMatchesSerial is the golden test: Fig. 3 and the Fig. 5 /
// Table 2 grid must render byte-identically at -parallel 1 and -parallel 8
// from the same seed, down to full float precision of the underlying points.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fullSerial, outSerial := renderFig3Table2(t, goldenOpt(1))
	fullPar, outPar := renderFig3Table2(t, goldenOpt(8))
	if fullSerial != fullPar {
		t.Errorf("full-precision results differ between -parallel 1 and 8:\nserial: %s\nparallel: %s",
			fullSerial, fullPar)
	}
	if !bytes.Equal(outSerial, outPar) {
		t.Errorf("rendered output differs between -parallel 1 and 8:\nserial:\n%s\nparallel:\n%s",
			outSerial, outPar)
	}
}

// progressGrid runs a 4-cell grid and records every Progress line in arrival
// order.
func progressGrid(t *testing.T, parallel int) []string {
	t.Helper()
	opt := goldenOpt(parallel)
	var lines []string
	opt.Progress = func(fig, point string, elapsed time.Duration) {
		lines = append(lines, fmt.Sprintf("%s (%s)", point, elapsed))
	}
	var cfgs []mediaworm.Config
	for _, policy := range []mediaworm.Policy{mediaworm.VirtualClock, mediaworm.FIFO} {
		for _, load := range []float64{0.5, 0.9} {
			cfg := baseConfig(opt.normalized())
			cfg.Policy = policy
			cfg.Load = load
			cfg.RTShare = 0.8
			cfgs = append(cfgs, cfg)
		}
	}
	if _, err := runGrid(opt, cfgs); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestParallelProgressMonotone pins the collector-side emission fix: progress
// lines fire from the calling goroutine in grid order even when workers
// complete out of order, so a parallel run's progress is indistinguishable
// from a serial run's.
func TestParallelProgressMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	serial := progressGrid(t, 1)
	parallel := progressGrid(t, 8)
	want := []string{
		"load=0.50 mix=80:20 (0s)",
		"load=0.90 mix=80:20 (0s)",
		"load=0.50 mix=80:20 (0s)",
		"load=0.90 mix=80:20 (0s)",
	}
	if len(serial) != len(want) {
		t.Fatalf("serial run emitted %d progress lines, want %d: %q", len(serial), len(want), serial)
	}
	for i := range want {
		if serial[i] != want[i] {
			t.Errorf("serial progress line %d = %q, want %q", i, serial[i], want[i])
		}
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel run emitted %d progress lines, serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		if parallel[i] != serial[i] {
			t.Errorf("progress line %d: parallel %q, serial %q — emission left grid order", i, parallel[i], serial[i])
		}
	}
}

// traceGrid runs a traced 4-cell grid and concatenates every Chrome trace
// export in TraceSink arrival order.
func traceGrid(t *testing.T, parallel int) []byte {
	t.Helper()
	opt := goldenOpt(parallel)
	opt.Trace = mediaworm.TraceConfig{Enabled: true, EventCap: 1 << 14}
	var out bytes.Buffer
	opt.TraceSink = func(point string, capture *obs.Capture) {
		out.WriteString(point)
		out.WriteByte('\n')
		if err := obs.WriteChromeTrace(&out, capture); err != nil {
			t.Fatalf("%s: %v", point, err)
		}
	}
	var cfgs []mediaworm.Config
	for _, policy := range []mediaworm.Policy{mediaworm.VirtualClock, mediaworm.FIFO} {
		for _, load := range []float64{0.5, 0.9} {
			cfg := baseConfig(opt.normalized())
			cfg.Policy = policy
			cfg.Load = load
			cfg.RTShare = 0.8
			cfgs = append(cfgs, cfg)
		}
	}
	if _, err := runGrid(opt, cfgs); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestParallelTraceMatchesSerial extends the Chrome-trace golden check across
// the worker pool: per-point captures must arrive at the sink whole and in
// grid order, so the concatenated export stream is byte-identical to serial.
func TestParallelTraceMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	serial := traceGrid(t, 1)
	parallel := traceGrid(t, 8)
	if len(serial) == 0 {
		t.Fatal("tracing produced no output; TraceSink never fired")
	}
	if !bytes.Equal(serial, parallel) {
		n := len(serial)
		if len(parallel) < n {
			n = len(parallel)
		}
		i := 0
		for i < n && serial[i] == parallel[i] {
			i++
		}
		t.Fatalf("trace streams differ at byte %d (lens %d vs %d)", i, len(serial), len(parallel))
	}
}

// TestReplicaPoolingMatchesManual pins the replica semantics: Replicas = R
// runs each cell once per replica with the seed of replica r derived from
// (Seed, cell, r) — replica 0 keeping the base seed — and pools the
// measurements with exact Welford means and Student-t 95% half-widths.
func TestReplicaPoolingMatchesManual(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := goldenOpt(4)
	opt.Replicas = 3
	cfg := baseConfig(opt.normalized())
	cfg.Load = 0.9
	cfg.RTShare = 0.8
	pts, err := runGrid(opt, []mediaworm.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	got := pts[0]

	// Reference: the same three replicas run serially by hand, pooled in the
	// same order.
	var d, sd, be stats.Welford
	var samples uint64
	manual := make([]Point, 3)
	for r := 0; r < 3; r++ {
		rcfg := cfg
		if r > 0 {
			rcfg.Seed = rng.DeriveSeed(rcfg.Seed, 0, uint64(r))
		}
		res, err := mediaworm.Run(rcfg)
		if err != nil {
			t.Fatalf("replica %d: %v", r, err)
		}
		manual[r] = pointFrom(rcfg, res)
		d.Add(manual[r].DMs)
		sd.Add(manual[r].SDMs)
		be.Add(manual[r].BELatencyUs)
		samples += manual[r].Samples
	}
	if manual[0].DMs == manual[1].DMs && manual[0].SDMs == manual[1].SDMs {
		t.Error("replicas 0 and 1 measured identically; derived seeds are not reaching the simulation")
	}
	if got.Replicas != 3 {
		t.Errorf("Replicas = %d, want 3", got.Replicas)
	}
	if got.Samples != samples {
		t.Errorf("Samples = %d, want the replica sum %d", got.Samples, samples)
	}
	// Exact equality, not tolerance: the pool must add measurements in
	// replica order through the identical accumulator.
	if got.DMs != d.Mean() || got.SDMs != sd.Mean() || got.BELatencyUs != be.Mean() {
		t.Errorf("pooled means (%v, %v, %v) != manual (%v, %v, %v)",
			got.DMs, got.SDMs, got.BELatencyUs, d.Mean(), sd.Mean(), be.Mean())
	}
	if got.DMsCI95 != d.CI95() || got.SDMsCI95 != sd.CI95() || got.BECI95 != be.CI95() {
		t.Errorf("pooled CIs (%v, %v, %v) != manual (%v, %v, %v)",
			got.DMsCI95, got.SDMsCI95, got.BECI95, d.CI95(), sd.CI95(), be.CI95())
	}
	if got.DMsCI95 <= 0 {
		t.Errorf("DMsCI95 = %v, want > 0 with 3 differing replicas", got.DMsCI95)
	}
}
