package experiments

import (
	"fmt"

	"mediaworm"
)

// SchedZoo experiments: the scheduler zoo beyond the paper's three
// disciplines. The paper compares FIFO, round-robin and Virtual Clock;
// internal/sched additionally implements WRR, DRR, WF²Q+ and hierarchical
// SP+WRR, and this sweep puts them side by side on the paper's workload.
// The conformance battery (internal/sched/conformance) certifies each
// discipline's scheduling properties in isolation; this experiment shows
// what those properties buy end to end.

// ZooPolicies are the disciplines the zoo sweep compares: the paper's
// Virtual Clock baseline plus the four weighted schedulers.
var ZooPolicies = []mediaworm.Policy{
	mediaworm.VirtualClock,
	mediaworm.WRR,
	mediaworm.DRR,
	mediaworm.WF2Q,
	mediaworm.SPWRR,
}

// zooConfig applies the zoo's common knobs: an 80:20 mix and a 3:1
// real-time weight bias so the weighted disciplines have something to
// express (with unit weights WRR degenerates to round-robin).
func zooConfig(cfg *mediaworm.Config, policy mediaworm.Policy) {
	cfg.RTShare = 0.8
	cfg.Policy = policy
	cfg.Sched.RTWeight = 3
	cfg.Sched.BEWeight = 1
	cfg.Sched.Quantum = 2
}

// SchedZoo sweeps every zoo discipline over the high-load operating points
// on the paper's 80:20 VBR/best-effort mix.
func SchedZoo(opt Options) (*Figure, error) {
	fig := &Figure{
		ID:     "schedzoo",
		Title:  "Scheduler zoo: weighted disciplines on the 80:20 mix (RT weight 3:1)",
		XLabel: "load",
		ShowBE: true,
	}
	labels := make([]string, len(ZooPolicies))
	for i, p := range ZooPolicies {
		labels[i] = string(p)
	}
	return ablationSweep(opt, fig, labels, func(cfg *mediaworm.Config, v int) {
		zooConfig(cfg, ZooPolicies[v])
	})
}

// schedZooSmokeLoads is the reduced grid the CI gate runs: one comfortable
// and one saturating point.
var schedZooSmokeLoads = []float64{0.80, 0.90}

// SchedZooSmoke is the CI smoke grid: every zoo discipline at two loads
// with injection policing armed, so one cheap deterministic run exercises
// the scheduler zoo, the srTCM meters and the WRED droppers together. Its
// CSV rendering is pinned as a golden file
// (internal/experiments/testdata/schedzoo_smoke.csv).
func SchedZooSmoke(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "schedzoo-smoke",
		Title:  "Scheduler zoo smoke grid (80:20 mix, RT weight 3:1, policing on)",
		XLabel: "load",
		ShowBE: true,
		Notes:  "CI gate: reduced grid with injection policing armed; pinned as a golden CSV",
	}
	var cfgs []mediaworm.Config
	for _, p := range ZooPolicies {
		for _, load := range schedZooSmokeLoads {
			cfg := baseConfig(opt)
			cfg.Load = load
			zooConfig(&cfg, p)
			cfg.Policing.Enabled = true
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", fig.ID, err)
	}
	for v, p := range ZooPolicies {
		fig.Series = append(fig.Series, Series{
			Label:  string(p),
			Points: pts[v*len(schedZooSmokeLoads) : (v+1)*len(schedZooSmokeLoads)],
		})
	}
	return fig, nil
}
