package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mediaworm"
	"mediaworm/internal/obs"
	"mediaworm/internal/rng"
	"mediaworm/internal/runner"
	"mediaworm/internal/stats"
)

// This file is the bridge between the figure definitions and the parallel
// executor in internal/runner. Every sweep flows through runGrid (wormhole
// points) or runPCSGrid (the PCS baseline): cells run across a bounded
// worker pool, results are reassembled positionally, and the per-cell seed
// of each replica derives from (Options.Seed, cell index, replica index) —
// so output is byte-identical at any Options.Parallel setting.
//
// Progress and TraceSink are emitted from the collector (the calling
// goroutine) in grid order as the completed prefix advances, never from
// workers: progress lines stay monotone in grid order and per-point trace
// captures never interleave.

// emission is the ordered side-channel of one grid job, written by the
// worker that ran it and consumed by the collector's OnDone (the runner's
// completion channel orders the hand-off).
type emission struct {
	label      string // Progress point label
	traceLabel string // TraceSink label (includes the policy)
	trace      *obs.Capture
	elapsed    time.Duration
}

// emitter returns the runner OnDone hook delivering trace captures and
// progress lines in grid order.
func emitter(opt Options, aux []emission) func(int) {
	if opt.TraceSink == nil && opt.Progress == nil {
		return nil
	}
	return func(i int) {
		e := &aux[i]
		if e.trace != nil && opt.TraceSink != nil {
			opt.TraceSink(e.traceLabel, e.trace)
			e.trace = nil // release the capture once sunk
		}
		if opt.Progress != nil {
			opt.Progress("", e.label, e.elapsed)
		}
	}
}

// replicaSuffix distinguishes replica emissions; replica 0 keeps the bare
// label so single-replica sweeps read exactly as before.
func replicaSuffix(rep int) string {
	if rep == 0 {
		return ""
	}
	return fmt.Sprintf(" rep=%d", rep)
}

// runGrid executes one wormhole simulation per grid cell (in the given
// order), expanding each cell into opt.Replicas independent-seed replicas,
// and reduces the replicas of each cell into a single Point carrying the
// replica mean and 95% confidence half-widths.
func runGrid(opt Options, cfgs []mediaworm.Config) ([]Point, error) {
	opt = opt.normalized()
	reps := opt.Replicas
	jobs := len(cfgs) * reps
	aux := make([]emission, jobs)
	results, err := runner.Map(context.Background(), jobs,
		runner.Options{Workers: opt.Parallel, OnDone: emitter(opt, aux)},
		func(_ context.Context, i int) (Point, error) {
			cell, rep := i/reps, i%reps
			cfg := cfgs[cell]
			if rep > 0 {
				cfg.Seed = rng.DeriveSeed(cfg.Seed, uint64(cell), uint64(rep))
			}
			start := opt.Clock()
			res, err := mediaworm.Run(cfg)
			if err != nil {
				return Point{}, err
			}
			aux[i] = emission{
				label: fmt.Sprintf("load=%.2f mix=%.0f:%.0f",
					cfg.Load, cfg.RTShare*100, (1-cfg.RTShare)*100) + replicaSuffix(rep),
				elapsed: opt.Clock().Sub(start),
			}
			if res.Trace != nil {
				aux[i].trace = res.Trace
				aux[i].traceLabel = fmt.Sprintf("load=%.2f mix=%.0f:%.0f policy=%s",
					cfg.Load, cfg.RTShare*100, (1-cfg.RTShare)*100, cfg.Policy) + replicaSuffix(rep)
			}
			return pointFrom(cfg, res), nil
		})
	if err != nil {
		return nil, gridError(err, reps, func(cell int) string {
			cfg := cfgs[cell]
			return fmt.Sprintf("load=%.2f mix=%.0f:%.0f", cfg.Load, cfg.RTShare*100, (1-cfg.RTShare)*100)
		})
	}
	return poolGrid(results, len(cfgs), reps), nil
}

// runPCSGrid mirrors runGrid for the PCS baseline (no tracing: the PCS model
// predates the observability subsystem).
func runPCSGrid(opt Options, cfgs []mediaworm.PCSConfig) ([]Point, error) {
	opt = opt.normalized()
	reps := opt.Replicas
	jobs := len(cfgs) * reps
	results, err := runner.Map(context.Background(), jobs,
		runner.Options{Workers: opt.Parallel},
		func(_ context.Context, i int) (Point, error) {
			cell, rep := i/reps, i%reps
			cfg := cfgs[cell]
			if rep > 0 {
				cfg.Seed = rng.DeriveSeed(cfg.Seed, uint64(cell), uint64(rep))
			}
			res, err := mediaworm.RunPCS(cfg)
			if err != nil {
				return Point{}, err
			}
			norm := paperIntervalMs / (cfg.FrameInterval.Seconds() * 1000)
			return Point{
				Load:    cfg.Load,
				RTShare: 1.0,
				DMs:     res.MeanDeliveryIntervalMs * norm,
				SDMs:    res.StdDevDeliveryIntervalMs * norm,
				Samples: res.FrameIntervals,
			}, nil
		})
	if err != nil {
		return nil, gridError(err, reps, func(cell int) string {
			return fmt.Sprintf("load=%.2f", cfgs[cell].Load)
		})
	}
	return poolGrid(results, len(cfgs), reps), nil
}

// gridError rewrites a runner failure in sweep vocabulary: which cell (by
// its human label) and which replica failed.
func gridError(err error, reps int, label func(cell int) string) error {
	var re *runner.Error
	if !errors.As(err, &re) {
		return err
	}
	cell, rep := re.Index/reps, re.Index%reps
	return fmt.Errorf("point %s%s: %w", label(cell), replicaSuffix(rep), re.Err)
}

// pointFrom normalizes one simulation result to paper-scale milliseconds.
func pointFrom(cfg mediaworm.Config, res mediaworm.Result) Point {
	norm := paperIntervalMs / (cfg.FrameInterval.Seconds() * 1000)
	p := Point{
		Load:        cfg.Load,
		RTShare:     cfg.RTShare,
		DMs:         res.MeanDeliveryIntervalMs * norm,
		SDMs:        res.StdDevDeliveryIntervalMs * norm,
		BELatencyUs: res.BestEffort.MeanLatencyUs,
		BESaturated: res.BestEffort.Saturated,
		Samples:     res.FrameIntervals,
	}
	if res.BestEffort.Injected == 0 {
		p.BELatencyUs = 0
	}
	return p
}

// poolGrid reduces a cells×reps result grid to one Point per cell.
func poolGrid(results []Point, cells, reps int) []Point {
	if reps == 1 {
		return results
	}
	pts := make([]Point, cells)
	for c := 0; c < cells; c++ {
		pts[c] = poolReplicas(results[c*reps : (c+1)*reps])
	}
	return pts
}

// poolReplicas folds replica measurements of one cell into a single Point:
// metric means with Student-t 95% confidence half-widths, summed sample
// counts, and a majority vote on saturation.
func poolReplicas(reps []Point) Point {
	p := reps[0]
	var d, sd, be stats.Welford
	saturated := 0
	var samples uint64
	for _, r := range reps {
		d.Add(r.DMs)
		sd.Add(r.SDMs)
		be.Add(r.BELatencyUs)
		if r.BESaturated {
			saturated++
		}
		samples += r.Samples
	}
	p.DMs, p.SDMs, p.BELatencyUs = d.Mean(), sd.Mean(), be.Mean()
	p.DMsCI95, p.SDMsCI95, p.BECI95 = d.CI95(), sd.CI95(), be.CI95()
	p.BESaturated = 2*saturated >= len(reps)
	p.Samples = samples
	p.Replicas = len(reps)
	return p
}
