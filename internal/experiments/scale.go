package experiments

import (
	"fmt"

	"mediaworm"
)

// Scale experiments: the paper stops at four switches (§5.7); the topology
// generator keeps the router model fixed and grows the fabric — k-ary
// meshes and tori under dimension-order routing with dateline VC classes,
// and leaf-spine Clos — so the QoS question ("does Virtual Clock hold frame
// jitter as the fabric scales?") can be asked at datacenter-relevant sizes.

// ScaleTopologies are the fabrics the scale sweep compares, smallest to
// largest: the paper's single switch and fat-mesh as anchors, then
// generated meshes, tori and a Clos.
// Meshes and tori run at concentration 1 (one endpoint per router): with
// the paper's 4-endpoint concentration a 4×4 mesh's bisection is ~5×
// oversubscribed under uniform traffic at any interesting load, and every
// point would just measure backlog growth.
var ScaleTopologies = []mediaworm.Topology{
	mediaworm.SingleSwitch,
	mediaworm.FatMesh2x2,
	"mesh4x4c1",
	"torus4x4c1",
	"clos4x4",
	"torus8x8c1",
}

// scaleLoads are the sweep's operating points: one comfortable everywhere,
// one where the meshes' center channels approach saturation.
var scaleLoads = []float64{0.40, 0.60}

// ScaleSweep runs the 80:20 mix across ScaleTopologies. Every fabric keeps
// the paper's router configuration (16 VCs, Virtual Clock, 20-flit
// messages); only the wiring between routers changes, so differences in d
// and σd are attributable to path length, transit contention and the
// dateline VC split.
func ScaleSweep(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "scale",
		Title:  "Topology scale sweep: frame jitter across generated fabrics (80:20 mix)",
		XLabel: "load",
		ShowBE: true,
		Notes:  "mesh/torus routers carry 4 endpoints each; torus routing adds dateline VC classes",
	}
	var cfgs []mediaworm.Config
	for _, topo := range ScaleTopologies {
		for _, load := range scaleLoads {
			cfg := baseConfig(opt)
			cfg.Topology = topo
			cfg.Load = load
			cfg.RTShare = 0.8
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("scale: %w", err)
	}
	for i, topo := range ScaleTopologies {
		fig.Series = append(fig.Series, Series{
			Label:  string(topo),
			Points: pts[i*len(scaleLoads) : (i+1)*len(scaleLoads)],
		})
	}
	return fig, nil
}

// scaleSmokeTopologies is the reduced grid the CI gate runs: one generated
// fabric per routing discipline (mesh dimension-order, torus dateline,
// Clos up/down).
var scaleSmokeTopologies = []mediaworm.Topology{"mesh4x4c1", "torus4x4c1", "clos4x2"}

// ScaleSmoke is the CI smoke grid: the generated topologies at a single
// comfortable load, cheap enough to run on every change and pinned as a
// golden CSV (internal/experiments/testdata/scale_smoke.csv), so any drift
// in the generator's wiring, routing or VC dating shows up as a byte diff.
func ScaleSmoke(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "scale-smoke",
		Title:  "Topology generator smoke grid (80:20 mix, load 0.40)",
		XLabel: "load",
		ShowBE: true,
		Notes:  "CI gate: generated mesh/torus/Clos fabrics; pinned as a golden CSV",
	}
	var cfgs []mediaworm.Config
	for _, topo := range scaleSmokeTopologies {
		cfg := baseConfig(opt)
		cfg.Topology = topo
		cfg.Load = 0.40
		cfg.RTShare = 0.8
		cfgs = append(cfgs, cfg)
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", fig.ID, err)
	}
	for i, topo := range scaleSmokeTopologies {
		fig.Series = append(fig.Series, Series{Label: string(topo), Points: pts[i : i+1]})
	}
	return fig, nil
}
