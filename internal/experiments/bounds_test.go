package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mediaworm/internal/calculus"
)

// TestBoundsSmokeSoundness is the in-tree soundness gate: on the reduced
// grid the analytic bound must dominate every observed worst-case latency,
// certifiable cells must actually certify streams, and saturating cells must
// be declined rather than given an optimistic finite bound.
func TestBoundsSmokeSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rep, err := BoundsSmoke(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Violations(); got != 0 {
		t.Fatalf("%d observed worst-case latencies above their analytic bound", got)
	}
	certified, compared := 0, 0
	for _, c := range rep.Cells {
		certified += c.Certified
		compared += c.Compared
		if c.Certified > c.Streams || c.Compared > c.Certified {
			t.Fatalf("cell %+v has inconsistent counts", c)
		}
		if c.Compared > 0 && c.MedianSlack < 1 {
			t.Fatalf("cell load %.2f mix %.2f median slack %.2f < 1 with zero violations",
				c.Load, c.RTShare, c.MedianSlack)
		}
	}
	if certified == 0 || compared == 0 {
		t.Fatal("no cell certified any stream — the experiment compares nothing")
	}
	// The saturating pure-RT corner must be declined: certifying a fabric
	// whose aggregate exceeds service capacity would be unsound.
	for _, c := range rep.Cells {
		if c.Fabric == "single-switch" && c.Load == 0.90 && c.RTShare == 1.0 && c.Certified != 0 {
			t.Fatalf("saturating cell certified %d streams", c.Certified)
		}
	}
}

func TestBoundsReportPrint(t *testing.T) {
	rep := &BoundsReport{
		Cells: []BoundsPoint{
			{Fabric: "single-switch", Load: 0.6, RTShare: 0.5, Streams: 10, Certified: 10,
				Compared: 10, WorstBoundMs: 3.2, WorstObservedMs: 0.5, MedianSlack: 6.4,
				MaxBacklogKbits: 60},
			{Fabric: "fat-mesh", Load: 0.9, RTShare: 0.8, Streams: 12,
				MaxBacklogKbits: math.Inf(1)},
		},
		Notes: "test grid",
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"single-switch", "fat-mesh", "inf", "6.4", "total violations: 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestCalculusParamsMapsConfig(t *testing.T) {
	cfg := baseConfig(fastOpt())
	p, err := CalculusParams(cfg, false, 0.8, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Topology != calculus.SingleSwitch || p.Nodes != cfg.Ports {
		t.Fatalf("single-switch mapping: %+v", p)
	}
	if p.RTVCs != 8 || math.Abs(p.BestEffortLoad-0.4) > 1e-12 {
		t.Fatalf("partition mapping: RTVCs %d BE %v", p.RTVCs, p.BestEffortLoad)
	}
	if p.IntervalSec != cfg.FrameInterval.Seconds() {
		t.Fatalf("interval %v != %v", p.IntervalSec, cfg.FrameInterval.Seconds())
	}
	fat, err := CalculusParams(cfg, true, 0.8, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fat.Topology != calculus.FatMesh2x2 || fat.Nodes != 16 {
		t.Fatalf("fat-mesh mapping: %+v", fat)
	}
	bad := cfg
	bad.Policy = "bogus"
	if _, err := CalculusParams(bad, false, 0.8, 0.5, 8); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
