package experiments_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mediaworm/internal/experiments"
	"mediaworm/internal/report"
)

// TestScaleSmokeGolden pins the topology-generator smoke grid's CSV
// rendering with the same options the CI gate uses (cmd/paperfigs
// -scale 0.05 -intervals 3 -only scale-smoke). The grid simulates a
// generated mesh, torus and Clos end to end, so drift in the generator's
// wiring, dimension-order routing or dateline VC selection shows up as a
// byte diff. Regenerate deliberately with -update.
func TestScaleSmokeGolden(t *testing.T) {
	fig, err := experiments.ScaleSmoke(smokeOpt())
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := report.FigureCSV(fig, &got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "scale_smoke.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("scale-smoke CSV drifted from golden; rerun with -update if intended\ngot:\n%s\nwant:\n%s",
			got.Bytes(), want)
	}
}

// TestScaleSmokeParallelIdentical checks the grid is byte-identical under
// parallel sweep execution, so CI may run it at any worker count.
func TestScaleSmokeParallelIdentical(t *testing.T) {
	serial := smokeOpt()
	serial.Parallel = 1
	par := smokeOpt()
	par.Parallel = 4

	figS, err := experiments.ScaleSmoke(serial)
	if err != nil {
		t.Fatal(err)
	}
	figP, err := experiments.ScaleSmoke(par)
	if err != nil {
		t.Fatal(err)
	}
	var outS, outP bytes.Buffer
	if err := report.FigureCSV(figS, &outS); err != nil {
		t.Fatal(err)
	}
	if err := report.FigureCSV(figP, &outP); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outS.Bytes(), outP.Bytes()) {
		t.Errorf("parallel scale-smoke grid diverged from serial\nserial:\n%s\nparallel:\n%s",
			outS.Bytes(), outP.Bytes())
	}
}
