package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"

	"mediaworm/internal/admission"
	"mediaworm/internal/fault"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/rng"
	"mediaworm/internal/runner"
	"mediaworm/internal/sim"
	"mediaworm/internal/stats"
	"mediaworm/internal/topology"
	"mediaworm/internal/traffic"
)

// FaultSweep studies QoS under failure on the 2×2 fat-mesh: stochastic link
// churn at increasing per-link fault rates over a fixed VBR/best-effort mix,
// with the full resilience stack closed-loop — fault-aware rerouting, NI
// retransmission, the deadlock watchdog in recovery mode, and an admission
// controller that revokes the newest streams when capacity drops and
// re-admits them as links return. Fault scheduling derives from Options.Seed,
// so every point is byte-for-byte reproducible.

// FaultPoint is one fault-rate measurement.
type FaultPoint struct {
	// FaultsPerLink is the expected fault count per transit link over the
	// run (0 = healthy baseline).
	FaultsPerLink float64
	// LinkDowns counts actual bidirectional link failures.
	LinkDowns uint64
	// DeliveredFrameRatio is delivered/emitted frames across admitted
	// streams — the headline graceful-degradation metric.
	DeliveredFrameRatio float64
	// DMs and SDMs are d and σd of admitted streams, paper-scale ms.
	DMs, SDMs float64
	// FlitsDropped counts flits reaped by the fault paths.
	FlitsDropped uint64
	// Retransmissions/Recovered/Abandoned summarize the NI resend layer.
	Retransmissions, Recovered, Abandoned uint64
	// Revoked and Readmitted count admission-control degradation actions.
	Revoked, Readmitted int
	// Deadlocks counts watchdog trips; DeadlocksBroken recovery kills.
	Deadlocks, DeadlocksBroken int
}

// FaultReport is the FaultSweep output.
type FaultReport struct {
	Points []FaultPoint
	Notes  string
}

// FaultSweepRates is the default sweep: expected faults per transit link
// over the measurement window.
var FaultSweepRates = []float64{0, 0.5, 1, 2, 4}

// FaultSweep runs the resilience sweep at each rate in FaultSweepRates.
// Rates are independent closed-loop simulations (fault schedules derive from
// Options.Seed, not from each other), so they fan out across the worker pool
// with results reassembled in rate order.
func FaultSweep(opt Options) (*FaultReport, error) {
	opt = opt.normalized()
	rep := &FaultReport{
		Notes: "2x2 fat-mesh, load 0.70 at 80:20 VBR:best-effort; MTTR = 5% of the run; " +
			"watchdog in recovery mode; retransmit timeout = 2 frame intervals, 4 attempts; " +
			"admission revokes newest-first on capacity loss and re-admits on recovery",
	}
	pts, err := runner.Map(context.Background(), len(FaultSweepRates),
		runner.Options{Workers: opt.Parallel},
		func(_ context.Context, i int) (FaultPoint, error) {
			return runFaultPoint(opt, FaultSweepRates[i])
		})
	if err != nil {
		var re *runner.Error
		if errors.As(err, &re) {
			return nil, fmt.Errorf("fault sweep at rate %v: %w", FaultSweepRates[re.Index], re.Err)
		}
		return nil, fmt.Errorf("fault sweep: %w", err)
	}
	rep.Points = pts
	return rep, nil
}

func runFaultPoint(opt Options, rate float64) (FaultPoint, error) {
	base := baseConfig(opt)
	const (
		load    = 0.70
		rtShare = 0.80
	)
	rtVCs := traffic.PartitionVCs(base.VCs, rtShare)
	eng := sim.NewEngine()
	rcfg := coreConfigFrom(base, rtVCs)
	rcfg.Ports = 8
	net, err := topology.FatMesh2x2(eng, rcfg)
	if err != nil {
		return FaultPoint{}, err
	}

	warmup := sim.Time(base.Warmup.Nanoseconds())
	stop := warmup + sim.Time(base.Measure.Nanoseconds())
	interval := sim.Time(base.FrameInterval.Nanoseconds())

	// Resilience stack: watchdog in recovery mode, end-to-end retransmission.
	net.Fabric.SetWatchdog(50000, true)
	retx := network.NewRetransmitter(net.Fabric, 2*interval, 4)

	// Measurement: frame ledger for the delivered-frame ratio, interval
	// tracker for jitter of the frames that do arrive.
	intervals := stats.NewIntervalTracker(warmup)
	ledger := stats.NewFrameLedger()
	for _, s := range net.Sinks {
		s.OnFrame = func(stream, frame int, at sim.Time) {
			intervals.Observe(stream, at)
			ledger.Delivered(stream)
		}
	}

	w, err := traffic.Apply(eng, net, traffic.MixConfig{
		Load: load, RTShare: rtShare, Class: flit.VBR,
		LinkBitsPerSec: base.LinkBandwidthBps,
		FlitBits:       base.FlitBits, MsgFlits: base.MsgFlits,
		FrameBytes: base.FrameBytes, FrameBytesSD: base.FrameBytesSD,
		Interval: interval, VCs: base.VCs, RTVCs: rtVCs,
		Stop: stop, Seed: opt.Seed,
	})
	if err != nil {
		return FaultPoint{}, err
	}
	for _, st := range w.Streams {
		st.OnEmit = func(stream, frame int) { ledger.Emitted(stream) }
	}

	// Admission closed loop: every generated stream registers with the
	// controller; capacity follows the live transit-link fraction, revoking
	// the newest streams under sustained loss and re-admitting on recovery.
	ctrl, err := admission.NewController(admission.DefaultEnvelope(),
		base.LinkBandwidthBps, base.FrameBytes*8/base.FrameInterval.Seconds())
	if err != nil {
		return FaultPoint{}, err
	}
	ctrl.SetBestEffortLoad(load * (1 - rtShare))
	streams := make(map[int]*traffic.Stream, len(w.Streams))
	for _, st := range w.Streams {
		streams[st.ID()] = st
		if !ctrl.AdmitStream(st.ID(), 0) {
			st.Revoke() // over-subscribed at setup: shed immediately
		}
	}
	point := FaultPoint{FaultsPerLink: rate}
	var waiting []int // revoked stream IDs, oldest first
	onCapacity := func() {
		scale := float64(net.LiveTransitLinks()) / float64(len(net.TransitLinks()))
		if scale < 0.05 {
			scale = 0.05
		}
		for _, id := range ctrl.SetCapacityScale(scale) {
			streams[id].Revoke()
			waiting = append(waiting, id)
			point.Revoked++
		}
		// Recovered capacity re-admits waiting streams, oldest first.
		for len(waiting) > 0 && ctrl.AdmitStream(waiting[0], 0) {
			streams[waiting[0]].Resume()
			waiting = waiting[1:]
			point.Readmitted++
		}
	}

	injector := fault.NewInjector(eng, net.Fabric, rng.NewStream(opt.Seed, "fault"))
	injector.OnFault = func(at sim.Time, kind string, router, port int) {
		if kind == "link-down" || kind == "link-up" {
			onCapacity()
		}
	}
	if rate > 0 {
		mtbf := sim.Time(float64(stop) / rate)
		mttr := stop / 20
		if mttr < 1 {
			mttr = 1
		}
		for _, l := range net.TransitLinks() {
			injector.Churn(fault.Link{
				A: net.Routers[l.A], APort: l.APort,
				B: net.Routers[l.B], BPort: l.BPort,
			}, mtbf, mttr, stop)
		}
	}

	eng.Run(stop)
	eng.Drain()
	if err := net.Fabric.CheckDrained(); err != nil {
		return FaultPoint{}, err
	}

	norm := paperIntervalMs / (base.FrameInterval.Seconds() * 1000)
	point.LinkDowns = injector.LinkDowns
	point.DeliveredFrameRatio = ledger.Ratio()
	point.DMs = intervals.MeanMs() * norm
	point.SDMs = intervals.StdDevMs() * norm
	point.FlitsDropped = net.Fabric.DroppedFlits()
	point.Retransmissions = retx.Retransmissions
	point.Recovered = retx.Recovered
	point.Abandoned = retx.Abandoned
	point.Deadlocks = net.Fabric.Deadlocks
	point.DeadlocksBroken = net.Fabric.DeadlocksBroken
	return point, nil
}

// Fprint renders the sweep as an aligned text table.
func (r *FaultReport) Fprint(w io.Writer) {
	fmt.Fprintln(w, "== fault-sweep: QoS under link churn (2x2 fat-mesh, load 0.70, 80:20) ==")
	rows := [][]string{{
		"faults/link", "downs", "DFR", "d(ms)", "σd(ms)",
		"dropped", "resends", "abandoned", "revoked", "readmitted", "deadlocks",
	}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.FaultsPerLink),
			fmt.Sprintf("%d", p.LinkDowns),
			fmt.Sprintf("%.4f", p.DeliveredFrameRatio),
			fmt.Sprintf("%.3f", p.DMs),
			fmt.Sprintf("%.4f", p.SDMs),
			fmt.Sprintf("%d", p.FlitsDropped),
			fmt.Sprintf("%d", p.Retransmissions),
			fmt.Sprintf("%d", p.Abandoned),
			fmt.Sprintf("%d", p.Revoked),
			fmt.Sprintf("%d", p.Readmitted),
			fmt.Sprintf("%d/%d", p.Deadlocks, p.DeadlocksBroken),
		})
	}
	writeAligned(w, rows)
	if r.Notes != "" {
		fmt.Fprintln(w, "notes:", r.Notes)
	}
}
