// Package experiments regenerates every figure and table of the paper's
// evaluation (§5). Each experiment sweeps the workload/hardware parameter
// the paper varies and reports the same rows or series the paper plots:
// the mean frame delivery interval d (ms), its standard deviation σd (ms),
// best-effort latency (µs), and PCS connection accounting.
//
// Runs are scaled in the video time base (Options.Scale): frames and
// intervals shrink together, preserving per-stream bandwidth and the
// queueing behaviour per cycle while cutting simulated cycles. Reported
// intervals are normalized back to the paper's 33 ms base so the tables
// read side-by-side with the paper's.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mediaworm"
	"mediaworm/internal/obs"
)

// Options tunes experiment fidelity versus wall-clock cost.
type Options struct {
	// Scale is the video time-base factor in (0, 1]; 1.0 is the paper's
	// exact workload, smaller is faster.
	Scale float64
	// WarmupIntervals and MeasureIntervals size the measurement window in
	// frame intervals.
	WarmupIntervals, MeasureIntervals int
	// Seed drives all randomness.
	Seed uint64
	// Progress, if non-nil, is called after each simulated point.
	Progress func(figure string, point string, elapsed time.Duration)
	// Clock supplies the wall-clock readings behind Progress's elapsed
	// argument. It exists so the one wall-clock dependency in this package
	// is injected rather than ambient: simulation results never touch it,
	// and tests can pin it. Nil means the real clock.
	Clock func() time.Time
	// Trace arms the observability subsystem for every simulated point
	// (see mediaworm.TraceConfig). Captures are delivered to TraceSink.
	Trace mediaworm.TraceConfig
	// TraceSink, if non-nil, receives each point's trace capture, labelled
	// with the point's sweep position. Only called when Trace.Enabled.
	TraceSink func(point string, capture *obs.Capture)
}

// DefaultOptions balances fidelity and single-core runtime (~minutes for
// the full set).
func DefaultOptions() Options {
	return Options{Scale: 0.2, WarmupIntervals: 3, MeasureIntervals: 10, Seed: 1}
}

func (o Options) normalized() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 0.2
	}
	if o.WarmupIntervals <= 0 {
		o.WarmupIntervals = 3
	}
	if o.MeasureIntervals <= 0 {
		o.MeasureIntervals = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		// Progress timing is the package's sole legitimate wall-clock use:
		// it reports to a human and feeds no simulation state.
		o.Clock = time.Now //mw:wallclock — default for the injectable progress clock; never read on a simulation path
	}
	return o
}

// paperIntervalMs is the paper's inter-frame interval (30 frames/s MPEG-2).
const paperIntervalMs = 33.0

// Point is one measured sweep point, normalized to the paper's time base.
type Point struct {
	// Load is the offered input-link load; RTShare the real-time fraction.
	Load, RTShare float64
	// DMs and SDMs are d and σd in paper-scale milliseconds.
	DMs, SDMs float64
	// BELatencyUs is the mean best-effort latency in microseconds
	// (NaN-free: zero when the mix has no best-effort component).
	BELatencyUs float64
	// BESaturated marks Table 2's "Sat." entries.
	BESaturated bool
	// Samples is the number of pooled interval observations.
	Samples uint64
}

// Series is a labelled sequence of points (one curve of a figure).
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced figure or table: an ID matching the paper
// ("fig3", "table2", …), a title, and its series.
type Figure struct {
	ID, Title string
	// XLabel names the sweep variable; XIsMix selects whether rows are
	// keyed by the traffic mix (x:y) instead of the load.
	XLabel string
	XIsMix bool
	// ShowBE adds a best-effort latency column per series.
	ShowBE bool
	Series []Series
	// Notes records reproduction caveats for EXPERIMENTS.md.
	Notes string
}

// Fprint renders the figure as an aligned text table: one row per X value,
// one (d, σd) column pair per series.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label+" d(ms)", s.Label+" σd(ms)")
		if f.ShowBE {
			header = append(header, s.Label+" BE(µs)")
		}
	}
	rows := [][]string{header}
	for i := range f.Series[0].Points {
		p0 := f.Series[0].Points[i]
		row := []string{fmtX(p0, f.XIsMix)}
		for _, s := range f.Series {
			p := s.Points[i]
			row = append(row, fmt.Sprintf("%.2f", p.DMs), fmt.Sprintf("%.3f", p.SDMs))
			if f.ShowBE {
				if p.BESaturated {
					row = append(row, "Sat.")
				} else {
					row = append(row, fmt.Sprintf("%.1f", p.BELatencyUs))
				}
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	if f.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", f.Notes)
	}
	fmt.Fprintln(w)
}

func fmtX(p Point, mix bool) string {
	if mix {
		return fmt.Sprintf("%d:%d", int(p.RTShare*100+0.5), int((1-p.RTShare)*100+0.5))
	}
	return fmt.Sprintf("%.2f", p.Load)
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// baseConfig returns the paper's Table 1 configuration scaled per options,
// with the measurement window sized in intervals.
func baseConfig(opt Options) mediaworm.Config {
	cfg := mediaworm.DefaultConfig().Scale(opt.Scale)
	cfg.Warmup = time.Duration(opt.WarmupIntervals) * cfg.FrameInterval
	cfg.Measure = time.Duration(opt.MeasureIntervals) * cfg.FrameInterval
	cfg.Seed = opt.Seed
	cfg.Trace = opt.Trace
	return cfg
}

// runPoint executes cfg and normalizes the result to paper-scale ms.
func runPoint(cfg mediaworm.Config, opt Options) (Point, error) {
	start := opt.Clock()
	res, err := mediaworm.Run(cfg)
	if err != nil {
		return Point{}, err
	}
	norm := paperIntervalMs / (cfg.FrameInterval.Seconds() * 1000)
	p := Point{
		Load:        cfg.Load,
		RTShare:     cfg.RTShare,
		DMs:         res.MeanDeliveryIntervalMs * norm,
		SDMs:        res.StdDevDeliveryIntervalMs * norm,
		BELatencyUs: res.BestEffort.MeanLatencyUs,
		BESaturated: res.BestEffort.Saturated,
		Samples:     res.FrameIntervals,
	}
	if res.BestEffort.Injected == 0 {
		p.BELatencyUs = 0
	}
	if res.Trace != nil && opt.TraceSink != nil {
		opt.TraceSink(fmt.Sprintf("load=%.2f mix=%.0f:%.0f policy=%s",
			cfg.Load, cfg.RTShare*100, (1-cfg.RTShare)*100, cfg.Policy), res.Trace)
	}
	if opt.Progress != nil {
		opt.Progress("", fmt.Sprintf("load=%.2f mix=%.0f:%.0f", cfg.Load, cfg.RTShare*100, (1-cfg.RTShare)*100), opt.Clock().Sub(start))
	}
	return p, nil
}
