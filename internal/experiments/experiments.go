// Package experiments regenerates every figure and table of the paper's
// evaluation (§5). Each experiment sweeps the workload/hardware parameter
// the paper varies and reports the same rows or series the paper plots:
// the mean frame delivery interval d (ms), its standard deviation σd (ms),
// best-effort latency (µs), and PCS connection accounting.
//
// Runs are scaled in the video time base (Options.Scale): frames and
// intervals shrink together, preserving per-stream bandwidth and the
// queueing behaviour per cycle while cutting simulated cycles. Reported
// intervals are normalized back to the paper's 33 ms base so the tables
// read side-by-side with the paper's.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mediaworm"
	"mediaworm/internal/obs"
)

// Options tunes experiment fidelity versus wall-clock cost.
type Options struct {
	// Scale is the video time-base factor in (0, 1]; 1.0 is the paper's
	// exact workload, smaller is faster.
	Scale float64
	// WarmupIntervals and MeasureIntervals size the measurement window in
	// frame intervals.
	WarmupIntervals, MeasureIntervals int
	// Seed drives all randomness.
	Seed uint64
	// Parallel bounds the sweep worker pool: 1 runs points serially, 0 uses
	// every core (GOMAXPROCS). Output is byte-identical at any setting —
	// see internal/runner and DESIGN.md §12.
	Parallel int
	// Replicas runs each sweep point this many times with independent seeds
	// derived from (Seed, point index, replica index) and reports the
	// replica mean with 95% confidence half-widths (Point.DMsCI95 etc.).
	// 0 or 1 keeps the single-run behaviour, byte-identical to before.
	Replicas int
	// Progress, if non-nil, is called after each simulated point, always
	// from the sweep's calling goroutine and always in grid order, even
	// when Parallel fans points out across workers.
	Progress func(figure string, point string, elapsed time.Duration)
	// Clock supplies the wall-clock readings behind Progress's elapsed
	// argument. It exists so the one wall-clock dependency in this package
	// is injected rather than ambient: simulation results never touch it,
	// and tests can pin it. Nil means the real clock. It must be safe for
	// concurrent use — workers read it when Parallel > 1 (time.Now is).
	Clock func() time.Time
	// Trace arms the observability subsystem for every simulated point
	// (see mediaworm.TraceConfig). Captures are delivered to TraceSink.
	Trace mediaworm.TraceConfig
	// TraceSink, if non-nil, receives each point's trace capture, labelled
	// with the point's sweep position. Only called when Trace.Enabled. Like
	// Progress it fires on the calling goroutine in grid order, so captures
	// from concurrently simulated points never interleave.
	TraceSink func(point string, capture *obs.Capture)
}

// DefaultOptions balances fidelity and single-core runtime (~minutes for
// the full set).
func DefaultOptions() Options {
	return Options{Scale: 0.2, WarmupIntervals: 3, MeasureIntervals: 10, Seed: 1}
}

func (o Options) normalized() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 0.2
	}
	if o.WarmupIntervals <= 0 {
		o.WarmupIntervals = 3
	}
	if o.MeasureIntervals <= 0 {
		o.MeasureIntervals = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Clock == nil {
		// Progress timing is the package's sole legitimate wall-clock use:
		// it reports to a human and feeds no simulation state.
		o.Clock = time.Now //mw:wallclock — default for the injectable progress clock; never read on a simulation path
	}
	return o
}

// paperIntervalMs is the paper's inter-frame interval (30 frames/s MPEG-2).
const paperIntervalMs = 33.0

// Point is one measured sweep point, normalized to the paper's time base.
type Point struct {
	// Load is the offered input-link load; RTShare the real-time fraction.
	Load, RTShare float64
	// DMs and SDMs are d and σd in paper-scale milliseconds.
	DMs, SDMs float64
	// BELatencyUs is the mean best-effort latency in microseconds
	// (NaN-free: zero when the mix has no best-effort component).
	BELatencyUs float64
	// BESaturated marks Table 2's "Sat." entries.
	BESaturated bool
	// Samples is the number of pooled interval observations.
	Samples uint64
	// Replicas is the number of independent-seed runs pooled into this
	// point (see Options.Replicas); 0 or 1 means a single run.
	Replicas int
	// DMsCI95, SDMsCI95 and BECI95 are the half-widths of the Student-t
	// 95% confidence intervals of DMs, SDMs and BELatencyUs across
	// replicas. All zero for single-run points.
	DMsCI95, SDMsCI95, BECI95 float64
}

// Series is a labelled sequence of points (one curve of a figure).
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced figure or table: an ID matching the paper
// ("fig3", "table2", …), a title, and its series.
type Figure struct {
	ID, Title string
	// XLabel names the sweep variable; XIsMix selects whether rows are
	// keyed by the traffic mix (x:y) instead of the load.
	XLabel string
	XIsMix bool
	// ShowBE adds a best-effort latency column per series.
	ShowBE bool
	Series []Series
	// Notes records reproduction caveats for EXPERIMENTS.md.
	Notes string
}

// replicated reports whether any point pools multiple replicas, which adds
// ± (95% CI half-width) columns to the rendered table.
func (f *Figure) replicated() bool {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Replicas > 1 {
				return true
			}
		}
	}
	return false
}

// Fprint renders the figure as an aligned text table: one row per X value,
// one (d, σd) column pair per series. Replicated sweeps add a ± column (the
// 95% confidence half-width across replicas) after each metric.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	ci := f.replicated()
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label+" d(ms)")
		if ci {
			header = append(header, "±d")
		}
		header = append(header, s.Label+" σd(ms)")
		if ci {
			header = append(header, "±σd")
		}
		if f.ShowBE {
			header = append(header, s.Label+" BE(µs)")
			if ci {
				header = append(header, "±BE")
			}
		}
	}
	rows := [][]string{header}
	for i := range f.Series[0].Points {
		p0 := f.Series[0].Points[i]
		row := []string{fmtX(p0, f.XIsMix)}
		for _, s := range f.Series {
			p := s.Points[i]
			row = append(row, fmt.Sprintf("%.2f", p.DMs))
			if ci {
				row = append(row, fmt.Sprintf("%.2f", p.DMsCI95))
			}
			row = append(row, fmt.Sprintf("%.3f", p.SDMs))
			if ci {
				row = append(row, fmt.Sprintf("%.3f", p.SDMsCI95))
			}
			if f.ShowBE {
				if p.BESaturated {
					row = append(row, "Sat.")
					if ci {
						row = append(row, "-")
					}
				} else {
					row = append(row, fmt.Sprintf("%.1f", p.BELatencyUs))
					if ci {
						row = append(row, fmt.Sprintf("%.1f", p.BECI95))
					}
				}
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	if f.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", f.Notes)
	}
	fmt.Fprintln(w)
}

func fmtX(p Point, mix bool) string {
	if mix {
		return fmt.Sprintf("%d:%d", int(p.RTShare*100+0.5), int((1-p.RTShare)*100+0.5))
	}
	return fmt.Sprintf("%.2f", p.Load)
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// baseConfig returns the paper's Table 1 configuration scaled per options,
// with the measurement window sized in intervals.
func baseConfig(opt Options) mediaworm.Config {
	cfg := mediaworm.DefaultConfig().Scale(opt.Scale)
	cfg.Warmup = time.Duration(opt.WarmupIntervals) * cfg.FrameInterval
	cfg.Measure = time.Duration(opt.MeasureIntervals) * cfg.FrameInterval
	cfg.Seed = opt.Seed
	cfg.Trace = opt.Trace
	return cfg
}

// runPoint executes one config as a single-cell grid: a convenience for
// callers that sweep nothing. Replication, progress and trace emission all
// behave exactly as in a full runGrid sweep.
func runPoint(cfg mediaworm.Config, opt Options) (Point, error) {
	pts, err := runGrid(opt, []mediaworm.Config{cfg})
	if err != nil {
		return Point{}, err
	}
	return pts[0], nil
}
