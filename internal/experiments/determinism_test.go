package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mediaworm"
)

// miniSweep is a scaled-down Fig3: two policies over two loads, small
// enough for CI but exercising the full stack (traffic synthesis, router
// pipeline, schedulers, stats) whose determinism the mwlint analyzers
// guard statically. It returns both the full-precision point values and
// the rendered table.
func miniSweep(t *testing.T, opt Options) (string, string) {
	t.Helper()
	fig := &Figure{ID: "mini", Title: "determinism probe", XLabel: "load"}
	for _, policy := range []mediaworm.Policy{mediaworm.VirtualClock, mediaworm.FIFO} {
		s := Series{Label: string(policy)}
		for _, load := range []float64{0.5, 0.9} {
			cfg := baseConfig(opt)
			cfg.Policy = policy
			cfg.Load = load
			cfg.RTShare = 0.8
			p, err := runPoint(cfg, opt)
			if err != nil {
				t.Fatalf("%s load %v: %v", policy, load, err)
			}
			s.Points = append(s.Points, p)
		}
		fig.Series = append(fig.Series, s)
	}
	var rendered bytes.Buffer
	fig.Fprint(&rendered)
	return fmt.Sprintf("%+v", fig), rendered.String()
}

// TestFigureSweepDeterminism is the runtime complement of the static
// analyzers: two sweeps from the same seed must serialize byte-identically,
// down to full float precision. Map-order leaks, wall-clock reads, or a
// stray global RNG draw anywhere on the simulation path show up here as a
// diff.
func TestFigureSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := Options{
		Scale: 0.05, WarmupIntervals: 1, MeasureIntervals: 4, Seed: 7,
		// Pin the progress clock so even the wall-clock side is identical.
		Clock: func() time.Time { return time.Unix(0, 0) },
	}
	full1, table1 := miniSweep(t, opt)
	full2, table2 := miniSweep(t, opt)
	if full1 != full2 {
		t.Errorf("same seed, different results:\nrun1: %s\nrun2: %s", full1, full2)
	}
	if !bytes.Equal([]byte(table1), []byte(table2)) {
		t.Errorf("rendered tables differ:\nrun1:\n%s\nrun2:\n%s", table1, table2)
	}
	// A different seed must actually change something, or the comparison
	// above is vacuous.
	opt.Seed = 8
	full3, _ := miniSweep(t, opt)
	if full1 == full3 {
		t.Errorf("seeds 7 and 8 produced identical sweeps; seed is not reaching the simulation")
	}
}
