package experiments_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mediaworm/internal/experiments"
	"mediaworm/internal/report"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// smokeOpt pins the exact options the CI gate runs the smoke grid with
// (cmd/paperfigs -scale 0.05 -intervals 3 -only schedzoo-smoke), so the
// golden file this test maintains is the same byte stream CI compares.
func smokeOpt() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Scale = 0.05
	opt.MeasureIntervals = 3
	return opt
}

// TestSchedZooSmokeGolden pins the smoke grid's CSV rendering. The grid
// runs every registered zoo discipline with policing armed, so any change
// to scheduler arbitration, meter accounting or dropper coin flips shows up
// here as a byte diff. Regenerate deliberately with -update.
func TestSchedZooSmokeGolden(t *testing.T) {
	fig, err := experiments.SchedZooSmoke(smokeOpt())
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := report.FigureCSV(fig, &got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "schedzoo_smoke.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("schedzoo-smoke CSV drifted from golden; rerun with -update if intended\ngot:\n%s\nwant:\n%s",
			got.Bytes(), want)
	}
}

// TestSchedZooSmokeParallelIdentical checks the smoke grid is byte-identical
// under parallel sweep execution — the property that lets CI run it at any
// worker count.
func TestSchedZooSmokeParallelIdentical(t *testing.T) {
	serial := smokeOpt()
	serial.Parallel = 1
	par := smokeOpt()
	par.Parallel = 4

	figS, err := experiments.SchedZooSmoke(serial)
	if err != nil {
		t.Fatal(err)
	}
	figP, err := experiments.SchedZooSmoke(par)
	if err != nil {
		t.Fatal(err)
	}
	var outS, outP bytes.Buffer
	if err := report.FigureCSV(figS, &outS); err != nil {
		t.Fatal(err)
	}
	if err := report.FigureCSV(figP, &outP); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outS.Bytes(), outP.Bytes()) {
		t.Errorf("parallel smoke grid diverged from serial\nserial:\n%s\nparallel:\n%s",
			outS.Bytes(), outP.Bytes())
	}
}
