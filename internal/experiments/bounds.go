package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"mediaworm/internal/calculus"
	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/topology"
	"mediaworm/internal/traffic"

	"mediaworm"
	"mediaworm/internal/runner"
)

// BoundsSweep cross-validates the closed-form network-calculus bounds of
// internal/calculus against the simulator: for every cell of the paper's
// figure grids it simulates the workload, prices every realized stream's
// analytic end-to-end delay bound, and compares the bound against the
// stream's worst observed message latency. A sound model shows zero
// violations — no stream's observed worst case above its finite bound —
// and the slack ratio (bound / observed) quantifies how conservative the
// analysis is.

// BoundsPoint is one grid cell's bound-versus-observed comparison.
type BoundsPoint struct {
	// Fabric names the topology: "single-switch" or "fat-mesh".
	Fabric string
	// Load and RTShare locate the cell on the paper's grid.
	Load, RTShare float64
	// Streams is the realized real-time stream count; Certified how many
	// received a finite analytic bound (the rest are ∞ — the model
	// declines to certify an unstable or θ-violating operating point,
	// which dominates any observation trivially).
	Streams, Certified int
	// Compared counts certified streams that delivered at least one
	// message; Violations how many of those observed a message latency
	// above their bound. Soundness means zero.
	Compared, Violations int
	// WorstBoundMs is the largest finite per-stream bound and
	// WorstObservedMs the largest observed worst-case latency among
	// compared streams, both in paper-scale milliseconds.
	WorstBoundMs, WorstObservedMs float64
	// MedianSlack is the median over compared streams of bound/observed —
	// the headline looseness metric. 0 when nothing was compared.
	MedianSlack float64
	// MaxBacklogKbits is the analytic worst per-link backlog bound in
	// kilobits (∞ when some link is uncertifiable).
	MaxBacklogKbits float64
}

// BoundsReport is the BoundsSweep output.
type BoundsReport struct {
	Cells []BoundsPoint
	Notes string
}

// Violations sums soundness violations across all cells.
func (r *BoundsReport) Violations() int {
	total := 0
	for _, c := range r.Cells {
		total += c.Violations
	}
	return total
}

// MedianSlack returns the median of the per-cell median slack ratios over
// cells that compared at least one stream.
func (r *BoundsReport) MedianSlack() float64 {
	var meds []float64
	for _, c := range r.Cells {
		if c.Compared > 0 {
			meds = append(meds, c.MedianSlack)
		}
	}
	return median(meds)
}

// Fprint renders the bound-versus-observed grid.
func (r *BoundsReport) Fprint(w io.Writer) {
	fmt.Fprintln(w, "== bounds: analytic delay bound vs observed worst case ==")
	rows := [][]string{{"fabric", "load", "x:y", "streams", "certified", "compared", "viol", "bound ms", "observed ms", "slack med", "backlog kb"}}
	for _, c := range r.Cells {
		boundCell := "inf"
		if c.Certified > 0 {
			boundCell = fmt.Sprintf("%.3f", c.WorstBoundMs)
		}
		slackCell, backlogCell := "-", "inf"
		if c.Compared > 0 {
			slackCell = fmt.Sprintf("%.1f", c.MedianSlack)
		}
		if !math.IsInf(c.MaxBacklogKbits, 1) {
			backlogCell = fmt.Sprintf("%.1f", c.MaxBacklogKbits)
		}
		rows = append(rows, []string{
			c.Fabric,
			fmt.Sprintf("%.2f", c.Load),
			fmt.Sprintf("%d:%d", int(c.RTShare*100+0.5), int((1-c.RTShare)*100+0.5)),
			fmt.Sprintf("%d", c.Streams),
			fmt.Sprintf("%d", c.Certified),
			fmt.Sprintf("%d", c.Compared),
			fmt.Sprintf("%d", c.Violations),
			boundCell,
			fmt.Sprintf("%.3f", c.WorstObservedMs),
			slackCell,
			backlogCell,
		})
	}
	writeAligned(w, rows)
	if r.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", r.Notes)
	}
	fmt.Fprintf(w, "total violations: %d, median slack: %.1f\n\n", r.Violations(), r.MedianSlack())
}

// boundsCell locates one simulation of the sweep.
type boundsCell struct {
	fatMesh   bool
	load, mix float64
}

func boundsGrid(full bool) []boundsCell {
	var cells []boundsCell
	if full {
		for _, load := range Table2Loads {
			for _, mix := range Fig5Mixes {
				cells = append(cells, boundsCell{load: load, mix: mix})
			}
		}
		for _, load := range Fig9Loads {
			for _, mix := range Fig9Mixes {
				cells = append(cells, boundsCell{fatMesh: true, load: load, mix: mix})
			}
		}
		return cells
	}
	// Smoke grid: corners that exercise both fabrics — certifiable mixed
	// and pure-RT single-switch cells, a saturating pure-RT cell the model
	// must decline, and a certifiable plus a declining fat-mesh cell.
	return []boundsCell{
		{load: 0.60, mix: 0.5},
		{load: 0.60, mix: 1.0},
		{load: 0.90, mix: 1.0},
		{fatMesh: true, load: 0.70, mix: 0.4},
		{fatMesh: true, load: 0.90, mix: 0.8},
	}
}

// BoundsSweep runs the full figure grid: Table 2 loads × Fig. 5 mixes on
// the single switch plus the Fig. 9 load/mix grid on the 2×2 fat-mesh.
func BoundsSweep(opt Options) (*BoundsReport, error) {
	return boundsSweep(opt, boundsGrid(true),
		"bound is the per-stream network-calculus delay bound (internal/calculus); "+
			"observed is the worst delivered message latency per stream; "+
			"uncertified streams carry an infinite bound (model declines the operating point)")
}

// BoundsSmoke runs a reduced five-cell grid — both fabrics, certifiable and
// saturating corners — sized for CI.
func BoundsSmoke(opt Options) (*BoundsReport, error) {
	return boundsSweep(opt, boundsGrid(false), "reduced CI grid; see BoundsSweep for the full one")
}

func boundsSweep(opt Options, cells []boundsCell, notes string) (*BoundsReport, error) {
	opt = opt.normalized()
	pts, err := runner.Map(context.Background(), len(cells),
		runner.Options{Workers: opt.Parallel},
		func(_ context.Context, i int) (BoundsPoint, error) {
			return runBoundsPoint(opt, cells[i])
		})
	if err != nil {
		var re *runner.Error
		if errors.As(err, &re) {
			c := cells[re.Index]
			return nil, fmt.Errorf("bounds sweep at load %.2f mix %.2f: %w", c.load, c.mix, re.Err)
		}
		return nil, fmt.Errorf("bounds sweep: %w", err)
	}
	return &BoundsReport{Cells: pts, Notes: notes}, nil
}

// CalculusParams maps a simulator configuration onto the analytic model's
// parameters for the given operating point. Exported so CLIs and examples
// price the exact configuration they simulate.
func CalculusParams(cfg mediaworm.Config, fatMesh bool, load, rtShare float64, rtVCs int) (calculus.Params, error) {
	kind, err := sched.ParseKind(string(cfg.Policy))
	if err != nil {
		return calculus.Params{}, err
	}
	p := calculus.Params{
		Topology:         calculus.SingleSwitch,
		Nodes:            cfg.Ports,
		LinkBandwidthBps: cfg.LinkBandwidthBps,
		FlitBits:         cfg.FlitBits,
		MsgFlits:         cfg.MsgFlits,
		VCs:              cfg.VCs,
		RTVCs:            rtVCs,
		Policy:           kind,
		FrameBytes:       cfg.FrameBytes,
		FrameBytesSD:     cfg.FrameBytesSD,
		IntervalSec:      cfg.FrameInterval.Seconds(),
		BestEffortLoad:   load * (1 - rtShare),
	}
	if fatMesh {
		p.Topology = calculus.FatMesh2x2
		p.Nodes = 16
	}
	return p, nil
}

func runBoundsPoint(opt Options, cell boundsCell) (BoundsPoint, error) {
	base := baseConfig(opt)
	rtVCs := traffic.PartitionVCs(base.VCs, cell.mix)
	eng := sim.NewEngine()
	rcfg := coreConfigFrom(base, rtVCs)
	var (
		net *topology.Net
		err error
	)
	if cell.fatMesh {
		rcfg.Ports = 8
		net, err = topology.FatMesh2x2(eng, rcfg)
	} else {
		net, err = topology.SingleSwitch(eng, rcfg)
	}
	if err != nil {
		return BoundsPoint{}, err
	}

	warmup := sim.Time(base.Warmup.Nanoseconds())
	stop := warmup + sim.Time(base.Measure.Nanoseconds())
	interval := sim.Time(base.FrameInterval.Nanoseconds())

	// Per-stream worst observed message latency, injection to tail
	// delivery. The bound claims every message, warmup included: an
	// initially empty fabric only helps, so no window filtering.
	observed := map[int]sim.Time{}
	for _, s := range net.Sinks {
		s.OnMessage = func(m *flit.Message, at sim.Time) {
			if m.Class == flit.BestEffort {
				return
			}
			if lat := at - m.Injected; lat > observed[m.StreamID] {
				observed[m.StreamID] = lat
			}
		}
	}

	w, err := traffic.Apply(eng, net, traffic.MixConfig{
		Load: cell.load, RTShare: cell.mix, Class: flit.VBR,
		LinkBitsPerSec: base.LinkBandwidthBps,
		FlitBits:       base.FlitBits, MsgFlits: base.MsgFlits,
		FrameBytes: base.FrameBytes, FrameBytesSD: base.FrameBytesSD,
		Interval: interval, VCs: base.VCs, RTVCs: rtVCs,
		Stop: stop, Seed: opt.Seed,
	})
	if err != nil {
		return BoundsPoint{}, err
	}

	eng.Run(stop)
	eng.Drain()
	if err := net.Fabric.CheckDrained(); err != nil {
		return BoundsPoint{}, err
	}

	params, err := CalculusParams(base, cell.fatMesh, cell.load, cell.mix, rtVCs)
	if err != nil {
		return BoundsPoint{}, err
	}
	model, err := calculus.New(params)
	if err != nil {
		return BoundsPoint{}, err
	}
	// Price the realized placement, not the balanced ideal: registration
	// order does not matter, so bounds are placement-exact.
	for _, st := range w.Streams {
		model.Register(st.Src(), st.Dst())
	}

	norm := paperIntervalMs / (base.FrameInterval.Seconds() * 1000)
	point := BoundsPoint{
		Fabric:  "single-switch",
		Load:    cell.load,
		RTShare: cell.mix,
		Streams: len(w.Streams),
	}
	if cell.fatMesh {
		point.Fabric = "fat-mesh"
	}
	var slacks []float64
	for _, st := range w.Streams {
		boundMs := model.DelayBoundSec(st.Src(), st.Dst()) * 1e3 * norm
		if math.IsInf(boundMs, 1) {
			continue
		}
		point.Certified++
		if boundMs > point.WorstBoundMs {
			point.WorstBoundMs = boundMs
		}
		lat, delivered := observed[st.ID()]
		if !delivered {
			continue
		}
		obsMs := float64(lat) / 1e6 * norm
		point.Compared++
		if obsMs > point.WorstObservedMs {
			point.WorstObservedMs = obsMs
		}
		if obsMs > boundMs {
			point.Violations++
		}
		if obsMs > 0 {
			slacks = append(slacks, boundMs/obsMs)
		}
	}
	point.MedianSlack = median(slacks)
	bits, _ := model.MaxBacklogBits()
	point.MaxBacklogKbits = bits / 1e3
	return point, nil
}

// median returns the middle value of vs (mean of the middle two for even
// lengths), or 0 for an empty slice. vs is reordered.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	if n := len(vs); n%2 == 1 {
		return vs[n/2]
	} else {
		return (vs[n/2-1] + vs[n/2]) / 2
	}
}
