package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"mediaworm"
	"mediaworm/internal/runner"
)

// Fig3Loads are the input-link loads of the paper's Fig. 3 sweep.
var Fig3Loads = []float64{0.60, 0.70, 0.80, 0.90, 0.96}

// Fig3 — Virtual Clock vs FIFO (16 VCs, 400 Mb/s, 80:20 VBR:best-effort):
// the motivating result. The FIFO-scheduled router jitters beyond ~0.8 load;
// Virtual Clock stays jitter-free far longer.
func Fig3(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "fig3",
		Title:  "Virtual Clock vs FIFO (16 VCs, 80:20 mix)",
		XLabel: "load",
	}
	policies := []mediaworm.Policy{mediaworm.VirtualClock, mediaworm.FIFO}
	var cfgs []mediaworm.Config
	for _, policy := range policies {
		for _, load := range Fig3Loads {
			cfg := baseConfig(opt)
			cfg.Policy = policy
			cfg.Load = load
			cfg.RTShare = 0.8
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	for i, policy := range policies {
		fig.Series = append(fig.Series, Series{
			Label:  string(policy),
			Points: pts[i*len(Fig3Loads) : (i+1)*len(Fig3Loads)],
		})
	}
	return fig, nil
}

// Fig4 — CBR vs VBR with no best-effort traffic (16 VCs, 400 Mb/s):
// nearly identical curves, CBR marginally better.
func Fig4(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "fig4",
		Title:  "CBR vs VBR traffic (16 VCs, 400 Mb/s, no best-effort)",
		XLabel: "load",
	}
	classes := []mediaworm.TrafficClass{mediaworm.VBR, mediaworm.CBR}
	var cfgs []mediaworm.Config
	for _, class := range classes {
		for _, load := range Fig3Loads {
			cfg := baseConfig(opt)
			cfg.Class = class
			cfg.Load = load
			cfg.RTShare = 1.0
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	for i, class := range classes {
		fig.Series = append(fig.Series, Series{
			Label:  string(class),
			Points: pts[i*len(Fig3Loads) : (i+1)*len(Fig3Loads)],
		})
	}
	return fig, nil
}

// Fig5Mixes are the x:y real-time:best-effort proportions of Fig. 5.
var Fig5Mixes = []float64{0.2, 0.5, 0.8, 0.9, 1.0}

// Table2Loads are the loads of Table 2's best-effort latency grid.
var Table2Loads = []float64{0.60, 0.70, 0.80, 0.90, 0.96}

// Table2 is the paper's best-effort latency grid (µs), with "Sat." marking
// saturation.
type Table2 struct {
	Mixes []float64 // RT shares (rows)
	Loads []float64 // columns
	Cells [][]Point // [mix][load]
	Notes string
}

// Fprint renders Table 2. Replicated cells carry their 95% confidence
// half-width as "mean±ci".
func (t *Table2) Fprint(w io.Writer) {
	fmt.Fprintln(w, "== table2: Average latency for best-effort traffic (µs) ==")
	header := []string{"x:y"}
	for _, l := range t.Loads {
		header = append(header, fmt.Sprintf("load %.2f", l))
	}
	rows := [][]string{header}
	for i, mix := range t.Mixes {
		row := []string{fmt.Sprintf("%d:%d", int(mix*100+0.5), int((1-mix)*100+0.5))}
		for _, p := range t.Cells[i] {
			switch {
			case p.BESaturated:
				row = append(row, "Sat.")
			case p.Replicas > 1:
				row = append(row, fmt.Sprintf("%.1f±%.1f", p.BELatencyUs, p.BECI95))
			default:
				row = append(row, fmt.Sprintf("%.1f", p.BELatencyUs))
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// Fig5Table2 runs the mixed-traffic sweep once and reports both Fig. 5
// (d, σd per mix and load) and Table 2 (best-effort latency grid; the
// 100:0 mix carries no best-effort traffic and is excluded, as in the
// paper).
func Fig5Table2(opt Options) (*Figure, *Table2, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "fig5",
		Title:  "Mixed traffic (16 VCs): jitter vs mix at each load",
		XLabel: "x:y",
		XIsMix: true,
	}
	tab := &Table2{Loads: Table2Loads}
	for _, mix := range Fig5Mixes {
		if mix < 1 {
			tab.Mixes = append(tab.Mixes, mix)
		}
	}
	tab.Cells = make([][]Point, len(tab.Mixes))
	// Series per load, points per mix (the paper's Fig. 5 x-axis is the
	// mix proportion).
	var cfgs []mediaworm.Config
	for _, load := range Table2Loads {
		for _, mix := range Fig5Mixes {
			cfg := baseConfig(opt)
			cfg.Load = load
			cfg.RTShare = mix
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, nil, fmt.Errorf("fig5: %w", err)
	}
	i := 0
	for _, load := range Table2Loads {
		s := Series{Label: fmt.Sprintf("load %.2f", load)}
		for mi, mix := range Fig5Mixes {
			p := pts[i]
			i++
			s.Points = append(s.Points, p)
			if mix < 1 {
				tab.Cells[mi] = append(tab.Cells[mi], p)
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, tab, nil
}

// Fig6Loads are the loads of the VC/crossbar capability sweep.
var Fig6Loads = []float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.96}

// Fig6 — impact of VCs and crossbar capability (400 Mb/s, 100:0 VBR):
// 16/8/4 VCs on a multiplexed crossbar, and 4 VCs on a full crossbar.
func Fig6(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "fig6",
		Title:  "Impact of VCs and crossbar capability (100:0 VBR)",
		XLabel: "load",
	}
	variants := []struct {
		label string
		vcs   int
		full  bool
	}{
		{"16 VC mux", 16, false},
		{"8 VC mux", 8, false},
		{"4 VC mux", 4, false},
		{"4 VC full", 4, true},
	}
	var cfgs []mediaworm.Config
	for _, v := range variants {
		for _, load := range Fig6Loads {
			cfg := baseConfig(opt)
			cfg.VCs = v.vcs
			cfg.FullCrossbar = v.full
			cfg.Load = load
			cfg.RTShare = 1.0
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	for i, v := range variants {
		fig.Series = append(fig.Series, Series{
			Label:  v.label,
			Points: pts[i*len(Fig6Loads) : (i+1)*len(Fig6Loads)],
		})
	}
	return fig, nil
}

// Fig7Loads are the two representative loads of the message-size study.
var Fig7Loads = []float64{0.64, 0.80}

// Fig7MsgSizes returns the message sizes swept: the paper's 20/40/80/160
// flits plus a whole-frame message (the paper's 2560-flit point, scaled
// with the frame).
func Fig7MsgSizes(opt Options) []int {
	opt = opt.normalized()
	cfg := baseConfig(opt)
	frameFlits := int(cfg.FrameBytes*8)/cfg.FlitBits + 2
	return []int{20, 40, 80, 160, frameFlits}
}

// Fig7 — effect of message size on jitter (16 VCs, 100:0 VBR): little
// impact except header overhead at very small sizes.
func Fig7(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "fig7",
		Title:  "Effect of message size on jitter (16 VCs)",
		XLabel: "load",
		Notes:  "series are message sizes in flits; the largest carries a whole frame per message (the paper's 2560-flit point, scaled)",
	}
	sizes := Fig7MsgSizes(opt)
	var cfgs []mediaworm.Config
	for _, size := range sizes {
		for _, load := range Fig7Loads {
			cfg := baseConfig(opt)
			cfg.MsgFlits = size
			cfg.Load = load
			cfg.RTShare = 1.0
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	for i, size := range sizes {
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("%d flits", size),
			Points: pts[i*len(Fig7Loads) : (i+1)*len(Fig7Loads)],
		})
	}
	return fig, nil
}

// Fig8Loads are the loads of the wormhole/PCS comparison (100 Mb/s links).
var Fig8Loads = []float64{0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90}

// Fig8 — MediaWorm vs PCS (8×8 switch, 100 Mb/s, 24 VCs). PCS reserves a
// VC per stream and stays jitter-free slightly longer; MediaWorm accepts
// every stream.
func Fig8(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "fig8",
		Title:  "MediaWorm vs PCS (8×8, 100 Mb/s, 24 VCs)",
		XLabel: "load",
	}
	var wormCfgs []mediaworm.Config
	for _, load := range Fig8Loads {
		cfg := baseConfig(opt)
		cfg.LinkBandwidthBps = 100e6
		cfg.VCs = 24
		cfg.Load = load
		cfg.RTShare = 1.0
		wormCfgs = append(wormCfgs, cfg)
	}
	wormPts, err := runGrid(opt, wormCfgs)
	if err != nil {
		return nil, fmt.Errorf("fig8 wormhole: %w", err)
	}
	fig.Series = append(fig.Series, Series{Label: "wormhole", Points: wormPts})

	base := baseConfig(opt)
	var pcsCfgs []mediaworm.PCSConfig
	for _, load := range Fig8Loads {
		cfg := mediaworm.DefaultPCSConfig()
		cfg.FrameBytes = base.FrameBytes
		cfg.FrameBytesSD = base.FrameBytesSD
		cfg.FrameInterval = base.FrameInterval
		cfg.Warmup = base.Warmup
		cfg.Measure = base.Measure
		cfg.Seed = opt.Seed
		cfg.Load = load
		pcsCfgs = append(pcsCfgs, cfg)
	}
	pcsPts, err := runPCSGrid(opt, pcsCfgs)
	if err != nil {
		return nil, fmt.Errorf("fig8 PCS: %w", err)
	}
	fig.Series = append(fig.Series, Series{Label: "PCS", Points: pcsPts})
	return fig, nil
}

// Table3Loads are the paper's Table 3 target loads.
var Table3Loads = []float64{0.37, 0.42, 0.64, 0.67, 0.74, 0.80, 0.87, 0.91}

// Table3 reports PCS connection admission: attempted, established and
// dropped connections per target load.
type Table3 struct {
	Rows  []mediaworm.PCSResult
	Loads []float64
	Notes string
}

// Fprint renders Table 3.
func (t *Table3) Fprint(w io.Writer) {
	fmt.Fprintln(w, "== table3: PCS connection admission ==")
	rows := [][]string{{"load", "#attempts", "#established", "#dropped", "drop%"}}
	for i, r := range t.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", t.Loads[i]),
			fmt.Sprintf("%d", r.Attempts),
			fmt.Sprintf("%d", r.Established),
			fmt.Sprintf("%d", r.Dropped),
			fmt.Sprintf("%.0f%%", 100*float64(r.Dropped)/math.Max(1, float64(r.Attempts))),
		})
	}
	writeAligned(w, rows)
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// RunTable3 reproduces Table 3 with blind (random-VC) probes filling an
// idle 8×8, 24-VC, 100 Mb/s switch to each target load.
func RunTable3(opt Options) *Table3 {
	opt = opt.normalized()
	t := &Table3{
		Loads: Table3Loads,
		Notes: "probes pick input and output VCs blindly (no backtracking); established connections persist — see DESIGN.md §7",
	}
	// PCSAdmission is infallible and combinatorial (no simulation), but the
	// rows are independent — run them through the same pool.
	t.Rows, _ = runner.Map(context.Background(), len(Table3Loads),
		runner.Options{Workers: opt.Parallel},
		func(_ context.Context, i int) (mediaworm.PCSResult, error) {
			return mediaworm.PCSAdmission(8, 24, 25, Table3Loads[i], opt.Seed), nil
		})
	return t
}

// Fig9Mixes and Fig9Loads parameterize the fat-mesh study.
var (
	Fig9Mixes = []float64{0.4, 0.6, 0.8}
	Fig9Loads = []float64{0.70, 0.80, 0.90}
)

// Fig9 — the (2×2) fat-mesh: d, σd and best-effort latency versus mix at
// each load. Series are loads; rows are mixes, matching the paper's plots.
func Fig9(opt Options) (*Figure, error) {
	opt = opt.normalized()
	fig := &Figure{
		ID:     "fig9",
		Title:  "(2×2) fat-mesh: VBR jitter and best-effort latency",
		XLabel: "x:y",
		XIsMix: true,
		Notes:  "best-effort latency per point is printed by cmd/paperfigs alongside (Fig. 9(c))",
	}
	var cfgs []mediaworm.Config
	for _, load := range Fig9Loads {
		for _, mix := range Fig9Mixes {
			cfg := baseConfig(opt)
			cfg.Topology = mediaworm.FatMesh2x2
			cfg.Load = load
			cfg.RTShare = mix
			cfgs = append(cfgs, cfg)
		}
	}
	pts, err := runGrid(opt, cfgs)
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	for i, load := range Fig9Loads {
		fig.Series = append(fig.Series, Series{
			Label:  fmt.Sprintf("load %.2f", load),
			Points: pts[i*len(Fig9Mixes) : (i+1)*len(Fig9Mixes)],
		})
	}
	return fig, nil
}

// Fig9BestEffort renders Fig. 9(c): the fat-mesh's best-effort latency (µs)
// per mix (rows) and load (columns), from an already-computed Fig9 result.
func Fig9BestEffort(fig *Figure, w io.Writer) {
	fmt.Fprintln(w, "== fig9c: fat-mesh best-effort latency (µs) ==")
	header := []string{"x:y"}
	for _, s := range fig.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i := range fig.Series[0].Points {
		row := []string{fmtX(fig.Series[0].Points[i], true)}
		for _, s := range fig.Series {
			p := s.Points[i]
			switch {
			case p.BESaturated:
				row = append(row, "Sat.")
			case p.Replicas > 1:
				row = append(row, fmt.Sprintf("%.1f±%.1f", p.BELatencyUs, p.BECI95))
			default:
				row = append(row, fmt.Sprintf("%.1f", p.BELatencyUs))
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}

// Table1 prints the simulation parameters (the paper's Table 1).
func Table1(w io.Writer) {
	cfg := mediaworm.DefaultConfig()
	fmt.Fprintln(w, "== table1: Simulation parameters ==")
	rows := [][]string{
		{"Switch Size", fmt.Sprintf("%d x %d", cfg.Ports, cfg.Ports)},
		{"Flit Size", fmt.Sprintf("%d bits", cfg.FlitBits)},
		{"Message Size", fmt.Sprintf("%d flits", cfg.MsgFlits)},
		{"Flit Buffers", fmt.Sprintf("%d flits", cfg.BufferDepth)},
		{"PC Bandwidth", fmt.Sprintf("%.0f Mbps", cfg.LinkBandwidthBps/1e6)},
		{"VCs/PC", fmt.Sprintf("%d (wormhole), 24 (PCS)", cfg.VCs)},
		{"Streams/VC", "variable (wormhole), 1 (PCS)"},
	}
	writeAligned(w, rows)
	fmt.Fprintln(w)
}
