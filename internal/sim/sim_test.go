package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Drain()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of scheduling order: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	e := NewEngine()
	var seen []Time
	e.At(7, func() { seen = append(seen, e.Now()) })
	e.At(42, func() { seen = append(seen, e.Now()) })
	e.Drain()
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 42 {
		t.Fatalf("Now() inside events = %v, want [7 42]", seen)
	}
}

func TestAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Drain()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Drain()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event not scheduled")
	}
	e.Cancel(ev)
	if ev.Scheduled() {
		t.Fatal("cancelled event still scheduled")
	}
	e.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// double-cancel and zero-cancel are no-ops
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var fired []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i), func() { fired = append(fired, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Drain()
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestHorizonStopsBeforeEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(1000, func() { fired = true })
	end := e.Run(500)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 500 || e.Now() != 500 {
		t.Fatalf("clock at %d after Run(500)", e.Now())
	}
	// The event must still fire when the horizon extends.
	e.Run(2000)
	if !fired {
		t.Fatal("event did not fire after horizon extension")
	}
}

func TestHorizonInclusive(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(500, func() { fired = true })
	e.Run(500)
	if !fired {
		t.Fatal("event exactly at horizon should fire")
	}
}

func TestEmptyRunAdvancesToHorizon(t *testing.T) {
	e := NewEngine()
	e.Run(123)
	if e.Now() != 123 {
		t.Fatalf("empty run left clock at %d, want 123", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(Forever)
	if count != 3 {
		t.Fatalf("Stop did not halt run: %d events fired", count)
	}
	// Run can resume.
	e.Run(Forever)
	if count != 10 {
		t.Fatalf("resume after Stop fired %d total, want 10", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 100 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	e.Drain()
	if depth != 100 {
		t.Fatalf("chained scheduling reached depth %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("clock at %d, want 99", e.Now())
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	ev := e.At(10, func() {})
	e.Cancel(ev)
	e.Drain()
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5 (cancelled events must not count)", e.Processed())
	}
}

func TestPending(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatal("fresh engine has pending events")
	}
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Drain()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

// Property: for any multiset of schedule times, execution order is a sorted
// permutation of the input.
func TestPropertyExecutionIsSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Drain()
		if len(fired) != len(raw) {
			return false
		}
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if (33 * Millisecond).Milliseconds() != 33 {
		t.Fatal("Milliseconds conversion")
	}
	if (2 * Second).Seconds() != 2 {
		t.Fatal("Seconds conversion")
	}
	if (5 * Microsecond).Microseconds() != 5 {
		t.Fatal("Microseconds conversion")
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.At(0, tick)
	b.ResetTimer()
	e.Drain()
}

// Property: random interleavings of scheduling and cancelling still execute
// exactly the never-cancelled events, in time order.
func TestPropertyScheduleCancelStress(t *testing.T) {
	seedRand := func(seed int64) func() uint32 {
		s := uint64(seed)*2654435761 + 1
		return func() uint32 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return uint32(s)
		}
	}
	for seed := int64(1); seed <= 30; seed++ {
		rnd := seedRand(seed)
		e := NewEngine()
		type rec struct {
			ev        Event
			at        Time
			cancelled bool
		}
		var recs []*rec
		fired := map[*rec]bool{}
		for i := 0; i < 200; i++ {
			switch rnd() % 3 {
			case 0, 1: // schedule
				r := &rec{at: Time(rnd() % 10000)}
				r.ev = e.At(r.at, func() { fired[r] = true })
				recs = append(recs, r)
			case 2: // cancel a random earlier event
				if len(recs) > 0 {
					r := recs[rnd()%uint32(len(recs))]
					e.Cancel(r.ev)
					r.cancelled = true
				}
			}
		}
		e.Drain()
		for i, r := range recs {
			if r.cancelled && fired[r] {
				t.Fatalf("seed %d: cancelled event %d fired", seed, i)
			}
			if !r.cancelled && !fired[r] {
				t.Fatalf("seed %d: live event %d lost", seed, i)
			}
		}
	}
}

func TestEventScheduledLifecycle(t *testing.T) {
	e := NewEngine()
	ev := e.At(5, func() {})
	if !ev.Scheduled() {
		t.Fatal("pending event not Scheduled")
	}
	e.Drain()
	if ev.Scheduled() {
		t.Fatal("fired event still Scheduled")
	}
	var zero Event
	if zero.Scheduled() {
		t.Fatal("zero event Scheduled")
	}
}
