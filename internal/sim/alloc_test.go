package sim

import "testing"

// These tests are the PR's zero-allocation contract, checked with
// testing.AllocsPerRun rather than benchmarks so `go test` enforces them on
// every run. "Steady state" means after warm-up: the arena and heap have
// grown to working-set size and every schedule is served from the free list.
// Callbacks are created outside the measured functions — a closure literal
// inside the loop would charge its own allocation to the engine.

// warmEngine returns an engine whose arena and heap have capacity for at
// least n simultaneously pending events, with the calendar empty.
func warmEngine(n int) *Engine {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < n; i++ {
		e.At(Time(i), fn)
	}
	e.Drain()
	return e
}

func TestAtZeroAllocSteadyState(t *testing.T) {
	const batch = 64
	e := warmEngine(batch)
	fn := func() {}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < batch; i++ {
			e.At(e.Now()+Time(i%7), fn)
		}
		e.Drain()
	})
	if allocs != 0 {
		t.Fatalf("At+Run steady state allocates %v per run, want 0", allocs)
	}
}

func TestAfterZeroAllocSteadyState(t *testing.T) {
	const batch = 64
	e := warmEngine(batch)
	fn := func() {}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < batch; i++ {
			e.After(Time(i%7), fn)
		}
		e.Drain()
	})
	if allocs != 0 {
		t.Fatalf("After+Run steady state allocates %v per run, want 0", allocs)
	}
}

func TestCancelZeroAllocSteadyState(t *testing.T) {
	const batch = 64
	e := warmEngine(batch)
	fn := func() {}
	var evs [batch]Event
	allocs := testing.AllocsPerRun(100, func() {
		for i := range evs {
			evs[i] = e.After(Time(i), fn)
		}
		for i := range evs {
			e.Cancel(evs[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("After+Cancel steady state allocates %v per run, want 0", allocs)
	}
}

// TestRescheduleZeroAllocSteadyState pins the self-rescheduling tick pattern
// used by the fabric cycle driver, the PCS lane ticks and the traffic
// sources: one event armed once, then re-armed from inside its own callback
// every cycle. The whole loop — pop, callback, Reschedule, sift — must not
// allocate.
func TestRescheduleZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	var (
		ev   Event
		n    int
		tick func()
	)
	tick = func() {
		if n--; n > 0 {
			ev = e.Reschedule(ev, e.Now()+1)
		}
	}
	// Warm up one full arm/run cycle so the arena slot exists.
	n = 8
	ev = e.At(e.Now()+1, tick)
	e.Drain()
	allocs := testing.AllocsPerRun(100, func() {
		n = 64
		ev = e.At(e.Now()+1, tick)
		e.Drain()
	})
	if allocs != 0 {
		t.Fatalf("self-rescheduling tick allocates %v per run, want 0", allocs)
	}
}

// TestRescheduleOfPendingZeroAlloc covers the other Reschedule arm: moving a
// still-pending event (the retransmitter re-arming a delivery timer).
func TestRescheduleOfPendingZeroAlloc(t *testing.T) {
	e := warmEngine(4)
	fn := func() {}
	ev := e.At(e.Now()+1000000, fn)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			ev = e.Reschedule(ev, e.Now()+1000000+Time(i%13))
		}
	})
	if allocs != 0 {
		t.Fatalf("Reschedule of pending event allocates %v per run, want 0", allocs)
	}
	e.Cancel(ev)
}

// TestDeepCalendarZeroAlloc runs the tick pattern with 10k unrelated events
// pending, so every push and pop sifts through a deep heap: depth must not
// reintroduce allocations.
func TestDeepCalendarZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	const depth = 10000
	far := Time(1) << 40
	for i := 0; i < depth; i++ {
		e.At(far+Time(i), fn)
	}
	var (
		ev   Event
		n    int
		tick func()
	)
	tick = func() {
		if n--; n > 0 {
			ev = e.Reschedule(ev, e.Now()+1)
		}
	}
	n = 8
	ev = e.At(e.Now()+1, tick)
	e.Run(e.Now() + 8)
	allocs := testing.AllocsPerRun(50, func() {
		n = 64
		ev = e.At(e.Now()+1, tick)
		e.Run(e.Now() + 64)
	})
	if allocs != 0 {
		t.Fatalf("deep-calendar tick allocates %v per run, want 0", allocs)
	}
	if e.Pending() != depth {
		t.Fatalf("background events disturbed: %d pending, want %d", e.Pending(), depth)
	}
}

// --- benchmarks -----------------------------------------------------------

// BenchmarkEngineReschedule measures the steady-state self-rescheduling tick,
// the single hottest engine pattern in a simulation run.
func BenchmarkEngineReschedule(b *testing.B) {
	e := NewEngine()
	var (
		ev   Event
		n    int
		tick func()
	)
	tick = func() {
		if n++; n < b.N {
			ev = e.Reschedule(ev, e.Now()+1)
		}
	}
	ev = e.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Drain()
}

// BenchmarkEngineDeepCalendar is the tick pattern with 10k pending background
// events, exercising sift depth — the case the 4-ary layout targets.
func BenchmarkEngineDeepCalendar(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	far := Time(1) << 40
	for i := 0; i < 10000; i++ {
		e.At(far+Time(i), fn)
	}
	var (
		ev   Event
		n    int
		tick func()
	)
	tick = func() {
		if n++; n < b.N {
			ev = e.Reschedule(ev, e.Now()+1)
		}
	}
	ev = e.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(far - 1)
}

// BenchmarkEngineScheduleCancel measures the timer-churn pattern (arm, then
// cancel before firing), dominated by heapRemove from arbitrary positions.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := warmEngine(256)
	fn := func() {}
	var evs [256]Event
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(evs)
		if evs[j].Scheduled() {
			e.Cancel(evs[j])
		}
		evs[j] = e.After(Time(1+i%97), fn)
	}
}

// BenchmarkEngineFanOut measures bursts of same-instant events: many pushes
// at one key followed by a drain, the pattern of frame-boundary fan-out.
func BenchmarkEngineFanOut(b *testing.B) {
	e := warmEngine(128)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := e.Now() + 1
		for j := 0; j < 128; j++ {
			e.At(at, fn)
		}
		e.Drain()
	}
}
