package sim

import "testing"

// FuzzEngineInterleavings drives the engine with an arbitrary program of
// schedule/cancel/stop/run operations — including operations issued from
// inside running callbacks — and checks the two calendar invariants that
// everything above this package depends on:
//
//  1. events execute in strict (time, scheduling-order) order, and
//  2. a cancelled event never executes.
//
// The byte stream is an opcode tape; exhausting it falls back to zeros, so
// every input is a valid program and the harness never rejects a mutation.
func FuzzEngineInterleavings(f *testing.F) {
	f.Add([]byte{0, 5, 0, 0, 1, 0, 2, 10, 0, 9, 3, 0, 200, 4})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 0})
	f.Add([]byte{3, 0, 0, 0, 7, 5, 2, 3, 0, 1, 2, 2, 255, 4, 0, 0})
	f.Add([]byte{2, 50, 0, 30, 3, 1, 0, 0, 2, 0, 1, 0, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxEvents = 512
		e := NewEngine()
		type rec struct {
			id        int // scheduling order: matches engine seq order
			at        Time
			ev        Event
			cancelled bool
			fired     bool
		}
		var (
			recs []*rec
			last *rec // most recently executed, for order checking
			pos  int
		)
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		var schedule func(depth int)
		schedule = func(depth int) {
			if len(recs) >= maxEvents {
				return
			}
			r := &rec{id: len(recs), at: e.Now() + Time(next()%16)}
			recs = append(recs, r)
			r.ev = e.At(r.at, func() {
				if r.cancelled {
					t.Fatalf("cancelled event %d executed", r.id)
				}
				if r.fired {
					t.Fatalf("event %d executed twice", r.id)
				}
				r.fired = true
				if e.Now() != r.at {
					t.Fatalf("event %d ran at t=%d, scheduled for %d", r.id, e.Now(), r.at)
				}
				if last != nil && (last.at > r.at || (last.at == r.at && last.id > r.id)) {
					t.Fatalf("order violated: (%d,%d) before (%d,%d)",
						last.at, last.id, r.at, r.id)
				}
				last = r
				// Callbacks mutate the calendar mid-run too.
				switch next() % 4 {
				case 0:
					if depth < 8 {
						schedule(depth + 1) // includes at == now: same-instant chains
					}
				case 1:
					if n := len(recs); n > 0 {
						v := recs[int(next())%n]
						e.Cancel(v.ev)
						if !v.fired {
							v.cancelled = true
						}
					}
				case 2:
					e.Stop()
				}
			})
		}
		for ops := 0; ops < 64 && (pos < len(data) || ops == 0); ops++ {
			switch next() % 4 {
			case 0:
				schedule(0)
			case 1:
				if n := len(recs); n > 0 {
					v := recs[int(next())%n]
					e.Cancel(v.ev)
					if !v.fired {
						v.cancelled = true
					}
				}
			case 2:
				e.Run(e.Now() + Time(next()))
			case 3:
				if _, err := e.RunUntilIdle(e.Now()+Time(next()), 1<<20); err != nil {
					t.Fatalf("RunUntilIdle: %v", err)
				}
			}
		}
		// Callbacks may Stop mid-drain; each Drain still executes at least
		// one event first, so re-draining terminates.
		for e.Pending() > 0 {
			e.Drain()
		}
		for _, r := range recs {
			if r.cancelled && r.fired {
				t.Fatalf("cancelled event %d fired", r.id)
			}
			if !r.cancelled && !r.fired {
				t.Fatalf("live event %d never executed", r.id)
			}
		}
	})
}

// TestRunUntilIdleBreaksZeroDelayLoop pins the misuse guard: a model that
// reschedules itself at the current instant would spin Run forever;
// RunUntilIdle returns an error instead of hanging.
func TestRunUntilIdleBreaksZeroDelayLoop(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.At(e.Now(), loop) }
	e.At(10, loop)
	at, err := e.RunUntilIdle(Forever, 1000)
	if err == nil {
		t.Fatal("zero-delay loop not detected")
	}
	if at != 10 {
		t.Fatalf("stuck instant reported as %d, want 10", at)
	}
	if e.Pending() == 0 {
		t.Fatal("guard should leave the pending loop event queued for inspection")
	}
}

// TestRunUntilIdleMatchesRunOnHealthyModel checks the guard is transparent
// for a model that advances time: same events, same final clock as Run.
func TestRunUntilIdleMatchesRunOnHealthyModel(t *testing.T) {
	build := func(e *Engine, fired *[]Time) {
		var tick func()
		n := 0
		tick = func() {
			*fired = append(*fired, e.Now())
			if n++; n < 50 {
				e.After(3, tick)
			}
		}
		e.At(0, tick)
		e.At(60, func() { *fired = append(*fired, e.Now()) })
	}
	var a, b []Time
	ea, eb := NewEngine(), NewEngine()
	build(ea, &a)
	build(eb, &b)
	endA := ea.Run(1000)
	endB, err := eb.RunUntilIdle(1000, 4)
	if err != nil {
		t.Fatalf("RunUntilIdle on healthy model: %v", err)
	}
	if endA != endB || len(a) != len(b) {
		t.Fatalf("diverged from Run: end %d vs %d, %d vs %d events", endA, endB, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d at %d vs %d", i, a[i], b[i])
		}
	}
}

// TestRunUntilIdleToleratesSameInstantFanOut checks that legitimate bursts
// of events sharing an instant pass when idleLimit covers the fan-out.
func TestRunUntilIdleToleratesSameInstantFanOut(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 100; i++ {
		e.At(5, func() { ran++ })
	}
	if _, err := e.RunUntilIdle(Forever, 200); err != nil {
		t.Fatalf("fan-out within limit rejected: %v", err)
	}
	if ran != 100 {
		t.Fatalf("ran %d events, want 100", ran)
	}
}
