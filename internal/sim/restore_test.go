package sim

import (
	"strings"
	"testing"
)

// Rebuilding a calendar from recorded (at, seq) keys must replay in the
// same order as the original, regardless of re-arm order.
func TestScheduleRestoredReplaysOriginalOrder(t *testing.T) {
	src := NewEngine()
	var order []int
	keys := make([][2]int64, 0, 5)
	for i, at := range []Time{30, 10, 10, 20, 30} {
		i := i
		ev := src.At(at, func() { order = append(order, i) })
		at, seq, ok := src.EventKey(ev)
		if !ok {
			t.Fatalf("EventKey not ok for event %d", i)
		}
		keys = append(keys, [2]int64{int64(at), int64(seq)})
	}
	src.Drain()
	want := append([]int(nil), order...)

	// Re-arm in a scrambled order on a fresh engine.
	dst := NewEngine()
	var got []int
	for _, i := range []int{3, 0, 4, 2, 1} {
		i := i
		k := keys[i]
		dst.ScheduleRestored(Time(k[0]), uint64(k[1]), func() { got = append(got, i) })
	}
	if err := dst.RestoreClock(5, uint64(len(keys)), 7); err != nil {
		t.Fatalf("RestoreClock: %v", err)
	}
	if dst.Now() != 5 || dst.Processed() != 7 {
		t.Fatalf("clock not restored: now=%d processed=%d", dst.Now(), dst.Processed())
	}
	dst.Drain()
	if len(got) != len(want) {
		t.Fatalf("replay length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay order %v, want %v", got, want)
		}
	}
}

// New events scheduled after a restore must sort after every restored one
// at the same instant.
func TestRestoredSequenceCounterAdvances(t *testing.T) {
	e := NewEngine()
	var order []string
	e.ScheduleRestored(10, 41, func() { order = append(order, "restored") })
	if err := e.RestoreClock(10, 42, 42); err != nil {
		t.Fatalf("RestoreClock: %v", err)
	}
	e.At(10, func() { order = append(order, "fresh") })
	e.Drain()
	if len(order) != 2 || order[0] != "restored" || order[1] != "fresh" {
		t.Fatalf("order = %v", order)
	}
}

func TestEventKeyStaleHandles(t *testing.T) {
	e := NewEngine()
	if _, _, ok := e.EventKey(Event{}); ok {
		t.Fatal("zero event has a key")
	}
	ev := e.At(5, func() {})
	e.Cancel(ev)
	if _, _, ok := e.EventKey(ev); ok {
		t.Fatal("cancelled event has a key")
	}
}

func TestRestoreClockAudits(t *testing.T) {
	cases := []struct {
		name string
		prep func(e *Engine)
		now  Time
		seq  uint64
		want string
	}{
		{
			name: "event before clock",
			prep: func(e *Engine) { e.ScheduleRestored(3, 0, func() {}) },
			now:  10, seq: 1,
			want: "before restored clock",
		},
		{
			name: "seq not below counter",
			prep: func(e *Engine) { e.ScheduleRestored(10, 9, func() {}) },
			now:  5, seq: 9,
			want: "not below restored counter",
		},
		{
			name: "duplicate seq",
			prep: func(e *Engine) {
				e.ScheduleRestored(10, 4, func() {})
				e.ScheduleRestored(12, 4, func() {})
			},
			now: 5, seq: 9,
			want: "duplicate event seq",
		},
		{
			name: "negative clock",
			prep: func(e *Engine) {},
			now:  -1, seq: 0,
			want: "negative",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine()
			tc.prep(e)
			err := e.RestoreClock(tc.now, tc.seq, 0)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
