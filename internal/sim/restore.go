package sim

import "fmt"

// Checkpoint support. Callbacks are closures and cannot be serialized, so a
// snapshot stores only each pending event's calendar key (at, seq); on
// restore, every component re-arms its own callbacks at those keys via
// ScheduleRestored, and RestoreClock then moves the clock and sequence
// counter into place. Because the execution order is the unique (at, seq)
// total order, the order in which components re-arm is irrelevant — the
// restored run replays byte-identically.

// SeqCounter returns the next sequence number the engine will assign — the
// counter a checkpoint must record so RestoreClock can re-establish it.
func (e *Engine) SeqCounter() uint64 { return e.seq }

// EventKey reports the calendar key of a pending event. ok is false for
// zero, fired, or cancelled handles.
func (e *Engine) EventKey(ev Event) (at Time, seq uint64, ok bool) {
	if ev.e != e || ev.e == nil {
		return 0, 0, false
	}
	s := &e.arena[ev.idx]
	if s.gen != ev.gen || s.heapIdx < 0 {
		return 0, 0, false
	}
	return s.at, s.seq, true
}

// ScheduleRestored arms fn at an explicit calendar key, for re-creating a
// checkpointed event. Unlike At it does not draw a fresh sequence number:
// the caller supplies the key recorded at checkpoint time. The engine's
// own counter is bumped past seq so keys can never collide, but restore
// code must still finish with RestoreClock, which validates the rebuilt
// calendar as a whole.
func (e *Engine) ScheduleRestored(at Time, seq uint64, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: restoring event at %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: restoring event with nil callback")
	}
	i := e.alloc()
	s := &e.arena[i]
	s.at, s.seq, s.fn = at, seq, fn
	if seq >= e.seq {
		e.seq = seq + 1
	}
	e.heapPush(heapEntry{at: at, seq: seq, slot: i})
	return Event{e: e, idx: i, gen: s.gen}
}

// RestoreClock completes a restore: it sets the clock, the sequence
// counter, and the processed-event count, after auditing the rebuilt
// calendar. Every pending event must be scheduled at or after now, carry a
// sequence number below the restored counter, and sequence numbers must be
// unique; the heap-order invariant is re-verified entry by entry. Any
// violation means the snapshot (or the restore code) is corrupt, and the
// engine is left untouched.
func (e *Engine) RestoreClock(now Time, seq, processed uint64) error {
	if now < 0 {
		return fmt.Errorf("sim: restored clock %d is negative", now)
	}
	seen := make(map[uint64]int, len(e.heap))
	for i, ent := range e.heap {
		if ent.at < now {
			return fmt.Errorf("sim: pending event (at=%d, seq=%d) is before restored clock %d", ent.at, ent.seq, now)
		}
		if ent.seq >= seq {
			return fmt.Errorf("sim: pending event seq %d not below restored counter %d", ent.seq, seq)
		}
		if j, dup := seen[ent.seq]; dup {
			return fmt.Errorf("sim: duplicate event seq %d (heap entries %d and %d)", ent.seq, j, i)
		}
		seen[ent.seq] = i
		s := &e.arena[ent.slot]
		if s.at != ent.at || s.seq != ent.seq || s.heapIdx != int32(i) {
			return fmt.Errorf("sim: heap entry %d disagrees with its arena slot", i)
		}
		if i > 0 {
			p := (i - 1) >> 2
			if entryLess(ent, e.heap[p]) {
				return fmt.Errorf("sim: heap order violated at entry %d", i)
			}
		}
	}
	e.now = now
	e.seq = seq
	e.processed = processed
	return nil
}
