// Package sim is a minimal deterministic discrete-event simulation engine.
// It replaces CSIM, the commercial simulation library the MediaWorm paper's
// authors used, with an event-calendar core: components schedule callbacks at
// future instants; the engine executes them in (time, sequence) order so runs
// are exactly reproducible.
//
// Time is measured in integer nanoseconds (type Time). The router kernel in
// internal/core advances cycle-by-cycle on top of this engine: it keeps a
// single self-rescheduling "tick" event alive only while the fabric has work,
// so long idle gaps between video frames cost nothing.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation instant in nanoseconds since the start of the run.
type Time int64

const (
	// Millisecond and friends express durations in engine units.
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000

	// Forever sorts after every reachable simulation instant.
	Forever Time = 1<<63 - 1
)

// Milliseconds reports t as a float64 number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a float64 number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. The zero Event is inert.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index; -1 when not queued
	dead bool
}

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.idx >= 0 && !e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Probe observes engine execution for instrumentation: it is called after
// every executed event with the current time and the calendar depth. The
// observability layer (internal/obs) implements it; a nil probe costs one
// branch per event.
type Probe interface {
	OnEvent(now Time, pending int)
}

// Engine is a discrete-event simulation kernel. It is not safe for concurrent
// use; a simulation run is a single-goroutine computation.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// processed counts executed events, for instrumentation and tests.
	processed uint64
	probe     Probe
}

// SetProbe attaches an execution probe (nil detaches).
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute time at. Events scheduled for the
// same instant run in scheduling order. Scheduling in the past panics: it is
// always a model bug and silently reordering time would corrupt results.
func (e *Engine) At(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead || ev.idx < 0 {
		return
	}
	ev.dead = true
	heap.Remove(&e.queue, ev.idx)
}

// Stop makes the current Run call return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue empties, until an event's time would
// exceed horizon, or until Stop is called. It returns the time of the last
// executed event (or the current time if none ran). The clock is left at
// min(next event time, horizon) ≤ horizon.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.at
		if next.dead {
			continue
		}
		next.dead = true
		e.processed++
		next.fn()
		if e.probe != nil {
			e.probe.OnEvent(e.now, len(e.queue))
		}
	}
	if e.now < horizon && horizon != Forever && len(e.queue) == 0 {
		e.now = horizon
	}
	return e.now
}

// Drain runs until the event queue is empty, with no horizon. Use with
// models that are guaranteed to quiesce.
func (e *Engine) Drain() Time { return e.Run(Forever) }

// RunUntilIdle executes events like Run but guards against calendar
// livelock: a model that keeps rescheduling work at the current instant
// (zero-delay self-scheduling loops) never advances the clock and would
// spin Run forever. If more than idleLimit events execute in a row without
// the clock moving, RunUntilIdle stops and returns an error naming the
// stuck instant, leaving the remaining events queued for inspection.
// idleLimit must be positive; events legitimately sharing an instant count
// against the limit, so size it above the model's fan-out per cycle.
func (e *Engine) RunUntilIdle(horizon Time, idleLimit uint64) (Time, error) {
	if idleLimit == 0 {
		panic("sim: RunUntilIdle needs a positive idleLimit")
	}
	e.stopped = false
	var sameInstant uint64
	last := e.now
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			e.now = horizon
			return e.now, nil
		}
		heap.Pop(&e.queue)
		e.now = next.at
		if next.dead {
			continue
		}
		if e.now == last {
			if sameInstant++; sameInstant > idleLimit {
				heap.Push(&e.queue, next) // leave the offender queued for inspection
				return e.now, fmt.Errorf(
					"sim: no clock progress after %d events at t=%d (zero-delay scheduling loop?)",
					sameInstant, e.now)
			}
		} else {
			sameInstant = 0
			last = e.now
		}
		next.dead = true
		e.processed++
		next.fn()
		if e.probe != nil {
			e.probe.OnEvent(e.now, len(e.queue))
		}
	}
	if e.now < horizon && horizon != Forever && len(e.queue) == 0 {
		e.now = horizon
	}
	return e.now, nil
}
