// Package sim is a minimal deterministic discrete-event simulation engine.
// It replaces CSIM, the commercial simulation library the MediaWorm paper's
// authors used, with an event-calendar core: components schedule callbacks at
// future instants; the engine executes them in (time, sequence) order so runs
// are exactly reproducible.
//
// Time is measured in integer nanoseconds (type Time). The router kernel in
// internal/core advances cycle-by-cycle on top of this engine: it keeps a
// single self-rescheduling "tick" event alive only while the fabric has work,
// so long idle gaps between video frames cost nothing.
//
// The hot path is allocation-free in steady state: events live by value in a
// slot arena recycled through a free list, the calendar is a concrete 4-ary
// min-heap of (time, sequence) keys (no interface dispatch, shallower than a
// binary heap on deep calendars), and Event handles are generation-stamped
// indices so Cancel and Scheduled stay safe after a slot is recycled.
// Self-rescheduling ticks should use Reschedule, which reuses the event's
// slot and callback instead of allocating a closure per cycle. See DESIGN.md
// §13 for the layout and the ordering bit-compatibility argument.
package sim

import "fmt"

// Time is a simulation instant in nanoseconds since the start of the run.
type Time int64

const (
	// Millisecond and friends express durations in engine units.
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000

	// Forever sorts after every reachable simulation instant.
	Forever Time = 1<<63 - 1
)

// Milliseconds reports t as a float64 number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a float64 number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a handle to a scheduled callback: a generation-stamped index into
// the engine's event arena. It is a small value, copied freely; the zero
// Event is inert (never Scheduled, Cancel on it is a no-op). A handle goes
// stale once its event fires without being rescheduled, or is cancelled —
// the generation stamp then stops matching the recycled slot, so operations
// through a stale handle can never touch an unrelated event.
type Event struct {
	e   *Engine
	idx int32
	gen uint32
}

// Scheduled reports whether the event is still pending.
func (ev Event) Scheduled() bool {
	if ev.e == nil {
		return false
	}
	s := &ev.e.arena[ev.idx]
	return s.gen == ev.gen && s.heapIdx >= 0
}

// slot states, stored in heapIdx when the event is not queued.
const (
	slotFree   int32 = -1 // on the free list
	slotFiring int32 = -2 // callback executing; revivable via Reschedule
)

// eventSlot is one arena cell. Slots are recycled through a free list; gen
// increments on every release so stale Event handles never match.
type eventSlot struct {
	fn      func()
	at      Time
	seq     uint64
	gen     uint32
	heapIdx int32 // position in Engine.heap, or slotFree / slotFiring
	next    int32 // free-list link, meaningful only when heapIdx == slotFree
}

// heapEntry is one calendar key. Keys are stored by value so sift compares
// touch one contiguous array instead of chasing per-event pointers; the slot
// index is only dereferenced to maintain heapIdx and at pop time.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

func entryLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Probe observes engine execution for instrumentation: it is called after
// every executed event with the current time and the calendar depth. The
// observability layer (internal/obs) implements it; a nil probe costs one
// branch per event.
type Probe interface {
	OnEvent(now Time, pending int)
}

// Engine is a discrete-event simulation kernel. It is not safe for concurrent
// use; a simulation run is a single-goroutine computation.
type Engine struct {
	now      Time
	heap     []heapEntry
	arena    []eventSlot
	freeHead int32
	seq      uint64
	stopped  bool
	// processed counts executed events, for instrumentation and tests.
	processed uint64
	probe     Probe
}

// SetProbe attaches an execution probe (nil detaches).
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{freeHead: slotFree}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc takes a slot off the free list, growing the arena only when the
// list is empty — so a warmed-up engine schedules without allocating.
func (e *Engine) alloc() int32 {
	if i := e.freeHead; i >= 0 {
		e.freeHead = e.arena[i].next
		return i
	}
	e.arena = append(e.arena, eventSlot{gen: 1}) //mw:hotpath — arena growth on an empty free list; the steady state recycles slots without allocating (alloc_test.go)
	return int32(len(e.arena) - 1)
}

// release recycles a slot: the generation bump invalidates every outstanding
// handle, and dropping fn releases the callback (and whatever it captures)
// for the garbage collector.
func (e *Engine) release(i int32) {
	s := &e.arena[i]
	s.fn = nil
	s.gen++
	s.heapIdx = slotFree
	s.next = e.freeHead
	e.freeHead = i
}

// At schedules fn to run at the absolute time at. Events scheduled for the
// same instant run in scheduling order. Scheduling in the past panics: it is
// always a model bug and silently reordering time would corrupt results.
//
//mw:hotpath
func (e *Engine) At(at Time, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, e.now))
	}
	i := e.alloc()
	s := &e.arena[i]
	s.at, s.seq, s.fn = at, e.seq, fn
	e.seq++
	e.heapPush(heapEntry{at: at, seq: s.seq, slot: i})
	return Event{e: e, idx: i, gen: s.gen}
}

// After schedules fn to run delay nanoseconds from now.
//
//mw:hotpath
func (e *Engine) After(delay Time, fn func()) Event {
	return e.At(e.now+delay, fn)
}

// Cancel removes a pending event. Cancelling a fired, already-cancelled or
// zero event is a no-op.
//
//mw:hotpath
func (e *Engine) Cancel(ev Event) {
	if ev.e != e || ev.e == nil {
		return
	}
	s := &e.arena[ev.idx]
	if s.gen != ev.gen || s.heapIdx < 0 {
		return
	}
	e.heapRemove(int(s.heapIdx))
	e.release(ev.idx)
}

// Reschedule moves ev to the absolute time at, reusing its slot and callback.
// It is exactly Cancel + At with the same fn — the event takes a fresh
// sequence number, so among events sharing an instant it runs in reschedule
// order — but performs no allocation. The primary caller is a
// self-rescheduling tick: from inside the callback the handle is still
// valid, and rescheduling there re-arms the same event for the next cycle.
// Rescheduling a completed, cancelled or zero event panics: the slot may
// already belong to someone else, and silently scheduling a stale callback
// would corrupt the model. Use At to arm a fresh event after a gap.
//
//mw:hotpath
func (e *Engine) Reschedule(ev Event, at Time) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: rescheduling at %d before now %d", at, e.now))
	}
	if ev.e != e || ev.e == nil {
		panic("sim: Reschedule of a zero or foreign event")
	}
	s := &e.arena[ev.idx]
	if s.gen != ev.gen {
		panic("sim: Reschedule of a stale event handle")
	}
	switch {
	case s.heapIdx >= 0: // pending: move within the calendar
		s.at, s.seq = at, e.seq
		e.seq++
		e.heapFix(int(s.heapIdx), at, s.seq)
	case s.heapIdx == slotFiring: // self-reschedule from inside fn
		s.at, s.seq = at, e.seq
		e.seq++
		e.heapPush(heapEntry{at: at, seq: s.seq, slot: ev.idx})
	default:
		panic("sim: Reschedule of a cancelled or completed event")
	}
	return ev
}

// Stop makes the current Run call return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// fire executes the event at heap root (already bounds-checked by the
// caller) and recycles its slot unless the callback rescheduled it.
func (e *Engine) fire(root heapEntry) {
	e.heapPopRoot()
	i := root.slot
	e.arena[i].heapIdx = slotFiring
	e.processed++
	e.arena[i].fn()
	// Re-index: the callback may have scheduled events and grown the arena.
	if e.arena[i].heapIdx == slotFiring {
		e.release(i)
	}
}

// Run executes events until the queue empties, until an event's time would
// exceed horizon, or until Stop is called. It returns the time of the last
// executed event (or the current time if none ran). The clock is left at
// min(next event time, horizon) ≤ horizon.
//
//mw:hotpath
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		root := e.heap[0]
		if root.at > horizon {
			e.now = horizon
			return e.now
		}
		e.now = root.at
		e.fire(root)
		if e.probe != nil {
			e.probe.OnEvent(e.now, len(e.heap))
		}
	}
	if e.now < horizon && horizon != Forever && len(e.heap) == 0 {
		e.now = horizon
	}
	return e.now
}

// Drain runs until the event queue is empty, with no horizon. Use with
// models that are guaranteed to quiesce.
func (e *Engine) Drain() Time { return e.Run(Forever) }

// RunUntilIdle executes events like Run but guards against calendar
// livelock: a model that keeps rescheduling work at the current instant
// (zero-delay self-scheduling loops) never advances the clock and would
// spin Run forever. If more than idleLimit events execute in a row without
// the clock moving, RunUntilIdle stops and returns an error naming the
// stuck instant, leaving the remaining events queued for inspection.
// idleLimit must be positive; events legitimately sharing an instant count
// against the limit, so size it above the model's fan-out per cycle.
func (e *Engine) RunUntilIdle(horizon Time, idleLimit uint64) (Time, error) {
	if idleLimit == 0 {
		panic("sim: RunUntilIdle needs a positive idleLimit")
	}
	e.stopped = false
	var sameInstant uint64
	last := e.now
	for len(e.heap) > 0 && !e.stopped {
		root := e.heap[0]
		if root.at > horizon {
			e.now = horizon
			return e.now, nil
		}
		e.now = root.at
		if e.now == last {
			if sameInstant++; sameInstant > idleLimit {
				// The offender stays queued for inspection.
				return e.now, fmt.Errorf(
					"sim: no clock progress after %d events at t=%d (zero-delay scheduling loop?)",
					sameInstant, e.now)
			}
		} else {
			sameInstant = 0
			last = e.now
		}
		e.fire(root)
		if e.probe != nil {
			e.probe.OnEvent(e.now, len(e.heap))
		}
	}
	if e.now < horizon && horizon != Forever && len(e.heap) == 0 {
		e.now = horizon
	}
	return e.now, nil
}

// Calendar: a 4-ary min-heap on (at, seq). Compared with the binary heap it
// replaces, a 4-ary layout halves the tree depth — fewer cache lines touched
// per sift on deep calendars — at the cost of up to three extra comparisons
// per level, which stay within the same two cache lines. The pop order is
// the unique (at, seq) total order, so heap arity cannot affect execution
// order; see DESIGN.md §13.

// heapPush appends an entry and sifts it up.
func (e *Engine) heapPush(ent heapEntry) {
	e.heap = append(e.heap, ent) //mw:hotpath — calendar growth to the pending working set; capacity is retained across pops
	e.siftUp(len(e.heap) - 1)
}

// heapPopRoot removes the minimum entry (the caller has already copied it).
func (e *Engine) heapPopRoot() {
	h := e.heap
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if n > 0 {
		e.heap[0] = last
		e.arena[last.slot].heapIdx = 0
		e.siftDown(0)
	}
}

// heapRemove deletes the entry at index i.
func (e *Engine) heapRemove(i int) {
	h := e.heap
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if i < n {
		e.heap[i] = last
		e.arena[last.slot].heapIdx = int32(i)
		e.siftDown(i)
		e.siftUp(i)
	}
}

// heapFix rekeys the entry at index i and restores heap order.
func (e *Engine) heapFix(i int, at Time, seq uint64) {
	e.heap[i].at, e.heap[i].seq = at, seq
	e.siftDown(i)
	e.siftUp(i)
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(ent, h[p]) {
			break
		}
		h[i] = h[p]
		e.arena[h[i].slot].heapIdx = int32(i)
		i = p
	}
	h[i] = ent
	e.arena[ent.slot].heapIdx = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ent := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[best]) {
				best = j
			}
		}
		if !entryLess(h[best], ent) {
			break
		}
		h[i] = h[best]
		e.arena[h[i].slot].heapIdx = int32(i)
		i = best
	}
	h[i] = ent
	e.arena[ent.slot].heapIdx = int32(i)
}
