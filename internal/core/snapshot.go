package core

import (
	"fmt"

	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
	"mediaworm/internal/snapshot"
)

// Checkpoint support. The router's structural shape (ports, VCs, buffer
// capacities, crossbar kind, policy) is rebuilt from the run configuration;
// a snapshot carries only the mutable state: buffered flits, per-VC worm
// progress, the FCFS request queues, arbiter state, virtual clocks, fault
// flags, and counters. Scratch buffers (candidate slices, claim maps) are
// per-cycle and never live across an event, so they are not state. The wire
// format is layout-independent: the struct-of-arrays tables serialize in
// the same (port, vc) nesting order as the original per-object layout, and
// the request arena lists serialize as their FIFO walk.

// CollectMessages registers every message the router holds a reference to.
func (r *Router) CollectMessages(tbl *flit.MsgTable) {
	for i := range r.inv {
		in := &r.inv[i]
		collectRing(tbl, &in.q)
		tbl.Add(in.recvMsg)
		tbl.Add(in.headMsg)
	}
	for i := range r.outv {
		ov := &r.outv[i]
		collectRing(tbl, &ov.stage)
		tbl.Add(ov.busy)
	}
}

func collectRing(tbl *flit.MsgTable, rg *ring) {
	for i := 0; i < rg.n; i++ {
		tbl.Add(rg.buf[(rg.head+i)%len(rg.buf)].Msg)
	}
}

// BufferedFlits counts the flits the router currently buffers (input VC
// rings plus output staging), for the fabric's flit-conservation audit.
func (r *Router) BufferedFlits() int {
	total := 0
	for i := range r.inv {
		total += r.inv[i].q.len()
	}
	for i := range r.outv {
		total += r.outv[i].stage.len()
	}
	return total
}

// EncodeState writes the router's mutable state. Messages must already be
// collected into tbl.
func (r *Router) EncodeState(w *snapshot.Writer, tbl *flit.MsgTable) error {
	w.U64(r.seq)
	w.Int(r.rtVCs)
	w.Time(r.now)
	encodeStats(w, &r.stats)
	for p := range r.portStats {
		w.U64(r.portStats[p].FlitsDropped)
		w.U64(r.portStats[p].StallCycles)
	}
	for p := range r.linkUp {
		w.Bool(r.linkUp[p])
		w.Bool(r.stalled[p])
	}
	for p := 0; p < len(r.outs); p++ {
		if err := sched.EncodeArbiter(w, r.inArbs[p]); err != nil {
			return err
		}
		for v := 0; v < r.nvc; v++ {
			in := r.inAt(p, v)
			encodeRing(w, tbl, &in.q)
			w.U64(tbl.Ref(in.recvMsg))
			w.Time(in.recvClk.Aux())
			w.Int(in.received)
			w.U8(uint8(in.phase))
			w.U64(tbl.Ref(in.headMsg))
			w.Int(in.outPort)
			w.Int(in.outVC)
			w.Time(in.grantedAt)
			w.U64(in.reqSeq)
		}
	}
	for p := 0; p < len(r.outs); p++ {
		op := &r.outs[p]
		if err := sched.EncodeArbiter(w, op.arb); err != nil {
			return err
		}
		w.Int(int(op.reqLen))
		for n := op.reqHead; n >= 0; n = r.reqNodes[n].next {
			node := &r.reqNodes[n]
			w.Int(int(node.in) / r.nvc)
			w.Int(int(node.in) % r.nvc)
			w.Time(node.at)
			w.U64(node.seq)
		}
		w.Int(int(op.stale))
		for v := 0; v < r.nvc; v++ {
			ov := r.outAt(p, v)
			encodeRing(w, tbl, &ov.stage)
			w.U64(tbl.Ref(ov.busy))
			w.Time(ov.clk.Aux())
		}
	}
	return tbl.Err()
}

// RestoreState overwrites a freshly-built router's mutable state from rd.
// Buffer capacities double as the credit-conservation check: a snapshot
// claiming more flits in a buffer than the credit protocol could ever have
// admitted is rejected.
func (r *Router) RestoreState(rd *snapshot.Reader, tbl *flit.MsgTable) error {
	r.seq = rd.U64()
	rtVCs := rd.Int()
	r.now = rd.Time()
	restoreStats(rd, &r.stats)
	if err := rd.Err(); err != nil {
		return err
	}
	if rtVCs < 0 || rtVCs > r.cfg.VCs {
		return &snapshot.InvariantError{
			Invariant: "vc-partition",
			Detail:    fmt.Sprintf("router %d: rtVCs %d outside [0, %d]", r.cfg.ID, rtVCs, r.cfg.VCs),
		}
	}
	r.rtVCs = rtVCs
	for p := range r.portStats {
		r.portStats[p].FlitsDropped = rd.U64()
		r.portStats[p].StallCycles = rd.U64()
	}
	for p := range r.linkUp {
		r.linkUp[p] = rd.Bool()
		r.stalled[p] = rd.Bool()
	}
	for p := 0; p < len(r.outs); p++ {
		if err := sched.RestoreArbiter(rd, r.inArbs[p]); err != nil {
			return fmt.Errorf("router %d input port %d: %w", r.cfg.ID, p, err)
		}
		for v := 0; v < r.nvc; v++ {
			in := r.inAt(p, v)
			if err := restoreRing(rd, tbl, &in.q, fmt.Sprintf("router %d in[%d][%d]", r.cfg.ID, p, v)); err != nil {
				return err
			}
			var err error
			if in.recvMsg, err = tbl.Get(rd.U64()); err != nil {
				return err
			}
			sched.RestoreVClock(rd, &in.recvClk)
			in.received = rd.Int()
			phase := rd.U8()
			if in.headMsg, err = tbl.Get(rd.U64()); err != nil {
				return err
			}
			in.outPort = rd.Int()
			in.outVC = rd.Int()
			in.grantedAt = rd.Time()
			in.reqSeq = rd.U64()
			if err := rd.Err(); err != nil {
				return err
			}
			if phase > uint8(vcActive) {
				return &snapshot.InvariantError{
					Invariant: "vc-phase",
					Detail:    fmt.Sprintf("router %d in[%d][%d]: phase %d", r.cfg.ID, p, v, phase),
				}
			}
			in.phase = vcPhase(phase)
			if in.phase != vcIdle && (in.outPort < 0 || in.outPort >= r.cfg.Ports ||
				in.outVC < 0 || in.outVC >= r.cfg.VCs) {
				return &snapshot.InvariantError{
					Invariant: "crossbar-target",
					Detail: fmt.Sprintf("router %d in[%d][%d]: out port %d vc %d",
						r.cfg.ID, p, v, in.outPort, in.outVC),
				}
			}
			if in.recvMsg != nil && (in.received <= 0 || in.received >= in.recvMsg.Flits) {
				return &snapshot.InvariantError{
					Invariant: "worm-progress",
					Detail: fmt.Sprintf("router %d in[%d][%d]: received %d of %d-flit message",
						r.cfg.ID, p, v, in.received, in.recvMsg.Flits),
				}
			}
		}
	}
	for p := 0; p < len(r.outs); p++ {
		op := &r.outs[p]
		if err := sched.RestoreArbiter(rd, op.arb); err != nil {
			return fmt.Errorf("router %d output port %d: %w", r.cfg.ID, p, err)
		}
		nreqs := rd.Len()
		// Reset the port's request list into the arena free list before
		// rebuilding it from the snapshot.
		for n := op.reqHead; n >= 0; {
			next := r.reqNodes[n].next
			r.freeReq(n)
			n = next
		}
		op.reqHead, op.reqTail = -1, -1
		op.reqLen = 0
		for i := 0; i < nreqs; i++ {
			inPort := rd.Int()
			vc := rd.Int()
			at := rd.Time()
			seq := rd.U64()
			if err := rd.Err(); err != nil {
				return err
			}
			if inPort < 0 || inPort >= r.cfg.Ports || vc < 0 || vc >= r.cfg.VCs {
				return &snapshot.InvariantError{
					Invariant: "request-origin",
					Detail:    fmt.Sprintf("router %d out[%d] request %d: in %d/%d", r.cfg.ID, p, i, inPort, vc),
				}
			}
			n := r.allocReq()
			r.reqNodes[n] = reqNode{in: int32(inPort*r.nvc + vc), next: -1, at: at, seq: seq}
			r.pushReq(op, n)
		}
		stale := rd.Int()
		if err := rd.Err(); err != nil {
			return err
		}
		if stale < 0 || stale > nreqs {
			return &snapshot.InvariantError{
				Invariant: "request-queue",
				Detail:    fmt.Sprintf("router %d out[%d]: %d stale of %d requests", r.cfg.ID, p, stale, nreqs),
			}
		}
		op.stale = int32(stale)
		for v := 0; v < r.nvc; v++ {
			ov := r.outAt(p, v)
			if err := restoreRing(rd, tbl, &ov.stage, fmt.Sprintf("router %d out[%d][%d]", r.cfg.ID, p, v)); err != nil {
				return err
			}
			var err error
			if ov.busy, err = tbl.Get(rd.U64()); err != nil {
				return err
			}
			sched.RestoreVClock(rd, &ov.clk)
		}
	}
	return rd.Err()
}

func encodeStats(w *snapshot.Writer, s *Stats) {
	w.U64(s.FlitsSwitched)
	w.U64(s.FlitsTransmitted)
	w.U64(s.MessagesRouted)
	w.U64(s.RequestsQueued)
	w.U64(s.FlitsDropped)
	w.U64(s.MessagesKilled)
	w.U64(s.BlockedNotGranted)
	w.U64(s.BlockedJustMoved)
	w.U64(s.BlockedStageFull)
	w.U64(s.BlockedClaimed)
	w.U64(s.GrantWait)
	w.U64(s.GrantWaitCount)
}

func restoreStats(rd *snapshot.Reader, s *Stats) {
	s.FlitsSwitched = rd.U64()
	s.FlitsTransmitted = rd.U64()
	s.MessagesRouted = rd.U64()
	s.RequestsQueued = rd.U64()
	s.FlitsDropped = rd.U64()
	s.MessagesKilled = rd.U64()
	s.BlockedNotGranted = rd.U64()
	s.BlockedJustMoved = rd.U64()
	s.BlockedStageFull = rd.U64()
	s.BlockedClaimed = rd.U64()
	s.GrantWait = rd.U64()
	s.GrantWaitCount = rd.U64()
}

// encodeRing writes a flit FIFO oldest-first.
func encodeRing(w *snapshot.Writer, tbl *flit.MsgTable, rg *ring) {
	w.Int(rg.n)
	for i := 0; i < rg.n; i++ {
		tbl.EncodeFlit(w, rg.buf[(rg.head+i)%len(rg.buf)])
	}
}

// restoreRing refills a flit FIFO, enforcing its capacity — the credit
// protocol can never buffer more flits than the ring holds, so a snapshot
// claiming otherwise is corrupt.
func restoreRing(rd *snapshot.Reader, tbl *flit.MsgTable, rg *ring, what string) error {
	n := rd.Len()
	if err := rd.Err(); err != nil {
		return err
	}
	if n > len(rg.buf) {
		return &snapshot.InvariantError{
			Invariant: "credit-conservation",
			Detail:    fmt.Sprintf("%s: %d flits in a %d-slot buffer", what, n, len(rg.buf)),
		}
	}
	for i := range rg.buf {
		rg.buf[i] = flit.Flit{}
	}
	rg.head, rg.n = 0, 0
	for i := 0; i < n; i++ {
		f, err := tbl.DecodeFlit(rd)
		if err != nil {
			return fmt.Errorf("%s flit %d: %w", what, i, err)
		}
		rg.push(f)
	}
	return nil
}
