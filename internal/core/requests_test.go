package core

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
)

// reqConfig returns a router where every output VC must be held exclusively,
// so concurrent headers to one endpoint VC pile up in the stage-3 request
// queue — the surface the lazy-retirement compaction manages.
func reqConfig() Config {
	cfg := testConfig(sched.VirtualClock)
	cfg.VCs = 4
	cfg.RTVCs = 4
	cfg.ExclusiveEndpointVCs = true
	return cfg
}

// TestRemoveRequestCompactsAndZeroes pins the stage-3 queue hygiene: killing
// messages with queued crossbar requests retires the entries in O(1), the
// next cycle's allocation pass compacts them out preserving FCFS order, and
// the vacated backing-array slots are zeroed so dropped requests release
// their references (the same leak class the ring buffer's pop zeroing
// addresses).
func TestRemoveRequestCompactsAndZeroes(t *testing.T) {
	r, caps := build(t, reqConfig())
	msgs := make([]*flit.Message, 4)
	for v := 0; v < 4; v++ {
		msgs[v] = msg(uint64(v+1), 1, 0, 2, 100)
		deliver(r, 0, v, msgs[v], period)
	}
	// All four headers are visible: stage 2 submits four requests for
	// (port 1, VC 0); stage 3 grants the first and keeps three.
	r.Step(3 * period)
	backing := r.out[1].reqs
	if len(backing) != 3 {
		t.Fatalf("queued requests = %d, want 3", len(backing))
	}

	msgs[1].Kill()
	msgs[2].Kill()
	r.Step(4 * period)

	if got := len(r.out[1].reqs); got != 1 {
		t.Fatalf("requests after reaping two dead heads = %d, want 1", got)
	}
	if in := r.out[1].reqs[0].in; in != &r.in[0].vcs[3] {
		t.Fatalf("surviving request is not the FCFS-next live header")
	}
	if r.out[1].stale != 0 {
		t.Fatalf("stale counter = %d after compaction, want 0", r.out[1].stale)
	}
	// The compaction must zero every vacated slot of the backing array.
	for i := 1; i < len(backing); i++ {
		if backing[i] != (request{}) {
			t.Fatalf("vacated request slot %d still holds %+v", i, backing[i])
		}
	}

	// Drain: the two live messages are delivered, the dead ones reaped.
	final := run(r, 5*period, 40)
	_ = final
	if !r.Quiesced() {
		t.Fatal("router did not quiesce after draining")
	}
	if got := r.stats.FlitsDropped; got != 4 {
		t.Fatalf("FlitsDropped = %d, want 4 (two 2-flit dead messages)", got)
	}
	delivered := map[uint64]int{}
	for _, f := range caps[1].flits {
		delivered[f.Msg.ID]++
	}
	if delivered[1] != 2 || delivered[4] != 2 || len(delivered) != 2 {
		t.Fatalf("delivered flits per message = %v, want {1:2 4:2}", delivered)
	}
}

// TestRetiredRequestCoexistsWithResubmission covers the same-cycle hazard:
// a VC whose dead head is reaped resubmits a request for the next buffered
// header in the same stage-2 pass, so the retired entry and the new live
// entry briefly share the queue. The seq match must grant only the live one.
func TestRetiredRequestCoexistsWithResubmission(t *testing.T) {
	r, caps := build(t, reqConfig())
	blocker := msg(1, 1, 0, 2, 100)
	dead := msg(2, 1, 0, 2, 100)
	next := msg(3, 1, 0, 2, 100)
	deliver(r, 0, 0, blocker, period)
	t1 := deliver(r, 0, 1, dead, period)
	deliver(r, 0, 1, next, t1) // queued behind dead on the same VC
	r.Step(4 * period)         // blocker granted; dead's request queued
	if len(r.out[1].reqs) != 1 {
		t.Fatalf("queued requests = %d, want 1", len(r.out[1].reqs))
	}

	dead.Kill()
	r.Step(5 * period) // reap retires dead's entry, next's header resubmits
	reqs := r.out[1].reqs
	if len(reqs) != 1 || reqs[0].in != &r.in[0].vcs[1] || reqs[0].in.headMsg != next {
		t.Fatalf("live request not preserved across retirement: %+v", reqs)
	}

	run(r, 6*period, 40)
	if !r.Quiesced() {
		t.Fatal("router did not quiesce")
	}
	delivered := map[uint64]int{}
	for _, f := range caps[1].flits {
		delivered[f.Msg.ID]++
	}
	if delivered[1] != 2 || delivered[3] != 2 || len(delivered) != 2 {
		t.Fatalf("delivered flits per message = %v, want {1:2 3:2}", delivered)
	}
}

// TestSetLinkUpZeroesClearedRequests pins the interaction between lazy
// retirement and link failure: taking a link down resets the live waiters
// for rerouting and zeroes the cleared queue so no request slot keeps its
// references past the clear.
func TestSetLinkUpZeroesClearedRequests(t *testing.T) {
	r, _ := build(t, reqConfig())
	blocker := msg(1, 1, 0, 4, 100)
	waiter := msg(2, 1, 0, 2, 100)
	deliver(r, 0, 0, blocker, period)
	deliver(r, 0, 1, waiter, period)
	r.Step(3 * period) // blocker granted on port 1, waiter queued
	backing := r.out[1].reqs
	if len(backing) != 1 {
		t.Fatalf("queued requests = %d, want 1", len(backing))
	}

	r.SetLinkUp(1, false)
	if got := len(r.out[1].reqs); got != 0 {
		t.Fatalf("request queue not cleared on link down: %d", got)
	}
	if backing[:1][0] != (request{}) {
		t.Fatal("cleared request slot not zeroed")
	}
	if ph := r.in[0].vcs[1].phase; ph != vcIdle {
		t.Fatalf("waiter phase = %v after link down, want vcIdle for rerouting", ph)
	}

	// With the only route dead, the next cycles kill and reap both worms;
	// the router must come back to a clean quiescent state.
	run(r, 4*period, 40)
	if !r.Quiesced() {
		t.Fatal("router did not quiesce after link failure")
	}
	if !blocker.Dead || !waiter.Dead {
		t.Fatal("messages straddling or routed to the dead link not killed")
	}
}
