package core

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
)

// reqConfig returns a router where every output VC must be held exclusively,
// so concurrent headers to one endpoint VC pile up in the stage-3 request
// queue — the surface the lazy-retirement arena discipline manages.
func reqConfig() Config {
	cfg := testConfig(sched.VirtualClock)
	cfg.VCs = 4
	cfg.RTVCs = 4
	cfg.ExclusiveEndpointVCs = true
	return cfg
}

// reqIdxs walks output port p's FCFS request list, returning the flat
// input-VC index of each node in queue order.
func reqIdxs(r *Router, p int) []int32 {
	var out []int32
	for n := r.outs[p].reqHead; n >= 0; n = r.reqNodes[n].next {
		out = append(out, r.reqNodes[n].in)
	}
	return out
}

// freeCount walks the request arena's free list.
func freeCount(r *Router) int {
	c := 0
	for n := r.reqFree; n >= 0; n = r.reqNodes[n].next {
		c++
	}
	return c
}

// TestRemoveRequestCompactsAndZeroes pins the stage-3 queue hygiene: killing
// messages with queued crossbar requests retires the entries in O(1), the
// next cycle's allocation pass frees them back to the arena preserving FCFS
// order among survivors, and freed nodes are cleared so dropped requests
// release their state (the same leak class the ring buffer's pop zeroing
// addresses).
func TestRemoveRequestCompactsAndZeroes(t *testing.T) {
	r, caps := build(t, reqConfig())
	msgs := make([]*flit.Message, 4)
	for v := 0; v < 4; v++ {
		msgs[v] = msg(uint64(v+1), 1, 0, 2, 100)
		deliver(r, 0, v, msgs[v], period)
	}
	// All four headers are visible: stage 2 submits four requests for
	// (port 1, VC 0); stage 3 grants the first and keeps three.
	r.Step(3 * period)
	if got := reqIdxs(r, 1); len(got) != 3 {
		t.Fatalf("queued requests = %d, want 3", len(got))
	}
	nodes := len(r.reqNodes)

	msgs[1].Kill()
	msgs[2].Kill()
	r.Step(4 * period)

	live := reqIdxs(r, 1)
	if len(live) != 1 {
		t.Fatalf("requests after reaping two dead heads = %d, want 1", len(live))
	}
	if live[0] != 3 { // port 0, VC 3 — the FCFS-next live header
		t.Fatalf("surviving request is input VC %d, want 3", live[0])
	}
	if r.outs[1].stale != 0 {
		t.Fatalf("stale counter = %d after compaction, want 0", r.outs[1].stale)
	}
	// Freed nodes are cleared and recirculate through the free list; the
	// arena itself must not have grown.
	if len(r.reqNodes) != nodes {
		t.Fatalf("request arena grew %d → %d during retirement", nodes, len(r.reqNodes))
	}
	for n := r.reqFree; n >= 0; n = r.reqNodes[n].next {
		if r.reqNodes[n].in != -1 || r.reqNodes[n].at != 0 || r.reqNodes[n].seq != 0 {
			t.Fatalf("freed request node %d still holds %+v", n, r.reqNodes[n])
		}
	}
	if freeCount(r) == 0 {
		t.Fatal("no freed nodes on the arena free list")
	}

	// Drain: the two live messages are delivered, the dead ones reaped.
	final := run(r, 5*period, 40)
	_ = final
	if !r.Quiesced() {
		t.Fatal("router did not quiesce after draining")
	}
	if got := r.stats.FlitsDropped; got != 4 {
		t.Fatalf("FlitsDropped = %d, want 4 (two 2-flit dead messages)", got)
	}
	delivered := map[uint64]int{}
	for _, f := range caps[1].flits {
		delivered[f.Msg.ID]++
	}
	if delivered[1] != 2 || delivered[4] != 2 || len(delivered) != 2 {
		t.Fatalf("delivered flits per message = %v, want {1:2 4:2}", delivered)
	}
}

// TestRetiredRequestCoexistsWithResubmission covers the same-cycle hazard:
// a VC whose dead head is reaped resubmits a request for the next buffered
// header in the same stage-2 pass, so the retired node and the new live
// node briefly share the queue. The seq match must grant only the live one.
func TestRetiredRequestCoexistsWithResubmission(t *testing.T) {
	r, caps := build(t, reqConfig())
	blocker := msg(1, 1, 0, 2, 100)
	dead := msg(2, 1, 0, 2, 100)
	next := msg(3, 1, 0, 2, 100)
	deliver(r, 0, 0, blocker, period)
	t1 := deliver(r, 0, 1, dead, period)
	deliver(r, 0, 1, next, t1) // queued behind dead on the same VC
	r.Step(4 * period)         // blocker granted; dead's request queued
	if got := reqIdxs(r, 1); len(got) != 1 {
		t.Fatalf("queued requests = %d, want 1", len(got))
	}

	dead.Kill()
	r.Step(5 * period) // reap retires dead's entry, next's header resubmits
	live := reqIdxs(r, 1)
	if len(live) != 1 || live[0] != 1 || r.inv[1].headMsg != next {
		t.Fatalf("live request not preserved across retirement: idxs=%v head=%v", live, r.inv[1].headMsg)
	}

	run(r, 6*period, 40)
	if !r.Quiesced() {
		t.Fatal("router did not quiesce")
	}
	delivered := map[uint64]int{}
	for _, f := range caps[1].flits {
		delivered[f.Msg.ID]++
	}
	if delivered[1] != 2 || delivered[3] != 2 || len(delivered) != 2 {
		t.Fatalf("delivered flits per message = %v, want {1:2 3:2}", delivered)
	}
}

// TestSetLinkUpZeroesClearedRequests pins the interaction between lazy
// retirement and link failure: taking a link down resets the live waiters
// for rerouting and frees the cleared queue's nodes so no request slot
// keeps its state past the clear.
func TestSetLinkUpZeroesClearedRequests(t *testing.T) {
	r, _ := build(t, reqConfig())
	blocker := msg(1, 1, 0, 4, 100)
	waiter := msg(2, 1, 0, 2, 100)
	deliver(r, 0, 0, blocker, period)
	deliver(r, 0, 1, waiter, period)
	r.Step(3 * period) // blocker granted on port 1, waiter queued
	if got := reqIdxs(r, 1); len(got) != 1 {
		t.Fatalf("queued requests = %d, want 1", len(got))
	}

	freeBefore := freeCount(r)
	r.SetLinkUp(1, false)
	if got := reqIdxs(r, 1); len(got) != 0 {
		t.Fatalf("request queue not cleared on link down: %d", len(got))
	}
	if r.outs[1].reqLen != 0 || r.outs[1].stale != 0 {
		t.Fatalf("reqLen/stale = %d/%d after clear, want 0/0", r.outs[1].reqLen, r.outs[1].stale)
	}
	if freeCount(r) != freeBefore+1 {
		t.Fatalf("cleared request node not returned to the free list")
	}
	if ph := r.inv[1].phase; ph != vcIdle {
		t.Fatalf("waiter phase = %v after link down, want vcIdle for rerouting", ph)
	}

	// With the only route dead, the next cycles kill and reap both worms;
	// the router must come back to a clean quiescent state.
	run(r, 4*period, 40)
	if !r.Quiesced() {
		t.Fatal("router did not quiesce after link failure")
	}
	if !blocker.Dead || !waiter.Dead {
		t.Fatal("messages straddling or routed to the dead link not killed")
	}
}
