package core

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

const period = 80 * sim.Nanosecond

// capture records flits a consumer accepts, with unlimited credit.
type capture struct {
	flits []flit.Flit
	limit func(vc int) bool // optional credit limiter
}

func (c *capture) HasCredit(vc int) bool {
	if c.limit != nil {
		return c.limit(vc)
	}
	return true
}
func (c *capture) Accept(vc int, f flit.Flit) { c.flits = append(c.flits, f) }

// testConfig returns a 2-port, 2-VC router config routing on msg.Dst.
func testConfig(policy sched.Kind) Config {
	return Config{
		Ports:       2,
		VCs:         2,
		RTVCs:       1,
		BufferDepth: 20,
		StageDepth:  4,
		Policy:      policy,
		Period:      period,
		Route:       func(_ int, m *flit.Message, buf []int) []int { return append(buf, m.Dst) },
	}
}

// build creates a router with capture consumers on each output port.
func build(t *testing.T, cfg Config) (*Router, []*capture) {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]*capture, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		caps[p] = &capture{}
		r.Connect(p, caps[p], true)
	}
	return r, caps
}

// msg builds an n-flit real-time message src→dst with the given Vtick.
func msg(id uint64, dst, dstVC, flits int, vtick sim.Time) *flit.Message {
	class := flit.VBR
	if vtick == sim.Forever {
		class = flit.BestEffort
	}
	return &flit.Message{
		ID: id, StreamID: int(id), Class: class, MsgsInFrame: 1,
		Flits: flits, Vtick: vtick, Dst: dst, DstVC: dstVC,
	}
}

// deliver injects all flits of m into (port, vc) at successive cycles
// starting at arrival time t0 (one flit per cycle, like a link), stepping
// the router along; it returns the time after the last delivery.
func deliver(r *Router, port, vc int, m *flit.Message, t0 sim.Time) sim.Time {
	t := t0
	for i := 0; i < m.Flits; i++ {
		r.Deliver(port, vc, flit.Flit{Msg: m, Seq: i, Enq: t})
		t += period
	}
	return t
}

// run steps the router n cycles starting at time start.
func run(r *Router, start sim.Time, n int) sim.Time {
	t := start
	for i := 0; i < n; i++ {
		r.Step(t)
		t += period
	}
	return t
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Ports = 0 },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.RTVCs = -1 },
		func(c *Config) { c.RTVCs = c.VCs + 1 },
		func(c *Config) { c.BufferDepth = 0 },
		func(c *Config) { c.StageDepth = 0 },
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.Route = nil },
	}
	for i, mutate := range bad {
		cfg := testConfig(sched.FIFO)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	if _, err := New(testConfig(sched.FIFO)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSingleMessageTraversal(t *testing.T) {
	r, caps := build(t, testConfig(sched.VirtualClock))
	m := msg(1, 1, 0, 5, 100)
	// Flits arrive starting at t=period (cycle 1).
	deliver(r, 0, 0, m, period)
	run(r, 0, 40)

	got := caps[1].flits
	if len(got) != 5 {
		t.Fatalf("delivered %d flits, want 5", len(got))
	}
	for i, f := range got {
		if f.Msg != m || f.Seq != i {
			t.Fatalf("flit %d out of order: %+v", i, f)
		}
	}
	// Header pipeline latency: arrival at cycle 1, stage-1 visible cycle 2,
	// routing+allocation (overlapped stages 2–3) cycle 2, crossbar cycle 3,
	// transmit cycle 4, downstream arrival (Enq) cycle 5.
	if got[0].Enq != 5*period {
		t.Fatalf("header arrived at %v, want %v", got[0].Enq, 5*period)
	}
	// Subsequent flits stream one per cycle.
	for i := 1; i < 5; i++ {
		if got[i].Enq != got[i-1].Enq+period {
			t.Fatalf("flit %d not back-to-back: %v after %v", i, got[i].Enq, got[i-1].Enq)
		}
	}
	if caps[0].flits != nil {
		t.Fatal("flits leaked to the wrong output port")
	}
	if !r.Quiesced() {
		t.Fatal("router not quiesced after drain")
	}
	st := r.Stats()
	if st.FlitsSwitched != 5 || st.FlitsTransmitted != 5 || st.MessagesRouted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSingleFlitMessage(t *testing.T) {
	r, caps := build(t, testConfig(sched.FIFO))
	m := msg(1, 0, 0, 1, 100)
	deliver(r, 1, 0, m, period)
	run(r, 0, 20)
	if len(caps[0].flits) != 1 {
		t.Fatalf("1-flit message delivered %d flits", len(caps[0].flits))
	}
	if !r.Quiesced() {
		t.Fatal("not quiesced")
	}
}

func TestCredits(t *testing.T) {
	cfg := testConfig(sched.FIFO)
	cfg.BufferDepth = 3
	r, _ := build(t, cfg)
	m := msg(1, 1, 0, 3, 100)
	if !r.HasCredit(0, 0) {
		t.Fatal("fresh router should have credit")
	}
	deliver(r, 0, 0, m, period)
	if r.HasCredit(0, 0) {
		t.Fatal("full buffer should have no credit")
	}
	if !r.HasCredit(0, 1) || !r.HasCredit(1, 0) {
		t.Fatal("other VCs/ports should be unaffected")
	}
	run(r, 0, 20)
	if !r.HasCredit(0, 0) {
		t.Fatal("credit not restored after drain")
	}
}

func TestBufferOverflowPanics(t *testing.T) {
	cfg := testConfig(sched.FIFO)
	cfg.BufferDepth = 2
	r, _ := build(t, cfg)
	m := msg(1, 1, 0, 3, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("credit violation did not panic")
		}
	}()
	deliver(r, 0, 0, m, period) // 3 flits into depth-2 buffer, never stepped
}

func TestOutputPortSharesBandwidth(t *testing.T) {
	// Two messages from different input ports to the same output port on
	// different output VCs: the crossbar output is matched per cycle, so
	// the physical channel carries exactly one flit per cycle and both
	// messages interleave rather than one blocking the other outright.
	r, caps := build(t, testConfig(sched.FIFO))
	a := msg(1, 1, 0, 4, 100)
	b := msg(2, 1, 1, 4, 100)
	deliver(r, 0, 0, a, period)
	deliver(r, 1, 0, b, period)
	run(r, 0, 40)
	got := caps[1].flits
	if len(got) != 8 {
		t.Fatalf("delivered %d flits, want 8", len(got))
	}
	// Link capacity: one flit per cycle, strictly increasing arrivals.
	for i := 1; i < len(got); i++ {
		if got[i].Enq < got[i-1].Enq+period {
			t.Fatalf("output link exceeded one flit per cycle at %d", i)
		}
	}
	// Per-message flit order must still be preserved.
	seqs := map[*flit.Message]int{}
	for _, f := range got {
		if f.Seq != seqs[f.Msg] {
			t.Fatalf("message flits reordered: %+v", f)
		}
		seqs[f.Msg]++
	}
	// Both messages must finish within one link-serialized window plus
	// pipeline depth: 8 flits + 6 cycles of pipeline.
	if last := got[7].Enq; last > 16*period {
		t.Fatalf("messages did not share the output port: last flit at %v", last)
	}
}

func TestSharedEndpointVCInterleaves(t *testing.T) {
	// Endpoint-port output VCs are shared (§4.2.1 multiplexes connections
	// onto a VC): two messages with the same DstVC proceed concurrently and
	// the sink reassembles them per message.
	cfg := testConfig(sched.FIFO)
	cfg.FullCrossbar = true
	r, caps := build(t, cfg)
	a := msg(1, 1, 0, 4, 100)
	b := msg(2, 1, 0, 4, 100)
	deliver(r, 0, 0, a, period)
	deliver(r, 1, 0, b, period)
	run(r, 0, 50)
	got := caps[1].flits
	if len(got) != 8 {
		t.Fatalf("delivered %d, want 8", len(got))
	}
	// Both messages' flits stay internally ordered.
	seqs := map[*flit.Message]int{}
	for _, f := range got {
		if f.Seq != seqs[f.Msg] {
			t.Fatalf("per-message flit order broken: %+v", f)
		}
		seqs[f.Msg]++
	}
	// Concurrency: the second message's header arrives before the first's
	// tail (they share the link cycle-by-cycle).
	if got[1].Msg == got[0].Msg && got[2].Msg == got[0].Msg && got[3].Msg == got[0].Msg {
		t.Fatal("messages fully serialized despite shared endpoint VC")
	}
}

func TestTransitOutputVCSerializes(t *testing.T) {
	// On a transit (router-to-router) port the downstream demultiplexes by
	// VC, so two messages needing the same class partition VC serialize at
	// message granularity when only one VC exists.
	cfg := testConfig(sched.FIFO)
	cfg.VCs = 2
	cfg.RTVCs = 1 // exactly one real-time VC on the transit link
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vcc := &vcCapture{}
	r.Connect(0, &capture{}, true)
	r.Connect(1, vcc, false)
	seq := &captureSeq{}
	r.Connect(1, seq, false)
	a := msg(1, 1, 0, 4, 100)
	b := msg(2, 1, 0, 4, 100)
	deliver(r, 0, 0, a, period)
	deliver(r, 1, 0, b, period)
	run(r, 0, 60)
	if len(seq.flits) != 8 {
		t.Fatalf("delivered %d, want 8", len(seq.flits))
	}
	first := seq.flits[0].Msg
	for i := 1; i < 4; i++ {
		if seq.flits[i].Msg != first {
			t.Fatal("transit VC shared by two in-flight messages")
		}
	}
}

// captureSeq records flits in arrival order with unlimited credit.
type captureSeq struct{ flits []flit.Flit }

func (c *captureSeq) HasCredit(int) bool        { return true }
func (c *captureSeq) Accept(_ int, f flit.Flit) { c.flits = append(c.flits, f) }

func TestFullCrossbarParallelTraversal(t *testing.T) {
	// Two messages from the same input port to different outputs: a full
	// crossbar forwards both each cycle (no input mux), so their delivery
	// windows overlap.
	cfg := testConfig(sched.FIFO)
	cfg.FullCrossbar = true
	cfg.RTVCs = 2
	r, caps := build(t, cfg)
	a := msg(1, 0, 0, 6, 100)
	b := msg(2, 1, 0, 6, 100)
	deliver(r, 0, 0, a, period)
	deliver(r, 0, 1, b, period)
	run(r, 0, 40)
	if len(caps[0].flits) != 6 || len(caps[1].flits) != 6 {
		t.Fatalf("delivered %d/%d, want 6/6", len(caps[0].flits), len(caps[1].flits))
	}
	// Overlap: b's header must arrive before a's tail.
	if caps[1].flits[0].Enq >= caps[0].flits[5].Enq {
		t.Fatal("full crossbar did not parallelize same-input traversal")
	}
}

func TestMultiplexedInputMuxSharesBandwidth(t *testing.T) {
	// Same scenario with a multiplexed crossbar: the input mux serves one
	// flit per cycle, so the two messages share the input port's crossbar
	// bandwidth and each drains at half rate once both are active.
	cfg := testConfig(sched.VirtualClock)
	cfg.RTVCs = 2
	r, caps := build(t, cfg)
	a := msg(1, 0, 0, 6, 100)
	b := msg(2, 1, 0, 6, 100)
	deliver(r, 0, 0, a, period)
	deliver(r, 0, 1, b, period)
	run(r, 0, 60)
	if len(caps[0].flits) != 6 || len(caps[1].flits) != 6 {
		t.Fatalf("delivered %d/%d, want 6/6", len(caps[0].flits), len(caps[1].flits))
	}
	// Tails: combined service is 12 flits through one input mux at 1
	// flit/cycle; last tail cannot beat cycle 12 + pipeline depth.
	lastTail := caps[0].flits[5].Enq
	if caps[1].flits[5].Enq > lastTail {
		lastTail = caps[1].flits[5].Enq
	}
	if lastTail < 14*period {
		t.Fatalf("input mux exceeded one flit/cycle: last tail at %v", lastTail)
	}
}

func TestVirtualClockPrioritizesRealTime(t *testing.T) {
	// A best-effort message and a (later-arriving) real-time message from
	// the same input port to different outputs: Virtual Clock must let the
	// real-time flits through first once both are eligible.
	cfg := testConfig(sched.VirtualClock)
	r, _ := build(t, cfg)
	be := msg(1, 0, 1, 10, sim.Forever) // best-effort on VC 1 (BE partition)
	rt := msg(2, 1, 0, 10, 100)         // real-time on VC 0
	deliver(r, 0, 1, be, period)
	deliver(r, 0, 0, rt, 2*period)
	run(r, 0, 60)
	st := r.Stats()
	if st.FlitsTransmitted != 20 {
		t.Fatalf("transmitted %d flits, want 20", st.FlitsTransmitted)
	}
	// Count best-effort flits switched before the real-time tail.
	// With Virtual Clock, once the RT message is active the mux serves RT
	// first every cycle, so BE finishes after RT.
	if !r.Quiesced() {
		t.Fatal("not quiesced")
	}
}

func TestVirtualClockVsFIFOOrdering(t *testing.T) {
	// Deliver a BE burst first, then an RT message, both to different
	// outputs so the input mux is the only contention point. Under FIFO the
	// BE flits (earlier arrivals) win; under Virtual Clock the RT flits win.
	tailOrder := func(policy sched.Kind) (rtTail, beTail sim.Time) {
		cfg := testConfig(policy)
		r, caps := build(t, cfg)
		be := msg(1, 0, 1, 8, sim.Forever)
		rt := msg(2, 1, 0, 8, 100)
		// Both fully buffered before the router starts stepping.
		deliver(r, 0, 1, be, period)
		deliver(r, 0, 0, rt, period)
		run(r, 0, 80)
		if len(caps[0].flits) != 8 || len(caps[1].flits) != 8 {
			t.Fatalf("%v: delivered %d/%d", policy, len(caps[0].flits), len(caps[1].flits))
		}
		return caps[1].flits[7].Enq, caps[0].flits[7].Enq
	}
	rtTailVC, beTailVC := tailOrder(sched.VirtualClock)
	if rtTailVC >= beTailVC {
		t.Fatalf("virtual clock: RT tail %v not before BE tail %v", rtTailVC, beTailVC)
	}
	rtTailFIFO, _ := tailOrder(sched.FIFO)
	if rtTailFIFO <= rtTailVC {
		t.Fatalf("FIFO should delay RT versus Virtual Clock: %v vs %v", rtTailFIFO, rtTailVC)
	}
}

func TestBestEffortUsesBEPartitionAtIntermediateHop(t *testing.T) {
	// Route to a non-endpoint port: VC allocation must come from the class
	// partition, not DstVC.
	cfg := testConfig(sched.FIFO)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap0 := &capture{}
	cap1 := &capture{}
	r.Connect(0, cap0, true)
	r.Connect(1, cap1, false) // port 1 is a router-router link
	be := msg(1, 1, 0, 3, sim.Forever)
	rt := msg(2, 1, 0, 3, 100)
	deliver(r, 0, 1, be, period)
	deliver(r, 0, 0, rt, period)
	run(r, 0, 40)
	// RT must leave on VC 0 (RT partition [0,1)), BE on VC 1 ([1,2)).
	// The capture has no VC record per flit... so check via Deliver calls:
	// instead use a consumer that records VCs.
	if len(cap1.flits) != 6 {
		t.Fatalf("delivered %d flits, want 6", len(cap1.flits))
	}
}

// vcCapture records which VC each flit was transmitted on.
type vcCapture struct {
	byVC map[int]int
}

func (c *vcCapture) HasCredit(int) bool { return true }
func (c *vcCapture) Accept(vc int, f flit.Flit) {
	if c.byVC == nil {
		c.byVC = map[int]int{}
	}
	c.byVC[vc]++
}

func TestClassPartitionOnTransitLink(t *testing.T) {
	cfg := testConfig(sched.FIFO)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vcc := &vcCapture{}
	r.Connect(0, &capture{}, true)
	r.Connect(1, vcc, false)
	be := msg(1, 1, 0, 3, sim.Forever)
	rt := msg(2, 1, 0, 3, 100)
	deliver(r, 0, 1, be, period)
	deliver(r, 0, 0, rt, period)
	run(r, 0, 40)
	if vcc.byVC[0] != 3 || vcc.byVC[1] != 3 {
		t.Fatalf("transit VC usage %v, want 3 flits on VC 0 (RT) and 3 on VC 1 (BE)", vcc.byVC)
	}
}

func TestDownstreamCreditBlocksTransmit(t *testing.T) {
	cfg := testConfig(sched.FIFO)
	r, _ := build(t, cfg)
	blocked := true
	r.Connect(1, &capture{limit: func(int) bool { return !blocked }}, true)
	m := msg(1, 1, 0, 3, 100)
	deliver(r, 0, 0, m, period)
	run(r, 0, 30)
	if got := r.Stats().FlitsTransmitted; got != 0 {
		t.Fatalf("transmitted %d flits without downstream credit", got)
	}
	blocked = false
	run(r, 30*period, 30)
	if got := r.Stats().FlitsTransmitted; got != 3 {
		t.Fatalf("transmitted %d after credit restored, want 3", got)
	}
}

func TestFatLinkLoadBalancing(t *testing.T) {
	// Route returns two candidate ports; with one port owned by a long
	// message, the next header must pick the other.
	cfg := testConfig(sched.FIFO)
	cfg.Ports = 3
	cfg.VCs = 2
	cfg.RTVCs = 2
	cfg.Route = func(_ int, m *flit.Message, buf []int) []int {
		if m.Dst == 99 {
			return append(buf, 1, 2) // fat pair
		}
		return append(buf, m.Dst)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1, c2 := &vcCapture{}, &vcCapture{}, &vcCapture{}
	r.Connect(0, c0, true)
	r.Connect(1, c1, false)
	r.Connect(2, c2, false)
	a := msg(1, 99, 0, 10, 100)
	b := msg(2, 99, 0, 10, 100)
	deliver(r, 0, 0, a, period)
	deliver(r, 1, 0, b, period) // different input port, same fat destination
	run(r, 0, 60)
	sum := func(c *vcCapture) int {
		t := 0
		for _, n := range c.byVC {
			t += n
		}
		return t
	}
	if sum(c1) != 10 || sum(c2) != 10 {
		t.Fatalf("fat links carried %d/%d flits, want 10/10 (load balanced)", sum(c1), sum(c2))
	}
}

func TestInterleavedMessagesWithinVCPanics(t *testing.T) {
	r, _ := build(t, testConfig(sched.FIFO))
	a := msg(1, 1, 0, 3, 100)
	b := msg(2, 1, 0, 3, 100)
	r.Deliver(0, 0, flit.Flit{Msg: a, Seq: 0, Enq: period})
	defer func() {
		if recover() == nil {
			t.Fatal("interleaving within a VC did not panic")
		}
	}()
	r.Deliver(0, 0, flit.Flit{Msg: b, Seq: 0, Enq: 2 * period})
}

func TestBackToBackMessagesOnOneVC(t *testing.T) {
	// A second message may follow the first on the same VC once the first's
	// tail has been delivered; the router must process both in order.
	r, caps := build(t, testConfig(sched.VirtualClock))
	a := msg(1, 1, 0, 3, 100)
	b := msg(2, 1, 0, 3, 100)
	tEnd := deliver(r, 0, 0, a, period)
	deliver(r, 0, 0, b, tEnd)
	run(r, 0, 60)
	got := caps[1].flits
	if len(got) != 6 {
		t.Fatalf("delivered %d flits, want 6", len(got))
	}
	for i := 0; i < 3; i++ {
		if got[i].Msg != a {
			t.Fatal("first message's flits not first")
		}
		if got[3+i].Msg != b {
			t.Fatal("second message's flits not after the first")
		}
	}
	if !r.Quiesced() {
		t.Fatal("not quiesced")
	}
}

func TestLongMessageLargerThanBuffer(t *testing.T) {
	// Wormhole: a message longer than any buffer streams through.
	cfg := testConfig(sched.VirtualClock)
	cfg.BufferDepth = 4
	r, caps := build(t, cfg)
	m := msg(1, 1, 0, 50, 100)
	// Feed flits only when credit allows, like a real upstream link.
	sent := 0
	for cycle := 1; cycle < 200 && sent < m.Flits; cycle++ {
		now := sim.Time(cycle) * period
		r.Step(now)
		if r.HasCredit(0, 0) {
			r.Deliver(0, 0, flit.Flit{Msg: m, Seq: sent, Enq: now + period})
			sent++
		}
	}
	run(r, 200*period, 30)
	if len(caps[1].flits) != 50 {
		t.Fatalf("delivered %d flits, want 50", len(caps[1].flits))
	}
	if !r.Quiesced() {
		t.Fatal("not quiesced")
	}
}
