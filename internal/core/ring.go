package core

import "mediaworm/internal/flit"

// ring is a fixed-capacity FIFO of flits. Virtual-channel buffers and output
// staging buffers are rings so the steady-state simulation allocates nothing
// per flit.
type ring struct {
	buf  []flit.Flit
	head int
	n    int
}

func newRing(capacity int) ring {
	if capacity <= 0 {
		panic("core: ring capacity must be positive")
	}
	return ring{buf: make([]flit.Flit, capacity)}
}

// ringOver builds a ring over a caller-supplied buffer — an arena slab
// carve, so a fabric's worth of VC buffers is one allocation.
func ringOver(buf []flit.Flit) ring {
	if len(buf) == 0 {
		panic("core: ring capacity must be positive")
	}
	return ring{buf: buf}
}

func (r *ring) len() int    { return r.n }
func (r *ring) space() int  { return len(r.buf) - r.n }
func (r *ring) empty() bool { return r.n == 0 }

func (r *ring) push(f flit.Flit) {
	if r.n == len(r.buf) {
		panic("core: ring overflow (credit protocol violated)")
	}
	r.buf[(r.head+r.n)%len(r.buf)] = f
	r.n++
}

func (r *ring) peek() flit.Flit {
	if r.n == 0 {
		panic("core: peek on empty ring")
	}
	return r.buf[r.head]
}

func (r *ring) pop() flit.Flit {
	f := r.peek()
	r.buf[r.head] = flit.Flit{} // release the *Message reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return f
}
