package core

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// TestRouterChurnZeroAlloc is the allocation proof for the struct-of-arrays
// request discipline: after one warm-up iteration grows the request arena
// and scratch buffers to their working set, sustained request churn — four
// competing headers per round, two killed mid-queue, survivors drained,
// messages recycled — performs zero heap allocations. This is the property
// BenchmarkRouterRequestChurn measures and cmd/benchgate enforces in CI.
func TestRouterChurnZeroAlloc(t *testing.T) {
	cfg := testConfig(sched.VirtualClock)
	cfg.VCs = 4
	cfg.RTVCs = 4
	cfg.ExclusiveEndpointVCs = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < cfg.Ports; p++ {
		r.Connect(p, devNull{}, true)
	}
	pool := flit.NewPool(8)
	now := sim.Time(0)
	var id uint64
	now = churnIteration(r, pool, now, &id) // warm-up: arena + scratch growth
	if !r.Quiesced() {
		t.Fatal("router did not drain after warm-up")
	}
	nodes := len(r.reqNodes)
	allocs := testing.AllocsPerRun(100, func() {
		now = churnIteration(r, pool, now, &id)
	})
	if allocs != 0 {
		t.Fatalf("request churn allocates %.1f objects/op after warm-up, want 0", allocs)
	}
	if !r.Quiesced() {
		t.Fatal("router did not drain")
	}
	if got := len(r.reqNodes); got != nodes {
		t.Fatalf("request arena grew %d → %d during steady-state churn", nodes, got)
	}
}

// TestRouterStepStreamZeroAlloc proves the streaming hot path (Deliver +
// Step under a saturated wormhole stream) stays allocation-free with the
// flat VC tables.
func TestRouterStepStreamZeroAlloc(t *testing.T) {
	r, err := New(testConfig(sched.VirtualClock))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		r.Connect(p, devNull{}, true)
	}
	pool := flit.NewPool(4)
	now := sim.Time(0)
	var id uint64
	var m, prev *flit.Message
	seq := 0
	step := func() {
		if m == nil || seq == m.Flits {
			// Recycle with one message of lag: when message k starts, k−2
			// drained long ago (64 flits dwarf the pipeline and buffers),
			// while k−1 may still have flits in flight.
			pool.Put(prev)
			prev = m
			id++
			m = pool.Get()
			m.ID = id
			m.StreamID = int(id)
			m.Class = flit.VBR
			m.MsgsInFrame = 1
			m.Flits = 64
			m.Vtick = 100
			m.Dst = 1
			seq = 0
		}
		if r.inv[0].q.space() > 0 {
			r.Deliver(0, 0, flit.Flit{Msg: m, Seq: seq, Enq: now})
			seq++
		}
		r.Step(now)
		now += period
	}
	for i := 0; i < 200; i++ { // warm-up: scratch sizing, first messages
		step()
	}
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Fatalf("streaming Step allocates %.3f objects/op after warm-up, want 0", allocs)
	}
}
