package core

import "mediaworm/internal/flit"

// Arena is a struct-of-arrays backing store for router hot state. A fabric
// builder allocates one arena sized for all of its routers, and every router
// carves its per-port/per-VC tables — input VCs, output VCs, flit buffer
// rings, link-health flags, port counters, and crossbar-request nodes — as
// contiguous subslices of the shared slabs. The result is a handful of large
// allocations per fabric instead of O(routers × ports × VCs) small ones, and
// same-kind state packed contiguously across routers, which is what keeps a
// 256-router torus cache-friendly. See DESIGN.md §18.
//
// An arena is single-goroutine, like the routers it backs. Carving is
// construction-time only; the hot path never touches the arena itself.
type Arena struct {
	inv    []inVC      // backing slab; the owning routers serialize their views
	outv   []outVC     // backing slab; the owning routers serialize their views
	flits  []flit.Flit // backing slab; ring contents serialize through the owning routers
	health []bool      // backing slab; the owning routers serialize their views
	pstats []PortStats // backing slab; the owning routers serialize their views
	reqs   []reqNode   // backing slab; request queues serialize through the owning routers
}

// arenaShape returns the per-router slab demand for a config.
func arenaShape(cfg Config) (pv, flits, health, reqCap int) {
	pv = cfg.Ports * cfg.VCs
	flits = pv * (cfg.BufferDepth + cfg.StageDepth)
	health = 2 * cfg.Ports // linkUp + stalled
	// Request nodes: at most one live request per input VC, plus headroom
	// for same-cycle retire-and-resubmit churn before stage-3 compaction.
	reqCap = 2 * pv
	return
}

// NewArena preallocates slabs for `routers` routers of identical shape.
// Routers built with cfg.Arena pointing here draw from the slabs; once the
// slabs run dry further routers fall back to private allocations, so an
// undersized arena degrades to the old layout rather than failing.
func NewArena(routers int, cfg Config) *Arena {
	if routers < 1 {
		routers = 1
	}
	pv, flits, health, reqCap := arenaShape(cfg)
	return &Arena{
		inv:    make([]inVC, 0, routers*pv),
		outv:   make([]outVC, 0, routers*pv),
		flits:  make([]flit.Flit, 0, routers*flits),
		health: make([]bool, 0, routers*health),
		pstats: make([]PortStats, 0, routers*cfg.Ports),
		reqs:   make([]reqNode, 0, routers*reqCap),
	}
}

// grabInv carves n input VCs, falling back to a private allocation when the
// slab is exhausted (or the arena is nil).
func (a *Arena) grabInv(n int) []inVC {
	if a == nil || len(a.inv)+n > cap(a.inv) {
		return make([]inVC, n)
	}
	off := len(a.inv)
	a.inv = a.inv[:off+n]
	return a.inv[off : off+n : off+n]
}

func (a *Arena) grabOutv(n int) []outVC {
	if a == nil || len(a.outv)+n > cap(a.outv) {
		return make([]outVC, n)
	}
	off := len(a.outv)
	a.outv = a.outv[:off+n]
	return a.outv[off : off+n : off+n]
}

func (a *Arena) grabFlits(n int) []flit.Flit {
	if a == nil || len(a.flits)+n > cap(a.flits) {
		return make([]flit.Flit, n)
	}
	off := len(a.flits)
	a.flits = a.flits[:off+n]
	return a.flits[off : off+n : off+n]
}

func (a *Arena) grabHealth(n int) []bool {
	if a == nil || len(a.health)+n > cap(a.health) {
		return make([]bool, n)
	}
	off := len(a.health)
	a.health = a.health[:off+n]
	return a.health[off : off+n : off+n]
}

func (a *Arena) grabPortStats(n int) []PortStats {
	if a == nil || len(a.pstats)+n > cap(a.pstats) {
		return make([]PortStats, n)
	}
	off := len(a.pstats)
	a.pstats = a.pstats[:off+n]
	return a.pstats[off : off+n : off+n]
}

// grabReqs carves a zero-length request-node slab with capacity n; the
// router appends nodes into it as its working set grows, recycling them
// through its free list thereafter.
func (a *Arena) grabReqs(n int) []reqNode {
	if a == nil || len(a.reqs)+n > cap(a.reqs) {
		return make([]reqNode, 0, n)
	}
	off := len(a.reqs)
	a.reqs = a.reqs[:off+n]
	return a.reqs[off : off : off+n]
}
