package core

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// devNull accepts every flit with unlimited credit and drops it, so router
// benchmarks measure the pipeline, not a capture slice growing.
type devNull struct{}

func (devNull) HasCredit(int) bool    { return true }
func (devNull) Accept(int, flit.Flit) {}

func benchRouter(b *testing.B, cfg Config) *Router {
	b.Helper()
	r, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for p := 0; p < cfg.Ports; p++ {
		r.Connect(p, devNull{}, true)
	}
	return r
}

// BenchmarkRouterStepStream measures the per-cycle cost of a router carrying
// a saturated wormhole stream: one flit in (credit permitting) and one flit
// out per Step. Injection backs off when the input VC buffer is full, like
// a link honouring credits, so per-message header latency cannot overflow
// the ring over a long run.
func BenchmarkRouterStepStream(b *testing.B) {
	r := benchRouter(b, testConfig(sched.VirtualClock))
	t := sim.Time(0)
	var (
		m   *flit.Message
		seq int
		id  uint64
	)
	buf := &r.inv[0].q
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m == nil || seq == m.Flits {
			id++
			m = msg(id, 1, 0, 64, 100)
			seq = 0
		}
		if buf.space() > 0 {
			r.Deliver(0, 0, flit.Flit{Msg: m, Seq: seq, Enq: t})
			seq++
		}
		r.Step(t)
		t += period
	}
}

// BenchmarkRouterStepIdle measures Step on a quiesced router — the cost the
// fabric pays per router on cycles where a neighbour still has work.
func BenchmarkRouterStepIdle(b *testing.B) {
	r := benchRouter(b, testConfig(sched.VirtualClock))
	t := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(t)
		t += period
	}
}

// churnIteration drives one full request-churn cycle: four headers compete
// for one exclusive endpoint VC, two die while queued, the survivors drain,
// and the messages recycle through the pool. This is the path the arena
// request nodes and buffer-parameter routing make allocation-free.
func churnIteration(r *Router, pool *flit.Pool, t sim.Time, id *uint64) sim.Time {
	var msgs [4]*flit.Message
	for v := 0; v < 4; v++ {
		*id++
		m := pool.Get()
		m.ID = *id
		m.StreamID = int(*id)
		m.Class = flit.VBR
		m.MsgsInFrame = 1
		m.Flits = 2
		m.Vtick = 100
		m.Dst = 1
		msgs[v] = m
		for s := 0; s < 2; s++ {
			r.Deliver(0, v, flit.Flit{Msg: m, Seq: s, Enq: t})
		}
	}
	msgs[1].Kill()
	msgs[2].Kill()
	for c := 0; c < 24; c++ {
		r.Step(t)
		t += period
	}
	for _, m := range msgs {
		pool.Put(m) // drained or reaped: no buffer references m anymore
	}
	return t
}

// BenchmarkRouterRequestChurn measures the stage-3 request queue under
// contention with mid-queue retirement. Steady state must not allocate:
// request nodes recycle through the router's arena free list and messages
// through the flit.Pool (TestRouterChurnZeroAlloc is the proof).
func BenchmarkRouterRequestChurn(b *testing.B) {
	cfg := testConfig(sched.VirtualClock)
	cfg.VCs = 4
	cfg.RTVCs = 4
	cfg.ExclusiveEndpointVCs = true
	r := benchRouter(b, cfg)
	pool := flit.NewPool(8)
	t := sim.Time(0)
	var id uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = churnIteration(r, pool, t, &id)
		if !r.Quiesced() {
			b.Fatal("router did not drain between iterations")
		}
	}
}
