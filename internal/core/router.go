// Package core implements the MediaWorm router — the paper's primary
// contribution: a five-stage pipelined wormhole router (the PROUD model of
// Fig. 1) whose bandwidth multiplexers run a configurable scheduling
// discipline, in particular the Virtual Clock rate-based scheduler that
// distinguishes MediaWorm from a conventional FIFO-scheduled router.
//
// The router is cycle-accurate at flit granularity. One cycle is the time to
// move one flit across a physical channel. Per cycle the router executes, in
// order:
//
//  1. routing decision + crossbar arbitration for header flits (pipeline
//     stages 2–3; middle/tail flits bypass),
//  2. switch traversal — with a multiplexed crossbar, each crossbar *input
//     multiplexer* picks one flit among its port's virtual channels using the
//     configured policy (contention point A of the paper's Fig. 2); with a
//     full crossbar every active VC traverses independently,
//  3. link transmission — each output physical channel transmits one flit,
//     chosen among the output VC staging buffers by the configured policy
//     (contention point C, the Virtual Clock site for a full crossbar).
//
// Pipeline latency matches the paper's model: a header spends five cycles
// from link arrival to the next link (stages 1–5); middle and tail flits
// spend three (they bypass stages 2–3).
//
// Hot state lives in a struct-of-arrays layout: per-VC input and output
// tables are flat slices indexed port·VCs+vc, flit rings carve one shared
// buffer slab, and crossbar requests are nodes of an intrusive per-router
// arena recycled through a free list — so a fabric of hundreds of routers
// is a handful of large allocations, not a pointer forest (DESIGN.md §18).
package core

import (
	"fmt"

	"mediaworm/internal/flit"
	"mediaworm/internal/obs"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// Pipeline latency of the five-stage router in cycles, exported for the
// analytic model (internal/calculus): a header flit spends
// HeaderPipelineCycles from link arrival to the next link (stages 1–5),
// middle and tail flits BodyPipelineCycles (they bypass stages 2–3). These
// are the uncontended per-hop constants of the package doc above; queueing
// on top of them is what the service-curve machinery bounds.
const (
	HeaderPipelineCycles = 5
	BodyPipelineCycles   = 3
)

// Consumer receives flits transmitted out of a router output port. The
// network layer implements it for endpoint sinks and for the input ports of
// downstream routers.
type Consumer interface {
	// HasCredit reports whether the consumer can accept a flit on vc.
	HasCredit(vc int) bool
	// Accept delivers a flit on vc. f.Enq is the arrival instant (one cycle
	// after transmission). Accept must not be called without credit.
	Accept(vc int, f flit.Flit)
}

// RoutingFunc returns the candidate output ports for msg at the given
// router, appended into buf (passed with length zero, capacity ≥ the
// router's port count) so steady-state routing allocates nothing. Multiple
// candidates model parallel physical links — the fat-mesh's duplicated
// channels, a generated topology's multi-lane links, a Clos network's spine
// uplinks; the router picks the least-loaded (§3.4). An empty result means
// the destination is currently unreachable (a fault somewhere partitioned it
// away): the router kills the message so its flits unravel instead of
// blocking the input VC until the route recovers.
type RoutingFunc func(routerID int, msg *flit.Message, buf []int) []int

// VCSelFunc narrows the output-VC class partition [lo, hi) for msg on
// output port out — the hook dateline routing uses to split a torus ring's
// VCs into pre- and post-dateline halves so dimension-order routing stays
// deadlock-free across wraparound links. It must return a non-empty
// subrange of [lo, hi). Nil means the full class partition.
type VCSelFunc func(routerID, outPort int, msg *flit.Message, lo, hi int) (int, int)

// Config parameterizes one router.
type Config struct {
	// ID identifies the router within its fabric.
	ID int
	// Ports is the number of physical channels (n). VCs is the number of
	// virtual channels per physical channel (m).
	Ports, VCs int
	// RTVCs is the size of the real-time VC partition: VCs [0, RTVCs) carry
	// VBR/CBR, VCs [RTVCs, VCs) carry best-effort (§4.2.3).
	RTVCs int
	// BufferDepth is the per-input-VC flit buffer capacity.
	BufferDepth int
	// StageDepth is the per-output-VC staging buffer capacity (stage 5).
	StageDepth int
	// FullCrossbar selects the (n·m × n·m) crossbar; false selects the
	// multiplexed (n × n) crossbar (§3.2).
	FullCrossbar bool
	// Policy is the scheduling discipline at the router's bandwidth
	// multiplexers (FIFO for the conventional router, VirtualClock for
	// MediaWorm, or any member of the scheduler zoo).
	Policy sched.Kind
	// Sched parameterizes the weighted disciplines (per-VC weights, tiers,
	// DRR quantum); the zero value means every VC weight 1, tier 0. VCs is
	// filled from the router's VC count when zero.
	Sched sched.Params
	// Period is the cycle time in nanoseconds (flit size / link bandwidth).
	Period sim.Time
	// Route computes output ports for messages not yet at their final hop.
	Route RoutingFunc
	// VCSel, if set, narrows the output VC partition per (port, message) —
	// see VCSelFunc. Topologies without wraparound channels leave it nil.
	VCSel VCSelFunc
	// Arena, if set, is the shared struct-of-arrays backing store this
	// router carves its state from (construction-time only, not run state);
	// nil gives the router private allocations.
	Arena *Arena

	// AllocatorIterations selects the switch-allocation depth: 1 is a
	// single greedy pass; 2 (the default, chosen when zero) adds one-step
	// augmentation, modeling iterative separable allocators. See DESIGN.md.
	AllocatorIterations int
	// ExclusiveEndpointVCs reverts endpoint-port output VCs to exclusive
	// message-granularity ownership (ablation; the paper multiplexes
	// connections onto shared VCs, the default here).
	ExclusiveEndpointVCs bool

	// Tracer is the observability sink (nil = tracing disabled; the
	// instrumentation then costs one branch per site).
	Tracer *obs.Tracer
}

func (c *Config) validate() error {
	switch {
	case c.Ports <= 0 || c.Ports > 127:
		return fmt.Errorf("core: Ports = %d", c.Ports)
	case c.VCs <= 0 || c.VCs > 127:
		return fmt.Errorf("core: VCs = %d", c.VCs)
	case c.RTVCs < 0 || c.RTVCs > c.VCs:
		return fmt.Errorf("core: RTVCs = %d with %d VCs", c.RTVCs, c.VCs)
	case c.BufferDepth <= 0:
		return fmt.Errorf("core: BufferDepth = %d", c.BufferDepth)
	case c.StageDepth <= 0:
		return fmt.Errorf("core: StageDepth = %d", c.StageDepth)
	case c.Period <= 0:
		return fmt.Errorf("core: Period = %d", c.Period)
	case c.Route == nil:
		return fmt.Errorf("core: Route is nil")
	case c.AllocatorIterations < 0 || c.AllocatorIterations > 2:
		return fmt.Errorf("core: AllocatorIterations = %d", c.AllocatorIterations)
	}
	return nil
}

// vcPhase is the lifecycle of an input VC's head message.
type vcPhase uint8

const (
	vcIdle      vcPhase = iota // no message being switched
	vcRequested                // header submitted a crossbar request
	vcActive                   // output granted; flits may traverse
)

// inVC is one input virtual-channel buffer and its switching state. Input
// VCs live in the router's flat inv table (index port·VCs+vc), carved from
// the fabric arena.
type inVC struct {
	q ring

	// Receive-side state: the message currently arriving, and its Virtual
	// Clock at this contention point. Wormhole guarantees messages arrive
	// contiguously per VC, so one clock suffices.
	recvMsg  *flit.Message
	recvClk  sched.VClock
	received int

	// Head-side state: the message whose flits are being switched.
	phase     vcPhase
	headMsg   *flit.Message
	outPort   int
	outVC     int
	grantedAt sim.Time
	// reqSeq is the sequence number of this VC's live crossbar request; an
	// arena node whose seq no longer matches has been retired and is freed
	// by the next stage-3 pass.
	reqSeq uint64

	// port/vcIdx locate this VC for trace events; blkCause is the cause of
	// the currently open blocking span (CauseNone = no open span).
	port, vcIdx int16     //mw:snapcover — static trace coordinates, assigned at construction
	blkCause    obs.Cause //mw:snapcover — open blocking spans are a trace concern; tracing refuses checkpoints
}

// reqNode is one pending crossbar arbitration request (stage 3), a node of
// the router's request arena. Nodes chain into per-output-port FCFS lists
// and recycle through a free list, so request churn allocates nothing once
// the arena has grown to the working set.
type reqNode struct {
	in   int32 // flat input-VC index (port·VCs+vc)
	next int32 // next node in the port's FCFS list / free list (-1 = end)
	at   sim.Time
	seq  uint64
}

// liveReq reports whether node n is still the current request of its input
// VC: retired nodes keep their slot but stop matching the VC's phase and
// reqSeq (the VC may meanwhile carry a newer request elsewhere).
func (r *Router) liveReq(n *reqNode) bool {
	in := &r.inv[n.in]
	return in.phase == vcRequested && in.reqSeq == n.seq
}

// outVC is one output virtual channel: its stage-5 staging buffer and
// ownership state. Output VCs live in the router's flat outv table.
type outVC struct {
	stage ring
	// busy is the message holding this output VC from grant until its tail
	// is transmitted on the link.
	busy *flit.Message
	// clk is the Virtual Clock at contention point C (output VC mux).
	clk sched.VClock
}

// outPort is one output physical channel's per-port state; its VCs live in
// the router's flat outv table.
type outPort struct {
	consumer Consumer //mw:snapcover — downstream wiring, rebuilt by the topology constructor
	// endpoint marks ports that attach to an endpoint (NI/sink) rather than
	// another router; at an endpoint port the message's DstVC is used.
	endpoint bool //mw:snapcover — static wiring property, set when the port is connected
	// reqHead heads the FCFS virtual-channel-allocation list (stage 3) of
	// arena nodes: headers wait here until an output VC of their class is
	// free. Output VCs are held at message granularity (wormhole
	// semantics); the crossbar output itself is matched per cycle in
	// switch traversal.
	reqHead int32
	// reqLen counts list nodes; stale counts nodes retired by removeRequest
	// but not yet freed: retirement is O(1) lazy (the node's seq stops
	// matching its VC's reqSeq) and the stage-3 pass that already walks the
	// list frees them. portLoad subtracts stale so intra-cycle load
	// estimates are unchanged.
	reqLen, stale int32
	arb           sched.Arbiter // link VC multiplexer (point C)
	reqTail       int32         //mw:snapcover — derived list-end cache; restore rebuilds it by re-appending the serialized FIFO walk
}

// Stats counts router activity for tests and instrumentation.
type Stats struct {
	FlitsSwitched    uint64 // flits through the crossbar
	FlitsTransmitted uint64 // flits onto output links
	MessagesRouted   uint64 // headers granted
	RequestsQueued   uint64

	// FlitsDropped counts flits reaped from this router's buffers: flits of
	// dead (killed) messages, flits corrupted on transmission, and flits of
	// messages with no live route. The fabric reads it to keep the
	// injected = delivered + dropped + in-flight conservation invariant.
	FlitsDropped uint64
	// MessagesKilled counts messages this router killed itself (corruption
	// at one of its links, or no live route). Messages killed elsewhere and
	// merely reaped here are not counted.
	MessagesKilled uint64

	// Per-cycle input-VC blocking reasons, sampled over buffered-but-idle
	// head flits during switch traversal (capacity diagnostics).
	BlockedNotGranted uint64 // header awaiting VC allocation
	BlockedJustMoved  uint64 // stage-1/3 pipeline synchronization
	BlockedStageFull  uint64 // output staging backpressure
	BlockedClaimed    uint64 // crossbar output claimed this cycle

	// GrantWait accumulates header wait (request→grant) in nanoseconds;
	// GrantWaitCount the number of grants.
	GrantWait      uint64
	GrantWaitCount uint64
}

// PortStats counts fault-related activity on one port (the input and output
// side of a physical channel share an index). The fault experiments and the
// watchdog read these so dropped-flit accounting has a single source of
// truth.
type PortStats struct {
	// FlitsDropped counts flits reaped at this port: dead-message flits
	// removed from the input VC buffers or output staging buffers, flits
	// corrupted on the output link, and flits of unroutable messages.
	FlitsDropped uint64
	// StallCycles counts cycles where the output side held staged flits but
	// transmitted nothing (downstream credit exhausted, link down, or an
	// injected port stall).
	StallCycles uint64
}

// Router is one MediaWorm switch. Its per-port/per-VC hot state is a
// struct-of-arrays: inv and outv are flat tables indexed port·VCs+vc,
// inArbs holds the per-input-port multiplexers, outs the per-output-port
// state, and reqNodes the crossbar-request arena — all carved from the
// fabric-wide Arena when one is supplied.
type Router struct {
	rtVCs int      // current real-time VC partition size (adjustable)
	seq   uint64   // arbitration sequence counter
	now   sim.Time // current cycle instant, so arbiter observers can stamp their events
	// Flat per-VC tables (index port·VCs+vc) and per-port state.
	inv    []inVC
	outv   []outVC
	inArbs []sched.Arbiter
	outs   []outPort
	// reqNodes is the crossbar-request arena; nodes recycle through the
	// free list headed by reqFree (declared with the derived state below).
	reqNodes []reqNode
	stats    Stats
	// Fault state (see DESIGN.md "Fault model"): per-output-port link
	// health and injected stalls, per-port fault counters, and the optional
	// per-flit corruption hook.
	linkUp    []bool
	stalled   []bool
	portStats []PortStats

	// Everything below is construction-time configuration, derived state a
	// restore rebuilds, or per-cycle scratch — outside the snapshot
	// contract.
	cfg       Config                           //mw:snapcover — run-immutable config; RestoreSim rebuilds the router from the checkpoint's embedded config and re-validates against it
	nvc       int                              //mw:snapcover — copy of cfg.VCs, the flat-index stride
	fullXb    bool                             //mw:snapcover — derived from cfg at construction
	reqFree   int32                            //mw:snapcover — free-list head over unreferenced nodes; restore rebuilds it as it re-carves the request lists
	corrupt   func(port int, f flit.Flit) bool //mw:snapcover — fault-injection hook; fault runs refuse checkpoints
	routeBuf  []int                            //mw:snapcover — per-cycle scratch for health-filtered routing candidates
	routeCand []int                            //mw:snapcover — per-cycle scratch handed to the routing function
	// cands, claimed, claimedBy and picked are per-cycle scratch buffers,
	// reused so the hot path does not allocate.
	cands      []sched.Candidate //mw:snapcover — per-cycle scratch
	claimed    []bool            //mw:snapcover — per-cycle scratch
	claimedBy  []int8            //mw:snapcover — per-cycle scratch
	picked     []int8            //mw:snapcover — per-cycle scratch
	feeder     []int32           //mw:snapcover — per-cycle scratch (flat input-VC index per crossbar output, -1 = none)
	feederCand []sched.Candidate //mw:snapcover — per-cycle scratch
	trc        *obs.Tracer       //mw:snapcover — observability sink (nil = disabled); tracing refuses checkpoints
	fromArena  bool              //mw:snapcover — construction-time provenance flag, no run state
}

// New builds a router. Output ports must be connected with Connect before
// the first Step.
func New(cfg Config) (*Router, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.AllocatorIterations == 0 {
		cfg.AllocatorIterations = 2
	}
	if cfg.Sched.VCs == 0 {
		cfg.Sched.VCs = cfg.VCs
	}
	a := cfg.Arena
	r := &Router{cfg: cfg, rtVCs: cfg.RTVCs, nvc: cfg.VCs, fullXb: cfg.FullCrossbar}
	pv, _, _, reqCap := arenaShape(cfg)
	r.cands = make([]sched.Candidate, 0, cfg.VCs)
	invBefore := 0
	if a != nil {
		invBefore = len(a.inv)
	}
	r.inv = a.grabInv(pv)
	r.fromArena = a != nil && len(a.inv) == invBefore+pv
	r.outv = a.grabOutv(pv)
	r.inArbs = make([]sched.Arbiter, cfg.Ports)
	r.outs = make([]outPort, cfg.Ports)
	r.reqNodes = a.grabReqs(reqCap)
	r.reqFree = -1
	health := a.grabHealth(2 * cfg.Ports)
	r.linkUp, r.stalled = health[:cfg.Ports:cfg.Ports], health[cfg.Ports:]
	r.portStats = a.grabPortStats(cfg.Ports)
	r.routeBuf = make([]int, 0, cfg.Ports)
	r.routeCand = make([]int, 0, cfg.Ports)
	for p := range r.linkUp {
		r.linkUp[p] = true
	}
	for p := 0; p < cfg.Ports; p++ {
		for v := 0; v < cfg.VCs; v++ {
			in := &r.inv[p*r.nvc+v]
			in.q = ringOver(a.grabFlits(cfg.BufferDepth))
			in.port = int16(p)
			in.vcIdx = int16(v)
			r.outv[p*r.nvc+v].stage = ringOver(a.grabFlits(cfg.StageDepth))
		}
		r.inArbs[p] = sched.NewArbiter(cfg.Policy, cfg.Sched)
		r.outs[p].arb = sched.NewArbiter(cfg.Policy, cfg.Sched)
		r.outs[p].reqHead, r.outs[p].reqTail = -1, -1
	}
	if cfg.Tracer.Enabled() {
		r.trc = cfg.Tracer
		r.trc.RegisterRouter(cfg.ID, cfg.Ports, cfg.VCs)
		id := int16(cfg.ID)
		for p := 0; p < cfg.Ports; p++ {
			port := int16(p)
			r.inArbs[p] = sched.Observed(r.inArbs[p], func(w sched.Candidate, n int) {
				r.trc.Emit(obs.Event{At: r.now, Kind: obs.EvPickInput, Router: id,
					Port: port, VC: int16(w.VC), Arg: obs.TSArg(w.TS), Seq: int32(n)})
			})
			r.outs[p].arb = sched.Observed(r.outs[p].arb, func(w sched.Candidate, n int) {
				r.trc.Emit(obs.Event{At: r.now, Kind: obs.EvPickOutput, Router: id,
					Port: port, VC: int16(w.VC), Arg: obs.TSArg(w.TS), Seq: int32(n)})
			})
		}
	}
	return r, nil
}

// inAt returns the input VC at (port, vc) in the flat table.
func (r *Router) inAt(p, v int) *inVC { return &r.inv[p*r.nvc+v] }

// outAt returns the output VC at (port, vc) in the flat table.
func (r *Router) outAt(p, v int) *outVC { return &r.outv[p*r.nvc+v] }

// ID returns the router's fabric identifier.
func (r *Router) ID() int { return r.cfg.ID }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// UsesArena reports whether the router's input-VC table was carved from a
// shared Arena (as opposed to a private fallback allocation). Fabric-scale
// tests assert this to catch arena sizing regressions.
func (r *Router) UsesArena() bool { return r.fromArena }

// Stats returns activity counters.
func (r *Router) Stats() Stats { return r.stats }

// PortStats returns fault counters for port p.
func (r *Router) PortStats(p int) PortStats { return r.portStats[p] }

// LinkUp reports whether output port p's link is healthy.
func (r *Router) LinkUp(p int) bool { return r.linkUp[p] }

// PortStalled reports whether output port p has an injected stall.
func (r *Router) PortStalled(p int) bool { return r.stalled[p] }

// SetCorruption installs a per-flit corruption hook: it is consulted as each
// flit is transmitted on an output link, and returning true drops the flit
// and kills its message (the worm unravels and is reclaimed; the NI
// retransmission layer, if enabled, resends the message end to end).
func (r *Router) SetCorruption(fn func(port int, f flit.Flit) bool) { r.corrupt = fn }

// SetPortStalled injects or lifts a transient stall on output port p: a
// stalled port transmits nothing but keeps all state, so backpressure builds
// upstream and releases when the stall lifts. Unlike a link failure, no
// message is killed.
func (r *Router) SetPortStalled(p int, stalled bool) { r.stalled[p] = stalled }

// allocReq pops a request node off the free list, growing the arena slab
// only when every node is in use.
func (r *Router) allocReq() int32 {
	if r.reqFree < 0 {
		r.reqNodes = append(r.reqNodes, reqNode{}) //mw:hotpath — amortized one-time growth to the request working set; nodes recycle through the free list after
		return int32(len(r.reqNodes) - 1)
	}
	n := r.reqFree
	r.reqFree = r.reqNodes[n].next
	return n
}

// freeReq returns node n to the free list, clearing it so retired requests
// release no references.
func (r *Router) freeReq(n int32) {
	r.reqNodes[n] = reqNode{in: -1, next: r.reqFree}
	r.reqFree = n
}

// pushReq appends node n to output port op's FCFS list.
func (r *Router) pushReq(op *outPort, n int32) {
	r.reqNodes[n].next = -1
	if op.reqTail < 0 {
		op.reqHead = n
	} else {
		r.reqNodes[op.reqTail].next = n
	}
	op.reqTail = n
	op.reqLen++
}

// SetLinkUp changes output port p's link health. Taking a link down kills
// every message with flits committed to the port — messages holding its
// output VCs, messages staged on it, and messages granted or requesting it
// from an input VC — and reclaims their buffers and credits as the dead
// worms unravel (staged flits are dropped immediately; upstream flits are
// reaped by each router's next cycle). Headers that requested the port but
// were not yet granted are re-routed instead of killed. Restoring a link is
// instant; only future routing decisions see it.
func (r *Router) SetLinkUp(p int, up bool) {
	if r.linkUp[p] == up {
		return
	}
	r.linkUp[p] = up
	if up {
		return
	}
	op := &r.outs[p]
	// Pending requests: return the headers to routing (stage 2 will pick a
	// healthy candidate next cycle, or kill the message if none is left).
	// Retired nodes are skipped — their VC may already carry a live request
	// to another port — and every node is freed so dropped requests release
	// their references.
	for n := op.reqHead; n >= 0; {
		next := r.reqNodes[n].next
		if r.liveReq(&r.reqNodes[n]) {
			in := &r.inv[r.reqNodes[n].in]
			in.phase = vcIdle
			in.headMsg = nil
		}
		r.freeReq(n)
		n = next
	}
	op.reqHead, op.reqTail = -1, -1
	op.reqLen, op.stale = 0, 0
	// Staged flits and output-VC holders are beyond rerouting: kill them.
	for v := 0; v < r.nvc; v++ {
		ov := r.outAt(p, v)
		for !ov.stage.empty() {
			f := ov.stage.pop()
			f.Msg.Kill()
			r.dropFlit(p)
		}
		if ov.busy != nil {
			if !ov.busy.Dead {
				r.traceKill(p, ov.busy, obs.CauseLinkDown)
			}
			ov.busy.Kill()
			ov.busy = nil
		}
	}
	// Input VCs actively forwarding to the port: their worms straddle the
	// dead link, so they cannot be rerouted either.
	for i := range r.inv {
		in := &r.inv[i]
		if in.phase == vcActive && in.outPort == p && in.headMsg != nil {
			if !in.headMsg.Dead {
				r.traceKill(p, in.headMsg, obs.CauseLinkDown)
			}
			in.headMsg.Kill()
		}
	}
}

// dropFlit accounts one reaped flit at port p.
func (r *Router) dropFlit(p int) {
	r.portStats[p].FlitsDropped++
	r.stats.FlitsDropped++
	if r.trc != nil {
		r.trc.Emit(obs.Event{At: r.now, Kind: obs.EvDrop,
			Router: int16(r.cfg.ID), Port: int16(p), VC: -1})
	}
}

// traceKill emits a message-kill event (no-op when tracing is off).
func (r *Router) traceKill(p int, msg *flit.Message, cause obs.Cause) {
	if r.trc != nil {
		r.trc.Emit(obs.Event{At: r.now, Kind: obs.EvKill, Cause: cause,
			Router: int16(r.cfg.ID), Port: int16(p), VC: -1,
			Msg: msg.ID, Class: msg.Class})
	}
}

// traceBlock opens (or re-causes) the blocking span on an input VC.
func (r *Router) traceBlock(in *inVC, now sim.Time, cause obs.Cause) {
	if r.trc == nil || in.blkCause == cause {
		return
	}
	var msg uint64
	var class flit.Class
	if in.headMsg != nil {
		msg, class = in.headMsg.ID, in.headMsg.Class
	} else if !in.q.empty() {
		m := in.q.peek().Msg
		msg, class = m.ID, m.Class
	}
	if in.blkCause != obs.CauseNone {
		r.trc.Emit(obs.Event{At: now, Kind: obs.EvUnblock, Cause: in.blkCause,
			Router: int16(r.cfg.ID), Port: in.port, VC: in.vcIdx, Msg: msg, Class: class})
	}
	in.blkCause = cause
	r.trc.Emit(obs.Event{At: now, Kind: obs.EvBlock, Cause: cause,
		Router: int16(r.cfg.ID), Port: in.port, VC: in.vcIdx, Msg: msg, Class: class})
}

// traceUnblock closes the input VC's open blocking span, if any.
func (r *Router) traceUnblock(in *inVC, now sim.Time) {
	if r.trc == nil || in.blkCause == obs.CauseNone {
		return
	}
	var msg uint64
	var class flit.Class
	if in.headMsg != nil {
		msg, class = in.headMsg.ID, in.headMsg.Class
	}
	r.trc.Emit(obs.Event{At: now, Kind: obs.EvUnblock, Cause: in.blkCause,
		Router: int16(r.cfg.ID), Port: in.port, VC: in.vcIdx, Msg: msg, Class: class})
	in.blkCause = obs.CauseNone
}

// Connect attaches the consumer downstream of output port p and records
// whether that port reaches an endpoint.
func (r *Router) Connect(p int, c Consumer, endpoint bool) {
	r.outs[p].consumer = c
	r.outs[p].endpoint = endpoint
}

// HasCredit reports whether input port p, VC vc can accept a flit.
func (r *Router) HasCredit(p, vc int) bool {
	return r.inv[p*r.nvc+vc].q.space() > 0
}

// Deliver enqueues a flit into input port p, VC vc (pipeline stage 1).
// f.Enq must already hold the arrival instant; the flit is (re)stamped with
// this contention point's Virtual Clock. Callers must respect HasCredit.
func (r *Router) Deliver(p, vc int, f flit.Flit) {
	in := &r.inv[p*r.nvc+vc]
	if f.Msg.Dead {
		// The message was killed while this flit crossed the link: reap it
		// at arrival so the buffer slot is never consumed. Receive-side
		// tracking is released here; wormhole contiguity guarantees any
		// following flit on this VC opens a new message.
		if in.recvMsg == f.Msg {
			in.recvMsg = nil
		}
		r.dropFlit(p)
		return
	}
	if f.IsHeader() {
		if in.recvMsg != nil && in.recvMsg.Dead {
			in.recvMsg = nil // dead worm truncated upstream; VC reopens here
		}
		if in.recvMsg != nil {
			panic("core: header delivered while another message is arriving on the VC")
		}
		in.recvMsg = f.Msg
		in.recvClk.Reset()
		in.received = 0
	}
	if in.recvMsg != f.Msg {
		panic("core: interleaved messages within a VC")
	}
	f.TS = in.recvClk.Stamp(f.Enq, f.Msg.Vtick)
	in.received++
	if in.received == f.Msg.Flits {
		in.recvMsg = nil // tail delivered; VC free for the next message
	}
	in.q.push(f)
}

// Step advances the router one cycle ending at time now. The fabric calls
// Step on every router each cycle, then lets NIs inject.
//
//mw:hotpath
func (r *Router) Step(now sim.Time) {
	r.now = now
	r.routeAndArbitrate(now)
	r.switchTraversal(now)
	r.transmit(now)
}

// routeAndArbitrate implements pipeline stages 2–3 for header flits:
// submit crossbar requests for idle VCs whose head is an eligible header,
// then process each output port's FCFS request list.
func (r *Router) routeAndArbitrate(now sim.Time) {
	// Stage 2: dead-message reaping, then routing decision + request
	// submission. Reaping first keeps killed worms from occupying VCs or
	// submitting requests.
	for p := 0; p < len(r.outs); p++ {
		for v := 0; v < r.nvc; v++ {
			in := &r.inv[p*r.nvc+v]
			r.reapInVC(p, in)
			if in.phase != vcIdle || in.q.empty() {
				continue
			}
			head := in.q.peek()
			if head.Enq >= now { // stage-1 synchronization: not yet visible
				continue
			}
			if !head.IsHeader() {
				panic("core: non-header flit at head of idle VC")
			}
			msg := head.Msg
			cands := r.liveRoute(msg)
			if len(cands) == 0 {
				// No live route (all candidate links down, or the routing
				// function found the destination unreachable): kill the
				// message so its buffered flits are reclaimed rather than
				// blocking the VC forever. Retransmission retries it once
				// a route recovers.
				msg.Kill()
				r.stats.MessagesKilled++
				r.traceKill(p, msg, obs.CauseNoRoute)
				r.reapInVC(p, in)
				continue
			}
			out := cands[0]
			if len(cands) > 1 {
				// Fat links: pick the currently least-loaded candidate
				// (§3.4), ties to the lower port index.
				best, bestLoad := cands[0], r.portLoad(cands[0])
				for _, c := range cands[1:] {
					if l := r.portLoad(c); l < bestLoad {
						best, bestLoad = c, l
					}
				}
				out = best
			}
			in.headMsg = msg
			in.outPort = out
			in.phase = vcRequested
			in.reqSeq = r.seq
			n := r.allocReq()
			r.reqNodes[n] = reqNode{in: int32(p*r.nvc + v), next: -1, at: now, seq: r.seq}
			r.pushReq(&r.outs[out], n)
			r.seq++
			r.stats.RequestsQueued++
		}
	}
	// Stage 3: virtual-channel allocation, FCFS per output port. Requests
	// are granted the cycle they are submitted when a VC is free (the
	// stage-2/3 units are distinct pipeline stages, so routing and
	// allocation of one header overlap); the grant still takes effect at
	// the crossbar one cycle later via grantedAt. The walk rebuilds each
	// port's list in place, freeing granted and retired nodes back to the
	// arena so their references are released.
	for p := 0; p < len(r.outs); p++ {
		op := &r.outs[p]
		if op.reqHead < 0 {
			continue
		}
		n := op.reqHead
		op.reqHead, op.reqTail = -1, -1
		op.reqLen = 0
		for n >= 0 {
			next := r.reqNodes[n].next
			node := &r.reqNodes[n]
			if !r.liveReq(node) {
				r.freeReq(n) // retired by removeRequest
				n = next
				continue
			}
			in := &r.inv[node.in]
			vc, ok := r.allocOutVC(p, op, in.headMsg)
			if !ok {
				r.pushReq(op, n)
				n = next
				continue
			}
			if !op.endpoint || r.cfg.ExclusiveEndpointVCs {
				r.outAt(p, vc).busy = in.headMsg
			}
			in.outVC = vc
			in.phase = vcActive
			in.grantedAt = now
			r.stats.MessagesRouted++
			r.stats.GrantWait += uint64(now - node.at)
			r.stats.GrantWaitCount++
			if r.trc != nil {
				r.trc.Emit(obs.Event{At: now, Kind: obs.EvVCAlloc,
					Router: int16(r.cfg.ID), Port: int16(p), VC: int16(vc),
					Msg: in.headMsg.ID, Class: in.headMsg.Class,
					Arg: int64(now - node.at)})
			}
			r.freeReq(n)
			n = next
		}
		op.stale = 0
	}
}

// allocOutVC picks the output VC for msg on output port p.
//
// At an endpoint port the message's DstVC is used and may be shared by any
// number of in-flight messages: the paper multiplexes multiple connections
// onto one VC (§4.2.1), with the endpoint reassembling frames per message,
// so the final link needs no per-message VC exclusivity. At a transit
// (router-to-router) port the downstream input buffer demultiplexes by VC,
// so messages must hold a VC exclusively; the lowest free VC in the
// message's class partition — narrowed by the topology's VC selector, the
// dateline hook that keeps torus routing deadlock-free — is taken.
func (r *Router) allocOutVC(p int, op *outPort, msg *flit.Message) (int, bool) {
	if op.endpoint {
		if r.cfg.ExclusiveEndpointVCs && r.outAt(p, msg.DstVC).busy != nil {
			return 0, false
		}
		return msg.DstVC, true
	}
	lo, hi := r.classRange(msg.Class)
	if r.cfg.VCSel != nil {
		lo, hi = r.cfg.VCSel(r.cfg.ID, p, msg, lo, hi)
	}
	for v := lo; v < hi; v++ {
		if r.outAt(p, v).busy == nil {
			return v, true
		}
	}
	return 0, false
}

// liveRoute returns msg's routing candidates with dead links filtered out.
// An empty result means "destination currently unreachable" and the caller
// kills the message: fault-aware routing functions legitimately return no
// candidates when a fault elsewhere in the fabric partitions the
// destination away, even while every local link is up.
func (r *Router) liveRoute(msg *flit.Message) []int {
	cands := r.cfg.Route(r.cfg.ID, msg, r.routeCand[:0])
	if len(cands) == 0 {
		return nil
	}
	r.routeBuf = r.routeBuf[:0]
	for _, p := range cands {
		if r.linkUp[p] {
			r.routeBuf = append(r.routeBuf, p)
		}
	}
	return r.routeBuf
}

// reapInVC removes dead-message state from one input VC: buffered flits of
// killed messages are dropped, and a killed head message releases its
// request or output-VC grant so the resources recirculate.
func (r *Router) reapInVC(p int, in *inVC) {
	if in.recvMsg != nil && in.recvMsg.Dead {
		in.recvMsg = nil
	}
	for !in.q.empty() && in.q.peek().Msg.Dead {
		in.q.pop()
		r.dropFlit(p)
	}
	if in.headMsg != nil && in.headMsg.Dead {
		r.traceUnblock(in, r.now)
		switch in.phase {
		case vcIdle:
			// Nothing granted yet, so nothing to tear down.
		case vcRequested:
			r.removeRequest(in)
		case vcActive:
			ov := r.outAt(in.outPort, in.outVC)
			if ov.busy == in.headMsg {
				ov.busy = nil
			}
		}
		in.phase = vcIdle
		in.headMsg = nil
	}
}

// removeRequest retires in's pending crossbar request in O(1): the node
// stays in its output port's FCFS list but stops matching in.reqSeq once
// the caller resets in's phase, and the next stage-3 pass — which walks the
// list anyway — frees it back to the arena. The old ordered mid-slice
// delete re-copied the queue tail on every removal, and left dangling
// references in the backing array.
func (r *Router) removeRequest(in *inVC) {
	r.outs[in.outPort].stale++
}

// classRange returns the VC partition [lo, hi) for a traffic class.
func (r *Router) classRange(c flit.Class) (lo, hi int) {
	if c.RealTime() {
		return 0, r.rtVCs
	}
	return r.rtVCs, r.cfg.VCs
}

// RTVCs returns the current real-time VC partition size.
func (r *Router) RTVCs() int { return r.rtVCs }

// SetRTVCs repartitions the virtual channels at run time (the paper's §6
// "dynamically partitioned resources"). In-flight messages keep the VCs
// they hold; only future allocations see the new boundary. n must lie in
// [0, VCs].
func (r *Router) SetRTVCs(n int) {
	if n < 0 || n > r.cfg.VCs {
		panic("core: SetRTVCs out of range")
	}
	r.rtVCs = n
}

// portLoad estimates congestion on output port p for fat-link selection.
func (r *Router) portLoad(p int) int {
	op := &r.outs[p]
	load := int(op.reqLen - op.stale) // retired nodes carry no load
	for v := 0; v < r.nvc; v++ {
		ov := &r.outv[p*r.nvc+v]
		if ov.busy != nil {
			load++
		}
		load += ov.stage.len()
	}
	return load
}

// switchTraversal implements stage 4. Multiplexed crossbar: per input port,
// the input multiplexer picks one eligible flit (contention point A) whose
// crossbar output has not been claimed this cycle; output claims rotate
// across input ports cycle by cycle so no port is structurally favoured.
// Full crossbar: every eligible VC forwards one flit (each input VC has a
// dedicated crossbar port).
func (r *Router) switchTraversal(now sim.Time) {
	cands := r.cands
	defer func() { r.cands = cands }()
	if r.fullXb {
		r.fullTraversal(now)
		return
	}
	n := len(r.outs)
	if len(r.claimed) < n {
		r.claimed = make([]bool, n)   //mw:hotpath — lazy one-time sizing to the port count; never reallocated after
		r.claimedBy = make([]int8, n) //mw:hotpath — lazy one-time sizing to the port count; never reallocated after
		r.picked = make([]int8, n)    //mw:hotpath — lazy one-time sizing to the port count; never reallocated after
	}
	claimed := r.claimed
	for i := range claimed {
		claimed[i] = false
		r.claimedBy[i] = -1
		r.picked[i] = -1
	}
	// First allocator iteration: each input port's multiplexer picks its
	// scheduler-preferred eligible flit among outputs not yet claimed this
	// cycle. The starting port rotates so no port is structurally favoured.
	start := int(now/r.cfg.Period) % n
	for k := 0; k < n; k++ {
		p := (start + k) % n
		cands = cands[:0]
		for v := 0; v < r.nvc; v++ {
			in := &r.inv[p*r.nvc+v]
			if claimed[in.outPort] && in.phase == vcActive {
				r.stats.BlockedClaimed++
				if !in.q.empty() {
					r.traceBlock(in, now, obs.CauseClaimed)
				}
				continue
			}
			if !r.vcEligible(in, now) {
				if !in.q.empty() {
					switch {
					case in.phase != vcActive:
						r.stats.BlockedNotGranted++
						r.traceBlock(in, now, obs.CauseNotGranted)
					case in.grantedAt >= now || in.q.peek().Enq >= now:
						r.stats.BlockedJustMoved++
						r.traceBlock(in, now, obs.CauseJustMoved)
					default:
						r.stats.BlockedStageFull++
						r.traceBlock(in, now, obs.CauseStageFull)
					}
				}
				continue
			}
			head := in.q.peek()
			cands = append(cands, sched.Candidate{VC: v, TS: head.TS, Enq: head.Enq, Seq: uint64(v)})
		}
		if len(cands) == 0 {
			continue
		}
		w := cands[r.inArbs[p].Pick(cands)].VC
		out := r.inv[p*r.nvc+w].outPort
		claimed[out] = true
		r.claimedBy[out] = int8(p)
		r.picked[p] = int8(w)
	}
	if r.cfg.AllocatorIterations < 2 {
		for p := 0; p < n; p++ {
			if w := r.picked[p]; w >= 0 {
				r.forward(r.inAt(p, int(w)), now)
			}
		}
		return
	}
	// Second allocator iteration (one-step augmentation): an unmatched
	// input whose eligible flits all target claimed outputs may still be
	// served when a claiming input has an eligible alternative to a free
	// output — the claimer is re-pointed there and the contested output
	// handed over. Pipelined routers achieve the same with iterative
	// separable allocators; every input still forwards at most one flit
	// and every output still receives at most one.
	for k := 0; k < n; k++ {
		p := (start + k) % n
		if r.picked[p] >= 0 {
			continue
		}
	vcLoop:
		for v := 0; v < r.nvc; v++ {
			in := &r.inv[p*r.nvc+v]
			if in.phase != vcActive || !claimed[in.outPort] || !r.vcEligible(in, now) {
				continue
			}
			j := r.claimedBy[in.outPort]
			if j < 0 || r.picked[j] < 0 {
				continue
			}
			for jv := 0; jv < r.nvc; jv++ {
				alt := &r.inv[int(j)*r.nvc+jv]
				if jv == int(r.picked[j]) || alt.phase != vcActive ||
					claimed[alt.outPort] || !r.vcEligible(alt, now) {
					continue
				}
				// Re-point input j to the free output and hand the
				// contested one to p.
				claimed[alt.outPort] = true
				r.claimedBy[alt.outPort] = j
				r.picked[j] = int8(jv)
				r.claimedBy[in.outPort] = int8(p)
				r.picked[p] = int8(v)
				break vcLoop
			}
		}
	}
	// Forward the matched flits.
	for p := 0; p < n; p++ {
		if w := r.picked[p]; w >= 0 {
			r.forward(r.inAt(p, int(w)), now)
		}
	}
}

// fullTraversal is stage 4 for the full (n·m × n·m) crossbar: every output
// VC is a dedicated crossbar output that accepts at most one flit per cycle,
// chosen among the input VCs feeding it by the configured policy. There is
// no input multiplexer — all of an input port's VCs may forward in the same
// cycle — so the scheduling points are the crossbar output (here) and the
// physical-channel VC multiplexer (stage 5), matching §3.3's full-crossbar
// analysis.
func (r *Router) fullTraversal(now sim.Time) {
	m := r.nvc
	total := len(r.outs) * m
	if len(r.feeder) < total {
		r.feeder = make([]int32, total)               //mw:hotpath — lazy one-time sizing to ports×VCs; never reallocated after
		r.feederCand = make([]sched.Candidate, total) //mw:hotpath — lazy one-time sizing to ports×VCs; never reallocated after
	}
	for i := 0; i < total; i++ {
		r.feeder[i] = -1
	}
	for i := range r.inv {
		in := &r.inv[i]
		if !r.vcEligible(in, now) {
			continue
		}
		head := in.q.peek()
		c := sched.Candidate{VC: i % m, TS: head.TS, Enq: head.Enq, Seq: uint64(i)}
		key := in.outPort*m + in.outVC
		if r.feeder[key] < 0 || sched.Better(r.cfg.Policy, c, r.feederCand[key]) {
			r.feeder[key] = int32(i)
			r.feederCand[key] = c
		}
	}
	for i := 0; i < total; i++ {
		if r.feeder[i] >= 0 {
			r.forward(&r.inv[r.feeder[i]], now)
		}
	}
}

// vcEligible reports whether in's head flit may traverse the crossbar now.
func (r *Router) vcEligible(in *inVC, now sim.Time) bool {
	if in.phase != vcActive || in.q.empty() {
		return false
	}
	if in.grantedAt >= now { // grant visible next cycle (stage 3→4 boundary)
		return false
	}
	head := in.q.peek()
	if head.Enq >= now { // stage-1 synchronization
		return false
	}
	return r.outAt(in.outPort, in.outVC).stage.space() > 0
}

// forward moves in's head flit through the crossbar into its output VC's
// staging buffer and releases message-granularity resources on the tail.
func (r *Router) forward(in *inVC, now sim.Time) {
	r.traceUnblock(in, now)
	f := in.q.pop()
	ov := r.outAt(in.outPort, in.outVC)
	if r.trc != nil {
		r.trc.Emit(obs.Event{At: now, Kind: obs.EvSwitchArb,
			Router: int16(r.cfg.ID), Port: in.port, VC: in.vcIdx,
			Msg: f.Msg.ID, Class: f.Msg.Class, Seq: int32(f.Seq),
			Arg: int64(in.outPort)<<16 | int64(in.outVC)})
	}
	if f.IsHeader() && ov.busy == f.Msg {
		// Exclusive (transit) VC: a fresh per-message clock, per §3.3's
		// "each message works as if it were a connection". Shared endpoint
		// VCs keep a continuous clock across the messages multiplexed onto
		// them.
		ov.clk.Reset()
	}
	// Restamp for contention point C (meaningful for the full crossbar; with
	// a multiplexed crossbar the mux degenerates to FIFO as in §3.3).
	f.TS = ov.clk.Stamp(now, f.Msg.Vtick)
	f.Enq = now
	ov.stage.push(f)
	r.stats.FlitsSwitched++
	if f.IsTail() {
		in.phase = vcIdle
		in.headMsg = nil
		if ov.busy == f.Msg {
			// Exclusive VC released as the tail enters the staging buffer:
			// the staging FIFO keeps messages contiguous on the link, so
			// the next holder cannot overtake the old tail.
			ov.busy = nil
		}
	}
}

// transmit implements stage 5: each output physical channel sends one flit
// per cycle, chosen by the VC multiplexer among staged flits with downstream
// credit.
func (r *Router) transmit(now sim.Time) {
	cands := r.cands
	defer func() { r.cands = cands }()
	for p := 0; p < len(r.outs); p++ {
		op := &r.outs[p]
		staged := 0
		cands = cands[:0]
		for v := 0; v < r.nvc; v++ {
			ov := &r.outv[p*r.nvc+v]
			// Reap dead worms at this output: staged flits of killed
			// messages are dropped (head-first; a dead worm's flits are
			// flushed within a few cycles even on shared endpoint VCs),
			// and a killed holder releases the VC.
			for !ov.stage.empty() && ov.stage.peek().Msg.Dead {
				ov.stage.pop()
				r.dropFlit(p)
			}
			if ov.busy != nil && ov.busy.Dead {
				ov.busy = nil
			}
			if ov.stage.empty() {
				continue
			}
			staged++
			head := ov.stage.peek()
			if head.Enq >= now { // staged this cycle; send next
				continue
			}
			if !op.consumer.HasCredit(v) {
				continue
			}
			cands = append(cands, sched.Candidate{VC: v, TS: head.TS, Enq: head.Enq, Seq: uint64(v)})
		}
		if !r.linkUp[p] || r.stalled[p] {
			// A dead or stalled link transmits nothing. Staged flits on a
			// stalled link wait; on a dead link they belong to worms killed
			// by SetLinkUp and are reaped above.
			if staged > 0 {
				r.portStats[p].StallCycles++
			}
			continue
		}
		if len(cands) == 0 {
			if staged > 0 { // staged work, no downstream credit
				r.portStats[p].StallCycles++
			}
			continue
		}
		v := cands[op.arb.Pick(cands)].VC
		ov := r.outAt(p, v)
		f := ov.stage.pop()
		if r.corrupt != nil && r.corrupt(p, f) {
			// The flit is corrupted on the wire: the whole message is lost
			// (wormhole has no flit-level recovery) and unravels.
			f.Msg.Kill()
			r.stats.MessagesKilled++
			r.traceKill(p, f.Msg, obs.CauseCorrupt)
			r.dropFlit(p)
			continue
		}
		f.Enq = now + r.cfg.Period // arrival downstream after the wire
		if r.trc != nil {
			// Emit before Accept: a sink consumer ejects the flit at its
			// downstream arrival time (now+Period), and per-lane timestamps
			// must stay non-decreasing in emission order.
			r.trc.Emit(obs.Event{At: now, Kind: obs.EvLinkTraverse,
				Router: int16(r.cfg.ID), Port: int16(p), VC: int16(v),
				Msg: f.Msg.ID, Class: f.Msg.Class, Seq: int32(f.Seq),
				Arg: obs.TSArg(f.TS)})
		}
		op.consumer.Accept(v, f)
		r.stats.FlitsTransmitted++
	}
}

// Blocked describes one input VC whose worm holds buffer space while waiting
// on a switching resource — the nodes of the watchdog's wait-for graph.
type Blocked struct {
	// Router is the router's fabric ID; InPort/InVC locate the parked worm.
	Router, InPort, InVC int
	// OutPort is the output the worm targets. OutVC is its granted output
	// VC, or -1 while it still awaits virtual-channel allocation.
	OutPort, OutVC int
	// Msg is the waiting message. Holder, for ungranted worms, is the
	// message holding the first busy VC of the class partition the worm
	// needs (nil if none is visible). The watchdog kills Msg directly when
	// breaking a deadlock.
	Msg, Holder *flit.Message
}

// BlockedWorms returns every input VC whose worm is waiting on a switching
// resource: granted worms waiting for staging space or downstream credit,
// and requested worms waiting for an output VC. The fabric's deadlock
// watchdog chains these across routers into a wait-for cycle.
func (r *Router) BlockedWorms() []Blocked {
	var out []Blocked
	for p := 0; p < len(r.outs); p++ {
		for v := 0; v < r.nvc; v++ {
			in := &r.inv[p*r.nvc+v]
			if in.phase == vcIdle || in.headMsg == nil {
				continue
			}
			b := Blocked{
				Router: r.cfg.ID, InPort: p, InVC: v,
				OutPort: in.outPort, OutVC: -1, Msg: in.headMsg,
			}
			if in.phase == vcActive {
				b.OutVC = in.outVC
			} else {
				op := &r.outs[in.outPort]
				if op.endpoint {
					b.Holder = r.outAt(in.outPort, in.headMsg.DstVC).busy
				} else {
					lo, hi := r.classRange(in.headMsg.Class)
					if r.cfg.VCSel != nil {
						lo, hi = r.cfg.VCSel(r.cfg.ID, in.outPort, in.headMsg, lo, hi)
					}
					for vv := lo; vv < hi; vv++ {
						if m := r.outAt(in.outPort, vv).busy; m != nil {
							b.Holder = m
							break
						}
					}
				}
			}
			out = append(out, b)
		}
	}
	return out
}

// Quiesced reports whether the router holds no flits and no pending
// requests — used by tests and the fabric's self-check.
func (r *Router) Quiesced() bool {
	for i := range r.inv {
		if !r.inv[i].q.empty() || r.inv[i].phase != vcIdle {
			return false
		}
	}
	for p := range r.outs {
		if r.outs[p].reqHead >= 0 {
			return false
		}
	}
	for i := range r.outv {
		if !r.outv[i].stage.empty() || r.outv[i].busy != nil {
			return false
		}
	}
	return true
}
