package core

import (
	"testing"

	"mediaworm/internal/flit"
)

func TestRingFIFO(t *testing.T) {
	r := newRing(3)
	msgs := []*flit.Message{{ID: 1}, {ID: 2}, {ID: 3}}
	for i, m := range msgs {
		r.push(flit.Flit{Msg: m, Seq: i})
	}
	if r.space() != 0 || r.len() != 3 {
		t.Fatalf("space %d len %d", r.space(), r.len())
	}
	for i, m := range msgs {
		f := r.pop()
		if f.Msg != m || f.Seq != i {
			t.Fatalf("pop %d returned %+v", i, f)
		}
	}
	if !r.empty() {
		t.Fatal("ring not empty after draining")
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing(2)
	m := &flit.Message{}
	for i := 0; i < 100; i++ {
		r.push(flit.Flit{Msg: m, Seq: i})
		if i > 0 {
			if f := r.pop(); f.Seq != i-1 {
				t.Fatalf("wraparound broke FIFO at %d: got %d", i, f.Seq)
			}
		}
	}
}

func TestRingOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	r := newRing(1)
	r.push(flit.Flit{})
	r.push(flit.Flit{})
}

func TestRingPeekEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("peek on empty did not panic")
		}
	}()
	r := newRing(1)
	r.peek()
}

func TestRingZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	newRing(0)
}

func TestRingPopReleasesMessage(t *testing.T) {
	r := newRing(1)
	r.push(flit.Flit{Msg: &flit.Message{}})
	r.pop()
	if r.buf[0].Msg != nil {
		t.Fatal("pop retained the message pointer")
	}
}
