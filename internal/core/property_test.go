package core

import (
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// seqCapture records delivery order per message and counts flits.
type seqCapture struct {
	nextSeq map[*flit.Message]int
	flits   int
	t       *testing.T
}

func newSeqCapture(t *testing.T) *seqCapture {
	return &seqCapture{nextSeq: map[*flit.Message]int{}, t: t}
}

func (c *seqCapture) HasCredit(int) bool { return true }

func (c *seqCapture) Accept(vc int, f flit.Flit) {
	if f.Seq != c.nextSeq[f.Msg] {
		c.t.Fatalf("message %d flit %d delivered out of order (want %d)",
			f.Msg.ID, f.Seq, c.nextSeq[f.Msg])
	}
	c.nextSeq[f.Msg]++
	c.flits++
}

// upstreamVC models a wormhole-correct upstream feeder: messages on one VC
// are delivered contiguously, one flit per link cycle at most.
type upstreamVC struct {
	msgs []*flit.Message
	mi   int // current message
	fi   int // next flit of the current message
}

func (u *upstreamVC) done() bool { return u.mi == len(u.msgs) }

// TestPropertyConservationAndOrder drives randomized router configurations
// with randomized wormhole traffic and checks the core invariants: every
// injected flit is delivered exactly once, per-message flit order is
// preserved, destinations are respected, and the router quiesces.
func TestPropertyConservationAndOrder(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rng.NewStream(77, "core-property").Split(uint64(trial))
		ports := 2 + r.Intn(6)   // 2..7
		vcs := 1 + r.Intn(4)     // 1..4
		rtVCs := r.Intn(vcs + 1) // 0..vcs
		policy := sched.Kind(r.Intn(3))
		full := r.Intn(2) == 1
		iters := 1 + r.Intn(2)
		exclusive := r.Intn(2) == 1
		cfg := Config{
			Ports: ports, VCs: vcs, RTVCs: rtVCs,
			BufferDepth: 2 + r.Intn(30), StageDepth: 1 + r.Intn(6),
			FullCrossbar: full, Policy: policy, Period: period,
			AllocatorIterations:  iters,
			ExclusiveEndpointVCs: exclusive,
			Route:                func(_ int, m *flit.Message, buf []int) []int { return append(buf, m.Dst) },
		}
		router, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		caps := make([]*seqCapture, ports)
		for p := 0; p < ports; p++ {
			caps[p] = newSeqCapture(t)
			router.Connect(p, caps[p], true)
		}

		// Random messages spread over input (port, vc) feeders.
		feeders := make([][]upstreamVC, ports)
		for p := range feeders {
			feeders[p] = make([]upstreamVC, vcs)
		}
		totalFlits := 0
		nMsgs := 5 + r.Intn(60)
		for i := 0; i < nMsgs; i++ {
			p := r.Intn(ports)
			v := r.Intn(vcs)
			class := flit.VBR
			vtick := sim.Time(1 + r.Intn(500))
			if rtVCs == 0 || (rtVCs < vcs && r.Intn(2) == 1) {
				class = flit.BestEffort
				vtick = sim.Forever
			}
			m := &flit.Message{
				ID: uint64(i + 1), StreamID: i, Class: class, MsgsInFrame: 1,
				Flits: 1 + r.Intn(40), Vtick: vtick,
				Dst: r.Intn(ports), DstVC: r.Intn(vcs),
			}
			fv := &feeders[p][v]
			fv.msgs = append(fv.msgs, m)
			totalFlits += m.Flits
		}

		// Drive: one flit per port per cycle from a random eligible VC,
		// respecting credits; step the router; stop when drained.
		now := period
		idle := 0
		for cycle := 0; idle < 200; cycle++ {
			if cycle > 200000 {
				t.Fatalf("trial %d: no progress after %d cycles", trial, cycle)
			}
			progressed := false
			for p := 0; p < ports; p++ {
				// Gather VCs with pending flits and credit.
				var eligible []int
				for v := 0; v < vcs; v++ {
					if !feeders[p][v].done() && router.HasCredit(p, v) {
						eligible = append(eligible, v)
					}
				}
				if len(eligible) == 0 {
					continue
				}
				v := eligible[r.Intn(len(eligible))]
				fv := &feeders[p][v]
				m := fv.msgs[fv.mi]
				router.Deliver(p, v, flit.Flit{Msg: m, Seq: fv.fi, Enq: now})
				fv.fi++
				if fv.fi == m.Flits {
					fv.mi++
					fv.fi = 0
				}
				progressed = true
			}
			router.Step(now)
			now += period
			if progressed || !router.Quiesced() {
				idle = 0
			} else {
				idle++
			}
		}

		if !router.Quiesced() {
			t.Fatalf("trial %d: router did not quiesce", trial)
		}
		delivered := 0
		for p, c := range caps {
			for m, n := range c.nextSeq {
				if m.Dst != p {
					t.Fatalf("trial %d: message %d for port %d arrived at %d",
						trial, m.ID, m.Dst, p)
				}
				if n != m.Flits {
					t.Fatalf("trial %d: message %d delivered %d/%d flits",
						trial, m.ID, n, m.Flits)
				}
			}
			delivered += c.flits
		}
		if delivered != totalFlits {
			t.Fatalf("trial %d: delivered %d flits, injected %d", trial, delivered, totalFlits)
		}
		st := router.Stats()
		if st.FlitsSwitched != uint64(totalFlits) || st.FlitsTransmitted != uint64(totalFlits) {
			t.Fatalf("trial %d: stats %+v vs %d flits", trial, st, totalFlits)
		}
	}
}
