// Package runner executes independent sweep points across a bounded worker
// pool while preserving the exact observable behaviour of a serial loop.
//
// Every reproduced figure is a grid of simulation points, and each point is
// a pure function of its seeded Config — so the only way concurrency could
// change a sweep's output is through ordering. The runner closes every such
// channel:
//
//   - Results are reassembled positionally: worker i writes slot i, so the
//     returned slice is independent of completion order.
//   - Work items carry their grid index; any per-point randomness must be
//     derived from (seed, index) before dispatch (see rng.DeriveSeed), never
//     from goroutine identity or scheduling.
//   - Completion callbacks (Options.OnDone) fire on the calling goroutine in
//     strictly increasing index order, so progress lines and trace sinks
//     observe the serial order no matter which worker finished first.
//   - On failure the lowest-indexed genuine error wins, pending points are
//     cancelled via context, and in-flight points that honour ctx abort.
//
// Map returns only after every worker goroutine has exited: it never leaks
// goroutines, even on error or external cancellation.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes one Map call.
type Options struct {
	// Workers bounds concurrency: 1 runs serially on the calling goroutine,
	// <= 0 uses runtime.GOMAXPROCS(0). More workers than points is clamped.
	Workers int
	// OnDone, if non-nil, is invoked once per successfully completed index,
	// from the calling goroutine, in strictly increasing index order (each
	// index fires only after all lower indices completed). It stops at the
	// first failed index. Use it for progress reporting and other ordered
	// side effects that must match a serial sweep.
	OnDone func(index int)
	// CellTimeout bounds each point's wall-clock run time; a point that
	// exceeds it has its context cancelled and fails with *TimeoutError.
	// The timeout is per attempt, not amortized over retries. 0 disables.
	CellTimeout time.Duration
	// Retries re-runs a failed point up to this many extra times before its
	// error counts. Points are pure functions of their index, so a retry is
	// aimed at environmental failures (timeouts, resource exhaustion), not
	// at nondeterminism — a deterministic failure just fails Retries+1
	// times. Retrying stops immediately once the sweep is cancelled.
	Retries int
}

// Error reports which grid index failed; Unwrap yields the point's error.
type Error struct {
	Index int
	Err   error
}

func (e *Error) Error() string { return fmt.Sprintf("point %d: %v", e.Index, e.Err) }
func (e *Error) Unwrap() error { return e.Err }

// PanicError is a panic captured inside one point's evaluation. The panic is
// confined to its grid cell — sibling points keep running until the normal
// first-error-wins shutdown — and the stack is preserved for the report.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// TimeoutError reports a point that exceeded Options.CellTimeout. It
// deliberately does not unwrap to context.DeadlineExceeded: a timed-out
// cell is a genuine per-point failure, not cancellation fallout from a
// sibling, and must win error selection the way any other failure does.
type TimeoutError struct {
	Limit time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("timed out after %v", e.Limit)
}

// invoke runs fn(ctx, index) with panic confinement.
func invoke[T any](ctx context.Context, index int, fn func(ctx context.Context, index int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v, err = zero, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, index)
}

// callCell evaluates one grid point under the per-cell policy: panic
// confinement, optional per-attempt timeout, bounded retries. Cancellation
// of the sweep context stops retrying and surfaces the cancellation so the
// collector classifies it as fallout, not as the point's own failure.
func callCell[T any](ctx context.Context, index int, opt Options, fn func(ctx context.Context, index int) (T, error)) (T, error) {
	var zero T
	var err error
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return zero, cerr
		}
		cellCtx, cancel := ctx, func() {}
		if opt.CellTimeout > 0 {
			cellCtx, cancel = context.WithTimeout(ctx, opt.CellTimeout)
		}
		var v T
		v, err = invoke(cellCtx, index, fn)
		timedOut := cellCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil
		cancel()
		if err == nil {
			return v, nil
		}
		if ctx.Err() != nil {
			// The sweep is shutting down: stop retrying, but return the
			// cell's own error untouched. A genuine failure that races a
			// sibling's cancellation is still a genuine failure, and the
			// collector must see it to keep lowest-genuine-index reporting.
			return zero, err
		}
		if timedOut {
			err = &TimeoutError{Limit: opt.CellTimeout}
		}
	}
	return zero, err
}

// Map evaluates fn for every index in [0, n) with at most opt.Workers
// concurrent calls and returns the results in index order. fn must be safe
// for concurrent invocation and deterministic in its index (it receives ctx
// so long-running points can abort once a sibling fails).
//
// The first error cancels ctx and aborts all pending points; the returned
// *Error names the lowest-indexed point that genuinely failed (cancellation
// fallout from sibling failures is reported only if no genuine failure is
// observed). On error the result slice is nil.
func Map[T any](ctx context.Context, n int, opt Options, fn func(ctx context.Context, index int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative point count %d", n)
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return mapSerial(ctx, out, opt, fn)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		index int
		err   error
	}
	// Buffered to n so workers never block on a collector that has already
	// seen an error and is only draining.
	done := make(chan outcome, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					done <- outcome{i, err}
					continue
				}
				v, err := callCell(ctx, i, opt, fn)
				if err == nil {
					out[i] = v
				}
				done <- outcome{i, err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Collect on the calling goroutine. completed marks successful indices;
	// frontier is the next index whose OnDone has not fired. A failed index
	// never completes, so the frontier freezes there and ordered side
	// effects stop exactly where a serial sweep would have stopped.
	completed := make([]bool, n)
	frontier := 0
	firstIdx, cancelledIdx := -1, -1
	var firstErr, cancelledErr error
	for o := range done {
		if o.err != nil {
			cancel()
			if errors.Is(o.err, context.Canceled) || errors.Is(o.err, context.DeadlineExceeded) {
				if cancelledIdx == -1 || o.index < cancelledIdx {
					cancelledIdx, cancelledErr = o.index, o.err
				}
			} else if firstIdx == -1 || o.index < firstIdx {
				firstIdx, firstErr = o.index, o.err
			}
			continue
		}
		completed[o.index] = true
		for frontier < n && completed[frontier] {
			if opt.OnDone != nil {
				opt.OnDone(frontier)
			}
			frontier++
		}
	}
	if firstErr != nil {
		return nil, &Error{Index: firstIdx, Err: firstErr}
	}
	if cancelledErr != nil {
		return nil, &Error{Index: cancelledIdx, Err: cancelledErr}
	}
	return out, nil
}

// mapSerial is the Workers <= 1 path: a plain loop, byte-for-byte the
// behaviour the parallel path must reproduce.
func mapSerial[T any](ctx context.Context, out []T, opt Options, fn func(ctx context.Context, index int) (T, error)) ([]T, error) {
	for i := range out {
		if err := ctx.Err(); err != nil {
			return nil, &Error{Index: i, Err: err}
		}
		v, err := callCell(ctx, i, opt, fn)
		if err != nil {
			return nil, &Error{Index: i, Err: err}
		}
		out[i] = v
		if opt.OnDone != nil {
			opt.OnDone(i)
		}
	}
	return out, nil
}
