package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// square is the reference pure point function.
func square(_ context.Context, i int) (int, error) { return i * i, nil }

// scrambled delays completion by an index-dependent amount so completion
// order differs from dispatch order, stressing positional reassembly and the
// ordered-OnDone frontier.
func scrambled(_ context.Context, i int) (int, error) {
	time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
	return i * i, nil
}

func TestMapMatchesSerialAcrossWorkerCounts(t *testing.T) {
	const n = 40
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 3, 4, 8, 64} {
		var order []int
		got, err := Map(context.Background(), n, Options{
			Workers: workers,
			OnDone:  func(i int) { order = append(order, i) },
		}, scrambled)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
		if len(order) != n {
			t.Fatalf("workers=%d: OnDone fired %d times, want %d", workers, len(order), n)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("workers=%d: OnDone order %v not monotone at %d", workers, order, i)
			}
		}
	}
}

func TestMapZeroAndNegativePoints(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{Workers: 4}, square)
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	if _, err := Map(context.Background(), -1, Options{}, square); err == nil {
		t.Fatal("n=-1: expected error")
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		const n, fail = 20, 11
		var order []int
		got, err := Map(context.Background(), n, Options{
			Workers: workers,
			OnDone:  func(i int) { order = append(order, i) },
		}, func(_ context.Context, i int) (int, error) {
			if i == fail {
				return 0, boom
			}
			return i, nil
		})
		if got != nil {
			t.Fatalf("workers=%d: non-nil results on error", workers)
		}
		var re *Error
		if !errors.As(err, &re) || re.Index != fail || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error %v, want *Error{Index: %d} wrapping boom", workers, err, fail)
		}
		// OnDone must be a contiguous prefix strictly below the failing index.
		for i, v := range order {
			if v != i {
				t.Fatalf("workers=%d: OnDone order %v not a contiguous prefix", workers, order)
			}
		}
		if len(order) > fail {
			t.Fatalf("workers=%d: OnDone reached %d, past failing index %d", workers, len(order)-1, fail)
		}
	}
}

// TestMapLowestGenuineErrorWins induces two genuine failures; the reported
// index must be the lower one regardless of which worker finishes first.
func TestMapLowestGenuineErrorWins(t *testing.T) {
	for run := 0; run < 10; run++ {
		_, err := Map(context.Background(), 16, Options{Workers: 8}, func(_ context.Context, i int) (int, error) {
			switch i {
			case 5:
				time.Sleep(2 * time.Millisecond) // let the higher index land first
				return 0, fmt.Errorf("low failure")
			case 12:
				return 0, fmt.Errorf("high failure")
			}
			return i, nil
		})
		var re *Error
		if !errors.As(err, &re) {
			t.Fatalf("error %v, want *Error", err)
		}
		if re.Index != 5 {
			t.Fatalf("reported index %d, want lowest genuine failure 5", re.Index)
		}
	}
}

// TestMapCancelAbortsInFlight arms long-running points that block on ctx:
// the failing point must cancel them, and Map must return promptly rather
// than wait out the stall.
func TestMapCancelAbortsInFlight(t *testing.T) {
	start := time.Now()
	_, err := Map(context.Background(), 8, Options{Workers: 8}, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			time.Sleep(time.Millisecond) // let siblings start and block
			return 0, errors.New("fail fast")
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(10 * time.Second):
			return 0, errors.New("cancellation never arrived")
		}
	})
	var re *Error
	if !errors.As(err, &re) || re.Index != 0 {
		t.Fatalf("error %v, want *Error{Index: 0}", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Map took %v; in-flight points were not cancelled", elapsed)
	}
}

func TestMapExternalContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := Map(ctx, 32, Options{Workers: 4}, func(ctx context.Context, i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("%d points ran under a pre-cancelled context", n)
	}
}

// TestMapNoGoroutineLeak runs the pool through success, failure, and
// cancellation cycles and checks the goroutine count returns to its
// baseline: Map must be fully synchronous — workers drained before return.
func TestMapNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	boom := errors.New("boom")
	for round := 0; round < 25; round++ {
		if _, err := Map(context.Background(), 12, Options{Workers: 6}, scrambled); err != nil {
			t.Fatal(err)
		}
		_, err := Map(context.Background(), 12, Options{Workers: 6}, func(_ context.Context, i int) (int, error) {
			if i == round%12 {
				return 0, boom
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("round %d: %v", round, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Map(ctx, 12, Options{Workers: 6}, square); !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// FuzzMap drives the pool over arbitrary (workers, points, failing index)
// triples: results must always be positional, OnDone monotone, and the
// failing index (when in range) must be the reported error.
func FuzzMap(f *testing.F) {
	f.Add(1, 1, 0)
	f.Add(4, 16, 7)
	f.Add(8, 3, -1)
	f.Add(2, 64, 63)
	f.Add(16, 5, 5) // failing index out of range: clean run
	f.Fuzz(func(t *testing.T, workers, points, failIdx int) {
		workers %= 17
		if workers < 0 {
			workers = -workers
		}
		points %= 65
		if points < 0 {
			points = -points
		}
		boom := errors.New("boom")
		var order []int
		got, err := Map(context.Background(), points, Options{
			Workers: workers,
			OnDone:  func(i int) { order = append(order, i) },
		}, func(_ context.Context, i int) (int, error) {
			if i == failIdx {
				return 0, boom
			}
			return 3*i + 1, nil
		})
		for i, v := range order {
			if v != i {
				t.Fatalf("OnDone order %v not a contiguous monotone prefix", order)
			}
		}
		if failIdx >= 0 && failIdx < points {
			var re *Error
			if !errors.As(err, &re) || re.Index != failIdx || !errors.Is(err, boom) {
				t.Fatalf("workers=%d points=%d fail=%d: error %v, want *Error{Index: %d}",
					workers, points, failIdx, err, failIdx)
			}
			if len(order) > failIdx {
				t.Fatalf("OnDone reached %d, past failing index %d", len(order)-1, failIdx)
			}
			return
		}
		if err != nil {
			t.Fatalf("clean grid errored: %v", err)
		}
		if len(got) != points || len(order) != points {
			t.Fatalf("got %d results, %d OnDone calls, want %d", len(got), len(order), points)
		}
		for i := range got {
			if got[i] != 3*i+1 {
				t.Fatalf("got[%d] = %d, want %d", i, got[i], 3*i+1)
			}
		}
	})
}
