package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// A Manifest is the crash-resilient journal of a sweep: one JSONL file with
// a header line identifying the sweep and one line per completed grid cell,
// fsynced as it is appended. A rerun opens the same manifest, skips the
// recorded cells, and recomputes only what is missing — so a sweep killed
// mid-grid resumes instead of restarting, and the reassembled output is
// byte-identical to an uninterrupted run.
//
// The file tolerates exactly one kind of damage: a truncated final line,
// which is what a crash mid-append leaves behind. That fragment is
// discarded (its cell reruns). Any other malformed line means the file is
// not a manifest, or not this sweep's manifest, and opening fails rather
// than silently recomputing — or worse, silently trusting — the wrong grid.
type Manifest struct {
	path string
	key  string
	done map[int]json.RawMessage
	f    *os.File
}

// manifestHeader is the first line of a manifest file.
type manifestHeader struct {
	Manifest string `json:"manifest"`
	Version  int    `json:"version"`
	Key      string `json:"key"`
}

// manifestEntry is one completed-cell line.
type manifestEntry struct {
	Index   int             `json:"index"`
	Payload json.RawMessage `json:"payload"`
}

const (
	manifestName    = "mwsweep"
	manifestVersion = 1
)

// OpenManifest opens path for the sweep identified by key (a fingerprint of
// the full sweep configuration), creating it with a fresh header if absent.
// An existing file must carry the same key: a manifest from a different
// sweep is an error, not a cache.
func OpenManifest(path, key string) (*Manifest, error) {
	m := &Manifest{path: path, key: key, done: make(map[int]json.RawMessage)}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return m, m.create()
	case err != nil:
		return nil, fmt.Errorf("runner: manifest %s: %w", path, err)
	}
	valid, err := m.load(data)
	if err != nil {
		return nil, err
	}
	if valid < len(data) {
		// Cut the crash-truncated tail off the file itself, so the next
		// Record starts a clean line instead of gluing onto the fragment.
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, fmt.Errorf("runner: manifest %s: %w", path, err)
		}
	}
	m.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: manifest %s: %w", path, err)
	}
	return m, nil
}

func (m *Manifest) create() error {
	f, err := os.OpenFile(m.path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("runner: manifest %s: %w", m.path, err)
	}
	line, err := json.Marshal(manifestHeader{Manifest: manifestName, Version: manifestVersion, Key: m.key})
	if err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("runner: manifest %s: %w", m.path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("runner: manifest %s: %w", m.path, err)
	}
	m.f = f
	return nil
}

// load parses the manifest, returning the byte length of its valid prefix —
// everything through the last fully-parsed line. A shorter-than-data prefix
// means the tail is crash debris the caller should truncate away.
func (m *Manifest) load(data []byte) (valid int, err error) {
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends with '\n', leaving an empty final split; a
	// non-empty final fragment is a crash-truncated append. Neither is an
	// entry, so the last split is always dropped.
	if n := len(lines); n > 0 {
		lines = lines[:n-1]
	}
	if len(lines) == 0 {
		return 0, fmt.Errorf("runner: manifest %s: empty file", m.path)
	}
	var hdr manifestHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Manifest != manifestName {
		return 0, fmt.Errorf("runner: manifest %s: not a sweep manifest", m.path)
	}
	if hdr.Version != manifestVersion {
		return 0, fmt.Errorf("runner: manifest %s: version %d, this build writes %d", m.path, hdr.Version, manifestVersion)
	}
	if hdr.Key != m.key {
		return 0, fmt.Errorf("runner: manifest %s belongs to a different sweep (key %q, want %q)", m.path, hdr.Key, m.key)
	}
	valid = len(lines[0]) + 1
	for i, line := range lines[1:] {
		var e manifestEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines[1:])-1 {
				// Final complete-looking line that still fails to parse:
				// also crash debris (the '\n' made it to disk, the payload
				// bytes did not all survive). Rerun that cell.
				return valid, nil
			}
			return 0, fmt.Errorf("runner: manifest %s: line %d corrupt: %v", m.path, i+2, err)
		}
		if e.Index < 0 {
			return 0, fmt.Errorf("runner: manifest %s: line %d: negative index %d", m.path, i+2, e.Index)
		}
		m.done[e.Index] = e.Payload
		valid += len(line) + 1
	}
	return valid, nil
}

// Done returns the recorded payload for a grid index, if that cell already
// completed in a previous run.
func (m *Manifest) Done(index int) (json.RawMessage, bool) {
	p, ok := m.done[index]
	return p, ok
}

// CountDone reports how many cells the manifest already records.
func (m *Manifest) CountDone() int { return len(m.done) }

// Record journals one completed cell and fsyncs, so a crash immediately
// after a cell finishes cannot lose it.
func (m *Manifest) Record(index int, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("runner: manifest %s: cell %d: %w", m.path, index, err)
	}
	line, err := json.Marshal(manifestEntry{Index: index, Payload: raw})
	if err != nil {
		return err
	}
	if _, err := m.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runner: manifest %s: %w", m.path, err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("runner: manifest %s: %w", m.path, err)
	}
	m.done[index] = raw
	return nil
}

// Close closes the journal file. Recorded state stays on disk for resume.
func (m *Manifest) Close() error {
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}
