package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Panic confinement: a panicking cell must become a *PanicError for that
// index, with the stack preserved, on both the serial and parallel paths —
// and the lowest genuinely-failing index must still win.
func TestMapConfinesPanics(t *testing.T) {
	boom := func(_ context.Context, i int) (int, error) {
		if i == 3 {
			panic("cell exploded")
		}
		return i, nil
	}
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 8, Options{Workers: workers}, boom)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v, want PanicError", workers, err)
		}
		if pe.Value != "cell exploded" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError value=%v stack=%d bytes", workers, pe.Value, len(pe.Stack))
		}
		var re *Error
		if !errors.As(err, &re) || re.Index != 3 {
			t.Fatalf("workers=%d: error index = %v, want 3", workers, err)
		}
		if !strings.Contains(err.Error(), "cell exploded") {
			t.Fatalf("workers=%d: error text %q lacks panic value", workers, err)
		}
	}
}

// Two panicking cells: the lower index must be reported even if the higher
// one finishes first.
func TestMapPanicLowestIndexWins(t *testing.T) {
	boom := func(_ context.Context, i int) (int, error) {
		switch i {
		case 2:
			time.Sleep(20 * time.Millisecond)
			panic("slow low panic")
		case 6:
			panic("fast high panic")
		}
		return i, nil
	}
	_, err := Map(context.Background(), 8, Options{Workers: 8}, boom)
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want *Error", err)
	}
	if re.Index != 2 {
		t.Fatalf("reported index %d, want 2 (lowest genuine failure)", re.Index)
	}
}

// CellTimeout: a hung cell must fail with *TimeoutError — a genuine failure
// that wins over sibling cancellation fallout — while fast cells complete.
func TestMapCellTimeout(t *testing.T) {
	hang := func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return i, nil
	}
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 4, Options{
			Workers:     workers,
			CellTimeout: 30 * time.Millisecond,
		}, hang)
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: got %v, want TimeoutError", workers, err)
		}
		var re *Error
		if !errors.As(err, &re) || re.Index != 1 {
			t.Fatalf("workers=%d: error index = %v, want 1", workers, err)
		}
		// The classification contract: a cell timeout must NOT look like
		// context cancellation, or the collector would demote it.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: TimeoutError unwraps to a context error", workers)
		}
	}
}

// Retries: a cell that fails transiently must succeed within its retry
// budget; a deterministic failure must fail after exactly Retries+1
// attempts.
func TestMapRetries(t *testing.T) {
	var attempts atomic.Int64
	flaky := func(_ context.Context, i int) (int, error) {
		if i == 2 && attempts.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return i, nil
	}
	got, err := Map(context.Background(), 4, Options{Workers: 1, Retries: 2}, flaky)
	if err != nil {
		t.Fatalf("flaky cell not recovered: %v", err)
	}
	if got[2] != 2 {
		t.Fatalf("got[2] = %d, want 2", got[2])
	}

	var calls atomic.Int64
	always := func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return 0, errors.New("deterministic")
	}
	_, err = Map(context.Background(), 1, Options{Workers: 1, Retries: 3}, always)
	if err == nil {
		t.Fatal("deterministic failure succeeded")
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("deterministic cell attempted %d times, want 4 (1 + 3 retries)", n)
	}
}

// Retrying must stop once the sweep context is cancelled.
func TestMapRetryStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	failing := func(_ context.Context, i int) (int, error) {
		if calls.Add(1) == 1 {
			cancel()
		}
		return 0, errors.New("boom")
	}
	_, err := Map(ctx, 1, Options{Workers: 1, Retries: 100}, failing)
	if err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
	if n := calls.Load(); n > 2 {
		t.Fatalf("retried %d times into a cancelled sweep", n)
	}
}

type cellPayload struct {
	Index int    `json:"index"`
	Note  string `json:"note"`
}

// Manifest round-trip: record some cells, reopen, and find exactly those
// cells marked done with their payloads intact.
func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, err := OpenManifest(path, "key-a")
	if err != nil {
		t.Fatalf("OpenManifest: %v", err)
	}
	for _, i := range []int{0, 2, 5} {
		if err := m.Record(i, cellPayload{Index: i, Note: "done"}); err != nil {
			t.Fatalf("Record(%d): %v", i, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, err := OpenManifest(path, "key-a")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if m2.CountDone() != 3 {
		t.Fatalf("CountDone = %d, want 3", m2.CountDone())
	}
	for _, i := range []int{0, 2, 5} {
		raw, ok := m2.Done(i)
		if !ok {
			t.Fatalf("cell %d not recorded", i)
		}
		if !strings.Contains(string(raw), `"note":"done"`) {
			t.Fatalf("cell %d payload %s", i, raw)
		}
	}
	if _, ok := m2.Done(1); ok {
		t.Fatal("cell 1 spuriously recorded")
	}
	// Appending after reopen must extend, not clobber.
	if err := m2.Record(7, cellPayload{Index: 7}); err != nil {
		t.Fatalf("Record after reopen: %v", err)
	}
	m3, err := OpenManifest(path, "key-a")
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer m3.Close()
	if m3.CountDone() != 4 {
		t.Fatalf("CountDone after append = %d, want 4", m3.CountDone())
	}
}

// A crash mid-append leaves a truncated final line; reopening must drop
// exactly that cell and keep everything before it.
func TestManifestTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, err := OpenManifest(path, "key-a")
	if err != nil {
		t.Fatalf("OpenManifest: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Record(i, cellPayload{Index: i}); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	m.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenManifest(path, "key-a")
	if err != nil {
		t.Fatalf("reopen truncated: %v", err)
	}
	defer m2.Close()
	if m2.CountDone() != 2 {
		t.Fatalf("CountDone = %d, want 2 (cell 2's line was truncated)", m2.CountDone())
	}
	if _, ok := m2.Done(2); ok {
		t.Fatal("truncated cell 2 reported done")
	}
	// The next Record must produce a parseable file again.
	if err := m2.Record(2, cellPayload{Index: 2}); err != nil {
		t.Fatalf("Record over truncation: %v", err)
	}
	m2.Close()
	m3, err := OpenManifest(path, "key-a")
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	defer m3.Close()
	if m3.CountDone() != 3 {
		t.Fatalf("CountDone after repair = %d, want 3", m3.CountDone())
	}
}

// A manifest from a different sweep (different key) must be refused.
func TestManifestKeyMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, err := OpenManifest(path, "key-a")
	if err != nil {
		t.Fatalf("OpenManifest: %v", err)
	}
	m.Record(0, cellPayload{})
	m.Close()
	if _, err := OpenManifest(path, "key-b"); err == nil {
		t.Fatal("foreign manifest accepted")
	}
	if _, err := OpenManifest(filepath.Join(t.TempDir(), "x"), "key"); err != nil {
		t.Fatalf("fresh manifest in new dir: %v", err)
	}
}

// A file that is not a manifest at all must be refused, as must one with
// corruption before the final line.
func TestManifestCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	notManifest := filepath.Join(dir, "not.manifest")
	if err := os.WriteFile(notManifest, []byte("hello\nworld\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifest(notManifest, "k"); err == nil {
		t.Fatal("non-manifest file accepted")
	}

	path := filepath.Join(dir, "sweep.manifest")
	m, err := OpenManifest(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	m.Record(0, cellPayload{})
	m.Record(1, cellPayload{})
	m.Close()
	data, _ := os.ReadFile(path)
	mid := strings.Replace(string(data), `{"index":0`, `{"index!!0`, 1)
	if err := os.WriteFile(path, []byte(mid), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenManifest(path, "k"); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}
