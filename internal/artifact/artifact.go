// Package artifact writes output files atomically. Every figure, CSV, and
// checkpoint the tools produce is written to a temporary file in the target
// directory, synced, and renamed into place — so a crash (or a kill signal
// from the sweep harness) can never leave a half-written artifact under the
// final name. Readers either see the old complete file or the new complete
// file, never a torn one.
package artifact

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically with the given permissions.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFunc(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteFunc streams an artifact through write into path atomically: write
// receives a temporary file in path's directory, and only after it returns
// successfully — and the bytes are synced — is the file renamed over path.
// On any failure the temporary file is removed and path is untouched.
func WriteFunc(path string, perm os.FileMode, write func(w io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Clean up the temporary on every failure path below.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("artifact: %s: %w", path, err)
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("artifact: %s: %w", path, err)
	}
	return nil
}
