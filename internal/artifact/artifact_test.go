package artifact

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "a,b\n1,2\n" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite must replace the whole file.
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "x" {
		t.Fatalf("after overwrite: %q", got)
	}
}

// A failing writer must leave no file under the final name and no stray
// temporary behind.
func TestWriteFuncFailureLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig.svg")
	boom := errors.New("renderer exploded")
	err := WriteFunc(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped renderer error", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write left %s behind", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("stray files after failed write: %v", entries)
	}
}

// A failure must leave a pre-existing artifact untouched — the old complete
// file, not a torn one.
func TestWriteFuncFailurePreservesOldArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("old complete"), 0o644); err != nil {
		t.Fatal(err)
	}
	WriteFunc(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "half new")
		return errors.New("crash")
	})
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old complete" {
		t.Fatalf("old artifact damaged: %q, %v", got, err)
	}
}

func TestWriteFileMissingDirectory(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "nope", "out.txt"), []byte("x"), 0o644)
	if err == nil || !strings.Contains(err.Error(), "artifact:") {
		t.Fatalf("err = %v, want artifact error", err)
	}
}
