package obs

import (
	"testing"
	"time"

	"mediaworm/internal/flit"
	"mediaworm/internal/sim"
)

// TestDisabledPathZeroAlloc is the subsystem's headline contract: every
// Tracer method on the nil (disabled) tracer must cost zero allocations.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var trc *Tracer
	ev := Event{At: 100, Kind: EvLinkTraverse, Router: 0, Port: 1, VC: 2, Msg: 7}
	allocs := testing.AllocsPerRun(1000, func() {
		trc.Emit(ev)
		trc.Tick(100)
		trc.RegisterRouter(0, 8, 16)
		if trc.Enabled() {
			t.Fatal("nil tracer reports enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op", allocs)
	}
	if c := trc.Capture(); c != nil {
		t.Fatalf("nil tracer capture = %+v, want nil", c)
	}
}

// TestEnabledEmitZeroAlloc: the hot emit path must not allocate either —
// the ring is preallocated and Event is a value type.
func TestEnabledEmitZeroAlloc(t *testing.T) {
	trc := New(Options{Enabled: true, EventCap: 1024})
	trc.RegisterRouter(0, 8, 16)
	ev := Event{At: 100, Kind: EvLinkTraverse, Router: 0, Port: 1, VC: 2, Msg: 7}
	allocs := testing.AllocsPerRun(1000, func() {
		trc.Emit(ev)
		trc.Tick(100)
	})
	if allocs != 0 {
		t.Fatalf("enabled emit path allocates: %v allocs/op", allocs)
	}
}

func TestNewDisabledReturnsNil(t *testing.T) {
	if trc := New(Options{}); trc != nil {
		t.Fatalf("New(disabled) = %v, want nil", trc)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	trc := New(Options{Enabled: true, EventCap: 4})
	for i := 0; i < 10; i++ {
		trc.Emit(Event{At: sim.Time(i), Kind: EvSnapshot, Router: -1, Port: -1, VC: -1})
	}
	c := trc.Capture()
	if c.TotalEvents != 10 || c.DroppedEvents != 6 {
		t.Fatalf("totals = %d/%d dropped, want 10/6", c.TotalEvents, c.DroppedEvents)
	}
	if len(c.Events) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(c.Events))
	}
	for i, ev := range c.Events {
		if want := sim.Time(6 + i); ev.At != want {
			t.Fatalf("event %d at %d, want %d (oldest-first unroll)", i, ev.At, want)
		}
	}
}

func TestCapturePartialRing(t *testing.T) {
	trc := New(Options{Enabled: true, EventCap: 8})
	for i := 0; i < 3; i++ {
		trc.Emit(Event{At: sim.Time(i), Kind: EvSnapshot, Router: -1, Port: -1, VC: -1})
	}
	c := trc.Capture()
	if len(c.Events) != 3 || c.DroppedEvents != 0 {
		t.Fatalf("events=%d dropped=%d, want 3/0", len(c.Events), c.DroppedEvents)
	}
	for i, ev := range c.Events {
		if ev.At != sim.Time(i) {
			t.Fatalf("event %d at %d, want %d", i, ev.At, i)
		}
	}
}

func TestCounterFolding(t *testing.T) {
	trc := New(Options{Enabled: true, EventCap: 64})
	trc.RegisterRouter(2, 4, 8)

	// VC-level events on (router 2, port 1, vc 3).
	trc.Emit(Event{Kind: EvSwitchArb, Router: 2, Port: 1, VC: 3})
	trc.Emit(Event{Kind: EvLinkTraverse, Router: 2, Port: 1, VC: 3})
	trc.Emit(Event{Kind: EvLinkTraverse, Router: 2, Port: 1, VC: 3})
	trc.Emit(Event{Kind: EvVCAlloc, Router: 2, Port: 1, VC: 3, Arg: 40})
	trc.Emit(Event{Kind: EvVCAlloc, Router: 2, Port: 1, VC: 3, Arg: 60})
	trc.Emit(Event{Kind: EvBlock, Router: 2, Port: 1, VC: 3, Cause: CauseNotGranted})
	trc.Emit(Event{Kind: EvUnblock, Router: 2, Port: 1, VC: 3, Cause: CauseNotGranted})
	trc.Emit(Event{Kind: EvVCTick, Router: 2, Port: 1, VC: 3, Arg: 123})

	// Port-level events on (router 2, port 0).
	trc.Emit(Event{Kind: EvInject, Router: 2, Port: 0, VC: -1})
	trc.Emit(Event{Kind: EvEject, Router: 2, Port: 0, VC: 1, Class: flit.VBR, Arg: 5000})
	trc.Emit(Event{Kind: EvDrop, Router: 2, Port: 0, VC: -1})
	trc.Emit(Event{Kind: EvKill, Router: 2, Port: 0, VC: -1, Cause: CauseCorrupt})
	trc.Emit(Event{Kind: EvRetransmit, Router: 2, Port: 0, VC: 2, Seq: 2})
	trc.Emit(Event{Kind: EvFault, Router: 2, Port: 0, VC: -1, Cause: CauseLinkDown, Arg: 1})

	// Out-of-range / unregistered events must not panic or count.
	trc.Emit(Event{Kind: EvSwitchArb, Router: 9, Port: 0, VC: 0})
	trc.Emit(Event{Kind: EvSwitchArb, Router: 2, Port: 99, VC: 0})
	trc.Emit(Event{Kind: EvEject, Router: -1, Port: -1, VC: -1, Class: flit.CBR, Arg: 100})

	trc.Snapshot(1000)
	c := trc.Capture()
	if len(c.Snapshots) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(c.Snapshots))
	}
	s := c.Snapshots[0]

	vc := s.PerVC[1*8+3] // router 2 is the only registered router; port 1, vc 3
	if vc.Switched != 1 || vc.Transmitted != 2 || vc.Grants != 2 ||
		vc.GrantWait != 100 || vc.Blocks != 1 || vc.VCTicks != 1 {
		t.Fatalf("vc counters = %+v", vc)
	}
	p := s.PerPort[0]
	if p.Injected != 1 || p.Ejected != 1 || p.Dropped != 1 || p.Killed != 1 ||
		p.Retransmits != 1 || p.Faults != 1 {
		t.Fatalf("port counters = %+v", p)
	}

	// Latency histograms: one VBR observation at 5000 ns, plus one CBR
	// observation from the fabric-level eject (class still applies).
	if s.Latency[flit.VBR].N != 1 || s.Latency[flit.VBR].Sum != 5000 {
		t.Fatalf("VBR latency hist = %+v", s.Latency[flit.VBR])
	}
	if s.Latency[flit.CBR].N != 1 {
		t.Fatalf("CBR latency hist = %+v", s.Latency[flit.CBR])
	}
}

func TestRegisterRouterIdempotent(t *testing.T) {
	trc := New(Options{Enabled: true, EventCap: 8})
	trc.RegisterRouter(0, 4, 4)
	trc.RegisterRouter(0, 4, 4)
	trc.RegisterRouter(1, 2, 2)
	c := trc.Capture()
	if len(c.Routers) != 2 {
		t.Fatalf("routers = %v, want 2 entries", c.Routers)
	}
	if c.Routers[0] != (RouterDim{ID: 0, Ports: 4, VCs: 4}) ||
		c.Routers[1] != (RouterDim{ID: 1, Ports: 2, VCs: 2}) {
		t.Fatalf("routers = %v", c.Routers)
	}
}

func TestTickSnapshotInterval(t *testing.T) {
	trc := New(Options{Enabled: true, EventCap: 64, MetricsInterval: 100 * time.Nanosecond})
	for now := sim.Time(0); now <= 350; now += 10 {
		trc.Tick(now)
	}
	trc.Snapshot(400) // the run's final snapshot
	c := trc.Capture()
	if len(c.Snapshots) != 4 {
		t.Fatalf("snapshots = %d, want 4 (at 100, 200, 300, 400)", len(c.Snapshots))
	}
	for i, want := range []sim.Time{100, 200, 300, 400} {
		if c.Snapshots[i].At != want {
			t.Fatalf("snapshot %d at %d, want %d", i, c.Snapshots[i].At, want)
		}
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for _, v := range []sim.Time{1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	if h.N != 6 || h.Min != 1 || h.Max != 1000 || h.Sum != 1110 {
		t.Fatalf("hist = %+v", h)
	}
	if got := h.Mean(); got != 185 {
		t.Fatalf("mean = %v, want 185", got)
	}
	// p50 falls in the bucket of 3 and 4 → upper bounds 3 or 7.
	if q := h.Quantile(0.5); q != 3 && q != 7 {
		t.Fatalf("p50 = %d, want bucket bound 3 or 7", q)
	}
	// p100 clamps to Max.
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want 1000", q)
	}
	// Empty hist.
	var e Hist
	if e.Mean() != 0 || e.Quantile(0.9) != 0 {
		t.Fatal("empty hist must report zeros")
	}
}

func TestKindCauseStrings(t *testing.T) {
	for k := 0; k < numKinds; k++ {
		if Kind(k).String() == "" {
			t.Fatalf("Kind(%d) has no name", k)
		}
	}
	for c := 0; c < numCauses; c++ {
		if Cause(c).String() == "" {
			t.Fatalf("Cause(%d) has no name", c)
		}
	}
	if Kind(200).String() != "Kind(200)" || Cause(200).String() != "Cause(200)" {
		t.Fatal("out-of-range kinds/causes must stringify, not panic")
	}
}

func TestTSArg(t *testing.T) {
	if TSArg(sim.Forever) != -1 {
		t.Fatal("TSArg(Forever) != -1")
	}
	if TSArg(12345) != 12345 {
		t.Fatal("TSArg(finite) must pass through")
	}
}
