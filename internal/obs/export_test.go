package obs

import (
	"bytes"
	"strings"
	"testing"

	"mediaworm/internal/flit"
	"mediaworm/internal/sim"
)

// testCapture builds a small hand-made capture exercising every exporter
// code path: metadata lanes, instants, block spans, and a snapshot.
func testCapture() *Capture {
	trc := New(Options{Enabled: true, EventCap: 256})
	trc.RegisterRouter(0, 2, 2)
	trc.Emit(Event{At: 10, Kind: EvInject, Router: 0, Port: 0, VC: 1, Msg: 1, Seq: 4, Arg: 3, Class: flit.VBR})
	trc.Emit(Event{At: 20, Kind: EvVCTick, Router: 0, Port: 0, VC: 1, Msg: 1, Arg: 500})
	trc.Emit(Event{At: 20, Kind: EvPickSource, Router: 0, Port: 0, VC: 1, Msg: 1, Arg: 500, Seq: 1})
	trc.Emit(Event{At: 30, Kind: EvVCAlloc, Router: 0, Port: 1, VC: 0, Msg: 1, Arg: 10})
	trc.Emit(Event{At: 40, Kind: EvBlock, Router: 0, Port: 0, VC: 1, Msg: 1, Cause: CauseNotGranted})
	trc.Emit(Event{At: 60, Kind: EvUnblock, Router: 0, Port: 0, VC: 1, Msg: 1, Cause: CauseNotGranted})
	trc.Emit(Event{At: 60, Kind: EvSwitchArb, Router: 0, Port: 0, VC: 1, Msg: 1, Seq: 0,
		Arg: int64(1)<<16 | 0})
	trc.Emit(Event{At: 70, Kind: EvLinkTraverse, Router: 0, Port: 1, VC: 0, Msg: 1, Seq: 0, Arg: 500})
	trc.Emit(Event{At: 80, Kind: EvEject, Router: 0, Port: 1, VC: 0, Msg: 1, Seq: 2,
		Class: flit.VBR, Arg: 70})
	trc.Emit(Event{At: 90, Kind: EvFault, Router: 0, Port: 1, VC: -1, Cause: CauseLinkDown, Arg: 1})
	trc.Emit(Event{At: 95, Kind: EvDeadlock, Router: -1, Port: -1, VC: -1, Msg: 42, Arg: 3})
	trc.Snapshot(100)
	return trc.Capture()
}

func TestChromeTraceRoundTrip(t *testing.T) {
	c := testCapture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := tr.Summarize()
	if s.Events == 0 || s.Spans != 1 {
		t.Fatalf("summary = %+v, want events > 0 and exactly 1 block span", s)
	}
	// 11 emitted events + the snapshot marker + the snapshot's three counter
	// series (engine, trace, latency of the one observed class).
	if s.Events != 15 {
		t.Fatalf("summary events = %d, want 15", s.Events)
	}
}

func TestChromeTraceWriteDeterministic(t *testing.T) {
	c := testCapture()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of one capture differ byte-for-byte")
	}
}

func TestValidateSpanRules(t *testing.T) {
	// A still-open span at the end of the capture is fine (the worm was
	// blocked when the run ended), as is a leading stray E (its B fell off
	// the ring).
	tr := &ChromeTrace{TraceEvents: []ChromeEvent{
		{Name: "blocked: claimed", Ph: "E", Ts: 1, Pid: 1, Tid: 1},
		{Name: "blocked: not-granted", Ph: "B", Ts: 2, Pid: 1, Tid: 1},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("window-edge spans must validate, got %v", err)
	}
	// But an E after the lane's spans have balanced is impossible to emit.
	tr = &ChromeTrace{TraceEvents: []ChromeEvent{
		{Name: "blocked: claimed", Ph: "B", Ts: 1, Pid: 1, Tid: 1},
		{Name: "blocked: claimed", Ph: "E", Ts: 2, Pid: 1, Tid: 1},
		{Name: "blocked: claimed", Ph: "E", Ts: 3, Pid: 1, Tid: 1},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("E after balanced spans must fail validation")
	}
	tr = &ChromeTrace{TraceEvents: []ChromeEvent{
		{Name: "x", Ph: "i", Ts: 2, Pid: 1, Tid: 1, S: "t"},
		{Name: "y", Ph: "i", Ts: 1, Pid: 1, Tid: 1, S: "t"},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("per-lane timestamp regression must fail validation")
	}
	tr = &ChromeTrace{TraceEvents: []ChromeEvent{
		{Name: "z", Ph: "q", Ts: 1, Pid: 1, Tid: 1},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("unknown phase must fail validation")
	}
}

func TestDiffChrome(t *testing.T) {
	c := testCapture()
	a := BuildChromeTrace(c)
	b := BuildChromeTrace(c)
	if diffs := DiffChrome(a, b); len(diffs) != 0 {
		t.Fatalf("identical traces diff: %v", diffs)
	}
	b.TraceEvents[len(b.TraceEvents)-1].Ts += 1
	if diffs := DiffChrome(a, b); len(diffs) == 0 {
		t.Fatal("modified trace must diff")
	}
	b.TraceEvents = b.TraceEvents[:len(b.TraceEvents)-1]
	diffs := DiffChrome(a, b)
	if len(diffs) == 0 || !strings.Contains(diffs[0], "event count") {
		t.Fatalf("length mismatch must be reported first, got %v", diffs)
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	c := testCapture()
	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "at_ns,scope,router,port,vc,metric,value" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, want := range []string{
		"engine,", "trace,", "port,0,0,-1,injected,1", "port,0,1,-1,ejected,1",
		"vc,0,1,0,transmitted,1", "vc,0,0,1,blocks,1", "latency_count,1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q in:\n%s", want, out)
		}
	}
	// Only non-zero rows: port 1 injected nothing, so no such row.
	if strings.Contains(out, "port,0,1,-1,injected") {
		t.Fatal("zero-valued counter row emitted")
	}
}

func TestBuildChromeTraceLaneLayout(t *testing.T) {
	c := testCapture()
	tr := BuildChromeTrace(c)
	// Metadata must name the router process and its per-port/per-VC lanes:
	// router 0 → pid 1; 2 ports × (1 port lane + 2 VC lanes) + router lane.
	var procs, threads int
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		switch ev.Name {
		case "process_name":
			procs++
		case "thread_name":
			threads++
		}
	}
	if procs < 2 { // control pid + router 0
		t.Fatalf("process_name metadata = %d, want >= 2", procs)
	}
	if threads < 7 { // router lane + 2*(port + 2 VCs)
		t.Fatalf("thread_name metadata = %d, want >= 7", threads)
	}
	_ = sim.Time(0)
}
