package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mediaworm/internal/sim"
)

// Exporters for a finished Capture. Both outputs are deterministic: event
// order is ring order (chronological), lane layout comes from the sorted
// registration dims, and JSON objects are encoded with encoding/json,
// which sorts map keys. Byte-identical captures yield byte-identical files.

// ChromeEvent is one entry of the Chrome trace-event format's JSON-array
// flavor (the format chrome://tracing and Perfetto load).
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object flavor of the trace-event format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Lane layout: one Chrome "process" per router (pid = router ID + 1; pid 0
// is the engine/fabric control plane), one "thread" per port and per
// (port, VC) lane. tid 0 is the router-level lane; port p occupies tids
// 1+p*(vcs+1) (port lane) through 1+p*(vcs+1)+vcs (its VC lanes).

const ctrlPid = 0 // engine/fabric process

// metricsTid is the control process's counter lane. Counter series are
// appended after the event stream but stamped at their snapshot instants,
// so they get a lane of their own to keep every lane's timestamps
// non-decreasing in stream order.
const metricsTid = 1

func laneTid(port, vc, vcs int) int {
	if port < 0 {
		return 0
	}
	t := 1 + port*(vcs+1)
	if vc >= 0 {
		t += 1 + vc
	}
	return t
}

// usec converts a sim.Time (ns) to trace microseconds.
func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// BuildChromeTrace lays a Capture out as Chrome trace events: metadata
// names for every process and lane, instants for the point events,
// duration spans for block/unblock pairs, and counter series from the
// snapshots.
func BuildChromeTrace(c *Capture) *ChromeTrace {
	tr := &ChromeTrace{DisplayTimeUnit: "ns"}
	emit := func(ev ChromeEvent) { tr.TraceEvents = append(tr.TraceEvents, ev) }

	meta := func(pid, tid int, key, value string) {
		emit(ChromeEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": value},
		})
	}
	meta(ctrlPid, 0, "process_name", "engine+fabric")
	meta(ctrlPid, metricsTid, "thread_name", "metrics")
	vcsOf := make(map[int]int, len(c.Routers))
	for _, d := range c.Routers {
		pid := d.ID + 1
		vcsOf[d.ID] = d.VCs
		meta(pid, 0, "process_name", fmt.Sprintf("router %d", d.ID))
		meta(pid, 0, "thread_name", "router")
		for p := 0; p < d.Ports; p++ {
			meta(pid, laneTid(p, -1, d.VCs), "thread_name", fmt.Sprintf("port %d", p))
			for v := 0; v < d.VCs; v++ {
				meta(pid, laneTid(p, v, d.VCs), "thread_name", fmt.Sprintf("port %d vc %d", p, v))
			}
		}
	}

	for _, ev := range c.Events {
		pid, tid := ctrlPid, 0
		if ev.Router >= 0 {
			pid = int(ev.Router) + 1
			tid = laneTid(int(ev.Port), int(ev.VC), vcsOf[int(ev.Router)])
		}
		ce := ChromeEvent{Ts: usec(ev.At), Pid: pid, Tid: tid}
		args := map[string]any{}
		if ev.Msg != 0 {
			args["msg"] = ev.Msg
		}
		switch ev.Kind {
		case EvBlock:
			ce.Name = "blocked: " + ev.Cause.String()
			ce.Ph = "B"
			args["cause"] = ev.Cause.String()
		case EvUnblock:
			ce.Name = "blocked: " + ev.Cause.String()
			ce.Ph = "E"
		default:
			ce.Name = ev.Kind.String()
			ce.Ph = "i"
			ce.S = "t"
			if ev.Cause != CauseNone {
				args["cause"] = ev.Cause.String()
			}
			switch ev.Kind {
			case EvInject:
				args["dst"] = ev.Arg
				args["flits"] = ev.Seq
				args["class"] = ev.Class.String()
			case EvVCAlloc:
				args["wait_ns"] = ev.Arg
			case EvSwitchArb:
				args["out_port"] = ev.Arg >> 16
				args["out_vc"] = ev.Arg & 0xffff
				args["flit"] = ev.Seq
			case EvLinkTraverse:
				args["ts"] = ev.Arg
				args["flit"] = ev.Seq
			case EvEject:
				args["latency_ns"] = ev.Arg
				args["frame"] = ev.Seq
				args["class"] = ev.Class.String()
			case EvPickInput, EvPickOutput, EvPickSource:
				args["winner_ts"] = ev.Arg
				args["candidates"] = ev.Seq
			case EvVCTick:
				args["ts"] = ev.Arg
			case EvRetransmit:
				args["attempt"] = ev.Seq
			case EvFault:
				args["onset"] = ev.Arg
			case EvDeadlock:
				args["blocked"] = ev.Arg
			case EvPolice:
				args["color"] = ev.Arg
				args["flits"] = ev.Seq
				args["class"] = ev.Class.String()
			default:
				if ev.Arg != 0 {
					args["arg"] = ev.Arg
				}
				if ev.Seq != 0 {
					args["seq"] = ev.Seq
				}
			}
		}
		if len(args) > 0 {
			ce.Args = args
		}
		emit(ce)
	}

	counter := func(at sim.Time, name string, values map[string]any) {
		emit(ChromeEvent{Name: name, Ph: "C", Ts: usec(at), Pid: ctrlPid, Tid: metricsTid, Args: values})
	}
	for _, s := range c.Snapshots {
		counter(s.At, "engine", map[string]any{
			"pending": s.Engine.Pending, "max_pending": s.Engine.MaxPending,
		})
		counter(s.At, "trace", map[string]any{
			"events": s.Events, "dropped": s.DroppedEvents,
		})
		for cls, h := range s.Latency {
			if h.N == 0 {
				continue
			}
			counter(s.At, fmt.Sprintf("latency class %d", cls), map[string]any{
				"mean_ns": h.Mean(), "p99_ns": h.Quantile(0.99),
			})
		}
	}
	return tr
}

// WriteChromeTrace serializes the capture as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, c *Capture) error {
	enc := json.NewEncoder(w)
	return enc.Encode(BuildChromeTrace(c))
}

// ReadChromeTrace parses a trace file written by WriteChromeTrace (or any
// JSON-object-flavor trace-event file).
func ReadChromeTrace(r io.Reader) (*ChromeTrace, error) {
	var tr ChromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	return &tr, nil
}

// Validate checks a parsed trace against the trace-event format's
// requirements: known phases, sane B/E span nesting per lane, and
// non-decreasing timestamps among non-metadata events.
//
// Span nesting tolerates the window edges a bounded ring imposes: a lane's
// FIRST span event may be a stray "E" (its "B" was overwritten before the
// capture window), and spans still open at the last event are fine (the
// worm was blocked when the run ended — Perfetto renders both). What it
// rejects is an "E" after the lane's spans have balanced, which no valid
// emission order produces.
func (tr *ChromeTrace) Validate() error {
	type lane struct{ pid, tid int }
	depth := make(map[lane]int)
	spanSeen := make(map[lane]bool)
	lastTs := make(map[lane]float64)
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "B", "E", "i", "I", "C", "X":
		default:
			return fmt.Errorf("event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
		l := lane{ev.Pid, ev.Tid}
		if ev.Ts < lastTs[l] {
			return fmt.Errorf("event %d (%q): timestamp %v before %v on pid %d tid %d",
				i, ev.Name, ev.Ts, lastTs[l], ev.Pid, ev.Tid)
		}
		lastTs[l] = ev.Ts
		switch ev.Ph {
		case "B":
			depth[l]++
			spanSeen[l] = true
		case "E":
			if depth[l] == 0 {
				if spanSeen[l] {
					return fmt.Errorf("event %d (%q): span end without begin on pid %d tid %d",
						i, ev.Name, ev.Pid, ev.Tid)
				}
				// Pre-window close: the matching "B" fell off the ring.
			} else {
				depth[l]--
			}
			spanSeen[l] = true
		}
	}
	return nil
}

// Summary aggregates a parsed trace for cmd/mwtrace: event counts by name,
// processes seen, and the covered time range.
type Summary struct {
	Events     int
	Spans      int
	Processes  int
	FirstTs    float64
	LastTs     float64
	CountsName []string // sorted names
	Counts     []int    // parallel to CountsName
}

// Summarize builds a Summary deterministically (names insertion-sorted, no
// map iteration in the output).
func (tr *ChromeTrace) Summarize() Summary {
	var s Summary
	pids := map[int]bool{}
	counts := map[string]int{}
	first := true
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" {
			pids[ev.Pid] = true
			continue
		}
		s.Events++
		if ev.Ph == "B" {
			s.Spans++
		}
		pids[ev.Pid] = true
		counts[ev.Name]++
		if first || ev.Ts < s.FirstTs {
			s.FirstTs = ev.Ts
		}
		if first || ev.Ts > s.LastTs {
			s.LastTs = ev.Ts
		}
		first = false
	}
	s.Processes = len(pids)
	for name := range counts {
		s.CountsName = append(s.CountsName, name)
	}
	sort.Strings(s.CountsName)
	for _, name := range s.CountsName {
		s.Counts = append(s.Counts, counts[name])
	}
	return s
}

// DiffChrome compares two parsed traces and returns human-readable
// difference lines (empty means identical event streams).
func DiffChrome(a, b *ChromeTrace) []string {
	var diffs []string
	if len(a.TraceEvents) != len(b.TraceEvents) {
		diffs = append(diffs, fmt.Sprintf("event count: %d vs %d",
			len(a.TraceEvents), len(b.TraceEvents)))
	}
	n := len(a.TraceEvents)
	if len(b.TraceEvents) < n {
		n = len(b.TraceEvents)
	}
	const maxReport = 20
	for i := 0; i < n && len(diffs) < maxReport; i++ {
		ea, eb := a.TraceEvents[i], b.TraceEvents[i]
		ja, _ := json.Marshal(ea)
		jb, _ := json.Marshal(eb)
		if string(ja) != string(jb) {
			diffs = append(diffs, fmt.Sprintf("event %d: %s vs %s", i, ja, jb))
		}
	}
	return diffs
}

// WriteMetricsCSV dumps the capture's snapshots in a long/tidy format:
//
//	at_ns,scope,router,port,vc,metric,value
//
// Only non-zero values are emitted, so sparse fabrics stay small. Latency
// histograms appear as count/min/max/mean/p50/p90/p99 summary rows per
// traffic class.
func WriteMetricsCSV(w io.Writer, c *Capture) error {
	if _, err := fmt.Fprintln(w, "at_ns,scope,router,port,vc,metric,value"); err != nil {
		return err
	}
	row := func(at sim.Time, scope string, router, port, vc int, metric string, value any) error {
		_, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%s,%v\n", at, scope, router, port, vc, metric, value)
		return err
	}
	for _, s := range c.Snapshots {
		if err := row(s.At, "engine", -1, -1, -1, "processed", s.Engine.Processed); err != nil {
			return err
		}
		if err := row(s.At, "engine", -1, -1, -1, "pending", s.Engine.Pending); err != nil {
			return err
		}
		if err := row(s.At, "engine", -1, -1, -1, "max_pending", s.Engine.MaxPending); err != nil {
			return err
		}
		if err := row(s.At, "trace", -1, -1, -1, "events", s.Events); err != nil {
			return err
		}
		if s.DroppedEvents > 0 {
			if err := row(s.At, "trace", -1, -1, -1, "dropped_events", s.DroppedEvents); err != nil {
				return err
			}
		}
		vcAt, portAt := 0, 0
		for _, d := range c.Routers {
			for p := 0; p < d.Ports; p++ {
				if portAt < len(s.PerPort) {
					pc := s.PerPort[portAt]
					for _, m := range [...]struct {
						name string
						v    uint64
					}{
						{"injected", pc.Injected}, {"ejected", pc.Ejected},
						{"dropped", pc.Dropped}, {"killed", pc.Killed},
						{"retransmits", pc.Retransmits}, {"faults", pc.Faults},
						{"police_drops", pc.PoliceDrops},
					} {
						if m.v == 0 {
							continue
						}
						if err := row(s.At, "port", d.ID, p, -1, m.name, m.v); err != nil {
							return err
						}
					}
				}
				portAt++
				for v := 0; v < d.VCs; v++ {
					if vcAt < len(s.PerVC) {
						vc := s.PerVC[vcAt]
						for _, m := range [...]struct {
							name string
							v    uint64
						}{
							{"switched", vc.Switched}, {"transmitted", vc.Transmitted},
							{"grants", vc.Grants}, {"grant_wait_ns", vc.GrantWait},
							{"blocks", vc.Blocks}, {"vc_ticks", vc.VCTicks},
						} {
							if m.v == 0 {
								continue
							}
							if err := row(s.At, "vc", d.ID, p, v, m.name, m.v); err != nil {
								return err
							}
						}
					}
					vcAt++
				}
			}
		}
		for cls := range s.Latency {
			h := &s.Latency[cls]
			if h.N == 0 {
				continue
			}
			for _, m := range [...]struct {
				name string
				v    any
			}{
				{"latency_count", h.N}, {"latency_min_ns", int64(h.Min)},
				{"latency_max_ns", int64(h.Max)}, {"latency_mean_ns", h.Mean()},
				{"latency_p50_ns", int64(h.Quantile(0.50))},
				{"latency_p90_ns", int64(h.Quantile(0.90))},
				{"latency_p99_ns", int64(h.Quantile(0.99))},
			} {
				if err := row(s.At, "class", cls, -1, -1, m.name, m.v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
