package obs

import (
	"math/bits"

	"mediaworm/internal/sim"
)

// VCCounters is the per-(router, port, VC) counter block. All counters are
// cumulative over the run; snapshots copy them, so interval deltas are a
// subtraction between consecutive snapshots.
type VCCounters struct {
	// Switched counts flits that crossed the crossbar from this input lane;
	// Transmitted counts flits sent on this output lane. (A lane is an
	// input VC for some events and an output VC for others — the counters
	// coexist in one block because ports are bidirectional.)
	Switched, Transmitted uint64
	// Grants counts output-VC allocations won by this output lane, and
	// GrantWait the summed request→grant wait in nanoseconds.
	Grants, GrantWait uint64
	// Blocks counts blocking spans opened on this input lane.
	Blocks uint64
	// VCTicks counts Virtual Clock stamps assigned on this lane at the
	// source NI.
	VCTicks uint64
}

// PortCounters is the per-(router, port) counter block.
type PortCounters struct {
	// Injected counts messages entering the attached NI; Ejected messages
	// delivered to the attached sink.
	Injected, Ejected uint64
	// Dropped counts flits reaped at this port; Killed messages the router
	// killed here; Retransmits end-to-end resends from the attached NI;
	// Faults injected fault transitions on this port's link.
	Dropped, Killed, Retransmits, Faults uint64
	// PoliceDrops counts real-time messages discarded by the attached NI's
	// meter→dropper chain before injection.
	PoliceDrops uint64
}

// EngineStats carries the event-calendar gauges sampled at a snapshot.
type EngineStats struct {
	// Processed is the cumulative count of executed engine events; Pending
	// the calendar depth at the snapshot; MaxPending the high-water depth
	// since the previous snapshot.
	Processed  uint64
	Pending    int
	MaxPending int
}

// histBuckets is the fixed bucket count of Hist: bucket i holds values v
// with bits.Len64(v) == i, i.e. log2-spaced boundaries 0, 1, 2, 4, … up to
// the full int64 range.
const histBuckets = 64

// Hist is a log-bucketed latency histogram over sim.Time values. Bucket i
// counts observations v with bits.Len64(uint64(v)) == i, so boundaries are
// powers of two in nanoseconds. Fixed-size and value-copyable: snapshots
// embed it directly.
type Hist struct {
	Counts   [histBuckets]uint64
	N        uint64
	Sum      int64
	Min, Max sim.Time
}

// Observe folds one value in. Negative values clamp to bucket 0.
func (h *Hist) Observe(v sim.Time) {
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.Counts[b]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += int64(v)
}

// Mean returns the average observed value, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper boundary of the bucket holding the q·N-th observation, clamped to
// the observed Max. Log buckets make this exact to within 2×.
func (h *Hist) Quantile(q float64) sim.Time {
	if h.N == 0 {
		return 0
	}
	rank := uint64(q * float64(h.N))
	if rank >= h.N {
		rank = h.N - 1
	}
	var seen uint64
	for b, c := range h.Counts {
		seen += c
		if seen > rank {
			// Upper boundary of bucket b is 2^b - 1.
			hi := sim.Time(1)<<uint(b) - 1
			if hi > h.Max {
				hi = h.Max
			}
			if hi < h.Min {
				hi = h.Min
			}
			return hi
		}
	}
	return h.Max
}

// Snapshot is one point-in-time copy of the cumulative metrics.
type Snapshot struct {
	// At is the simulated instant of the snapshot.
	At sim.Time
	// Events and DroppedEvents are the trace totals at the snapshot.
	Events, DroppedEvents uint64
	// Engine carries the calendar gauges (zero when no engine registered).
	Engine EngineStats
	// PerVC and PerPort are copies of the dense counter blocks, in router
	// registration order (lay out with Capture.Routers).
	PerVC   []VCCounters
	PerPort []PortCounters
	// Latency holds the end-to-end message latency histograms indexed by
	// traffic class (CBR, VBR, BestEffort).
	Latency [3]Hist
}
