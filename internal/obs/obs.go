// Package obs is the simulator's deterministic observability subsystem:
// flit-lifecycle tracing, per-port/per-VC metrics, and exporters for the
// Chrome trace-event format and CSV.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every instrumented component holds a
//     *Tracer and all Tracer methods are nil-safe, so the disabled path is
//     a single pointer comparison and never allocates. A nil *Tracer IS
//     the disabled subsystem.
//  2. Deterministic. Events are stamped with sim.Time only — never the
//     wall clock — and recorded into a preallocated ring buffer, so two
//     runs from one seed produce byte-identical traces (the golden test in
//     internal/experiments holds this, and mwlint's detlint/simtime
//     analyzers guard it statically).
//  3. Bounded. The ring buffer overwrites its oldest events when full and
//     counts the overwritten ones, so tracing a long run costs a fixed
//     amount of memory, never an unbounded slice.
//
// The event vocabulary covers the flit lifecycle (inject, VC-allocate,
// switch-arbitrate, link-traverse, block/unblock with the blocking cause,
// eject, drop, kill, retransmit, abandon), scheduler decisions at the three
// contention points (crossbar input multiplexer, output-link VC
// multiplexer, source-NI multiplexer, plus Virtual Clock stamp
// assignments), and control-plane verdicts (injected faults, watchdog
// deadlock reports, metrics snapshots). See DESIGN.md §11.
package obs

import (
	"fmt"
	"time"

	"mediaworm/internal/flit"
	"mediaworm/internal/sim"
)

// Kind identifies one event of the fixed trace vocabulary.
type Kind uint8

const (
	// EvInject marks a message entering its source NI's injection queue.
	// Seq carries the message's flit count, Arg its destination node.
	EvInject Kind = iota
	// EvVCAlloc marks a header granted an output virtual channel (pipeline
	// stage 3). Port/VC are the granted output lane; Arg is the
	// request→grant wait in nanoseconds.
	EvVCAlloc
	// EvSwitchArb marks one flit crossing the crossbar (stage 4). Port/VC
	// are the input lane; Arg packs the output lane as port<<16 | vc.
	EvSwitchArb
	// EvLinkTraverse marks one flit transmitted on an output link
	// (stage 5). Port/VC are the output lane; Arg is the flit's Virtual
	// Clock timestamp at that contention point.
	EvLinkTraverse
	// EvBlock opens a blocking span on an input VC (or, with VC == -1, a
	// source NI's injection link); Cause says why. EvUnblock closes it.
	EvBlock
	// EvUnblock closes the current blocking span; Cause repeats the span's
	// blocking cause.
	EvUnblock
	// EvEject marks a message tail reaching its destination sink. Arg is
	// the end-to-end latency in nanoseconds, Seq the frame sequence.
	EvEject
	// EvDrop marks one flit reaped at a port (dead-worm unraveling,
	// corruption, unroutable kill).
	EvDrop
	// EvKill marks a message killed by the router itself; Cause
	// distinguishes corruption, no-route, and link-failure kills.
	EvKill
	// EvRetransmit marks an NI end-to-end resend; Seq is the new attempt.
	EvRetransmit
	// EvAbandon marks the retransmitter giving up on a message.
	EvAbandon
	// EvPickInput records a crossbar input multiplexer decision
	// (contention point A). VC is the winner, Seq the candidate count,
	// Arg the winner's Virtual Clock timestamp.
	EvPickInput
	// EvPickOutput records an output-link VC multiplexer decision
	// (contention point C), encoded like EvPickInput.
	EvPickOutput
	// EvPickSource records a source NI injection multiplexer decision,
	// encoded like EvPickInput.
	EvPickSource
	// EvVCTick records a Virtual Clock stamp assignment at the source NI;
	// Arg is the assigned timestamp (sim.Forever for best-effort).
	EvVCTick
	// EvFault records an injected fault state change; Cause is
	// CauseLinkDown or CauseStalled and Arg is 1 for onset, 0 for lift.
	EvFault
	// EvDeadlock records a watchdog verdict; Arg is the number of blocked
	// worms, Msg the victim killed in recovery mode (0 otherwise).
	EvDeadlock
	// EvSnapshot marks a metrics snapshot instant.
	EvSnapshot
	// EvPolice marks a real-time message discarded by the injection-point
	// meter→dropper chain; Arg is the meter color (police.Color) and Seq the
	// message's flit count. Emitted only on drop, so traces of unpoliced
	// runs are unchanged.
	EvPolice
)

// numKinds sizes the vocabulary. It is an int, not a Kind, so it is not a
// member of the enum for exhaustiveness analysis.
const numKinds = int(EvPolice) + 1

var kindNames = [numKinds]string{
	"inject", "vc-alloc", "switch", "link", "block", "unblock", "eject",
	"drop", "kill", "retransmit", "abandon", "pick-input", "pick-output",
	"pick-source", "vc-tick", "fault", "deadlock", "snapshot", "police",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Cause classifies why a worm is blocked, a message was killed, or a fault
// changed state.
type Cause uint8

const (
	// CauseNone is the zero cause (event kinds that carry no cause).
	CauseNone Cause = iota
	// CauseNotGranted: header still awaiting output-VC allocation.
	CauseNotGranted
	// CauseJustMoved: stage-1/3 pipeline synchronization (the flit or
	// grant only became visible this cycle).
	CauseJustMoved
	// CauseStageFull: output staging buffer backpressure.
	CauseStageFull
	// CauseClaimed: the crossbar output was claimed by another input this
	// cycle (multiplexed crossbar only).
	CauseClaimed
	// CauseNoCredit: no downstream credit on any backlogged VC (source NI).
	CauseNoCredit
	// CauseNoRoute: every routing candidate was dead or the destination is
	// partitioned away.
	CauseNoRoute
	// CauseCorrupt: the flit was corrupted on the wire.
	CauseCorrupt
	// CauseLinkDown: a link failure (fault onset/lift, or a kill from one).
	CauseLinkDown
	// CauseStalled: an injected port stall (fault onset/lift).
	CauseStalled
	// CauseTimeout: an end-to-end delivery deadline expired.
	CauseTimeout
)

// numCauses sizes the cause vocabulary (int, not Cause — see numKinds).
const numCauses = int(CauseTimeout) + 1

var causeNames = [numCauses]string{
	"none", "not-granted", "just-moved", "stage-full", "claimed",
	"no-credit", "no-route", "corrupt", "link-down", "stalled", "timeout",
}

// String implements fmt.Stringer.
func (c Cause) String() string {
	if int(c) < numCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("Cause(%d)", uint8(c))
}

// Event is one trace record. It is a fixed-size value type — emitting one
// copies scalars into the ring and never allocates. Router, Port and VC
// locate the event; -1 marks a dimension that does not apply (engine- or
// fabric-level events use Router == -1, port-level events VC == -1).
type Event struct {
	// At is the simulation instant, in engine nanoseconds.
	At sim.Time
	// Msg is the owning message's ID (0 when no message applies).
	Msg uint64
	// Arg is kind-specific payload; see the Kind constants.
	Arg int64
	// Seq is kind-specific: the flit index within its message for flit
	// events, the candidate count for pick events, the frame sequence for
	// ejects, the attempt number for retransmits.
	Seq int32
	// Router, Port, VC locate the event in the fabric (-1 = not applicable).
	Router, Port, VC int16
	// Kind selects the vocabulary entry; Cause and Class qualify it.
	Kind  Kind
	Cause Cause
	Class flit.Class
}

// TSArg encodes a Virtual Clock timestamp as an event argument: finite
// stamps pass through, sim.Forever (best-effort) becomes -1 so exported
// JSON stays readable.
func TSArg(t sim.Time) int64 {
	if t == sim.Forever {
		return -1
	}
	return int64(t)
}

// Options configures a Tracer.
type Options struct {
	// Enabled turns the subsystem on. New returns nil when false, and a
	// nil Tracer is the zero-cost disabled path.
	Enabled bool
	// EventCap is the ring-buffer capacity in events (0 → 65536). When a
	// run emits more, the oldest events are overwritten and counted.
	EventCap int
	// MetricsInterval is the simulated time between metrics snapshots
	// (0 → no periodic snapshots; the run's final snapshot still happens).
	MetricsInterval time.Duration
}

// RouterDim records one registered router's dimensions, so exporters can
// lay out per-port/per-VC lanes without re-deriving the topology.
type RouterDim struct {
	ID, Ports, VCs int
}

// Tracer records events and accumulates metrics. The zero value is not
// usable; construct with New. A nil *Tracer is valid everywhere and does
// nothing — instrumented components call methods without checking, or gate
// whole blocks behind a single nil comparison.
type Tracer struct {
	ring    []Event
	head    int    // next write index
	total   uint64 // events emitted over the run
	dropped uint64 // events overwritten after the ring wrapped

	interval sim.Time
	nextSnap sim.Time

	// Dense per-(router, port, VC) and per-(router, port) counter blocks,
	// laid out in registration order. vcBase/portBase/portsOf/vcsOf are
	// indexed by router ID (-1 = unregistered).
	dims    []RouterDim
	vcBase  []int
	portBas []int
	portsOf []int
	vcsOf   []int
	perVC   []VCCounters
	perPort []PortCounters

	// lat holds the end-to-end message latency histogram per traffic
	// class, indexed by flit.Class (CBR, VBR, BestEffort).
	lat [3]Hist

	engine     *sim.Engine
	maxPending int

	snaps []Snapshot
}

// New builds a Tracer, or returns nil when opt.Enabled is false — the nil
// Tracer is the disabled subsystem.
func New(opt Options) *Tracer {
	if !opt.Enabled {
		return nil
	}
	capEvents := opt.EventCap
	if capEvents <= 0 {
		capEvents = 1 << 16
	}
	t := &Tracer{ring: make([]Event, capEvents)}
	if opt.MetricsInterval > 0 {
		t.interval = sim.Time(opt.MetricsInterval.Nanoseconds())
		t.nextSnap = t.interval
	}
	return t
}

// Enabled reports whether tracing is on (t is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// RegisterRouter declares a router's dimensions so per-port/per-VC
// counters and exporter lanes exist for it. Routers register themselves in
// core.New; registering the same ID twice is a no-op.
func (t *Tracer) RegisterRouter(id, ports, vcs int) {
	if t == nil {
		return
	}
	if id < 0 || ports <= 0 || vcs <= 0 {
		panic(fmt.Sprintf("obs: RegisterRouter(%d, %d, %d)", id, ports, vcs))
	}
	for len(t.vcBase) <= id {
		t.vcBase = append(t.vcBase, -1)
		t.portBas = append(t.portBas, -1)
		t.portsOf = append(t.portsOf, 0)
		t.vcsOf = append(t.vcsOf, 0)
	}
	if t.vcBase[id] >= 0 {
		return
	}
	t.vcBase[id] = len(t.perVC)
	t.portBas[id] = len(t.perPort)
	t.portsOf[id] = ports
	t.vcsOf[id] = vcs
	t.perVC = append(t.perVC, make([]VCCounters, ports*vcs)...)
	t.perPort = append(t.perPort, make([]PortCounters, ports)...)
	t.dims = append(t.dims, RouterDim{ID: id, Ports: ports, VCs: vcs})
}

// RegisterEngine attaches the tracer to the engine as its execution probe,
// so snapshots carry event-count and calendar-depth readings.
func (t *Tracer) RegisterEngine(e *sim.Engine) {
	if t == nil || e == nil {
		return
	}
	t.engine = e
	e.SetProbe(t)
}

// OnEvent implements sim.Probe: it tracks the calendar's high-water depth
// between snapshots.
func (t *Tracer) OnEvent(_ sim.Time, pending int) {
	if pending > t.maxPending {
		t.maxPending = pending
	}
}

// Emit records one event. On a nil Tracer it is a no-op; on a live one it
// copies the event into the ring (overwriting the oldest when full) and
// folds it into the metric counters. It never allocates.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.count(ev)
	if t.total >= uint64(len(t.ring)) {
		t.dropped++
	}
	t.ring[t.head] = ev
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
	t.total++
}

// count folds one event into the per-port/per-VC counters and latency
// histograms. Events whose router/port/VC are unregistered or out of range
// still land in the ring; they just carry no counter.
func (t *Tracer) count(ev Event) {
	switch ev.Kind {
	case EvInject:
		if p := t.portCounters(ev); p != nil {
			p.Injected++
		}
	case EvVCAlloc:
		if c := t.vcCounters(ev); c != nil {
			c.Grants++
			c.GrantWait += uint64(ev.Arg)
		}
	case EvSwitchArb:
		if c := t.vcCounters(ev); c != nil {
			c.Switched++
		}
	case EvLinkTraverse:
		if c := t.vcCounters(ev); c != nil {
			c.Transmitted++
		}
	case EvBlock:
		if c := t.vcCounters(ev); c != nil {
			c.Blocks++
		}
	case EvUnblock:
		// Span close; the open counted the span.
	case EvEject:
		if p := t.portCounters(ev); p != nil {
			p.Ejected++
		}
		if int(ev.Class) < len(t.lat) {
			t.lat[ev.Class].Observe(sim.Time(ev.Arg))
		}
	case EvDrop:
		if p := t.portCounters(ev); p != nil {
			p.Dropped++
		}
	case EvKill:
		if p := t.portCounters(ev); p != nil {
			p.Killed++
		}
	case EvRetransmit:
		if p := t.portCounters(ev); p != nil {
			p.Retransmits++
		}
	case EvAbandon:
		// Counted at the router via the kill that preceded it.
	case EvPickInput, EvPickOutput, EvPickSource:
		// Pure trace events; counting every arbitration would duplicate
		// Switched/Transmitted.
	case EvVCTick:
		if c := t.vcCounters(ev); c != nil {
			c.VCTicks++
		}
	case EvFault:
		if p := t.portCounters(ev); p != nil {
			p.Faults++
		}
	case EvPolice:
		if p := t.portCounters(ev); p != nil {
			p.PoliceDrops++
		}
	case EvDeadlock, EvSnapshot:
		// Control-plane markers; visible in the ring and snapshot list.
	}
}

// vcCounters resolves the event's (router, port, VC) counter block, or nil.
func (t *Tracer) vcCounters(ev Event) *VCCounters {
	id := int(ev.Router)
	if id < 0 || id >= len(t.vcBase) || t.vcBase[id] < 0 {
		return nil
	}
	p, v := int(ev.Port), int(ev.VC)
	if p < 0 || p >= t.portsOf[id] || v < 0 || v >= t.vcsOf[id] {
		return nil
	}
	return &t.perVC[t.vcBase[id]+p*t.vcsOf[id]+v]
}

// portCounters resolves the event's (router, port) counter block, or nil.
func (t *Tracer) portCounters(ev Event) *PortCounters {
	id := int(ev.Router)
	if id < 0 || id >= len(t.portBas) || t.portBas[id] < 0 {
		return nil
	}
	p := int(ev.Port)
	if p < 0 || p >= t.portsOf[id] {
		return nil
	}
	return &t.perPort[t.portBas[id]+p]
}

// Tick is the fabric's per-cycle hook: it takes a metrics snapshot whenever
// the configured interval has elapsed. Cheap when disabled or between
// snapshots (one comparison).
func (t *Tracer) Tick(now sim.Time) {
	if t == nil || t.interval <= 0 || now < t.nextSnap {
		return
	}
	t.Snapshot(now)
	for t.nextSnap <= now {
		t.nextSnap += t.interval
	}
}

// Snapshot records the current cumulative metrics — counters, engine
// gauges, latency histograms — as of now, and marks the instant in the
// event stream.
func (t *Tracer) Snapshot(now sim.Time) {
	if t == nil {
		return
	}
	t.Emit(Event{At: now, Kind: EvSnapshot, Router: -1, Port: -1, VC: -1})
	s := Snapshot{
		At:            now,
		Events:        t.total,
		DroppedEvents: t.dropped,
		PerVC:         append([]VCCounters(nil), t.perVC...),
		PerPort:       append([]PortCounters(nil), t.perPort...),
		Latency:       t.lat,
	}
	if t.engine != nil {
		s.Engine = EngineStats{
			Processed:  t.engine.Processed(),
			Pending:    t.engine.Pending(),
			MaxPending: t.maxPending,
		}
	}
	t.maxPending = 0
	t.snaps = append(t.snaps, s)
}

// Capture is a finished trace: the surviving events in chronological
// order, the router dimensions, and every metrics snapshot. It is what the
// exporters consume and what Result.Trace carries.
type Capture struct {
	// Routers lists the registered router dimensions.
	Routers []RouterDim
	// Events holds the ring's surviving events, oldest first.
	Events []Event
	// TotalEvents counts every event emitted over the run;
	// DroppedEvents the ones the ring overwrote
	// (TotalEvents - DroppedEvents == len(Events)).
	TotalEvents, DroppedEvents uint64
	// Snapshots holds the periodic and final metrics snapshots.
	Snapshots []Snapshot
}

// Capture finalizes the trace. A nil Tracer yields a nil Capture.
func (t *Tracer) Capture() *Capture {
	if t == nil {
		return nil
	}
	c := &Capture{
		Routers:       append([]RouterDim(nil), t.dims...),
		TotalEvents:   t.total,
		DroppedEvents: t.dropped,
		Snapshots:     t.snaps,
	}
	if t.total <= uint64(len(t.ring)) {
		c.Events = append([]Event(nil), t.ring[:t.total]...)
	} else {
		c.Events = append(append([]Event(nil), t.ring[t.head:]...), t.ring[:t.head]...)
	}
	return c
}
