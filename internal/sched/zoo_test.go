package sched

import (
	"bytes"
	"strings"
	"testing"

	"mediaworm/internal/sim"
	"mediaworm/internal/snapshot"
)

// zooParams is the canonical weighted configuration the zoo tests share:
// four VCs, the first two "real-time" at weight 3 on tier 0, the last two
// best-effort at weight 1 on tier 1.
func zooParams() Params {
	return Params{
		VCs:     4,
		Weights: []int{3, 3, 1, 1},
		Tiers:   []int{0, 0, 1, 1},
		Quantum: 2,
	}
}

// TestKindRoundTripExhaustive is the registry gate: every registered Kind
// must stringify to a spelling ParseKind maps back to the same Kind, and the
// registry itself must be complete and duplicate-free. Adding a Kind without
// a String case, a ParseKind case, or a kinds entry fails here.
func TestKindRoundTripExhaustive(t *testing.T) {
	all := Kinds()
	if len(all) != numKinds {
		t.Fatalf("Kinds() returned %d kinds, registry declares %d", len(all), numKinds)
	}
	seen := map[Kind]bool{}
	for i, k := range all {
		if int(k) >= numKinds {
			t.Fatalf("registry entry %d holds out-of-range kind %d", i, k)
		}
		if seen[k] {
			t.Fatalf("kind %v registered twice", k)
		}
		seen[k] = true
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no String spelling", uint8(k))
		}
		got, err := ParseKind(s)
		if err != nil {
			t.Fatalf("ParseKind(%v.String() = %q): %v", k, s, err)
		}
		if got != k {
			t.Fatalf("round-trip %v → %q → %v", k, s, got)
		}
		a := New(k)
		if a.Kind() != k {
			t.Fatalf("New(%v).Kind() = %v", k, a.Kind())
		}
	}
}

func TestParseKindZooSpellings(t *testing.T) {
	accepted := map[string]Kind{
		"wrr": WRR, "drr": DRR,
		"wf2q": WF2Q, "wf2q+": WF2Q, "wfq": WF2Q,
		"sp+wrr": SPWRR, "sp-wrr": SPWRR, "spwrr": SPWRR,
	}
	for s, want := range accepted {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	rejected := []struct {
		in       string
		wantHint string
	}{
		{"WRR", `did you mean "wrr"?`},
		{"Drr ", `did you mean "drr"?`},
		{"WF2Q+", `did you mean "wf2q"?`},
		{"SP+WRR", `did you mean "sp+wrr"?`},
		{"wf3q", "valid:"},
	}
	for _, tc := range rejected {
		_, err := ParseKind(tc.in)
		if err == nil {
			t.Fatalf("ParseKind(%q) accepted junk", tc.in)
		}
		if !strings.Contains(err.Error(), tc.wantHint) {
			t.Fatalf("ParseKind(%q) error %q lacks %q", tc.in, err, tc.wantHint)
		}
	}
}

func TestServiceCurveZoo(t *testing.T) {
	// 16 VCs, 12 real-time at weight 3, 4 best-effort at weight 1:
	// aggregate weights 36 vs 4 → share 0.9.
	cfg := ServiceConfig{VCs: 16, RTVCs: 12, RTWeight: 3, BEWeight: 1, Quantum: 2}
	cases := []struct {
		kind    Kind
		share   float64
		latency float64
	}{
		{WRR, 0.9, 4},
		{DRR, 0.9, 2*4 + 4},
		{WF2Q, 0.9, 2},
		{SPWRR, 1, 1},
	}
	for _, tc := range cases {
		m, err := ServiceCurve(tc.kind, cfg)
		if err != nil {
			t.Fatalf("ServiceCurve(%v): %v", tc.kind, err)
		}
		if m.Share != tc.share || m.LatencyFlits != tc.latency || m.CrossBestEffort {
			t.Fatalf("ServiceCurve(%v) = %+v, want share %v latency %v crossBE false",
				tc.kind, m, tc.share, tc.latency)
		}
	}
	for _, k := range []Kind{WRR, DRR, WF2Q, SPWRR} {
		if _, err := ServiceCurve(k, ServiceConfig{VCs: 4, RTVCs: 0}); err == nil {
			t.Fatalf("%v accepted zero real-time VCs", k)
		}
	}
	// Defaulted weights and quantum behave like all-ones.
	m, err := ServiceCurve(WRR, ServiceConfig{VCs: 16, RTVCs: 12})
	if err != nil || m.Share != 12.0/16 || m.LatencyFlits != 4 {
		t.Fatalf("defaulted WRR curve = %+v, %v", m, err)
	}
}

// backlogged builds a fully-backlogged candidate set for the given VCs with
// deterministic arrival metadata.
func backlogged(vcs ...int) []Candidate {
	cands := make([]Candidate, len(vcs))
	for i, v := range vcs {
		cands[i] = Candidate{VC: v, TS: sim.Forever, Enq: sim.Time(i), Seq: uint64(i)}
	}
	return cands
}

// pickSequence runs n picks over a persistent backlog and returns the VC ids
// granted, in order.
func pickSequence(a Arbiter, cands []Candidate, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = cands[a.Pick(cands)].VC
	}
	return out
}

func TestWRRWeightedRotation(t *testing.T) {
	a := NewArbiter(WRR, Params{VCs: 2, Weights: []int{3, 1}})
	got := pickSequence(a, backlogged(0, 1), 8)
	want := []int{0, 0, 0, 1, 0, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WRR sequence %v, want %v", got, want)
		}
	}
}

func TestWRRForfeitsDryTurn(t *testing.T) {
	a := NewArbiter(WRR, Params{VCs: 2, Weights: []int{3, 1}})
	both := backlogged(0, 1)
	if got := both[a.Pick(both)].VC; got != 0 {
		t.Fatalf("first grant to VC %d, want 0", got)
	}
	// VC 0 runs dry mid-turn: the remaining 2 credits are forfeited and the
	// rotation moves on (work conservation), with a fresh turn on return.
	only1 := backlogged(1)
	if got := only1[a.Pick(only1)].VC; got != 1 {
		t.Fatal("rotation did not move past the dry turn-holder")
	}
	got := pickSequence(a, both, 4)
	want := []int{0, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-forfeit sequence %v, want %v", got, want)
		}
	}
}

func TestDRRQuantumProportional(t *testing.T) {
	// Quantum 2, weights 2:1 → visits of 4 and 2 flits.
	a := NewArbiter(DRR, Params{VCs: 2, Weights: []int{2, 1}, Quantum: 2})
	got := pickSequence(a, backlogged(0, 1), 12)
	want := []int{0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DRR sequence %v, want %v", got, want)
		}
	}
}

func TestDRRIdleLosesDeficit(t *testing.T) {
	a := NewArbiter(DRR, Params{VCs: 2, Weights: []int{2, 1}, Quantum: 2})
	both := backlogged(0, 1)
	// VC 0 serves one flit of its 4-credit visit, then goes idle.
	if got := both[a.Pick(both)].VC; got != 0 {
		t.Fatal("first visit should go to VC 0")
	}
	only1 := backlogged(1)
	if got := only1[a.Pick(only1)].VC; got != 1 {
		t.Fatal("idle visit-holder should forfeit the grant")
	}
	// On return VC 0 must start a fresh 4-flit visit — the 3 flits of unused
	// deficit from the abandoned visit are gone (idle flows bank nothing).
	got := pickSequence(a, both, 6)
	want := []int{1, 0, 0, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-idle sequence %v, want %v", got, want)
		}
	}
}

func TestWF2QProportionalAndSmooth(t *testing.T) {
	a := NewArbiter(WF2Q, Params{VCs: 2, Weights: []int{2, 1}})
	seq := pickSequence(a, backlogged(0, 1), 300)
	served := map[int]int{}
	run, maxRun := 0, 0
	for i, v := range seq {
		served[v]++
		if i > 0 && v == seq[i-1] {
			run++
		} else {
			run = 1
		}
		if v == 0 && run > maxRun {
			maxRun = run
		}
	}
	if served[0] != 200 || served[1] != 100 {
		t.Fatalf("WF²Q+ split %v, want exactly 200/100 under full backlog", served)
	}
	// Worst-case fairness: the weight-2 VC never bursts more than its
	// one-flit tracking of the fluid schedule allows.
	if maxRun > 2 {
		t.Fatalf("weight-2 VC served %d consecutive flits; WF²Q+ bounds the burst at 2", maxRun)
	}
}

func TestWF2QRearrivalDoesNotBankCredit(t *testing.T) {
	a := NewArbiter(WF2Q, Params{VCs: 2, Weights: []int{1, 1}})
	// Serve VC 1 alone for a while: its finish tag runs ahead of VC 0's.
	only1 := backlogged(1)
	for i := 0; i < 10; i++ {
		a.Pick(only1)
	}
	// When VC 0 arrives it restarts at the virtual time, not at its stale
	// tag, so it does not monopolize the link to "catch up".
	seq := pickSequence(a, backlogged(0, 1), 20)
	served := map[int]int{}
	for _, v := range seq {
		served[v]++
	}
	if served[0] > 11 {
		t.Fatalf("re-arriving VC banked idle credit: split %v", served)
	}
}

func TestSPWRRStrictPriority(t *testing.T) {
	p := zooParams()
	a := NewArbiter(SPWRR, p)
	// Tier-0 VCs (0 and 1) must always beat tier-1 VCs (2 and 3).
	all := backlogged(0, 1, 2, 3)
	for i := 0; i < 50; i++ {
		if v := all[a.Pick(all)].VC; v > 1 {
			t.Fatalf("tier-1 VC %d granted while tier 0 backlogged", v)
		}
	}
	// With tier 0 idle, tier 1 is served (no starvation of lower tiers once
	// the high tier drains).
	low := backlogged(2, 3)
	if v := low[a.Pick(low)].VC; v < 2 {
		t.Fatal("wrong tier served")
	}
}

func TestSPWRRWeightedWithinTier(t *testing.T) {
	a := NewArbiter(SPWRR, Params{VCs: 2, Weights: []int{3, 1}, Tiers: []int{0, 0}})
	got := pickSequence(a, backlogged(0, 1), 8)
	want := []int{0, 0, 0, 1, 0, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SP+WRR in-tier sequence %v, want %v", got, want)
		}
	}
}

func TestSPWRRTierRotationsIndependent(t *testing.T) {
	p := zooParams()
	a := NewArbiter(SPWRR, p)
	all := backlogged(0, 1, 2, 3)
	// Drain a few tier-0 grants mid-rotation, then let tier 1 in; its own
	// rotation must start fresh at VC 2 regardless of tier 0's position.
	for i := 0; i < 5; i++ {
		a.Pick(all)
	}
	low := backlogged(2, 3)
	if v := low[a.Pick(low)].VC; v != 2 {
		t.Fatalf("tier-1 rotation started at VC %d, want 2", v)
	}
	if v := low[a.Pick(low)].VC; v != 3 {
		t.Fatal("tier-1 rotation did not advance")
	}
}

// TestZooPickZeroAlloc proves every presized Pick path allocates nothing in
// steady state — the static hotpath gate's dynamic counterpart.
func TestZooPickZeroAlloc(t *testing.T) {
	for _, k := range Kinds() {
		p := zooParams()
		a := NewArbiter(k, p)
		cands := backlogged(0, 1, 2, 3)
		for i := 0; i < 8; i++ {
			a.Pick(cands) // warm any lazy sizing
		}
		if n := testing.AllocsPerRun(200, func() { a.Pick(cands) }); n != 0 {
			t.Errorf("%v: Pick allocates %.1f times per run, want 0", k, n)
		}
	}
}

// TestArbiterSnapshotRoundTrip checkpoints every discipline mid-rotation and
// verifies the restored arbiter continues with a byte-identical pick
// sequence — rotation position, deficit counters, and virtual-time tags all
// survive.
func TestArbiterSnapshotRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		p := zooParams()
		src := NewArbiter(k, p)
		cands := backlogged(0, 1, 2, 3)
		prefix := pickSequence(src, cands, 7) // land mid-turn on purpose
		_ = prefix

		var buf bytes.Buffer
		w := snapshot.NewWriter()
		if err := EncodeArbiter(w, src); err != nil {
			t.Fatalf("%v: encode: %v", k, err)
		}
		if err := w.Flush(&buf); err != nil {
			t.Fatalf("%v: flush: %v", k, err)
		}
		r, err := snapshot.NewReader(&buf)
		if err != nil {
			t.Fatalf("%v: reader: %v", k, err)
		}
		dst := NewArbiter(k, p)
		if err := RestoreArbiter(r, dst); err != nil {
			t.Fatalf("%v: restore: %v", k, err)
		}

		want := pickSequence(src, cands, 16)
		got := pickSequence(dst, cands, 16)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: restored sequence %v diverges from live %v", k, got, want)
			}
		}
	}
}

func TestRestoreArbiterKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := snapshot.NewWriter()
	if err := EncodeArbiter(w, New(WRR)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := snapshot.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreArbiter(r, New(DRR)); err == nil {
		t.Fatal("restoring WRR state into a DRR arbiter must fail")
	}
}

// BenchmarkArbiterPick measures one arbitration over a fully-backlogged
// 16-candidate field for every discipline; the -benchmem allocation column
// must read 0 B/op.
func BenchmarkArbiterPick(b *testing.B) {
	for _, k := range Kinds() {
		b.Run(k.String(), func(b *testing.B) {
			p := Params{VCs: 16, Quantum: 2}
			p.Weights = make([]int, 16)
			p.Tiers = make([]int, 16)
			for v := range p.Weights {
				p.Weights[v] = 1 + v%3
				p.Tiers[v] = v % 2
			}
			a := NewArbiter(k, p)
			cands := make([]Candidate, 16)
			for i := range cands {
				cands[i] = Candidate{VC: i, TS: sim.Time(1000 - i), Enq: sim.Time(i), Seq: uint64(i)}
			}
			for i := 0; i < 8; i++ {
				a.Pick(cands)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = a.Pick(cands)
			}
		})
	}
}
