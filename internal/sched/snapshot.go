package sched

import (
	"fmt"

	"mediaworm/internal/snapshot"
)

// Arbiter state encoding. FIFO and Virtual Clock arbiters are stateless;
// round-robin carries its last-granted VC. Each encoded arbiter is tagged
// with its Kind so a restore into a differently-configured contention point
// fails loudly instead of silently mixing disciplines.

// EncodeArbiter writes a's serializable state. Observed wrappers are
// refused: they exist only under tracing, which is not snapshottable.
func EncodeArbiter(w *snapshot.Writer, a Arbiter) error {
	switch ar := a.(type) {
	case *fifoArbiter:
		w.U8(uint8(FIFO))
	case *vcArbiter:
		w.U8(uint8(VirtualClock))
	case *rrArbiter:
		w.U8(uint8(RoundRobin))
		w.Int(ar.last)
	default:
		return &snapshot.NotSnapshottableError{Feature: fmt.Sprintf("arbiter %T", a)}
	}
	return nil
}

// RestoreArbiter overwrites a's state from r, verifying the recorded kind
// matches the live arbiter.
func RestoreArbiter(r *snapshot.Reader, a Arbiter) error {
	kind := Kind(r.U8())
	if err := r.Err(); err != nil {
		return err
	}
	if kind != a.Kind() {
		return &snapshot.InvariantError{
			Invariant: "arbiter-kind",
			Detail:    fmt.Sprintf("snapshot has %v, contention point runs %v", kind, a.Kind()),
		}
	}
	switch ar := a.(type) {
	case *fifoArbiter, *vcArbiter:
		// stateless
	case *rrArbiter:
		last := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		ar.last = last
	default:
		return &snapshot.NotSnapshottableError{Feature: fmt.Sprintf("arbiter %T", a)}
	}
	return nil
}

// EncodeVClock writes the virtual-clock register.
func EncodeVClock(w *snapshot.Writer, v *VClock) { w.Time(v.aux) }

// RestoreVClock overwrites the virtual-clock register.
func RestoreVClock(r *snapshot.Reader, v *VClock) { v.aux = r.Time() }
