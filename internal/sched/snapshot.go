package sched

import (
	"fmt"

	"mediaworm/internal/snapshot"
)

// Arbiter state encoding. FIFO and Virtual Clock arbiters are stateless;
// round-robin carries its last-granted VC; the weighted zoo carries its
// rotation, deficit, and virtual-time tag state (Params are rebuilt from
// config, not encoded). Each encoded arbiter is tagged with its Kind so a
// restore into a differently-configured contention point fails loudly
// instead of silently mixing disciplines.

// EncodeArbiter writes a's serializable state. Observed wrappers are
// refused: they exist only under tracing, which is not snapshottable.
func EncodeArbiter(w *snapshot.Writer, a Arbiter) error {
	switch ar := a.(type) {
	case *fifoArbiter:
		w.U8(uint8(FIFO))
	case *vcArbiter:
		w.U8(uint8(VirtualClock))
	case *rrArbiter:
		w.U8(uint8(RoundRobin))
		w.Int(ar.last)
	case *wrrArbiter:
		w.U8(uint8(WRR))
		encodeWRRState(w, &ar.s)
	case *drrArbiter:
		w.U8(uint8(DRR))
		w.Int(ar.cur)
		w.Bool(ar.turn)
		w.Int(len(ar.deficit))
		for _, d := range ar.deficit {
			w.Int(d)
		}
	case *wf2qArbiter:
		w.U8(uint8(WF2Q))
		w.F64(ar.v)
		w.U64(ar.active[0])
		w.U64(ar.active[1])
		w.Int(len(ar.s))
		for i := range ar.s {
			w.F64(ar.s[i])
			w.F64(ar.f[i])
		}
	case *spwrrArbiter:
		w.U8(uint8(SPWRR))
		w.Int(len(ar.tiers))
		for i := range ar.tiers {
			encodeWRRState(w, &ar.tiers[i])
		}
	default:
		return &snapshot.NotSnapshottableError{Feature: fmt.Sprintf("arbiter %T", a)}
	}
	return nil
}

func encodeWRRState(w *snapshot.Writer, s *wrrState) {
	w.Int(s.cur)
	w.Int(s.credit)
}

func restoreWRRState(r *snapshot.Reader, s *wrrState) {
	s.cur = r.Int()
	s.credit = r.Int()
}

// RestoreArbiter overwrites a's state from r, verifying the recorded kind
// matches the live arbiter.
func RestoreArbiter(r *snapshot.Reader, a Arbiter) error {
	kind := Kind(r.U8())
	if err := r.Err(); err != nil {
		return err
	}
	if kind != a.Kind() {
		return &snapshot.InvariantError{
			Invariant: "arbiter-kind",
			Detail:    fmt.Sprintf("snapshot has %v, contention point runs %v", kind, a.Kind()),
		}
	}
	switch ar := a.(type) {
	case *fifoArbiter, *vcArbiter:
		// stateless
	case *rrArbiter:
		last := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		ar.last = last
	case *wrrArbiter:
		restoreWRRState(r, &ar.s)
	case *drrArbiter:
		ar.cur = r.Int()
		ar.turn = r.Bool()
		n := r.Int()
		if err := checkStateLen(r, "drr-deficit", n); err != nil {
			return err
		}
		ar.deficit = resize(ar.deficit, n)
		for i := range ar.deficit {
			ar.deficit[i] = r.Int()
		}
	case *wf2qArbiter:
		ar.v = r.F64()
		ar.active[0] = r.U64()
		ar.active[1] = r.U64()
		n := r.Int()
		if err := checkStateLen(r, "wf2q-tags", n); err != nil {
			return err
		}
		ar.s = resize(ar.s, n)
		ar.f = resize(ar.f, n)
		for i := range ar.s {
			ar.s[i] = r.F64()
			ar.f[i] = r.F64()
		}
	case *spwrrArbiter:
		n := r.Int()
		if err := checkStateLen(r, "spwrr-tiers", n); err != nil {
			return err
		}
		ar.tiers = resize(ar.tiers, n)
		for i := range ar.tiers {
			restoreWRRState(r, &ar.tiers[i])
		}
	default:
		return &snapshot.NotSnapshottableError{Feature: fmt.Sprintf("arbiter %T", a)}
	}
	return r.Err()
}

// checkStateLen rejects corrupt or absurd per-VC state lengths before they
// drive an allocation.
func checkStateLen(r *snapshot.Reader, what string, n int) error {
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 || n > maxVCID {
		return &snapshot.InvariantError{
			Invariant: "arbiter-state-len",
			Detail:    fmt.Sprintf("%s length %d outside [0, %d]", what, n, maxVCID),
		}
	}
	return nil
}

// resize returns s with exactly n elements, reusing the backing array when
// it is already large enough.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// EncodeVClock writes the virtual-clock register.
func EncodeVClock(w *snapshot.Writer, v *VClock) { w.Time(v.aux) }

// RestoreVClock overwrites the virtual-clock register.
func RestoreVClock(r *snapshot.Reader, v *VClock) { v.aux = r.Time() }
