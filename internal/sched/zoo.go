package sched

import "math"

// The scheduler zoo: the weighted disciplines of production QoS fabrics —
// WRR, DRR, WF²Q+, and the hierarchical SP+WRR hybrid — parameterized by
// Params and registered in kinds so the conformance harness runs each one
// against the full contract battery.
//
// Every Pick is a steady-state hot path: per-VC state is presized from
// Params.VCs at construction and only grows lazily (an amortized one-time
// allocation) when a VC id beyond the presized range first appears.

// wrrState is one weighted-round-robin rotation: the VC currently holding
// the grant and the flits left in its turn. WRR uses one instance; SP+WRR
// keeps one per priority tier.
type wrrState struct {
	cur    int // VC holding (or last to hold) the grant; -1 before the first
	credit int // flits remaining in cur's current turn
}

// pick runs one weighted-round-robin grant over cands, considering only
// candidates on the given tier (tier < 0 considers all). The caller
// guarantees at least one candidate on the tier. A VC holds the grant for
// weight consecutive flits; if it runs dry (or leaves the tier) mid-turn it
// forfeits the remainder — the rotation is work conserving.
func (s *wrrState) pick(cands []Candidate, p *Params, tier int) int {
	if s.credit > 0 {
		for i, c := range cands {
			if c.VC == s.cur && (tier < 0 || p.tier(c.VC) == tier) {
				s.credit--
				return i
			}
		}
		s.credit = 0 // turn-holder ran dry: forfeit the rest of its turn
	}
	// Advance the rotation: smallest VC id strictly greater than the
	// previous holder's, wrapping to the smallest overall.
	best, wrap := -1, -1
	for i, c := range cands {
		if tier >= 0 && p.tier(c.VC) != tier {
			continue
		}
		if c.VC > s.cur && (best == -1 || c.VC < cands[best].VC) {
			best = i
		}
		if wrap == -1 || c.VC < cands[wrap].VC {
			wrap = i
		}
	}
	if best == -1 {
		best = wrap
	}
	s.cur = cands[best].VC
	s.credit = p.weight(s.cur) - 1 // this grant spends the first credit
	return best
}

// wrrArbiter is weighted round-robin: each VC holds the grant for
// Params.Weights[vc] consecutive flits per rotation.
type wrrArbiter struct {
	p Params
	s wrrState
}

func newWRR(p Params) *wrrArbiter {
	return &wrrArbiter{p: p, s: wrrState{cur: -1}}
}

func (*wrrArbiter) Kind() Kind { return WRR }

// Pick grants the rotation's current turn-holder while its weight credit
// lasts, then advances to the next backlogged VC.
//
//mw:hotpath
func (a *wrrArbiter) Pick(cands []Candidate) int {
	return a.s.pick(cands, &a.p, -1)
}

// drrArbiter is deficit round-robin (Shreedhar–Varghese): each round-robin
// visit credits the VC Quantum·weight flits of deficit, the VC serves while
// the deficit lasts, and a VC that goes idle loses its deficit.
type drrArbiter struct {
	p       Params
	deficit []int
	cur     int  // VC holding (or last to hold) the visit; -1 before the first
	turn    bool // cur's visit is still open
}

func newDRR(p Params) *drrArbiter {
	d := &drrArbiter{p: p, cur: -1}
	if p.VCs > 0 {
		d.deficit = make([]int, p.VCs)
	}
	return d
}

func (*drrArbiter) Kind() Kind { return DRR }

// ensure grows the deficit array to cover VC id v.
func (d *drrArbiter) ensure(v int) {
	if v < len(d.deficit) {
		return
	}
	grown := make([]int, v+1) //mw:hotpath — lazy one-time sizing to the observed VC id space; never reallocated after
	copy(grown, d.deficit)
	d.deficit = grown
}

// Pick continues the open visit while deficit remains, then advances the
// round-robin to the next backlogged VC and credits it Quantum·weight.
//
//mw:hotpath
func (d *drrArbiter) Pick(cands []Candidate) int {
	if d.turn {
		found := -1
		for i, c := range cands {
			if c.VC == d.cur {
				found = i
				break
			}
		}
		if found >= 0 && d.deficit[d.cur] > 0 {
			d.deficit[d.cur]--
			return found
		}
		if found < 0 {
			// The visit-holder went idle mid-visit: it loses its deficit.
			d.deficit[d.cur] = 0
		}
		d.turn = false
	}
	// Fresh visit: next backlogged VC after the previous holder, wrapping.
	best, wrap := -1, -1
	for i, c := range cands {
		if c.VC > d.cur && (best == -1 || c.VC < cands[best].VC) {
			best = i
		}
		if wrap == -1 || c.VC < cands[wrap].VC {
			wrap = i
		}
	}
	if best == -1 {
		best = wrap
	}
	v := cands[best].VC
	d.ensure(v)
	d.deficit[v] += d.p.quantum()*d.p.weight(v) - 1 // credit the visit; this grant spends one
	d.cur, d.turn = v, d.deficit[v] > 0
	return best
}

// wf2qArbiter is worst-case-fair weighted fair queueing (WF²Q+): a system
// virtual time V advances at the aggregate service rate; each backlogged VC
// carries start/finish tags (S, F) spaced 1/weight per flit; the grant goes
// to the eligible VC (S ≤ V) with the smallest finish tag. Tracking
// eligibility is what bounds the discipline within one flit of the GPS fluid
// schedule. All arithmetic is float64 on values derived from integer weights
// — fully deterministic for a given pick sequence.
type wf2qArbiter struct {
	p      Params
	v      float64   // system virtual time
	s, f   []float64 // per-VC start/finish tags
	active [2]uint64 // presence bitmap of VCs backlogged at the last Pick
}

func newWF2Q(p Params) *wf2qArbiter {
	a := &wf2qArbiter{p: p}
	if p.VCs > 0 {
		a.s = make([]float64, p.VCs)
		a.f = make([]float64, p.VCs)
	}
	return a
}

func (*wf2qArbiter) Kind() Kind { return WF2Q }

// ensure grows the tag arrays to cover VC id v, which must be < maxVCID
// (the presence bitmap is two words).
func (a *wf2qArbiter) ensure(v int) {
	if v >= maxVCID {
		panic("sched: wf2q VC id exceeds maxVCID")
	}
	if v < len(a.s) {
		return
	}
	s := make([]float64, v+1) //mw:hotpath — lazy one-time sizing to the observed VC id space; never reallocated after
	f := make([]float64, v+1) //mw:hotpath — lazy one-time sizing to the observed VC id space; never reallocated after
	copy(s, a.s)
	copy(f, a.f)
	a.s, a.f = s, f
}

// Pick refreshes the backlogged set (stamping fresh arrivals at
// max(V, F_old)), clamps V up to the least start tag so an eligible VC
// always exists, grants the eligible minimum-finish-tag VC (ties to the
// lower VC id), restamps the winner, and advances V by 1/ΣW.
//
//mw:hotpath
func (a *wf2qArbiter) Pick(cands []Candidate) int {
	var now [2]uint64
	minS := math.Inf(1)
	wsum := 0.0
	for _, c := range cands {
		v := c.VC
		a.ensure(v)
		word, bit := v>>6, uint64(1)<<(uint(v)&63)
		now[word] |= bit
		if a.active[word]&bit == 0 {
			// Newly backlogged: restart at the later of the virtual time and
			// the VC's previous finish (the WF²Q+ re-arrival rule).
			s := a.v
			if a.f[v] > s {
				s = a.f[v]
			}
			a.s[v] = s
			a.f[v] = s + 1/float64(a.p.weight(v))
		}
		if a.s[v] < minS {
			minS = a.s[v]
		}
		wsum += float64(a.p.weight(v))
	}
	a.active = now
	if a.v < minS {
		a.v = minS
	}
	best := -1
	for i, c := range cands {
		if a.s[c.VC] > a.v {
			continue // not eligible: would run ahead of the fluid schedule
		}
		if best == -1 {
			best = i
			continue
		}
		fi, fb := a.f[c.VC], a.f[cands[best].VC]
		if fi < fb || (fi == fb && c.VC < cands[best].VC) {
			best = i
		}
	}
	win := cands[best].VC
	a.s[win] = a.f[win]
	a.f[win] += 1 / float64(a.p.weight(win))
	a.v += 1 / wsum
	return best
}

// spwrrArbiter is the hierarchical strict-priority + WRR hybrid: the
// lowest-numbered tier with a backlogged VC always wins, and an independent
// weighted-round-robin rotation arbitrates within each tier.
type spwrrArbiter struct {
	p     Params
	tiers []wrrState
}

func newSPWRR(p Params) *spwrrArbiter {
	a := &spwrrArbiter{p: p}
	maxTier := 0
	for v := 0; v < p.VCs; v++ {
		if t := p.tier(v); t > maxTier {
			maxTier = t
		}
	}
	a.tiers = make([]wrrState, maxTier+1)
	for i := range a.tiers {
		a.tiers[i].cur = -1
	}
	return a
}

func (*spwrrArbiter) Kind() Kind { return SPWRR }

// ensure grows the per-tier rotation state to cover tier t.
func (a *spwrrArbiter) ensure(t int) {
	if t < len(a.tiers) {
		return
	}
	grown := make([]wrrState, t+1) //mw:hotpath — lazy one-time sizing to the observed tier space; never reallocated after
	copy(grown, a.tiers)
	for i := len(a.tiers); i < len(grown); i++ {
		grown[i].cur = -1
	}
	a.tiers = grown
}

// Pick finds the highest-priority (lowest-numbered) tier with a candidate
// and runs that tier's WRR rotation over its members.
//
//mw:hotpath
func (a *spwrrArbiter) Pick(cands []Candidate) int {
	top := a.p.tier(cands[0].VC)
	for _, c := range cands[1:] {
		if t := a.p.tier(c.VC); t < top {
			top = t
		}
	}
	a.ensure(top)
	return a.tiers[top].pick(cands, &a.p, top)
}
