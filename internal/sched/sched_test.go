package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"mediaworm/internal/sim"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{FIFO: "fifo", RoundRobin: "round-robin", VirtualClock: "virtual-clock"} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}

func TestParseKind(t *testing.T) {
	accepted := map[string]Kind{
		"fifo": FIFO, "FIFO": FIFO,
		"rr": RoundRobin, "round-robin": RoundRobin,
		"vc": VirtualClock, "virtual-clock": VirtualClock, "virtualclock": VirtualClock,
	}
	for s, want := range accepted {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	rejected := []struct {
		in       string
		wantHint string // substring the error must carry
	}{
		{"bogus", "valid:"},
		{"", "valid:"},
		{"Fifo ", `did you mean "fifo"?`},
		{" fifo", `did you mean "fifo"?`},
		{"fifo\t", `did you mean "fifo"?`},
		{"FiFo", `did you mean "fifo"?`},
		{"RR", `did you mean "round-robin"?`},
		{"Round-Robin", `did you mean "round-robin"?`},
		{"VC ", `did you mean "virtual-clock"?`},
		{"VirtualClock", `did you mean "virtual-clock"?`},
		{"Virtual-Clock\n", `did you mean "virtual-clock"?`},
		{" bogus ", "valid:"}, // junk stays junk even normalized
	}
	for _, tc := range rejected {
		_, err := ParseKind(tc.in)
		if err == nil {
			t.Fatalf("ParseKind(%q) accepted junk", tc.in)
		}
		if !strings.Contains(err.Error(), tc.wantHint) {
			t.Fatalf("ParseKind(%q) error %q lacks %q", tc.in, err, tc.wantHint)
		}
	}
}

func TestServiceCurve(t *testing.T) {
	cfg := ServiceConfig{VCs: 16, RTVCs: 12}
	cases := []struct {
		kind    Kind
		share   float64
		latency float64
		crossBE bool
	}{
		{FIFO, 1, 0, true},
		{RoundRobin, 12.0 / 16, 4, false},
		{VirtualClock, 1, 1, false},
	}
	for _, tc := range cases {
		m, err := ServiceCurve(tc.kind, cfg)
		if err != nil {
			t.Fatalf("ServiceCurve(%v): %v", tc.kind, err)
		}
		if m.Share != tc.share || m.LatencyFlits != tc.latency || m.CrossBestEffort != tc.crossBE {
			t.Fatalf("ServiceCurve(%v) = %+v, want share %v latency %v crossBE %v",
				tc.kind, m, tc.share, tc.latency, tc.crossBE)
		}
	}
	if _, err := ServiceCurve(FIFO, ServiceConfig{VCs: 0}); err == nil {
		t.Fatal("accepted zero VCs")
	}
	if _, err := ServiceCurve(FIFO, ServiceConfig{VCs: 4, RTVCs: 5}); err == nil {
		t.Fatal("accepted RTVCs > VCs")
	}
	if _, err := ServiceCurve(RoundRobin, ServiceConfig{VCs: 4, RTVCs: 0}); err == nil {
		t.Fatal("round-robin accepted zero real-time VCs")
	}
	if _, err := ServiceCurve(Kind(99), cfg); err == nil {
		t.Fatal("accepted unknown kind")
	}
}

func TestNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Kind(99))
}

func TestFIFOPicksEarliestArrival(t *testing.T) {
	a := New(FIFO)
	cands := []Candidate{
		{VC: 0, Enq: 30, Seq: 3},
		{VC: 1, Enq: 10, Seq: 1},
		{VC: 2, Enq: 20, Seq: 2},
	}
	if got := a.Pick(cands); got != 1 {
		t.Fatalf("FIFO picked %d, want 1", got)
	}
}

func TestFIFOTieBreaksBySeq(t *testing.T) {
	a := New(FIFO)
	cands := []Candidate{
		{VC: 0, Enq: 10, Seq: 7},
		{VC: 1, Enq: 10, Seq: 2},
	}
	if got := a.Pick(cands); got != 1 {
		t.Fatalf("FIFO tie-break picked %d, want 1", got)
	}
}

func TestFIFOIgnoresTimestamps(t *testing.T) {
	a := New(FIFO)
	cands := []Candidate{
		{VC: 0, TS: 1, Enq: 20, Seq: 2},
		{VC: 1, TS: sim.Forever, Enq: 10, Seq: 1},
	}
	if got := a.Pick(cands); got != 1 {
		t.Fatal("FIFO must ignore virtual-clock timestamps")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	a := New(RoundRobin)
	cands := []Candidate{{VC: 0}, {VC: 1}, {VC: 2}}
	var order []int
	for i := 0; i < 6; i++ {
		w := a.Pick(cands)
		order = append(order, cands[w].VC)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("RR order %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsAbsentVCs(t *testing.T) {
	a := New(RoundRobin)
	_ = a.Pick([]Candidate{{VC: 0}, {VC: 1}, {VC: 2}}) // grants 0
	// VC 1 has nothing now; next grant should go to 2, then wrap to 0.
	if w := a.Pick([]Candidate{{VC: 0}, {VC: 2}}); w != 1 {
		t.Fatalf("RR picked index %d, want VC 2", w)
	}
	if w := a.Pick([]Candidate{{VC: 0}, {VC: 2}}); w != 0 {
		t.Fatalf("RR did not wrap to VC 0")
	}
}

func TestVirtualClockPicksLowestTimestamp(t *testing.T) {
	a := New(VirtualClock)
	cands := []Candidate{
		{VC: 0, TS: 300, Enq: 1, Seq: 1},
		{VC: 1, TS: 100, Enq: 2, Seq: 2},
		{VC: 2, TS: 200, Enq: 3, Seq: 3},
	}
	if got := a.Pick(cands); got != 1 {
		t.Fatalf("VC picked %d, want 1", got)
	}
}

func TestVirtualClockRealTimeBeatsBestEffort(t *testing.T) {
	a := New(VirtualClock)
	cands := []Candidate{
		{VC: 0, TS: sim.Forever, Enq: 1, Seq: 1}, // best-effort, arrived first
		{VC: 1, TS: 1 << 40, Enq: 2, Seq: 2},     // real-time, huge but finite stamp
	}
	if got := a.Pick(cands); got != 1 {
		t.Fatal("real-time flit must beat best-effort regardless of arrival")
	}
}

func TestVirtualClockBestEffortFIFOAmongItself(t *testing.T) {
	a := New(VirtualClock)
	cands := []Candidate{
		{VC: 0, TS: sim.Forever, Enq: 20, Seq: 2},
		{VC: 1, TS: sim.Forever, Enq: 10, Seq: 1},
	}
	if got := a.Pick(cands); got != 1 {
		t.Fatal("best-effort flits must be served in arrival order")
	}
}

func TestVirtualClockTieBreak(t *testing.T) {
	a := New(VirtualClock)
	cands := []Candidate{
		{VC: 0, TS: 100, Enq: 5, Seq: 9},
		{VC: 1, TS: 100, Enq: 5, Seq: 3},
	}
	if got := a.Pick(cands); got != 1 {
		t.Fatal("equal stamps must tie-break deterministically by Seq")
	}
}

func TestVClockStampIdleConnection(t *testing.T) {
	var v VClock
	// First flit at t=1000 with Vtick=100: max(1000,0)+100 = 1100.
	if ts := v.Stamp(1000, 100); ts != 1100 {
		t.Fatalf("stamp %d, want 1100", ts)
	}
	// Burst arrival at the same instant: stamps space out by Vtick.
	if ts := v.Stamp(1000, 100); ts != 1200 {
		t.Fatalf("stamp %d, want 1200", ts)
	}
}

func TestVClockCatchesUpToWallClock(t *testing.T) {
	var v VClock
	v.Stamp(0, 100) // aux=100
	// A long silence: the next arrival is stamped from wall-clock, not from
	// the stale aux — the connection cannot bank unused bandwidth.
	if ts := v.Stamp(1_000_000, 100); ts != 1_000_100 {
		t.Fatalf("stamp %d, want 1000100", ts)
	}
}

func TestVClockBestEffort(t *testing.T) {
	var v VClock
	if ts := v.Stamp(500, sim.Forever); ts != sim.Forever {
		t.Fatal("best-effort stamp must be Forever")
	}
	if v.Aux() != 0 {
		t.Fatal("best-effort stamping must not advance the clock")
	}
}

func TestVClockReset(t *testing.T) {
	var v VClock
	v.Stamp(100, 10)
	v.Reset()
	if v.Aux() != 0 {
		t.Fatal("Reset did not clear aux")
	}
}

// Property: virtual clock stamps within a connection are strictly increasing
// for finite Vticks, regardless of arrival pattern.
func TestPropertyVClockMonotone(t *testing.T) {
	f := func(arrivals []uint32, vtickRaw uint16) bool {
		vtick := sim.Time(vtickRaw%1000) + 1
		var v VClock
		now := sim.Time(0)
		prev := sim.Time(-1)
		for _, a := range arrivals {
			now += sim.Time(a % 100000)
			ts := v.Stamp(now, vtick)
			if ts <= prev || ts < now {
				return false
			}
			prev = ts
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two connections sharing a point get service opportunities in
// proportion to their rates. We simulate perfect backlog: each service
// removes the winner's head and stamps its next flit.
func TestVirtualClockProportionalSharing(t *testing.T) {
	a := New(VirtualClock)
	var fast, slow VClock
	// fast requests 4x the bandwidth of slow.
	const fastTick, slowTick = 100, 400
	now := sim.Time(0)
	fastTS := fast.Stamp(now, fastTick)
	slowTS := slow.Stamp(now, slowTick)
	served := map[int]int{}
	for i := 0; i < 5000; i++ {
		now += 80 // one service per "cycle"
		w := a.Pick([]Candidate{
			{VC: 0, TS: fastTS, Enq: now, Seq: uint64(2 * i)},
			{VC: 1, TS: slowTS, Enq: now, Seq: uint64(2*i + 1)},
		})
		if w == 0 {
			served[0]++
			fastTS = fast.Stamp(now, fastTick)
		} else {
			served[1]++
			slowTS = slow.Stamp(now, slowTick)
		}
	}
	ratio := float64(served[0]) / float64(served[1])
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("service ratio %v (fast %d, slow %d), want ~4", ratio, served[0], served[1])
	}
}

func TestArbiterKinds(t *testing.T) {
	for _, k := range []Kind{FIFO, RoundRobin, VirtualClock} {
		if New(k).Kind() != k {
			t.Fatalf("arbiter for %v reports wrong kind", k)
		}
	}
}

func BenchmarkVirtualClockPick16(b *testing.B) {
	a := New(VirtualClock)
	cands := make([]Candidate, 16)
	for i := range cands {
		cands[i] = Candidate{VC: i, TS: sim.Time(1000 - i), Enq: sim.Time(i), Seq: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Pick(cands)
	}
}
